package ita

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file is the randomized metamorphic equivalence suite of the
// published-view read path: a deterministic byte-driven generator
// interleaves every facade operation (Register, Unregister, IngestText,
// IngestBatch, Advance, Flush, Results) and replays the identical
// sequence against
//
//   - the serial ITA facade (the reference),
//   - the Naïve brute-force facade (an independent oracle
//     implementation), and
//   - the sharded/batched grid S ∈ {1, 2, 8} × B ∈ {1, 64}, each
//     running durably over a write-ahead log,
//
// comparing every live query at every common boundary under the
// epoch-pipeline guarantee (sameTopK), and additionally asserting that
// each engine's wait-free published read is byte-identical to its own
// locked read path. The generator also emits crash/reopen and
// checkpoint ops: a grid engine is dropped mid-stream (worker
// goroutines stopped, nothing flushed) and recovered from its log, and
// the recovered engine must be byte-identical to the crashed one —
// results, stats, id sequences, buffered epoch — before the run
// continues on it. CI runs the suite under -race; a failing seed is
// printed and can be replayed with ITA_EQ_SEED=<seed> go test -run
// TestMetamorphicEquivalence.

// opKind enumerates the generated facade operations.
const (
	opIngest = iota
	opIngestBatch
	opRegister
	opUnregister
	opAdvance
	opFlush
	opResults     // flush-to-boundary + full cross-engine comparison
	opCrash       // durable engines: crash, reopen, assert byte-identical recovery
	opCheckpoint  // durable engines: force a checkpoint + log rotation
	opWatchToggle // un/re-watch a live query mid-stream (often mid-epoch)
	opKinds
)

// opWeights biases the generator toward Register/Unregister churn: the
// dense-id free list only gets exercised when queries die and new ones
// reuse their slots, so the mix leans on registration turnover (~44%
// of ops) while keeping every other op kind in play. Weights sum to
// 256 so one generator byte maps through the table with no modulo
// bias.
var opWeights = [opKinds]int{
	opIngest:      41,
	opIngestBatch: 31,
	opRegister:    48,
	opUnregister:  48,
	opAdvance:     15,
	opFlush:       15,
	opResults:     26,
	opCrash:       8,
	opCheckpoint:  8,
	opWatchToggle: 16,
}

// pickOp maps one generator byte to an op kind through the weight
// table, deterministically and totally.
func pickOp(b byte) int {
	n := int(b)
	for kind, w := range opWeights {
		if n < w {
			return kind
		}
		n -= w
	}
	return opIngest // unreachable: weights sum to 256
}

type facadeOp struct {
	kind  int
	text  string   // opIngest, opRegister
	batch []string // opIngestBatch
	k     int      // opRegister
	qsel  int      // opUnregister: selector into the live query ids
	dtMs  int      // opIngest/opIngestBatch/opAdvance: clock step
}

// opVocab is the generator's vocabulary: content words (no stopwords,
// so every generated query has indexable terms) with enough overlap to
// make top-k sets contested.
var opVocab = []string{
	"oil", "crude", "market", "price", "export", "tanker", "refinery",
	"barrel", "futures", "pipeline", "solar", "turbine", "grid", "storage",
	"demand", "supply",
}

// decodeOps maps a byte string to an op sequence, deterministically and
// totally: every input decodes to something, which is what lets the
// fuzzer drive the generator directly. The first byte selects the
// window policy (see runOpSequence).
func decodeOps(data []byte) []facadeOp {
	const maxOps = 192
	var ops []facadeOp
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	words := func(n byte) string {
		k := 1 + int(n)%3
		var sb strings.Builder
		for j := 0; j < k; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(opVocab[int(next())%len(opVocab)])
		}
		return sb.String()
	}
	for i < len(data) && len(ops) < maxOps {
		b := next()
		op := facadeOp{kind: pickOp(b)}
		switch op.kind {
		case opIngest:
			op.text = words(next())
			op.dtMs = 1 + int(next())%5
		case opIngestBatch:
			n := 1 + int(next())%5
			for j := 0; j < n; j++ {
				op.batch = append(op.batch, words(next()))
			}
			op.dtMs = 1 + int(next())%5
		case opRegister:
			op.text = words(next())
			op.k = 1 + int(next())%3
		case opUnregister:
			op.qsel = int(next())
		case opAdvance:
			op.dtMs = 1 + int(next())%200
		case opWatchToggle:
			op.qsel = int(next())
		}
		ops = append(ops, op)
	}
	return ops
}

// eqEngine is one engine variant under test. The S×B grid engines run
// durably (a write-ahead log in walDir) so the crash/reopen and
// checkpoint ops exercise recovery against the never-crashed serial
// reference and Naïve oracle, which have no WAL and never crash.
type eqEngine struct {
	name   string
	e      *Engine
	walDir string
	scan   bool // probe trees pinned to the scan-all representation
	// watched is the delta-reconstruction oracle: per watched query, the
	// top-k document set rebuilt purely from delivered watch deltas
	// (seeded from the published result at Watch time). The engine's
	// boundary result must equal the reconstruction at every compare —
	// which fails on any lost, duplicated or mis-baselined delta,
	// however batching coalesced the epochs that produced it.
	watched map[QueryID]map[DocID]bool
}

// watchQuery (re)subscribes one engine to a query and resets its
// reconstruction to the engine's published boundary result — the same
// baseline Watch itself stores, so the delta stream and the
// reconstruction advance in lockstep from here.
func watchQuery(t *testing.T, g *eqEngine, id QueryID, forbidden map[QueryID]bool) {
	t.Helper()
	set := make(map[DocID]bool)
	for _, m := range g.e.Results(id) {
		set[m.Doc] = true
	}
	g.watched[id] = set
	name := g.name
	if err := g.e.Watch(id, func(d Delta) {
		if forbidden[d.Query] {
			t.Errorf("%s: watch delta delivered for dead query %d: %+v", name, d.Query, d)
		}
		for _, doc := range d.Exited {
			if !set[doc] {
				t.Errorf("%s: query %d: delta exits doc %d the watcher was never shown", name, d.Query, doc)
			}
			delete(set, doc)
		}
		for _, m := range d.Entered {
			if set[m.Doc] {
				t.Errorf("%s: query %d: delta re-enters doc %d already shown", name, d.Query, m.Doc)
			}
			set[m.Doc] = true
		}
	}); err != nil {
		t.Fatalf("%s: watch %d: %v", name, id, err)
	}
}

// runOpSequence replays one decoded op sequence across the engine grid
// and fails the test on any divergence. It is shared by the seeded
// metamorphic suite and the fuzz target.
func runOpSequence(t *testing.T, data []byte) {
	t.Helper()
	ops := decodeOps(data)
	if len(ops) == 0 {
		return
	}

	// First byte: window policy. Count windows exercise arrival-driven
	// expiration; time windows exercise Advance-driven expiration.
	var pol Option
	polName := "count"
	if len(data) > 0 && data[0]%2 == 1 {
		pol = WithTimeWindow(120 * time.Millisecond)
		polName = "time"
	} else {
		pol = WithCountWindow(10)
	}

	// Every ITA engine in the grid runs with tiny floor margins so the
	// 10-document windows actually exercise floor raises, purges and
	// refill rebuilds; the production defaults would keep every floor at
	// zero in windows this small.
	mk := func(opts ...Option) *Engine {
		e, err := New(append([]Option{pol, withFloorMargins(1, 1)}, opts...)...)
		if err != nil {
			t.Fatalf("policy %s: %v", polName, err)
		}
		return e
	}
	serial := eqEngine{name: "serial", e: mk(), watched: map[QueryID]map[DocID]bool{}}
	// scan-all-trees pins the probe trees to the entry-ordered scan-all
	// representation AND the inverted lists to the slice layout on an
	// otherwise identical serial engine: the θ-ordered probe index and
	// the block-compressed postings must be byte-identical to it in
	// results AND in every operation counter at every boundary (both are
	// physical representation choices — θ-ordering changes which queries
	// a probe visits first, never which it visits; the blocked codec
	// changes the bytes behind the lists, never an entry or a counter).
	scanTrees := eqEngine{name: "scan-all-trees",
		e: mk(withScanAllTrees(), WithPostingLayout(LayoutSlices)), watched: map[QueryID]map[DocID]bool{}}
	grid := []eqEngine{
		serial,
		scanTrees,
		{name: "naive-oracle", e: mk(WithAlgorithm(NaivePlain)), watched: map[QueryID]map[DocID]bool{}},
	}
	// Every S×B cell exists twice: once with the θ-ordered probe trees
	// and once pinned to scan-all. twins pairs their grid indexes;
	// compare() requires the pair byte-identical (results AND stats),
	// including across crash/reopen — the grid-wide proof that the
	// θ-ordered index changes the probe representation, never a
	// decision.
	var twins [][2]int
	for _, s := range []int{1, 2, 8} {
		for _, b := range []int{1, 64} {
			pair := [2]int{}
			for i, scan := range []bool{false, true} {
				// Durable: DurabilityOff skips fsyncs (an in-process crash
				// loses no written bytes; fsync-loss is modelled by the
				// byte-truncation sweeps in crash_test.go) and a small
				// checkpoint interval makes generated runs cross several log
				// rotations.
				dir := t.TempDir()
				opts := []Option{WithShards(s), withFloorMargins(1, 1),
					WithDurability(DurabilityOff), WithCheckpointEvery(24)}
				if b > 1 {
					opts = append(opts, WithBatchSize(b))
				}
				name := fmt.Sprintf("s%d_b%d", s, b)
				if scan {
					opts = append(opts, withScanAllTrees(), WithPostingLayout(LayoutSlices))
					name += "_scan"
				}
				e, err := Open(dir, append([]Option{pol}, opts...)...)
				if err != nil {
					t.Fatalf("policy %s: %v", polName, err)
				}
				pair[i] = len(grid)
				grid = append(grid, eqEngine{name: name, e: e, walDir: dir, scan: scan,
					watched: map[QueryID]map[DocID]bool{}})
			}
			twins = append(twins, pair)
		}
	}
	defer func() {
		for _, g := range grid {
			g.e.Close()
		}
	}()

	var live []QueryID
	var dead []QueryID
	// forbidden marks externally dead query ids: once an Unregister has
	// returned on every engine, no watch delta for that id may ever be
	// delivered again (dense-slot reuse must not resurrect a watcher).
	forbidden := make(map[QueryID]bool)
	clock := 0

	compare := func(step int) {
		for _, g := range grid {
			if err := g.e.Flush(); err != nil {
				t.Fatalf("op %d: %s: flush: %v", step, g.name, err)
			}
		}
		for _, g := range grid[1:] {
			if gw, ww := g.e.WindowLen(), serial.e.WindowLen(); gw != ww {
				t.Fatalf("op %d: %s: WindowLen %d, serial %d", step, g.name, gw, ww)
			}
			if gq, wq := g.e.Queries(), serial.e.Queries(); gq != wq {
				t.Fatalf("op %d: %s: Queries %d, serial %d", step, g.name, gq, wq)
			}
		}
		for _, id := range live {
			want := serial.e.Results(id)
			for _, g := range grid[1:] {
				if err := sameTopK(g.e.Results(id), want); err != nil {
					t.Fatalf("op %d: %s vs serial, query %d: %v", step, g.name, id, err)
				}
			}
			// The θ-ordered probe trees must be byte-identical to the
			// scan-all reference, not merely top-k-equivalent.
			if got := scanTrees.e.Results(id); !reflect.DeepEqual(got, want) {
				t.Fatalf("op %d: scan-all-trees vs serial, query %d: %v vs %v", step, id, got, want)
			}
			// The wait-free published read must be byte-identical to the
			// same engine's locked read at the boundary.
			for _, g := range grid {
				pub, locked := g.e.Results(id), g.e.resultsLocked(id)
				if !reflect.DeepEqual(pub, locked) {
					t.Fatalf("op %d: %s, query %d: published read %v, locked read %v",
						step, g.name, id, pub, locked)
				}
			}
		}
		// ...and counter-identical: θ-ordering may never change a
		// maintenance decision, so every Stats field matches the serial
		// engine at every boundary.
		if gs, ws := scanTrees.e.Stats(), serial.e.Stats(); gs != ws {
			t.Fatalf("op %d: scan-all-trees stats %+v, serial %+v", step, gs, ws)
		}
		// Grid-wide probe-order proof: every S×B cell must be
		// byte-identical — full state, results and counters — to its
		// scan-all twin, whatever mixture of batching, sharding and
		// crash/reopen the run has been through.
		for _, pair := range twins {
			ordered, scan := &grid[pair[0]], &grid[pair[1]]
			requireSameState(t, captureState(scan.e), captureState(ordered.e),
				fmt.Sprintf("op %d: %s vs %s (probe twin)", step, scan.name, ordered.name))
		}
		// The delta-reconstruction oracle: each watcher's view of a
		// query, rebuilt purely from the deltas it was delivered, must
		// equal the engine's boundary result. A delta lost to a panicking
		// sibling, a baseline taken off-boundary, or a duplicate delivery
		// all surface here as a set mismatch.
		for gi := range grid {
			g := &grid[gi]
			for id, set := range g.watched {
				res := g.e.Results(id)
				if len(res) != len(set) {
					t.Fatalf("op %d: %s: query %d: watch reconstruction %v, boundary result %v",
						step, g.name, id, set, res)
				}
				for _, m := range res {
					if !set[m.Doc] {
						t.Fatalf("op %d: %s: query %d: boundary doc %d missing from watch reconstruction %v",
							step, g.name, id, m.Doc, set)
					}
				}
			}
		}
		// Unregistered ids must stay dead on every engine: a dense slot
		// recycled to a newer query must never leak a view, a result or
		// replayed WAL state under the old external id.
		for _, id := range dead {
			for _, g := range grid {
				if got := g.e.Results(id); got != nil {
					t.Fatalf("op %d: %s: dead query %d served %v", step, g.name, id, got)
				}
				if got := g.e.resultsLocked(id); got != nil {
					t.Fatalf("op %d: %s: dead query %d served %v via locked read", step, g.name, id, got)
				}
				if text, ok := g.e.QueryText(id); ok {
					t.Fatalf("op %d: %s: dead query %d still has text %q", step, g.name, id, text)
				}
			}
		}
	}

	for step, op := range ops {
		switch op.kind {
		case opIngest:
			clock += op.dtMs
			var want DocID
			for gi, g := range grid {
				id, err := g.e.IngestText(op.text, at(clock))
				if err != nil {
					t.Fatalf("op %d: %s: ingest: %v", step, g.name, err)
				}
				if gi == 0 {
					want = id
				} else if id != want {
					t.Fatalf("op %d: %s: doc id %d, serial %d", step, g.name, id, want)
				}
			}
		case opIngestBatch:
			items := make([]TimedText, len(op.batch))
			for j, text := range op.batch {
				clock += op.dtMs
				items[j] = TimedText{Text: text, At: at(clock)}
			}
			var want []DocID
			for gi, g := range grid {
				ids, err := g.e.IngestBatch(items)
				if err != nil {
					t.Fatalf("op %d: %s: batch: %v", step, g.name, err)
				}
				if gi == 0 {
					want = ids
				} else if !reflect.DeepEqual(ids, want) {
					t.Fatalf("op %d: %s: batch ids %v, serial %v", step, g.name, ids, want)
				}
			}
		case opRegister:
			var want QueryID
			for gi, g := range grid {
				id, err := g.e.Register(op.text, op.k)
				if err != nil {
					t.Fatalf("op %d: %s: register %q: %v", step, g.name, op.text, err)
				}
				if gi == 0 {
					want = id
				} else if id != want {
					t.Fatalf("op %d: %s: query id %d, serial %d", step, g.name, id, want)
				}
			}
			live = append(live, want)
			for gi := range grid {
				watchQuery(t, &grid[gi], want, forbidden)
			}
		case opUnregister:
			if len(live) == 0 {
				continue
			}
			idx := op.qsel % len(live)
			id := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			dead = append(dead, id)
			for _, g := range grid {
				if !g.e.Unregister(id) {
					t.Fatalf("op %d: %s: unregister %d reported unknown", step, g.name, id)
				}
			}
			for gi := range grid {
				if got := grid[gi].e.Results(id); got != nil {
					t.Fatalf("op %d: %s: unregistered query %d still served %v", step, grid[gi].name, id, got)
				}
				delete(grid[gi].watched, id)
			}
			forbidden[id] = true
		case opAdvance:
			clock += op.dtMs
			for _, g := range grid {
				if err := g.e.Advance(at(clock)); err != nil {
					t.Fatalf("op %d: %s: advance: %v", step, g.name, err)
				}
			}
		case opFlush:
			for _, g := range grid {
				if err := g.e.Flush(); err != nil {
					t.Fatalf("op %d: %s: flush: %v", step, g.name, err)
				}
			}
		case opResults:
			compare(step)
		case opWatchToggle:
			if len(live) == 0 {
				continue
			}
			id := live[op.qsel%len(live)]
			if _, on := grid[0].watched[id]; on {
				for gi := range grid {
					if !grid[gi].e.Unwatch(id) {
						t.Fatalf("op %d: %s: unwatch %d reported no watcher", step, grid[gi].name, id)
					}
					delete(grid[gi].watched, id)
				}
			} else {
				// Re-watching lands at whatever point the engine happens to
				// be — for batched cells, typically mid-epoch with documents
				// buffered — so the stored baseline must be the published
				// boundary for the reconstruction to stay exact.
				for gi := range grid {
					watchQuery(t, &grid[gi], id, forbidden)
				}
			}
		case opCrash:
			for gi := range grid {
				crashAndReopen(t, &grid[gi], fmt.Sprintf("op %d", step), forbidden)
			}
		case opCheckpoint:
			for _, g := range grid {
				if g.walDir == "" {
					continue
				}
				if err := g.e.Checkpoint(); err != nil {
					t.Fatalf("op %d: %s: checkpoint: %v", step, g.name, err)
				}
			}
		}
	}
	compare(len(ops))
	// End-of-run recovery: every durable engine must reopen
	// byte-identically one last time, whatever state the sequence left
	// it in.
	for gi := range grid {
		crashAndReopen(t, &grid[gi], "end of run", forbidden)
	}
}

// crashAndReopen crashes one durable grid engine, recovers it from its
// log, asserts the recovered engine is byte-identical to the crashed
// one, and swaps it into the grid. In-memory engines (empty walDir) are
// left alone. Watch subscriptions do not survive a crash — they live in
// the process, not the log — so every watched query is re-subscribed on
// the recovered engine and its reconstruction re-baselined, exactly
// what a real client does after a failover.
func crashAndReopen(t *testing.T, g *eqEngine, context string, forbidden map[QueryID]bool) {
	t.Helper()
	if g.walDir == "" {
		return
	}
	pre := captureState(g.e)
	g.e.crashForTest()
	// Durability and checkpoint cadence are runtime policies, not
	// persisted: re-supply them so the reopened engine keeps the
	// generator's rotation coverage. The scan-all pin and the floor
	// margins are equally runtime choices and must survive reopen for
	// the probe-twin comparison to stay meaningful.
	opts := []Option{WithDurability(DurabilityOff), WithCheckpointEvery(24),
		withFloorMargins(1, 1)}
	if g.scan {
		// The slice-layout pin rides with the scan pin (snapshots restore
		// the layout, but a crash before the first checkpoint recovers
		// from the WAL alone and would silently fall back to blocked).
		opts = append(opts, withScanAllTrees(), WithPostingLayout(LayoutSlices))
	}
	ne, err := Open(g.walDir, opts...)
	if err != nil {
		t.Fatalf("%s: %s: reopen after crash: %v", context, g.name, err)
	}
	g.e = ne
	requireSameState(t, captureState(ne), pre,
		fmt.Sprintf("%s: %s: crash/reopen", context, g.name))
	for id := range g.watched {
		watchQuery(t, g, id, forbidden)
	}
}

// TestMetamorphicEquivalence runs the generator over a fixed seed set
// (fewer under -short). Replay a single failing sequence with
// ITA_EQ_SEED=<seed>.
func TestMetamorphicEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if testing.Short() {
		seeds = seeds[:4]
	}
	if env := os.Getenv("ITA_EQ_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("ITA_EQ_SEED=%q: %v", env, err)
		}
		seeds = []int64{n}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("replay with: ITA_EQ_SEED=%d go test -run TestMetamorphicEquivalence", seed)
			data := make([]byte, 512)
			rand.New(rand.NewSource(seed)).Read(data)
			runOpSequence(t, data)
		})
	}
}

// FuzzOpSequence feeds the byte-seed of the op generator straight to
// the fuzzer: any input decodes to a valid facade op sequence, so
// coverage-guided mutation explores operation interleavings rather than
// parser corner cases. CI runs a 30s smoke (`-fuzz FuzzOpSequence
// -fuzztime 30s`); crashers land in testdata/fuzz as regression inputs.
func FuzzOpSequence(f *testing.F) {
	f.Add([]byte{0, 2, 1, 3, 0, 4, 5, 6})
	f.Add([]byte{1, 2, 9, 2, 0, 7, 1, 3, 6, 6})
	data := make([]byte, 256)
	rand.New(rand.NewSource(99)).Read(data)
	f.Add(data)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		runOpSequence(t, data)
	})
}
