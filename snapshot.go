package ita

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"ita/internal/model"
	"ita/internal/vsm"
	"ita/internal/window"
)

// snapshotVersion guards the wire format; bump on incompatible change.
const snapshotVersion = 1

// snapshot is the serialized engine state. The incremental structures
// (inverted lists, thresholds, result sets) are deliberately excluded:
// they are derivable, and replaying the window through a fresh engine
// rebuilds them in a guaranteed-consistent state.
type snapshot struct {
	Version   int
	Algorithm Algorithm
	// Window policy: exactly one of CountN/SpanNanos is set.
	CountN    int
	SpanNanos int64
	// Analysis configuration.
	Stemming   bool
	Stopwords  bool
	Okapi      bool
	OkapiAvgDL float64
	RetainText bool
	Seed       uint64
	// Shard count of the sharded engine (0 = auto); meaningful only
	// when Algorithm is ShardedIncrementalThreshold. Older snapshots
	// decode it as zero, which restores with the automatic count.
	Shards int
	// Epoch size of WithBatchSize. Older snapshots decode it as zero,
	// which restores unbatched — the pre-batching behavior.
	BatchSize int
	// Dictionary terms in id order, so interned ids survive the round
	// trip and query/document term ids keep matching.
	Terms []string
	// Registered queries.
	Queries []snapshotQuery
	// Valid documents in FIFO (arrival) order.
	Docs []snapshotDoc
	// Retained texts parallel to Docs (empty when RetainText is false).
	Texts     []string
	NextDoc   uint64
	NextQuery uint64
	LastAtNs  int64
}

type snapshotQuery struct {
	ID    uint64
	K     int
	Text  string
	Terms []model.QueryTerm
}

type snapshotDoc struct {
	ID        uint64
	ArrivalNs int64
	Postings  []model.Posting
}

// Snapshot serializes the engine: configuration (including the epoch
// batch size, so a restored engine keeps its ingestion configuration),
// dictionary, registered queries and the current window. Any buffered
// epoch is flushed first so the snapshot captures every ingested
// document. Watchers are not serialized (they are process-local
// callbacks). The engine stays usable afterwards.
func (e *Engine) Snapshot(w io.Writer) error {
	e.mu.Lock()
	err := e.snapshotLocked(w)
	e.queueDeltasLocked(e.collectDeltas())
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

func (e *Engine) snapshotLocked(w io.Writer) error {
	if err := e.flushLocked(); err != nil {
		return err
	}
	s := snapshot{
		Version:    snapshotVersion,
		Algorithm:  e.cfg.algorithm,
		Stemming:   e.cfg.stemming,
		Stopwords:  e.cfg.stopwords,
		RetainText: e.cfg.retainText,
		Seed:       e.cfg.seed,
		Shards:     e.cfg.shards,
		BatchSize:  e.cfg.batchSize,
		NextDoc:    uint64(e.nextDoc),
		NextQuery:  uint64(e.nextQuery),
		LastAtNs:   e.lastAt.UnixNano(),
	}
	switch pol := e.cfg.policy.(type) {
	case window.Count:
		s.CountN = pol.N
	case window.Span:
		s.SpanNanos = int64(pol.D)
	default:
		return fmt.Errorf("ita: cannot snapshot window policy %T", pol)
	}
	if o, ok := e.cfg.weighter.(vsm.Okapi); ok {
		s.Okapi = true
		s.OkapiAvgDL = o.AvgDocLen
	}

	dict := e.pipeline.Dictionary()
	s.Terms = make([]string, dict.Size())
	for i := range s.Terms {
		s.Terms[i] = dict.Term(model.TermID(i))
	}

	e.inner.EachQuery(func(q *model.Query) {
		text, _ := e.QueryText(q.ID)
		s.Queries = append(s.Queries, snapshotQuery{
			ID:    uint64(q.ID),
			K:     q.K,
			Text:  text,
			Terms: q.Terms,
		})
	})
	// EachQuery order is unspecified; sort for a canonical encoding.
	sort.Slice(s.Queries, func(i, j int) bool { return s.Queries[i].ID < s.Queries[j].ID })
	e.inner.EachDoc(func(d *model.Document) {
		s.Docs = append(s.Docs, snapshotDoc{
			ID:        uint64(d.ID),
			ArrivalNs: d.Arrival.UnixNano(),
			Postings:  d.Postings,
		})
		if e.texts != nil {
			s.Texts = append(s.Texts, e.texts.get(d.ID))
		}
	})
	return gob.NewEncoder(w).Encode(&s)
}

// Restore rebuilds an engine from a snapshot written by Snapshot. The
// restored engine serves identical results for every query; internal
// incremental state is recomputed, not copied.
func Restore(r io.Reader) (*Engine, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ita: decode snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("ita: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	opts := []Option{WithAlgorithm(s.Algorithm), WithSeed(s.Seed)}
	if s.Algorithm == ShardedIncrementalThreshold {
		opts = append(opts, WithShards(s.Shards))
	}
	if s.BatchSize > 1 {
		opts = append(opts, WithBatchSize(s.BatchSize))
	}
	if s.CountN > 0 {
		opts = append(opts, WithCountWindow(s.CountN))
	} else {
		opts = append(opts, WithTimeWindow(time.Duration(s.SpanNanos)))
	}
	if !s.Stemming {
		opts = append(opts, WithoutStemming())
	}
	if !s.Stopwords {
		opts = append(opts, WithoutStopwords())
	}
	if s.Okapi {
		opts = append(opts, WithOkapiScoring(s.OkapiAvgDL))
	}
	if s.RetainText {
		opts = append(opts, WithTextRetention())
	}
	e, err := New(opts...)
	if err != nil {
		return nil, fmt.Errorf("ita: restore: %w", err)
	}

	// Rebuild the dictionary with identical interning order.
	dict := e.pipeline.Dictionary()
	for i, term := range s.Terms {
		if id := dict.Intern(term); id != model.TermID(i) {
			return nil, fmt.Errorf("ita: dictionary out of order at %d (%q)", i, term)
		}
	}

	// Queries first (their initial searches run on an empty window and
	// are cheap), then the window replays in arrival order.
	for _, sq := range s.Queries {
		q, err := model.NewQuery(model.QueryID(sq.ID), sq.K, sq.Terms)
		if err != nil {
			return nil, fmt.Errorf("ita: restore query %d: %w", sq.ID, err)
		}
		if err := e.inner.Register(q); err != nil {
			return nil, fmt.Errorf("ita: restore query %d: %w", sq.ID, err)
		}
		e.queryText.Store(model.QueryID(sq.ID), sq.Text)
	}
	for i, sd := range s.Docs {
		at := time.Unix(0, sd.ArrivalNs)
		doc, err := model.NewDocument(model.DocID(sd.ID), at, sd.Postings)
		if err != nil {
			return nil, fmt.Errorf("ita: restore doc %d: %w", sd.ID, err)
		}
		if err := e.inner.Process(doc); err != nil {
			return nil, fmt.Errorf("ita: restore doc %d: %w", sd.ID, err)
		}
		if e.texts != nil && i < len(s.Texts) {
			e.texts.add(doc.ID, at, s.Texts[i])
		}
	}
	e.nextDoc = model.DocID(s.NextDoc)
	e.nextQuery = model.QueryID(s.NextQuery)
	e.lastAt = time.Unix(0, s.LastAtNs)
	// The replay above bypassed the facade's boundary hooks; publish
	// once so wait-free readers of the restored engine see the replayed
	// window immediately.
	e.publishLocked()
	return e, nil
}
