package ita

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/vsm"
	"ita/internal/window"
)

// snapshotVersion guards the wire format; bump on incompatible change.
// Version history:
//
//	1 — configuration, dictionary, queries, window documents. Restoring
//	    replays the window through a fresh engine, which reproduces
//	    results but recomputes thresholds and counters from scratch.
//	2 — adds the exact incremental state (per-query local thresholds
//	    and full result lists), the operation counters, and the epoch
//	    sequence number used by WAL checkpoints. Restoring reconstructs
//	    the engine byte-identically: results, Stats, and every future
//	    maintenance decision match an engine that never restarted.
//	3 — the engine's incremental state is now a per-query score floor
//	    (plus the full result list) instead of per-term positional
//	    thresholds; snapshotQuery gains Floor and the Theta arrays are
//	    retained only to decode older snapshots. A version-3 snapshot
//	    restores exactly; version-2 (and 1) snapshots restore through
//	    the replay path, which reproduces identical results while
//	    recomputing floors and counters.
const snapshotVersion = 3

// snapshot is the serialized engine state. Up to version 1 the
// incremental structures (inverted lists, thresholds, result sets) were
// deliberately excluded as derivable; version 2 carries the per-query
// threshold and result state so that a restore is exact, not merely
// result-equivalent — the property the WAL's crash-recovery equivalence
// guarantee is built on. The inverted index itself remains derivable
// (it is a pure function of the window documents) and is still rebuilt.
type snapshot struct {
	Version   int
	Algorithm Algorithm
	// Window policy: exactly one of CountN/SpanNanos is set.
	CountN    int
	SpanNanos int64
	// Analysis configuration.
	Stemming   bool
	Stopwords  bool
	Okapi      bool
	OkapiAvgDL float64
	RetainText bool
	Seed       uint64
	// Shard count of the sharded engine (0 = auto); meaningful only
	// when Algorithm is ShardedIncrementalThreshold. Older snapshots
	// decode it as zero, which restores with the automatic count.
	Shards int
	// Epoch size of WithBatchSize. Older snapshots decode it as zero,
	// which restores unbatched — the pre-batching behavior.
	BatchSize int
	// Posting layout of the inverted index (WithPostingLayout). The
	// lists themselves are derivable state and never serialized, so the
	// layout is free to differ between a snapshot and its restored twin;
	// recording it keeps a durable engine's configuration sticky across
	// reopen. Older snapshots decode it as zero — the blocked default.
	PostingLayout int
	// Dictionary terms in id order, so interned ids survive the round
	// trip and query/document term ids keep matching.
	Terms []string
	// Registered queries.
	Queries []snapshotQuery
	// Valid documents in FIFO (arrival) order.
	Docs []snapshotDoc
	// Retained texts parallel to Docs (empty when RetainText is false).
	Texts     []string
	NextDoc   uint64
	NextQuery uint64
	LastAtNs  int64

	// Version 2: exact-state restoration. ExactState reports whether the
	// per-query ThetaW/ThetaDoc/RDoc/RScore arrays and Counters were
	// captured (true for the ITA engines, false for the Naïve baselines,
	// and always false in version-1 snapshots, where gob decodes the
	// absent fields as zero values).
	ExactState bool
	Counters   Stats
	// EpochSeq is the durable epoch boundary count at capture; WAL
	// checkpoints use it to name segments and resume marker numbering.
	EpochSeq uint64
}

type snapshotQuery struct {
	ID    uint64
	K     int
	Text  string
	Terms []model.QueryTerm

	// Exact state. Version 3 captures the query's score floor and the
	// full result list R (parallel RDoc/RScore arrays, result order).
	// ThetaW/ThetaDoc carried version 2's per-term positional thresholds;
	// they are kept so old snapshots decode, but the floor engine cannot
	// reconstruct exact state from them (those restore via replay).
	Floor    float64
	ThetaW   []float64
	ThetaDoc []uint64
	RDoc     []uint64
	RScore   []float64
}

type snapshotDoc struct {
	ID        uint64
	ArrivalNs int64
	Postings  []model.Posting
}

// Snapshot serializes the engine: configuration (including the epoch
// batch size, so a restored engine keeps its ingestion configuration),
// dictionary, registered queries with their exact incremental state,
// operation counters and the current window. Any buffered epoch is
// flushed first so the snapshot captures every ingested document.
// Watchers are not serialized (they are process-local callbacks). The
// engine stays usable afterwards.
func (e *Engine) Snapshot(w io.Writer) error {
	e.mu.Lock()
	// Gated on followers too: the pre-snapshot flush would create a
	// local epoch boundary the primary's record stream never had.
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	err := e.snapshotLocked(w)
	e.queueDeltasLocked(e.collectDeltas())
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

func (e *Engine) snapshotLocked(w io.Writer) error {
	if err := e.flushExplicitLocked(); err != nil {
		return err
	}
	return e.encodeSnapshotLocked(w)
}

// encodeSnapshotLocked writes the snapshot of the current state. Must
// be called with e.mu held and no buffered epoch pending (checkpoints
// rely on that invariant: every logged record up to this boundary is
// reflected in the encoded state).
func (e *Engine) encodeSnapshotLocked(w io.Writer) error {
	if len(e.pending) != 0 {
		return fmt.Errorf("ita: snapshot with %d buffered documents", len(e.pending))
	}
	s := snapshot{
		Version:       snapshotVersion,
		Algorithm:     e.cfg.algorithm,
		Stemming:      e.cfg.stemming,
		Stopwords:     e.cfg.stopwords,
		RetainText:    e.cfg.retainText,
		Seed:          e.cfg.seed,
		Shards:        e.cfg.shards,
		BatchSize:     e.cfg.batchSize,
		PostingLayout: int(e.cfg.postingLayout),
		NextDoc:       uint64(e.nextDoc),
		NextQuery:     uint64(e.nextQuery),
		LastAtNs:      e.lastAt.UnixNano(),
		Counters:      *e.inner.Stats(),
		EpochSeq:      e.walEpochSeq(),
	}
	switch pol := e.cfg.policy.(type) {
	case window.Count:
		s.CountN = pol.N
	case window.Span:
		s.SpanNanos = int64(pol.D)
	default:
		return fmt.Errorf("ita: cannot snapshot window policy %T", pol)
	}
	if o, ok := e.cfg.weighter.(vsm.Okapi); ok {
		s.Okapi = true
		s.OkapiAvgDL = o.AvgDocLen
	}

	dict := e.pipeline.Dictionary()
	s.Terms = make([]string, dict.Size())
	for i := range s.Terms {
		s.Terms[i] = dict.Term(model.TermID(i))
	}

	exporter, exact := e.inner.(core.StateSnapshotter)
	s.ExactState = exact
	e.inner.EachQuery(func(q *model.Query) {
		text, _ := e.QueryText(q.ID)
		sq := snapshotQuery{
			ID:    uint64(q.ID),
			K:     q.K,
			Text:  text,
			Terms: q.Terms,
		}
		if exact {
			st, ok := exporter.ExportQueryState(q.ID)
			if !ok {
				panic("ita: registered query has no exportable state")
			}
			sq.Floor = st.F
			sq.RDoc = make([]uint64, len(st.R))
			sq.RScore = make([]float64, len(st.R))
			for i, sd := range st.R {
				sq.RDoc[i] = uint64(sd.Doc)
				sq.RScore[i] = sd.Score
			}
		}
		s.Queries = append(s.Queries, sq)
	})
	// EachQuery order is unspecified; sort for a canonical encoding.
	sort.Slice(s.Queries, func(i, j int) bool { return s.Queries[i].ID < s.Queries[j].ID })
	e.inner.EachDoc(func(d *model.Document) {
		s.Docs = append(s.Docs, snapshotDoc{
			ID:        uint64(d.ID),
			ArrivalNs: d.Arrival.UnixNano(),
			Postings:  d.Postings,
		})
		if e.texts != nil {
			s.Texts = append(s.Texts, e.texts.get(d.ID))
		}
	})
	return gob.NewEncoder(w).Encode(&s)
}

// options reconstructs the engine options a snapshot was taken with.
func (s *snapshot) options() []Option {
	opts := []Option{WithAlgorithm(s.Algorithm), WithSeed(s.Seed)}
	if s.Algorithm == ShardedIncrementalThreshold {
		opts = append(opts, WithShards(s.Shards))
	}
	if s.BatchSize > 1 {
		opts = append(opts, WithBatchSize(s.BatchSize))
	}
	if s.PostingLayout != 0 {
		opts = append(opts, WithPostingLayout(PostingLayout(s.PostingLayout)))
	}
	if s.CountN > 0 {
		opts = append(opts, WithCountWindow(s.CountN))
	} else {
		opts = append(opts, WithTimeWindow(time.Duration(s.SpanNanos)))
	}
	if !s.Stemming {
		opts = append(opts, WithoutStemming())
	}
	if !s.Stopwords {
		opts = append(opts, WithoutStopwords())
	}
	if s.Okapi {
		opts = append(opts, WithOkapiScoring(s.OkapiAvgDL))
	}
	if s.RetainText {
		opts = append(opts, WithTextRetention())
	}
	return opts
}

// Restore rebuilds an engine from a snapshot written by Snapshot. A
// version-2 snapshot of an ITA engine restores the exact incremental
// state — results, thresholds, operation counters and all future
// maintenance decisions are byte-identical to the snapshotted engine.
// Version-1 snapshots and Naïve engines restore by replaying the
// window, which reproduces identical results while recomputing the
// internal state.
func Restore(r io.Reader) (*Engine, error) {
	s, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	return restoreSnapshot(s, nil)
}

func decodeSnapshot(r io.Reader) (*snapshot, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ita: decode snapshot: %w", err)
	}
	if s.Version < 1 || s.Version > snapshotVersion {
		return nil, fmt.Errorf("ita: snapshot version %d, want 1..%d", s.Version, snapshotVersion)
	}
	return &s, nil
}

// restoreSnapshot builds an engine from a decoded snapshot. extraOpts
// are applied after the snapshot's own options (the durable Open path
// passes its WAL configuration through here).
func restoreSnapshot(s *snapshot, extraOpts []Option) (*Engine, error) {
	e, err := New(append(s.options(), extraOpts...)...)
	if err != nil {
		return nil, fmt.Errorf("ita: restore: %w", err)
	}

	// Rebuild the dictionary with identical interning order.
	dict := e.pipeline.Dictionary()
	for i, term := range s.Terms {
		if id := dict.Intern(term); id != model.TermID(i) {
			return nil, fmt.Errorf("ita: dictionary out of order at %d (%q)", i, term)
		}
	}

	restorer, exact := e.inner.(core.StateSnapshotter)
	// Version-2 exact state is positional (per-term thresholds); the
	// floor engine cannot adopt it, so only version 3+ restores exactly.
	exact = exact && s.ExactState && s.Version >= 3

	docs := make([]*model.Document, len(s.Docs))
	for i, sd := range s.Docs {
		doc, err := model.NewDocument(model.DocID(sd.ID), time.Unix(0, sd.ArrivalNs), sd.Postings)
		if err != nil {
			return nil, fmt.Errorf("ita: restore doc %d: %w", sd.ID, err)
		}
		docs[i] = doc
	}

	if exact {
		// Exact path: window first (no maintenance — there are no queries
		// yet and RestoreWindow runs none), then each query's state
		// verbatim, then the counters.
		if err := restorer.RestoreWindow(docs); err != nil {
			return nil, fmt.Errorf("ita: restore window: %w", err)
		}
		for _, sq := range s.Queries {
			q, st, err := sq.decodeState()
			if err != nil {
				return nil, err
			}
			// Duplicate query texts share one canonical term vector, as
			// they would have had every query been registered live.
			if terms := e.internedTermsLocked(sq.Text); terms != nil {
				q.Terms = terms
			}
			if err := restorer.RestoreQueryState(q, st); err != nil {
				return nil, fmt.Errorf("ita: restore query %d: %w", sq.ID, err)
			}
			e.queryText.Store(model.QueryID(sq.ID), sq.Text)
			e.internStoreLocked(sq.Text, q.Terms)
		}
		restorer.SetStats(s.Counters)
	} else {
		// Replay path: queries first (their initial searches run on an
		// empty window and are cheap), then the window replays in arrival
		// order.
		for _, sq := range s.Queries {
			q, err := model.NewQuery(model.QueryID(sq.ID), sq.K, sq.Terms)
			if err != nil {
				return nil, fmt.Errorf("ita: restore query %d: %w", sq.ID, err)
			}
			if terms := e.internedTermsLocked(sq.Text); terms != nil {
				q.Terms = terms
			}
			if err := e.inner.Register(q); err != nil {
				return nil, fmt.Errorf("ita: restore query %d: %w", sq.ID, err)
			}
			e.queryText.Store(model.QueryID(sq.ID), sq.Text)
			e.internStoreLocked(sq.Text, q.Terms)
		}
		for _, doc := range docs {
			if err := e.inner.Process(doc); err != nil {
				return nil, fmt.Errorf("ita: restore doc %d: %w", doc.ID, err)
			}
		}
	}
	if e.texts != nil {
		for i, doc := range docs {
			if i < len(s.Texts) {
				e.texts.add(doc.ID, doc.Arrival, s.Texts[i])
			}
		}
	}
	e.nextDoc = model.DocID(s.NextDoc)
	e.nextQuery = model.QueryID(s.NextQuery)
	e.lastAt = time.Unix(0, s.LastAtNs)
	// The rebuild above bypassed the facade's boundary hooks; publish
	// once so wait-free readers of the restored engine see the window
	// immediately.
	e.publishLocked()
	return e, nil
}

// decodeState validates and decodes one query's exact state.
func (sq *snapshotQuery) decodeState() (*model.Query, core.QueryState, error) {
	q, err := model.NewQuery(model.QueryID(sq.ID), sq.K, sq.Terms)
	if err != nil {
		return nil, core.QueryState{}, fmt.Errorf("ita: restore query %d: %w", sq.ID, err)
	}
	if len(sq.RDoc) != len(sq.RScore) {
		return nil, core.QueryState{}, fmt.Errorf("ita: restore query %d: mismatched state arrays", sq.ID)
	}
	st := core.QueryState{
		F: sq.Floor,
		R: make([]model.ScoredDoc, len(sq.RDoc)),
	}
	for i := range sq.RDoc {
		st.R[i] = model.ScoredDoc{Doc: model.DocID(sq.RDoc[i]), Score: sq.RScore[i]}
	}
	return q, st, nil
}
