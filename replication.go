package ita

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"time"

	"ita/internal/core"
	"ita/internal/repl"
	"ita/internal/wal"
)

// This file wires warm-standby replication (internal/repl) through the
// facade. The primary streams its WAL to followers as it writes it;
// each follower byte-mirrors the segments into its own directory and
// replays the records through the same locked operation paths recovery
// uses, publishing a wait-free read boundary at every epoch marker. A
// follower therefore serves Results, ResultsAll, Stats and Watch at all
// times, always at a state the primary's WAL actually passed through,
// and Promote flips it into a writable primary in place.
//
// The follower's durable position — (segment, offset) plus a CRC over
// its local tail — is what reconnection negotiates from: matching tail
// bytes resume the stream exactly there, anything else (divergence
// after a promote, a resume position past the primary's retention cap)
// falls back to a full checkpoint fetch and tail replay.

// Errors of the replication API. The canonical values live in
// internal/core so the cluster router can match them without importing
// this package; these are the same error values, not copies —
// errors.Is identities hold across both names.
var (
	// ErrReadOnly is returned by mutating operations on a follower;
	// Promote makes it writable.
	ErrReadOnly = core.ErrReadOnly
	// ErrClosed is returned by operations on a closed engine.
	ErrClosed = core.ErrClosed
)

// replTuning overrides replication timings and dialing; see
// withReplTuning in options.go. The zero value of every field takes the
// production default.
type replTuning struct {
	id           string // follower identity; default: the WAL directory path
	dial         func(addr string, timeout time.Duration) (net.Conn, error)
	dialTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	minBackoff   time.Duration
	maxBackoff   time.Duration
	heartbeat    time.Duration // primary-side heartbeat interval
	ackTimeout   time.Duration // primary-side silent-follower cutoff
}

// replState is the engine's replication attachment; nil until
// StartReplication or OpenFollower.
type replState struct {
	// Primary side.
	tracker *repl.Tracker
	server  *repl.Server
	// Follower side.
	client   *repl.Client
	head     repl.Position // last observed primary head
	promoted bool
}

// replPublishLocked publishes the clean end of the log to the
// replication tracker, waking streaming connections. Must be called
// with e.mu held, after every successful append, boundary marker and
// checkpoint rotation. A no-op without a started replication server.
func (e *Engine) replPublishLocked() {
	if e.repl == nil || e.repl.tracker == nil {
		return
	}
	w := e.wal
	e.repl.tracker.Set(repl.Position{Seq: w.ckptSeq, Off: w.log.Offset(), Epoch: w.epochSeq})
}

// walKeepSegLocked builds the segment-retention predicate for a
// checkpoint's GC pass: within the newest `retain` completed segments,
// a segment survives while some registered follower still needs it (or,
// before any follower has acked, unconditionally as grace). Returns nil
// — plain GC — when retention is off. Must be called with e.mu held.
func (e *Engine) walKeepSegLocked(st wal.DirState, cur uint64) func(uint64) bool {
	w := e.wal
	if w == nil || w.retain <= 0 {
		return nil
	}
	var older []uint64
	for _, s := range st.Segments {
		if s < cur {
			older = append(older, s)
		}
	}
	if len(older) > w.retain {
		older = older[len(older)-w.retain:]
	}
	window := make(map[uint64]bool, len(older))
	for _, s := range older {
		window[s] = true
	}
	var floor uint64
	haveFloor := false
	if e.repl != nil && e.repl.server != nil {
		floor, haveFloor = e.repl.server.MinPinnedSeq()
	}
	return func(seq uint64) bool {
		if !window[seq] {
			return false
		}
		if !haveFloor {
			return true
		}
		return seq >= floor
	}
}

// StartReplication makes a durable primary stream its WAL to followers:
// it listens on addr (host:port; port 0 picks a free one) and serves
// every follower that connects. The returned address is the bound
// listener address. Calling it on a follower (before Promote), a
// non-durable engine or twice is an error.
func (e *Engine) StartReplication(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ita: replication listen: %w", err)
	}
	if err := e.startReplicationOn(l); err != nil {
		l.Close()
		return nil, err
	}
	return l.Addr(), nil
}

// startReplicationOn is StartReplication over a caller-provided
// listener (the fault-injection tests wrap one).
func (e *Engine) startReplicationOn(l net.Listener) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.wal == nil {
		return errors.New("ita: replication requires a durable engine (ita.Open or WithWAL)")
	}
	if e.readOnly {
		return errors.New("ita: a follower cannot serve replication; Promote first")
	}
	if e.repl != nil && e.repl.server != nil {
		return errors.New("ita: replication already started")
	}
	w := e.wal
	if w.retain <= 0 {
		w.retain = 8
	}
	if e.repl == nil {
		e.repl = &replState{}
	}
	tr := repl.NewTracker(repl.Position{Seq: w.ckptSeq, Off: w.log.Offset(), Epoch: w.epochSeq})
	cfg := repl.ServerConfig{Dir: w.dir, Tracker: tr}
	if t := w.tune; t != nil {
		cfg.Heartbeat = t.heartbeat
		cfg.AckTimeout = t.ackTimeout
		cfg.WriteTimeout = t.writeTimeout
	}
	srv := repl.NewServer(cfg)
	e.repl.tracker, e.repl.server = tr, srv
	go srv.Serve(l)
	return nil
}

// OpenFollower opens a warm-standby replica of the primary replicating
// at primaryAddr. A fresh directory bootstraps itself by fetching the
// primary's current checkpoint; a directory holding earlier follower
// state recovers from it and resumes the stream at its durable
// position. The returned engine is read-only — mutating operations
// return ErrReadOnly — while reads and Watch serve the replicated
// state at every acknowledged epoch boundary. Call Promote to turn it
// into a writable primary.
func OpenFollower(dir, primaryAddr string, opts ...Option) (*Engine, error) {
	probe := config{stemming: true, stopwords: true, seed: 1}
	for _, o := range opts {
		if err := o(&probe); err != nil {
			return nil, err
		}
	}
	ccfg := followerClientConfig(dir, primaryAddr, probe.replTune)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ita: open follower dir: %w", err)
	}
	st, err := wal.ScanDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ita: scan follower dir: %w", err)
	}
	if _, found := st.Latest(); !found {
		// Fresh directory: bootstrap from the primary's checkpoint so
		// Open's recovery path does the rest. Written with the same
		// tmp-rename discipline as a local checkpoint.
		seq, data, err := fetchSnapshotRetry(ccfg)
		if err != nil {
			return nil, fmt.Errorf("ita: bootstrap from primary: %w", err)
		}
		if err := writeCheckpointFile(dir, seq, data); err != nil {
			return nil, err
		}
	}
	e, err := openDurable(dir, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.readOnly = true
	// Follower apply mode is recovery mode made permanent: records
	// arrive from the wire already logged (byte-mirrored), so the replay
	// paths must not re-append them.
	e.wal.recovering = true
	e.repl = &replState{}
	cli := repl.NewClient(ccfg, &followerApplier{e: e})
	e.repl.client = cli
	e.mu.Unlock()
	cli.Start()
	return e, nil
}

func followerClientConfig(dir, primaryAddr string, t *replTuning) repl.ClientConfig {
	cfg := repl.ClientConfig{Addr: primaryAddr, ID: dir}
	if t != nil {
		if t.id != "" {
			cfg.ID = t.id
		}
		cfg.Dial = t.dial
		cfg.DialTimeout = t.dialTimeout
		cfg.ReadTimeout = t.readTimeout
		cfg.WriteTimeout = t.writeTimeout
		cfg.MinBackoff = t.minBackoff
		cfg.MaxBackoff = t.maxBackoff
	}
	return cfg
}

// fetchSnapshotRetry fetches the primary's checkpoint with the same
// backoff the streaming client uses, bounded to a handful of attempts
// so OpenFollower fails in bounded time when the primary is down.
func fetchSnapshotRetry(cfg repl.ClientConfig) (uint64, []byte, error) {
	backoff := cfg.MinBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		seq, data, err := repl.FetchSnapshot(cfg)
		if err == nil {
			return seq, data, nil
		}
		lastErr = err
		time.Sleep(backoff)
		backoff *= 2
	}
	return 0, nil, lastErr
}

// writeCheckpointFile persists checkpoint bytes crash-atomically:
// tmp, fsync, rename, directory fsync.
func writeCheckpointFile(dir string, seq uint64, data []byte) error {
	tmp := wal.CheckpointTmpPath(dir, seq)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ita: write checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ita: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ita: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ita: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, wal.CheckpointPath(dir, seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ita: rename checkpoint: %w", err)
	}
	wal.SyncDir(dir)
	return nil
}

// Promote turns a follower into a writable primary. The replication
// client is stopped first, so the promoted state is exactly the replay
// of a clean prefix of the primary's WAL — the same guarantee crash
// recovery gives — and every epoch the follower acknowledged is
// included. After Promote the engine accepts mutations and may itself
// call StartReplication to serve the next generation of followers.
// Promoting a primary is an error; promoting twice is a no-op error of
// the same kind.
func (e *Engine) Promote() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if !e.readOnly {
		e.mu.Unlock()
		return errors.New("ita: Promote on an engine that is not a follower")
	}
	var cli *repl.Client
	if e.repl != nil {
		cli = e.repl.client
	}
	e.mu.Unlock()
	// Stop the stream outside the lock (the applier's calls take e.mu);
	// after Stop returns no further apply can be in flight.
	if cli != nil {
		cli.Stop()
	}
	e.mu.Lock()
	if e.repl != nil {
		e.repl.client = nil
		e.repl.promoted = true
	}
	e.readOnly = false
	e.wal.recovering = false
	e.mu.Unlock()
	return nil
}

// followerApplier adapts the engine to repl.Applier. Every method takes
// e.mu; watch deltas produced by applied epochs are delivered outside
// it, exactly as the primary's operation paths do.
type followerApplier struct {
	e *Engine
}

func (a *followerApplier) Position() (repl.Position, bool) {
	e := a.e
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.wal
	if w == nil || w.log == nil {
		return repl.Position{}, false
	}
	return repl.Position{Seq: w.ckptSeq, Off: w.log.Offset(), Epoch: w.epochSeq}, true
}

func (a *followerApplier) TailCRC(maxBytes int64) (uint32, int64) {
	e := a.e
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.wal
	if w == nil || w.log == nil {
		return 0, 0
	}
	off := w.log.Offset()
	data, err := os.ReadFile(wal.SegmentPath(w.dir, w.ckptSeq))
	if err != nil || int64(len(data)) < off {
		return 0, 0
	}
	n := maxBytes
	if n > off {
		n = off
	}
	return crc32.Checksum(data[off-n:off], crc32.MakeTable(crc32.Castagnoli)), n
}

func (a *followerApplier) ApplyChunk(seq uint64, off int64, head uint64, data []byte) (int, error) {
	e := a.e
	e.mu.Lock()
	n, err := e.applyChunkLocked(seq, off, data)
	e.mu.Unlock()
	e.deliverQueued()
	return n, err
}

// applyChunkLocked byte-mirrors one chunk of primary segment bytes and
// replays its records. Log-before-apply holds on the follower too: the
// bytes land in the local segment before the first record mutates
// state, so a follower crash recovers to a state the ack stream
// covers.
func (e *Engine) applyChunkLocked(seq uint64, off int64, data []byte) (int, error) {
	if e.closed {
		return 0, ErrClosed
	}
	w := e.wal
	if w == nil || !e.readOnly {
		return 0, errors.New("ita: chunk apply on a non-follower")
	}
	if seq != w.ckptSeq || off != w.log.Offset() {
		return 0, repl.ErrNeedSnapshot
	}
	res := wal.Scan(data)
	if res.Torn || res.Clean != int64(len(data)) {
		return 0, fmt.Errorf("ita: replicated chunk is not frame-aligned")
	}
	if err := w.log.AppendRaw(data); err != nil {
		return 0, err
	}
	synced := w.mode != wal.DurabilityEpochSync // Always synced in AppendRaw; Off never
	for i := range res.Records {
		if err := e.replayRecord(&res.Records[i]); err != nil {
			return i, fmt.Errorf("ita: apply replicated record: %w", err)
		}
		if !synced && res.Records[i].Kind == wal.KindEpoch {
			// Epoch-durability parity with the primary: the chunk carries a
			// boundary, so it must be on stable storage before the ack
			// claims it.
			if err := w.log.Sync(); err != nil {
				return i, err
			}
			synced = true
		}
	}
	return len(res.Records), nil
}

func (a *followerApplier) Rotate(seq uint64) error {
	e := a.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	w := e.wal
	if w == nil || !e.readOnly {
		return errors.New("ita: rotate on a non-follower")
	}
	// The primary checkpoints only at a boundary with an empty epoch
	// buffer; a mirrored follower is in the same state. Anything else
	// means the streams diverged.
	if w.epochSeq != seq || len(e.pending) != 0 {
		return repl.ErrNeedSnapshot
	}
	return e.writeCheckpointLocked(seq)
}

func (a *followerApplier) ApplySnapshot(seq uint64, data []byte) error {
	e := a.e
	e.mu.Lock()
	err := e.applySnapshotLocked(seq, data)
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

// applySnapshotLocked is the follower's full resync: persist the
// primary's checkpoint, rebuild an engine from it and graft that
// engine's state into this one in place, preserving the facade identity
// (watchers, published-view continuity) the caller holds.
func (e *Engine) applySnapshotLocked(seq uint64, data []byte) error {
	if e.closed {
		return ErrClosed
	}
	w := e.wal
	if w == nil || !e.readOnly {
		return errors.New("ita: snapshot apply on a non-follower")
	}
	snap, err := decodeSnapshot(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("ita: replicated checkpoint: %w", err)
	}
	if err := writeCheckpointFile(w.dir, seq, data); err != nil {
		return err
	}
	// Thread the runtime-only knobs through like Open's recovery does:
	// they are not persisted in the primary's checkpoint, and losing
	// them across a resync would change the rebuilt engine's floor
	// maintenance schedule mid-stream.
	extra := []Option{WithWAL(w.dir), walAttached()}
	if e.cfg.scanTrees {
		extra = append(extra, withScanAllTrees())
	}
	if e.cfg.floorTarget != 0 || e.cfg.floorRaise != 0 {
		extra = append(extra, withFloorMargins(e.cfg.floorTarget, e.cfg.floorRaise))
	}
	ne, err := restoreSnapshot(snap, extra)
	if err != nil {
		return err
	}
	sf, err := w.hooks.createFile(wal.SegmentPath(w.dir, seq))
	if err != nil {
		if c, ok := ne.inner.(interface{ Close() error }); ok {
			c.Close()
		}
		return fmt.Errorf("ita: create segment: %w", err)
	}
	wal.SyncDir(w.dir)
	ne.wal = &walState{
		dir: w.dir, mode: w.mode, every: w.every, retain: w.retain, tune: w.tune, hooks: w.hooks,
		epochSeq: snap.EpochSeq, markerSeq: snap.EpochSeq, ckptSeq: seq,
		recovering: true, log: wal.NewLog(sf, 0, w.mode),
	}
	e.adoptLocked(ne)
	if st, err := wal.ScanDir(e.wal.dir); err == nil {
		wal.GC(e.wal.dir, st, seq)
	}
	// Watchers observe the resync as one coalesced delta per query
	// (collectDeltas diffs against their pre-resync baselines and drops
	// watches on queries that no longer exist).
	e.queueDeltasLocked(e.collectDeltas())
	return nil
}

// adoptLocked grafts a freshly restored engine's state into e, keeping
// e's identity: its mutex, its watch subscriptions, its published-view
// sequence and the delivery queue keep flowing across the swap. The old
// inner engine and log are closed. Must be called with e.mu held.
func (e *Engine) adoptLocked(ne *Engine) {
	if c, ok := e.inner.(interface{ Close() error }); ok {
		c.Close()
	}
	if e.wal != nil && e.wal.log != nil {
		e.wal.log.Close()
	}
	e.cfg = ne.cfg
	e.inner = ne.inner
	e.pipeline = ne.pipeline
	e.nextDoc, e.nextQuery, e.lastAt = ne.nextDoc, ne.nextQuery, ne.lastAt
	e.texts = ne.texts
	e.interned = ne.interned
	e.wal = ne.wal
	e.pending, e.pendingText = nil, nil
	e.queryText.Range(func(k, _ any) bool {
		e.queryText.Delete(k)
		return true
	})
	ne.queryText.Range(func(k, v any) bool {
		e.queryText.Store(k, v)
		return true
	})
	// e.pub is NOT replaced: publishLocked (inside the caller's
	// collectDeltas) republishes from the adopted inner engine under e's
	// own monotonic sequence, so wait-free readers never see the
	// sequence jump backwards.
}

func (a *followerApplier) ObserveHead(p repl.Position) {
	e := a.e
	e.mu.Lock()
	if e.repl != nil && e.repl.head.Less(p) {
		e.repl.head = p
	}
	e.mu.Unlock()
}

// FollowerInfo is the primary's view of one follower.
type FollowerInfo struct {
	ID         string    `json:"id"`
	Addr       string    `json:"addr"`
	Connected  bool      `json:"connected"`
	AckSeq     uint64    `json:"ack_seq"`
	AckOff     int64     `json:"ack_off"`
	AckEpoch   uint64    `json:"ack_epoch"`
	LagEpochs  uint64    `json:"lag_epochs"`
	LastAck    time.Time `json:"last_ack"`
	Reconnects uint64    `json:"reconnects"`
}

// ReplicationStats is the engine's replication gauge; see
// Engine.ReplicationStats.
type ReplicationStats struct {
	// Role is "none", "primary" or "follower".
	Role string `json:"role"`
	// Primary side: one entry per follower that ever connected.
	Followers []FollowerInfo `json:"followers,omitempty"`
	// Follower side.
	Connected      bool   `json:"connected,omitempty"`
	Reconnects     uint64 `json:"reconnects,omitempty"`
	Resyncs        uint64 `json:"resyncs,omitempty"`
	AppliedRecords uint64 `json:"applied_records,omitempty"`
	AppliedSeq     uint64 `json:"applied_seq,omitempty"`
	AppliedOff     int64  `json:"applied_off,omitempty"`
	AppliedEpoch   uint64 `json:"applied_epoch,omitempty"`
	HeadSeq        uint64 `json:"head_seq,omitempty"`
	HeadOff        int64  `json:"head_off,omitempty"`
	HeadEpoch      uint64 `json:"head_epoch,omitempty"`
	// LagEpochs is the primary's head epoch minus the applied epoch (0
	// when caught up); LagBytes the byte distance within the same
	// segment (-1 when the positions are in different segments).
	LagEpochs uint64 `json:"lag_epochs"`
	LagBytes  int64  `json:"lag_bytes"`
	LastError string `json:"last_error,omitempty"`
}

// ReplicationStats reports the engine's replication state: per-follower
// ack positions and lag on a primary, applied/head positions, lag and
// reconnect counts on a follower. Role "none" means replication is not
// configured.
func (e *Engine) ReplicationStats() ReplicationStats {
	e.mu.Lock()
	r := e.repl
	readOnly := e.readOnly
	var cur repl.Position
	if e.wal != nil && e.wal.log != nil {
		cur = repl.Position{Seq: e.wal.ckptSeq, Off: e.wal.log.Offset(), Epoch: e.wal.epochSeq}
	}
	var head repl.Position
	var cli *repl.Client
	var srv *repl.Server
	if r != nil {
		head, cli, srv = r.head, r.client, r.server
	}
	e.mu.Unlock()

	var out ReplicationStats
	switch {
	case r == nil:
		out.Role = "none"
		return out
	case readOnly || cli != nil:
		out.Role = "follower"
		if cli != nil {
			cs := cli.Stats()
			out.Connected = cs.Connected
			out.Reconnects = cs.Reconnects
			out.Resyncs = cs.Resyncs
			out.AppliedRecords = cs.AppliedRecords
			out.LastError = cs.LastError
		}
		out.AppliedSeq, out.AppliedOff, out.AppliedEpoch = cur.Seq, cur.Off, cur.Epoch
		out.HeadSeq, out.HeadOff, out.HeadEpoch = head.Seq, head.Off, head.Epoch
		if head.Epoch > cur.Epoch {
			out.LagEpochs = head.Epoch - cur.Epoch
		}
		switch {
		case head.Seq == cur.Seq && head.Off > cur.Off:
			out.LagBytes = head.Off - cur.Off
		case head.Seq != cur.Seq:
			out.LagBytes = -1
		}
		return out
	default:
		out.Role = "primary"
		if srv != nil {
			for _, f := range srv.Followers() {
				info := FollowerInfo{
					ID: f.ID, Addr: f.Addr, Connected: f.Connected,
					AckSeq: f.AckSeq, AckOff: f.AckOff, AckEpoch: f.AckEpoch,
					LastAck: f.LastAck, Reconnects: f.Reconnects,
				}
				if cur.Epoch > f.AckEpoch {
					info.LagEpochs = cur.Epoch - f.AckEpoch
				}
				out.Followers = append(out.Followers, info)
			}
		}
		return out
	}
}
