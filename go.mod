module ita

go 1.24
