// Command itabench regenerates the paper's experimental figures and the
// repository's ablation studies (DESIGN.md §5).
//
// Usage:
//
//	itabench -exp all                 # every figure, quick profile
//	itabench -exp fig3b -profile paper
//	itabench -exp setup               # corpus calibration report (E0)
//	itabench -exp ablations -csv out/ # ablations, also written as CSV
//	itabench -exp throughput -queries 10000 -shards 1,2,4,8 -json BENCH_SHARDED.json
//	itabench -exp batch -queries 10000 -epochs 1,8,64,256 -shards 4 -json BENCH_BATCH.json
//	itabench -exp reads -queries 2000 -readers 1,4,16 -json BENCH_READS.json
//	itabench -exp recovery -queries 2000 -ckpts 0,64,512 -json BENCH_RECOVERY.json
//	itabench -exp failover -queries 2000 -behind 4,16,64 -json BENCH_FAILOVER.json
//	itabench -exp cluster -queries 2000 -nodes 1,2,3 -json BENCH_CLUSTER.json
//	itabench -exp window -windows 1000,10000,100000 -json BENCH_WINDOW.json
//
// The paper profile reproduces the published configuration (1,000
// queries, 181,978-term dictionary, windows up to 100,000 documents) and
// takes minutes per figure; the quick profile keeps the curve shapes in
// seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ita/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: setup|validate|explain|fig3a|fig3b|fig3a-time|headline|ablations|throughput|batch|reads|recovery|scale|window|failover|cluster|all")
		profile = flag.String("profile", "quick", "workload profile: quick|paper")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		// -exp throughput knobs: the sharding experiment sweeps the
		// single-threaded engine plus every count in -shards.
		queries  = flag.Int("queries", 10000, "throughput/batch: standing queries")
		shardSet = flag.String("shards", "1,2,4,8", "throughput/batch: comma-separated shard counts")
		batch    = flag.Int("batch", 64, "throughput: ProcessBatch size")
		epochSet = flag.String("epochs", "1,8,64,256", "batch: comma-separated epoch sizes B")
		events   = flag.Int("events", 2000, "throughput/batch: measured events per configuration")
		jsonOut  = flag.String("json", "", "throughput/batch/reads: write the report as JSON to this path")
		// -exp reads knobs: the mixed read/write experiment sweeps the
		// wait-free published read path against the locked baseline at
		// every reader count in -readers.
		readerSet = flag.String("readers", "1,4,16", "reads: comma-separated concurrent reader counts")
		readMs    = flag.Int("readms", 400, "reads: measured wall milliseconds per cell")
		// -exp recovery knobs: the durability experiment measures WAL
		// overhead per fsync policy and crash-recovery time at every
		// checkpoint interval in -ckpts (0 = never checkpoint).
		ckptSet = flag.String("ckpts", "0,64,512", "recovery: comma-separated checkpoint intervals (epoch boundaries; 0 = never)")
		// -exp failover knobs: the warm-standby experiment measures
		// steady-state replication lag, catch-up time from each epoch
		// gap in -behind, and promote-to-first-served-read latency.
		behindSet = flag.String("behind", "4,16,64", "failover: comma-separated epoch gaps for the catch-up cells")
		// -exp cluster knobs: the multi-node experiment sweeps node
		// counts, measuring ingest fan-out overhead and merged-read
		// latency against the single-node baseline cell.
		nodesSet = flag.String("nodes", "1,2,3", "cluster: comma-separated node counts (first cell is the baseline)")
		// -exp scale knobs: the query-scale experiment sweeps registered
		// query counts, measuring engine bytes/query (forced-GC heap
		// deltas around registration) and ingest throughput.
		countSet = flag.String("counts", "10000,100000,1000000", "scale: comma-separated registered-query counts")
		scaleWin = flag.Int("scalewin", 32768, "scale: count-window size during the sweep")
		// -exp window knobs: the posting-layout experiment sweeps window
		// sizes, measuring bytes/posting and cold-search latency for the
		// blocked layout against the slice layout over the same windows.
		windowSet = flag.String("windows", "1000,10000,100000", "window: comma-separated window sizes")
		layout    = flag.String("layout", "theta-probe", "scale: label for the query-state layout under measurement")
		baseline  = flag.String("baseline", "", "scale: path to an earlier layout's scale JSON to embed as the comparison baseline")
	)
	flag.Parse()

	var p harness.Profile
	switch *profile {
	case "quick":
		p = harness.QuickProfile()
	case "paper":
		p = harness.PaperProfile()
	default:
		fmt.Fprintf(os.Stderr, "itabench: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	start := time.Now()
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", harness.Elapsed(start), msg)
		}
	}

	var figures []harness.Figure
	switch *exp {
	case "validate":
		rep, err := harness.Validate(p, 400)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		if !rep.OK() {
			os.Exit(1)
		}
		return
	case "setup":
		report, err := harness.Setup(p, 2000)
		if err != nil {
			fail(err)
		}
		fmt.Print(report.Format())
		return
	case "explain":
		report, err := harness.Explain(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(report.Format())
		return
	case "throughput":
		rep, err := harness.Throughput(p, *queries, 10, 1000, *batch, parseInts(*shardSet, "-shards", 0), *events, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "batch":
		rep, err := harness.BatchSweep(p, *queries, 10, 1000,
			parseInts(*epochSet, "-epochs", 1), parseInts(*shardSet, "-shards", 0), *events, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "reads":
		rep, err := harness.ReadWrite(p, *queries, 10, 1000, *batch,
			parseInts(*readerSet, "-readers", 1), time.Duration(*readMs)*time.Millisecond, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "scale":
		rep, err := harness.Scale(p, parseInts(*countSet, "-counts", 1), 4, *scaleWin, *events, *layout, progress)
		if err != nil {
			fail(err)
		}
		if *baseline != "" {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				fail(err)
			}
			var base harness.ScaleReport
			if err := json.Unmarshal(data, &base); err != nil {
				fail(fmt.Errorf("parse -baseline %s: %w", *baseline, err))
			}
			rep.AttachBaseline(base)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "window":
		rep, err := harness.WindowSweep(p, parseInts(*windowSet, "-windows", 1), 4, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "failover":
		rep, err := harness.Failover(p, *queries, 10, 1000, *batch,
			parseInts(*behindSet, "-behind", 1), *events, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "cluster":
		rep, err := harness.Cluster(p, *queries, 10, 1000, *batch,
			parseInts(*nodesSet, "-nodes", 1), *events, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "recovery":
		rep, err := harness.Recovery(p, *queries, 10, 1000, *batch,
			parseInts(*ckptSet, "-ckpts", 0), *events, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Format())
		writeJSON(*jsonOut, rep.JSON, *quiet)
		return
	case "fig3a":
		figures = []harness.Figure{harness.Fig3a(p, progress)}
	case "fig3b":
		figures = []harness.Figure{harness.Fig3b(p, progress)}
	case "fig3a-time":
		figures = []harness.Figure{harness.Fig3aTime(p, progress)}
	case "headline":
		figures = []harness.Figure{harness.Headline(p, progress)}
	case "ablations":
		figures = harness.AllAblations(p, progress)
	case "all":
		report, err := harness.Setup(p, 2000)
		if err != nil {
			fail(err)
		}
		fmt.Print(report.Format())
		fmt.Println()
		figures = append(harness.AllFigures(p, progress), harness.AllAblations(p, progress)...)
	default:
		fmt.Fprintf(os.Stderr, "itabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	failed := false
	for _, fig := range figures {
		fmt.Println(fig.Format())
		if fig.Err != nil {
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(*csvDir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fail(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
	fmt.Printf("total wall time: %s\n", harness.Elapsed(start))
	fmt.Println("note: values marked * exceed the stream's 5ms inter-arrival budget (cannot run at 200 docs/s).")
	if failed {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "itabench: %v\n", err)
	os.Exit(1)
}

// parseInts parses a comma-separated list of integers, each at least
// minVal (0 for -shards, where 0 means the automatic count; 1 for
// -epochs, where no smaller epoch exists).
func parseInts(s, flagName string, minVal int) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < minVal {
			fmt.Fprintf(os.Stderr, "itabench: bad %s element %q\n", flagName, f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// writeJSON writes a report to path when path is non-empty.
func writeJSON(path string, marshal func() ([]byte, error), quiet bool) {
	if path == "" {
		return
	}
	data, err := marshal()
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}
