// Command corpusgen materializes test corpora on disk: either synthetic
// WSJ-calibrated composition lists (JSON lines, for inspecting the
// benchmark workload) or newswire articles (one text file per document,
// loadable back through ita.LoadTextDir).
//
// Usage:
//
//	corpusgen -kind newswire -n 200 -out ./articles
//	corpusgen -kind synth -n 1000 -dict 50000 -out ./synth.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/vsm"
)

type synthDoc struct {
	ID       uint64             `json:"id"`
	Arrival  time.Time          `json:"arrival"`
	Postings map[uint32]float64 `json:"postings"`
}

func main() {
	var (
		kind = flag.String("kind", "newswire", "corpus kind: newswire|synth")
		n    = flag.Int("n", 100, "number of documents")
		out  = flag.String("out", "", "output directory (newswire) or file (synth)")
		dict = flag.Int("dict", 181978, "synthetic dictionary size")
		seed = flag.Int64("seed", 20090329, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("corpusgen: -out is required")
	}
	switch *kind {
	case "newswire":
		if err := writeNewswire(*out, *n, *seed); err != nil {
			log.Fatalf("corpusgen: %v", err)
		}
	case "synth":
		if err := writeSynth(*out, *n, *dict, *seed); err != nil {
			log.Fatalf("corpusgen: %v", err)
		}
	default:
		log.Fatalf("corpusgen: unknown kind %q", *kind)
	}
}

func writeNewswire(dir string, n int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	feed := corpus.NewNewswire(seed)
	for i := 0; i < n; i++ {
		topic, text := feed.Mixed()
		name := fmt.Sprintf("%05d-%s.txt", i+1, topic)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d articles to %s\n", n, dir)
	return nil
}

func writeSynth(path string, n, dict int, seed int64) error {
	cfg := corpus.WSJConfig()
	cfg.DictSize = dict
	cfg.Seed = seed
	synth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	start := time.Unix(0, 0)
	for i := 0; i < n; i++ {
		d := synth.Document(model.DocID(i+1), start.Add(time.Duration(i)*5*time.Millisecond))
		rec := synthDoc{ID: uint64(d.ID), Arrival: d.Arrival, Postings: make(map[uint32]float64, len(d.Postings))}
		for _, p := range d.Postings {
			rec.Postings[uint32(p.Term)] = p.Weight
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d synthetic documents to %s\n", n, path)
	return nil
}
