// Command itaserver runs a continuous text search monitoring server over
// HTTP — the system of the paper's introduction: documents stream in,
// standing queries stay registered, every query's top-k is always
// current.
//
// Endpoints:
//
//	POST /documents        {"text": "..."}            → {"doc": id}
//	POST /queries          {"text": "...", "k": 10}   → {"query": id}
//	DELETE /queries/{id}                              → 204
//	GET  /queries/{id}                                → current top-k
//	GET  /queries                                     → every query's top-k
//	GET  /stats                                       → engine counters
//
// Reads (GET /queries, GET /queries/{id}, GET /stats) are served off the
// engine's published epoch views: they never take the ingest lock, so
// read throughput is unaffected by stream volume and every response is a
// consistent epoch-boundary result.
//
// With -batch n, ingested documents coalesce into epochs of n that are
// processed in one amortized pass (a background -flush interval bounds
// how long a partial epoch can keep results stale). With -demo, a
// built-in newswire feed publishes articles at -rate documents per
// second so the server is immediately interesting:
//
//	itaserver -demo -rate 20 &
//	curl -s -X POST localhost:8095/queries -d '{"text":"crude oil production","k":3}'
//	curl -s localhost:8095/queries/1
//
// With -wal dir, the server is durable: every registration and ingest
// is write-ahead logged before it is applied, checkpoints bound the log
// (-checkpoint boundaries per checkpoint, -durability selects the fsync
// policy), and restarting with the same -wal recovers the full query
// set and in-window stream — kill -9 included. A graceful shutdown
// (SIGINT/SIGTERM) drains HTTP, writes a final checkpoint and closes
// the log, so the next start replays nothing:
//
//	itaserver -wal /var/lib/ita -demo &
//	kill -9 %1            # crash: recovery replays the log tail
//	itaserver -wal /var/lib/ita   # same queries, same results
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ita"
)

type server struct {
	eng *ita.Engine
}

type documentRequest struct {
	Text string `json:"text"`
}

type queryRequest struct {
	Text string `json:"text"`
	K    int    `json:"k"`
}

type matchResponse struct {
	Doc   uint64  `json:"doc"`
	Score float64 `json:"score"`
	Text  string  `json:"text,omitempty"`
}

func (s *server) postDocument(w http.ResponseWriter, r *http.Request) {
	var req documentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Text) == "" {
		http.Error(w, "body must be {\"text\": \"...\"}", http.StatusBadRequest)
		return
	}
	id, err := s.eng.IngestText(req.Text, time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"doc": uint64(id)})
}

func (s *server) postQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Text) == "" {
		http.Error(w, "body must be {\"text\": \"...\", \"k\": 10}", http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	id, err := s.eng.Register(req.Text, req.K)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"query": uint64(id)})
}

func (s *server) queryByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/queries/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad query id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodDelete:
		if !s.eng.Unregister(ita.QueryID(id)) {
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		res := s.eng.Results(ita.QueryID(id))
		if res == nil {
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		text, _ := s.eng.QueryText(ita.QueryID(id))
		out := struct {
			Query   string          `json:"query"`
			Matches []matchResponse `json:"matches"`
		}{Query: text, Matches: make([]matchResponse, 0, len(res))}
		for _, m := range res {
			out.Matches = append(out.Matches, matchResponse{Doc: uint64(m.Doc), Score: m.Score, Text: m.Text})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

type queryResponse struct {
	Query   uint64          `json:"query"`
	Text    string          `json:"text"`
	Matches []matchResponse `json:"matches"`
}

// listQueries serves every registered query's current top-k in one
// wait-free pass over the published views.
func (s *server) listQueries(w http.ResponseWriter, _ *http.Request) {
	all := s.eng.ResultsAll()
	out := make([]queryResponse, 0, len(all))
	for _, qr := range all {
		text, _ := s.eng.QueryText(qr.Query)
		entry := queryResponse{Query: uint64(qr.Query), Text: text, Matches: make([]matchResponse, 0, len(qr.Matches))}
		for _, m := range qr.Matches {
			entry.Matches = append(entry.Matches, matchResponse{Doc: uint64(m.Doc), Score: m.Score, Text: m.Text})
		}
		out = append(out, entry)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	mem := s.eng.MemoryUsage()
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":  s.eng.Algorithm().String(),
		"window":     s.eng.WindowLen(),
		"queries":    s.eng.Queries(),
		"dictionary": s.eng.DictionarySize(),
		"counters":   s.eng.Stats(),
		// Per-component engine heap estimate (bytes): inverted index,
		// threshold trees, dense query state, published views.
		"memory":       mem,
		"memory_total": mem.Total(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("itaserver: encode response: %v", err)
	}
}

func main() {
	var (
		addr    = flag.String("addr", ":8095", "listen address")
		windowN = flag.Int("window", 1000, "count-based window size (documents)")
		span    = flag.Duration("span", 0, "time-based window span (overrides -window when set)")
		demo    = flag.Bool("demo", false, "publish a built-in newswire stream")
		rate    = flag.Float64("rate", 10, "demo feed rate, documents/second")
		shards  = flag.Int("shards", 1, "query-maintenance shards: 1 = single-threaded ITA, 0 = one per CPU, n = fixed count")
		batch   = flag.Int("batch", 1, "epoch batch size: ingested documents coalesce into epochs of this size (1 = process every document immediately)")
		flushIv = flag.Duration("flush", 50*time.Millisecond, "with -batch > 1: maximum time a partial epoch stays buffered before a background flush")
		walDir  = flag.String("wal", "", "durability directory: write-ahead log + checkpoints; reopening with the same directory recovers the query set and window after a crash")
		durab   = flag.String("durability", "epoch", "with -wal: fsync policy, off|epoch|always")
		ckptN   = flag.Int("checkpoint", 256, "with -wal: checkpoint (and rotate the log) every N epoch boundaries; 0 disables automatic checkpoints")
	)
	flag.Parse()

	eng, err := buildEngine(*walDir, *durab, *ckptN, *windowN, *span, *shards, *batch)
	if err != nil {
		log.Fatalf("itaserver: %v", err)
	}
	if *walDir != "" {
		log.Printf("durable: wal=%s durability=%s checkpoint every %d boundaries (recovered %d queries, %d window documents)",
			*walDir, *durab, *ckptN, eng.Queries(), eng.WindowLen())
	}
	s := &server{eng: eng}

	if *batch > 1 && *flushIv > 0 {
		// Bound result staleness: a partial epoch flushes after at most
		// -flush of quiet, so a burst gets epoch amortization while a
		// trickle still surfaces promptly.
		go func() {
			tick := time.NewTicker(*flushIv)
			defer tick.Stop()
			for range tick.C {
				if err := eng.Flush(); err != nil {
					log.Printf("itaserver: flush: %v", err)
				}
			}
		}()
		log.Printf("epoch batching: B=%d, background flush every %s", *batch, *flushIv)
	}

	if *demo {
		go func() {
			feed := ita.NewNewsFeed(time.Now().UnixNano())
			tick := time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer tick.Stop()
			for range tick.C {
				_, text := feed.Mixed()
				if _, err := eng.IngestText(text, time.Now()); err != nil {
					log.Printf("itaserver: demo ingest: %v", err)
				}
			}
		}()
		log.Printf("demo feed publishing at %.1f docs/s", *rate)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/documents", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.postDocument(w, r)
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			s.postQuery(w, r)
		case http.MethodGet:
			s.listQueries(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/queries/", s.queryByID)
	mux.HandleFunc("/stats", s.stats)

	log.Printf("continuous text search server (%s) listening on %s", eng.Algorithm(), *addr)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	// Graceful shutdown: drain HTTP, then write a final checkpoint so the
	// next start restores instantly instead of replaying the log tail. A
	// SIGKILL skips all of this — which is exactly what the WAL is for.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	select {
	case err := <-done:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("itaserver: drain: %v", err)
		}
		if *walDir != "" {
			if err := eng.Checkpoint(); err != nil {
				log.Printf("itaserver: shutdown checkpoint: %v", err)
			}
		}
		if err := eng.Close(); err != nil {
			log.Printf("itaserver: close: %v", err)
		}
	}
}

// buildEngine assembles the engine from the command-line configuration;
// with a WAL directory it creates or recovers the durable engine.
func buildEngine(walDir, durab string, ckptN, windowN int, span time.Duration, shards, batch int) (*ita.Engine, error) {
	opts := []ita.Option{ita.WithTextRetention()}
	if span > 0 {
		opts = append(opts, ita.WithTimeWindow(span))
	} else {
		opts = append(opts, ita.WithCountWindow(windowN))
	}
	if shards != 1 {
		opts = append(opts, ita.WithShards(shards))
	}
	if batch > 1 {
		opts = append(opts, ita.WithBatchSize(batch))
	}
	if walDir == "" {
		return ita.New(opts...)
	}
	mode, err := ita.ParseDurability(durab)
	if err != nil {
		return nil, err
	}
	opts = append(opts, ita.WithDurability(mode), ita.WithCheckpointEvery(ckptN))
	return ita.Open(walDir, opts...)
}
