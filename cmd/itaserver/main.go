// Command itaserver runs a continuous text search monitoring server over
// HTTP — the system of the paper's introduction: documents stream in,
// standing queries stay registered, every query's top-k is always
// current.
//
// Endpoints:
//
//	POST /documents        {"text": "..."}            → {"doc": id}
//	POST /queries          {"text": "...", "k": 10}   → {"query": id}
//	DELETE /queries/{id}                              → 204
//	GET  /queries/{id}                                → current top-k
//	GET  /queries                                     → every query's top-k
//	GET  /stats                                       → engine counters
//	GET  /healthz                                     → process liveness
//	GET  /readyz                                      → serving readiness (503 on a lagging follower)
//	POST /promote                                     → follower → primary failover
//
// Reads (GET /queries, GET /queries/{id}, GET /stats) are served off the
// engine's published epoch views: they never take the ingest lock, so
// read throughput is unaffected by stream volume and every response is a
// consistent epoch-boundary result.
//
// With -batch n, ingested documents coalesce into epochs of n that are
// processed in one amortized pass (a background -flush interval bounds
// how long a partial epoch can keep results stale). With -demo, a
// built-in newswire feed publishes articles at -rate documents per
// second so the server is immediately interesting:
//
//	itaserver -demo -rate 20 &
//	curl -s -X POST localhost:8095/queries -d '{"text":"crude oil production","k":3}'
//	curl -s localhost:8095/queries/1
//
// With -wal dir, the server is durable: every registration and ingest
// is write-ahead logged before it is applied, checkpoints bound the log
// (-checkpoint boundaries per checkpoint, -durability selects the fsync
// policy), and restarting with the same -wal recovers the full query
// set and in-window stream — kill -9 included. A graceful shutdown
// (SIGINT/SIGTERM) drains HTTP, writes a final checkpoint and closes
// the log, so the next start replays nothing:
//
//	itaserver -wal /var/lib/ita -demo &
//	kill -9 %1            # crash: recovery replays the log tail
//	itaserver -wal /var/lib/ita   # same queries, same results
//
// A durable server can serve a warm standby. -replicate-addr makes a
// primary stream its WAL to followers; -follow makes this server a
// read-only standby of the primary at that address (it serves every GET
// while mutations answer 503). Killing the primary and POSTing
// /promote on the standby fails over with the crash-recovery guarantee
// — the promoted state is a clean prefix of the primary's WAL at an
// epoch boundary:
//
//	itaserver -wal /var/lib/ita-a -replicate-addr :7095 &
//	itaserver -wal /var/lib/ita-b -follow localhost:7095 -addr :8096 &
//	kill -9 %1
//	curl -s -X POST localhost:8096/promote
//
// /readyz gates load-balancer traffic: a follower reports 503 until it
// is connected and within -ready-lag epochs of the primary's head.
//
// # Cluster mode
//
// -nodes turns the server into a stateless merge router over N
// independent itaserver nodes: every document fans out to every node
// (with one shared timestamp), each standing query is registered on
// exactly one node chosen by a placement hash of its id, and reads
// merge the per-node partitions back into the single-engine view.
// Because the paper's threshold maintenance is strictly per-query, the
// merged results are byte-identical to one engine holding all queries
// — node count divides the per-query maintenance cost without changing
// a single score. Each node can keep its own warm standby (-follow);
// killing a node, promoting its standby and pointing a fresh router at
// the new address is the failover story, and a crashed node rejoins by
// replaying its own WAL:
//
//	itaserver -addr :9001 -wal /var/lib/ita-1 &
//	itaserver -addr :9002 -wal /var/lib/ita-2 &
//	itaserver -addr :9000 -nodes localhost:9001,localhost:9002 &
//	curl -s -X POST localhost:9000/queries -d '{"text":"crude oil","k":3}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ita"
)

// maxBody caps every request body; bodies past it answer 413.
const maxBody = 1 << 20

type server struct {
	eng *ita.Engine
	// readyLag is the /readyz threshold: a follower more than this many
	// epochs behind the primary's head reports not-ready.
	readyLag uint64
	// replicateAddr, when set on a standby, is where the server starts
	// serving replication after a successful /promote.
	replicateAddr string
}

type documentRequest struct {
	Text string `json:"text"`
	// At optionally pins the arrival time (Unix nanoseconds). A cluster
	// router stamps each document once and forwards the same timestamp
	// to every node, so time windows expire identically cluster-wide.
	At int64 `json:"at,omitempty"`
}

type queryRequest struct {
	Text string `json:"text"`
	K    int    `json:"k"`
}

type matchResponse struct {
	Doc   uint64  `json:"doc"`
	Score float64 `json:"score"`
	Text  string  `json:"text,omitempty"`
}

// httpError maps engine and transport errors onto HTTP statuses: an
// over-limit body is 413, a read-only follower or closed engine is 503
// (the request is fine — this replica just cannot take it), anything
// else falls back to the handler's default.
func httpError(w http.ResponseWriter, err error, fallback int) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		http.Error(w, "request body exceeds 1 MiB", http.StatusRequestEntityTooLarge)
	case errors.Is(err, ita.ErrReadOnly):
		http.Error(w, "this server is a read-only replication follower (POST /promote to fail over)", http.StatusServiceUnavailable)
	case errors.Is(err, ita.ErrClosed):
		http.Error(w, "engine is shut down", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), fallback)
	}
}

// decodeBody decodes a JSON request body, distinguishing a too-large
// body (413) from malformed JSON (400). Reports whether decoding
// succeeded; on failure the response is already written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, usage string) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, err, http.StatusBadRequest)
			return false
		}
		http.Error(w, usage, http.StatusBadRequest)
		return false
	}
	return true
}

func (s *server) postDocument(w http.ResponseWriter, r *http.Request) {
	var req documentRequest
	if !decodeBody(w, r, &req, `body must be {"text": "..."}`) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		http.Error(w, `body must be {"text": "..."}`, http.StatusBadRequest)
		return
	}
	at := time.Now()
	if req.At != 0 {
		at = time.Unix(0, req.At)
	}
	id, err := s.eng.IngestText(req.Text, at)
	if err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"doc": uint64(id)})
}

func (s *server) postQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req, `body must be {"text": "...", "k": 10}`) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		http.Error(w, `body must be {"text": "...", "k": 10}`, http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	id, err := s.eng.Register(req.Text, req.K)
	if err != nil {
		httpError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"query": uint64(id)})
}

func (s *server) queryByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/queries/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad query id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodDelete:
		if !s.eng.Unregister(ita.QueryID(id)) {
			// A follower refuses every unregister; distinguish that from a
			// genuinely unknown id.
			if s.eng.ReplicationStats().Role == "follower" {
				httpError(w, ita.ErrReadOnly, http.StatusServiceUnavailable)
				return
			}
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		res := s.eng.Results(ita.QueryID(id))
		if res == nil {
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		text, _ := s.eng.QueryText(ita.QueryID(id))
		out := struct {
			Query   string          `json:"query"`
			Matches []matchResponse `json:"matches"`
		}{Query: text, Matches: make([]matchResponse, 0, len(res))}
		for _, m := range res {
			out.Matches = append(out.Matches, matchResponse{Doc: uint64(m.Doc), Score: m.Score, Text: m.Text})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

type queryResponse struct {
	Query   uint64          `json:"query"`
	Text    string          `json:"text"`
	Matches []matchResponse `json:"matches"`
}

// listQueries serves every registered query's current top-k in one
// wait-free pass over the published views.
func (s *server) listQueries(w http.ResponseWriter, _ *http.Request) {
	all := s.eng.ResultsAll()
	out := make([]queryResponse, 0, len(all))
	for _, qr := range all {
		text, _ := s.eng.QueryText(qr.Query)
		entry := queryResponse{Query: uint64(qr.Query), Text: text, Matches: make([]matchResponse, 0, len(qr.Matches))}
		for _, m := range qr.Matches {
			entry.Matches = append(entry.Matches, matchResponse{Doc: uint64(m.Doc), Score: m.Score, Text: m.Text})
		}
		out = append(out, entry)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	mem := s.eng.MemoryUsage()
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":  s.eng.Algorithm().String(),
		"window":     s.eng.WindowLen(),
		"queries":    s.eng.Queries(),
		"dictionary": s.eng.DictionarySize(),
		"counters":   s.eng.Stats(),
		// Per-component engine heap estimate (bytes): inverted index,
		// threshold trees, dense query state, published views.
		"memory":       mem,
		"memory_total": mem.Total(),
		// Replication role, per-follower ack positions and lag (primary)
		// or applied/head positions, lag and reconnect counts (follower).
		"replication": s.eng.ReplicationStats(),
	})
}

// healthz is pure liveness: the process is up and handling HTTP.
func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// readyz is load-balancer readiness: a primary (or standalone engine)
// is always ready; a follower is ready once connected to its primary
// and within readyLag epochs of its head.
func (s *server) readyz(w http.ResponseWriter, _ *http.Request) {
	rs := s.eng.ReplicationStats()
	if rs.Role == "follower" && (!rs.Connected || rs.LagEpochs > s.readyLag) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "replication": rs})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "role": rs.Role})
}

// promote fails a standby over to primary. When the server was started
// with -replicate-addr, the promoted engine immediately begins serving
// replication there for the next generation of followers.
func (s *server) promote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := s.eng.Promote(); err != nil {
		if errors.Is(err, ita.ErrClosed) {
			httpError(w, err, http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	log.Printf("promoted to primary")
	out := map[string]any{"role": "primary"}
	if s.replicateAddr != "" {
		if addr, err := s.eng.StartReplication(s.replicateAddr); err != nil {
			out["replication_error"] = err.Error()
			log.Printf("itaserver: replication after promote: %v", err)
		} else {
			out["replicating_on"] = addr.String()
			log.Printf("replicating WAL on %s", addr)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("itaserver: encode response: %v", err)
	}
}

// newMux wires the route table. Shared with the tests so they exercise
// exactly the production routing.
func newMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/documents", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.postDocument(w, r)
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			s.postQuery(w, r)
		case http.MethodGet:
			s.listQueries(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/queries/", s.queryByID)
	mux.HandleFunc("/stats", s.stats)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/readyz", s.readyz)
	mux.HandleFunc("/promote", s.promote)
	addClusterRoutes(mux, s)
	return mux
}

// limitBodies caps every request body at maxBody before the handlers
// read it; an oversize body surfaces as *http.MaxBytesError at the
// first read and answers a clean 413.
func limitBodies(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		next.ServeHTTP(w, r)
	})
}

func main() {
	var (
		addr    = flag.String("addr", ":8095", "listen address")
		windowN = flag.Int("window", 1000, "count-based window size (documents)")
		span    = flag.Duration("span", 0, "time-based window span (overrides -window when set)")
		demo    = flag.Bool("demo", false, "publish a built-in newswire stream")
		rate    = flag.Float64("rate", 10, "demo feed rate, documents/second")
		shards  = flag.Int("shards", 1, "query-maintenance shards: 1 = single-threaded ITA, 0 = one per CPU, n = fixed count")
		batch   = flag.Int("batch", 1, "epoch batch size: ingested documents coalesce into epochs of this size (1 = process every document immediately)")
		flushIv = flag.Duration("flush", 50*time.Millisecond, "with -batch > 1: maximum time a partial epoch stays buffered before a background flush")
		walDir  = flag.String("wal", "", "durability directory: write-ahead log + checkpoints; reopening with the same directory recovers the query set and window after a crash")
		durab   = flag.String("durability", "epoch", "with -wal: fsync policy, off|epoch|always")
		ckptN   = flag.Int("checkpoint", 256, "with -wal: checkpoint (and rotate the log) every N epoch boundaries; 0 disables automatic checkpoints")
		replOn  = flag.String("replicate-addr", "", "with -wal: stream the WAL to followers on this address (host:port)")
		follow  = flag.String("follow", "", "with -wal: run as a read-only warm standby of the primary replicating at this address")
		readyLg = flag.Uint64("ready-lag", 16, "with -follow: /readyz reports ready while within this many epochs of the primary's head")
		nodeLst = flag.String("nodes", "", "router mode: comma-separated node base URLs; this server fans writes to every node and merges reads instead of running an engine")
	)
	flag.Parse()

	if *nodeLst != "" {
		router, err := buildRouter(*nodeLst)
		if err != nil {
			log.Fatalf("itaserver: %v", err)
		}
		log.Printf("cluster router over %d nodes listening on %s", router.Size(), *addr)
		srv := &http.Server{
			Addr:              *addr,
			Handler:           limitBodies(newRouterMux(&routerServer{router: router})),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      60 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe() }()
		select {
		case err := <-done:
			log.Fatal(err)
		case sig := <-stop:
			log.Printf("received %s, shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("itaserver: drain: %v", err)
			}
			if err := router.Close(); err != nil {
				log.Printf("itaserver: close: %v", err)
			}
		}
		return
	}

	if *follow != "" {
		if *walDir == "" {
			log.Fatal("itaserver: -follow requires -wal (the standby mirrors the primary's WAL there)")
		}
		if *demo {
			log.Fatal("itaserver: -demo on a follower would require writes; a standby is read-only until /promote")
		}
	}

	eng, err := buildEngine(*walDir, *durab, *ckptN, *windowN, *span, *shards, *batch, *follow)
	if err != nil {
		log.Fatalf("itaserver: %v", err)
	}
	if *follow != "" {
		log.Printf("warm standby: following %s into wal=%s (recovered %d queries, %d window documents)",
			*follow, *walDir, eng.Queries(), eng.WindowLen())
	} else if *walDir != "" {
		log.Printf("durable: wal=%s durability=%s checkpoint every %d boundaries (recovered %d queries, %d window documents)",
			*walDir, *durab, *ckptN, eng.Queries(), eng.WindowLen())
	}
	if *replOn != "" && *follow == "" {
		raddr, err := eng.StartReplication(*replOn)
		if err != nil {
			log.Fatalf("itaserver: %v", err)
		}
		log.Printf("replicating WAL on %s", raddr)
	}
	s := &server{eng: eng, readyLag: *readyLg, replicateAddr: *replOn}

	if *batch > 1 && *flushIv > 0 && *follow == "" {
		// Bound result staleness: a partial epoch flushes after at most
		// -flush of quiet, so a burst gets epoch amortization while a
		// trickle still surfaces promptly. A follower's epochs are driven
		// by the primary's record stream instead.
		go func() {
			tick := time.NewTicker(*flushIv)
			defer tick.Stop()
			for range tick.C {
				if err := eng.Flush(); err != nil {
					if errors.Is(err, ita.ErrClosed) {
						return
					}
					log.Printf("itaserver: flush: %v", err)
				}
			}
		}()
		log.Printf("epoch batching: B=%d, background flush every %s", *batch, *flushIv)
	}

	if *demo {
		go func() {
			feed := ita.NewNewsFeed(time.Now().UnixNano())
			tick := time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer tick.Stop()
			for range tick.C {
				_, text := feed.Mixed()
				if _, err := eng.IngestText(text, time.Now()); err != nil {
					log.Printf("itaserver: demo ingest: %v", err)
				}
			}
		}()
		log.Printf("demo feed publishing at %.1f docs/s", *rate)
	}

	log.Printf("continuous text search server (%s) listening on %s", eng.Algorithm(), *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: limitBodies(newMux(s)),
		// Slow-client hygiene: a stalled request cannot hold a handler
		// forever, a stalled response write is bounded, and idle
		// keep-alives are reaped.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Graceful shutdown: drain HTTP, then write a final checkpoint so the
	// next start restores instantly instead of replaying the log tail. A
	// SIGKILL skips all of this — which is exactly what the WAL is for.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	select {
	case err := <-done:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("itaserver: drain: %v", err)
		}
		if *walDir != "" {
			// A still-standby follower cannot checkpoint (its mirror must
			// track the primary's rotations exactly); its WAL is already
			// durable, so skipping is correct, not a degraded shutdown.
			if err := eng.Checkpoint(); err != nil && !errors.Is(err, ita.ErrReadOnly) {
				log.Printf("itaserver: shutdown checkpoint: %v", err)
			}
		}
		if err := eng.Close(); err != nil {
			log.Printf("itaserver: close: %v", err)
		}
	}
}

// buildEngine assembles the engine from the command-line configuration;
// with a WAL directory it creates or recovers the durable engine, and
// with follow set it opens a warm standby of that primary instead.
func buildEngine(walDir, durab string, ckptN, windowN int, span time.Duration, shards, batch int, follow ...string) (*ita.Engine, error) {
	opts := []ita.Option{ita.WithTextRetention()}
	if span > 0 {
		opts = append(opts, ita.WithTimeWindow(span))
	} else {
		opts = append(opts, ita.WithCountWindow(windowN))
	}
	if shards != 1 {
		opts = append(opts, ita.WithShards(shards))
	}
	if batch > 1 {
		opts = append(opts, ita.WithBatchSize(batch))
	}
	if walDir == "" {
		return ita.New(opts...)
	}
	mode, err := ita.ParseDurability(durab)
	if err != nil {
		return nil, err
	}
	opts = append(opts, ita.WithDurability(mode), ita.WithCheckpointEvery(ckptN))
	if len(follow) > 0 && follow[0] != "" {
		// A standby's window/shard/batch configuration comes from the
		// primary's checkpoint; the remaining options are runtime policy.
		return ita.OpenFollower(walDir, follow[0],
			ita.WithDurability(mode), ita.WithCheckpointEvery(ckptN))
	}
	return ita.Open(walDir, opts...)
}
