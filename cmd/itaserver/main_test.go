package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ita"
)

func newTestServer(t *testing.T, extra ...ita.Option) (*server, *httptest.Server) {
	t.Helper()
	opts := append([]ita.Option{ita.WithCountWindow(100), ita.WithTextRetention()}, extra...)
	eng, err := ita.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s := &server{eng: eng, readyLag: 16}
	ts := httptest.NewServer(limitBodies(newMux(s)))
	t.Cleanup(ts.Close)
	return s, ts
}

// serveEngine exposes an already-built engine through the production
// route table, as the replication tests need for primary/standby pairs.
func serveEngine(t *testing.T, eng *ita.Engine, replicateAddr string) (*server, *httptest.Server) {
	t.Helper()
	s := &server{eng: eng, readyLag: 16, replicateAddr: replicateAddr}
	ts := httptest.NewServer(limitBodies(newMux(s)))
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	// Register a query.
	resp, body := post(t, ts.URL+"/queries", `{"text":"crude oil production","k":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /queries = %d", resp.StatusCode)
	}
	qid := int(body["query"].(float64))
	if qid != 1 {
		t.Fatalf("query id = %d", qid)
	}

	// Feed documents.
	for _, text := range []string{
		"Crude oil production rose in the north sea fields.",
		"The council debated a new housing policy.",
		"Oil producers curbed crude output amid falling demand.",
	} {
		resp, _ := post(t, ts.URL+"/documents", `{"text":`+strconvQuote(text)+`}`)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /documents = %d", resp.StatusCode)
		}
	}

	// Fetch results.
	resp, err := http.Get(ts.URL + "/queries/1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /queries/1 = %d", resp.StatusCode)
	}
	var result struct {
		Query   string `json:"query"`
		Matches []struct {
			Doc   uint64  `json:"doc"`
			Score float64 `json:"score"`
			Text  string  `json:"text"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	if result.Query != "crude oil production" {
		t.Fatalf("query text = %q", result.Query)
	}
	if len(result.Matches) != 2 {
		t.Fatalf("matches = %+v, want the two oil documents", result.Matches)
	}
	if result.Matches[0].Score < result.Matches[1].Score {
		t.Fatal("matches not in descending score order")
	}
	for _, m := range result.Matches {
		if !strings.Contains(strings.ToLower(m.Text), "oil") {
			t.Fatalf("match text %q does not mention oil", m.Text)
		}
	}

	// Stats endpoint.
	resp2, stats := get(t, ts.URL+"/stats")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d", resp2.StatusCode)
	}
	if stats["algorithm"] != "ita" || int(stats["window"].(float64)) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	// Per-component memory accounting: a live ITA engine with a window
	// and a registered query must report non-zero index, tree and query
	// state footprints, and the total must sum the components.
	mem, ok := stats["memory"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no memory block: %v", stats)
	}
	var sum float64
	for _, comp := range []string{"index_bytes", "tree_bytes", "query_state_bytes", "view_bytes"} {
		v, ok := mem[comp].(float64)
		if !ok {
			t.Fatalf("memory block missing %s: %v", comp, mem)
		}
		sum += v
		if comp != "view_bytes" && v <= 0 {
			t.Fatalf("memory[%s] = %v, want > 0", comp, v)
		}
	}
	if total := stats["memory_total"].(float64); total != sum {
		t.Fatalf("memory_total %v != component sum %v", total, sum)
	}

	// Delete the query.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/1", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d", resp3.StatusCode)
	}
	resp4, _ := get(t, ts.URL+"/queries/1")
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d", resp4.StatusCode)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"empty doc", "/documents", `{"text":""}`, http.StatusBadRequest},
		{"bad json doc", "/documents", `{`, http.StatusBadRequest},
		{"empty query", "/queries", `{"text":"","k":3}`, http.StatusBadRequest},
		{"stopword query", "/queries", `{"text":"the of and","k":3}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := post(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	// Unknown and malformed query ids.
	if resp, _ := get(t, ts.URL+"/queries/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown query: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/queries/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id: %d", resp.StatusCode)
	}

	// Wrong methods.
	if resp, _ := get(t, ts.URL+"/documents"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /documents: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/queries", strings.NewReader("{}"))
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("PUT /queries: %d", resp.StatusCode)
		}
	}
}

// TestServerListQueries covers GET /queries: every registered query's
// top-k served off the published views in ascending query id.
func TestServerListQueries(t *testing.T) {
	s, ts := newTestServer(t)
	for _, q := range []string{"crude oil production", "solar turbine grid"} {
		if resp, _ := post(t, ts.URL+"/queries", `{"text":`+strconvQuote(q)+`,"k":3}`); resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /queries = %d", resp.StatusCode)
		}
	}
	clock := time.Now()
	for _, text := range []string{
		"Crude oil production rose in the north sea fields.",
		"A giant solar turbine connects to the grid today.",
	} {
		clock = clock.Add(time.Millisecond)
		if _, err := s.eng.IngestText(text, clock); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /queries = %d", resp.StatusCode)
	}
	var out []struct {
		Query   uint64 `json:"query"`
		Text    string `json:"text"`
		Matches []struct {
			Doc  uint64 `json:"doc"`
			Text string `json:"text"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Query != 1 || out[1].Query != 2 {
		t.Fatalf("GET /queries = %+v, want both queries in id order", out)
	}
	if out[0].Text != "crude oil production" || len(out[0].Matches) != 1 {
		t.Fatalf("query 1 entry = %+v", out[0])
	}
	if !strings.Contains(strings.ToLower(out[1].Matches[0].Text), "solar") {
		t.Fatalf("query 2 match = %+v", out[1].Matches)
	}
}

func TestServerDefaultK(t *testing.T) {
	s, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/queries", `{"text":"solar turbines"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	qid := ita.QueryID(body["query"].(float64))
	// Feed 12 matching docs; the default k caps results at 10.
	clock := time.Now()
	for i := 0; i < 12; i++ {
		clock = clock.Add(time.Millisecond)
		if _, err := s.eng.IngestText("solar turbines spinning", clock); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.eng.Results(qid)); got != 10 {
		t.Fatalf("results = %d, want default k=10", got)
	}
}

// TestServerBatchedIngestion runs the server over an epoch-batched
// engine (the -batch flag's configuration): documents buffer until an
// epoch fills or a flush runs, then results catch up.
func TestServerBatchedIngestion(t *testing.T) {
	s, ts := newTestServer(t, ita.WithBatchSize(3))
	resp, body := post(t, ts.URL+"/queries", `{"text":"crude oil","k":5}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /queries = %d", resp.StatusCode)
	}
	qid := ita.QueryID(body["query"].(float64))

	for i, text := range []string{"crude oil exports rose", "crude oil futures fell"} {
		resp, _ := post(t, ts.URL+"/documents", `{"text":`+strconvQuote(text)+`}`)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /documents %d = %d", i, resp.StatusCode)
		}
	}
	// Two of three epoch slots filled: results still reflect the empty
	// flushed state.
	if got := s.eng.Results(qid); len(got) != 0 {
		t.Fatalf("results before flush = %+v, want none", got)
	}
	// The background -flush ticker calls exactly this.
	if err := s.eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.eng.Results(qid); len(got) != 2 {
		t.Fatalf("results after flush = %+v, want both documents", got)
	}
}

func strconvQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestServerWALRecovery runs the -wal configuration end to end: serve,
// crash (no close, no checkpoint), rebuild with the same directory, and
// assert the recovered server answers exactly like the crashed one.
func TestServerWALRecovery(t *testing.T) {
	dir := t.TempDir()
	eng, err := buildEngine(dir, "epoch", 64, 100, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{eng: eng}
	clock := time.Now()
	resp := httptest.NewRecorder()
	s.postQuery(resp, httptest.NewRequest(http.MethodPost, "/queries", strings.NewReader(`{"text":"crude oil production","k":3}`)))
	if resp.Code != http.StatusCreated {
		t.Fatalf("POST /queries = %d", resp.Code)
	}
	for _, text := range []string{
		"Crude oil production rose in the north sea fields.",
		"The council debated a new housing policy.",
		"Oil producers curbed crude output amid falling demand.",
	} {
		clock = clock.Add(time.Millisecond)
		if _, err := eng.IngestText(text, clock); err != nil {
			t.Fatal(err)
		}
	}
	want := eng.Results(1)
	if len(want) != 2 {
		t.Fatalf("pre-crash results: %+v", want)
	}
	// Crash: drop the engine without Close or Checkpoint. (The engine
	// has no shard workers at -shards 1, so abandoning it leaks nothing.)
	s = nil

	recovered, err := buildEngine(dir, "epoch", 64, 100, 0, 1, 1)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer recovered.Close()
	s = &server{eng: recovered}
	get := httptest.NewRecorder()
	s.queryByID(get, httptest.NewRequest(http.MethodGet, "/queries/1", nil))
	if get.Code != http.StatusOK {
		t.Fatalf("GET /queries/1 after recovery = %d", get.Code)
	}
	var out struct {
		Query   string `json:"query"`
		Matches []struct {
			Doc   uint64  `json:"doc"`
			Score float64 `json:"score"`
			Text  string  `json:"text"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(get.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Query != "crude oil production" || len(out.Matches) != len(want) {
		t.Fatalf("recovered response %+v, want %d matches", out, len(want))
	}
	for i, m := range out.Matches {
		if m.Doc != uint64(want[i].Doc) || m.Score != want[i].Score || m.Text != want[i].Text {
			t.Fatalf("recovered match %d = %+v, want %+v", i, m, want[i])
		}
	}
}

// TestServerBodyLimit: a request body past 1 MiB answers a clean 413
// instead of being slurped into memory.
func TestServerBodyLimit(t *testing.T) {
	_, ts := newTestServer(t)
	big := `{"text":"` + strings.Repeat("oil ", maxBody/4+1024) + `"}`
	resp, _ := post(t, ts.URL+"/documents", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize POST /documents = %d, want 413", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/queries", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize POST /queries = %d, want 413", resp.StatusCode)
	}
	// The connection and engine survive the rejection.
	resp, _ = post(t, ts.URL+"/documents", `{"text":"crude oil production"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("normal POST after 413 = %d", resp.StatusCode)
	}
}

// TestServerHealthEndpoints covers /healthz, /readyz and /promote on a
// standalone (non-replicating) server.
func TestServerHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, body := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || body["ok"] != true {
		t.Fatalf("GET /healthz = %d %v", resp.StatusCode, body)
	}
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || body["ready"] != true {
		t.Fatalf("GET /readyz = %d %v", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts.URL+"/promote", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /promote on a non-follower = %d, want 409", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/promote"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /promote = %d, want 405", resp.StatusCode)
	}
	resp, stats := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d", resp.StatusCode)
	}
	repl, ok := stats["replication"].(map[string]any)
	if !ok || repl["role"] != "none" {
		t.Fatalf("stats replication block = %v", stats["replication"])
	}
}

// TestServerFailoverHTTP drives the full failover story through the
// HTTP surface: a durable primary replicates to a standby server,
// reads flow on both, mutations on the standby answer 503, /readyz
// gates it until caught up, and after the primary goes away POST
// /promote turns it into a serving primary.
func TestServerFailoverHTTP(t *testing.T) {
	primary, err := buildEngine(t.TempDir(), "off", 64, 100, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := primary.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, pts := serveEngine(t, primary, "")

	standby, err := buildEngine(t.TempDir(), "off", 64, 100, 0, 1, 1, raddr.String())
	if err != nil {
		t.Fatal(err)
	}
	fs, fts := serveEngine(t, standby, "127.0.0.1:0")
	t.Cleanup(func() { standby.Close() })

	// Write through the primary's HTTP surface.
	if resp, _ := post(t, pts.URL+"/queries", `{"text":"crude oil production","k":3}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /queries = %d", resp.StatusCode)
	}
	if resp, _ := post(t, pts.URL+"/documents", `{"text":"crude oil production rose again"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /documents = %d", resp.StatusCode)
	}

	// The standby catches up and /readyz opens.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, _ := get(t, fts.URL+"/readyz")
		if resp.StatusCode == http.StatusOK {
			if r, _ := get(t, fts.URL+"/queries/1"); r.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never became ready: readyz=%d, stats=%+v", resp.StatusCode, standby.ReplicationStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp, body := get(t, fts.URL+"/queries/1"); resp.StatusCode != http.StatusOK || body["query"] != "crude oil production" {
		t.Fatalf("standby GET /queries/1 = %d %v", resp.StatusCode, body)
	}

	// Mutations on the standby answer 503, reads keep working.
	if resp, _ := post(t, fts.URL+"/documents", `{"text":"rejected"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby POST /documents = %d, want 503", resp.StatusCode)
	}
	if resp, _ := post(t, fts.URL+"/queries", `{"text":"rejected","k":1}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby POST /queries = %d, want 503", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, fts.URL+"/queries/1", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("standby DELETE = %d, want 503", resp.StatusCode)
		}
	}
	resp, stats := get(t, fts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standby GET /stats = %d", resp.StatusCode)
	}
	if repl, ok := stats["replication"].(map[string]any); !ok || repl["role"] != "follower" {
		t.Fatalf("standby replication block = %v", stats["replication"])
	}

	// Primary dies; the standby promotes and starts serving replication
	// for the next generation.
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, fts.URL+"/promote", "")
	if resp.StatusCode != http.StatusOK || body["role"] != "primary" {
		t.Fatalf("POST /promote = %d %v", resp.StatusCode, body)
	}
	if _, ok := body["replicating_on"].(string); !ok {
		t.Fatalf("promoted server did not start replication: %v", body)
	}
	if resp, _ := post(t, fts.URL+"/promote", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("second POST /promote = %d, want 409", resp.StatusCode)
	}
	if resp, _ := post(t, fts.URL+"/documents", `{"text":"crude oil after failover"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("promoted POST /documents = %d", resp.StatusCode)
	}
	if resp, body := get(t, fts.URL+"/readyz"); resp.StatusCode != http.StatusOK || body["role"] != "primary" {
		t.Fatalf("promoted GET /readyz = %d %v", resp.StatusCode, body)
	}
	_ = fs
}
