package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ita"
	"ita/internal/cluster"
)

// newRouterTestServer builds k engine-backed node servers and a router
// front end over their HTTP surfaces, returning the router server URL
// and the node engines.
func newRouterTestServer(t *testing.T, k int, opts ...ita.Option) (*httptest.Server, []*ita.Engine) {
	t.Helper()
	engines := make([]*ita.Engine, k)
	nodes := make([]cluster.Node, k)
	for i := range engines {
		allOpts := append([]ita.Option{ita.WithCountWindow(100), ita.WithTextRetention()}, opts...)
		eng, err := ita.New(allOpts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		ns := httptest.NewServer(limitBodies(newMux(&server{eng: eng, readyLag: 16})))
		t.Cleanup(ns.Close)
		engines[i] = eng
		nodes[i] = cluster.NewHTTPNode(ns.URL, nil)
	}
	router, err := cluster.NewRouter(nodes)
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(limitBodies(newRouterMux(&routerServer{router: router})))
	t.Cleanup(rs.Close)
	return rs, engines
}

// TestClusterNodeEndpoints exercises the node-side /cluster routes
// through the HTTPNode client: explicit-id registration, alignment,
// pinned-timestamp ingest, batch, advance, flush, status and reads all
// round-trip against the engine's direct answers.
func TestClusterNodeEndpoints(t *testing.T) {
	s, ts := newTestServer(t, ita.WithBatchSize(2))
	n := cluster.NewHTTPNode(ts.URL, nil)

	if err := n.RegisterWithID(1, "crude oil production", 3); err != nil {
		t.Fatalf("RegisterWithID: %v", err)
	}
	if err := n.AlignRegister(2, "solar turbine output"); err != nil {
		t.Fatalf("AlignRegister: %v", err)
	}
	st, err := n.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.NextQuery != 3 || st.Queries != 1 {
		t.Fatalf("status = %+v, want next_query=3 queries=1", st)
	}
	if st.Dict != s.eng.DictionarySize() || st.Dict == 0 {
		t.Fatalf("status dict = %d, engine says %d (alignment must intern)", st.Dict, s.eng.DictionarySize())
	}

	doc, err := n.IngestText("crude oil production rose", at(10))
	if err != nil {
		t.Fatal(err)
	}
	ids, err := n.IngestBatch([]ita.TimedText{
		{Text: "crude oil exports fell", At: at(20)},
		{Text: "solar turbine output doubled", At: at(21)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != doc+1 {
		t.Fatalf("batch ids = %v after doc %d", ids, doc)
	}
	if err := n.Advance(at(30)); err != nil {
		t.Fatal(err)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}

	matches, text, ok, err := n.Results(1)
	if err != nil || !ok {
		t.Fatalf("Results: ok=%v err=%v", ok, err)
	}
	if text != "crude oil production" || len(matches) == 0 {
		t.Fatalf("results = %q %+v", text, matches)
	}
	want := s.eng.Results(1)
	if len(matches) != len(want) {
		t.Fatalf("HTTP results %d matches, engine %d", len(matches), len(want))
	}
	for i := range matches {
		if matches[i] != want[i] {
			t.Fatalf("match %d: %+v over HTTP, %+v direct", i, matches[i], want[i])
		}
	}
	if _, _, ok, err := n.Results(99); err != nil || ok {
		t.Fatalf("unknown query: ok=%v err=%v, want false,nil", ok, err)
	}

	all, err := n.ResultsAll()
	if err != nil || len(all) != 1 || all[0].Query != 1 {
		t.Fatalf("ResultsAll = %+v (%v)", all, err)
	}
	stats, err := n.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.eng.Stats(); stats != got {
		t.Fatalf("stats over HTTP %+v != engine %+v", stats, got)
	}

	// Time pinning: the ingested arrival is the pinned nanosecond, not
	// the server clock.
	if got := s.eng.WindowLen(); got != 3 {
		t.Fatalf("window = %d, want 3", got)
	}
}

// TestHTTPNodeFollowerReadOnly: a follower's 503 refusal must unwrap
// to ita.ErrReadOnly through the HTTP transport, so a router treats a
// misplaced follower exactly like a local read-only engine.
func TestHTTPNodeFollowerReadOnly(t *testing.T) {
	primary, err := buildEngine(t.TempDir(), "off", 64, 100, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	raddr, err := primary.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	standby, err := buildEngine(t.TempDir(), "off", 64, 100, 0, 1, 1, raddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { standby.Close() })
	_, fts := serveEngine(t, standby, "")

	n := cluster.NewHTTPNode(fts.URL, nil)
	if err := n.RegisterWithID(1, "crude oil production", 3); !errors.Is(err, ita.ErrReadOnly) {
		t.Fatalf("RegisterWithID on follower = %v, want ErrReadOnly", err)
	}
	if err := n.AlignRegister(1, "crude oil production"); !errors.Is(err, ita.ErrReadOnly) {
		t.Fatalf("AlignRegister on follower = %v, want ErrReadOnly", err)
	}
	if _, err := n.IngestText("rejected", at(0)); !errors.Is(err, ita.ErrReadOnly) {
		t.Fatalf("IngestText on follower = %v, want ErrReadOnly", err)
	}

	// Behind a router, the refusal surfaces as the public API's 503.
	router, err := cluster.NewRouter([]cluster.Node{n})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(limitBodies(newRouterMux(&routerServer{router: router})))
	t.Cleanup(rs.Close)
	if resp, _ := post(t, rs.URL+"/documents", `{"text":"rejected"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router POST /documents over follower = %d, want 503", resp.StatusCode)
	}
}

// TestRouterModeHTTP is the end-to-end cluster smoke at the HTTP
// layer: a 2-node cluster behind the router mux serves the public API
// with merged reads identical to a single-process reference.
func TestRouterModeHTTP(t *testing.T) {
	rs, engines := newRouterTestServer(t, 2)
	ref, err := ita.New(ita.WithCountWindow(100), ita.WithTextRetention())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for i, q := range []string{"crude oil production", "solar turbine output", "tanker exports"} {
		resp, body := post(t, rs.URL+"/queries", fmt.Sprintf(`{"text":%q,"k":3}`, q))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /queries = %d", resp.StatusCode)
		}
		if want, _ := ref.Register(q, 3); uint64(body["query"].(float64)) != uint64(want) {
			t.Fatalf("query %d: router id %v, reference %d", i, body["query"], want)
		}
	}
	for i := 0; i < 20; i++ {
		text := fmt.Sprintf("crude solar tanker report %d", i%4)
		atNs := at(i * 10).UnixNano()
		if resp, _ := post(t, rs.URL+"/documents", fmt.Sprintf(`{"text":%q,"at":%d}`, text, atNs)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /documents = %d", resp.StatusCode)
		}
		if _, err := ref.IngestText(text, at(i*10)); err != nil {
			t.Fatal(err)
		}
	}

	// Each node holds a strict subset of the queries...
	total := 0
	for _, e := range engines {
		n := e.Queries()
		if n == 3 {
			t.Fatal("one node owns every query; placement is not partitioning")
		}
		total += n
	}
	if total != 3 {
		t.Fatalf("nodes own %d queries total, want 3", total)
	}

	// ...while the router serves the union, byte-identical to the
	// single-process reference.
	resp, _ := get(t, rs.URL+"/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /queries = %d", resp.StatusCode)
	}
	var list []queryResponse
	listResp, err := http.Get(rs.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	decodeInto(t, listResp, &list)
	want := ref.ResultsAll()
	if len(list) != len(want) {
		t.Fatalf("router lists %d queries, reference %d", len(list), len(want))
	}
	for i, q := range list {
		if q.Query != uint64(want[i].Query) || len(q.Matches) != len(want[i].Matches) {
			t.Fatalf("entry %d: %+v vs %+v", i, q, want[i])
		}
		for j, m := range q.Matches {
			if m.Doc != uint64(want[i].Matches[j].Doc) || m.Score != want[i].Matches[j].Score {
				t.Fatalf("entry %d match %d: %+v vs %+v", i, j, m, want[i].Matches[j])
			}
		}
	}

	// Merged stats equal the single-process counters.
	resp, stats := get(t, rs.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d", resp.StatusCode)
	}
	counters := stats["counters"].(map[string]any)
	refStats := ref.Stats()
	if got := uint64(counters["Arrivals"].(float64)); got != refStats.Arrivals {
		t.Fatalf("merged arrivals %d, reference %d", got, refStats.Arrivals)
	}
	if got := uint64(counters["ProbeHits"].(float64)); got != refStats.ProbeHits {
		t.Fatalf("merged probe hits %d, reference %d", got, refStats.ProbeHits)
	}
	if got := stats["queries"].(float64); int(got) != ref.Queries() {
		t.Fatalf("merged queries %v, reference %d", got, ref.Queries())
	}

	// Unregister through the router removes from the owner and keeps
	// the rest serving.
	req, _ := http.NewRequest(http.MethodDelete, rs.URL+"/queries/2", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /queries/2 = %d", dresp.StatusCode)
	}
	if !ref.Unregister(2) {
		t.Fatal(err)
	}
	if resp, _ := get(t, rs.URL+"/queries/2"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted query = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, rs.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz = %d", resp.StatusCode)
	}
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// at builds deterministic arrival times off a fixed base.
func at(ms int) time.Time {
	return time.Unix(1e9, int64(ms)*int64(time.Millisecond))
}
