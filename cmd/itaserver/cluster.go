package main

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ita"
	"ita/internal/cluster"
)

// Cluster-node endpoints. A node in a multi-node deployment is an
// ordinary itaserver; these additional routes are what a cluster
// router needs beyond the public API: registrations with explicit ids,
// dictionary alignment for queries owned elsewhere, batch ingest and
// clock advances with the router's shared timestamps, explicit
// flushes, and the status gauges the router checks for agreement.

type clusterRegisterRequest struct {
	ID   uint64 `json:"id"`
	Text string `json:"text"`
	K    int    `json:"k"`
}

func (s *server) clusterRegister(w http.ResponseWriter, r *http.Request) {
	var req clusterRegisterRequest
	if !decodeBody(w, r, &req, `body must be {"id": 1, "text": "...", "k": 10}`) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		http.Error(w, `body must be {"id": 1, "text": "...", "k": 10}`, http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if err := s.eng.RegisterWithID(ita.QueryID(req.ID), req.Text, req.K); err != nil {
		httpError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"query": req.ID})
}

func (s *server) clusterAlign(w http.ResponseWriter, r *http.Request) {
	var req clusterRegisterRequest
	if !decodeBody(w, r, &req, `body must be {"id": 1, "text": "..."}`) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		http.Error(w, `body must be {"id": 1, "text": "..."}`, http.StatusBadRequest)
		return
	}
	if err := s.eng.AlignRegister(ita.QueryID(req.ID), req.Text); err != nil {
		httpError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"aligned": req.ID})
}

type clusterIngestRequest struct {
	Items []struct {
		Text string `json:"text"`
		At   int64  `json:"at"`
	} `json:"items"`
}

func (s *server) clusterIngest(w http.ResponseWriter, r *http.Request) {
	var req clusterIngestRequest
	if !decodeBody(w, r, &req, `body must be {"items": [{"text": "...", "at": unixnano}, ...]}`) {
		return
	}
	items := make([]ita.TimedText, 0, len(req.Items))
	for _, it := range req.Items {
		items = append(items, ita.TimedText{Text: it.Text, At: time.Unix(0, it.At)})
	}
	ids, err := s.eng.IngestBatch(items)
	if err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	docs := make([]uint64, len(ids))
	for i, id := range ids {
		docs[i] = uint64(id)
	}
	writeJSON(w, http.StatusCreated, map[string][]uint64{"docs": docs})
}

func (s *server) clusterAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		At int64 `json:"at"`
	}
	if !decodeBody(w, r, &req, `body must be {"at": unixnano}`) {
		return
	}
	if err := s.eng.Advance(time.Unix(0, req.At)); err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) clusterFlush(w http.ResponseWriter, _ *http.Request) {
	if err := s.eng.Flush(); err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) clusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, cluster.Status{
		NextQuery: s.eng.NextQueryID(),
		Queries:   s.eng.Queries(),
		Window:    s.eng.WindowLen(),
		Dict:      s.eng.DictionarySize(),
	})
}

// addClusterRoutes mounts the node-side cluster endpoints on mux.
func addClusterRoutes(mux *http.ServeMux, s *server) {
	post := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("/cluster/register", post(s.clusterRegister))
	mux.HandleFunc("/cluster/align", post(s.clusterAlign))
	mux.HandleFunc("/cluster/ingest", post(s.clusterIngest))
	mux.HandleFunc("/cluster/advance", post(s.clusterAdvance))
	mux.HandleFunc("/cluster/flush", post(s.clusterFlush))
	mux.HandleFunc("/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.clusterStatus(w, r)
	})
}

// routerServer serves the public itaserver API over a cluster.Router —
// clients talk to it exactly as they would to one node, and it fans
// writes to every node while merging reads across the partition.
type routerServer struct {
	router *cluster.Router
}

func (s *routerServer) postDocument(w http.ResponseWriter, r *http.Request) {
	var req documentRequest
	if !decodeBody(w, r, &req, `body must be {"text": "..."}`) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		http.Error(w, `body must be {"text": "..."}`, http.StatusBadRequest)
		return
	}
	// One timestamp, stamped here: each node applying its own clock
	// would diverge under time windows.
	at := time.Now()
	if req.At != 0 {
		at = time.Unix(0, req.At)
	}
	id, err := s.router.IngestText(req.Text, at)
	if err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"doc": uint64(id)})
}

func (s *routerServer) postQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req, `body must be {"text": "...", "k": 10}`) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		http.Error(w, `body must be {"text": "...", "k": 10}`, http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	id, err := s.router.Register(req.Text, req.K)
	if err != nil {
		httpError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"query": uint64(id)})
}

func (s *routerServer) queryByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/queries/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad query id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodDelete:
		ok, err := s.router.Unregister(ita.QueryID(id))
		if err != nil {
			httpError(w, err, http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		matches, text, ok, err := s.router.Results(ita.QueryID(id))
		if err != nil {
			httpError(w, err, http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "unknown query", http.StatusNotFound)
			return
		}
		out := struct {
			Query   string          `json:"query"`
			Matches []matchResponse `json:"matches"`
		}{Query: text, Matches: make([]matchResponse, 0, len(matches))}
		for _, m := range matches {
			out.Matches = append(out.Matches, matchResponse{Doc: uint64(m.Doc), Score: m.Score, Text: m.Text})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *routerServer) listQueries(w http.ResponseWriter, _ *http.Request) {
	all, err := s.router.ResultsAll()
	if err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	out := make([]queryResponse, 0, len(all))
	for _, qr := range all {
		entry := queryResponse{Query: uint64(qr.Query), Text: qr.Text, Matches: make([]matchResponse, 0, len(qr.Matches))}
		for _, m := range qr.Matches {
			entry.Matches = append(entry.Matches, matchResponse{Doc: uint64(m.Doc), Score: m.Score, Text: m.Text})
		}
		out = append(out, entry)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *routerServer) stats(w http.ResponseWriter, _ *http.Request) {
	counters, err := s.router.Stats()
	if err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	st, err := s.router.Status()
	if err != nil {
		httpError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"window":     st.Window,
		"queries":    st.Queries,
		"dictionary": st.Dict,
		"counters":   counters,
		"nodes":      s.router.Size(),
	})
}

func (s *routerServer) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "router"})
}

// readyz on the router is cluster readiness: every node must answer
// its status and the answers must agree.
func (s *routerServer) readyz(w http.ResponseWriter, _ *http.Request) {
	if _, err := s.router.Status(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "role": "router"})
}

// newRouterMux wires the public route table onto a router front end.
func newRouterMux(s *routerServer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/documents", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.postDocument(w, r)
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			s.postQuery(w, r)
		case http.MethodGet:
			s.listQueries(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/queries/", s.queryByID)
	mux.HandleFunc("/stats", s.stats)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/readyz", s.readyz)
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := s.router.Flush(); err != nil {
			httpError(w, err, http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

// buildRouter connects to the comma-separated node base URLs and
// fronts them with a merge router.
func buildRouter(nodeList string) (*cluster.Router, error) {
	var nodes []cluster.Node
	for _, raw := range strings.Split(nodeList, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		nodes = append(nodes, cluster.NewHTTPNode(u, nil))
	}
	if len(nodes) == 0 {
		return nil, errors.New("-nodes given but no node URLs parsed")
	}
	return cluster.NewRouter(nodes)
}
