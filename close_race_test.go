package ita

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCloseConcurrentWithOps races Close against in-flight ingests,
// reads and watch churn, on both the in-memory and the durable
// facade. The contract under test: no panic, no deadlock, every
// mutating call either completes fully before the close or reports
// ErrClosed, reads keep returning only published boundary states (a
// slice from a published view or nil — never a torn intermediate),
// and Close stays idempotent. CI runs this under -race, which is
// where the interesting failures would surface.
func TestCloseConcurrentWithOps(t *testing.T) {
	mk := []struct {
		name string
		open func(t *testing.T) *Engine
	}{
		{"memory", func(t *testing.T) *Engine {
			e, err := New(WithCountWindow(8))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"durable", func(t *testing.T) *Engine {
			e, err := Open(t.TempDir(), WithCountWindow(8),
				WithDurability(DurabilityOff), WithShards(2))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
	}
	for _, m := range mk {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for round := 0; round < 6; round++ {
				e := m.open(t)
				var ids []QueryID
				for i := 0; i < 4; i++ {
					id, err := e.Register("crude oil market", 1+i%3)
					if err != nil {
						t.Fatal(err)
					}
					ids = append(ids, id)
				}
				if _, err := e.IngestText("crude oil market price", at(1)); err != nil {
					t.Fatal(err)
				}

				start := make(chan struct{})
				stop := make(chan struct{})
				var wg sync.WaitGroup

				// Writers: ingest until the engine reports closure; any other
				// error is a real failure.
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						<-start
						for {
							// A fixed arrival time keeps concurrent writers inside
							// the monotonic-clock contract (equal times are legal;
							// interleaving increasing ones is not).
							_, err := e.IngestText("oil price futures", at(100))
							if err != nil {
								if !errors.Is(err, ErrClosed) {
									t.Errorf("writer %d: %v", w, err)
								}
								return
							}
							select {
							case <-stop:
								return
							default:
							}
						}
					}(w)
				}
				// Readers: the wait-free path must serve published boundaries
				// (possibly nil) right through the close, without error or
				// torn state.
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-start
						for {
							for _, id := range ids {
								res := e.Results(id)
								for _, mt := range res {
									_ = mt.Score // walk the slice: -race flags a torn publish
								}
							}
							e.ResultsAll()
							select {
							case <-stop:
								return
							default:
							}
						}
					}()
				}
				// Watch churn: subscribing races the close; after the close it
				// must report ErrClosed, never panic or deadlock.
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for {
						for _, id := range ids {
							err := e.Watch(id, func(Delta) {})
							if err != nil && !errors.Is(err, ErrClosed) {
								// The query may have been flushed out, but it is
								// never unregistered in this test: any non-close
								// error is unexpected.
								t.Errorf("watch: %v", err)
								return
							}
							e.Unwatch(id)
						}
						select {
						case <-stop:
							return
						default:
						}
					}
				}()

				close(start)
				time.Sleep(time.Duration(round) * 200 * time.Microsecond)
				if err := e.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				if err := e.Close(); err != nil {
					t.Fatalf("second close: %v", err)
				}
				// Post-close contract, checked while readers may still run.
				if _, err := e.IngestText("after close", at(9999)); !errors.Is(err, ErrClosed) {
					t.Fatalf("ingest after close: %v", err)
				}
				if err := e.Watch(ids[0], func(Delta) {}); !errors.Is(err, ErrClosed) {
					t.Fatalf("watch after close: %v", err)
				}
				close(stop)
				wg.Wait()
			}
		})
	}
}
