package ita

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// resultsLocked replicates the pre-published-view read path: copy the
// inner engine's result under the engine lock. The equivalence suites
// compare it byte-for-byte against the wait-free Results to prove the
// published views never diverge from what the locked path would serve.
func (e *Engine) resultsLocked(id QueryID) []Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	docs, ok := e.inner.Result(id)
	if !ok {
		return nil
	}
	return e.matchesLocked(docs)
}

// TestReadsAcquireNoEngineLock is the direct proof that the read path
// never touches e.mu: the test holds the engine lock and the reads must
// still complete. Before the published views, every one of these calls
// deadlocked here.
func TestReadsAcquireNoEngineLock(t *testing.T) {
	e := newEngine(t, WithCountWindow(8), WithTextRetention())
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine output", at(0)); err != nil {
		t.Fatal(err)
	}

	e.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := e.Results(q); len(got) != 1 || got[0].Text == "" {
			t.Errorf("Results under held lock = %v", got)
		}
		if all := e.ResultsAll(); len(all) != 1 || all[0].Query != q {
			t.Errorf("ResultsAll under held lock = %v", all)
		}
		if e.WindowLen() != 1 || e.Queries() != 1 || e.DictionarySize() == 0 {
			t.Errorf("scalar reads under held lock: window=%d queries=%d dict=%d",
				e.WindowLen(), e.Queries(), e.DictionarySize())
		}
		if s := e.Stats(); s.Arrivals != 1 {
			t.Errorf("Stats under held lock = %+v", s)
		}
		if text, ok := e.QueryText(q); !ok || text != "solar turbine" {
			t.Errorf("QueryText under held lock = %q, %v", text, ok)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reads blocked on the engine lock")
	}
	e.mu.Unlock()
}

// TestConcurrentReadersSeeEpochBoundaries hammers Results (and a
// toggling Watch) from reader goroutines while a writer drives epochs,
// under -race in CI. Every view a reader observes must correspond to
// some epoch boundary the writer actually published — no torn reads —
// and the publication sequence each reader observes must be monotonic.
func TestConcurrentReadersSeeEpochBoundaries(t *testing.T) {
	const (
		B       = 8
		epochs  = 120
		readers = 4
	)
	e := newEngine(t, WithCountWindow(6), WithShards(2), WithBatchSize(B))
	defer e.Close()
	queries := []string{"crude oil", "tanker export market", "refinery barrel price"}
	var qids []QueryID
	for _, q := range queries {
		id, err := e.Register(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, id)
	}

	// boundaries records, per query, every result signature published at
	// an epoch boundary. The writer is the only goroutine driving
	// epochs, so its own post-flush reads are exactly the boundary
	// states.
	sig := func(ms []Match) string {
		s := ""
		for _, m := range ms {
			s += fmt.Sprintf("%d:%g;", m.Doc, m.Score)
		}
		return s
	}
	boundaries := make([]sync.Map, len(qids)) // signature → true
	record := func() {
		for i, id := range qids {
			boundaries[i].Store(sig(e.Results(id)), true)
		}
	}
	record() // initial boundary (registration)

	var stop atomic.Bool
	var wg sync.WaitGroup
	type observation struct {
		query int
		sig   string
	}
	observed := make([][]observation, readers)
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for i := 0; !stop.Load(); i++ {
				ps := e.pub.Load()
				if ps.seq < lastSeq {
					t.Errorf("reader %d: publication sequence went backwards: %d after %d", r, ps.seq, lastSeq)
					return
				}
				lastSeq = ps.seq
				qi := (i + r) % len(qids)
				observed[r] = append(observed[r], observation{qi, sig(e.Results(qids[qi]))})
			}
		}()
	}
	// One goroutine toggles a watcher while epochs flow, exercising the
	// Watch/Unwatch path against concurrent publication.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := e.Watch(qids[0], func(Delta) {}); err != nil {
				t.Errorf("watch: %v", err)
				return
			}
			e.Unwatch(qids[0])
		}
	}()

	texts := feedTexts(B * epochs)
	for i := 0; i < epochs; i++ {
		items := make([]TimedText, B)
		for j := 0; j < B; j++ {
			items[j] = TimedText{Text: texts[i*B+j], At: at((i*B + j) * 10)}
		}
		if _, err := e.IngestBatch(items); err != nil {
			t.Fatal(err)
		}
		record()
	}
	stop.Store(true)
	wg.Wait()

	for r, obs := range observed {
		if len(obs) == 0 {
			t.Fatalf("reader %d made no observations", r)
		}
		for _, o := range obs {
			if _, ok := boundaries[o.query].Load(o.sig); !ok {
				t.Fatalf("reader %d observed a state of query %d that was never an epoch boundary: %q",
					r, o.query, o.sig)
			}
		}
	}
}
