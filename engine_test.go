package ita

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func t0() time.Time { return time.Unix(1000, 0) }

func at(ms int) time.Time { return t0().Add(time.Duration(ms) * time.Millisecond) }

func newEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRequiresWindow(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("New without window succeeded")
	}
}

func TestNewRejectsDoubleWindow(t *testing.T) {
	if _, err := New(WithCountWindow(5), WithTimeWindow(time.Minute)); err == nil {
		t.Fatal("two windows accepted")
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	for name, opt := range map[string]Option{
		"count0":   WithCountWindow(0),
		"countneg": WithCountWindow(-3),
		"span0":    WithTimeWindow(0),
		"badalgo":  WithAlgorithm(Algorithm(99)),
		"okapi0":   WithOkapiScoring(0),
		"okapineg": WithOkapiScoring(-10),
	} {
		if _, err := New(opt, WithCountWindow(5)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEndToEndMonitoring(t *testing.T) {
	e := newEngine(t, WithCountWindow(3), WithTextRetention())
	q, err := e.Register("white tower", 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := e.IngestText("the white tower gleamed", at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a report about markets", at(5)); err != nil {
		t.Fatal(err)
	}
	res := e.Results(q)
	if len(res) != 1 {
		t.Fatalf("results = %+v, want 1 match", res)
	}
	if !strings.Contains(res[0].Text, "white tower") {
		t.Fatalf("retained text = %q", res[0].Text)
	}

	// Two more matching docs; the window (N=3) pushes the first doc out.
	if _, err := e.IngestText("towers and towers of white stone", at(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("the tower was white and tall", at(15)); err != nil {
		t.Fatal(err)
	}
	res = e.Results(q)
	if len(res) != 2 {
		t.Fatalf("results = %+v, want 2", res)
	}
	for _, m := range res {
		if m.Score <= 0 || m.Text == "" {
			t.Fatalf("bad match %+v", m)
		}
	}
	if e.WindowLen() != 3 {
		t.Fatalf("window len = %d", e.WindowLen())
	}
}

func TestStemmingUnifiesInflections(t *testing.T) {
	e := newEngine(t, WithCountWindow(10))
	q, err := e.Register("weapon", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a shipment of weapons was seized", at(0)); err != nil {
		t.Fatal(err)
	}
	if res := e.Results(q); len(res) != 1 {
		t.Fatalf("stemmed query missed inflected document: %+v", res)
	}
}

func TestWithoutStemming(t *testing.T) {
	e := newEngine(t, WithCountWindow(10), WithoutStemming())
	q, err := e.Register("weapon", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a shipment of weapons was seized", at(0)); err != nil {
		t.Fatal(err)
	}
	if res := e.Results(q); len(res) != 0 {
		t.Fatalf("unstemmed engine should not match: %+v", res)
	}
}

func TestStopwordOnlyQueryRejected(t *testing.T) {
	e := newEngine(t, WithCountWindow(10))
	if _, err := e.Register("the of and", 3); !errors.Is(err, ErrNoQueryTerms) {
		t.Fatalf("want ErrNoQueryTerms, got %v", err)
	}
}

func TestStopwordOnlyDocumentOccupiesWindow(t *testing.T) {
	e := newEngine(t, WithCountWindow(2))
	q, err := e.Register("market", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("markets rallied", at(0)); err != nil {
		t.Fatal(err)
	}
	// Two stopword-only documents must push the match out of the window.
	if _, err := e.IngestText("the and of", at(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a an but", at(10)); err != nil {
		t.Fatal(err)
	}
	if res := e.Results(q); len(res) != 0 {
		t.Fatalf("expired match still reported: %+v", res)
	}
}

func TestTimeRegressionRejected(t *testing.T) {
	e := newEngine(t, WithCountWindow(10))
	if _, err := e.IngestText("first", at(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("second", at(50)); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("want ErrTimeRegression, got %v", err)
	}
	if err := e.Advance(at(10)); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("Advance regression: got %v", err)
	}
}

func TestTimeWindowAdvance(t *testing.T) {
	e := newEngine(t, WithTimeWindow(100*time.Millisecond), WithTextRetention())
	q, err := e.Register("breaking news", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("breaking news from the capital", at(0)); err != nil {
		t.Fatal(err)
	}
	if res := e.Results(q); len(res) != 1 {
		t.Fatalf("results = %+v", res)
	}
	if err := e.Advance(at(150)); err != nil {
		t.Fatal(err)
	}
	if res := e.Results(q); len(res) != 0 {
		t.Fatalf("results after expiry = %+v", res)
	}
	if e.WindowLen() != 0 {
		t.Fatalf("window len = %d", e.WindowLen())
	}
}

func TestResultsUnknownQuery(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	if res := e.Results(99); res != nil {
		t.Fatalf("unknown query results = %+v", res)
	}
}

func TestUnregister(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("energy prices", 3)
	if err != nil {
		t.Fatal(err)
	}
	if txt, ok := e.QueryText(q); !ok || txt != "energy prices" {
		t.Fatalf("QueryText = %q,%v", txt, ok)
	}
	if !e.Unregister(q) {
		t.Fatal("Unregister failed")
	}
	if e.Unregister(q) {
		t.Fatal("double Unregister succeeded")
	}
	if _, ok := e.QueryText(q); ok {
		t.Fatal("QueryText survived Unregister")
	}
	if e.Queries() != 0 {
		t.Fatalf("Queries = %d", e.Queries())
	}
}

func TestAlgorithmsAgreeThroughPublicAPI(t *testing.T) {
	algos := []Algorithm{IncrementalThreshold, NaiveKmax, NaivePlain}
	engines := make([]*Engine, len(algos))
	queries := make([]QueryID, len(algos))
	for i, a := range algos {
		engines[i] = newEngine(t, WithCountWindow(4), WithAlgorithm(a))
		q, err := engines[i].Register("solar wind turbine capacity", 3)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	feed := NewNewsFeed(3)
	for step := 0; step < 60; step++ {
		_, text := feed.Mixed()
		when := at(step * 10)
		for _, e := range engines {
			if _, err := e.IngestText(text, when); err != nil {
				t.Fatal(err)
			}
		}
		base := engines[0].Results(queries[0])
		for i := 1; i < len(engines); i++ {
			other := engines[i].Results(queries[i])
			if len(base) != len(other) {
				t.Fatalf("step %d: %s returned %d, %s returned %d",
					step, algos[0], len(base), algos[i], len(other))
			}
			for j := range base {
				if base[j].Score != other[j].Score {
					t.Fatalf("step %d pos %d: score %g vs %g", step, j, base[j].Score, other[j].Score)
				}
			}
		}
	}
}

func TestOkapiScoringEndToEnd(t *testing.T) {
	e := newEngine(t, WithCountWindow(10), WithOkapiScoring(12))
	q, err := e.Register("market volatility", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("volatility gripped the market as the market slid", at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("weather was mild", at(5)); err != nil {
		t.Fatal(err)
	}
	res := e.Results(q)
	if len(res) != 1 || res[0].Score <= 0 {
		t.Fatalf("okapi results = %+v", res)
	}
}

func TestConcurrentUse(t *testing.T) {
	e := newEngine(t, WithCountWindow(50))
	q, err := e.Register("concurrent stream processing", 5)
	if err != nil {
		t.Fatal(err)
	}
	// Writers feed disjoint time ranges; readers poll results. The test
	// asserts absence of races (run under -race) and engine liveness.
	var wg sync.WaitGroup
	var mu sync.Mutex
	now := t0()
	ingest := func(text string) {
		// The clock and the ingest must advance together, otherwise two
		// goroutines could submit their timestamps out of order.
		mu.Lock()
		now = now.Add(time.Millisecond)
		_, err := e.IngestText(text, now)
		mu.Unlock()
		if err != nil {
			t.Error(err)
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			feed := NewNewsFeed(seed) // NewsFeed itself is not goroutine-safe
			for i := 0; i < 50; i++ {
				_, text := feed.Mixed()
				ingest(text)
			}
		}(int64(w + 1))
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = e.Results(q)
				_ = e.Stats()
			}
		}()
	}
	wg.Wait()
	if e.WindowLen() != 50 {
		t.Fatalf("window len = %d", e.WindowLen())
	}
}

func TestStatsExposed(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	if _, err := e.IngestText("alpha beta gamma", at(0)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Arrivals != 1 {
		t.Fatalf("Arrivals = %d", s.Arrivals)
	}
	if e.DictionarySize() == 0 {
		t.Fatal("dictionary empty after ingest")
	}
	if e.Algorithm() != IncrementalThreshold {
		t.Fatalf("Algorithm = %v", e.Algorithm())
	}
}

func TestNewsFeedTopics(t *testing.T) {
	if len(NewsTopics()) < 4 {
		t.Fatalf("topics = %v", NewsTopics())
	}
	f := NewNewsFeed(1)
	for _, topic := range NewsTopics() {
		if len(f.Article(topic)) < 40 {
			t.Fatalf("short article for %s", topic)
		}
	}
}
