package ita

import (
	"fmt"
	"time"

	"ita/internal/core"
	"ita/internal/invindex"
	"ita/internal/shard"
	"ita/internal/vsm"
	"ita/internal/wal"
	"ita/internal/window"
)

// Algorithm selects the maintenance engine.
type Algorithm int

const (
	// IncrementalThreshold is the paper's ITA algorithm (the default).
	IncrementalThreshold Algorithm = iota
	// NaiveKmax is the paper's competitor: score every arrival against
	// every query, maintain a top-2k materialized view per query, and
	// rescan the window when a view underflows k.
	NaiveKmax
	// NaivePlain is NaiveKmax with kmax = k: the unenhanced baseline of
	// §II of the paper.
	NaivePlain
	// ShardedIncrementalThreshold is ITA with query-sharded parallel
	// maintenance: the inverted index stays a single-writer structure,
	// and per-query threshold/result maintenance fans out across shard
	// worker goroutines after every index mutation. Results are
	// identical to IncrementalThreshold; see WithShards.
	ShardedIncrementalThreshold
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case IncrementalThreshold:
		return "ita"
	case NaiveKmax:
		return "naive-kmax"
	case NaivePlain:
		return "naive-plain"
	case ShardedIncrementalThreshold:
		return "ita-sharded"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

type config struct {
	policy        window.Policy
	algorithm     Algorithm
	algorithmSet  bool
	weighter      vsm.Weighter
	stemming      bool
	stopwords     bool
	retainText    bool
	seed          uint64
	disableRollup bool
	scanTrees     bool // scan-all probe trees (equivalence testing)
	floorTarget   int  // floor margin overrides; 0 = engine default
	floorRaise    int
	postingLayout PostingLayout
	shards        int // ShardedIncrementalThreshold only; 0 = GOMAXPROCS
	shardsSet     bool
	batchSize     int // epoch size for auto-coalesced ingestion; <= 1 disables

	// Durability (see durable.go). walAttach marks a config built by the
	// Open recovery path itself, where New must not recurse into Open.
	walDir        string
	walDurability Durability
	walEvery      int
	walEverySet   bool
	walAttach     bool
	walHooks      *walTestHooks

	// Replication (see replication.go). replRetain bounds how many
	// completed segments are kept for lagging followers; replTune carries
	// timing/dialing overrides for the replication server and follower
	// client (tests inject faults and fast backoffs through it).
	replRetain int
	replTune   *replTuning
}

// Option configures New.
type Option func(*config) error

// WithCountWindow keeps the n most recent documents valid (the paper's
// primary window type). Exactly one window option must be supplied.
func WithCountWindow(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("ita: count window must be positive, got %d", n)
		}
		if c.policy != nil {
			return fmt.Errorf("ita: window specified twice")
		}
		c.policy = window.Count{N: n}
		return nil
	}
}

// WithTimeWindow keeps documents received in the last d of stream time.
func WithTimeWindow(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("ita: time window must be positive, got %s", d)
		}
		if c.policy != nil {
			return fmt.Errorf("ita: window specified twice")
		}
		c.policy = window.Span{D: d}
		return nil
	}
}

// WithAlgorithm selects the engine; the default is IncrementalThreshold.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) error {
		switch a {
		case IncrementalThreshold, NaiveKmax, NaivePlain, ShardedIncrementalThreshold:
			c.algorithm = a
			c.algorithmSet = true
			return nil
		default:
			return fmt.Errorf("ita: unknown algorithm %d", int(a))
		}
	}
}

// WithShards selects the sharded parallel ITA engine
// (ShardedIncrementalThreshold) with n shards; n = 0 uses
// runtime.GOMAXPROCS. Registered queries are partitioned across the
// shards and every arrival/expiration fans its per-query maintenance
// out to shard worker goroutines against a quiescent index, so results
// are identical to the single-threaded engine. Worth it once the
// per-event query maintenance (many standing queries) dominates the
// index mutation; a single-shard engine runs inline with no worker
// goroutines. Combining WithShards with a Naïve algorithm is an error.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("ita: shard count must be >= 0, got %d", n)
		}
		c.shards = n
		c.shardsSet = true
		return nil
	}
}

// WithBatchSize enables epoch-batched ingestion: IngestText calls
// buffer their analyzed documents and the engine processes them as one
// epoch — a single net index mutation pass plus one net maintenance
// pass per affected query — once n have accumulated, when Flush is
// called, or before any operation that needs the stream applied
// (Register, Unregister, Advance, Snapshot, Close). Per-query results
// at every epoch boundary are identical to unbatched processing; the
// trade is bounded read staleness (Results, Stats, WindowLen reflect
// flushed epochs only, at most n-1 documents behind) for substantially
// higher sustained throughput, and watchers receive one coalesced delta
// per query per epoch. n = 1 (the default) disables buffering. See the
// "Epoch-batched ingestion" section of the package documentation.
func WithBatchSize(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("ita: batch size must be >= 1, got %d", n)
		}
		c.batchSize = n
		return nil
	}
}

// Durability selects the write-ahead log's fsync policy; see WithWAL.
type Durability int

const (
	// DurabilityEpochSync (the default) fsyncs the log at every epoch
	// boundary: once an ingest, flush, register, unregister or advance
	// returns, its epoch survives any crash. Documents of a partial
	// epoch buffered by WithBatchSize may be lost with the OS page
	// cache if the machine (not just the process) fails.
	DurabilityEpochSync Durability = iota
	// DurabilityOff never fsyncs. A process crash still loses nothing
	// that reached the log (the page cache survives the process); an OS
	// or power failure can lose the unflushed tail, recovering an
	// earlier epoch boundary instead.
	DurabilityOff
	// DurabilityAlways fsyncs after every record — one fsync per
	// operation, the strongest and slowest policy.
	DurabilityAlways
)

// String implements fmt.Stringer.
func (d Durability) String() string { return d.wal().String() }

// ParseDurability parses the command-line spelling of a policy:
// "off", "epoch" or "always" (the String values).
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "off":
		return DurabilityOff, nil
	case "epoch":
		return DurabilityEpochSync, nil
	case "always":
		return DurabilityAlways, nil
	default:
		return 0, fmt.Errorf("ita: unknown durability %q (want off|epoch|always)", s)
	}
}

func (d Durability) wal() wal.Durability {
	switch d {
	case DurabilityOff:
		return wal.DurabilityOff
	case DurabilityAlways:
		return wal.DurabilityAlways
	default:
		return wal.DurabilityEpochSync
	}
}

// WithWAL makes the engine durable: every mutating operation is
// appended to a write-ahead log in dir before it is applied, and
// automatic checkpoints (see WithCheckpointEvery) bound the log's
// length. Passing WithWAL to New is equivalent to calling Open(dir,
// ...): if dir already holds durable state the engine is recovered from
// it, otherwise a fresh durable engine is created. See the "Durability"
// section of the package documentation for the recovery-consistency
// model.
func WithWAL(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("ita: WithWAL requires a directory")
		}
		c.walDir = dir
		return nil
	}
}

// WithDurability selects the WAL fsync policy (default
// DurabilityEpochSync). It only makes sense together with WithWAL/Open.
func WithDurability(d Durability) Option {
	return func(c *config) error {
		switch d {
		case DurabilityOff, DurabilityEpochSync, DurabilityAlways:
			c.walDurability = d
			return nil
		default:
			return fmt.Errorf("ita: unknown durability %d", int(d))
		}
	}
}

// WithCheckpointEvery sets the automatic checkpoint cadence of a
// durable engine: after every n completed epoch boundaries the engine
// snapshots itself next to the log, starts a fresh segment and deletes
// the old one, bounding both recovery time and disk usage. n = 0
// disables automatic checkpoints (the log then grows until Checkpoint
// is called). The default is 256.
func WithCheckpointEvery(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("ita: checkpoint interval must be >= 0, got %d", n)
		}
		c.walEvery = n
		c.walEverySet = true
		return nil
	}
}

// WithReplicationRetention caps how many completed (checkpointed)
// segments a replicating primary keeps on disk for lagging followers.
// Within the cap, a checkpoint deletes only segments every registered
// follower has acknowledged past; a follower that falls behind the cap
// loses its resume position and is resynced with a full checkpoint
// fetch plus tail replay instead. n = 0 takes the default (8);
// retention only takes effect once StartReplication is called.
func WithReplicationRetention(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("ita: replication retention must be >= 0, got %d", n)
		}
		c.replRetain = n
		return nil
	}
}

// withReplTuning overrides replication timings and dialing. Unexported:
// it exists for the fault-injection suite, which needs millisecond
// backoffs and fault-wrapped connections.
func withReplTuning(t replTuning) Option {
	return func(c *config) error { c.replTune = &t; return nil }
}

// walAttached marks a config constructed by the Open recovery machinery
// itself; New then builds the in-memory engine without re-entering
// Open.
func walAttached() Option {
	return func(c *config) error { c.walAttach = true; return nil }
}

// PostingLayout selects the physical representation of the inverted
// index's per-term posting lists; see WithPostingLayout.
type PostingLayout int

const (
	// LayoutBlocked (the default) stores postings as flat compressed
	// blocks — frame-of-reference doc ids and dictionary- or FOR-coded
	// weights at per-block fixed bit widths, with per-block max-weight/
	// min-weight/count summaries routing seeks through a block
	// directory. Roughly a third of the slice layout's bytes per
	// posting on natural workloads; results, counters and every
	// maintenance decision are byte-identical to LayoutSlices.
	LayoutBlocked PostingLayout = iota
	// LayoutSlices stores postings as chunked sorted slices of raw
	// 16-byte entries — the original layout, kept as the reference the
	// equivalence suites hold the blocked layout byte-identical to.
	LayoutSlices
)

// String implements fmt.Stringer.
func (l PostingLayout) String() string {
	switch l {
	case LayoutBlocked:
		return "blocked"
	case LayoutSlices:
		return "slices"
	default:
		return fmt.Sprintf("posting-layout(%d)", int(l))
	}
}

// WithPostingLayout selects the inverted-index posting layout (default
// LayoutBlocked). The layout is a purely physical choice: both layouts
// produce byte-identical results, statistics, snapshots and WAL
// streams, so an engine may be snapshotted under one layout and
// restored under the other. The choice is recorded in snapshots, and
// durable recovery reopens with the recorded layout unless an explicit
// WithPostingLayout is passed to Open.
func WithPostingLayout(l PostingLayout) Option {
	return func(c *config) error {
		switch l {
		case LayoutBlocked, LayoutSlices:
			c.postingLayout = l
			return nil
		default:
			return fmt.Errorf("ita: unknown posting layout %d", int(l))
		}
	}
}

// internal maps the facade layout onto the index package's enum.
func (l PostingLayout) internal() invindex.Layout {
	if l == LayoutSlices {
		return invindex.LayoutSlices
	}
	return invindex.LayoutBlocked
}

// WithOkapiScoring replaces cosine similarity with the Okapi BM25
// formulation, calibrated around the given average document length in
// tokens (the paper notes ITA applies unchanged to Okapi weights).
func WithOkapiScoring(avgDocLen float64) Option {
	return func(c *config) error {
		if avgDocLen <= 0 {
			return fmt.Errorf("ita: average document length must be positive, got %g", avgDocLen)
		}
		c.weighter = vsm.NewOkapi(avgDocLen)
		return nil
	}
}

// WithoutStemming disables Porter stemming in the analysis pipeline.
func WithoutStemming() Option {
	return func(c *config) error { c.stemming = false; return nil }
}

// WithoutStopwords disables stopword removal in the analysis pipeline.
func WithoutStopwords() Option {
	return func(c *config) error { c.stopwords = false; return nil }
}

// WithTextRetention keeps each valid document's original text in memory
// so Results can return it; costs one string per window slot.
func WithTextRetention() Option {
	return func(c *config) error { c.retainText = true; return nil }
}

// WithSeed fixes internal randomization (result-set skip lists) for
// bit-reproducible runs.
func WithSeed(seed uint64) Option {
	return func(c *config) error { c.seed = seed; return nil }
}

// WithoutRollup disables ITA's threshold roll-up; exposed for the
// ablation experiments, not recommended for production use.
func WithoutRollup() Option {
	return func(c *config) error { c.disableRollup = true; return nil }
}

// withScanAllTrees pins the ITA engines' probe trees to the scan-all
// representation, where a probe visits every query registered on the
// term instead of only the θ-ordered beatable prefix. Unexported: it
// exists for the metamorphic equivalence suite, which proves the
// θ-ordered probe index behavior- and counter-identical against this
// reference.
func withScanAllTrees() Option {
	return func(c *config) error { c.scanTrees = true; return nil }
}

// withFloorMargins overrides the ITA engines' floor maintenance margins
// (see internal/core/floor.go). Unexported: tests use tiny margins so
// floor raises and rebuilds fire densely inside small windows.
func withFloorMargins(target, raise int) Option {
	return func(c *config) error {
		c.floorTarget = target
		c.floorRaise = raise
		return nil
	}
}

func (c *config) build() core.Engine {
	switch c.algorithm {
	case NaiveKmax:
		return core.NewNaive(c.policy, core.WithNaiveSeed(c.seed))
	case NaivePlain:
		return core.NewNaive(c.policy, core.WithNaiveSeed(c.seed),
			core.WithKmax(func(k int) int { return k }))
	case ShardedIncrementalThreshold:
		opts := []shard.Option{shard.WithSeed(c.seed)}
		if c.disableRollup {
			opts = append(opts, shard.WithoutRollup())
		}
		if c.scanTrees {
			opts = append(opts, shard.WithScanAllTrees())
		}
		if c.floorTarget != 0 || c.floorRaise != 0 {
			opts = append(opts, shard.WithFloorMargins(c.floorTarget, c.floorRaise))
		}
		if c.postingLayout != LayoutBlocked {
			opts = append(opts, shard.WithPostingLayout(c.postingLayout.internal()))
		}
		return shard.New(c.policy, c.shards, opts...)
	default:
		opts := []core.ITAOption{core.WithITASeed(c.seed)}
		if c.disableRollup {
			opts = append(opts, core.WithoutRollup())
		}
		if c.scanTrees {
			opts = append(opts, core.WithScanAllTrees())
		}
		if c.floorTarget != 0 || c.floorRaise != 0 {
			opts = append(opts, core.WithFloorMargins(c.floorTarget, c.floorRaise))
		}
		if c.postingLayout != LayoutBlocked {
			opts = append(opts, core.WithPostingLayout(c.postingLayout.internal()))
		}
		return core.NewITA(c.policy, opts...)
	}
}
