package ita_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ita"
)

// The basic lifecycle: create an engine over a sliding window, register
// a continuous query, stream documents, read the standing result.
func ExampleNew() {
	eng, err := ita.New(ita.WithCountWindow(100), ita.WithTextRetention())
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.Register("white tower", 2)
	if err != nil {
		log.Fatal(err)
	}

	base := time.Unix(0, 0)
	docs := []string{
		"The white tower overlooks the harbor.",
		"Grain prices rose for a third week.",
		"The old tower was repainted white.",
	}
	for i, text := range docs {
		if _, err := eng.IngestText(text, base.Add(time.Duration(i)*5*time.Millisecond)); err != nil {
			log.Fatal(err)
		}
	}
	for rank, m := range eng.Results(q) {
		fmt.Printf("%d: %s\n", rank+1, m.Text)
	}
	// Output:
	// 1: The white tower overlooks the harbor.
	// 2: The old tower was repainted white.
}

// Watch delivers result deltas: the moment a document enters (or
// leaves) a query's top-k, without polling.
func ExampleEngine_Watch() {
	eng, err := ita.New(ita.WithCountWindow(10), ita.WithTextRetention())
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.Register("explosives shipment", 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Watch(q, func(d ita.Delta) {
		for _, m := range d.Entered {
			fmt.Printf("alert: %s\n", m.Text)
		}
	}); err != nil {
		log.Fatal(err)
	}

	base := time.Unix(0, 0)
	if _, err := eng.IngestText("Lunch menu updated for the week.", base); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.IngestText("A shipment of explosives was intercepted.", base.Add(time.Millisecond)); err != nil {
		log.Fatal(err)
	}
	// Output:
	// alert: A shipment of explosives was intercepted.
}

// Snapshot and Restore round-trip a running server: queries, window and
// dictionary survive; results are identical afterwards.
func ExampleEngine_Snapshot() {
	eng, err := ita.New(ita.WithCountWindow(10))
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.Register("crude oil", 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.IngestText("Crude oil futures climbed.", time.Unix(0, 0)); err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := ita.Restore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results after restart: %d\n", len(restored.Results(q)))
	// Output:
	// results after restart: 1
}
