package ita

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/textproc"
	"ita/internal/window"
)

// Identifier and result types of the public API.
type (
	// DocID identifies an ingested document.
	DocID = model.DocID
	// QueryID identifies a registered continuous query.
	QueryID = model.QueryID
	// Stats exposes the engine's cumulative operation counters.
	Stats = core.Stats
)

// Match is one result entry of a continuous query.
type Match struct {
	Doc   DocID
	Score float64
	// Text is the document's original text when the engine was built
	// with WithTextRetention, empty otherwise.
	Text string
}

// Errors returned by the public API.
var (
	// ErrNoQueryTerms means a query text contained no indexable terms
	// (for example, only stopwords).
	ErrNoQueryTerms = errors.New("ita: query has no indexable terms")
	// ErrTimeRegression means a document was ingested with an arrival
	// time before an earlier document's; sliding windows require
	// non-decreasing arrival times.
	ErrTimeRegression = errors.New("ita: arrival time precedes an earlier document")
)

// Engine is a continuous text search server: it analyzes and indexes a
// document stream and maintains the top-k result of every registered
// query at all times. All methods are safe for concurrent use.
type Engine struct {
	mu        sync.Mutex
	cfg       config
	inner     core.Engine
	pipeline  *textproc.Pipeline
	nextDoc   model.DocID
	nextQuery model.QueryID
	lastAt    time.Time
	queryText map[QueryID]string
	texts     *textRing
	watches   map[QueryID]*watchState
}

// New builds an engine. A window option (WithCountWindow or
// WithTimeWindow) is required; everything else defaults to the paper's
// configuration: ITA algorithm, cosine scoring, stemming and stopword
// removal enabled.
func New(opts ...Option) (*Engine, error) {
	cfg := config{
		algorithm: IncrementalThreshold,
		stemming:  true,
		stopwords: true,
		seed:      1,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.policy == nil {
		return nil, errors.New("ita: a window option is required (WithCountWindow or WithTimeWindow)")
	}
	if cfg.shardsSet {
		switch {
		case !cfg.algorithmSet || cfg.algorithm == IncrementalThreshold:
			cfg.algorithm = ShardedIncrementalThreshold
		case cfg.algorithm == ShardedIncrementalThreshold:
		default:
			return nil, fmt.Errorf("ita: WithShards requires the ITA algorithm, got %s", cfg.algorithm)
		}
	}
	if cfg.weighter == nil {
		cfg.weighter = defaultWeighter()
	}
	e := &Engine{
		cfg:       cfg,
		inner:     cfg.build(),
		pipeline:  textproc.NewPipeline(textproc.NewDictionary(), cfg.stemming, cfg.stopwords),
		nextDoc:   1,
		nextQuery: 1,
		queryText: make(map[QueryID]string),
	}
	if cfg.retainText {
		e.texts = newTextRing(cfg.policy)
	}
	return e, nil
}

// IngestText analyzes text and processes it as a document arrival at
// the given time, returning the assigned document id. Arrival times
// must be non-decreasing across calls. A document whose analysis yields
// no terms (for example, all stopwords) is still ingested: it occupies
// a window slot, matches nothing, and expires normally — exactly how
// the paper's window semantics treat it.
func (e *Engine) IngestText(text string, at time.Time) (DocID, error) {
	e.mu.Lock()
	id, deltas, err := e.ingestLocked(text, at)
	e.mu.Unlock()
	// Watch callbacks run outside the lock so they may call back into
	// the engine.
	deliver(deltas)
	return id, err
}

func (e *Engine) ingestLocked(text string, at time.Time) (DocID, []pendingDelta, error) {
	if at.Before(e.lastAt) {
		return 0, nil, fmt.Errorf("%w: %s < %s", ErrTimeRegression, at, e.lastAt)
	}
	freqs := e.pipeline.TermFreqs(text)
	doc, err := model.NewDocument(e.nextDoc, at, e.cfg.weighter.DocPostings(freqs))
	if err != nil {
		return 0, nil, fmt.Errorf("ita: analyze document: %w", err)
	}
	if err := e.inner.Process(doc); err != nil {
		return 0, nil, err
	}
	e.lastAt = at
	e.nextDoc++
	if e.texts != nil {
		e.texts.add(doc.ID, at, text)
	}
	return doc.ID, e.collectDeltas(), nil
}

// TimedText is one element of an IngestBatch call.
type TimedText struct {
	Text string
	At   time.Time
}

// batchProcessor is implemented by engines (the sharded ITA) that accept
// a whole batch of arrivals in one call.
type batchProcessor interface {
	ProcessBatch(docs []*model.Document) error
}

// IngestBatch analyzes and processes a batch of document arrivals under
// a single engine lock, returning the assigned ids in order. Arrival
// times must be non-decreasing within the batch and not precede earlier
// ingests. Results are identical to calling IngestText in a loop; the
// batch amortizes the facade's per-call work — lock acquisition,
// monotonicity validation and watch-delta collection — across the
// batch, which makes it the preferred ingestion path for high-volume
// feeds. (Engine-level event processing is not batched: every event
// still fans out individually so maintenance sees the exact per-event
// index states.) Watch callbacks observe one cumulative delta per
// query instead of one per document.
func (e *Engine) IngestBatch(items []TimedText) ([]DocID, error) {
	if len(items) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	ids, deltas, err := e.ingestBatchLocked(items)
	e.mu.Unlock()
	deliver(deltas)
	return ids, err
}

func (e *Engine) ingestBatchLocked(items []TimedText) ([]DocID, []pendingDelta, error) {
	// Validate and analyze everything up front so a bad item fails the
	// batch before any document is processed.
	last := e.lastAt
	for i, it := range items {
		if it.At.Before(last) {
			return nil, nil, fmt.Errorf("%w: item %d: %s < %s", ErrTimeRegression, i, it.At, last)
		}
		last = it.At
	}
	docs := make([]*model.Document, len(items))
	ids := make([]DocID, len(items))
	for i, it := range items {
		doc, err := model.NewDocument(e.nextDoc+model.DocID(i), it.At, e.cfg.weighter.DocPostings(e.pipeline.TermFreqs(it.Text)))
		if err != nil {
			return nil, nil, fmt.Errorf("ita: analyze document %d: %w", i, err)
		}
		docs[i] = doc
		ids[i] = doc.ID
	}
	if bp, ok := e.inner.(batchProcessor); ok {
		if err := bp.ProcessBatch(docs); err != nil {
			return nil, nil, err
		}
	} else {
		for _, doc := range docs {
			if err := e.inner.Process(doc); err != nil {
				return nil, nil, err
			}
		}
	}
	e.nextDoc += model.DocID(len(docs))
	e.lastAt = last
	if e.texts != nil {
		for i, doc := range docs {
			e.texts.add(doc.ID, doc.Arrival, items[i].Text)
		}
	}
	return ids, e.collectDeltas(), nil
}

// Close releases engine resources — for the sharded engine, its shard
// worker goroutines. The engine must not be used afterwards. Close is
// idempotent and a no-op for the single-threaded engines.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Advance moves the stream clock forward without an arrival, expiring
// documents from time-based windows. Count-based windows are unaffected.
func (e *Engine) Advance(now time.Time) error {
	e.mu.Lock()
	if now.Before(e.lastAt) {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s < %s", ErrTimeRegression, now, e.lastAt)
	}
	e.lastAt = now
	e.inner.ExpireUntil(now)
	deltas := e.collectDeltas()
	if e.texts != nil {
		e.texts.expire(now)
	}
	e.mu.Unlock()
	deliver(deltas)
	return nil
}

// Register installs a continuous query: the k most similar documents to
// queryText are maintained from now on. Term frequency in the query
// text weights the terms, as in the paper's {white white tower} example.
func (e *Engine) Register(queryText string, k int) (QueryID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	freqs := e.pipeline.TermFreqs(queryText)
	if len(freqs) == 0 {
		return 0, ErrNoQueryTerms
	}
	q, err := model.NewQuery(e.nextQuery, k, e.cfg.weighter.QueryTerms(freqs))
	if err != nil {
		return 0, fmt.Errorf("ita: analyze query: %w", err)
	}
	if err := e.inner.Register(q); err != nil {
		return 0, err
	}
	id := e.nextQuery
	e.nextQuery++
	e.queryText[id] = queryText
	return id, nil
}

// Unregister removes a query and any watcher on it, reporting whether
// the query existed.
func (e *Engine) Unregister(id QueryID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.queryText, id)
	delete(e.watches, id)
	return e.inner.Unregister(id)
}

// Results returns the query's current top-k in descending score order.
// It returns nil for an unknown query; a registered query with no
// matching documents returns an empty non-nil slice.
func (e *Engine) Results(id QueryID) []Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	docs, ok := e.inner.Result(id)
	if !ok {
		return nil
	}
	out := make([]Match, 0, len(docs))
	for _, d := range docs {
		m := Match{Doc: d.Doc, Score: d.Score}
		if e.texts != nil {
			m.Text = e.texts.get(d.Doc)
		}
		out = append(out, m)
	}
	return out
}

// QueryText returns the original text a query was registered with.
func (e *Engine) QueryText(id QueryID) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.queryText[id]
	return s, ok
}

// WindowLen returns the number of currently valid documents.
func (e *Engine) WindowLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.WindowLen()
}

// Queries returns the number of registered queries.
func (e *Engine) Queries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.Queries()
}

// Stats returns a snapshot of the engine's operation counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *e.inner.Stats()
}

// Algorithm returns the engine's maintenance algorithm.
func (e *Engine) Algorithm() Algorithm { return e.cfg.algorithm }

// DictionarySize returns the number of distinct terms interned so far.
func (e *Engine) DictionarySize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pipeline.Dictionary().Size()
}

// textRing mirrors the window policy for retained document texts. Dead
// entries accumulate at the front of order as a head index rather than
// by reslicing: order = order[1:] would pin the whole backing array (and
// every expired entry in it) for the lifetime of the stream, so the
// drained prefix is compacted away once it dominates the array, keeping
// memory at O(window) instead of O(stream).
type textRing struct {
	policy window.Policy
	byID   map[model.DocID]string
	order  []retained
	head   int
}

type retained struct {
	id model.DocID
	at time.Time
}

func newTextRing(p window.Policy) *textRing {
	return &textRing{policy: p, byID: make(map[model.DocID]string)}
}

func (r *textRing) add(id model.DocID, at time.Time, text string) {
	r.byID[id] = text
	r.order = append(r.order, retained{id: id, at: at})
	r.expire(at)
}

func (r *textRing) expire(now time.Time) {
	for r.head < len(r.order) && r.policy.Expired(r.order[r.head].at, now, len(r.order)-r.head) {
		delete(r.byID, r.order[r.head].id)
		r.order[r.head] = retained{}
		r.head++
	}
	if r.head > 64 && r.head*2 > len(r.order) {
		n := copy(r.order, r.order[r.head:])
		clear(r.order[n:])
		r.order = r.order[:n]
		r.head = 0
	}
}

func (r *textRing) get(id model.DocID) string { return r.byID[id] }
