package ita

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/repl"
	"ita/internal/textproc"
	"ita/internal/topk"
	"ita/internal/wal"
	"ita/internal/window"
)

// Identifier and result types of the public API.
type (
	// DocID identifies an ingested document.
	DocID = model.DocID
	// QueryID identifies a registered continuous query.
	QueryID = model.QueryID
	// Stats exposes the engine's cumulative operation counters.
	Stats = core.Stats
	// Memory exposes the engine's per-component memory estimate.
	Memory = core.Memory
	// Match is one result entry of a continuous query. Text is the
	// document's original text when the engine was built with
	// WithTextRetention, empty otherwise.
	Match = model.Match
	// QueryResult pairs a query with its current top-k.
	QueryResult = model.QueryResult
	// TimedText is one element of an IngestBatch call.
	TimedText = model.TimedText
)

// Errors returned by the public API.
var (
	// ErrNoQueryTerms means a query text contained no indexable terms
	// (for example, only stopwords).
	ErrNoQueryTerms = errors.New("ita: query has no indexable terms")
	// ErrTimeRegression means a document was ingested with an arrival
	// time before an earlier document's; sliding windows require
	// non-decreasing arrival times.
	ErrTimeRegression = errors.New("ita: arrival time precedes an earlier document")
)

// Engine is a continuous text search server: it analyzes and indexes a
// document stream and maintains the top-k result of every registered
// query at all times. All methods are safe for concurrent use.
type Engine struct {
	mu        sync.Mutex
	cfg       config
	inner     core.Engine
	pipeline  *textproc.Pipeline
	nextDoc   model.DocID
	nextQuery model.QueryID
	lastAt    time.Time
	queryText sync.Map // QueryID → string; read off-lock by QueryText
	texts     *textRing
	watches   map[QueryID]*watchState

	// interned shares one immutable term vector across every live query
	// registered with the same text. Real query populations are heavily
	// duplicated (the same alert text registered by many users), and the
	// analysis pipeline is deterministic — identical text always yields
	// the identical sorted, weighted vector — so duplicates can share
	// one backing array. Entries are refcounted and dropped when the
	// last query with that text unregisters.
	interned map[string]*internEntry

	// wal is the durability attachment (nil for in-memory engines):
	// mutating operations append records before applying, epoch
	// boundaries append markers and fsync per the policy, and
	// checkpoints rotate the log. See durable.go.
	wal *walState

	// repl is the replication attachment (nil until StartReplication or
	// OpenFollower); readOnly marks a follower, whose mutating
	// operations return ErrReadOnly until Promote. closed makes every
	// later operation fail with ErrClosed instead of reaching an inner
	// engine whose workers have shut down. See replication.go.
	repl     *replState
	readOnly bool
	closed   bool

	// pub is the wait-free read path: an immutable publishedState swapped
	// at every publication boundary (epoch flush, Register, Unregister,
	// Advance, Restore). Results, ResultsAll, Stats, WindowLen, Queries
	// and DictionarySize read it without ever acquiring mu. It stays nil
	// for engines whose inner algorithm has no published views (the Naïve
	// baselines), which fall back to the locked path.
	pub atomic.Pointer[publishedState]

	// Epoch buffer (WithBatchSize > 1): analyzed documents awaiting the
	// next flush, with their original texts when retention is on. Ids
	// and the stream clock are assigned at buffer time; the documents
	// reach the inner engine as one epoch at flush time.
	pending     []*model.Document
	pendingText []string

	// Watch-delta delivery queue: deltas are enqueued in epoch order
	// under mu and drained by one goroutine at a time outside it, so
	// concurrent flushers cannot deliver epochs out of order. See
	// queueDeltasLocked / deliverQueued in watch.go.
	dmu        sync.Mutex
	deliveryQ  []pendingDelta
	delivering bool
}

// New builds an engine. A window option (WithCountWindow or
// WithTimeWindow) is required; everything else defaults to the paper's
// configuration: ITA algorithm, cosine scoring, stemming and stopword
// removal enabled.
func New(opts ...Option) (*Engine, error) {
	cfg := config{
		algorithm: IncrementalThreshold,
		stemming:  true,
		stopwords: true,
		seed:      1,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.walDir != "" && !cfg.walAttach {
		// A durable engine: creation and recovery share one entry point.
		return openDurable(cfg.walDir, opts)
	}
	if cfg.policy == nil {
		return nil, errors.New("ita: a window option is required (WithCountWindow or WithTimeWindow)")
	}
	if cfg.shardsSet {
		switch {
		case !cfg.algorithmSet || cfg.algorithm == IncrementalThreshold:
			cfg.algorithm = ShardedIncrementalThreshold
		case cfg.algorithm == ShardedIncrementalThreshold:
		default:
			return nil, fmt.Errorf("ita: WithShards requires the ITA algorithm, got %s", cfg.algorithm)
		}
	}
	if cfg.weighter == nil {
		cfg.weighter = defaultWeighter()
	}
	e := &Engine{
		cfg:       cfg,
		inner:     cfg.build(),
		pipeline:  textproc.NewPipeline(textproc.NewDictionary(), cfg.stemming, cfg.stopwords),
		nextDoc:   1,
		nextQuery: 1,
	}
	if cfg.retainText {
		e.texts = newTextRing(cfg.policy)
	}
	e.publishLocked() // no readers yet, so mu is not needed here
	return e, nil
}

// publishedState is one publication boundary's complete read surface:
// the inner engine's wait-free view reader, the retained-text snapshot
// the views' documents resolve against, and frozen scalar state. It is
// immutable once stored; readers load the pointer once and work off a
// consistent boundary.
type publishedState struct {
	seq     uint64          // publication sequence, strictly increasing
	reader  core.ViewReader // per-query published views (see internal/core/view.go)
	texts   *textView       // nil without WithTextRetention
	stats   Stats
	window  int
	queries int
	dict    int
}

// publishLocked makes the current flushed state visible to wait-free
// readers: the inner engine swaps every changed query's frozen view,
// then the facade swaps its single published-state pointer. Must be
// called with e.mu held (except during construction/restore, before the
// engine escapes), after mutations and only at a boundary — never with
// a partial epoch applied. A no-op for inner engines without published
// views.
func (e *Engine) publishLocked() {
	pub, ok := e.inner.(core.ViewPublisher)
	if !ok {
		return
	}
	reader := pub.PublishViews()
	var tv *textView
	if e.texts != nil {
		tv = e.texts.snapshot()
	}
	var seq uint64
	if prev := e.pub.Load(); prev != nil {
		seq = prev.seq
	}
	e.pub.Store(&publishedState{
		seq:     seq + 1,
		reader:  reader,
		texts:   tv,
		stats:   *e.inner.Stats(),
		window:  e.inner.WindowLen(),
		queries: e.inner.Queries(),
		dict:    e.pipeline.Dictionary().Size(),
	})
}

// IngestText analyzes text and processes it as a document arrival at
// the given time, returning the assigned document id. Arrival times
// must be non-decreasing across calls. A document whose analysis yields
// no terms (for example, all stopwords) is still ingested: it occupies
// a window slot, matches nothing, and expires normally — exactly how
// the paper's window semantics treat it.
//
// With WithBatchSize(n), the document is buffered and processed as part
// of the next epoch (when n documents have accumulated, on Flush, or
// before Register/Unregister/Advance/Snapshot/Close); the id is
// assigned immediately, but reads reflect the document only after the
// epoch flushes.
func (e *Engine) IngestText(text string, at time.Time) (DocID, error) {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	id, deltas, err := e.ingestLocked(text, at)
	e.queueDeltasLocked(deltas)
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	// Watch callbacks run outside the lock so they may call back into
	// the engine.
	e.deliverQueued()
	return id, err
}

func (e *Engine) ingestLocked(text string, at time.Time) (DocID, []pendingDelta, error) {
	if at.Before(e.lastAt) {
		return 0, nil, fmt.Errorf("%w: %s < %s", ErrTimeRegression, at, e.lastAt)
	}
	freqs := e.pipeline.TermFreqs(text)
	doc, err := model.NewDocument(e.nextDoc, at, e.cfg.weighter.DocPostings(freqs))
	if err != nil {
		return 0, nil, fmt.Errorf("ita: analyze document: %w", err)
	}
	// Log before apply: once the record is durable the arrival will be
	// replayed on recovery, whether or not this call completes.
	if err := e.walAppendLocked(&wal.Record{
		Kind: wal.KindDoc, Doc: uint64(doc.ID), At: at.UnixNano(), Text: text,
	}); err != nil {
		return 0, nil, err
	}
	if e.cfg.batchSize > 1 {
		// Epoch-batched ingestion: buffer the analyzed document and
		// flush once a full epoch has accumulated.
		e.lastAt = at
		e.nextDoc++
		e.pending = append(e.pending, doc)
		if e.texts != nil {
			e.pendingText = append(e.pendingText, text)
		}
		if len(e.pending) < e.cfg.batchSize {
			return doc.ID, nil, nil
		}
		if err := e.flushLocked(); err != nil {
			return doc.ID, nil, err
		}
		return doc.ID, e.collectDeltas(), nil
	}
	if err := e.inner.Process(doc); err != nil {
		return 0, nil, err
	}
	e.lastAt = at
	e.nextDoc++
	if e.texts != nil {
		e.texts.add(doc.ID, at, text)
	}
	// An unbatched arrival is an epoch of its own.
	if err := e.walBoundaryLocked(); err != nil {
		return doc.ID, e.collectDeltas(), err
	}
	return doc.ID, e.collectDeltas(), nil
}

// epochProcessor is implemented by engines (ITA and the sharded ITA)
// that process a whole batch of arrivals as one epoch; see
// core.EpochProcessor. Engines without it (the Naïve baselines) fall
// back to an event-serial loop inside the flush.
type epochProcessor interface {
	ProcessEpoch(docs []*model.Document) error
}

// IngestBatch analyzes and processes a batch of document arrivals under
// a single engine lock, returning the assigned ids in order. Arrival
// times must be non-decreasing within the batch and not precede earlier
// ingests. The batch is routed through the epoch pipeline: the call's
// documents (together with any WithBatchSize buffer) form one epoch —
// one net index mutation pass and one net maintenance pass per affected
// query — so per-query results after the call are identical to calling
// IngestText in a loop (when documents tie exactly at a query's k-th
// score, either maintenance schedule may report either tied document;
// both are correct top-k answers), while the per-event work — index
// point mutations, shard fan-out barriers, redundant refills — is
// amortized across the batch. This makes IngestBatch the preferred
// ingestion path for high-volume feeds. Watch callbacks observe one
// cumulative delta per query instead of one per document.
func (e *Engine) IngestBatch(items []TimedText) ([]DocID, error) {
	if len(items) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	ids, deltas, err := e.ingestBatchLocked(items)
	e.queueDeltasLocked(deltas)
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	e.deliverQueued()
	return ids, err
}

func (e *Engine) ingestBatchLocked(items []TimedText) ([]DocID, []pendingDelta, error) {
	// Validate and analyze everything up front so a bad item fails the
	// batch before any document is processed.
	last := e.lastAt
	for i, it := range items {
		if it.At.Before(last) {
			return nil, nil, fmt.Errorf("%w: item %d: %s < %s", ErrTimeRegression, i, it.At, last)
		}
		last = it.At
	}
	// Analyze into a local slice first: a bad item must fail the batch
	// before anything reaches the epoch buffer.
	ids := make([]DocID, len(items))
	docs := make([]*model.Document, len(items))
	for i, it := range items {
		doc, err := model.NewDocument(e.nextDoc+model.DocID(i), it.At, e.cfg.weighter.DocPostings(e.pipeline.TermFreqs(it.Text)))
		if err != nil {
			return nil, nil, fmt.Errorf("ita: analyze document %d: %w", i, err)
		}
		docs[i] = doc
		ids[i] = doc.ID
	}
	if e.wal != nil && !e.wal.recovering {
		rec := wal.Record{Kind: wal.KindBatch, Doc: uint64(e.nextDoc), Items: make([]wal.DocEntry, len(items))}
		for i, it := range items {
			rec.Items[i] = wal.DocEntry{At: it.At.UnixNano(), Text: it.Text}
		}
		if err := e.walAppendLocked(&rec); err != nil {
			return nil, nil, err
		}
	}
	e.pending = append(e.pending, docs...)
	if e.texts != nil {
		for _, it := range items {
			e.pendingText = append(e.pendingText, it.Text)
		}
	}
	e.nextDoc += model.DocID(len(items))
	e.lastAt = last
	// Without WithBatchSize the whole call is one epoch; with it, the
	// buffer keeps accumulating until a full epoch is reached. Deltas
	// (and a publication) exist only when an epoch actually flushed —
	// a buffered-only call leaves the readable boundary untouched.
	if e.cfg.batchSize <= 1 || len(e.pending) >= e.cfg.batchSize {
		if err := e.flushLocked(); err != nil {
			return ids, nil, err
		}
		return ids, e.collectDeltas(), nil
	}
	return ids, nil, nil
}

// flushLocked processes the buffered epoch through the inner engine.
// Must be called with e.mu held. On return the buffer is empty; on
// error the buffered documents are discarded (their ids stay consumed).
func (e *Engine) flushLocked() error {
	if len(e.pending) == 0 {
		return nil
	}
	docs, texts := e.pending, e.pendingText
	e.pending, e.pendingText = e.pending[:0], e.pendingText[:0]
	if ep, ok := e.inner.(epochProcessor); ok {
		if err := ep.ProcessEpoch(docs); err != nil {
			return err
		}
	} else {
		for _, doc := range docs {
			if err := e.inner.Process(doc); err != nil {
				return err
			}
		}
	}
	if e.texts != nil {
		for i, doc := range docs {
			e.texts.add(doc.ID, doc.Arrival, texts[i])
		}
	}
	// Every applied epoch is a durable boundary.
	return e.walBoundaryLocked()
}

// flushExplicitLocked flushes the buffered epoch at a point the record
// stream does not dictate — an explicit Flush, a Snapshot, a Checkpoint
// or a Close. The boundary is logged as a KindFlush record first, since
// replaying the document records alone would not reproduce it.
func (e *Engine) flushExplicitLocked() error {
	if len(e.pending) == 0 {
		return nil
	}
	if err := e.walAppendLocked(&walFlushRecord); err != nil {
		return err
	}
	return e.flushLocked()
}

// Flush processes any documents buffered by WithBatchSize as one epoch,
// delivering the epoch's watch deltas. It is a no-op when nothing is
// buffered (in particular, always, without WithBatchSize). Use it to
// bound result staleness on a stream that has gone quiet.
func (e *Engine) Flush() error {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	err := e.flushExplicitLocked()
	e.queueDeltasLocked(e.collectDeltas())
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

// gateWriteLocked rejects mutating operations on an engine that can no
// longer honor them: ErrClosed after Close, ErrReadOnly on a
// replication follower (until Promote). Must be called with e.mu held,
// before any state is touched; the follower's own apply path bypasses
// it by construction (it calls the xxxLocked internals directly).
func (e *Engine) gateWriteLocked() error {
	if e.closed {
		return ErrClosed
	}
	if e.readOnly {
		return ErrReadOnly
	}
	return nil
}

// Close flushes any buffered epoch and releases engine resources — for
// the sharded engine, its shard worker goroutines; for a replicating
// engine, its server or client. The final epoch's watch deltas are
// delivered before the inner engine shuts down, so a callback that
// re-enters the engine (as WatchFunc permits) still finds it live.
// Close is idempotent, and every operation after it returns ErrClosed:
// a Results/IngestText racing Close observes either the live engine or
// the error, never a shut-down inner engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	readOnly := e.readOnly
	var cli *repl.Client
	var srv *repl.Server
	if e.repl != nil {
		cli, srv = e.repl.client, e.repl.server
	}
	e.mu.Unlock()
	// Quiesce replication outside the lock: the follower client's apply
	// calls take e.mu, and the server only reads files. After these
	// return, no replication goroutine touches the engine again.
	if cli != nil {
		cli.Stop()
	}
	if srv != nil {
		srv.Close()
	}
	var err error
	e.mu.Lock()
	if !readOnly {
		// A follower skips the final flush: its buffered epoch belongs to
		// the primary's record stream and must not grow a local boundary
		// the primary never logged.
		err = e.flushExplicitLocked()
		e.queueDeltasLocked(e.collectDeltas())
	}
	e.mu.Unlock()
	e.deliverQueued()
	e.mu.Lock()
	if c, ok := e.inner.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if e.wal != nil && e.wal.log != nil {
		// The final epoch is already on disk (flushLocked logged its
		// boundary); sync once more so even DurabilityOff engines leave a
		// fully flushed log behind on a clean shutdown.
		if serr := e.wal.log.Sync(); err == nil && serr != nil {
			err = serr
		}
		if cerr := e.wal.log.Close(); err == nil {
			err = cerr
		}
	}
	e.mu.Unlock()
	return err
}

// Advance moves the stream clock forward without an arrival, expiring
// documents from time-based windows. Count-based windows are unaffected.
// Any buffered epoch is flushed first: its documents arrived before now.
func (e *Engine) Advance(now time.Time) error {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	deltas, err := e.advanceLocked(now)
	e.queueDeltasLocked(deltas)
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

func (e *Engine) advanceLocked(now time.Time) ([]pendingDelta, error) {
	if now.Before(e.lastAt) {
		return nil, fmt.Errorf("%w: %s < %s", ErrTimeRegression, now, e.lastAt)
	}
	if err := e.walAppendLocked(&wal.Record{Kind: wal.KindAdvance, At: now.UnixNano()}); err != nil {
		return nil, err
	}
	if err := e.flushLocked(); err != nil {
		return nil, err
	}
	e.lastAt = now
	e.inner.ExpireUntil(now)
	deltas := e.collectDeltas()
	if e.texts != nil {
		e.texts.expire(now)
	}
	return deltas, e.walBoundaryLocked()
}

// Register installs a continuous query: the k most similar documents to
// queryText are maintained from now on. Term frequency in the query
// text weights the terms, as in the paper's {white white tower} example.
// Any buffered epoch is flushed first so the initial top-k search sees
// every document ingested before the call.
func (e *Engine) Register(queryText string, k int) (QueryID, error) {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	id, deltas, err := e.registerLocked(queryText, k)
	e.queueDeltasLocked(deltas)
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	e.deliverQueued()
	return id, err
}

func (e *Engine) registerLocked(queryText string, k int) (QueryID, []pendingDelta, error) {
	return e.registerAtLocked(e.nextQuery, queryText, k)
}

// registerAtLocked registers a query under an explicit id. Ordinary
// registrations pass e.nextQuery; the cluster path (RegisterWithID) and
// WAL replay pass ids that may skip ahead of it — a node that owns only
// its hash slice of the global id space consumes the skipped ids via
// AlignRegister. An id behind e.nextQuery is always an error: those ids
// are spent, and during replay a regressing id means a corrupt log.
func (e *Engine) registerAtLocked(id QueryID, queryText string, k int) (QueryID, []pendingDelta, error) {
	if id < e.nextQuery {
		return 0, nil, fmt.Errorf("ita: register id %d already consumed (next is %d)", id, e.nextQuery)
	}
	freqs := e.pipeline.TermFreqs(queryText)
	if len(freqs) == 0 {
		return 0, nil, ErrNoQueryTerms
	}
	terms := e.internedTermsLocked(queryText)
	if terms == nil {
		terms = e.cfg.weighter.QueryTerms(freqs)
	}
	q, err := model.NewQuery(id, k, terms)
	if err != nil {
		return 0, nil, fmt.Errorf("ita: analyze query: %w", err)
	}
	// Log before apply; the record carries the id the apply will assign
	// so recovery can verify replay determinism.
	if err := e.walAppendLocked(&wal.Record{
		Kind: wal.KindRegister, Query: uint64(id), K: k, Text: queryText,
	}); err != nil {
		return 0, nil, err
	}
	if err := e.flushLocked(); err != nil {
		return 0, nil, err
	}
	deltas := e.collectDeltas()
	if err := e.inner.Register(q); err != nil {
		return 0, deltas, err
	}
	e.nextQuery = id + 1
	e.queryText.Store(id, queryText)
	e.internStoreLocked(queryText, q.Terms)
	// Second publication of the op: the flush above published the
	// pre-registration boundary (for the deltas); this one makes the new
	// query's initial result visible to wait-free readers.
	e.publishLocked()
	return id, deltas, e.walBoundaryLocked()
}

// RegisterWithID registers a continuous query under a caller-chosen id,
// which must not be behind the engine's next id (ids at or ahead of it
// are fine; the gap is consumed). It is the cluster building block: a
// node that owns only its placement-hash slice of the global query
// space registers exactly the ids the router assigns it, while
// AlignRegister consumes the others — keeping every node's id sequence,
// dictionary and epoch boundaries byte-identical to a single process
// running the full query set. Single-process callers should use
// Register, which assigns ids densely.
func (e *Engine) RegisterWithID(id QueryID, queryText string, k int) error {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	_, deltas, err := e.registerAtLocked(id, queryText, k)
	e.queueDeltasLocked(deltas)
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

// AlignRegister is the non-owning side of a cluster registration: the
// node does not install query id (another node owns it), but replays
// everything else a registration does to the shared stream state — the
// query text is analyzed so dictionary interning order stays identical
// across nodes (term ids order the score summation, so a diverged
// dictionary diverges result bytes), any buffered epoch is flushed at
// the same stream position the owning node flushes it, and the id is
// consumed. The operation is WAL-logged and replays through recovery
// and replication like any other.
func (e *Engine) AlignRegister(id QueryID, queryText string) error {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	deltas, err := e.alignRegisterLocked(id, queryText)
	e.queueDeltasLocked(deltas)
	if err == nil {
		e.maybeCheckpointLocked()
	}
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

func (e *Engine) alignRegisterLocked(id QueryID, queryText string) ([]pendingDelta, error) {
	if id < e.nextQuery {
		return nil, fmt.Errorf("ita: align register id %d already consumed (next is %d)", id, e.nextQuery)
	}
	// Intern before the flush, exactly where registerAtLocked interns:
	// buffered documents took their term ids at ingest time, so the
	// query text's terms land in the same dictionary order either way.
	if freqs := e.pipeline.TermFreqs(queryText); len(freqs) == 0 {
		return nil, ErrNoQueryTerms
	}
	if err := e.walAppendLocked(&wal.Record{
		Kind: wal.KindAlign, Query: uint64(id), Text: queryText,
	}); err != nil {
		return nil, err
	}
	if err := e.flushLocked(); err != nil {
		return nil, err
	}
	deltas := e.collectDeltas()
	e.nextQuery = id + 1
	e.publishLocked()
	return deltas, e.walBoundaryLocked()
}

// NextQueryID returns the id the next Register call would assign. A
// cluster router reads it at startup to resume the global id sequence
// from recovered nodes.
func (e *Engine) NextQueryID() QueryID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nextQuery
}

type internEntry struct {
	terms []model.QueryTerm
	refs  int
}

// internedTermsLocked returns the canonical shared term vector of a
// query text, nil when no live query uses it. Must be called with e.mu
// held.
func (e *Engine) internedTermsLocked(text string) []model.QueryTerm {
	if ent, ok := e.interned[text]; ok {
		return ent.terms
	}
	return nil
}

// internStoreLocked records one more live query using terms as the
// canonical vector for text. Must be called with e.mu held, after the
// registration has succeeded.
func (e *Engine) internStoreLocked(text string, terms []model.QueryTerm) {
	if e.interned == nil {
		e.interned = make(map[string]*internEntry)
	}
	if ent, ok := e.interned[text]; ok {
		ent.refs++
		return
	}
	e.interned[text] = &internEntry{terms: terms, refs: 1}
}

// internReleaseLocked drops one live reference to a query text's
// interned vector. Must be called with e.mu held.
func (e *Engine) internReleaseLocked(text string) {
	if ent, ok := e.interned[text]; ok {
		if ent.refs--; ent.refs <= 0 {
			delete(e.interned, text)
		}
	}
}

// Unregister removes a query and any watcher on it, reporting whether
// the query existed. Like Register, it flushes any buffered epoch first
// so the buffered documents were maintained while the query was live.
func (e *Engine) Unregister(id QueryID) bool {
	e.mu.Lock()
	if e.gateWriteLocked() != nil {
		// The bool signature cannot carry ErrReadOnly/ErrClosed; a gated
		// engine simply reports the query as not removed.
		e.mu.Unlock()
		return false
	}
	ok := e.unregisterLocked(id)
	e.maybeCheckpointLocked()
	e.mu.Unlock()
	e.deliverQueued()
	return ok
}

func (e *Engine) unregisterLocked(id QueryID) bool {
	// The bool signature cannot carry an error; a flush error is
	// impossible by construction here (facade-assigned ids are unique
	// and arrival times were validated at buffer time), so it is
	// deliberately discarded rather than widening the API.
	//
	// An unknown id is decided before anything is logged, so replay makes
	// the same decision from the same state and no-op unregisters never
	// reach the log.
	if _, known := e.queryText.Load(id); !known {
		_ = e.flushLocked()
		e.queueDeltasLocked(e.collectDeltas())
		return false
	}
	// A WAL append error on a live query is the one case the API cannot
	// express: applying anyway would let recovery lose the unregister
	// while later acknowledged operations survive (acked-state
	// divergence), so the unregister is refused — and since false would
	// otherwise be indistinguishable from "no such query" while the
	// query keeps serving, the log is poisoned so every subsequent
	// mutating operation surfaces the underlying fault loudly.
	if err := e.walAppendLocked(&wal.Record{Kind: wal.KindUnregister, Query: uint64(id)}); err != nil {
		e.wal.log.Poison(err)
		return false
	}
	_ = e.flushLocked()
	e.queueDeltasLocked(e.collectDeltas())
	if text, ok := e.queryText.Load(id); ok {
		e.internReleaseLocked(text.(string))
	}
	e.queryText.Delete(id)
	e.dropWatchLocked(id)
	ok := e.inner.Unregister(id)
	// Make the removal visible to wait-free readers: until this publish,
	// readers still see the query at its last pre-unregister boundary.
	e.publishLocked()
	_ = e.walBoundaryLocked()
	return ok
}

// Results returns the query's current top-k in descending score order.
// It returns nil for an unknown query; a registered query with no
// matching documents returns an empty non-nil slice. With WithBatchSize,
// results reflect flushed epochs only — at most batchSize-1 documents
// behind the last IngestText; call Flush first for read-your-writes.
//
// For the ITA engines (single-threaded and sharded) the read is
// wait-free: it loads the published epoch-boundary view and copies it
// without acquiring the engine lock, so result serving never contends
// with the ingest pipeline. The returned slice is the caller's to keep.
// See "Published views" in the package documentation for the
// consistency model. The Naïve baselines read under the engine lock.
func (e *Engine) Results(id QueryID) []Match {
	if ps := e.pub.Load(); ps != nil {
		f, ok := ps.reader.Result(id)
		if !ok {
			return nil
		}
		return e.matchesPublished(ps, f)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	docs, ok := e.inner.Result(id)
	if !ok {
		return nil
	}
	return e.matchesLocked(docs)
}

// ResultsAll returns the current top-k of every registered query, in
// ascending query id. Like Results it is wait-free for the ITA engines;
// the enumeration is weakly consistent across queries — each query's
// entry is a real epoch-boundary result at least as fresh as the last
// boundary completed before the call, but two entries may come from
// adjacent boundaries when the call races a flush.
func (e *Engine) ResultsAll() []QueryResult {
	var out []QueryResult
	if ps := e.pub.Load(); ps != nil {
		ps.reader.Each(func(id model.QueryID, f *topk.Frozen) {
			out = append(out, QueryResult{Query: id, Matches: e.matchesPublished(ps, f)})
		})
	} else {
		e.mu.Lock()
		e.inner.EachQuery(func(q *model.Query) {
			if docs, ok := e.inner.Result(q.ID); ok {
				out = append(out, QueryResult{Query: q.ID, Matches: e.matchesLocked(docs)})
			}
		})
		e.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// matches copies a frozen view into a caller-owned Match slice,
// resolving retained texts. Runs entirely off-lock.
//
// The per-query slots are live handles, so a read racing a publish can
// obtain a view one boundary newer than ps.texts; a document that
// arrived in that newer epoch then misses ps's snapshot. The fallback
// reloads the freshest published texts, which contain it as soon as the
// racing publish completes its state swap — only a read landing in the
// few instructions between a slot swap and the state swap can still
// transiently resolve that document's text to "". Scores and membership
// are never affected.
func (e *Engine) matchesPublished(ps *publishedState, f *topk.Frozen) []Match {
	out := make([]Match, len(f.Docs))
	var fresh *publishedState
	for i, d := range f.Docs {
		out[i] = Match{Doc: d.Doc, Score: d.Score}
		if ps.texts == nil {
			continue
		}
		text := ps.texts.get(d.Doc)
		if text == "" {
			if fresh == nil {
				fresh = e.pub.Load()
			}
			if fresh != ps && fresh.texts != nil {
				text = fresh.texts.get(d.Doc)
			}
		}
		out[i].Text = text
	}
	return out
}

// matchesLocked is the locked-path equivalent of publishedState.matches
// for inner engines without published views. Must be called with e.mu
// held.
func (e *Engine) matchesLocked(docs []model.ScoredDoc) []Match {
	out := make([]Match, 0, len(docs))
	for _, d := range docs {
		m := Match{Doc: d.Doc, Score: d.Score}
		if e.texts != nil {
			m.Text = e.texts.get(d.Doc)
		}
		out = append(out, m)
	}
	return out
}

// QueryText returns the original text a query was registered with. It
// never acquires the engine lock.
func (e *Engine) QueryText(id QueryID) (string, bool) {
	s, ok := e.queryText.Load(id)
	if !ok {
		return "", false
	}
	return s.(string), true
}

// WindowLen returns the number of currently valid documents in flushed
// epochs (buffered documents are not yet part of the window).
func (e *Engine) WindowLen() int {
	if ps := e.pub.Load(); ps != nil {
		return ps.window
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.WindowLen()
}

// Queries returns the number of registered queries.
func (e *Engine) Queries() int {
	if ps := e.pub.Load(); ps != nil {
		return ps.queries
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.Queries()
}

// Stats returns a snapshot of the engine's operation counters, as of
// the last publication boundary.
func (e *Engine) Stats() Stats {
	if ps := e.pub.Load(); ps != nil {
		return ps.stats
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return *e.inner.Stats()
}

// Algorithm returns the engine's maintenance algorithm.
func (e *Engine) Algorithm() Algorithm { return e.cfg.algorithm }

// MemoryUsage returns a per-component estimate of the inner engine's
// heap footprint (inverted index, threshold trees, query state,
// published views). Unlike Stats it is computed on demand by walking
// structure sizes, so it takes the engine lock; it is a diagnostics
// gauge (the itaserver /stats endpoint), not a hot-path read. Engines
// without per-component accounting (the Naïve baselines) report zero.
func (e *Engine) MemoryUsage() Memory {
	e.mu.Lock()
	defer e.mu.Unlock()
	if mr, ok := e.inner.(core.MemoryReporter); ok {
		return mr.MemoryUsage()
	}
	return Memory{}
}

// DictionarySize returns the number of distinct terms interned as of
// the last publication boundary (terms of buffered, unflushed documents
// are counted once their epoch flushes).
func (e *Engine) DictionarySize() int {
	if ps := e.pub.Load(); ps != nil {
		return ps.dict
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pipeline.Dictionary().Size()
}

// textRing mirrors the window policy for retained document texts, with
// a copy-on-write twist so published views can read it wait-free: the
// live region order[head:] is snapshot by reslicing (entries are never
// mutated in place, and expiry only advances head), and compaction
// copies into a fresh backing array instead of shifting in place, so a
// snapshot taken at any earlier boundary stays valid. Dead entries
// therefore pin their texts until the next compaction — bounded at
// about one window's worth — which is the price of lock-free readers.
type textRing struct {
	policy window.Policy
	order  []retained
	head   int
}

type retained struct {
	id   model.DocID
	at   time.Time
	text string
}

// textView is an immutable snapshot of the retained texts at one
// publication boundary. Entries are in ascending document id (the
// facade assigns ids monotonically and retains in arrival order).
type textView struct {
	items []retained
}

// get resolves a document's retained text; documents outside the
// snapshot (expired, or never retained) resolve to "".
func (v *textView) get(id model.DocID) string {
	i := sort.Search(len(v.items), func(i int) bool { return v.items[i].id >= id })
	if i < len(v.items) && v.items[i].id == id {
		return v.items[i].text
	}
	return ""
}

func newTextRing(p window.Policy) *textRing {
	return &textRing{policy: p}
}

// snapshot publishes the live region. The returned view aliases the
// ring's backing array, which is safe: appends write beyond every
// snapshot's length, expiry only moves head, and compaction reallocates.
func (r *textRing) snapshot() *textView {
	return &textView{items: r.order[r.head:]}
}

func (r *textRing) add(id model.DocID, at time.Time, text string) {
	r.order = append(r.order, retained{id: id, at: at, text: text})
	r.expire(at)
}

func (r *textRing) expire(now time.Time) {
	for r.head < len(r.order) && r.policy.Expired(r.order[r.head].at, now, len(r.order)-r.head) {
		// The entry must stay intact (snapshots may still alias it);
		// only the head index moves.
		r.head++
	}
	if r.head > 64 && r.head*2 > len(r.order) {
		live := make([]retained, len(r.order)-r.head)
		copy(live, r.order[r.head:])
		r.order, r.head = live, 0
	}
}

// get is the writer-side lookup, for code already holding the engine
// lock (snapshots, watch diffs, the Naïve fallback path).
func (r *textRing) get(id model.DocID) string {
	return (&textView{items: r.order[r.head:]}).get(id)
}
