package ita

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/textproc"
	"ita/internal/window"
)

// Identifier and result types of the public API.
type (
	// DocID identifies an ingested document.
	DocID = model.DocID
	// QueryID identifies a registered continuous query.
	QueryID = model.QueryID
	// Stats exposes the engine's cumulative operation counters.
	Stats = core.Stats
)

// Match is one result entry of a continuous query.
type Match struct {
	Doc   DocID
	Score float64
	// Text is the document's original text when the engine was built
	// with WithTextRetention, empty otherwise.
	Text string
}

// Errors returned by the public API.
var (
	// ErrNoQueryTerms means a query text contained no indexable terms
	// (for example, only stopwords).
	ErrNoQueryTerms = errors.New("ita: query has no indexable terms")
	// ErrTimeRegression means a document was ingested with an arrival
	// time before an earlier document's; sliding windows require
	// non-decreasing arrival times.
	ErrTimeRegression = errors.New("ita: arrival time precedes an earlier document")
)

// Engine is a continuous text search server: it analyzes and indexes a
// document stream and maintains the top-k result of every registered
// query at all times. All methods are safe for concurrent use.
type Engine struct {
	mu        sync.Mutex
	cfg       config
	inner     core.Engine
	pipeline  *textproc.Pipeline
	nextDoc   model.DocID
	nextQuery model.QueryID
	lastAt    time.Time
	queryText map[QueryID]string
	texts     *textRing
	watches   map[QueryID]*watchState

	// Epoch buffer (WithBatchSize > 1): analyzed documents awaiting the
	// next flush, with their original texts when retention is on. Ids
	// and the stream clock are assigned at buffer time; the documents
	// reach the inner engine as one epoch at flush time.
	pending     []*model.Document
	pendingText []string

	// Watch-delta delivery queue: deltas are enqueued in epoch order
	// under mu and drained by one goroutine at a time outside it, so
	// concurrent flushers cannot deliver epochs out of order. See
	// queueDeltasLocked / deliverQueued in watch.go.
	dmu        sync.Mutex
	deliveryQ  []pendingDelta
	delivering bool
}

// New builds an engine. A window option (WithCountWindow or
// WithTimeWindow) is required; everything else defaults to the paper's
// configuration: ITA algorithm, cosine scoring, stemming and stopword
// removal enabled.
func New(opts ...Option) (*Engine, error) {
	cfg := config{
		algorithm: IncrementalThreshold,
		stemming:  true,
		stopwords: true,
		seed:      1,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.policy == nil {
		return nil, errors.New("ita: a window option is required (WithCountWindow or WithTimeWindow)")
	}
	if cfg.shardsSet {
		switch {
		case !cfg.algorithmSet || cfg.algorithm == IncrementalThreshold:
			cfg.algorithm = ShardedIncrementalThreshold
		case cfg.algorithm == ShardedIncrementalThreshold:
		default:
			return nil, fmt.Errorf("ita: WithShards requires the ITA algorithm, got %s", cfg.algorithm)
		}
	}
	if cfg.weighter == nil {
		cfg.weighter = defaultWeighter()
	}
	e := &Engine{
		cfg:       cfg,
		inner:     cfg.build(),
		pipeline:  textproc.NewPipeline(textproc.NewDictionary(), cfg.stemming, cfg.stopwords),
		nextDoc:   1,
		nextQuery: 1,
		queryText: make(map[QueryID]string),
	}
	if cfg.retainText {
		e.texts = newTextRing(cfg.policy)
	}
	return e, nil
}

// IngestText analyzes text and processes it as a document arrival at
// the given time, returning the assigned document id. Arrival times
// must be non-decreasing across calls. A document whose analysis yields
// no terms (for example, all stopwords) is still ingested: it occupies
// a window slot, matches nothing, and expires normally — exactly how
// the paper's window semantics treat it.
//
// With WithBatchSize(n), the document is buffered and processed as part
// of the next epoch (when n documents have accumulated, on Flush, or
// before Register/Unregister/Advance/Snapshot/Close); the id is
// assigned immediately, but reads reflect the document only after the
// epoch flushes.
func (e *Engine) IngestText(text string, at time.Time) (DocID, error) {
	e.mu.Lock()
	id, deltas, err := e.ingestLocked(text, at)
	e.queueDeltasLocked(deltas)
	e.mu.Unlock()
	// Watch callbacks run outside the lock so they may call back into
	// the engine.
	e.deliverQueued()
	return id, err
}

func (e *Engine) ingestLocked(text string, at time.Time) (DocID, []pendingDelta, error) {
	if at.Before(e.lastAt) {
		return 0, nil, fmt.Errorf("%w: %s < %s", ErrTimeRegression, at, e.lastAt)
	}
	freqs := e.pipeline.TermFreqs(text)
	doc, err := model.NewDocument(e.nextDoc, at, e.cfg.weighter.DocPostings(freqs))
	if err != nil {
		return 0, nil, fmt.Errorf("ita: analyze document: %w", err)
	}
	if e.cfg.batchSize > 1 {
		// Epoch-batched ingestion: buffer the analyzed document and
		// flush once a full epoch has accumulated.
		e.lastAt = at
		e.nextDoc++
		e.pending = append(e.pending, doc)
		if e.texts != nil {
			e.pendingText = append(e.pendingText, text)
		}
		if len(e.pending) < e.cfg.batchSize {
			return doc.ID, nil, nil
		}
		if err := e.flushLocked(); err != nil {
			return doc.ID, nil, err
		}
		return doc.ID, e.collectDeltas(), nil
	}
	if err := e.inner.Process(doc); err != nil {
		return 0, nil, err
	}
	e.lastAt = at
	e.nextDoc++
	if e.texts != nil {
		e.texts.add(doc.ID, at, text)
	}
	return doc.ID, e.collectDeltas(), nil
}

// TimedText is one element of an IngestBatch call.
type TimedText struct {
	Text string
	At   time.Time
}

// epochProcessor is implemented by engines (ITA and the sharded ITA)
// that process a whole batch of arrivals as one epoch; see
// core.EpochProcessor. Engines without it (the Naïve baselines) fall
// back to an event-serial loop inside the flush.
type epochProcessor interface {
	ProcessEpoch(docs []*model.Document) error
}

// IngestBatch analyzes and processes a batch of document arrivals under
// a single engine lock, returning the assigned ids in order. Arrival
// times must be non-decreasing within the batch and not precede earlier
// ingests. The batch is routed through the epoch pipeline: the call's
// documents (together with any WithBatchSize buffer) form one epoch —
// one net index mutation pass and one net maintenance pass per affected
// query — so per-query results after the call are identical to calling
// IngestText in a loop (when documents tie exactly at a query's k-th
// score, either maintenance schedule may report either tied document;
// both are correct top-k answers), while the per-event work — index
// point mutations, shard fan-out barriers, redundant refills — is
// amortized across the batch. This makes IngestBatch the preferred
// ingestion path for high-volume feeds. Watch callbacks observe one
// cumulative delta per query instead of one per document.
func (e *Engine) IngestBatch(items []TimedText) ([]DocID, error) {
	if len(items) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	ids, deltas, err := e.ingestBatchLocked(items)
	e.queueDeltasLocked(deltas)
	e.mu.Unlock()
	e.deliverQueued()
	return ids, err
}

func (e *Engine) ingestBatchLocked(items []TimedText) ([]DocID, []pendingDelta, error) {
	// Validate and analyze everything up front so a bad item fails the
	// batch before any document is processed.
	last := e.lastAt
	for i, it := range items {
		if it.At.Before(last) {
			return nil, nil, fmt.Errorf("%w: item %d: %s < %s", ErrTimeRegression, i, it.At, last)
		}
		last = it.At
	}
	// Analyze into a local slice first: a bad item must fail the batch
	// before anything reaches the epoch buffer.
	ids := make([]DocID, len(items))
	docs := make([]*model.Document, len(items))
	for i, it := range items {
		doc, err := model.NewDocument(e.nextDoc+model.DocID(i), it.At, e.cfg.weighter.DocPostings(e.pipeline.TermFreqs(it.Text)))
		if err != nil {
			return nil, nil, fmt.Errorf("ita: analyze document %d: %w", i, err)
		}
		docs[i] = doc
		ids[i] = doc.ID
	}
	e.pending = append(e.pending, docs...)
	if e.texts != nil {
		for _, it := range items {
			e.pendingText = append(e.pendingText, it.Text)
		}
	}
	e.nextDoc += model.DocID(len(items))
	e.lastAt = last
	// Without WithBatchSize the whole call is one epoch; with it, the
	// buffer keeps accumulating until a full epoch is reached.
	if e.cfg.batchSize <= 1 || len(e.pending) >= e.cfg.batchSize {
		if err := e.flushLocked(); err != nil {
			return ids, nil, err
		}
	}
	return ids, e.collectDeltas(), nil
}

// flushLocked processes the buffered epoch through the inner engine.
// Must be called with e.mu held. On return the buffer is empty; on
// error the buffered documents are discarded (their ids stay consumed).
func (e *Engine) flushLocked() error {
	if len(e.pending) == 0 {
		return nil
	}
	docs, texts := e.pending, e.pendingText
	e.pending, e.pendingText = e.pending[:0], e.pendingText[:0]
	if ep, ok := e.inner.(epochProcessor); ok {
		if err := ep.ProcessEpoch(docs); err != nil {
			return err
		}
	} else {
		for _, doc := range docs {
			if err := e.inner.Process(doc); err != nil {
				return err
			}
		}
	}
	if e.texts != nil {
		for i, doc := range docs {
			e.texts.add(doc.ID, doc.Arrival, texts[i])
		}
	}
	return nil
}

// Flush processes any documents buffered by WithBatchSize as one epoch,
// delivering the epoch's watch deltas. It is a no-op when nothing is
// buffered (in particular, always, without WithBatchSize). Use it to
// bound result staleness on a stream that has gone quiet.
func (e *Engine) Flush() error {
	e.mu.Lock()
	err := e.flushLocked()
	e.queueDeltasLocked(e.collectDeltas())
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

// Close flushes any buffered epoch and releases engine resources — for
// the sharded engine, its shard worker goroutines. The final epoch's
// watch deltas are delivered before the inner engine shuts down, so a
// callback that re-enters the engine (as WatchFunc permits) still finds
// it live. The engine must not be used afterwards. Close is idempotent
// and a no-op for the single-threaded engines.
func (e *Engine) Close() error {
	e.mu.Lock()
	err := e.flushLocked()
	e.queueDeltasLocked(e.collectDeltas())
	e.mu.Unlock()
	e.deliverQueued()
	e.mu.Lock()
	if c, ok := e.inner.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	e.mu.Unlock()
	return err
}

// Advance moves the stream clock forward without an arrival, expiring
// documents from time-based windows. Count-based windows are unaffected.
// Any buffered epoch is flushed first: its documents arrived before now.
func (e *Engine) Advance(now time.Time) error {
	e.mu.Lock()
	if now.Before(e.lastAt) {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s < %s", ErrTimeRegression, now, e.lastAt)
	}
	if err := e.flushLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.lastAt = now
	e.inner.ExpireUntil(now)
	e.queueDeltasLocked(e.collectDeltas())
	if e.texts != nil {
		e.texts.expire(now)
	}
	e.mu.Unlock()
	e.deliverQueued()
	return nil
}

// Register installs a continuous query: the k most similar documents to
// queryText are maintained from now on. Term frequency in the query
// text weights the terms, as in the paper's {white white tower} example.
// Any buffered epoch is flushed first so the initial top-k search sees
// every document ingested before the call.
func (e *Engine) Register(queryText string, k int) (QueryID, error) {
	e.mu.Lock()
	id, deltas, err := e.registerLocked(queryText, k)
	e.queueDeltasLocked(deltas)
	e.mu.Unlock()
	e.deliverQueued()
	return id, err
}

func (e *Engine) registerLocked(queryText string, k int) (QueryID, []pendingDelta, error) {
	freqs := e.pipeline.TermFreqs(queryText)
	if len(freqs) == 0 {
		return 0, nil, ErrNoQueryTerms
	}
	q, err := model.NewQuery(e.nextQuery, k, e.cfg.weighter.QueryTerms(freqs))
	if err != nil {
		return 0, nil, fmt.Errorf("ita: analyze query: %w", err)
	}
	if err := e.flushLocked(); err != nil {
		return 0, nil, err
	}
	deltas := e.collectDeltas()
	if err := e.inner.Register(q); err != nil {
		return 0, deltas, err
	}
	id := e.nextQuery
	e.nextQuery++
	e.queryText[id] = queryText
	return id, deltas, nil
}

// Unregister removes a query and any watcher on it, reporting whether
// the query existed. Like Register, it flushes any buffered epoch first
// so the buffered documents were maintained while the query was live.
func (e *Engine) Unregister(id QueryID) bool {
	e.mu.Lock()
	// The bool signature cannot carry a flush error; one is impossible
	// by construction here (facade-assigned ids are unique and arrival
	// times were validated at buffer time), so it is deliberately
	// discarded rather than widening the API.
	_ = e.flushLocked()
	e.queueDeltasLocked(e.collectDeltas())
	delete(e.queryText, id)
	delete(e.watches, id)
	ok := e.inner.Unregister(id)
	e.mu.Unlock()
	e.deliverQueued()
	return ok
}

// Results returns the query's current top-k in descending score order.
// It returns nil for an unknown query; a registered query with no
// matching documents returns an empty non-nil slice. With WithBatchSize,
// results reflect flushed epochs only — at most batchSize-1 documents
// behind the last IngestText; call Flush first for read-your-writes.
func (e *Engine) Results(id QueryID) []Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	docs, ok := e.inner.Result(id)
	if !ok {
		return nil
	}
	out := make([]Match, 0, len(docs))
	for _, d := range docs {
		m := Match{Doc: d.Doc, Score: d.Score}
		if e.texts != nil {
			m.Text = e.texts.get(d.Doc)
		}
		out = append(out, m)
	}
	return out
}

// QueryText returns the original text a query was registered with.
func (e *Engine) QueryText(id QueryID) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.queryText[id]
	return s, ok
}

// WindowLen returns the number of currently valid documents in flushed
// epochs (buffered documents are not yet part of the window).
func (e *Engine) WindowLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.WindowLen()
}

// Queries returns the number of registered queries.
func (e *Engine) Queries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.Queries()
}

// Stats returns a snapshot of the engine's operation counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *e.inner.Stats()
}

// Algorithm returns the engine's maintenance algorithm.
func (e *Engine) Algorithm() Algorithm { return e.cfg.algorithm }

// DictionarySize returns the number of distinct terms interned so far.
func (e *Engine) DictionarySize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pipeline.Dictionary().Size()
}

// textRing mirrors the window policy for retained document texts. Dead
// entries accumulate at the front of order as a head index rather than
// by reslicing: order = order[1:] would pin the whole backing array (and
// every expired entry in it) for the lifetime of the stream, so the
// drained prefix is compacted away once it dominates the array, keeping
// memory at O(window) instead of O(stream).
type textRing struct {
	policy window.Policy
	byID   map[model.DocID]string
	order  []retained
	head   int
}

type retained struct {
	id model.DocID
	at time.Time
}

func newTextRing(p window.Policy) *textRing {
	return &textRing{policy: p, byID: make(map[model.DocID]string)}
}

func (r *textRing) add(id model.DocID, at time.Time, text string) {
	r.byID[id] = text
	r.order = append(r.order, retained{id: id, at: at})
	r.expire(at)
}

func (r *textRing) expire(now time.Time) {
	for r.head < len(r.order) && r.policy.Expired(r.order[r.head].at, now, len(r.order)-r.head) {
		delete(r.byID, r.order[r.head].id)
		r.order[r.head] = retained{}
		r.head++
	}
	if r.head > 64 && r.head*2 > len(r.order) {
		n := copy(r.order, r.order[r.head:])
		clear(r.order[n:])
		r.order = r.order[:n]
		r.head = 0
	}
}

func (r *textRing) get(id model.DocID) string { return r.byID[id] }
