package ita

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/textproc"
	"ita/internal/window"
)

// Identifier and result types of the public API.
type (
	// DocID identifies an ingested document.
	DocID = model.DocID
	// QueryID identifies a registered continuous query.
	QueryID = model.QueryID
	// Stats exposes the engine's cumulative operation counters.
	Stats = core.Stats
)

// Match is one result entry of a continuous query.
type Match struct {
	Doc   DocID
	Score float64
	// Text is the document's original text when the engine was built
	// with WithTextRetention, empty otherwise.
	Text string
}

// Errors returned by the public API.
var (
	// ErrNoQueryTerms means a query text contained no indexable terms
	// (for example, only stopwords).
	ErrNoQueryTerms = errors.New("ita: query has no indexable terms")
	// ErrTimeRegression means a document was ingested with an arrival
	// time before an earlier document's; sliding windows require
	// non-decreasing arrival times.
	ErrTimeRegression = errors.New("ita: arrival time precedes an earlier document")
)

// Engine is a continuous text search server: it analyzes and indexes a
// document stream and maintains the top-k result of every registered
// query at all times. All methods are safe for concurrent use.
type Engine struct {
	mu        sync.Mutex
	cfg       config
	inner     core.Engine
	pipeline  *textproc.Pipeline
	nextDoc   model.DocID
	nextQuery model.QueryID
	lastAt    time.Time
	queryText map[QueryID]string
	texts     *textRing
	watches   map[QueryID]*watchState
}

// New builds an engine. A window option (WithCountWindow or
// WithTimeWindow) is required; everything else defaults to the paper's
// configuration: ITA algorithm, cosine scoring, stemming and stopword
// removal enabled.
func New(opts ...Option) (*Engine, error) {
	cfg := config{
		algorithm: IncrementalThreshold,
		stemming:  true,
		stopwords: true,
		seed:      1,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.policy == nil {
		return nil, errors.New("ita: a window option is required (WithCountWindow or WithTimeWindow)")
	}
	if cfg.weighter == nil {
		cfg.weighter = defaultWeighter()
	}
	e := &Engine{
		cfg:       cfg,
		inner:     cfg.build(),
		pipeline:  textproc.NewPipeline(textproc.NewDictionary(), cfg.stemming, cfg.stopwords),
		nextDoc:   1,
		nextQuery: 1,
		queryText: make(map[QueryID]string),
	}
	if cfg.retainText {
		e.texts = newTextRing(cfg.policy)
	}
	return e, nil
}

// IngestText analyzes text and processes it as a document arrival at
// the given time, returning the assigned document id. Arrival times
// must be non-decreasing across calls. A document whose analysis yields
// no terms (for example, all stopwords) is still ingested: it occupies
// a window slot, matches nothing, and expires normally — exactly how
// the paper's window semantics treat it.
func (e *Engine) IngestText(text string, at time.Time) (DocID, error) {
	e.mu.Lock()
	id, deltas, err := e.ingestLocked(text, at)
	e.mu.Unlock()
	// Watch callbacks run outside the lock so they may call back into
	// the engine.
	deliver(deltas)
	return id, err
}

func (e *Engine) ingestLocked(text string, at time.Time) (DocID, []pendingDelta, error) {
	if at.Before(e.lastAt) {
		return 0, nil, fmt.Errorf("%w: %s < %s", ErrTimeRegression, at, e.lastAt)
	}
	freqs := e.pipeline.TermFreqs(text)
	doc, err := model.NewDocument(e.nextDoc, at, e.cfg.weighter.DocPostings(freqs))
	if err != nil {
		return 0, nil, fmt.Errorf("ita: analyze document: %w", err)
	}
	if err := e.inner.Process(doc); err != nil {
		return 0, nil, err
	}
	e.lastAt = at
	e.nextDoc++
	if e.texts != nil {
		e.texts.add(doc.ID, at, text)
	}
	return doc.ID, e.collectDeltas(), nil
}

// Advance moves the stream clock forward without an arrival, expiring
// documents from time-based windows. Count-based windows are unaffected.
func (e *Engine) Advance(now time.Time) error {
	e.mu.Lock()
	if now.Before(e.lastAt) {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s < %s", ErrTimeRegression, now, e.lastAt)
	}
	e.lastAt = now
	e.inner.ExpireUntil(now)
	deltas := e.collectDeltas()
	if e.texts != nil {
		e.texts.expire(now)
	}
	e.mu.Unlock()
	deliver(deltas)
	return nil
}

// Register installs a continuous query: the k most similar documents to
// queryText are maintained from now on. Term frequency in the query
// text weights the terms, as in the paper's {white white tower} example.
func (e *Engine) Register(queryText string, k int) (QueryID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	freqs := e.pipeline.TermFreqs(queryText)
	if len(freqs) == 0 {
		return 0, ErrNoQueryTerms
	}
	q, err := model.NewQuery(e.nextQuery, k, e.cfg.weighter.QueryTerms(freqs))
	if err != nil {
		return 0, fmt.Errorf("ita: analyze query: %w", err)
	}
	if err := e.inner.Register(q); err != nil {
		return 0, err
	}
	id := e.nextQuery
	e.nextQuery++
	e.queryText[id] = queryText
	return id, nil
}

// Unregister removes a query and any watcher on it, reporting whether
// the query existed.
func (e *Engine) Unregister(id QueryID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.queryText, id)
	delete(e.watches, id)
	return e.inner.Unregister(id)
}

// Results returns the query's current top-k in descending score order.
// It returns nil for an unknown query; a registered query with no
// matching documents returns an empty non-nil slice.
func (e *Engine) Results(id QueryID) []Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	docs, ok := e.inner.Result(id)
	if !ok {
		return nil
	}
	out := make([]Match, 0, len(docs))
	for _, d := range docs {
		m := Match{Doc: d.Doc, Score: d.Score}
		if e.texts != nil {
			m.Text = e.texts.get(d.Doc)
		}
		out = append(out, m)
	}
	return out
}

// QueryText returns the original text a query was registered with.
func (e *Engine) QueryText(id QueryID) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.queryText[id]
	return s, ok
}

// WindowLen returns the number of currently valid documents.
func (e *Engine) WindowLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.WindowLen()
}

// Queries returns the number of registered queries.
func (e *Engine) Queries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.Queries()
}

// Stats returns a snapshot of the engine's operation counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *e.inner.Stats()
}

// Algorithm returns the engine's maintenance algorithm.
func (e *Engine) Algorithm() Algorithm { return e.cfg.algorithm }

// DictionarySize returns the number of distinct terms interned so far.
func (e *Engine) DictionarySize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pipeline.Dictionary().Size()
}

// textRing mirrors the window policy for retained document texts.
type textRing struct {
	policy window.Policy
	byID   map[model.DocID]string
	order  []retained
}

type retained struct {
	id model.DocID
	at time.Time
}

func newTextRing(p window.Policy) *textRing {
	return &textRing{policy: p, byID: make(map[model.DocID]string)}
}

func (r *textRing) add(id model.DocID, at time.Time, text string) {
	r.byID[id] = text
	r.order = append(r.order, retained{id: id, at: at})
	r.expire(at)
}

func (r *textRing) expire(now time.Time) {
	for len(r.order) > 0 && r.policy.Expired(r.order[0].at, now, len(r.order)) {
		delete(r.byID, r.order[0].id)
		r.order = r.order[1:]
	}
}

func (r *textRing) get(id model.DocID) string { return r.byID[id] }
