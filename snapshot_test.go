package ita

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

func snapshotRoundTrip(t *testing.T, e *Engine) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return restored
}

func sameResults(t *testing.T, a, b *Engine, q QueryID) {
	t.Helper()
	ra, rb := a.Results(q), b.Results(q)
	if len(ra) != len(rb) {
		t.Fatalf("restored results differ: %v vs %v", ra, rb)
	}
	for i := range ra {
		if ra[i].Doc != rb[i].Doc || ra[i].Score != rb[i].Score || ra[i].Text != rb[i].Text {
			t.Fatalf("restored result[%d] = %+v, want %+v", i, rb[i], ra[i])
		}
	}
}

func TestSnapshotRoundTripPreservesResults(t *testing.T) {
	e := newEngine(t, WithCountWindow(20), WithTextRetention())
	q1, err := e.Register("crude oil refinery", 3)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Register("interest rates inflation", 2)
	if err != nil {
		t.Fatal(err)
	}
	feed := NewNewsFeed(11)
	for i := 0; i < 40; i++ {
		_, text := feed.Mixed()
		if _, err := e.IngestText(text, at(i*10)); err != nil {
			t.Fatal(err)
		}
	}

	r := snapshotRoundTrip(t, e)
	sameResults(t, e, r, q1)
	sameResults(t, e, r, q2)
	if r.WindowLen() != e.WindowLen() {
		t.Fatalf("window %d vs %d", r.WindowLen(), e.WindowLen())
	}
	if r.DictionarySize() != e.DictionarySize() {
		t.Fatalf("dictionary %d vs %d", r.DictionarySize(), e.DictionarySize())
	}
	if txt, ok := r.QueryText(q1); !ok || txt != "crude oil refinery" {
		t.Fatalf("query text = %q,%v", txt, ok)
	}

	// Both engines must evolve identically after the snapshot point.
	for i := 40; i < 60; i++ {
		_, text := feed.Mixed()
		if _, err := e.IngestText(text, at(i*10)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.IngestText(text, at(i*10)); err != nil {
			t.Fatal(err)
		}
		sameResults(t, e, r, q1)
		sameResults(t, e, r, q2)
	}
}

func TestSnapshotPreservesDocIDSequence(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	id1, err := e.IngestText("first document here", at(0))
	if err != nil {
		t.Fatal(err)
	}
	r := snapshotRoundTrip(t, e)
	id2a, err := e.IngestText("second document here", at(10))
	if err != nil {
		t.Fatal(err)
	}
	id2b, err := r.IngestText("second document here", at(10))
	if err != nil {
		t.Fatal(err)
	}
	if id2a != id2b || id2b != id1+1 {
		t.Fatalf("doc id sequence diverged: %d vs %d", id2a, id2b)
	}
}

func TestSnapshotTimeWindow(t *testing.T) {
	e := newEngine(t, WithTimeWindow(200*time.Millisecond))
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine farm", at(0)); err != nil {
		t.Fatal(err)
	}
	r := snapshotRoundTrip(t, e)
	sameResults(t, e, r, q)
	// The restored span policy must keep expiring on the clock.
	if err := r.Advance(at(300)); err != nil {
		t.Fatal(err)
	}
	if got := r.Results(q); len(got) != 0 {
		t.Fatalf("restored time window did not expire: %+v", got)
	}
}

func TestSnapshotOkapiAndFlags(t *testing.T) {
	e := newEngine(t, WithCountWindow(10), WithOkapiScoring(25), WithoutStemming())
	q, err := e.Register("turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("turbine turbine spinning", at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("turbines spinning", at(5)); err != nil {
		t.Fatal(err)
	}
	r := snapshotRoundTrip(t, e)
	sameResults(t, e, r, q)
	// Stemming stayed off: "turbines" must not match after restore
	// either, which sameResults already proved (1 match, not 2).
	if got := r.Results(q); len(got) != 1 {
		t.Fatalf("results = %+v", got)
	}
}

// TestSnapshotRoundTripAllOptions round-trips every persistable
// configuration option — algorithm, window, scoring, analysis flags,
// text retention, seed, shard count and epoch batch size — and checks
// each survives into the restored engine's configuration and behavior.
func TestSnapshotRoundTripAllOptions(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"defaults", []Option{WithCountWindow(8)}},
		{"time_window", []Option{WithTimeWindow(400 * time.Millisecond)}},
		{"batch", []Option{WithCountWindow(8), WithBatchSize(4)}},
		{"sharded_batch", []Option{WithCountWindow(8), WithShards(3), WithBatchSize(16)}},
		{"kitchen_sink", []Option{
			WithCountWindow(8), WithShards(2), WithBatchSize(5),
			WithOkapiScoring(30), WithoutStemming(), WithoutStopwords(),
			WithTextRetention(), WithSeed(99),
		}},
		{"naive", []Option{WithCountWindow(8), WithAlgorithm(NaiveKmax), WithBatchSize(3)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, tc.opts...)
			defer e.Close()
			q, err := e.Register("crude oil market", 3)
			if err != nil {
				t.Fatal(err)
			}
			for i, text := range feedTexts(13) { // 13: leaves a partial epoch buffered
				if _, err := e.IngestText(text, at(i*10)); err != nil {
					t.Fatal(err)
				}
			}
			r := snapshotRoundTrip(t, e)
			defer r.Close()

			// The full configuration must survive.
			if r.cfg.algorithm != e.cfg.algorithm ||
				r.cfg.batchSize != e.cfg.batchSize ||
				r.cfg.shards != e.cfg.shards ||
				r.cfg.stemming != e.cfg.stemming ||
				r.cfg.stopwords != e.cfg.stopwords ||
				r.cfg.retainText != e.cfg.retainText ||
				r.cfg.seed != e.cfg.seed ||
				r.cfg.policy.String() != e.cfg.policy.String() {
				t.Fatalf("restored config %+v, want %+v", r.cfg, e.cfg)
			}
			// Snapshot flushed the partial epoch, so the snapshotting
			// engine and the restored one agree immediately. (The
			// restored engine replays only the surviving window, not the
			// full stream history, so inside an exact-score tie group at
			// the k-th rank it may retain a different — equally correct —
			// member; sameTopK is exactly that guarantee.)
			if err := sameTopK(r.Results(q), e.Results(q)); err != nil {
				t.Fatalf("restored results: %v", err)
			}
			if r.WindowLen() != e.WindowLen() {
				t.Fatalf("window %d vs %d", r.WindowLen(), e.WindowLen())
			}
			// ...and keep agreeing while the restored engine continues
			// batching with the persisted epoch size.
			for i := 13; i < 29; i++ {
				text := fmt.Sprintf("crude market report %d", i)
				if _, err := e.IngestText(text, at(i*10)); err != nil {
					t.Fatal(err)
				}
				if _, err := r.IngestText(text, at(i*10)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := r.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := sameTopK(r.Results(q), e.Results(q)); err != nil {
				t.Fatalf("post-restore evolution: %v", err)
			}
		})
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSnapshotNaiveEngine(t *testing.T) {
	e := newEngine(t, WithCountWindow(10), WithAlgorithm(NaiveKmax))
	q, err := e.Register("pipeline exports", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("gas pipeline exports grew", at(0)); err != nil {
		t.Fatal(err)
	}
	r := snapshotRoundTrip(t, e)
	if r.Algorithm() != NaiveKmax {
		t.Fatalf("algorithm = %v", r.Algorithm())
	}
	sameResults(t, e, r, q)
}

// TestMidStreamSnapshotWithActiveReaders snapshots a sharded, batched
// engine mid-stream — readers hammering the published views the whole
// time, a partial epoch buffered at the moment of the snapshot — then
// restores and asserts that (a) the restored engine's published views
// are equivalent to the original's at the snapshot boundary, and
// (b) watchers attached to both engines pick up identically: feeding the
// same subsequent epochs to both produces the same delta stream.
func TestMidStreamSnapshotWithActiveReaders(t *testing.T) {
	e := newEngine(t, WithCountWindow(9), WithShards(2), WithBatchSize(4), WithTextRetention())
	defer e.Close()
	queries := []string{"crude oil market", "solar turbine grid", "tanker export"}
	var qids []QueryID
	for _, q := range queries {
		id, err := e.Register(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, id)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := qids[(i+r)%len(qids)]
				res := e.Results(id)
				for j := 1; j < len(res); j++ {
					if res[j].Score > res[j-1].Score {
						t.Errorf("unsorted published result for query %d: %v", id, res)
						return
					}
				}
			}
		}(r)
	}

	texts := feedTexts(60)
	for i := 0; i < 42; i++ { // 42 % 4 != 0: a partial epoch stays buffered
		if _, err := e.IngestText(texts[i], at(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// (a) Published views agree at the snapshot boundary, for single
	// reads and for the full enumeration.
	ra, rb := e.ResultsAll(), r.ResultsAll()
	if len(ra) != len(rb) {
		t.Fatalf("ResultsAll sizes diverge: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Query != rb[i].Query {
			t.Fatalf("ResultsAll order diverges: %v vs %v", ra[i].Query, rb[i].Query)
		}
		if err := sameTopK(rb[i].Matches, ra[i].Matches); err != nil {
			t.Fatalf("restored views diverge for query %d: %v", ra[i].Query, err)
		}
	}

	// (b) Watch deltas pick up identically on both engines: a watcher
	// replaying its deltas on top of its attach-time result must
	// reconstruct score-equivalent boundary states on both engines at
	// every subsequent epoch boundary. (Raw delta streams may legally
	// differ in the documents of a k-th-score tie group — both engines
	// report a correct top-k — so the comparison is by reconstructed
	// result, not by delta bytes.)
	type mirror map[DocID]float64
	deltas := 0
	attach := func(eng *Engine) map[QueryID]mirror {
		mirrors := make(map[QueryID]mirror, len(qids))
		for _, id := range qids {
			id := id
			m := mirror{}
			for _, match := range eng.Results(id) {
				m[match.Doc] = match.Score
			}
			mirrors[id] = m
			if err := eng.Watch(id, func(d Delta) {
				deltas++
				for _, doc := range d.Exited {
					delete(m, doc)
				}
				for _, ent := range d.Entered {
					m[ent.Doc] = ent.Score
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		return mirrors
	}
	scores := func(m mirror) []float64 {
		out := make([]float64, 0, len(m))
		for _, s := range m {
			out = append(out, s)
		}
		sort.Float64s(out)
		return out
	}
	mirA, mirB := attach(e), attach(r)
	checkBoundary := func(i int) {
		t.Helper()
		for _, id := range qids {
			if err := sameTopK(r.Results(id), e.Results(id)); err != nil {
				t.Fatalf("doc %d: published views diverge for query %d: %v", i, id, err)
			}
			if !reflect.DeepEqual(scores(mirA[id]), scores(mirB[id])) {
				t.Fatalf("doc %d: delta-reconstructed results diverge for query %d:\noriginal %v\nrestored %v",
					i, id, scores(mirA[id]), scores(mirB[id]))
			}
			// Each mirror must also agree with its own engine's published
			// view — the delta stream and the read path tell one story.
			want := mirror{}
			for _, match := range e.Results(id) {
				want[match.Doc] = match.Score
			}
			if !reflect.DeepEqual(mirA[id], want) {
				t.Fatalf("doc %d: original watcher mirror %v diverged from published view %v", i, mirA[id], want)
			}
		}
	}
	for i := 42; i < 60; i++ {
		ts := at(i * 10)
		if _, err := e.IngestText(texts[i], ts); err != nil {
			t.Fatal(err)
		}
		if _, err := r.IngestText(texts[i], ts); err != nil {
			t.Fatal(err)
		}
		if (i-42)%4 == 3 { // both engines just completed an epoch
			checkBoundary(i)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkBoundary(60)
	if deltas == 0 {
		t.Fatal("tail epochs produced no deltas; test stream too weak")
	}
}
