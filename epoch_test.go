package ita

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBatchSizeValidation covers the option's input checking.
func TestBatchSizeValidation(t *testing.T) {
	if _, err := New(WithCountWindow(5), WithBatchSize(0)); err == nil {
		t.Fatal("WithBatchSize(0) accepted")
	}
	if _, err := New(WithCountWindow(5), WithBatchSize(-3)); err == nil {
		t.Fatal("WithBatchSize(-3) accepted")
	}
	e := newEngine(t, WithCountWindow(5), WithBatchSize(1))
	if _, err := e.IngestText("plain unbatched path", at(0)); err != nil {
		t.Fatal(err)
	}
	if e.WindowLen() != 1 {
		t.Fatalf("WindowLen = %d, want 1 (batch size 1 must not buffer)", e.WindowLen())
	}
}

// TestBatchBufferingAndFlush checks the core WithBatchSize semantics:
// reads reflect flushed epochs only, the buffer auto-flushes at the
// epoch size, and Flush bounds staleness on a quiet stream.
func TestBatchBufferingAndFlush(t *testing.T) {
	e := newEngine(t, WithCountWindow(10), WithBatchSize(4))
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := e.IngestText("solar turbine output", at(0))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.IngestText("solar panel farm", at(10))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1+1 {
		t.Fatalf("buffered ingest ids %d, %d: want consecutive", id1, id2)
	}
	// Nothing flushed yet: reads are allowed to be stale.
	if got := e.WindowLen(); got != 0 {
		t.Fatalf("WindowLen = %d before flush, want 0", got)
	}
	if got := e.Results(q); len(got) != 0 {
		t.Fatalf("Results = %v before flush, want empty", got)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.WindowLen(); got != 2 {
		t.Fatalf("WindowLen = %d after Flush, want 2", got)
	}
	if got := e.Results(q); len(got) == 0 || got[0].Doc != id1 {
		t.Fatalf("Results after Flush = %v, want doc %d first", got, id1)
	}
	// Flush with an empty buffer is a no-op.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Auto-flush on the 4th buffered document.
	for i := 0; i < 3; i++ {
		if _, err := e.IngestText("unrelated filler text", at(20+i)); err != nil {
			t.Fatal(err)
		}
		if got := e.WindowLen(); got != 2 {
			t.Fatalf("WindowLen = %d with %d buffered, want 2", got, i+1)
		}
	}
	if _, err := e.IngestText("more filler arrives", at(30)); err != nil {
		t.Fatal(err)
	}
	if got := e.WindowLen(); got != 6 {
		t.Fatalf("WindowLen = %d after auto-flush, want 6", got)
	}
	if got := e.Stats().Epochs; got == 0 {
		t.Fatal("auto-flush did not take the epoch path")
	}
}

// TestBatchFlushOnBarrierOps checks that Register, Advance, Snapshot and
// Close apply the buffered epoch before acting.
func TestBatchFlushOnBarrierOps(t *testing.T) {
	t.Run("register", func(t *testing.T) {
		e := newEngine(t, WithCountWindow(10), WithBatchSize(8))
		if _, err := e.IngestText("solar turbine output", at(0)); err != nil {
			t.Fatal(err)
		}
		q, err := e.Register("solar turbine", 2)
		if err != nil {
			t.Fatal(err)
		}
		// The initial search must have seen the buffered document.
		if got := e.Results(q); len(got) != 1 {
			t.Fatalf("Results = %v, want the pre-registration document", got)
		}
	})
	t.Run("advance", func(t *testing.T) {
		e := newEngine(t, WithTimeWindow(50*time.Millisecond), WithBatchSize(8))
		if _, err := e.IngestText("a breaking story", at(0)); err != nil {
			t.Fatal(err)
		}
		if err := e.Advance(at(100)); err != nil {
			t.Fatal(err)
		}
		// Flushed by Advance, then immediately expired by the span.
		if got := e.WindowLen(); got != 0 {
			t.Fatalf("WindowLen = %d, want 0", got)
		}
		if got := e.Stats().Arrivals; got != 1 {
			t.Fatalf("Arrivals = %d, want 1 (buffer must flush before expiry)", got)
		}
	})
	t.Run("unregister", func(t *testing.T) {
		e := newEngine(t, WithCountWindow(10), WithBatchSize(8))
		q, err := e.Register("solar turbine", 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.IngestText("solar turbine output", at(0)); err != nil {
			t.Fatal(err)
		}
		if !e.Unregister(q) {
			t.Fatal("Unregister reported unknown query")
		}
		if got := e.WindowLen(); got != 1 {
			t.Fatalf("WindowLen = %d, want 1 (buffer must flush before unregister)", got)
		}
	})
	t.Run("close", func(t *testing.T) {
		e := newEngine(t, WithCountWindow(10), WithBatchSize(8))
		q, err := e.Register("solar turbine", 1)
		if err != nil {
			t.Fatal(err)
		}
		var deltas int
		if err := e.Watch(q, func(Delta) { deltas++ }); err != nil {
			t.Fatal(err)
		}
		if _, err := e.IngestText("solar turbine output", at(0)); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if deltas != 1 {
			t.Fatalf("Close delivered %d deltas, want 1 (final epoch)", deltas)
		}
	})
}

// TestBatchGridMatchesSerialFacade drives every epoch size × shard
// count combination through an identical text stream and compares
// results at every epoch boundary against the unbatched single-threaded
// facade, under the epoch pipeline's guarantee (sameTopK).
func TestBatchGridMatchesSerialFacade(t *testing.T) {
	texts := feedTexts(160)
	queries := []string{"crude oil", "tanker export market", "refinery barrel price", "oil price"}

	serial := newEngine(t, WithCountWindow(12))
	for _, q := range queries {
		if _, err := serial.Register(q, 3); err != nil {
			t.Fatal(err)
		}
	}
	type boundary struct {
		step    int
		results [][]Match
	}
	// Record the serial engine's results at every step so any epoch
	// boundary can be compared.
	var steps []boundary
	for i, text := range texts {
		if _, err := serial.IngestText(text, at(i*10)); err != nil {
			t.Fatal(err)
		}
		b := boundary{step: i}
		for qid := QueryID(1); qid <= QueryID(len(queries)); qid++ {
			b.results = append(b.results, serial.Results(qid))
		}
		steps = append(steps, b)
	}

	for _, B := range []int{1, 4, 64} {
		for _, S := range []int{0, 1, 2, 8} { // 0 = unsharded engine
			B, S := B, S
			t.Run(fmt.Sprintf("b%d_s%d", B, S), func(t *testing.T) {
				opts := []Option{WithCountWindow(12)}
				if B > 1 {
					opts = append(opts, WithBatchSize(B))
				}
				if S > 0 {
					opts = append(opts, WithShards(S))
				}
				e := newEngine(t, opts...)
				defer e.Close()
				for _, q := range queries {
					if _, err := e.Register(q, 3); err != nil {
						t.Fatal(err)
					}
				}
				for i, text := range texts {
					if _, err := e.IngestText(text, at(i*10)); err != nil {
						t.Fatal(err)
					}
					if (i+1)%B != 0 {
						continue // mid-epoch: results are allowed to lag
					}
					for qi := range queries {
						got := e.Results(QueryID(qi + 1))
						want := steps[i].results[qi]
						if err := sameTopK(got, want); err != nil {
							t.Fatalf("epoch boundary at step %d, query %d: %v", i, qi+1, err)
						}
					}
				}
				// Drain the tail and compare the final state too.
				if err := e.Flush(); err != nil {
					t.Fatal(err)
				}
				last := steps[len(steps)-1]
				for qi := range queries {
					if err := sameTopK(e.Results(QueryID(qi+1)), last.results[qi]); err != nil {
						t.Fatalf("final state, query %d: %v", qi+1, err)
					}
				}
			})
		}
	}
}

// TestConcurrentFlushDeltaOrder drives an ingest goroutine against a
// background Flush goroutine (the itaserver -flush ticker pattern) and
// checks the cross-epoch delivery guarantee: a watcher replaying its
// deltas in delivery order must always see a consistent top-k mirror —
// every Exited doc present, every Entered doc absent. Out-of-order
// epoch delivery breaks this immediately. Run under -race in CI.
func TestConcurrentFlushDeltaOrder(t *testing.T) {
	e := newEngine(t, WithCountWindow(3), WithBatchSize(4))
	defer e.Close()
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	mirror := map[DocID]bool{}
	var violation error
	if err := e.Watch(q, func(d Delta) {
		// Callbacks are serialized by the delivery drainer, so the
		// mirror needs no lock.
		for _, doc := range d.Exited {
			if !mirror[doc] {
				violation = fmt.Errorf("doc %d exited but was never entered", doc)
			}
			delete(mirror, doc)
		}
		for _, m := range d.Entered {
			if mirror[m.Doc] {
				violation = fmt.Errorf("doc %d entered twice", m.Doc)
			}
			mirror[m.Doc] = true
		}
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := e.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	texts := []string{
		"solar turbine output rose",
		"markets were calm today",
		"giant solar turbine unveiled",
		"a quiet day in parliament",
	}
	for i := 0; i < 400; i++ {
		if _, err := e.IngestText(texts[i%len(texts)], at(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	flusher.Wait()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if violation != nil {
		t.Fatal(violation)
	}
	// The mirror must now equal the engine's current result.
	cur := map[DocID]bool{}
	for _, m := range e.Results(q) {
		cur[m.Doc] = true
	}
	if len(cur) != len(mirror) {
		t.Fatalf("mirror %v diverged from results %v", mirror, cur)
	}
	for doc := range cur {
		if !mirror[doc] {
			t.Fatalf("mirror %v missing doc %d from results %v", mirror, doc, cur)
		}
	}
}

// TestBatchWatchCoalescing checks the per-epoch delivery guarantee: a
// document that enters and leaves the top-k within one epoch produces
// no notification, and a burst produces one net delta per query.
func TestBatchWatchCoalescing(t *testing.T) {
	e := newEngine(t, WithCountWindow(2), WithBatchSize(4))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	// One epoch: a match arrives, then two unrelated documents push it
	// out of the 2-document window — all inside the same batch.
	if _, err := e.IngestText("solar turbine output rose", at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("markets were calm", at(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a quiet day in parliament", at(20)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("transient in-epoch match produced deltas: %+v", got)
	}

	// A burst whose net effect is one new top document: exactly one
	// delta with the net change, not one per arrival.
	if _, err := e.IngestText("solar turbine blades spin", at(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("giant solar turbine unveiled today", at(40)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("burst produced %d deltas, want 1: %+v", len(got), got)
	}
	if len(got[0].Entered) != 1 {
		t.Fatalf("net delta entered %v, want exactly the surviving top document", got[0].Entered)
	}
}
