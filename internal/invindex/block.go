package invindex

import (
	"encoding/binary"
	"math"
	"math/bits"

	"ita/internal/model"
)

// Blocked posting storage: a list is a sequence of flat fixed-capacity
// blocks, each holding its entries bit-packed instead of as raw 16-byte
// EntryKeys. Entries inside a block stay in list order (descending
// weight, ties by ascending doc id), so the block sequence concatenates
// to exactly the entry sequence of the slice layout — every iterator,
// seek and predecessor observable is identical; only the bytes behind
// them shrink.
//
// Per block the codec stores:
//
//   - doc ids frame-of-reference coded against the block's minimum doc
//     id at a fixed per-block bit width (doc ids are not monotone in
//     list order — the list is weight-sorted — so FOR, not deltas);
//   - weights either frame-of-reference coded over their order-
//     preserving "sortable bits" (lossless for every float64, so the
//     differential twin can demand byte-identical scores), or through a
//     per-block dictionary of the distinct weight values plus a small
//     per-entry index. Real term lists are full of weight ties — cosine
//     impacts are f/√Σf² over small integer frequencies — which makes
//     the dictionary dramatically smaller on natural workloads; the
//     encoder picks whichever scheme is smaller for the block at hand.
//
// Both schemes give O(1) random access to entry i, which keeps seeks,
// predecessor queries and the iterator's cached-key decode cheap.
const (
	// blockTarget is the fill used when a list is (re)built by a merge
	// rebuild and when a full block splits; blockMax is the occupancy at
	// which a block splits. Matching the slice layout's chunk geometry
	// (128/256) keeps mutation amortization behavior aligned.
	blockTarget = 128
	blockMax    = 256

	// blockPad is appended to every data buffer so getbits/putbits may
	// read and write whole unaligned uint64 words near the end.
	blockPad = 16

	weightFOR  = 0
	weightDict = 1
)

// block is one flat posting block plus the summary metadata probe and
// seek paths use to position without decoding: the last (lowest-impact)
// entry keys the block directory's binary search, and MaxW/MinW bound
// the weights inside so traversals know when a whole block cannot beat
// a threshold.
//
// A block is either packed (data holds the bit-packed areas, raw is
// nil) or decoded (raw holds plain EntryKeys, data is nil). Point
// mutations decode their target block once and then splice the raw
// slice with memmoves — the same cost profile as the slice layout —
// instead of paying a full decode+re-encode per mutation; the next
// merge rebuild of the list re-encodes everything packed. Batch-built
// lists therefore stay fully compressed, while point-update churn
// concentrates in a few transiently decoded blocks.
type block struct {
	last   EntryKey   // lowest-impact entry (directory key; MinW == last.W)
	maxW   float64    // highest weight in the block (its first entry)
	minDoc uint64     // doc-id FOR base
	baseW  uint64     // weight FOR base (sortable bits; weightFOR only)
	data   []byte     // packed: [dict floats][packed doc ids][packed weights][pad]
	raw    []EntryKey // decoded form; nil while packed
	count  uint16
	ndict  uint16 // distinct weights (weightDict only)
	docBit uint8  // per-entry doc-id width
	wBit   uint8  // per-entry weight width (FOR delta or dict index)
	scheme uint8
}

// rawBlock wraps an already-decoded, list-ordered, non-empty entry
// slice as a decoded block, taking ownership of es.
func rawBlock(es []EntryKey) block {
	return block{
		last:  es[len(es)-1],
		maxW:  es[0].W,
		count: uint16(len(es)),
		raw:   es,
	}
}

// decode materializes the block in its decoded form, releasing the
// packed bytes. No-op when already decoded. The slack keeps the first
// few subsequent inserts from regrowing the slice.
func (b *block) decode() {
	if b.raw != nil {
		return
	}
	b.raw = b.appendTo(make([]EntryKey, 0, int(b.count)+8))
	b.data = nil
}

// refresh re-derives the summary metadata of a decoded block after a
// splice.
func (b *block) refresh() {
	b.count = uint16(len(b.raw))
	b.last = b.raw[len(b.raw)-1]
	b.maxW = b.raw[0].W
}

// sortableW maps a float64 to bits whose unsigned order matches the
// float order (negatives reversed, -0 before +0). FOR over these bits
// is a lossless weight encoding with the subtraction well defined.
func sortableW(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// unsortableW inverts sortableW.
func unsortableW(u uint64) float64 {
	if u>>63 != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// getbits extracts w bits at bit offset off. The buffer must carry
// blockPad trailing bytes so the two word reads stay in bounds.
func getbits(b []byte, off uint, w uint8) uint64 {
	if w == 0 {
		return 0
	}
	i := off >> 3
	rem := off & 7
	x := binary.LittleEndian.Uint64(b[i:]) >> rem
	if rem+uint(w) > 64 {
		x |= binary.LittleEndian.Uint64(b[i+8:]) << (64 - rem)
	}
	if w == 64 {
		return x
	}
	return x & (1<<w - 1)
}

// putbits writes the low w bits of v at bit offset off into a
// zero-initialized buffer (it ORs, it does not clear).
func putbits(b []byte, off uint, w uint8, v uint64) {
	if w == 0 {
		return
	}
	i := off >> 3
	rem := off & 7
	x := binary.LittleEndian.Uint64(b[i:])
	binary.LittleEndian.PutUint64(b[i:], x|v<<rem)
	if rem+uint(w) > 64 {
		y := binary.LittleEndian.Uint64(b[i+8:])
		binary.LittleEndian.PutUint64(b[i+8:], y|v>>(64-rem))
	}
}

// encodeBlock packs es (non-empty, in list order) into one block.
func encodeBlock(es []EntryKey) block {
	n := len(es)
	b := block{
		last:  es[n-1],
		maxW:  es[0].W,
		count: uint16(n),
	}

	minDoc, maxDoc := es[0].Doc, es[0].Doc
	ndict := 1
	for i := 1; i < n; i++ {
		if es[i].Doc < minDoc {
			minDoc = es[i].Doc
		} else if es[i].Doc > maxDoc {
			maxDoc = es[i].Doc
		}
		if es[i].W != es[i-1].W {
			ndict++
		}
	}
	b.minDoc = uint64(minDoc)
	b.docBit = uint8(bits.Len64(uint64(maxDoc) - uint64(minDoc)))

	// Weights descend in list order, so their sortable bits descend too:
	// the FOR base is the last entry's bits and the span the first's.
	hiW, loW := sortableW(es[0].W), sortableW(es[n-1].W)
	forBit := uint8(bits.Len64(hiW - loW))
	forBytes := (n*int(forBit) + 7) / 8
	idxBit := uint8(bits.Len64(uint64(ndict - 1)))
	dictBytes := ndict*8 + (n*int(idxBit)+7)/8
	dictOff := 0
	if dictBytes < forBytes {
		b.scheme = weightDict
		b.ndict = uint16(ndict)
		b.wBit = idxBit
		dictOff = ndict * 8
	} else {
		b.scheme = weightFOR
		b.baseW = loW
		b.wBit = forBit
	}

	docBytes := (n*int(b.docBit) + 7) / 8
	wBytes := (n*int(b.wBit) + 7) / 8
	b.data = make([]byte, dictOff+docBytes+wBytes+blockPad)

	if b.scheme == weightDict {
		di := 0
		for i := 0; i < n; i++ {
			if i == 0 || es[i].W != es[i-1].W {
				binary.LittleEndian.PutUint64(b.data[di*8:], math.Float64bits(es[i].W))
				di++
			}
		}
	}
	docOff := uint(dictOff) * 8
	wOff := uint(dictOff+docBytes) * 8
	di := -1
	for i, e := range es {
		putbits(b.data, docOff+uint(i)*uint(b.docBit), b.docBit, uint64(e.Doc)-b.minDoc)
		if b.scheme == weightFOR {
			putbits(b.data, wOff+uint(i)*uint(b.wBit), b.wBit, sortableW(e.W)-b.baseW)
		} else {
			if i == 0 || e.W != es[i-1].W {
				di++
			}
			putbits(b.data, wOff+uint(i)*uint(b.wBit), b.wBit, uint64(di))
		}
	}
	return b
}

// docAreaOff returns the bit offset of the packed doc-id area.
func (b *block) docAreaOff() uint {
	if b.scheme == weightDict {
		return uint(b.ndict) * 64
	}
	return 0
}

// at decodes entry i (0 ≤ i < count) in O(1).
func (b *block) at(i int) EntryKey {
	if b.raw != nil {
		return b.raw[i]
	}
	docOff := b.docAreaOff()
	wOff := docOff + (uint(b.count)*uint(b.docBit)+7)&^7
	doc := b.minDoc + getbits(b.data, docOff+uint(i)*uint(b.docBit), b.docBit)
	var w float64
	if b.scheme == weightFOR {
		w = unsortableW(b.baseW + getbits(b.data, wOff+uint(i)*uint(b.wBit), b.wBit))
	} else {
		idx := getbits(b.data, wOff+uint(i)*uint(b.wBit), b.wBit)
		w = math.Float64frombits(binary.LittleEndian.Uint64(b.data[idx*8:]))
	}
	return EntryKey{W: w, Doc: model.DocID(doc)}
}

// appendTo decodes the whole block onto dst in list order, with the
// area offsets hoisted out of the loop (unlike repeated at calls, which
// re-derive them per entry).
func (b *block) appendTo(dst []EntryKey) []EntryKey {
	if b.raw != nil {
		return append(dst, b.raw...)
	}
	docOff := b.docAreaOff()
	wOff := docOff + (uint(b.count)*uint(b.docBit)+7)&^7
	for i := uint(0); i < uint(b.count); i++ {
		doc := b.minDoc + getbits(b.data, docOff+i*uint(b.docBit), b.docBit)
		var w float64
		if b.scheme == weightFOR {
			w = unsortableW(b.baseW + getbits(b.data, wOff+i*uint(b.wBit), b.wBit))
		} else {
			idx := getbits(b.data, wOff+i*uint(b.wBit), b.wBit)
			w = math.Float64frombits(binary.LittleEndian.Uint64(b.data[idx*8:]))
		}
		dst = append(dst, EntryKey{W: w, Doc: model.DocID(doc)})
	}
	return dst
}

// bytes is the heap footprint of the block's entry storage, packed or
// decoded.
func (b *block) bytes() uint64 { return uint64(cap(b.data)) + uint64(cap(b.raw))*16 }
