package invindex

import (
	"fmt"
	"math/rand"
	"testing"

	"ita/internal/model"
)

// randomDoc builds a document with 1–6 random terms over the vocabulary.
func randomDoc(rng *rand.Rand, id model.DocID, seq, vocab int) *model.Document {
	n := 1 + rng.Intn(6)
	used := map[model.TermID]bool{}
	var ps []model.Posting
	for len(ps) < n {
		t := model.TermID(rng.Intn(vocab))
		if used[t] {
			continue
		}
		used[t] = true
		ps = append(ps, model.Posting{Term: t, Weight: rng.Float64()})
	}
	d, err := model.NewDocument(id, timeAt(seq), ps)
	if err != nil {
		panic(err)
	}
	return d
}

// listEntries flattens a list into a single slice for comparison.
func listEntries(l *List) []EntryKey {
	var out []EntryKey
	for it := l.First(); it.Valid(); it.Next() {
		out = append(out, it.Key())
	}
	return out
}

// indexState captures everything ApplyBatch is allowed to change.
func indexState(t *testing.T, x *Index) (fifo []model.DocID, lists map[model.TermID][]EntryKey) {
	t.Helper()
	x.Docs(func(d *model.Document) { fifo = append(fifo, d.ID) })
	lists = make(map[model.TermID][]EntryKey)
	for term, l := range x.lists {
		if l.Len() > 0 {
			lists[term] = listEntries(l)
		}
	}
	return fifo, lists
}

// TestApplyBatchMatchesSerial drives a batched index and a serially
// maintained one through identical streams under a count window and
// requires identical store and list state after every epoch, including
// epochs larger than the window (same-epoch transients).
func TestApplyBatchMatchesSerial(t *testing.T) {
	for _, cfg := range []struct {
		vocab, win, batch, epochs int
	}{
		{vocab: 8, win: 10, batch: 4, epochs: 40},     // heavy term overlap
		{vocab: 50, win: 20, batch: 1, epochs: 60},    // single-event epochs
		{vocab: 20, win: 5, batch: 16, epochs: 30},    // batch > window: transients
		{vocab: 300, win: 200, batch: 64, epochs: 12}, // rebuild path on hot lists
	} {
		t.Run(fmt.Sprintf("v%d_w%d_b%d", cfg.vocab, cfg.win, cfg.batch), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			batched, serial := NewIndex(1), NewIndex(1)
			nextID := model.DocID(1)
			seq := 0
			expire := func(oldest *model.Document, count int) bool { return count > cfg.win }

			for epoch := 0; epoch < cfg.epochs; epoch++ {
				docs := make([]*model.Document, cfg.batch)
				for i := range docs {
					docs[i] = randomDoc(rng, nextID, seq, cfg.vocab)
					nextID++
					seq++
				}
				res, err := batched.ApplyBatch(docs, expire)
				if err != nil {
					t.Fatal(err)
				}
				var wantExpired []model.DocID
				for _, d := range docs {
					if err := serial.Insert(d); err != nil {
						t.Fatal(err)
					}
					for serial.Len() > cfg.win {
						wantExpired = append(wantExpired, serial.RemoveOldest().ID)
					}
				}
				// Expired must list exactly the pre-epoch victims, in
				// order; transients are reported as Dropped instead.
				var gotExpired []model.DocID
				for _, d := range res.Expired {
					gotExpired = append(gotExpired, d.ID)
				}
				batchIDs := map[model.DocID]bool{}
				for _, d := range docs {
					batchIDs[d.ID] = true
				}
				var wantPre []model.DocID
				wantDropped := 0
				for _, id := range wantExpired {
					if batchIDs[id] {
						wantDropped++
					} else {
						wantPre = append(wantPre, id)
					}
				}
				if fmt.Sprint(gotExpired) != fmt.Sprint(wantPre) || res.Dropped != wantDropped {
					t.Fatalf("epoch %d: expired %v dropped %d, want %v / %d",
						epoch, gotExpired, res.Dropped, wantPre, wantDropped)
				}

				bFifo, bLists := indexState(t, batched)
				sFifo, sLists := indexState(t, serial)
				if fmt.Sprint(bFifo) != fmt.Sprint(sFifo) {
					t.Fatalf("epoch %d: fifo diverged\nbatch  %v\nserial %v", epoch, bFifo, sFifo)
				}
				if len(bLists) != len(sLists) {
					t.Fatalf("epoch %d: %d non-empty lists, serial has %d", epoch, len(bLists), len(sLists))
				}
				for term, want := range sLists {
					if got := bLists[term]; fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("epoch %d term %d:\nbatch  %v\nserial %v", epoch, term, got, want)
					}
				}
				if batched.Terms() != serial.Terms() {
					t.Fatalf("epoch %d: Terms() %d vs %d", epoch, batched.Terms(), serial.Terms())
				}
			}
		})
	}
}

// TestApplyBatchValidation checks the all-or-nothing duplicate checks.
func TestApplyBatchValidation(t *testing.T) {
	x := NewIndex(1)
	d1 := randomDoc(rand.New(rand.NewSource(1)), 1, 0, 10)
	if _, err := x.ApplyBatch([]*model.Document{d1}, func(*model.Document, int) bool { return false }); err != nil {
		t.Fatal(err)
	}
	before, _ := indexState(t, x)

	// Duplicate against the store.
	d2 := randomDoc(rand.New(rand.NewSource(2)), 2, 1, 10)
	if _, err := x.ApplyBatch([]*model.Document{d2, d1}, func(*model.Document, int) bool { return false }); err == nil {
		t.Fatal("duplicate against store accepted")
	}
	// Duplicate within the batch.
	d3 := randomDoc(rand.New(rand.NewSource(3)), 3, 2, 10)
	if _, err := x.ApplyBatch([]*model.Document{d3, d3}, func(*model.Document, int) bool { return false }); err == nil {
		t.Fatal("duplicate within batch accepted")
	}
	after, _ := indexState(t, x)
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("failed batch mutated the store: %v -> %v", before, after)
	}
}

// TestListApplyBatchRebuild forces the merge-rebuild path and checks it
// against point operations on lists spanning multiple chunks.
func TestListApplyBatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := newList(), newList()
	var present []EntryKey
	for i := 0; i < 2000; i++ {
		e := EntryKey{W: rng.Float64(), Doc: model.DocID(i)}
		a.insert(e)
		b.insert(e)
		present = append(present, e)
	}
	// Large mutation set relative to the list: half the entries deleted,
	// a thousand inserted.
	var ins, del []EntryKey
	for i := 0; i < 1000; i++ {
		ins = append(ins, EntryKey{W: rng.Float64(), Doc: model.DocID(10000 + i)})
	}
	rng.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
	del = append(del, present[:1000]...)

	sortKeys := func(ks []EntryKey) {
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && Before(ks[j], ks[j-1]); j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
	}
	sortKeys(ins)
	sortKeys(del)
	a.applyBatch(ins, del, nil)
	for _, e := range del {
		b.delete(e)
	}
	for _, e := range ins {
		b.insert(e)
	}
	if got, want := listEntries(a), listEntries(b); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rebuild diverged: %d vs %d entries", len(got), len(want))
	}
	// Chunk invariants: non-empty, within bounds, globally sorted.
	for ci, ch := range a.chunks {
		if len(ch) == 0 || len(ch) > maxChunk {
			t.Fatalf("chunk %d has %d entries", ci, len(ch))
		}
	}
}
