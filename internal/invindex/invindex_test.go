package invindex

import (
	"math"
	"testing"
	"time"

	"ita/internal/model"
)

func mkDoc(t *testing.T, id model.DocID, ps ...model.Posting) *model.Document {
	t.Helper()
	d, err := model.NewDocument(id, time.Unix(int64(id), 0), ps)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBeforeOrdering(t *testing.T) {
	cases := []struct {
		a, b EntryKey
		want bool
	}{
		{EntryKey{W: 0.9, Doc: 5}, EntryKey{W: 0.1, Doc: 1}, true},  // higher weight first
		{EntryKey{W: 0.1, Doc: 1}, EntryKey{W: 0.9, Doc: 5}, false}, //
		{EntryKey{W: 0.5, Doc: 1}, EntryKey{W: 0.5, Doc: 2}, true},  // tie: lower doc first
		{EntryKey{W: 0.5, Doc: 2}, EntryKey{W: 0.5, Doc: 1}, false}, //
		{EntryKey{W: 0.5, Doc: 1}, EntryKey{W: 0.5, Doc: 1}, false}, // equal
	}
	for _, c := range cases {
		if got := Before(c.a, c.b); got != c.want {
			t.Errorf("Before(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSentinels(t *testing.T) {
	real := EntryKey{W: math.MaxFloat64, Doc: 0}
	if !Before(Top(), real) {
		t.Error("Top must precede every real entry")
	}
	tiny := EntryKey{W: math.SmallestNonzeroFloat64, Doc: math.MaxUint64 - 1}
	if !Before(tiny, Bottom()) {
		t.Error("every positive-weight entry must precede Bottom")
	}
	if !Before(Top(), Bottom()) {
		t.Error("Top must precede Bottom")
	}
}

func TestIndexInsertAndListOrder(t *testing.T) {
	x := NewIndex(1)
	// Same term, interleaved weights, plus a tie.
	x.Insert(mkDoc(t, 1, model.Posting{Term: 7, Weight: 0.3}))
	x.Insert(mkDoc(t, 2, model.Posting{Term: 7, Weight: 0.9}))
	x.Insert(mkDoc(t, 3, model.Posting{Term: 7, Weight: 0.3}))
	x.Insert(mkDoc(t, 4, model.Posting{Term: 7, Weight: 0.5}))

	l := x.List(7)
	if l == nil || l.Len() != 4 {
		t.Fatalf("list missing or wrong length")
	}
	var got []EntryKey
	for it := l.First(); it.Valid(); it.Next() {
		got = append(got, it.Key())
	}
	want := []EntryKey{{W: 0.9, Doc: 2}, {W: 0.5, Doc: 4}, {W: 0.3, Doc: 1}, {W: 0.3, Doc: 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list[%d] = %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestIndexRemoveOldestCleansLists(t *testing.T) {
	x := NewIndex(1)
	x.Insert(mkDoc(t, 1, model.Posting{Term: 1, Weight: 0.5}, model.Posting{Term: 2, Weight: 0.25}))
	x.Insert(mkDoc(t, 2, model.Posting{Term: 2, Weight: 0.75}))
	if x.Terms() != 2 {
		t.Fatalf("Terms = %d", x.Terms())
	}
	d := x.RemoveOldest()
	if d == nil || d.ID != 1 {
		t.Fatalf("RemoveOldest = %v", d)
	}
	// Emptied lists are retained (allocation churn) but report empty.
	if l := x.List(1); l != nil && l.Len() != 0 {
		t.Fatalf("list for term 1 should be empty, has %d entries", l.Len())
	}
	if x.Terms() != 1 {
		t.Fatalf("Terms = %d, want 1 non-empty list", x.Terms())
	}
	if l := x.List(2); l == nil || l.Len() != 1 {
		t.Fatal("list for term 2 should keep doc 2's entry")
	}
	// A retained empty list behaves like an absent one.
	if it := x.List(1).First(); it.Valid() {
		t.Fatal("empty list iterator is valid")
	}
	if _, ok := x.List(1).PredBefore(Bottom()); ok {
		t.Fatal("empty list has a predecessor")
	}
	// Reinsertion reuses the retained list.
	if err := x.Insert(mkDoc(t, 3, model.Posting{Term: 1, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
	if l := x.List(1); l.Len() != 1 {
		t.Fatalf("reused list has %d entries", l.Len())
	}
	if _, ok := x.Get(1); ok {
		t.Fatal("doc 1 still in store")
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (doc 2 and the reinserted doc 3)", x.Len())
	}
}

func TestIndexDuplicateInsert(t *testing.T) {
	x := NewIndex(1)
	if err := x.Insert(mkDoc(t, 1, model.Posting{Term: 1, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(mkDoc(t, 1, model.Posting{Term: 2, Weight: 0.5})); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d after rejected duplicate", x.Len())
	}
}

func TestSeekGEAndPredBefore(t *testing.T) {
	x := NewIndex(1)
	for i, w := range []float64{0.9, 0.7, 0.5, 0.3} {
		x.Insert(mkDoc(t, model.DocID(i+1), model.Posting{Term: 1, Weight: w}))
	}
	l := x.List(1)

	// Seek to a phantom position between 0.7 and 0.5.
	it := l.SeekGE(EntryKey{W: 0.6, Doc: 99})
	if !it.Valid() || it.Key() != (EntryKey{W: 0.5, Doc: 3}) {
		t.Fatalf("SeekGE(0.6) = %v", it.Key())
	}
	// Seek to an existing position lands on it.
	it = l.SeekGE(EntryKey{W: 0.7, Doc: 2})
	if !it.Valid() || it.Key() != (EntryKey{W: 0.7, Doc: 2}) {
		t.Fatalf("SeekGE(existing) = %v", it.Key())
	}
	// Seek past the tail.
	it = l.SeekGE(Bottom())
	if it.Valid() {
		t.Fatal("SeekGE(Bottom) should be invalid")
	}
	// Seek from Top lands on the head.
	it = l.SeekGE(Top())
	if !it.Valid() || it.Key() != (EntryKey{W: 0.9, Doc: 1}) {
		t.Fatalf("SeekGE(Top) = %v", it.Key())
	}

	// Predecessors.
	if _, ok := l.PredBefore(Top()); ok {
		t.Fatal("PredBefore(Top) should be empty")
	}
	if k, ok := l.PredBefore(EntryKey{W: 0.7, Doc: 2}); !ok || k != (EntryKey{W: 0.9, Doc: 1}) {
		t.Fatalf("PredBefore(0.7) = %v,%v", k, ok)
	}
	if k, ok := l.PredBefore(Bottom()); !ok || k != (EntryKey{W: 0.3, Doc: 4}) {
		t.Fatalf("PredBefore(Bottom) = %v,%v", k, ok)
	}
}

func TestStoreFIFOCompaction(t *testing.T) {
	s := NewStore()
	// Push enough through the FIFO to trigger prefix reclamation.
	for i := 0; i < 5000; i++ {
		if err := s.Insert(mkDoc(t, model.DocID(i), model.Posting{Term: 1, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
		if s.Len() > 16 {
			if d := s.RemoveOldest(); d == nil || d.ID != model.DocID(i-16) {
				t.Fatalf("wrong FIFO order at %d: %v", i, d)
			}
		}
	}
	if s.Len() != 16 {
		t.Fatalf("Len = %d", s.Len())
	}
	count := 0
	prev := model.DocID(0)
	s.Docs(func(d *model.Document) {
		if count > 0 && d.ID != prev+1 {
			t.Fatalf("Docs out of order: %d after %d", d.ID, prev)
		}
		prev = d.ID
		count++
	})
	if count != 16 {
		t.Fatalf("Docs visited %d", count)
	}
}

func TestStoreEmpty(t *testing.T) {
	s := NewStore()
	if s.Oldest() != nil || s.RemoveOldest() != nil || s.Len() != 0 {
		t.Fatal("empty store misbehaves")
	}
}
