package invindex

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ita/internal/model"
)

func timeAt(i int) time.Time {
	return time.Unix(0, int64(i)*int64(5*time.Millisecond))
}

// Benchmarks for the chunked inverted list at the two size regimes that
// matter: the ~1-entry lists that dominate realistic dictionaries, and
// the Zipf-head lists that reach the window size at N = 100,000.

func BenchmarkListInsertDelete(b *testing.B) {
	for _, size := range []int{4, 256, 8192, 100000} {
		b.Run(fmt.Sprintf("len=%d", size), func(b *testing.B) {
			l := newList()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < size; i++ {
				l.insert(EntryKey{W: rng.Float64(), Doc: model.DocID(i)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := EntryKey{W: rng.Float64(), Doc: model.DocID(size + i)}
				l.insert(e)
				l.delete(e)
			}
		})
	}
}

func BenchmarkListSeekGE(b *testing.B) {
	l := newList()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		l.insert(EntryKey{W: rng.Float64(), Doc: model.DocID(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := l.SeekGE(EntryKey{W: rng.Float64(), Doc: 0})
		if it.Valid() {
			_ = it.Key()
		}
	}
}

func BenchmarkIndexProcessDocument(b *testing.B) {
	// Insert + remove a realistic 175-term document against a warm
	// window — the fixed per-event index cost of ITA.
	for _, window := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", window), func(b *testing.B) {
			x := NewIndex(1)
			rng := rand.New(rand.NewSource(3))
			mk := func(id model.DocID) *model.Document {
				seen := map[model.TermID]bool{}
				var ps []model.Posting
				for len(ps) < 175 {
					t := model.TermID(rng.Intn(181978))
					if seen[t] {
						continue
					}
					seen[t] = true
					ps = append(ps, model.Posting{Term: t, Weight: rng.Float64()})
				}
				d, err := model.NewDocument(id, timeAt(int(id)), ps)
				if err != nil {
					b.Fatal(err)
				}
				return d
			}
			pool := make([]*model.Document, 2048)
			for i := range pool {
				pool[i] = mk(model.DocID(i + 1))
			}
			next := model.DocID(1)
			for i := 0; i < window; i++ {
				base := pool[int(next)%len(pool)]
				if err := x.Insert(&model.Document{ID: next, Arrival: base.Arrival, Postings: base.Postings}); err != nil {
					b.Fatal(err)
				}
				next++
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := pool[int(next)%len(pool)]
				if err := x.Insert(&model.Document{ID: next, Arrival: base.Arrival, Postings: base.Postings}); err != nil {
					b.Fatal(err)
				}
				next++
				x.RemoveOldest()
			}
		})
	}
}
