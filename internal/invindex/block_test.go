package invindex

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ita/internal/model"
)

// sortEntries orders es in list order.
func sortEntries(es []EntryKey) {
	sort.Slice(es, func(i, j int) bool { return Before(es[i], es[j]) })
}

// TestBlockedListAgainstSlices drives the blocked and slice layouts
// through the same random workload — point inserts, point deletes
// (present and phantom), and batch applications — and demands every
// observable agree at every step: lengths, delete outcomes, full
// iteration order, seeks and predecessors. This is the invindex-level
// leg of the differential twin; the metamorphic suite extends the same
// comparison through the whole engine stack.
func TestBlockedListAgainstSlices(t *testing.T) {
	bl, sl := newBlockedList(), newList()
	rng := rand.New(rand.NewSource(7))
	live := make(map[EntryKey]bool)

	randKey := func() EntryKey {
		return EntryKey{
			W:   float64(rng.Intn(400)+1) / 400, // ties likely
			Doc: model.DocID(rng.Intn(4000)),
		}
	}
	compare := func(step int) {
		if bl.Len() != sl.Len() {
			t.Fatalf("step %d: Len %d (blocked) vs %d (slices)", step, bl.Len(), sl.Len())
		}
		cb, cs := listContents(bl), listContents(sl)
		for i := range cs {
			if cb[i] != cs[i] {
				t.Fatalf("step %d: entry %d: %v (blocked) vs %v (slices)", step, i, cb[i], cs[i])
			}
		}
	}

	var blScratch, slScratch []EntryKey
	for step := 0; step < 20000; step++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(live) == 0: // point insert
			e := randKey()
			if live[e] {
				continue
			}
			live[e] = true
			bl.insert(e)
			sl.insert(e)
		case r < 8: // point delete, sometimes phantom
			var victim EntryKey
			if rng.Intn(4) == 0 {
				victim = randKey() // likely phantom
			} else {
				for e := range live {
					victim = e
					break
				}
			}
			delete(live, victim)
			ob, os := bl.delete(victim), sl.delete(victim)
			if ob != os {
				t.Fatalf("step %d: delete(%v) = %v (blocked) vs %v (slices)", step, victim, ob, os)
			}
		default: // batch, sized to sometimes cross the rebuild cutoff
			var ins, del []EntryKey
			for n := rng.Intn(200); n > 0; n-- {
				e := randKey()
				if live[e] {
					continue
				}
				live[e] = true
				ins = append(ins, e)
			}
			for n := rng.Intn(60); n > 0 && len(live) > 0; n-- {
				for e := range live {
					delete(live, e)
					del = append(del, e)
					break
				}
			}
			sortEntries(ins)
			sortEntries(del)
			blScratch = bl.applyBatch(ins, del, blScratch)
			slScratch = sl.applyBatch(ins, del, slScratch)
		}
		if step%1000 == 0 {
			compare(step)
		}
	}
	compare(-1)

	// Seeks and predecessors at random probes, including phantoms.
	for probe := 0; probe < 2000; probe++ {
		pos := EntryKey{W: float64(rng.Intn(410)) / 400, Doc: model.DocID(rng.Intn(4200))}
		ib, is := bl.SeekGE(pos), sl.SeekGE(pos)
		if ib.Valid() != is.Valid() || (ib.Valid() && ib.Key() != is.Key()) {
			t.Fatalf("SeekGE(%v): %v,%v (blocked) vs %v,%v (slices)",
				pos, ib.Key(), ib.Valid(), is.Key(), is.Valid())
		}
		pb, okb := bl.PredBefore(pos)
		ps, oks := sl.PredBefore(pos)
		if okb != oks || (okb && pb != ps) {
			t.Fatalf("PredBefore(%v): %v,%v (blocked) vs %v,%v (slices)", pos, pb, okb, ps, oks)
		}
	}
}

// TestBlockedListSplitBoundaries fills a blocked list far past one
// block and checks structural invariants: blocks non-empty, within
// bounds, globally ordered, with summary metadata (last, maxW, count)
// telling the truth in both packed and decoded form.
func TestBlockedListSplitBoundaries(t *testing.T) {
	l := newBlockedList()
	const n = 4 * blockMax
	for i := 0; i < n; i++ {
		l.insert(EntryKey{W: float64(i%97+1) / 97, Doc: model.DocID(i)})
	}
	if l.Len() != n {
		t.Fatalf("Len = %d", l.Len())
	}
	if len(l.blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(l.blocks))
	}
	var prev EntryKey
	first := true
	for bi := range l.blocks {
		b := &l.blocks[bi]
		if b.count == 0 {
			t.Fatalf("block %d empty", bi)
		}
		if int(b.count) > blockMax {
			t.Fatalf("block %d oversized: %d", bi, b.count)
		}
		if b.last != b.at(int(b.count)-1) {
			t.Fatalf("block %d: last %v != final entry %v", bi, b.last, b.at(int(b.count)-1))
		}
		if b.maxW != b.at(0).W {
			t.Fatalf("block %d: maxW %v != first weight %v", bi, b.maxW, b.at(0).W)
		}
		for i := 0; i < int(b.count); i++ {
			e := b.at(i)
			if !first && !Before(prev, e) {
				t.Fatalf("order violation at block %d: %v then %v", bi, prev, e)
			}
			prev, first = e, false
		}
	}
	// A merge rebuild must pack every block (no decoded residue).
	var all []EntryKey
	for bi := range l.blocks {
		all = l.blocks[bi].appendTo(all)
	}
	l.applyBatch(nil, all[:n/2], nil)
	for bi := range l.blocks {
		if l.blocks[bi].raw != nil {
			t.Fatalf("block %d still decoded after merge rebuild", bi)
		}
	}
	// Drain completely; the block directory must shrink to nothing.
	for _, e := range all[n/2:] {
		if !l.delete(e) {
			t.Fatalf("delete %v failed", e)
		}
	}
	if l.Len() != 0 || l.blocks != nil {
		t.Fatalf("drained list: len=%d blocks=%d", l.Len(), len(l.blocks))
	}
}

// checkRoundTrip encodes es (sorted, deduplicated, non-empty) and
// verifies every decode surface reproduces it exactly.
func checkRoundTrip(t *testing.T, es []EntryKey) {
	t.Helper()
	b := encodeBlock(es)
	if int(b.count) != len(es) {
		t.Fatalf("count %d != %d", b.count, len(es))
	}
	if b.last != es[len(es)-1] || b.maxW != es[0].W {
		t.Fatalf("metadata last=%v maxW=%v for es[0]=%v es[n-1]=%v", b.last, b.maxW, es[0], es[len(es)-1])
	}
	for i, e := range es {
		if got := b.at(i); got != e {
			t.Fatalf("at(%d) = %v, want %v (scheme=%d docBit=%d wBit=%d)", i, got, e, b.scheme, b.docBit, b.wBit)
		}
	}
	got := b.appendTo(nil)
	for i := range es {
		if got[i] != es[i] {
			t.Fatalf("appendTo[%d] = %v, want %v", i, got[i], es[i])
		}
	}
}

// TestBlockCodecRoundTrip exercises the encoder's edges directly:
// all-tied weights (dictionary of one), all-distinct weights (FOR wins),
// extreme doc-id spans forcing 64-bit widths, subnormal and huge
// weights, and single-entry blocks.
func TestBlockCodecRoundTrip(t *testing.T) {
	cases := [][]EntryKey{
		{{W: 0.5, Doc: 1}},
		{{W: 0.5, Doc: 0}, {W: 0.5, Doc: math.MaxUint64}},
		{{W: math.MaxFloat64, Doc: 3}, {W: math.SmallestNonzeroFloat64, Doc: 2}},
		{{W: 2, Doc: 9}, {W: 1, Doc: 0}, {W: 0.5, Doc: math.MaxUint64}},
	}
	// All-tied: dictionary collapses the weight area to one float.
	tied := make([]EntryKey, blockMax)
	for i := range tied {
		tied[i] = EntryKey{W: 1.0 / 3, Doc: model.DocID(i * 1000)}
	}
	cases = append(cases, tied)
	// All-distinct descending: FOR must win and round-trip.
	distinct := make([]EntryKey, blockTarget)
	for i := range distinct {
		distinct[i] = EntryKey{W: float64(blockTarget-i) / blockTarget, Doc: model.DocID(i)}
	}
	cases = append(cases, distinct)
	for _, es := range cases {
		checkRoundTrip(t, es)
	}
}

// TestBlockedCompressionRatio pins the tentpole's memory claim at the
// unit level: a batch-built list with cosine-shaped weights (many ties
// per block) must cost less than half the bytes per posting of the
// slice layout holding the identical entries.
func TestBlockedCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	es := make([]EntryKey, 0, 20000)
	seen := make(map[EntryKey]bool)
	for len(es) < cap(es) {
		// Weights as f/√Σf² over small integer frequencies, the shape
		// real cosine impacts take.
		f := float64(rng.Intn(8) + 1)
		norm := math.Sqrt(float64(rng.Intn(200) + 25))
		e := EntryKey{W: f / norm, Doc: model.DocID(rng.Uint64() >> 24)}
		if e.W <= 0 || seen[e] {
			continue
		}
		seen[e] = true
		es = append(es, e)
	}
	sortEntries(es)
	bl, sl := newBlockedList(), newList()
	bl.applyBatch(es, nil, nil)
	sl.applyBatch(es, nil, nil)
	bb, sb := listBytes(bl), listBytes(sl)
	t.Logf("blocked %.2f B/posting, slices %.2f B/posting",
		float64(bb)/float64(len(es)), float64(sb)/float64(len(es)))
	if bb*2 > sb {
		t.Fatalf("blocked %d bytes not under half of slices %d", bb, sb)
	}
}

// TestBatchScratchShrink verifies the index releases the hot-list merge
// scratch after sustained small epochs — one burst must not pin its
// high-water capacity forever.
func TestBatchScratchShrink(t *testing.T) {
	x := NewIndex(1)
	docAt := func(id int, term model.TermID, n int) []*model.Document {
		docs := make([]*model.Document, n)
		for i := range docs {
			d, err := model.NewDocument(model.DocID(id+i), time.Unix(int64(id+i), 0),
				[]model.Posting{{Term: term, Weight: float64(id+i) + 1}})
			if err != nil {
				t.Fatal(err)
			}
			docs[i] = d
		}
		return docs
	}
	never := func(*model.Document, int) bool { return false }

	// A burst epoch rebuilds one hot list at several thousand entries.
	if _, err := x.ApplyBatch(docAt(0, 7, 4096), never); err != nil {
		t.Fatal(err)
	}
	high := cap(x.batchScratch)
	if high < 4096 {
		t.Fatalf("burst did not grow scratch: cap=%d", high)
	}
	// Sustained small epochs: each rebuilds a tiny fresh hot term (8
	// mutations clears hotTermMutations; a new term keeps the list size
	// below the point-op cutoff).
	id := 1 << 20
	for epoch := 0; epoch < 40; epoch++ {
		if _, err := x.ApplyBatch(docAt(id, model.TermID(100+epoch), hotTermMutations), never); err != nil {
			t.Fatal(err)
		}
		id += hotTermMutations
	}
	if got := cap(x.batchScratch); got >= high {
		t.Fatalf("scratch cap %d never shrank from high water %d", got, high)
	}
}

// FuzzBlockCodec round-trips arbitrary entry sets through the block
// codec. The corpus seeds the pathological shapes: weight ties (the
// dictionary scheme), maximal doc ids (64-bit FOR widths), zero and
// subnormal weights, sign boundaries of the sortable-bits mapping.
func FuzzBlockCodec(f *testing.F) {
	pack := func(es []EntryKey) []byte {
		out := make([]byte, 0, len(es)*16)
		var b [16]byte
		for _, e := range es {
			binary.LittleEndian.PutUint64(b[:8], uint64(e.Doc))
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.W))
			out = append(out, b[:]...)
		}
		return out
	}
	f.Add(pack([]EntryKey{{W: 0.5, Doc: 1}, {W: 0.5, Doc: 2}, {W: 0.25, Doc: math.MaxUint64}}))
	f.Add(pack([]EntryKey{{W: math.MaxFloat64, Doc: 0}, {W: math.SmallestNonzeroFloat64, Doc: 1 << 40}}))
	f.Add(pack([]EntryKey{{W: 1, Doc: 3}, {W: 0, Doc: 3}, {W: math.Copysign(0, -1), Doc: 4}, {W: -1, Doc: 5}}))
	f.Add(pack(func() []EntryKey {
		es := make([]EntryKey, 300)
		for i := range es {
			es[i] = EntryKey{W: float64(i%3) + 0.125, Doc: model.DocID(i * 1 << 32)}
		}
		return es
	}()))

	f.Fuzz(func(t *testing.T, data []byte) {
		var es []EntryKey
		seen := make(map[EntryKey]bool)
		for i := 0; i+16 <= len(data) && len(es) < 2*blockMax; i += 16 {
			w := math.Float64frombits(binary.LittleEndian.Uint64(data[i+8 : i+16]))
			if math.IsNaN(w) {
				continue // NaN has no position in the list order
			}
			e := EntryKey{W: w, Doc: model.DocID(binary.LittleEndian.Uint64(data[i : i+8]))}
			if seen[e] {
				continue
			}
			seen[e] = true
			es = append(es, e)
		}
		if len(es) == 0 {
			return
		}
		sortEntries(es)
		checkRoundTrip(t, es)
	})
}
