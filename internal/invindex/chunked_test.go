package invindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ita/internal/model"
)

// refList is the oracle: a flat sorted slice.
type refList struct{ entries []EntryKey }

func (r *refList) insert(e EntryKey) {
	i := sort.Search(len(r.entries), func(i int) bool { return !Before(r.entries[i], e) })
	r.entries = append(r.entries, EntryKey{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
}

func (r *refList) delete(e EntryKey) bool {
	i := sort.Search(len(r.entries), func(i int) bool { return !Before(r.entries[i], e) })
	if i >= len(r.entries) || r.entries[i] != e {
		return false
	}
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	return true
}

func listContents(l *List) []EntryKey {
	var out []EntryKey
	for it := l.First(); it.Valid(); it.Next() {
		out = append(out, it.Key())
	}
	return out
}

// TestChunkedListAgainstReference drives the chunked list through a
// large random workload spanning many splits and chunk removals and
// compares every observable against the flat-slice oracle.
func TestChunkedListAgainstReference(t *testing.T) {
	l := newList()
	ref := &refList{}
	rng := rand.New(rand.NewSource(42))
	live := make(map[EntryKey]bool)

	for step := 0; step < 30000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			e := EntryKey{
				W:   float64(rng.Intn(500)+1) / 500, // ties likely
				Doc: model.DocID(rng.Intn(5000)),
			}
			if live[e] {
				continue
			}
			live[e] = true
			l.insert(e)
			ref.insert(e)
		} else {
			// Delete a random live entry (map order is fine).
			var victim EntryKey
			for e := range live {
				victim = e
				break
			}
			delete(live, victim)
			if !l.delete(victim) || !func() bool { return ref.delete(victim) }() {
				t.Fatalf("step %d: delete disagreement for %v", step, victim)
			}
		}
		if l.Len() != len(ref.entries) {
			t.Fatalf("step %d: Len %d vs ref %d", step, l.Len(), len(ref.entries))
		}
	}

	got := listContents(l)
	if len(got) != len(ref.entries) {
		t.Fatalf("iteration yielded %d entries, ref has %d", len(got), len(ref.entries))
	}
	for i := range got {
		if got[i] != ref.entries[i] {
			t.Fatalf("entry %d: %v vs ref %v", i, got[i], ref.entries[i])
		}
	}

	// Seeks and predecessors at random probes, including phantoms.
	for probe := 0; probe < 2000; probe++ {
		pos := EntryKey{W: float64(rng.Intn(510)) / 500, Doc: model.DocID(rng.Intn(5200))}
		i := sort.Search(len(ref.entries), func(i int) bool { return !Before(ref.entries[i], pos) })
		it := l.SeekGE(pos)
		if i == len(ref.entries) {
			if it.Valid() {
				t.Fatalf("SeekGE(%v) valid, ref exhausted", pos)
			}
		} else if !it.Valid() || it.Key() != ref.entries[i] {
			t.Fatalf("SeekGE(%v) = %v, ref %v", pos, it.Key(), ref.entries[i])
		}
		pk, ok := l.PredBefore(pos)
		if i == 0 {
			if ok {
				t.Fatalf("PredBefore(%v) = %v, ref has none", pos, pk)
			}
		} else if !ok || pk != ref.entries[i-1] {
			t.Fatalf("PredBefore(%v) = %v,%v, ref %v", pos, pk, ok, ref.entries[i-1])
		}
	}
}

// TestChunkedListSplitBoundaries fills a list far past one chunk and
// checks structural invariants: chunks non-empty, within bounds,
// globally ordered.
func TestChunkedListSplitBoundaries(t *testing.T) {
	l := newList()
	const n = 4 * maxChunk
	for i := 0; i < n; i++ {
		l.insert(EntryKey{W: float64(i%97+1) / 97, Doc: model.DocID(i)})
	}
	if l.Len() != n {
		t.Fatalf("Len = %d", l.Len())
	}
	if len(l.chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(l.chunks))
	}
	var prev EntryKey
	first := true
	for ci, ch := range l.chunks {
		if len(ch) == 0 {
			t.Fatalf("chunk %d empty", ci)
		}
		if len(ch) > maxChunk {
			t.Fatalf("chunk %d oversized: %d", ci, len(ch))
		}
		for _, e := range ch {
			if !first && !Before(prev, e) {
				t.Fatalf("order violation at chunk %d: %v then %v", ci, prev, e)
			}
			prev, first = e, false
		}
	}
	// Drain completely; chunk directory must shrink to nothing.
	for i := 0; i < n; i++ {
		if !l.delete(EntryKey{W: float64(i%97+1) / 97, Doc: model.DocID(i)}) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if l.Len() != 0 || len(l.chunks) != 0 {
		t.Fatalf("drained list: len=%d chunks=%d", l.Len(), len(l.chunks))
	}
}

// Property: ascending-weight and descending-weight bulk inserts produce
// identical list contents.
func TestChunkedListOrderInsensitive(t *testing.T) {
	f := func(ws []uint16) bool {
		a, b := newList(), newList()
		for i, w := range ws {
			a.insert(EntryKey{W: float64(w), Doc: model.DocID(i)})
		}
		for i := len(ws) - 1; i >= 0; i-- {
			b.insert(EntryKey{W: float64(ws[i]), Doc: model.DocID(i)})
		}
		ca, cb := listContents(a), listContents(b)
		if len(ca) != len(cb) {
			return false
		}
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
