// Package invindex implements the paper's Figure 1 storage layer: a
// FIFO store of the valid (in-window) documents plus an inverted index
// whose per-term lists hold impact entries ⟨d, w_{d,t}⟩ sorted by
// decreasing weight.
//
// List positions are identified by EntryKey values — (weight, doc id)
// pairs under the list's total order — rather than by node references,
// so a stored position (such as a query's local threshold) stays
// meaningful across arbitrary insertions and deletions, including the
// deletion of the entry it was derived from.
package invindex

import (
	"fmt"
	"math"
	"sort"

	"ita/internal/model"
)

// EntryKey identifies one impact entry and, by extension, a position in
// an inverted list. Lists are ordered by descending weight with ties
// broken by ascending doc id, so the total order "a before b" is
// a.W > b.W, or a.W == b.W and a.Doc < b.Doc.
type EntryKey struct {
	W   float64
	Doc model.DocID
}

// Before reports whether a precedes b in list order (closer to the head,
// i.e. higher impact).
func Before(a, b EntryKey) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	return a.Doc < b.Doc
}

// Top returns the sentinel position before every possible entry. A
// local threshold at Top has consumed nothing.
func Top() EntryKey { return EntryKey{W: math.Inf(1), Doc: 0} }

// Bottom returns the sentinel position after every possible entry. A
// local threshold at Bottom has consumed the entire list, and any future
// arrival with a positive weight lands ahead of it.
func Bottom() EntryKey { return EntryKey{W: 0, Doc: math.MaxUint64} }

// List is one inverted list: impact entries in list order, backed by a
// chunked sorted array (a tiered vector). At realistic dictionary
// sizes the vast majority of lists hold a handful of entries
// (window·terms/dictionary ≈ 1 for the paper's configuration) and live
// in a single chunk with no per-entry allocation; the Zipf-head terms,
// which at a 100,000-document window appear in essentially every
// document, spread across chunks so that an insert or delete moves at
// most one chunk's worth of memory instead of O(list) — the difference
// between microseconds and milliseconds per arrival at the paper's
// largest window.
type List struct {
	chunks [][]EntryKey // each non-empty and sorted; chunks ordered
	length int
	spare  []EntryKey // capacity recycled from the last emptied chunk
}

// maxChunk bounds chunk size; a full chunk splits in two. 256 entries
// (4 KiB of EntryKeys) keeps the memmove within a couple of cache
// lines' worth of pages while keeping the chunk directory tiny.
const maxChunk = 256

func newList() *List { return &List{} }

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

// chunkFor returns the index of the chunk that does (or would) contain
// pos: the first chunk whose last element is not before pos, clamped to
// the final chunk.
func (l *List) chunkFor(pos EntryKey) int {
	n := len(l.chunks)
	c := sort.Search(n, func(i int) bool {
		ch := l.chunks[i]
		return !Before(ch[len(ch)-1], pos)
	})
	if c == n && n > 0 {
		c = n - 1
	}
	return c
}

// lowerBound locates the first entry not before pos as a (chunk,
// offset) pair; offset may equal the chunk length (insertion at the
// very end).
func (l *List) lowerBound(pos EntryKey) (int, int) {
	if len(l.chunks) == 0 {
		return 0, 0
	}
	c := l.chunkFor(pos)
	ch := l.chunks[c]
	i := sort.Search(len(ch), func(i int) bool { return !Before(ch[i], pos) })
	return c, i
}

func (l *List) insert(e EntryKey) {
	if len(l.chunks) == 0 {
		first := l.spare
		if first == nil {
			first = make([]EntryKey, 0, 8)
		}
		l.spare = nil
		l.chunks = append(l.chunks, append(first, e))
		l.length++
		return
	}
	c, i := l.lowerBound(e)
	ch := l.chunks[c]
	ch = append(ch, EntryKey{})
	copy(ch[i+1:], ch[i:])
	ch[i] = e
	l.chunks[c] = ch
	l.length++
	if len(ch) > maxChunk {
		// Split the full chunk in half; the right half is a fresh
		// allocation so the halves stop sharing growth.
		mid := len(ch) / 2
		right := append(make([]EntryKey, 0, maxChunk), ch[mid:]...)
		l.chunks[c] = ch[:mid:mid]
		l.chunks = append(l.chunks, nil)
		copy(l.chunks[c+2:], l.chunks[c+1:])
		l.chunks[c+1] = right
	}
}

func (l *List) delete(e EntryKey) bool {
	if len(l.chunks) == 0 {
		return false
	}
	c, i := l.lowerBound(e)
	ch := l.chunks[c]
	if i >= len(ch) || ch[i] != e {
		return false
	}
	copy(ch[i:], ch[i+1:])
	l.chunks[c] = ch[:len(ch)-1]
	l.length--
	if len(l.chunks[c]) == 0 {
		if l.length == 0 {
			l.spare = l.chunks[c][:0]
		}
		l.chunks = append(l.chunks[:c], l.chunks[c+1:]...)
	}
	return true
}

// applyBatch applies one epoch's mutations to the list: ins entries are
// inserted and del entries removed, both given in list order. For small
// mutation sets it falls back to the point operations; once the batch is
// a meaningful fraction of the list it rewrites the list in a single
// merge pass, so B inserts into a hot Zipf-head list cost one O(list)
// sweep instead of B chunk searches and B memmoves — the index-level
// amortization of the epoch pipeline. Unmatched delete keys are
// skipped. scratch is reusable merge space (may be nil); the possibly
// grown scratch is returned for the caller to keep.
func (l *List) applyBatch(ins, del, scratch []EntryKey) []EntryKey {
	m := len(ins) + len(del)
	if m == 0 {
		return scratch
	}
	// Point operations win whenever the mutation set is small — in
	// absolute terms (each point op is a binary search plus one
	// sub-chunk memmove, allocation-free, and at realistic dictionary
	// sparsity almost every touched list takes a handful of mutations)
	// or relative to the list (the rebuild walks everything). The
	// rebuild pays off only once a large fraction of the list changes
	// in one epoch: one merge sweep and one allocation replace m chunk
	// searches and m memmoves.
	if m < hotTermMutations || m*2 < l.length {
		for _, e := range del {
			l.delete(e)
		}
		for _, e := range ins {
			l.insert(e)
		}
		return scratch
	}
	merged := scratch[:0]
	ii, di := 0, 0
	for _, ch := range l.chunks {
		for _, e := range ch {
			for ii < len(ins) && Before(ins[ii], e) {
				merged = append(merged, ins[ii])
				ii++
			}
			for di < len(del) && Before(del[di], e) {
				di++ // delete key not present; tolerate and move on
			}
			if di < len(del) && del[di] == e {
				di++
				continue
			}
			merged = append(merged, e)
		}
	}
	merged = append(merged, ins[ii:]...)
	l.length = len(merged)
	if l.length == 0 {
		l.chunks = nil
		return merged
	}
	// Re-chunk at half fill so subsequent point inserts have headroom
	// before forcing splits, matching the steady state split leaves.
	// All chunks slice one backing array (capacity-capped, so a growing
	// chunk copies out instead of clobbering its neighbor), keeping the
	// rebuild at a single persistent allocation.
	const target = maxChunk / 2
	backing := make([]EntryKey, len(merged))
	copy(backing, merged)
	l.chunks = l.chunks[:0]
	for start := 0; start < len(backing); start += target {
		end := start + target
		if end > len(backing) {
			end = len(backing)
		}
		l.chunks = append(l.chunks, backing[start:end:end])
	}
	return merged
}

// Iterator walks a list from a position towards lower impacts. It stays
// valid only while the list is not modified.
type Iterator struct {
	l *List
	c int // chunk index
	i int // offset within chunk
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	return it.l != nil && it.c < len(it.l.chunks) && it.i < len(it.l.chunks[it.c])
}

// Next advances towards the tail (lower impact).
func (it *Iterator) Next() {
	it.i++
	if it.c < len(it.l.chunks) && it.i >= len(it.l.chunks[it.c]) {
		it.c++
		it.i = 0
	}
}

// Key returns the current entry; the iterator must be valid.
func (it *Iterator) Key() EntryKey { return it.l.chunks[it.c][it.i] }

// SeekGE returns an iterator at the first entry at or after pos in list
// order — the resume point for a threshold stored as pos.
func (l *List) SeekGE(pos EntryKey) Iterator {
	if l.length == 0 {
		return Iterator{l: l}
	}
	c, i := l.lowerBound(pos)
	it := Iterator{l: l, c: c, i: i}
	if c < len(l.chunks) && i >= len(l.chunks[c]) {
		// Insertion point at the end of a chunk: the next real entry
		// starts the following chunk.
		it.c++
		it.i = 0
	}
	return it
}

// First returns an iterator at the highest-impact entry.
func (l *List) First() Iterator {
	return Iterator{l: l}
}

// PredBefore returns the last entry strictly before pos in list order —
// the lowest-impact consumed entry relative to a threshold at pos —
// or ok == false when nothing precedes pos.
func (l *List) PredBefore(pos EntryKey) (EntryKey, bool) {
	if l.length == 0 {
		return EntryKey{}, false
	}
	c, i := l.lowerBound(pos)
	if i == 0 {
		if c == 0 {
			return EntryKey{}, false
		}
		prev := l.chunks[c-1]
		return prev[len(prev)-1], true
	}
	return l.chunks[c][i-1], true
}

// Index is the document store plus the inverted lists over it.
type Index struct {
	*Store
	lists map[model.TermID]*List
	// nonEmpty counts lists with at least one entry. The term map
	// deliberately retains emptied lists (see RemoveOldest), so Terms()
	// would otherwise need a full map scan — a dictionary-sized cost on
	// what callers treat as a cheap gauge.
	nonEmpty int
	// batchCounts is ApplyBatch's reusable per-term mutation counter,
	// cleared after every call; batchScratch is the reusable merge
	// space of hot-list rebuilds.
	batchCounts  map[model.TermID]int32
	batchScratch []EntryKey
}

// NewIndex returns an empty index. The seed is accepted for interface
// stability and reproducibility bookkeeping; the sorted-slice lists are
// fully deterministic regardless.
func NewIndex(seed uint64) *Index {
	_ = seed
	return &Index{
		Store: NewStore(),
		lists: make(map[model.TermID]*List),
	}
}

// List returns the inverted list for term t, or nil when no valid
// document contains t.
func (x *Index) List(t model.TermID) *List { return x.lists[t] }

// insertEntry posts one impact entry, maintaining the non-empty count.
func (x *Index) insertEntry(t model.TermID, e EntryKey) {
	l := x.lists[t]
	if l == nil {
		l = newList()
		x.lists[t] = l
	}
	if l.length == 0 {
		x.nonEmpty++
	}
	l.insert(e)
}

// deleteEntry removes one impact entry, maintaining the non-empty count.
func (x *Index) deleteEntry(t model.TermID, e EntryKey) {
	if l := x.lists[t]; l != nil {
		if l.delete(e) && l.length == 0 {
			x.nonEmpty--
		}
	}
}

// Insert adds an arriving document to the store and posts an impact
// entry into the inverted list of each of its terms. It fails on a
// duplicate document id.
func (x *Index) Insert(d *model.Document) error {
	if err := x.Store.Insert(d); err != nil {
		return err
	}
	for _, p := range d.Postings {
		x.insertEntry(p.Term, EntryKey{W: p.Weight, Doc: d.ID})
	}
	return nil
}

// RemoveOldest removes the FIFO head document and its impact entries,
// returning the removed document. It returns nil on an empty index.
// Emptied lists are kept in the term map: at realistic dictionary
// sparsity the same rare terms keep reappearing, and recreating a list
// per reappearance costs two allocations per term per event — measured
// as a third of the whole per-event index cost. The retained residue is
// bounded by the dictionary size.
func (x *Index) RemoveOldest() *model.Document {
	d := x.Store.RemoveOldest()
	if d == nil {
		return nil
	}
	for _, p := range d.Postings {
		x.deleteEntry(p.Term, EntryKey{W: p.Weight, Doc: d.ID})
	}
	return d
}

// Terms returns the number of terms with non-empty inverted lists, in
// O(1) via a counter maintained by Insert/RemoveOldest.
func (x *Index) Terms() int { return x.nonEmpty }

// BatchResult reports what one ApplyBatch call actually did.
type BatchResult struct {
	// Expired holds the documents that were valid before the epoch and
	// expired during it, in FIFO (arrival) order.
	Expired []*model.Document
	// Dropped is the number of leading arrivals that expired within the
	// same epoch (arrivals[:Dropped]); their postings were never indexed.
	// Expirations pop in FIFO order, so the dropped arrivals always form
	// a prefix of the batch and arrivals[Dropped:] are the survivors.
	Dropped int
	// Inserts and Deletes count the impact entries actually posted and
	// removed — same-epoch transients contribute to neither.
	Inserts int
	Deletes int
}

// ApplyBatch applies one epoch of the stream in a single pass: it
// appends the arriving documents to the FIFO store in order, pops
// expired documents from the head while expired says so (the window
// policy bound to the epoch's end time; it must be monotone in both
// arguments, as count- and time-based sliding windows are), and then
// mutates the inverted lists with the epoch's *net* postings, grouped
// per term so each touched list is edited in one pass. Documents that
// arrive and expire within the same epoch occupy window slots while the
// epoch plays out but are never posted to the lists.
//
// Validation is all-or-nothing: a duplicate document id (against the
// store or within the batch) fails the call before any mutation.
func (x *Index) ApplyBatch(arrivals []*model.Document, expired func(oldest *model.Document, count int) bool) (BatchResult, error) {
	var res BatchResult
	ids := make(map[model.DocID]struct{}, len(arrivals))
	for _, d := range arrivals {
		if _, dup := x.Store.Get(d.ID); dup {
			return res, fmt.Errorf("invindex: duplicate document id %d", d.ID)
		}
		if _, dup := ids[d.ID]; dup {
			return res, fmt.Errorf("invindex: duplicate document id %d within batch", d.ID)
		}
		ids[d.ID] = struct{}{}
	}
	for _, d := range arrivals {
		if err := x.Store.Insert(d); err != nil {
			return res, err // unreachable after validation
		}
	}
	for {
		oldest := x.Store.Oldest()
		if oldest == nil || !expired(oldest, x.Store.Len()) {
			break
		}
		x.Store.RemoveOldest()
		if _, transient := ids[oldest.ID]; transient {
			res.Dropped++
		} else {
			res.Expired = append(res.Expired, oldest)
		}
	}

	// Net posting mutations. Grouping a term's mutations to apply them
	// in one list pass only pays off for hot terms — Zipf-head lists
	// collecting a meaningful number of entries per epoch; at realistic
	// dictionary sparsity the vast majority of touched terms see one or
	// two mutations, where buffering costs more than the point
	// operations it saves. So a cheap counting pass finds the hot
	// terms, cold terms take direct point operations with no buffering,
	// and only hot terms are grouped and merge-applied.
	counts := x.batchCounts
	if counts == nil {
		counts = make(map[model.TermID]int32)
		x.batchCounts = counts
	}
	survivors := arrivals[res.Dropped:]
	for _, d := range survivors {
		for _, p := range d.Postings {
			counts[p.Term]++
		}
		res.Inserts += len(d.Postings)
	}
	for _, d := range res.Expired {
		for _, p := range d.Postings {
			counts[p.Term]++
		}
		res.Deletes += len(d.Postings)
	}
	type listMut struct{ ins, del []EntryKey }
	var muts map[model.TermID]listMut
	// hot reports whether term t's mutations are worth grouping: enough
	// of them in absolute terms AND a meaningful fraction of the
	// current list, mirroring applyBatch's rebuild condition — there is
	// no point buffering mutations that will be applied as point
	// operations anyway.
	hot := func(t model.TermID) bool {
		c := counts[t]
		if c < hotTermMutations {
			return false
		}
		l := x.lists[t]
		return l == nil || int(c)*2 >= l.length
	}
	for _, d := range res.Expired {
		for _, p := range d.Postings {
			e := EntryKey{W: p.Weight, Doc: d.ID}
			if !hot(p.Term) {
				x.deleteEntry(p.Term, e)
				continue
			}
			if muts == nil {
				muts = make(map[model.TermID]listMut)
			}
			mu := muts[p.Term]
			mu.del = append(mu.del, e)
			muts[p.Term] = mu
		}
	}
	for _, d := range survivors {
		for _, p := range d.Postings {
			e := EntryKey{W: p.Weight, Doc: d.ID}
			if !hot(p.Term) {
				x.insertEntry(p.Term, e)
				continue
			}
			if muts == nil {
				muts = make(map[model.TermID]listMut)
			}
			mu := muts[p.Term]
			mu.ins = append(mu.ins, e)
			muts[p.Term] = mu
		}
	}
	clear(counts)
	for t, mu := range muts {
		sort.Slice(mu.ins, func(i, j int) bool { return Before(mu.ins[i], mu.ins[j]) })
		sort.Slice(mu.del, func(i, j int) bool { return Before(mu.del[i], mu.del[j]) })
		l := x.lists[t]
		if l == nil {
			l = newList()
			x.lists[t] = l
		}
		wasEmpty := l.length == 0
		x.batchScratch = l.applyBatch(mu.ins, mu.del, x.batchScratch)
		if wasEmpty && l.length > 0 {
			x.nonEmpty++
		} else if !wasEmpty && l.length == 0 {
			x.nonEmpty--
		}
	}
	return res, nil
}

// MemoryBytes estimates the index's heap footprint: the FIFO store plus
// every inverted list's chunk storage and directory, plus the term map
// (estimated at Go's measured per-entry bucket cost).
func (x *Index) MemoryBytes() uint64 {
	const mapEntry = 48
	b := x.Store.MemoryBytes() + uint64(len(x.lists))*mapEntry
	for _, l := range x.lists {
		b += 56 + uint64(cap(l.chunks))*24 + uint64(cap(l.spare))*16
		for _, ch := range l.chunks {
			b += uint64(cap(ch)) * 16
		}
	}
	return b
}

// hotTermMutations is the per-term mutation count at which ApplyBatch
// switches from direct point operations to grouped one-pass
// application. It matches applyBatch's own small-set cutoff.
const hotTermMutations = 8
