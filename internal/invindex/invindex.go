// Package invindex implements the paper's Figure 1 storage layer: a
// FIFO store of the valid (in-window) documents plus an inverted index
// whose per-term lists hold impact entries ⟨d, w_{d,t}⟩ sorted by
// decreasing weight.
//
// List positions are identified by EntryKey values — (weight, doc id)
// pairs under the list's total order — rather than by node references,
// so a stored position (such as a query's local threshold) stays
// meaningful across arbitrary insertions and deletions, including the
// deletion of the entry it was derived from.
package invindex

import (
	"math"
	"sort"

	"ita/internal/model"
)

// EntryKey identifies one impact entry and, by extension, a position in
// an inverted list. Lists are ordered by descending weight with ties
// broken by ascending doc id, so the total order "a before b" is
// a.W > b.W, or a.W == b.W and a.Doc < b.Doc.
type EntryKey struct {
	W   float64
	Doc model.DocID
}

// Before reports whether a precedes b in list order (closer to the head,
// i.e. higher impact).
func Before(a, b EntryKey) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	return a.Doc < b.Doc
}

// Top returns the sentinel position before every possible entry. A
// local threshold at Top has consumed nothing.
func Top() EntryKey { return EntryKey{W: math.Inf(1), Doc: 0} }

// Bottom returns the sentinel position after every possible entry. A
// local threshold at Bottom has consumed the entire list, and any future
// arrival with a positive weight lands ahead of it.
func Bottom() EntryKey { return EntryKey{W: 0, Doc: math.MaxUint64} }

// List is one inverted list: impact entries in list order, backed by a
// chunked sorted array (a tiered vector). At realistic dictionary
// sizes the vast majority of lists hold a handful of entries
// (window·terms/dictionary ≈ 1 for the paper's configuration) and live
// in a single chunk with no per-entry allocation; the Zipf-head terms,
// which at a 100,000-document window appear in essentially every
// document, spread across chunks so that an insert or delete moves at
// most one chunk's worth of memory instead of O(list) — the difference
// between microseconds and milliseconds per arrival at the paper's
// largest window.
type List struct {
	chunks [][]EntryKey // each non-empty and sorted; chunks ordered
	length int
	spare  []EntryKey // capacity recycled from the last emptied chunk
}

// maxChunk bounds chunk size; a full chunk splits in two. 256 entries
// (4 KiB of EntryKeys) keeps the memmove within a couple of cache
// lines' worth of pages while keeping the chunk directory tiny.
const maxChunk = 256

func newList() *List { return &List{} }

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

// chunkFor returns the index of the chunk that does (or would) contain
// pos: the first chunk whose last element is not before pos, clamped to
// the final chunk.
func (l *List) chunkFor(pos EntryKey) int {
	n := len(l.chunks)
	c := sort.Search(n, func(i int) bool {
		ch := l.chunks[i]
		return !Before(ch[len(ch)-1], pos)
	})
	if c == n && n > 0 {
		c = n - 1
	}
	return c
}

// lowerBound locates the first entry not before pos as a (chunk,
// offset) pair; offset may equal the chunk length (insertion at the
// very end).
func (l *List) lowerBound(pos EntryKey) (int, int) {
	if len(l.chunks) == 0 {
		return 0, 0
	}
	c := l.chunkFor(pos)
	ch := l.chunks[c]
	i := sort.Search(len(ch), func(i int) bool { return !Before(ch[i], pos) })
	return c, i
}

func (l *List) insert(e EntryKey) {
	if len(l.chunks) == 0 {
		first := l.spare
		if first == nil {
			first = make([]EntryKey, 0, 8)
		}
		l.spare = nil
		l.chunks = append(l.chunks, append(first, e))
		l.length++
		return
	}
	c, i := l.lowerBound(e)
	ch := l.chunks[c]
	ch = append(ch, EntryKey{})
	copy(ch[i+1:], ch[i:])
	ch[i] = e
	l.chunks[c] = ch
	l.length++
	if len(ch) > maxChunk {
		// Split the full chunk in half; the right half is a fresh
		// allocation so the halves stop sharing growth.
		mid := len(ch) / 2
		right := append(make([]EntryKey, 0, maxChunk), ch[mid:]...)
		l.chunks[c] = ch[:mid:mid]
		l.chunks = append(l.chunks, nil)
		copy(l.chunks[c+2:], l.chunks[c+1:])
		l.chunks[c+1] = right
	}
}

func (l *List) delete(e EntryKey) bool {
	if len(l.chunks) == 0 {
		return false
	}
	c, i := l.lowerBound(e)
	ch := l.chunks[c]
	if i >= len(ch) || ch[i] != e {
		return false
	}
	copy(ch[i:], ch[i+1:])
	l.chunks[c] = ch[:len(ch)-1]
	l.length--
	if len(l.chunks[c]) == 0 {
		if l.length == 0 {
			l.spare = l.chunks[c][:0]
		}
		l.chunks = append(l.chunks[:c], l.chunks[c+1:]...)
	}
	return true
}

// Iterator walks a list from a position towards lower impacts. It stays
// valid only while the list is not modified.
type Iterator struct {
	l *List
	c int // chunk index
	i int // offset within chunk
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	return it.l != nil && it.c < len(it.l.chunks) && it.i < len(it.l.chunks[it.c])
}

// Next advances towards the tail (lower impact).
func (it *Iterator) Next() {
	it.i++
	if it.c < len(it.l.chunks) && it.i >= len(it.l.chunks[it.c]) {
		it.c++
		it.i = 0
	}
}

// Key returns the current entry; the iterator must be valid.
func (it *Iterator) Key() EntryKey { return it.l.chunks[it.c][it.i] }

// SeekGE returns an iterator at the first entry at or after pos in list
// order — the resume point for a threshold stored as pos.
func (l *List) SeekGE(pos EntryKey) Iterator {
	if l.length == 0 {
		return Iterator{l: l}
	}
	c, i := l.lowerBound(pos)
	it := Iterator{l: l, c: c, i: i}
	if c < len(l.chunks) && i >= len(l.chunks[c]) {
		// Insertion point at the end of a chunk: the next real entry
		// starts the following chunk.
		it.c++
		it.i = 0
	}
	return it
}

// First returns an iterator at the highest-impact entry.
func (l *List) First() Iterator {
	return Iterator{l: l}
}

// PredBefore returns the last entry strictly before pos in list order —
// the lowest-impact consumed entry relative to a threshold at pos —
// or ok == false when nothing precedes pos.
func (l *List) PredBefore(pos EntryKey) (EntryKey, bool) {
	if l.length == 0 {
		return EntryKey{}, false
	}
	c, i := l.lowerBound(pos)
	if i == 0 {
		if c == 0 {
			return EntryKey{}, false
		}
		prev := l.chunks[c-1]
		return prev[len(prev)-1], true
	}
	return l.chunks[c][i-1], true
}

// Index is the document store plus the inverted lists over it.
type Index struct {
	*Store
	lists map[model.TermID]*List
	// nonEmpty counts lists with at least one entry. The term map
	// deliberately retains emptied lists (see RemoveOldest), so Terms()
	// would otherwise need a full map scan — a dictionary-sized cost on
	// what callers treat as a cheap gauge.
	nonEmpty int
}

// NewIndex returns an empty index. The seed is accepted for interface
// stability and reproducibility bookkeeping; the sorted-slice lists are
// fully deterministic regardless.
func NewIndex(seed uint64) *Index {
	_ = seed
	return &Index{
		Store: NewStore(),
		lists: make(map[model.TermID]*List),
	}
}

// List returns the inverted list for term t, or nil when no valid
// document contains t.
func (x *Index) List(t model.TermID) *List { return x.lists[t] }

// Insert adds an arriving document to the store and posts an impact
// entry into the inverted list of each of its terms. It fails on a
// duplicate document id.
func (x *Index) Insert(d *model.Document) error {
	if err := x.Store.Insert(d); err != nil {
		return err
	}
	for _, p := range d.Postings {
		l := x.lists[p.Term]
		if l == nil {
			l = newList()
			x.lists[p.Term] = l
		}
		if l.length == 0 {
			x.nonEmpty++
		}
		l.insert(EntryKey{W: p.Weight, Doc: d.ID})
	}
	return nil
}

// RemoveOldest removes the FIFO head document and its impact entries,
// returning the removed document. It returns nil on an empty index.
// Emptied lists are kept in the term map: at realistic dictionary
// sparsity the same rare terms keep reappearing, and recreating a list
// per reappearance costs two allocations per term per event — measured
// as a third of the whole per-event index cost. The retained residue is
// bounded by the dictionary size.
func (x *Index) RemoveOldest() *model.Document {
	d := x.Store.RemoveOldest()
	if d == nil {
		return nil
	}
	for _, p := range d.Postings {
		if l := x.lists[p.Term]; l != nil {
			if l.delete(EntryKey{W: p.Weight, Doc: d.ID}) && l.length == 0 {
				x.nonEmpty--
			}
		}
	}
	return d
}

// Terms returns the number of terms with non-empty inverted lists, in
// O(1) via a counter maintained by Insert/RemoveOldest.
func (x *Index) Terms() int { return x.nonEmpty }
