// Package invindex implements the paper's Figure 1 storage layer: a
// FIFO store of the valid (in-window) documents plus an inverted index
// whose per-term lists hold impact entries ⟨d, w_{d,t}⟩ sorted by
// decreasing weight.
//
// List positions are identified by EntryKey values — (weight, doc id)
// pairs under the list's total order — rather than by node references,
// so a stored position (such as a query's local threshold) stays
// meaningful across arbitrary insertions and deletions, including the
// deletion of the entry it was derived from.
//
// Two physical layouts implement the same list contract (see Layout):
// chunked sorted slices of raw EntryKeys, and block-compressed postings
// (block.go) that pack each 128-entry block's doc ids and weights at
// per-block fixed bit widths behind max-weight/min-weight/count summary
// metadata. Every observable — iteration order, seeks, predecessors,
// lengths, batch semantics — is identical between the layouts; the
// metamorphic differential twin holds them byte-identical through the
// whole engine stack.
package invindex

import (
	"fmt"
	"math"
	"sort"

	"ita/internal/model"
)

// EntryKey identifies one impact entry and, by extension, a position in
// an inverted list. Lists are ordered by descending weight with ties
// broken by ascending doc id, so the total order "a before b" is
// a.W > b.W, or a.W == b.W and a.Doc < b.Doc.
type EntryKey struct {
	W   float64
	Doc model.DocID
}

// Before reports whether a precedes b in list order (closer to the head,
// i.e. higher impact).
func Before(a, b EntryKey) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	return a.Doc < b.Doc
}

// Top returns the sentinel position before every possible entry. A
// local threshold at Top has consumed nothing.
func Top() EntryKey { return EntryKey{W: math.Inf(1), Doc: 0} }

// Bottom returns the sentinel position after every possible entry. A
// local threshold at Bottom has consumed the entire list, and any future
// arrival with a positive weight lands ahead of it.
func Bottom() EntryKey { return EntryKey{W: 0, Doc: math.MaxUint64} }

// Layout selects the physical representation of the inverted lists.
type Layout uint8

const (
	// LayoutBlocked (the default) stores each list as flat compressed
	// blocks: frame-of-reference doc ids and dictionary- or FOR-coded
	// weights at per-block fixed widths, with per-block max-weight,
	// min-weight and entry-count metadata routing seeks and predecessor
	// queries through a block directory. Roughly a third the bytes per
	// posting of the slice layout on natural workloads, which is what
	// makes 100x-larger windows fit in memory.
	LayoutBlocked Layout = iota
	// LayoutSlices stores each list as chunked sorted slices of raw
	// EntryKeys — the original layout, kept as the differential-twin
	// reference and selectable via the facade's WithPostingLayout.
	LayoutSlices
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutBlocked:
		return "blocked"
	case LayoutSlices:
		return "slices"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// List is one inverted list: impact entries in list order. The slice
// layout backs it with a chunked sorted array (a tiered vector); the
// blocked layout with the compressed blocks of block.go. At realistic
// dictionary sizes the vast majority of lists hold a handful of entries
// (window·terms/dictionary ≈ 1 for the paper's configuration) and live
// in a single chunk or block with no per-entry allocation; the
// Zipf-head terms, which at a 100,000-document window appear in
// essentially every document, spread across chunks/blocks so that an
// insert or delete rewrites at most one chunk's or block's worth of
// memory instead of O(list) — the difference between microseconds and
// milliseconds per arrival at the paper's largest window.
type List struct {
	chunks [][]EntryKey // slice layout: each non-empty and sorted
	spare  []EntryKey   // slice layout: capacity recycled from the last emptied chunk
	blocks []block      // blocked layout: compressed blocks in list order
	length int
	// nraw counts the blocked layout's currently decoded blocks — the
	// point-mutation working set awaiting a repack (see Index.compact).
	nraw    int
	blocked bool
	// queued marks the list as sitting in the index's compaction queue.
	queued bool
}

// maxChunk bounds chunk size; a full chunk splits in two. 256 entries
// (4 KiB of EntryKeys) keeps the memmove within a couple of cache
// lines' worth of pages while keeping the chunk directory tiny.
const maxChunk = 256

func newList() *List        { return &List{} }
func newBlockedList() *List { return &List{blocked: true} }

func newListLayout(lay Layout) *List {
	return &List{blocked: lay == LayoutBlocked}
}

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

// chunkFor returns the index of the chunk that does (or would) contain
// pos: the first chunk whose last element is not before pos, clamped to
// the final chunk.
func (l *List) chunkFor(pos EntryKey) int {
	n := len(l.chunks)
	c := sort.Search(n, func(i int) bool {
		ch := l.chunks[i]
		return !Before(ch[len(ch)-1], pos)
	})
	if c == n && n > 0 {
		c = n - 1
	}
	return c
}

// lowerBound locates the first entry not before pos as a (chunk,
// offset) pair; offset may equal the chunk length (insertion at the
// very end). Blocked lists route through the block directory instead:
// the per-block last-entry summaries find the one candidate block and
// the O(1) random access of the codec binary-searches inside it, so no
// block below the target is ever decoded.
func (l *List) lowerBound(pos EntryKey) (int, int) {
	if l.blocked {
		return l.blockBound(pos)
	}
	if len(l.chunks) == 0 {
		return 0, 0
	}
	c := l.chunkFor(pos)
	ch := l.chunks[c]
	i := sort.Search(len(ch), func(i int) bool { return !Before(ch[i], pos) })
	return c, i
}

// blockBound is lowerBound over the block directory.
func (l *List) blockBound(pos EntryKey) (int, int) {
	n := len(l.blocks)
	if n == 0 {
		return 0, 0
	}
	c := sort.Search(n, func(i int) bool { return !Before(l.blocks[i].last, pos) })
	if c == n {
		c = n - 1
	}
	b := &l.blocks[c]
	i := sort.Search(int(b.count), func(i int) bool { return !Before(b.at(i), pos) })
	return c, i
}

func (l *List) insert(e EntryKey) {
	if l.blocked {
		l.blockInsert(e)
		return
	}
	if len(l.chunks) == 0 {
		first := l.spare
		if first == nil {
			first = make([]EntryKey, 0, 8)
		}
		l.spare = nil
		l.chunks = append(l.chunks, append(first, e))
		l.length++
		return
	}
	c, i := l.lowerBound(e)
	ch := l.chunks[c]
	ch = append(ch, EntryKey{})
	copy(ch[i+1:], ch[i:])
	ch[i] = e
	l.chunks[c] = ch
	l.length++
	if len(ch) > maxChunk {
		// Split the full chunk in half; the right half is a fresh
		// allocation so the halves stop sharing growth.
		mid := len(ch) / 2
		right := append(make([]EntryKey, 0, maxChunk), ch[mid:]...)
		l.chunks[c] = ch[:mid:mid]
		l.chunks = append(l.chunks, nil)
		copy(l.chunks[c+2:], l.chunks[c+1:])
		l.chunks[c+1] = right
	}
}

func (l *List) delete(e EntryKey) bool {
	if l.blocked {
		return l.blockDelete(e)
	}
	if len(l.chunks) == 0 {
		return false
	}
	c, i := l.lowerBound(e)
	ch := l.chunks[c]
	if i >= len(ch) || ch[i] != e {
		return false
	}
	copy(ch[i:], ch[i+1:])
	l.chunks[c] = ch[:len(ch)-1]
	l.length--
	if len(l.chunks[c]) == 0 {
		if l.length == 0 {
			l.spare = l.chunks[c][:0]
		}
		l.chunks = append(l.chunks[:c], l.chunks[c+1:]...)
	}
	return true
}

// blockInsert is a point insert on the blocked layout: the target
// block is decoded once (block.decode — an O(block) one-time cost) and
// the splice itself is a sub-block memmove, exactly the cost profile of
// the slice layout's chunks. The block stays decoded through further
// point churn and is re-packed by the list's next merge rebuild.
func (l *List) blockInsert(e EntryKey) {
	l.length++
	if len(l.blocks) == 0 {
		l.blocks = append(l.blocks, rawBlock(append(make([]EntryKey, 0, 8), e)))
		l.nraw = 1
		return
	}
	c, i := l.blockBound(e)
	b := &l.blocks[c]
	if b.raw == nil {
		b.decode()
		l.nraw++
	}
	b.raw = append(b.raw, EntryKey{})
	copy(b.raw[i+1:], b.raw[i:])
	b.raw[i] = e
	if len(b.raw) > blockMax {
		// Split the full block in half; the right half is a fresh
		// allocation so the halves stop sharing growth.
		es := b.raw
		mid := len(es) / 2
		right := append(make([]EntryKey, 0, blockMax), es[mid:]...)
		l.blocks[c] = rawBlock(es[:mid:mid])
		l.blocks = append(l.blocks, block{})
		copy(l.blocks[c+2:], l.blocks[c+1:])
		l.blocks[c+1] = rawBlock(right)
		l.nraw++
		return
	}
	b.refresh()
}

// blockDelete is the point delete analog of blockInsert.
func (l *List) blockDelete(e EntryKey) bool {
	if len(l.blocks) == 0 {
		return false
	}
	c, i := l.blockBound(e)
	b := &l.blocks[c]
	if i >= int(b.count) || b.at(i) != e {
		return false
	}
	l.length--
	if b.count == 1 {
		if b.raw != nil {
			l.nraw--
		}
		l.blocks = append(l.blocks[:c], l.blocks[c+1:]...)
		if l.length == 0 {
			l.blocks = nil
		}
		return true
	}
	if b.raw == nil {
		b.decode()
		l.nraw++
	}
	b.raw = append(b.raw[:i], b.raw[i+1:]...)
	b.refresh()
	return true
}

// applyBatch applies one epoch's mutations to the list: ins entries are
// inserted and del entries removed, both given in list order. For small
// mutation sets it falls back to the point operations; once the batch is
// a meaningful fraction of the list it rewrites the list in a single
// merge pass, so B inserts into a hot Zipf-head list cost one O(list)
// sweep instead of B chunk searches and B memmoves — the index-level
// amortization of the epoch pipeline. Unmatched delete keys are
// skipped. scratch is reusable merge space (may be nil); the possibly
// grown scratch is returned for the caller to keep.
func (l *List) applyBatch(ins, del, scratch []EntryKey) []EntryKey {
	m := len(ins) + len(del)
	if m == 0 {
		return scratch
	}
	// Point operations win whenever the mutation set is small — in
	// absolute terms (each point op is a binary search plus one
	// sub-chunk memmove or block re-encode, allocation-free, and at
	// realistic dictionary sparsity almost every touched list takes a
	// handful of mutations) or relative to the list (the rebuild walks
	// everything). The rebuild pays off only once a large fraction of
	// the list changes in one epoch: one merge sweep and one allocation
	// replace m searches and m memmoves or re-encodes.
	if m < hotTermMutations || m*2 < l.length {
		for _, e := range del {
			l.delete(e)
		}
		for _, e := range ins {
			l.insert(e)
		}
		return scratch
	}
	merged := scratch[:0]
	ii, di := 0, 0
	take := func(e EntryKey) {
		for ii < len(ins) && Before(ins[ii], e) {
			merged = append(merged, ins[ii])
			ii++
		}
		for di < len(del) && Before(del[di], e) {
			di++ // delete key not present; tolerate and move on
		}
		if di < len(del) && del[di] == e {
			di++
			return
		}
		merged = append(merged, e)
	}
	if l.blocked {
		for bi := range l.blocks {
			b := &l.blocks[bi]
			for i := 0; i < int(b.count); i++ {
				take(b.at(i))
			}
		}
	} else {
		for _, ch := range l.chunks {
			for _, e := range ch {
				take(e)
			}
		}
	}
	merged = append(merged, ins[ii:]...)
	l.length = len(merged)
	if l.blocked {
		l.rebuildBlocks(merged)
		return merged
	}
	if l.length == 0 {
		l.chunks = nil
		return merged
	}
	// Re-chunk at half fill so subsequent point inserts have headroom
	// before forcing splits, matching the steady state split leaves.
	// All chunks slice one backing array (capacity-capped, so a growing
	// chunk copies out instead of clobbering its neighbor), keeping the
	// rebuild at a single persistent allocation.
	const target = maxChunk / 2
	backing := make([]EntryKey, len(merged))
	copy(backing, merged)
	l.chunks = l.chunks[:0]
	for start := 0; start < len(backing); start += target {
		end := start + target
		if end > len(backing) {
			end = len(backing)
		}
		l.chunks = append(l.chunks, backing[start:end:end])
	}
	return merged
}

// rebuildBlocks re-encodes the whole list from merged at blockTarget
// fill, reusing the block directory's capacity.
func (l *List) rebuildBlocks(merged []EntryKey) {
	l.nraw = 0
	if len(merged) == 0 {
		l.blocks = nil
		return
	}
	l.blocks = l.blocks[:0]
	for start := 0; start < len(merged); start += blockTarget {
		end := start + blockTarget
		if end > len(merged) {
			end = len(merged)
		}
		l.blocks = append(l.blocks, encodeBlock(merged[start:end]))
	}
}

// repack re-encodes the list's decoded blocks until none remain or
// budget (in entries) runs out, returning the remaining budget. Blocks
// keep their boundaries — repacking is local, never a list rewrite.
func (l *List) repack(budget int) int {
	for i := range l.blocks {
		if l.nraw == 0 || budget <= 0 {
			break
		}
		b := &l.blocks[i]
		if b.raw == nil {
			continue
		}
		budget -= len(b.raw)
		l.blocks[i] = encodeBlock(b.raw)
		l.nraw--
	}
	return budget
}

// Iterator walks a list from a position towards lower impacts. It stays
// valid only while the list is not modified. The current entry is
// decoded once per position into k, so the refill loops that re-read
// Key() many times per consumed entry pay the (blocked-layout) decode
// exactly once.
type Iterator struct {
	l  *List
	c  int // chunk/block index
	i  int // offset within chunk/block
	n  int // entries consumed inside the current block (blocked layout)
	ok bool
	k  EntryKey
	// buf caches a whole packed block decoded in one pass. A shallow
	// read (a refill resuming near its stored threshold) pays per-entry
	// extraction and never allocates; once a descent has consumed
	// seqDecodeAfter entries of one packed block it is a deep scan, and
	// decoding the rest of the block in one tight pass makes every
	// further Key a plain slice read.
	dc  int // block index buf holds
	buf []EntryKey
}

// seqDecodeAfter is the per-block consumption depth at which an
// iterator switches from per-entry extraction to whole-block decode.
const seqDecodeAfter = 16

// load decodes the entry at the iterator's position into the cache,
// clearing ok when the position is past the end.
func (it *Iterator) load() {
	l := it.l
	if l == nil {
		it.ok = false
		return
	}
	if l.blocked {
		if it.c >= len(l.blocks) {
			it.ok = false
			return
		}
		it.ok = true
		b := &l.blocks[it.c]
		if b.raw != nil {
			it.k = b.raw[it.i]
			return
		}
		if it.dc == it.c && len(it.buf) > 0 {
			it.k = it.buf[it.i]
			return
		}
		if it.n >= seqDecodeAfter {
			it.buf = b.appendTo(it.buf[:0])
			it.dc = it.c
			it.k = it.buf[it.i]
			return
		}
		it.k = b.at(it.i)
		return
	}
	if it.c >= len(l.chunks) || it.i >= len(l.chunks[it.c]) {
		it.ok = false
		return
	}
	it.ok = true
	it.k = l.chunks[it.c][it.i]
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.ok }

// Next advances towards the tail (lower impact).
func (it *Iterator) Next() {
	it.i++
	l := it.l
	if l.blocked {
		it.n++
		if it.c < len(l.blocks) && it.i >= int(l.blocks[it.c].count) {
			it.c++
			it.i = 0
			it.n = 0
		}
	} else {
		if it.c < len(l.chunks) && it.i >= len(l.chunks[it.c]) {
			it.c++
			it.i = 0
		}
	}
	it.load()
}

// Key returns the current entry; the iterator must be valid.
func (it *Iterator) Key() EntryKey { return it.k }

// SeekGE returns an iterator at the first entry at or after pos in list
// order — the resume point for a threshold stored as pos.
func (l *List) SeekGE(pos EntryKey) Iterator {
	if l.length == 0 {
		return Iterator{l: l}
	}
	c, i := l.lowerBound(pos)
	it := Iterator{l: l, c: c, i: i}
	if l.blocked {
		if c < len(l.blocks) && i >= int(l.blocks[c].count) {
			it.c++
			it.i = 0
		}
	} else if c < len(l.chunks) && i >= len(l.chunks[c]) {
		// Insertion point at the end of a chunk: the next real entry
		// starts the following chunk.
		it.c++
		it.i = 0
	}
	it.load()
	return it
}

// First returns an iterator at the highest-impact entry.
func (l *List) First() Iterator {
	it := Iterator{l: l}
	it.load()
	return it
}

// PredBefore returns the last entry strictly before pos in list order —
// the lowest-impact consumed entry relative to a threshold at pos —
// or ok == false when nothing precedes pos.
func (l *List) PredBefore(pos EntryKey) (EntryKey, bool) {
	if l.length == 0 {
		return EntryKey{}, false
	}
	c, i := l.lowerBound(pos)
	if l.blocked {
		if i == 0 {
			if c == 0 {
				return EntryKey{}, false
			}
			return l.blocks[c-1].last, true
		}
		return l.blocks[c].at(i - 1), true
	}
	if i == 0 {
		if c == 0 {
			return EntryKey{}, false
		}
		prev := l.chunks[c-1]
		return prev[len(prev)-1], true
	}
	return l.chunks[c][i-1], true
}

// Index is the document store plus the inverted lists over it.
type Index struct {
	*Store
	lists  map[model.TermID]*List
	layout Layout
	// nonEmpty counts lists with at least one entry. The term map
	// deliberately retains emptied lists (see RemoveOldest), so Terms()
	// would otherwise need a full map scan — a dictionary-sized cost on
	// what callers treat as a cheap gauge.
	nonEmpty int
	// batchCounts is ApplyBatch's reusable per-term mutation counter,
	// cleared after every call; batchScratch is the reusable merge
	// space of hot-list rebuilds, with batchLow counting consecutive
	// low-usage epochs towards a shrink (see shrinkBatchScratch).
	batchCounts  map[model.TermID]int32
	batchScratch []EntryKey
	batchLow     int
	// dirty queues blocked lists holding decoded (point-mutated) blocks
	// for the budgeted repack at the next epoch boundary (see compact).
	dirty []*List
}

// NewIndex returns an empty index in the default (blocked) layout. The
// seed is accepted for interface stability and reproducibility
// bookkeeping; both layouts are fully deterministic regardless.
func NewIndex(seed uint64) *Index { return NewIndexLayout(seed, LayoutBlocked) }

// NewIndexLayout returns an empty index in the given posting layout.
func NewIndexLayout(seed uint64, lay Layout) *Index {
	_ = seed
	return &Index{
		Store:  NewStore(),
		lists:  make(map[model.TermID]*List),
		layout: lay,
	}
}

// Layout returns the index's posting layout.
func (x *Index) Layout() Layout { return x.layout }

// List returns the inverted list for term t, or nil when no valid
// document contains t.
func (x *Index) List(t model.TermID) *List { return x.lists[t] }

// insertEntry posts one impact entry, maintaining the non-empty count.
func (x *Index) insertEntry(t model.TermID, e EntryKey) {
	l := x.lists[t]
	if l == nil {
		l = newListLayout(x.layout)
		x.lists[t] = l
	}
	if l.length == 0 {
		x.nonEmpty++
	}
	l.insert(e)
	x.markDirty(l)
}

// deleteEntry removes one impact entry, maintaining the non-empty count.
func (x *Index) deleteEntry(t model.TermID, e EntryKey) {
	if l := x.lists[t]; l != nil {
		if l.delete(e) && l.length == 0 {
			x.nonEmpty--
		}
		x.markDirty(l)
	}
}

// markDirty queues a blocked list whose point mutations left decoded
// blocks behind, so the next epoch boundary can repack it.
func (x *Index) markDirty(l *List) {
	if l.nraw > 0 && !l.queued {
		l.queued = true
		x.dirty = append(x.dirty, l)
	}
}

// compact re-encodes the decoded blocks queued by point mutations, at
// most budget entries' worth (one queue pass maximum). ApplyBatch calls
// it with a budget proportional to the epoch's own mutation work, so
// compaction can never dominate an epoch; whatever the budget leaves
// decoded stays queued for the following epochs. Under the epoch
// pipeline the index therefore converges to fully packed lists a
// bounded distance behind the write front, while an engine driving
// point mutations only (no epochs) keeps its mutation working set
// decoded — which is exactly the slice layout's cost, and the right
// trade for a list the next mutation is about to splice again.
func (x *Index) compact(budget int) {
	n := len(x.dirty)
	for i := 0; i < n && budget > 0 && len(x.dirty) > 0; i++ {
		l := x.dirty[0]
		x.dirty = x.dirty[1:]
		budget = l.repack(budget)
		if l.nraw > 0 {
			x.dirty = append(x.dirty, l) // budget ran out mid-list
		} else {
			l.queued = false
		}
	}
	if len(x.dirty) == 0 {
		x.dirty = nil
	}
}

// Insert adds an arriving document to the store and posts an impact
// entry into the inverted list of each of its terms. It fails on a
// duplicate document id.
func (x *Index) Insert(d *model.Document) error {
	if err := x.Store.Insert(d); err != nil {
		return err
	}
	for _, p := range d.Postings {
		x.insertEntry(p.Term, EntryKey{W: p.Weight, Doc: d.ID})
	}
	return nil
}

// RemoveOldest removes the FIFO head document and its impact entries,
// returning the removed document. It returns nil on an empty index.
// Emptied lists are kept in the term map: at realistic dictionary
// sparsity the same rare terms keep reappearing, and recreating a list
// per reappearance costs two allocations per term per event — measured
// as a third of the whole per-event index cost. The retained residue is
// bounded by the dictionary size.
func (x *Index) RemoveOldest() *model.Document {
	d := x.Store.RemoveOldest()
	if d == nil {
		return nil
	}
	for _, p := range d.Postings {
		x.deleteEntry(p.Term, EntryKey{W: p.Weight, Doc: d.ID})
	}
	return d
}

// Terms returns the number of terms with non-empty inverted lists, in
// O(1) via a counter maintained by Insert/RemoveOldest.
func (x *Index) Terms() int { return x.nonEmpty }

// BatchResult reports what one ApplyBatch call actually did.
type BatchResult struct {
	// Expired holds the documents that were valid before the epoch and
	// expired during it, in FIFO (arrival) order.
	Expired []*model.Document
	// Dropped is the number of leading arrivals that expired within the
	// same epoch (arrivals[:Dropped]); their postings were never indexed.
	// Expirations pop in FIFO order, so the dropped arrivals always form
	// a prefix of the batch and arrivals[Dropped:] are the survivors.
	Dropped int
	// Inserts and Deletes count the impact entries actually posted and
	// removed — same-epoch transients contribute to neither.
	Inserts int
	Deletes int
}

// ApplyBatch applies one epoch of the stream in a single pass: it
// appends the arriving documents to the FIFO store in order, pops
// expired documents from the head while expired says so (the window
// policy bound to the epoch's end time; it must be monotone in both
// arguments, as count- and time-based sliding windows are), and then
// mutates the inverted lists with the epoch's *net* postings, grouped
// per term so each touched list is edited in one pass. Documents that
// arrive and expire within the same epoch occupy window slots while the
// epoch plays out but are never posted to the lists.
//
// Validation is all-or-nothing: a duplicate document id (against the
// store or within the batch) fails the call before any mutation.
func (x *Index) ApplyBatch(arrivals []*model.Document, expired func(oldest *model.Document, count int) bool) (BatchResult, error) {
	var res BatchResult
	ids := make(map[model.DocID]struct{}, len(arrivals))
	for _, d := range arrivals {
		if _, dup := x.Store.Get(d.ID); dup {
			return res, fmt.Errorf("invindex: duplicate document id %d", d.ID)
		}
		if _, dup := ids[d.ID]; dup {
			return res, fmt.Errorf("invindex: duplicate document id %d within batch", d.ID)
		}
		ids[d.ID] = struct{}{}
	}
	for _, d := range arrivals {
		if err := x.Store.Insert(d); err != nil {
			return res, err // unreachable after validation
		}
	}
	for {
		oldest := x.Store.Oldest()
		if oldest == nil || !expired(oldest, x.Store.Len()) {
			break
		}
		x.Store.RemoveOldest()
		if _, transient := ids[oldest.ID]; transient {
			res.Dropped++
		} else {
			res.Expired = append(res.Expired, oldest)
		}
	}

	// Net posting mutations. Grouping a term's mutations to apply them
	// in one list pass only pays off for hot terms — Zipf-head lists
	// collecting a meaningful number of entries per epoch; at realistic
	// dictionary sparsity the vast majority of touched terms see one or
	// two mutations, where buffering costs more than the point
	// operations it saves. So a cheap counting pass finds the hot
	// terms, cold terms take direct point operations with no buffering,
	// and only hot terms are grouped and merge-applied.
	counts := x.batchCounts
	if counts == nil {
		counts = make(map[model.TermID]int32)
		x.batchCounts = counts
	}
	survivors := arrivals[res.Dropped:]
	for _, d := range survivors {
		for _, p := range d.Postings {
			counts[p.Term]++
		}
		res.Inserts += len(d.Postings)
	}
	for _, d := range res.Expired {
		for _, p := range d.Postings {
			counts[p.Term]++
		}
		res.Deletes += len(d.Postings)
	}
	type listMut struct{ ins, del []EntryKey }
	var muts map[model.TermID]listMut
	// hot reports whether term t's mutations are worth grouping: enough
	// of them in absolute terms AND a meaningful fraction of the
	// current list, mirroring applyBatch's rebuild condition — there is
	// no point buffering mutations that will be applied as point
	// operations anyway.
	hot := func(t model.TermID) bool {
		c := counts[t]
		if c < hotTermMutations {
			return false
		}
		l := x.lists[t]
		return l == nil || int(c)*2 >= l.length
	}
	for _, d := range res.Expired {
		for _, p := range d.Postings {
			e := EntryKey{W: p.Weight, Doc: d.ID}
			if !hot(p.Term) {
				x.deleteEntry(p.Term, e)
				continue
			}
			if muts == nil {
				muts = make(map[model.TermID]listMut)
			}
			mu := muts[p.Term]
			mu.del = append(mu.del, e)
			muts[p.Term] = mu
		}
	}
	for _, d := range survivors {
		for _, p := range d.Postings {
			e := EntryKey{W: p.Weight, Doc: d.ID}
			if !hot(p.Term) {
				x.insertEntry(p.Term, e)
				continue
			}
			if muts == nil {
				muts = make(map[model.TermID]listMut)
			}
			mu := muts[p.Term]
			mu.ins = append(mu.ins, e)
			muts[p.Term] = mu
		}
	}
	clear(counts)
	used := 0
	for t, mu := range muts {
		sort.Slice(mu.ins, func(i, j int) bool { return Before(mu.ins[i], mu.ins[j]) })
		sort.Slice(mu.del, func(i, j int) bool { return Before(mu.del[i], mu.del[j]) })
		l := x.lists[t]
		if l == nil {
			l = newListLayout(x.layout)
			x.lists[t] = l
		}
		wasEmpty := l.length == 0
		x.batchScratch = l.applyBatch(mu.ins, mu.del, x.batchScratch)
		if len(x.batchScratch) > used {
			used = len(x.batchScratch)
		}
		if wasEmpty && l.length > 0 {
			x.nonEmpty++
		} else if !wasEmpty && l.length == 0 {
			x.nonEmpty--
		}
	}
	x.shrinkBatchScratch(used)
	// Epoch boundary: repack what the epoch's point mutations (and any
	// earlier backlog) left decoded, at a budget tied to the epoch's own
	// mutation volume so compaction rides along instead of dominating.
	x.compact(math.MaxInt)
	return res, nil
}

// shrinkBatchScratch bounds the retained capacity of the hot-list merge
// scratch — the same policy core.Maintainer applies to its epoch
// buffers. One unusually large epoch (a burst, a catch-up replay) grows
// the scratch to the biggest list it rebuilt and, without this, that
// high-water capacity is pinned for the index's lifetime. After
// shrinkAfter consecutive epochs using less than a quarter of the
// retained capacity, the scratch is reallocated to twice the recent
// working size.
func (x *Index) shrinkBatchScratch(used int) {
	const (
		minCap      = 256
		shrinkAfter = 16
	)
	if cap(x.batchScratch) <= minCap || used*4 > cap(x.batchScratch) {
		x.batchLow = 0
		return
	}
	x.batchLow++
	if x.batchLow < shrinkAfter {
		return
	}
	x.batchLow = 0
	newCap := used * 2
	if newCap < minCap {
		newCap = minCap
	}
	x.batchScratch = make([]EntryKey, 0, newCap)
}

// listBytes estimates one list's heap footprint (struct, directories,
// entry storage; excludes the shared FIFO store and the term map).
func listBytes(l *List) uint64 {
	// Three slice headers, the length and the layout flag, padded.
	const listStruct = 88
	b := uint64(listStruct)
	if l.blocked {
		const blockStruct = 96 // measured unsafe.Sizeof(block{})
		b += uint64(cap(l.blocks)) * blockStruct
		for i := range l.blocks {
			b += l.blocks[i].bytes()
		}
		return b
	}
	b += uint64(cap(l.chunks))*24 + uint64(cap(l.spare))*16
	for _, ch := range l.chunks {
		b += uint64(cap(ch)) * 16
	}
	return b
}

// MemoryBytes estimates the index's heap footprint: the FIFO store plus
// every inverted list's storage and directory, plus the term map
// (estimated at Go's measured per-entry bucket cost).
func (x *Index) MemoryBytes() uint64 {
	const mapEntry = 48
	b := x.Store.MemoryBytes() + uint64(len(x.lists))*mapEntry
	for _, l := range x.lists {
		b += listBytes(l)
	}
	return b
}

// PostingBytes is the inverted-list portion of MemoryBytes: every
// list's struct, directory and entry storage, excluding the FIFO store
// and the term map. PostingBytes over PostingCount is the
// bytes-per-posting figure the window-sweep benchmark records.
func (x *Index) PostingBytes() uint64 {
	var b uint64
	for _, l := range x.lists {
		b += listBytes(l)
	}
	return b
}

// PostingCount is the total number of impact entries across all lists.
func (x *Index) PostingCount() int {
	n := 0
	for _, l := range x.lists {
		n += l.length
	}
	return n
}

// hotTermMutations is the per-term mutation count at which ApplyBatch
// switches from direct point operations to grouped one-pass
// application. It matches applyBatch's own small-set cutoff.
const hotTermMutations = 8
