package invindex

import (
	"fmt"

	"ita/internal/model"
)

// Store is the FIFO list of valid documents from Figure 1 of the paper,
// with O(1) id lookup. It is shared by all engines; only ITA layers
// inverted lists on top of it. The Naïve baseline uses a bare Store so
// that it is not charged for index maintenance it would never perform.
type Store struct {
	docs map[model.DocID]*model.Document
	fifo []*model.Document // arrival order; live region starts at head
	head int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{docs: make(map[model.DocID]*model.Document)}
}

// Len returns the number of valid documents.
func (s *Store) Len() int { return len(s.docs) }

// Get returns a valid document by id.
func (s *Store) Get(id model.DocID) (*model.Document, bool) {
	d, ok := s.docs[id]
	return d, ok
}

// Oldest returns the document at the head of the FIFO, or nil when the
// store is empty.
func (s *Store) Oldest() *model.Document {
	if s.head >= len(s.fifo) {
		return nil
	}
	return s.fifo[s.head]
}

// Insert appends an arriving document. It fails on a duplicate id.
func (s *Store) Insert(d *model.Document) error {
	if _, dup := s.docs[d.ID]; dup {
		return fmt.Errorf("invindex: duplicate document id %d", d.ID)
	}
	s.docs[d.ID] = d
	s.fifo = append(s.fifo, d)
	return nil
}

// RemoveOldest pops and returns the FIFO head, or nil when empty.
func (s *Store) RemoveOldest() *model.Document {
	d := s.Oldest()
	if d == nil {
		return nil
	}
	s.head++
	// Reclaim the drained prefix once it dominates the backing array so
	// the store uses O(window) rather than O(stream) memory.
	if s.head > 1024 && s.head*2 > len(s.fifo) {
		s.fifo = append([]*model.Document(nil), s.fifo[s.head:]...)
		s.head = 0
	}
	delete(s.docs, d.ID)
	return d
}

// MemoryBytes estimates the store's heap footprint: the id map, the
// FIFO backing array, and the documents themselves (struct + postings).
func (s *Store) MemoryBytes() uint64 {
	const mapEntry = 48
	b := uint64(len(s.docs))*mapEntry + uint64(cap(s.fifo))*8
	for i := s.head; i < len(s.fifo); i++ {
		b += 48 + uint64(cap(s.fifo[i].Postings))*16
	}
	return b
}

// Docs calls fn for every valid document in arrival order — the
// full-scan primitive of the Naïve baseline and the test oracle.
func (s *Store) Docs(fn func(d *model.Document)) {
	for i := s.head; i < len(s.fifo); i++ {
		fn(s.fifo[i])
	}
}
