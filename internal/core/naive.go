package core

import (
	"fmt"
	"time"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/topk"
	"ita/internal/window"
)

// Naive is the baseline of §II enhanced, as in the paper's evaluation,
// with the top-kmax materialized-view maintenance of Yi et al. (ICDE
// 2003, the paper's reference [6]): every rescan retrieves the top-kmax
// documents (kmax ≥ k) so that the view tolerates kmax−k+1 top-k
// deletions before the next full-window rescan.
//
// With kmax = k it degenerates to the plain Naïve algorithm. Either
// way, every arriving document is scored against every registered query
// and every expiring document triggers a per-query membership check —
// the costs ITA's threshold trees avoid.
type Naive struct {
	policy  window.Policy
	store   *invindex.Store
	queries map[model.QueryID]*naiveState
	kmaxFn  func(k int) int
	stats   Stats
	seed    uint64
}

type naiveState struct {
	q    *model.Query
	view *topk.ResultSet
	kmax int
	// fence is the least upper bound on the score of any valid document
	// outside the view: min of the initial top-kmax at the last rescan,
	// raised to each evicted score since. A document whose score is at
	// most the fence can be ignored without losing view exactness.
	fence float64
}

// NaiveOption configures a Naive engine.
type NaiveOption func(*Naive)

// WithKmax sets the view size returned by rescans as a function of k.
// The default is Yi et al.'s recommended doubling, kmax = 2k; WithKmax
// (func(k int) int { return k }) yields the plain Naïve baseline.
func WithKmax(fn func(k int) int) NaiveOption { return func(e *Naive) { e.kmaxFn = fn } }

// WithNaiveSeed fixes the result-set skip-list seed.
func WithNaiveSeed(seed uint64) NaiveOption { return func(e *Naive) { e.seed = seed } }

// NewNaive returns an empty Naïve engine over the given window policy.
func NewNaive(policy window.Policy, opts ...NaiveOption) *Naive {
	e := &Naive{
		policy:  policy,
		store:   invindex.NewStore(),
		queries: make(map[model.QueryID]*naiveState),
		kmaxFn:  func(k int) int { return 2 * k },
		seed:    1,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements Engine.
func (e *Naive) Name() string {
	return "naive"
}

// Queries implements Engine.
func (e *Naive) Queries() int { return len(e.queries) }

// EachQuery implements Engine.
func (e *Naive) EachQuery(fn func(q *model.Query)) {
	for _, st := range e.queries {
		fn(st.q)
	}
}

// WindowLen implements Engine.
func (e *Naive) WindowLen() int { return e.store.Len() }

// EachDoc implements Engine.
func (e *Naive) EachDoc(fn func(d *model.Document)) { e.store.Docs(fn) }

// Stats implements Engine.
func (e *Naive) Stats() *Stats { return &e.stats }

// Register implements Engine.
func (e *Naive) Register(q *model.Query) error {
	if _, dup := e.queries[q.ID]; dup {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	st := &naiveState{
		q:    q,
		view: topk.NewResultSet(e.seed^uint64(q.ID), q.ID),
		kmax: e.kmaxFn(q.K),
	}
	if st.kmax < q.K {
		st.kmax = q.K
	}
	e.queries[q.ID] = st
	e.rescan(st)
	return nil
}

// Unregister implements Engine.
func (e *Naive) Unregister(id model.QueryID) bool {
	if _, ok := e.queries[id]; !ok {
		return false
	}
	delete(e.queries, id)
	return true
}

// Result implements Engine.
func (e *Naive) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	st, ok := e.queries[id]
	if !ok {
		return nil, false
	}
	return st.view.Top(st.q.K), true
}

// Process implements Engine.
func (e *Naive) Process(d *model.Document) error {
	if err := e.store.Insert(d); err != nil {
		return err
	}
	e.stats.Arrivals++
	for _, st := range e.queries {
		e.stats.ScoreComputations++
		score := model.Score(st.q, d)
		if score <= st.fence || score <= 0 {
			continue
		}
		st.view.Add(d.ID, score)
		if st.view.Len() > st.kmax {
			worst, _ := st.view.Worst()
			st.view.Remove(worst.Doc)
			st.fence = worst.Score
		}
	}
	e.expireWhile(d.Arrival)
	return nil
}

// ExpireUntil implements Engine.
func (e *Naive) ExpireUntil(now time.Time) { e.expireWhile(now) }

func (e *Naive) expireWhile(now time.Time) {
	for {
		oldest := e.store.Oldest()
		if oldest == nil || !e.policy.Expired(oldest.Arrival, now, e.store.Len()) {
			return
		}
		d := e.store.RemoveOldest()
		e.stats.Expirations++
		for _, st := range e.queries {
			if !st.view.Remove(d.ID) {
				continue
			}
			if st.view.Len() < st.q.K {
				e.rescan(st)
			}
		}
	}
}

// rescan recomputes the view from scratch: a full window scan retaining
// the kmax highest-scoring documents.
func (e *Naive) rescan(st *naiveState) {
	e.stats.Rescans++
	st.view = topk.NewResultSet(e.seed^uint64(st.q.ID), st.q.ID)
	e.store.Docs(func(d *model.Document) {
		e.stats.ScoreComputations++
		score := model.Score(st.q, d)
		if score <= 0 {
			return
		}
		if st.view.Len() < st.kmax {
			st.view.Add(d.ID, score)
			return
		}
		worst, _ := st.view.Worst()
		if score > worst.Score || (score == worst.Score && d.ID < worst.Doc) {
			st.view.Remove(worst.Doc)
			st.view.Add(d.ID, score)
		}
	})
	if st.view.Len() == st.kmax {
		worst, _ := st.view.Worst()
		st.fence = worst.Score
	} else {
		st.fence = 0
	}
}
