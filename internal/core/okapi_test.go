package core

import (
	"math/rand"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/vsm"
	"ita/internal/window"
)

// TestEnginesAgreeUnderOkapiWeights repeats the cross-engine agreement
// check with BM25 impact weights, whose values exceed 1 and cluster
// around the saturation bound — a different numeric regime from cosine
// that exercises threshold arithmetic with larger magnitudes.
func TestEnginesAgreeUnderOkapiWeights(t *testing.T) {
	weighter := vsm.NewOkapi(12)
	rng := rand.New(rand.NewSource(5))

	mkDoc := func(id model.DocID, seq int) *model.Document {
		nTerms := 2 + rng.Intn(5)
		freqs := map[model.TermID]int{}
		for len(freqs) < nTerms {
			freqs[model.TermID(rng.Intn(20))] = 1 + rng.Intn(4)
		}
		d, err := model.NewDocument(id, time.Unix(0, int64(seq)*int64(time.Millisecond)), weighter.DocPostings(freqs))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	mkQuery := func(id model.QueryID) *model.Query {
		n := 1 + rng.Intn(3)
		freqs := map[model.TermID]int{}
		for len(freqs) < n {
			freqs[model.TermID(rng.Intn(20))] = 1 + rng.Intn(3)
		}
		q, err := model.NewQuery(id, 1+rng.Intn(4), weighter.QueryTerms(freqs))
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	pol := window.Count{N: 12}
	oracle := NewOracle(pol)
	ita := NewITA(pol)
	naive := NewNaive(pol)
	var queries []*model.Query
	for i := 0; i < 5; i++ {
		q := mkQuery(model.QueryID(i + 1))
		queries = append(queries, q)
		for _, e := range []Engine{oracle, ita, naive} {
			if err := e.Register(q); err != nil {
				t.Fatal(err)
			}
		}
	}

	var win []*model.Document
	for step := 0; step < 250; step++ {
		d := mkDoc(model.DocID(step+1), step)
		win = append(win, d)
		if len(win) > pol.N {
			win = win[1:]
		}
		for _, e := range []Engine{oracle, ita, naive} {
			if err := e.Process(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := ita.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, q := range queries {
			truth := map[model.DocID]float64{}
			for _, wd := range win {
				truth[wd.ID] = model.Score(q, wd)
			}
			want, _ := oracle.Result(q.ID)
			for _, e := range []Engine{ita, naive} {
				got, _ := e.Result(q.ID)
				if err := checkAgainstOracle(e.Name(), got, want, truth); err != nil {
					t.Fatalf("step %d query %d: %v", step, q.ID, err)
				}
			}
		}
	}
}
