package core

// Score-floor maintenance. Each query carries a floor F ≥ 0 with the
// invariant pair
//
//	completeness: every valid document scoring ≥ F is in R with its
//	    exact score (so R's best k entries are a true top-k whenever
//	    |R| ≥ k, because any document outside R scores at most F ≤ Sk);
//	safety: every R member scores ≥ F.
//
// Boundary ties (score exactly F) may legitimately sit on either side:
// a document admitted at score == F stays until purged, while an unseen
// document at exactly F need not be found. This is the same guarantee
// class as the paper's τ-threshold formulation, where unseen documents
// are bounded by τ ≤ Sk with the identical tie exposure.
//
// The floor is what the per-term probe bounds are derived from: term t
// of query Q gets the bound
//
//	b_{Q,t} = F · fac_t,   fac_t = (1−1e-9) / (n·w_{Q,t})
//
// so that Σ_t w_{Q,t}·b_{Q,t} = F·(1−1e-9) < F. Two consequences, both
// load-bearing:
//
//	skip soundness: a document none of whose contributions reaches its
//	    bound (w_{d,t} < b_{Q,t} for all t) scores strictly below F, so
//	    skipping it cannot lose an R-worthy arrival.
//	R reachability: any document scoring ≥ F beats at least one bound
//	    (pigeonhole over the sum above — the 1e-9 relative slack keeps
//	    the implication strict under float rounding, which accumulates
//	    at ~1e-15 relative), so every R member is found again when it
//	    expires.
//
// The equal-contribution-share allocation (each term's bound represents
// the same w_{Q,t}·b_{Q,t} = F·(1−1e-9)/n slice of the floor) keeps the
// bound of a low-weight term high in impact-weight units, which is what
// prunes the Zipf-head terms where most registered queries live.
const boundSlack = 1 - 1e-9

// Floor maintenance margins. A rebuild fills R down to k+tgtMargin
// members before setting F to the (k+tgtMargin)-th score; arrivals then
// grow R until it passes k+tgtMargin+raiseMargin, when the floor is
// raised back to the (k+tgtMargin)-th score and the sub-floor tail
// purged. tgtMargin is headroom against expirations (R dropping below k
// forces a rebuild, the expensive path); raiseMargin is hysteresis so
// the floor — and with it every per-term tree entry — moves once per
// raiseMargin admissions instead of once per arrival. The defaults are
// tuned on the million-query scale benchmark (harness.Scale): at 1M
// standing queries, {4, 8} sustains ~1.25× the ingest rate of the old
// {16, 16} — the higher floor prunes probe visits whose score lands
// below F, and the smaller R halves the result-list memory traffic —
// at a refill cost of ~0.2/event, which wider margins buy down to zero
// without paying for themselves. Tighter than {2, 4} inverts the
// trade: refills jump two orders of magnitude and dominate. Tests use
// still-smaller margins via MaintainerConfig to exercise raises and
// rebuilds densely in small windows.
const (
	defaultTargetMargin = 4
	defaultRaiseMargin  = 8
)

// boundFor returns the probe-tree bound of one term at floor f.
func boundFor(f, fac float64) float64 { return f * fac }

// setFloor moves qs's floor to newF and re-registers every term bound
// in its probe tree. Bounds are pure functions of (F, fac), so export
// and restore reproduce them bit-identically.
func (m *Maintainer) setFloor(qs *queryState, newF float64) {
	qs.f = newF
	for i := range qs.terms {
		ts := &qs.terms[i]
		nb := boundFor(newF, ts.fac)
		if nb == ts.b {
			continue
		}
		tr := m.tree(ts.term)
		tr.Remove(qs.id, ts.b)
		tr.Set(qs.id, nb)
		m.stats.TreeUpdates += 2
		ts.b = nb
	}
}

// purgeBelow drops every R member scoring strictly below the floor.
// Keeping them would break R reachability on a later floor raise: a
// member below F is not guaranteed to beat any probe bound, so its
// expiration could leave a phantom entry in R forever.
func (m *Maintainer) purgeBelow(qs *queryState) {
	for {
		w, ok := qs.r.Worst()
		if !ok || w.Score >= qs.f {
			return
		}
		qs.r.Remove(w.Doc)
		m.stats.RollupDrops++
	}
}

// raiseFloor lifts the floor to the (k+tgtMargin)-th best score and
// purges the tail below it. Soundness: the new floor is a score R
// actually holds, every purged member scores below it, and any unseen
// document scores at most the old floor ≤ the new one — so the
// completeness invariant survives with the tighter bound. A raise that
// would not move the floor (ties pinning the (k+tgtMargin)-th score at
// F) is a no-op rather than a counted step, so a tie-heavy R cannot
// spin the counter.
func (m *Maintainer) raiseFloor(qs *queryState) {
	newF := qs.r.Kth(qs.q.K + m.tgtMargin)
	if newF <= qs.f {
		return
	}
	m.stats.RollupSteps++
	m.setFloor(qs, newF)
	m.purgeBelow(qs)
}
