package core

import (
	"testing"
	"time"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/window"
)

// Term ids for the narrative tests. A and B are the query terms (the
// paper's "tower" and "white"); C is background noise.
const (
	termA model.TermID = 1
	termB model.TermID = 2
	termC model.TermID = 3
)

func doc(t *testing.T, id model.DocID, seq int, ps ...model.Posting) *model.Document {
	t.Helper()
	arr := time.Unix(0, 0).Add(time.Duration(seq) * 5 * time.Millisecond)
	d, err := model.NewDocument(id, arr, ps)
	if err != nil {
		t.Fatalf("doc %d: %v", id, err)
	}
	return d
}

func query(t *testing.T, id model.QueryID, k int, terms ...model.QueryTerm) *model.Query {
	t.Helper()
	q, err := model.NewQuery(id, k, terms)
	if err != nil {
		t.Fatalf("query %d: %v", id, err)
	}
	return q
}

func wantResult(t *testing.T, e Engine, id model.QueryID, want []model.ScoredDoc) {
	t.Helper()
	got, ok := e.Result(id)
	if !ok {
		t.Fatalf("%s: query %d unknown", e.Name(), id)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: result %v, want %v", e.Name(), got, want)
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || !approx(got[i].Score, want[i].Score) {
			t.Fatalf("%s: result[%d] = {%d %g}, want {%d %g} (full: %v)",
				e.Name(), i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score, got)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func mustCheck(t *testing.T, e *ITA) {
	t.Helper()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestITANarrative walks the engine through the §III-B scenario of the
// paper's Figure 2 with self-consistent numbers: an initial top-k
// search, an arrival that enters the top-k and triggers a roll-up that
// evicts a document from R, and an expiration of a top-k document that
// triggers an incremental refill. All intermediate thresholds, R
// contents and results are pinned.
func TestITANarrative(t *testing.T) {
	e := NewITA(window.Count{N: 6})
	// Initial window: impact lists
	//   L_A: (0.10,d1) (0.08,d2) (0.07,d5)
	//   L_B: (0.08,d3) (0.06,d2) (0.04,d4)
	for _, d := range []*model.Document{
		doc(t, 1, 0, model.Posting{Term: termA, Weight: 0.10}),
		doc(t, 2, 1, model.Posting{Term: termA, Weight: 0.08}, model.Posting{Term: termB, Weight: 0.06}),
		doc(t, 3, 2, model.Posting{Term: termB, Weight: 0.08}),
		doc(t, 4, 3, model.Posting{Term: termB, Weight: 0.04}),
		doc(t, 5, 4, model.Posting{Term: termA, Weight: 0.07}),
	} {
		if err := e.Process(d); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 2,
		model.QueryTerm{Term: termA, Weight: 0.5},
		model.QueryTerm{Term: termB, Weight: 1.0})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)

	// Initial search: scores S(d2)=0.10, S(d3)=0.08, S(d1)=0.05.
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 2, Score: 0.10}, {Doc: 3, Score: 0.08}})
	qs := e.m.lookup(1)
	if qs.r.Len() != 3 {
		t.Fatalf("|R| = %d, want 3 (d1 kept unverified)", qs.r.Len())
	}
	if got := qs.terms[0].theta; got != (invindex.EntryKey{W: 0.08, Doc: 2}) {
		t.Fatalf("θ_A = %v, want (0.08,d2)", got)
	}
	if got := qs.terms[1].theta; got != (invindex.EntryKey{W: 0.04, Doc: 4}) {
		t.Fatalf("θ_B = %v, want (0.04,d4)", got)
	}
	if !approx(qs.tau(), 0.08) {
		t.Fatalf("τ = %g, want 0.08", qs.tau())
	}

	// Arrival of d9 (A:0.16, B:0.05): S(d9)=0.13 enters the top-2;
	// roll-up lifts θ_A past d1 (dropping it from R) and θ_B past d9.
	if err := e.Process(doc(t, 9, 5,
		model.Posting{Term: termA, Weight: 0.16},
		model.Posting{Term: termB, Weight: 0.05})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 2, Score: 0.10}})
	if qs.r.Contains(1) {
		t.Fatal("d1 should have been rolled out of R")
	}
	if qs.r.Len() != 3 {
		t.Fatalf("|R| = %d, want 3 (d9, d2, d3)", qs.r.Len())
	}
	if got := qs.terms[0].theta; got != (invindex.EntryKey{W: 0.10, Doc: 1}) {
		t.Fatalf("θ_A = %v, want (0.10,d1)", got)
	}
	if got := qs.terms[1].theta; got != (invindex.EntryKey{W: 0.05, Doc: 9}) {
		t.Fatalf("θ_B = %v, want (0.05,d9)", got)
	}
	if e.Stats().RollupSteps != 2 || e.Stats().RollupDrops != 1 {
		t.Fatalf("rollup steps/drops = %d/%d, want 2/1", e.Stats().RollupSteps, e.Stats().RollupDrops)
	}

	// Window is at 6: the next arrival expires d1, which is unconsumed
	// (θ_A sits exactly at its entry) — no query work should happen.
	refillsBefore := e.Stats().Refills
	if err := e.Process(doc(t, 10, 6, model.Posting{Term: termC, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	if e.Stats().Refills != refillsBefore {
		t.Fatal("expiring an unconsumed document must not trigger a refill")
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 2, Score: 0.10}})

	// Next arrival expires d2 — currently ranked 2nd — forcing an
	// incremental refill that resumes from the thresholds.
	if err := e.Process(doc(t, 11, 7, model.Posting{Term: termC, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	if e.Stats().Refills != refillsBefore+1 {
		t.Fatalf("refills = %d, want %d", e.Stats().Refills, refillsBefore+1)
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 3, Score: 0.08}})
	if got := qs.terms[0].theta; got != (invindex.EntryKey{W: 0.07, Doc: 5}) {
		t.Fatalf("θ_A after refill = %v, want (0.07,d5)", got)
	}
	if got := qs.terms[1].theta; got != (invindex.EntryKey{W: 0.04, Doc: 4}) {
		t.Fatalf("θ_B after refill = %v, want (0.04,d4)", got)
	}
}

func TestITAInitialSearchKeepsUnverified(t *testing.T) {
	// The initial search must retain encountered-but-unverified
	// documents in R; without them incremental refill is impossible.
	e := NewITA(window.Count{N: 100})
	for i := 1; i <= 10; i++ {
		w := float64(i) / 20 // 0.05 .. 0.50
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: w})); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 3, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	// Single-list search: reading the 3rd entry makes τ = its weight =
	// Sk, so exactly 3 reads are verified and |R| = 3. As documents
	// expire from the top, refills walk down one entry at a time.
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 10, Score: 0.50}, {Doc: 9, Score: 0.45}, {Doc: 8, Score: 0.40}})
}

func TestITAQueryTermAbsentFromWindow(t *testing.T) {
	// A query over a term no valid document contains must still monitor
	// future arrivals of that term.
	e := NewITA(window.Count{N: 10})
	if err := e.Process(doc(t, 1, 0, model.Posting{Term: termC, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, nil)

	if err := e.Process(doc(t, 2, 1, model.Posting{Term: termA, Weight: 0.3})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 2, Score: 0.3}})
}

func TestITAEmptyWindowRegistration(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	q := query(t, 7, 3, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 7, nil)
	if err := e.Process(doc(t, 1, 0, model.Posting{Term: termA, Weight: 0.4})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 7, []model.ScoredDoc{{Doc: 1, Score: 0.4}})
}

func TestITAKLargerThanWindow(t *testing.T) {
	e := NewITA(window.Count{N: 3})
	for i := 1; i <= 3; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: float64(i) / 10})); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 10, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 3, Score: 0.3}, {Doc: 2, Score: 0.2}, {Doc: 1, Score: 0.1}})
}

func TestITADuplicateDocumentRejected(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	d := doc(t, 1, 0, model.Posting{Term: termA, Weight: 0.5})
	if err := e.Process(d); err != nil {
		t.Fatal(err)
	}
	if err := e.Process(doc(t, 1, 1, model.Posting{Term: termB, Weight: 0.5})); err == nil {
		t.Fatal("duplicate doc id accepted")
	}
	if e.WindowLen() != 1 {
		t.Fatalf("window len = %d after rejected insert", e.WindowLen())
	}
}

func TestITADuplicateQueryRejected(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	q := query(t, 1, 1, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(q); err == nil {
		t.Fatal("duplicate query id accepted")
	}
}

func TestITAUnregister(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	for i := 1; i <= 3; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: float64(i) / 10})); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	if !e.Unregister(1) {
		t.Fatal("Unregister returned false")
	}
	if e.Unregister(1) {
		t.Fatal("second Unregister returned true")
	}
	if _, ok := e.Result(1); ok {
		t.Fatal("Result after Unregister succeeded")
	}
	if len(e.m.trees) != 0 {
		t.Fatalf("threshold trees leaked: %d", len(e.m.trees))
	}
	mustCheck(t, e)
	// The stream keeps flowing without the query.
	if err := e.Process(doc(t, 9, 9, model.Posting{Term: termA, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
}

func TestITATimeWindow(t *testing.T) {
	e := NewITA(window.Span{D: 100 * time.Millisecond})
	base := time.Unix(0, 0)
	mk := func(id model.DocID, at time.Duration, w float64) *model.Document {
		d, err := model.NewDocument(id, base.Add(at), []model.Posting{{Term: termA, Weight: w}})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if err := e.Process(mk(1, 0, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := e.Process(mk(2, 50*time.Millisecond, 0.5)); err != nil {
		t.Fatal(err)
	}
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}})

	// d1 ages out at +100ms even without a new arrival.
	e.ExpireUntil(base.Add(120 * time.Millisecond))
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 2, Score: 0.5}})
	if e.WindowLen() != 1 {
		t.Fatalf("window len = %d, want 1", e.WindowLen())
	}

	// An arrival at +200ms expires d2 as a side effect.
	if err := e.Process(mk(3, 200*time.Millisecond, 0.1)); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 3, Score: 0.1}})
}

func TestITAZeroScoreArrivalIgnored(t *testing.T) {
	e := NewITA(window.Count{N: 10})
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	probesBefore := e.Stats().ProbeHits
	// Documents sharing no terms with the query must be filtered by the
	// threshold trees, not scored.
	for i := 1; i <= 5; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termC, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().ProbeHits != probesBefore {
		t.Fatalf("probe hits = %d, want %d: disjoint documents must not touch the query",
			e.Stats().ProbeHits, probesBefore)
	}
	if e.Stats().ScoreComputations != 0 {
		t.Fatalf("score computations = %d, want 0", e.Stats().ScoreComputations)
	}
	mustCheck(t, e)
}

func TestITARollupDisabledStaysCorrect(t *testing.T) {
	e := NewITA(window.Count{N: 20}, WithoutRollup())
	q := query(t, 1, 2,
		model.QueryTerm{Term: termA, Weight: 0.5},
		model.QueryTerm{Term: termB, Weight: 1.0})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		ps := []model.Posting{{Term: termA, Weight: float64(i%7+1) / 10}}
		if i%3 == 0 {
			ps = append(ps, model.Posting{Term: termB, Weight: float64(i%5+1) / 10})
		}
		if err := e.Process(doc(t, model.DocID(i), i, ps...)); err != nil {
			t.Fatal(err)
		}
		mustCheck(t, e)
	}
	if e.Stats().RollupSteps != 0 {
		t.Fatalf("rollup steps = %d with rollup disabled", e.Stats().RollupSteps)
	}
	// Cross-check the final answer against the oracle.
	o := NewOracle(window.Count{N: 20})
	if err := o.Register(q); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		ps := []model.Posting{{Term: termA, Weight: float64(i%7+1) / 10}}
		if i%3 == 0 {
			ps = append(ps, model.Posting{Term: termB, Weight: float64(i%5+1) / 10})
		}
		if err := o.Process(doc(t, model.DocID(i), i, ps...)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := o.Result(1)
	wantResult(t, e, 1, want)
}
