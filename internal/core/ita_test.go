package core

import (
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/window"
)

// Term ids for the narrative tests. A and B are the query terms (the
// paper's "tower" and "white"); C is background noise.
const (
	termA model.TermID = 1
	termB model.TermID = 2
	termC model.TermID = 3
)

func doc(t *testing.T, id model.DocID, seq int, ps ...model.Posting) *model.Document {
	t.Helper()
	arr := time.Unix(0, 0).Add(time.Duration(seq) * 5 * time.Millisecond)
	d, err := model.NewDocument(id, arr, ps)
	if err != nil {
		t.Fatalf("doc %d: %v", id, err)
	}
	return d
}

func query(t *testing.T, id model.QueryID, k int, terms ...model.QueryTerm) *model.Query {
	t.Helper()
	q, err := model.NewQuery(id, k, terms)
	if err != nil {
		t.Fatalf("query %d: %v", id, err)
	}
	return q
}

func wantResult(t *testing.T, e Engine, id model.QueryID, want []model.ScoredDoc) {
	t.Helper()
	got, ok := e.Result(id)
	if !ok {
		t.Fatalf("%s: query %d unknown", e.Name(), id)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: result %v, want %v", e.Name(), got, want)
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || !approx(got[i].Score, want[i].Score) {
			t.Fatalf("%s: result[%d] = {%d %g}, want {%d %g} (full: %v)",
				e.Name(), i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score, got)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func mustCheck(t *testing.T, e *ITA) {
	t.Helper()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestITANarrative walks the engine through the full floor lifecycle
// with self-consistent numbers: an initial top-k rebuild that sets the
// floor and purges the sub-floor tail, an arrival that enters the
// top-2, a second arrival that trips the raise margin (the roll-up
// analog of §III-B), a sub-bound arrival the probe index must skip
// without scoring, and expirations exercising the non-member fast path,
// the member-removal-without-rebuild path, and the refill rebuild. All
// intermediate floors, R contents, results and counters are pinned.
// Margins (1,1) make the rebuild target k+1=3 and the raise trigger
// |R| > 4.
func TestITANarrative(t *testing.T) {
	e := NewITA(window.Count{N: 8}, WithFloorMargins(1, 1))
	// Initial window: impact lists
	//   L_A: (0.10,d1) (0.08,d2) (0.07,d5)
	//   L_B: (0.08,d3) (0.06,d2) (0.04,d4)
	for _, d := range []*model.Document{
		doc(t, 1, 0, model.Posting{Term: termA, Weight: 0.10}),
		doc(t, 2, 1, model.Posting{Term: termA, Weight: 0.08}, model.Posting{Term: termB, Weight: 0.06}),
		doc(t, 3, 2, model.Posting{Term: termB, Weight: 0.08}),
		doc(t, 4, 3, model.Posting{Term: termB, Weight: 0.04}),
		doc(t, 5, 4, model.Posting{Term: termA, Weight: 0.07}),
	} {
		if err := e.Process(d); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 2,
		model.QueryTerm{Term: termA, Weight: 0.5},
		model.QueryTerm{Term: termB, Weight: 1.0})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)

	// Initial rebuild, greedy w·c order: reads d3 (S=0.08), d2 (S=0.10),
	// d1 (S=0.05), d2 again (Contains-skip), d4 (S=0.04); then τ =
	// 0.5·0.07 = 0.035 ≤ Kth(3) = 0.05 stops the scan with d5 unread.
	// F = Kth(3) = 0.05 purges d4.
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 2, Score: 0.10}, {Doc: 3, Score: 0.08}})
	qs := e.m.lookup(1)
	if qs.r.Len() != 3 {
		t.Fatalf("|R| = %d, want 3 (d2, d3, d1)", qs.r.Len())
	}
	if !approx(qs.f, 0.05) {
		t.Fatalf("floor = %g, want 0.05", qs.f)
	}
	if e.Stats().SearchReads != 5 || e.Stats().ScoreComputations != 4 {
		t.Fatalf("search reads/scores = %d/%d, want 5/4",
			e.Stats().SearchReads, e.Stats().ScoreComputations)
	}
	if e.Stats().RollupDrops != 1 {
		t.Fatalf("rollup drops = %d, want 1 (d4 purged)", e.Stats().RollupDrops)
	}

	// Arrival of d9 (A:0.16, B:0.05): S(d9)=0.13 enters the top-2.
	// |R| grows to 4, which does not pass the raise trigger.
	if err := e.Process(doc(t, 9, 5,
		model.Posting{Term: termA, Weight: 0.16},
		model.Posting{Term: termB, Weight: 0.05})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 2, Score: 0.10}})
	if qs.r.Len() != 4 || e.Stats().RollupSteps != 0 {
		t.Fatalf("|R| = %d, rollup steps = %d; want 4, 0", qs.r.Len(), e.Stats().RollupSteps)
	}

	// Arrival of d10 (A:0.12): S(d10)=0.06 ≥ F joins R, |R|=5 > 4 trips
	// the raise: F = Kth(3) of {.13,.10,.08,.06,.05} = 0.08, purging d1
	// (0.05) and d10 (0.06) right back out.
	if err := e.Process(doc(t, 10, 6, model.Posting{Term: termA, Weight: 0.12})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 2, Score: 0.10}})
	if !approx(qs.f, 0.08) {
		t.Fatalf("floor after raise = %g, want 0.08", qs.f)
	}
	if e.Stats().RollupSteps != 1 || e.Stats().RollupDrops != 3 {
		t.Fatalf("rollup steps/drops = %d/%d, want 1/3", e.Stats().RollupSteps, e.Stats().RollupDrops)
	}
	if qs.r.Len() != 3 {
		t.Fatalf("|R| = %d, want 3 (d9, d2, d3)", qs.r.Len())
	}

	// Arrival of d11 (A:0.05): its contribution is below the A bound
	// F·fac_A ≈ 0.08, so the θ-ordered probe must skip the query without
	// touching it — no probe hit, no score computation.
	probes, scores := e.Stats().ProbeHits, e.Stats().ScoreComputations
	if err := e.Process(doc(t, 11, 7, model.Posting{Term: termA, Weight: 0.05})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	if e.Stats().ProbeHits != probes || e.Stats().ScoreComputations != scores {
		t.Fatalf("probe hits/scores moved to %d/%d on a sub-bound arrival (were %d/%d)",
			e.Stats().ProbeHits, e.Stats().ScoreComputations, probes, scores)
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 2, Score: 0.10}})

	// Window is at 8: the next arrival expires d1, which was purged at
	// the raise. Its A weight still beats the bound, so the probe finds
	// the query, but the R removal is a miss and nothing rebuilds.
	if err := e.Process(doc(t, 12, 8, model.Posting{Term: termC, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	if e.Stats().Refills != 0 {
		t.Fatal("expiring a non-member must not trigger a refill")
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 2, Score: 0.10}})

	// Next arrival expires d2 — ranked 2nd — but |R| drops only to 2 = k,
	// so the margin absorbs it with no rebuild.
	if err := e.Process(doc(t, 13, 9, model.Posting{Term: termC, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	if e.Stats().Refills != 0 {
		t.Fatal("an expiration absorbed by the margin must not trigger a refill")
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 3, Score: 0.08}})

	// Next arrival expires d3: |R|=1 < k forces the refill rebuild. The
	// scan keeps d9 (Contains-skip), re-admits d10 (0.06) and d4 (0.04),
	// and stops with d5 and d11 unread (τ=0.035 ≤ Kth(3)=0.04); the
	// floor comes back down to 0.04.
	if err := e.Process(doc(t, 14, 10, model.Posting{Term: termC, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	if e.Stats().Refills != 1 {
		t.Fatalf("refills = %d, want 1", e.Stats().Refills)
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 9, Score: 0.13}, {Doc: 10, Score: 0.06}})
	if !approx(qs.f, 0.04) {
		t.Fatalf("floor after refill = %g, want 0.04", qs.f)
	}
	if qs.r.Len() != 3 {
		t.Fatalf("|R| = %d, want 3 (d9, d10, d4)", qs.r.Len())
	}
}

func TestITAInitialSearchKeepsMargin(t *testing.T) {
	// The initial rebuild must retain the margin of below-top-k
	// documents in R; without it every near-top expiration would force
	// a rebuild.
	e := NewITA(window.Count{N: 100})
	for i := 1; i <= 10; i++ {
		w := float64(i) / 20 // 0.05 .. 0.50
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: w})); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 3, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	// Ten matches exceed the rebuild target k+tgtMargin, so the scan
	// stops there: R holds the target count — a tgtMargin of
	// below-top-k members — with the floor at the target-th score.
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 10, Score: 0.50}, {Doc: 9, Score: 0.45}, {Doc: 8, Score: 0.40}})
	qs := e.m.lookup(1)
	target := 3 + defaultTargetMargin
	if qs.r.Len() != target || qs.f <= 0 || qs.f != qs.r.Kth(target) {
		t.Fatalf("|R| = %d floor = %g, want %d members with the floor at the %d-th score %g",
			qs.r.Len(), qs.f, target, target, qs.r.Kth(target))
	}
}

func TestITAQueryTermAbsentFromWindow(t *testing.T) {
	// A query over a term no valid document contains must still monitor
	// future arrivals of that term.
	e := NewITA(window.Count{N: 10})
	if err := e.Process(doc(t, 1, 0, model.Posting{Term: termC, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, nil)

	if err := e.Process(doc(t, 2, 1, model.Posting{Term: termA, Weight: 0.3})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 2, Score: 0.3}})
}

func TestITAEmptyWindowRegistration(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	q := query(t, 7, 3, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 7, nil)
	if err := e.Process(doc(t, 1, 0, model.Posting{Term: termA, Weight: 0.4})); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 7, []model.ScoredDoc{{Doc: 1, Score: 0.4}})
}

func TestITAKLargerThanWindow(t *testing.T) {
	e := NewITA(window.Count{N: 3})
	for i := 1; i <= 3; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: float64(i) / 10})); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 10, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 3, Score: 0.3}, {Doc: 2, Score: 0.2}, {Doc: 1, Score: 0.1}})
}

func TestITADuplicateDocumentRejected(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	d := doc(t, 1, 0, model.Posting{Term: termA, Weight: 0.5})
	if err := e.Process(d); err != nil {
		t.Fatal(err)
	}
	if err := e.Process(doc(t, 1, 1, model.Posting{Term: termB, Weight: 0.5})); err == nil {
		t.Fatal("duplicate doc id accepted")
	}
	if e.WindowLen() != 1 {
		t.Fatalf("window len = %d after rejected insert", e.WindowLen())
	}
}

func TestITADuplicateQueryRejected(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	q := query(t, 1, 1, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(q); err == nil {
		t.Fatal("duplicate query id accepted")
	}
}

func TestITAUnregister(t *testing.T) {
	e := NewITA(window.Count{N: 5})
	for i := 1; i <= 3; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: float64(i) / 10})); err != nil {
			t.Fatal(err)
		}
	}
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	if !e.Unregister(1) {
		t.Fatal("Unregister returned false")
	}
	if e.Unregister(1) {
		t.Fatal("second Unregister returned true")
	}
	if _, ok := e.Result(1); ok {
		t.Fatal("Result after Unregister succeeded")
	}
	if len(e.m.trees) != 0 {
		t.Fatalf("threshold trees leaked: %d", len(e.m.trees))
	}
	mustCheck(t, e)
	// The stream keeps flowing without the query.
	if err := e.Process(doc(t, 9, 9, model.Posting{Term: termA, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
}

func TestITATimeWindow(t *testing.T) {
	e := NewITA(window.Span{D: 100 * time.Millisecond})
	base := time.Unix(0, 0)
	mk := func(id model.DocID, at time.Duration, w float64) *model.Document {
		d, err := model.NewDocument(id, base.Add(at), []model.Posting{{Term: termA, Weight: w}})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if err := e.Process(mk(1, 0, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := e.Process(mk(2, 50*time.Millisecond, 0.5)); err != nil {
		t.Fatal(err)
	}
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}})

	// d1 ages out at +100ms even without a new arrival.
	e.ExpireUntil(base.Add(120 * time.Millisecond))
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 2, Score: 0.5}})
	if e.WindowLen() != 1 {
		t.Fatalf("window len = %d, want 1", e.WindowLen())
	}

	// An arrival at +200ms expires d2 as a side effect.
	if err := e.Process(mk(3, 200*time.Millisecond, 0.1)); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, e)
	wantResult(t, e, 1, []model.ScoredDoc{{Doc: 3, Score: 0.1}})
}

func TestITAZeroScoreArrivalIgnored(t *testing.T) {
	e := NewITA(window.Count{N: 10})
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	probesBefore := e.Stats().ProbeHits
	// Documents sharing no terms with the query must be filtered by the
	// threshold trees, not scored.
	for i := 1; i <= 5; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termC, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().ProbeHits != probesBefore {
		t.Fatalf("probe hits = %d, want %d: disjoint documents must not touch the query",
			e.Stats().ProbeHits, probesBefore)
	}
	if e.Stats().ScoreComputations != 0 {
		t.Fatalf("score computations = %d, want 0", e.Stats().ScoreComputations)
	}
	mustCheck(t, e)
}

func TestITARollupDisabledStaysCorrect(t *testing.T) {
	e := NewITA(window.Count{N: 20}, WithoutRollup())
	q := query(t, 1, 2,
		model.QueryTerm{Term: termA, Weight: 0.5},
		model.QueryTerm{Term: termB, Weight: 1.0})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		ps := []model.Posting{{Term: termA, Weight: float64(i%7+1) / 10}}
		if i%3 == 0 {
			ps = append(ps, model.Posting{Term: termB, Weight: float64(i%5+1) / 10})
		}
		if err := e.Process(doc(t, model.DocID(i), i, ps...)); err != nil {
			t.Fatal(err)
		}
		mustCheck(t, e)
	}
	if e.Stats().RollupSteps != 0 {
		t.Fatalf("rollup steps = %d with rollup disabled", e.Stats().RollupSteps)
	}
	// Cross-check the final answer against the oracle.
	o := NewOracle(window.Count{N: 20})
	if err := o.Register(q); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		ps := []model.Posting{{Term: termA, Weight: float64(i%7+1) / 10}}
		if i%3 == 0 {
			ps = append(ps, model.Posting{Term: termB, Weight: float64(i%5+1) / 10})
		}
		if err := o.Process(doc(t, model.DocID(i), i, ps...)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := o.Result(1)
	wantResult(t, e, 1, want)
}
