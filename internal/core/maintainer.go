package core

import (
	"fmt"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/threshtree"
	"ita/internal/topk"
)

// Maintainer owns the per-query maintenance state of ITA for a set of
// queries: their threshold trees, result sets R and local thresholds.
// It is the unit of parallelism of the sharded engine — every piece of
// state it touches during event handling is strictly per-query (trees,
// queryStates, stats, scratch buffers), while the inverted index it
// reads is owned by its coordinator and guaranteed quiescent for the
// duration of HandleArrival/HandleExpire.
//
// A Maintainer is not safe for concurrent use with itself; the sharded
// engine runs many maintainers concurrently, each on its own goroutine,
// which is safe exactly because they share nothing but the read-only
// index.
type Maintainer struct {
	index   *invindex.Index
	stats   *Stats
	trees   map[model.TermID]*threshtree.Tree
	queries map[model.QueryID]*queryState
	seed    uint64

	// Ablation switches (DESIGN.md A1, A2). Both default to the paper's
	// configuration: greedy probing and roll-up enabled.
	rollupEnabled bool
	greedyProbe   bool

	// Scratch buffers reused across events to keep steady-state
	// processing allocation-free.
	touched     []*queryState
	touchedMark map[model.QueryID]struct{}
}

// MaintainerConfig carries the tuning knobs shared by the single-threaded
// and sharded engines.
type MaintainerConfig struct {
	Seed            uint64
	DisableRollup   bool // ablation A2
	RoundRobinProbe bool // ablation A1
}

// NewMaintainer returns an empty maintainer reading from index and
// accumulating its operation counters into stats. The caller owns both:
// the sharded engine hands every shard the same index but a private
// stats block, merged on read.
func NewMaintainer(index *invindex.Index, stats *Stats, cfg MaintainerConfig) *Maintainer {
	return &Maintainer{
		index:         index,
		stats:         stats,
		trees:         make(map[model.TermID]*threshtree.Tree),
		queries:       make(map[model.QueryID]*queryState),
		seed:          cfg.Seed,
		rollupEnabled: !cfg.DisableRollup,
		greedyProbe:   !cfg.RoundRobinProbe,
		touchedMark:   make(map[model.QueryID]struct{}),
	}
}

// termState tracks one query term: its weight and its local threshold,
// the position of the first unconsumed entry of the term's inverted
// list (Bottom once the list is exhausted).
type termState struct {
	term  model.TermID
	qw    float64
	theta invindex.EntryKey
}

type queryState struct {
	q     *model.Query
	terms []termState
	r     *topk.ResultSet
}

// tau returns the influence threshold τ = Σ w_{Q,t}·θ_{Q,t}.W, the least
// upper bound on the score of any valid document outside R (invariant
// I2).
func (qs *queryState) tau() float64 {
	var t float64
	for i := range qs.terms {
		t += qs.terms[i].qw * qs.terms[i].theta.W
	}
	return t
}

// Len returns the number of queries this maintainer owns.
func (m *Maintainer) Len() int { return len(m.queries) }

// Has reports whether the maintainer owns query id.
func (m *Maintainer) Has(id model.QueryID) bool {
	_, ok := m.queries[id]
	return ok
}

// EachQuery calls fn for every owned query in unspecified order.
func (m *Maintainer) EachQuery(fn func(q *model.Query)) {
	for _, qs := range m.queries {
		fn(qs.q)
	}
}

// tree returns the threshold tree for term t, creating it on first use.
// Trees exist independently of inverted lists: a query term that matches
// no valid document still needs its threshold registered so future
// arrivals can probe it.
func (m *Maintainer) tree(t model.TermID) *threshtree.Tree {
	tr := m.trees[t]
	if tr == nil {
		tr = threshtree.New(m.seed ^ (uint64(t)*0x9e3779b97f4a7c15 + 1))
		m.trees[t] = tr
	}
	return tr
}

// Register runs the initial top-k search of §III-A for q and installs
// the resulting local thresholds. It fails on a duplicate query id.
func (m *Maintainer) Register(q *model.Query) error {
	if _, dup := m.queries[q.ID]; dup {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	qs := &queryState{
		q:     q,
		terms: make([]termState, len(q.Terms)),
		r:     topk.NewResultSet(m.seed ^ uint64(q.ID)),
	}
	for i, t := range q.Terms {
		qs.terms[i] = termState{term: t.Term, qw: t.Weight, theta: invindex.Top()}
	}
	m.queries[q.ID] = qs
	m.runSearch(qs)
	return nil
}

// Unregister removes a query, reporting whether it existed.
func (m *Maintainer) Unregister(id model.QueryID) bool {
	qs, ok := m.queries[id]
	if !ok {
		return false
	}
	for i := range qs.terms {
		ts := &qs.terms[i]
		if tr := m.trees[ts.term]; tr != nil {
			tr.Remove(id, ts.theta)
			m.stats.TreeUpdates++
			if tr.Len() == 0 {
				delete(m.trees, ts.term)
			}
		}
	}
	delete(m.queries, id)
	return true
}

// Result returns the current top-k of a query in descending score order.
func (m *Maintainer) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	qs, ok := m.queries[id]
	if !ok {
		return nil, false
	}
	return qs.r.Top(qs.q.K), true
}

// collectAffected probes the threshold tree of every term of d and
// gathers, without duplicates, the queries whose consumed region
// contains the corresponding impact entry. The paper's note that "d is
// processed only once for each Qi even if d ranks higher than several of
// Q's local thresholds" is the deduplication here.
//
// The result is a maintainer-owned scratch slice, valid until the next
// call.
func (m *Maintainer) collectAffected(d *model.Document) []*queryState {
	m.touched = m.touched[:0]
	for _, p := range d.Postings {
		tr := m.trees[p.Term]
		if tr == nil || tr.Len() == 0 {
			continue
		}
		entry := invindex.EntryKey{W: p.Weight, Doc: d.ID}
		tr.Probe(entry, func(qid model.QueryID) {
			m.stats.ProbeHits++
			if _, dup := m.touchedMark[qid]; dup {
				return
			}
			m.touchedMark[qid] = struct{}{}
			m.touched = append(m.touched, m.queries[qid])
		})
	}
	for _, qs := range m.touched {
		delete(m.touchedMark, qs.q.ID)
	}
	return m.touched
}

// HandleArrival implements the arrival procedure of §III-B for the
// owned queries. The document must already be present in the index, and
// the index must stay unmodified for the duration of the call.
func (m *Maintainer) HandleArrival(d *model.Document) {
	for _, qs := range m.collectAffected(d) {
		m.stats.ScoreComputations++
		score := model.Score(qs.q, d)
		skBefore := qs.r.Kth(qs.q.K)
		qs.r.Add(d.ID, score)
		if score > skBefore && m.rollupEnabled {
			// The arrival entered the top-k, raising Sk: shrink the
			// monitored region.
			m.rollUp(qs)
		}
	}
}

// HandleExpire implements the expiration procedure of §III-B for the
// owned queries. The document must already be removed from the index,
// and the index must stay unmodified for the duration of the call.
func (m *Maintainer) HandleExpire(d *model.Document) {
	for _, qs := range m.collectAffected(d) {
		rank, inR := qs.r.Rank(d.ID)
		if !inR {
			// Possible only for boundary positions the roll-up already
			// evicted; nothing to do.
			continue
		}
		qs.r.Remove(d.ID)
		if rank < qs.q.K {
			// The expired document was in the top-k: refill by resuming
			// the threshold search from the local thresholds downwards.
			m.stats.Refills++
			m.runSearch(qs)
		}
	}
}
