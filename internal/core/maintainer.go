package core

import (
	"fmt"
	"unsafe"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/threshtree"
	"ita/internal/topk"
)

// Maintainer owns the per-query maintenance state of ITA for a set of
// queries: their per-term probe bounds, result sets R and score floors.
// It is the unit of parallelism of the sharded engine — every piece of
// state it touches during event handling is strictly per-query (trees,
// query states, stats, scratch buffers), while the inverted index it
// reads is owned by its coordinator and guaranteed quiescent for the
// duration of HandleArrival/HandleExpire.
//
// Query state lives in dense slab arenas, not a map of heap-allocated
// structs: every registered query gets a dense internal id (a uint32
// index into stable-addressed slabs), recycled through a free list on
// Unregister. External QueryIDs appear exactly twice — in the
// ext→dense lookup shared with the published Views, and inside the
// *model.Query itself — so the per-event hot paths (probe-tree walks,
// affected-query dedup, epoch work queues) run entirely on dense ids
// with array indexing instead of map lookups. The probe trees store
// dense ids too, which is what lets a probe hit resolve to its query
// state without touching any map.
//
// A Maintainer is not safe for concurrent use with itself; the sharded
// engine runs many maintainers concurrently, each on its own goroutine,
// which is safe exactly because they share nothing but the read-only
// index.
type Maintainer struct {
	index *invindex.Index
	stats *Stats
	trees map[model.TermID]*threshtree.Tree
	seed  uint64

	// Dense query-state arena: stable-addressed slabs indexed by dense
	// id, a free list for Unregister churn, and the live count. The
	// ext→dense lookup lives in views (it is the same mapping the
	// wait-free read path resolves through).
	slabs []*stateSlab
	free  []uint32
	next  uint32 // high-water dense id
	n     int    // live queries

	// Floor maintenance margins (see floor.go): a refill rebuilds R down
	// to k+tgtMargin members and a floor raise triggers past
	// k+tgtMargin+raiseMargin.
	tgtMargin   int
	raiseMargin int

	// Ablation switches (DESIGN.md A1, A2). Both default to the paper's
	// configuration: greedy probing and floor raising enabled.
	rollupEnabled bool
	greedyProbe   bool
	scanTrees     bool // entry-ordered scan-all probe trees (equivalence reference)

	// Scratch reused across events to keep steady-state processing
	// allocation-free. Affected-query dedup and the epoch work queue
	// are epoch-stamped dense marks inside the query states themselves
	// (queryState.mark/emark against stamp/estamp), so there is no map
	// to clear between events.
	stamp   uint64
	estamp  uint64
	touched []*queryState
	iterBuf []invindex.Iterator

	// Per-event scoring scratch: the current document's postings as a
	// stamp-marked dense array keyed by TermID (term ids are interned
	// densely, so the array is bounded by vocabulary size). Scoring an
	// affected query costs one array load per query term — mark and
	// weight share a cache line, no map hashing — and loading the next
	// document is a plain overwrite with a fresh stamp, no clearing
	// pass over the previous document's terms. scoreDoc reproduces
	// model.Score's exact float summation order, so the fast path is
	// bit-identical to the slow one.
	docW     []docWEntry
	docStamp uint64

	// Admit lists: for every window document, the dense ids of the
	// queries that admitted it into their R. Expiry walks the
	// document's list instead of probing the trees — the list touches
	// exactly the queries that hold the document (plus tolerated stale
	// entries, see recordAdmit), while a probe visits every query with
	// a beatable bound, a superset that is typically an order of
	// magnitude larger. Lists are recycled through holderPool when
	// their document expires.
	holders    map[model.DocID][]threshtree.Ref
	holderPool [][]threshtree.Ref

	// Epoch scratch: per-query net work lists reused across HandleEpoch
	// calls (the inner adds/dels slices keep their capacity), plus the
	// whole-term epoch skip: per-term max contribution across the epoch's
	// documents, resolved once per term against the tree's min-θ.
	epochQueue  []epochWork
	epochMaxW   map[model.TermID]float64
	epochSkip   map[model.TermID]bool
	epochSkipOn bool
	// epochLow tracks consecutive HandleEpoch calls that used only a
	// small fraction of the retained scratch capacity; past a threshold
	// the scratch shrinks back (see shrinkScratch).
	epochLow int

	// Published read path: one publication slot per dense id (views)
	// and the queries whose results changed since the last Publish. See
	// view.go for the consistency model. Dirty tracking is armed by the
	// first Publish call: the facade arms it at construction (serving
	// reads is its job), while core-level users that never publish —
	// the figure benchmarks and throughput harnesses driving ITA and
	// shard.Engine directly — pay nothing for the publication machinery.
	views     Views
	pubDirty  []*queryState
	publishOn bool
}

// Dense-state slabs: stable addresses (grow-by-slab, never realloc), so
// scratch lists may hold *queryState across events and the epoch queue
// across one epoch.
const (
	slabBits = 9
	slabSize = 1 << slabBits
	slabMask = slabSize - 1
)

type stateSlab [slabSize]queryState

// epochWork is the net effect of one epoch on one query: the arrived
// documents whose contribution beats one of the query's bounds (with
// their scores, computed once at probe time while the document's
// posting map is hot) and the expired ones.
type epochWork struct {
	qs        *queryState
	adds      []*model.Document
	addScores []float64
	dels      []*model.Document
}

// MaintainerConfig carries the tuning knobs shared by the single-threaded
// and sharded engines.
type MaintainerConfig struct {
	Seed            uint64
	DisableRollup   bool // ablation A2
	RoundRobinProbe bool // ablation A1
	// ScanAllTrees pins every probe tree to the entry-ordered scan-all
	// representation (every probe tests every registered query).
	// Test/equivalence use only.
	ScanAllTrees bool
	// FloorTargetMargin and FloorRaiseMargin override the floor
	// maintenance margins; zero selects the defaults (see floor.go).
	FloorTargetMargin int
	FloorRaiseMargin  int
	// PostingLayout selects the inverted-list representation; the zero
	// value is the block-compressed default (see invindex.Layout).
	PostingLayout invindex.Layout
}

// NewMaintainer returns an empty maintainer reading from index and
// accumulating its operation counters into stats. The caller owns both:
// the sharded engine hands every shard the same index but a private
// stats block, merged on read.
func NewMaintainer(index *invindex.Index, stats *Stats, cfg MaintainerConfig) *Maintainer {
	tgt, raise := cfg.FloorTargetMargin, cfg.FloorRaiseMargin
	if tgt <= 0 {
		tgt = defaultTargetMargin
	}
	if raise <= 0 {
		raise = defaultRaiseMargin
	}
	return &Maintainer{
		index:         index,
		stats:         stats,
		trees:         make(map[model.TermID]*threshtree.Tree),
		holders:       make(map[model.DocID][]threshtree.Ref),
		seed:          cfg.Seed,
		tgtMargin:     tgt,
		raiseMargin:   raise,
		rollupEnabled: !cfg.DisableRollup,
		greedyProbe:   !cfg.RoundRobinProbe,
		scanTrees:     cfg.ScanAllTrees,
	}
}

// termState tracks one query term: its weight, the precomputed bound
// factor fac (the term's probe bound is b = F·fac, see floor.go), and
// the bound b currently registered in the term's probe tree.
type termState struct {
	term model.TermID
	qw   float64
	fac  float64
	b    float64
}

// queryState is one dense arena slot. The zero value is a free slot;
// Unregister resets a slot to (almost) zero, keeping only the terms
// slice capacity and the stamp fields (stamps grow monotonically, so a
// recycled slot can never falsely match a current stamp).
type queryState struct {
	q     *model.Query
	terms []termState
	r     *topk.ResultSet
	f     float64 // score floor F: R holds every valid doc scoring ≥ F
	id    uint32  // own dense id (slab index)
	live  bool

	// Publication state: whether r changed since the last Publish. The
	// publication slot itself is views entry id.
	pubDirty bool

	// Epoch-stamped scratch marks, replacing the former touchedMark and
	// epochIdx maps: a slot is "marked" exactly when its stamp equals
	// the maintainer's current one.
	mark  uint64 // collectAffected dedup stamp
	emark uint64 // HandleEpoch work-queue stamp
	eslot int32  // index into epochQueue, valid while emark is current

	// escore accumulates the probed document's score while mark is
	// current, for zero-floor queries only: with F = 0 every bound is 0,
	// so every shared term's probe necessarily visits the query, and
	// postings iterate in ascending term order — the exact summation
	// order scoreDoc and model.Score use — making the accumulated value
	// bit-identical to a full evaluation at a fraction of the cost (no
	// per-term map lookups). Queries with F > 0 may have unbeatable
	// bounds on shared terms, so their arrivals take the scoreDoc path.
	escore float64
}

// state returns the arena slot of dense id i.
func (m *Maintainer) state(i uint32) *queryState {
	return &m.slabs[i>>slabBits][i&slabMask]
}

// alloc reserves a dense id, reusing a freed slot when one exists.
func (m *Maintainer) alloc() uint32 {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id
	}
	id := m.next
	m.next++
	if int(id>>slabBits) == len(m.slabs) {
		m.slabs = append(m.slabs, new(stateSlab))
	}
	return id
}

// lookup resolves an external query id to its dense state, nil when
// unknown. Single-writer side of the same sync.Map the wait-free read
// path resolves through.
func (m *Maintainer) lookup(id model.QueryID) *queryState {
	v, ok := m.views.lookup.Load(id)
	if !ok {
		return nil
	}
	return m.state(v.(uint32))
}

// Len returns the number of queries this maintainer owns.
func (m *Maintainer) Len() int { return m.n }

// Has reports whether the maintainer owns query id.
func (m *Maintainer) Has(id model.QueryID) bool {
	return m.lookup(id) != nil
}

// EachQuery calls fn for every owned query in unspecified order.
func (m *Maintainer) EachQuery(fn func(q *model.Query)) {
	m.eachLive(func(qs *queryState) { fn(qs.q) })
}

// eachLive calls fn for every live arena slot in dense-id order.
func (m *Maintainer) eachLive(fn func(qs *queryState)) {
	for i := uint32(0); i < m.next; i++ {
		if qs := m.state(i); qs.live {
			fn(qs)
		}
	}
}

// tree returns the probe tree for term t, creating it on first use.
// Trees exist independently of inverted lists: a query term that matches
// no valid document still needs its bound registered so future arrivals
// can probe it.
func (m *Maintainer) tree(t model.TermID) *threshtree.Tree {
	tr := m.trees[t]
	if tr == nil {
		seed := m.seed ^ (uint64(t)*0x9e3779b97f4a7c15 + 1)
		if m.scanTrees {
			tr = threshtree.NewScanAll(seed)
		} else {
			tr = threshtree.New(seed)
		}
		m.trees[t] = tr
	}
	return tr
}

// install claims a dense slot for query q and wires it into the arena,
// lookup, and probe trees (with zero bounds: floor 0 until the caller
// sets one). Shared by Register and RestoreQuery; r is the query's
// result set (nil builds a fresh empty one — RestoreQuery passes the
// prevalidated set it already built).
func (m *Maintainer) install(q *model.Query, r *topk.ResultSet) *queryState {
	id := m.alloc()
	qs := m.state(id)
	qs.q = q
	qs.id = id
	qs.live = true
	qs.pubDirty = false
	qs.f = 0
	qs.terms = qs.terms[:0]
	n := float64(len(q.Terms))
	for _, t := range q.Terms {
		qs.terms = append(qs.terms, termState{
			term: t.Term,
			qw:   t.Weight,
			fac:  boundSlack / (n * t.Weight),
		})
	}
	for i := range qs.terms {
		m.tree(qs.terms[i].term).Set(id, 0)
		m.stats.TreeUpdates++
	}
	if r == nil {
		r = topk.NewResultSet(m.seed^uint64(q.ID), q.ID)
	}
	qs.r = r
	m.n++
	m.views.ensure(id)
	m.views.lookup.Store(q.ID, id)
	return qs
}

// Register runs the initial top-k search for q (a threshold-algorithm
// scan, see rebuild) and installs the resulting score floor and probe
// bounds. It fails on a duplicate query id.
func (m *Maintainer) Register(q *model.Query) error {
	if m.Has(q.ID) {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	qs := m.install(q, nil)
	m.rebuild(qs)
	m.markDirty(qs)
	return nil
}

// Unregister removes a query, reporting whether it existed. The dense
// slot is reset and recycled through the free list; readers resolving
// the external id stop seeing the query the moment it leaves the
// lookup, and a reader racing a slot reuse is protected by the
// ownership check on the published snapshot (view.go).
func (m *Maintainer) Unregister(id model.QueryID) bool {
	qs := m.lookup(id)
	if qs == nil {
		return false
	}
	for i := range qs.terms {
		ts := &qs.terms[i]
		if tr := m.trees[ts.term]; tr != nil {
			tr.Remove(qs.id, ts.b)
			m.stats.TreeUpdates++
			if tr.Len() == 0 {
				delete(m.trees, ts.term)
			}
		}
	}
	m.views.lookup.Delete(id)
	m.views.clear(qs.id)
	qs.q = nil
	qs.r = nil
	qs.live = false
	qs.pubDirty = false
	qs.f = 0
	qs.terms = qs.terms[:0] // keep capacity for the next occupant
	m.free = append(m.free, qs.id)
	m.n--
	return true
}

// Result returns the current top-k of a query in descending score order.
func (m *Maintainer) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	qs := m.lookup(id)
	if qs == nil {
		return nil, false
	}
	return qs.r.Top(qs.q.K), true
}

// docWEntry is one slot of the per-event scoring scratch: a term's
// weight in the current document, valid only while mark carries the
// current document stamp.
type docWEntry struct {
	mark uint64
	w    float64
}

// prepDoc loads d's composition list into the scoring scratch so
// subsequent scoreDoc calls against d are one array load per query
// term. A term's entry is valid only under the current stamp, so stale
// weights from earlier documents are dead without being cleared.
func (m *Maintainer) prepDoc(d *model.Document) {
	m.docStamp++
	for _, p := range d.Postings {
		if int(p.Term) >= len(m.docW) {
			grown := make([]docWEntry, p.Term+p.Term/2+64)
			copy(grown, m.docW)
			m.docW = grown
		}
		m.docW[p.Term] = docWEntry{mark: m.docStamp, w: p.Weight}
	}
}

// scoreDoc computes S(d|Q) for the document loaded by prepDoc. It
// reads the query's terms from the maintainer-owned term states (same
// terms and weights as qs.q.Terms, in the same ascending order, without
// dereferencing the shared Query object) and sums the shared-term
// products in that order — exactly the order model.Score's merge-join
// uses — so the result is bit-identical to model.Score(qs.q, d).
func (m *Maintainer) scoreDoc(qs *queryState) float64 {
	var s float64
	for i := range qs.terms {
		if t := qs.terms[i].term; int(t) < len(m.docW) && m.docW[t].mark == m.docStamp {
			s += qs.terms[i].qw * m.docW[t].w
		}
	}
	return s
}

// collectAffected probes the tree of every term of d and gathers,
// without duplicates, the queries with a bound the term's contribution
// can beat — a superset of the queries whose result can change (see
// floor.go for why no other query can be affected). The cost is
// proportional to the number of beatable bounds, not the number of
// queries registered on d's terms: each probe walks the θ-ordered
// prefix and exits at the first unbeatable bound, a whole term is
// skipped in O(1) when its min-θ exceeds the contribution, and in the
// batch path a term whose min-θ exceeds the epoch's max contribution is
// skipped once for the entire epoch. The dedup is an epoch-stamped mark
// in each dense slot, no map and no clearing pass.
//
// The result is a maintainer-owned scratch slice, valid until the next
// call.
func (m *Maintainer) collectAffected(d *model.Document) []*queryState {
	m.touched = m.touched[:0]
	m.stamp++
	stamp := m.stamp
	for _, p := range d.Postings {
		if m.epochSkipOn && m.epochSkip[p.Term] {
			continue
		}
		tr := m.trees[p.Term]
		if tr == nil || tr.Len() == 0 {
			continue
		}
		if min, ok := tr.MinTheta(); !ok || min > p.Weight {
			continue // O(1) whole-term skip: no bound on t is beatable
		}
		tr.ProbeBeatable(p.Weight, func(ref threshtree.Ref) {
			m.stats.ProbeHits++
			qs := m.state(ref)
			if qs.mark != stamp {
				qs.mark = stamp
				qs.escore = 0
				m.touched = append(m.touched, qs)
			}
			if qs.f == 0 {
				for i := range qs.terms {
					if qs.terms[i].term == p.Term {
						qs.escore += qs.terms[i].qw * p.Weight
						break
					}
				}
			}
		})
	}
	return m.touched
}

// HandleArrival applies one arrival to the owned queries: every query
// with a beatable bound is scored against d (bit-identical fast path),
// and d joins R exactly when it reaches the floor. A query whose R has
// grown past the raise margin gets its floor raised. The document must
// already be present in the index, and the index must stay unmodified
// for the duration of the call.
func (m *Maintainer) HandleArrival(d *model.Document) {
	m.prepDoc(d)
	for _, qs := range m.collectAffected(d) {
		m.markDirty(qs)
		m.stats.ScoreComputations++
		score := qs.escore
		if qs.f != 0 {
			score = m.scoreDoc(qs)
		}
		if score < qs.f {
			continue
		}
		qs.r.Add(d.ID, score)
		m.recordAdmit(d.ID, qs.id)
		if m.rollupEnabled && qs.r.Len() > qs.q.K+m.tgtMargin+m.raiseMargin {
			m.raiseFloor(qs)
		}
	}
}

// recordAdmit appends a query's dense id to a document's admit list.
// Every path that adds a document to some R must record the admit, so
// the expiry walk finds every holder without probing the trees.
// Entries are never removed before the document expires: a query that
// later drops the document (purgeBelow after a floor raise), dies
// (Unregister, possibly with slot reuse), or re-admits it (a refill
// after a purge) leaves a stale or duplicate entry behind. The expiry
// walk tolerates all three — r.Remove reports false for a non-member
// and the liveness check skips dead slots — so admits stay O(1) and
// the list is simply discarded wholesale when its document expires.
func (m *Maintainer) recordAdmit(doc model.DocID, id threshtree.Ref) {
	l, ok := m.holders[doc]
	if !ok && len(m.holderPool) > 0 {
		n := len(m.holderPool) - 1
		l, m.holderPool[n] = m.holderPool[n], nil
		m.holderPool = m.holderPool[:n]
	}
	m.holders[doc] = append(l, id)
}

// takeHolders detaches and returns a document's admit list (nil when no
// query ever admitted it — the common case for most of the stream).
// The caller walks the list and hands it back through releaseHolders.
func (m *Maintainer) takeHolders(doc model.DocID) []threshtree.Ref {
	refs, ok := m.holders[doc]
	if !ok {
		return nil
	}
	delete(m.holders, doc)
	return refs
}

// releaseHolders recycles an expired document's admit list for reuse by
// recordAdmit. The pool is capped so one burst of expirations cannot
// pin its high-water slice count forever.
func (m *Maintainer) releaseHolders(refs []threshtree.Ref) {
	const maxPool = 1024
	if refs != nil && len(m.holderPool) < maxPool {
		m.holderPool = append(m.holderPool, refs[:0])
	}
}

// HandleExpire applies one expiration to the owned queries. The
// expiring document's admit list names exactly the queries that ever
// admitted it into R (see recordAdmit), so the walk touches R holders
// directly — no tree probe, whose beatable-bound visit set is a strict
// superset of the holders. A query whose R drops below k rebuilds —
// unless its floor is zero, in which case R already holds every
// matching valid document and there is nothing to refill from. The
// document must already be removed from the index, and the index must
// stay unmodified for the duration of the call.
func (m *Maintainer) HandleExpire(d *model.Document) {
	refs := m.takeHolders(d.ID)
	for _, ref := range refs {
		qs := m.state(ref)
		if !qs.live || !qs.r.Remove(d.ID) {
			continue // stale admit entry: the holder purged d or died
		}
		m.markDirty(qs)
		if qs.r.Len() < qs.q.K && qs.f > 0 {
			m.stats.Refills++
			m.rebuild(qs)
		}
	}
	m.releaseHolders(refs)
}

// HandleEpoch applies the net effect of one epoch — a batch of arrivals
// and expirations — to the owned queries. The index must already
// reflect the epoch-end state (arrived inserted, expired removed, both
// lists excluding documents that arrived and expired within the epoch)
// and stay unmodified for the duration of the call.
//
// Expired documents resolve their affected queries through their admit
// lists (exactly the holders, as in HandleExpire); arrivals are probed
// against the probe trees with the epoch-start bounds, deduplicating
// affected queries across the whole batch. Each affected query then
// gets one net maintenance pass (maintainEpoch). Collecting before any
// maintenance is sound: an arrival collected here that per-event
// processing would have filtered (because an intra-epoch floor raise
// happened first) is merely extra work that the epoch-end floor
// comparison discards, and a stale admit entry merely enqueues a
// removal that r.Remove reports as a no-op.
//
// At the epoch boundary the maintained state satisfies the same floor
// invariants as event-serial processing, so the reported top-k is
// identical; internal state (floor values, R membership beyond the
// top-k) and operation counters legitimately differ, which is exactly
// where the amortization comes from.
func (m *Maintainer) HandleEpoch(arrived, expired []*model.Document) {
	if m.n == 0 {
		return
	}
	// Single-event epochs take the per-event procedures unchanged.
	if len(expired) == 0 && len(arrived) == 1 {
		m.HandleArrival(arrived[0])
		return
	}
	if len(arrived) == 0 && len(expired) == 1 {
		m.HandleExpire(expired[0])
		return
	}
	m.beginEpochSkip(arrived)
	m.estamp++
	for _, d := range expired {
		refs := m.takeHolders(d.ID)
		for _, ref := range refs {
			qs := m.state(ref)
			if !qs.live {
				continue
			}
			w := m.epochFor(qs)
			w.dels = append(w.dels, d)
		}
		m.releaseHolders(refs)
	}
	for _, d := range arrived {
		m.prepDoc(d)
		for _, qs := range m.collectAffected(d) {
			w := m.epochFor(qs)
			m.stats.ScoreComputations++
			score := qs.escore
			if qs.f != 0 {
				score = m.scoreDoc(qs)
			}
			w.adds = append(w.adds, d)
			w.addScores = append(w.addScores, score)
		}
	}
	m.epochSkipOn = false
	for i := range m.epochQueue {
		w := &m.epochQueue[i]
		m.maintainEpoch(w.qs, w.adds, w.addScores, w.dels)
		// Drop the document references (keeping capacity): otherwise the
		// scratch pins one burst's worth of expired documents until a
		// future epoch happens to reuse every slot to the same depth.
		w.qs = nil
		clear(w.adds)
		clear(w.dels)
		w.adds, w.addScores, w.dels = w.adds[:0], w.addScores[:0], w.dels[:0]
	}
	used := len(m.epochQueue)
	m.epochQueue = m.epochQueue[:0]
	m.shrinkScratch(used)
}

// beginEpochSkip computes the whole-term epoch skip: the maximum
// contribution any of the epoch's arrivals carries for each term,
// resolved once against the term tree's min-θ. A term whose epoch-max
// contribution cannot beat even the smallest bound is skipped for every
// document of the epoch with one map lookup, without re-consulting the
// tree per document. The skip is semantically a no-op (the per-document
// probe would find nothing), so it cannot change visit sets or
// counters. Only arrivals feed the table — expirations resolve through
// admit lists and never probe.
func (m *Maintainer) beginEpochSkip(arrived []*model.Document) {
	if m.epochMaxW == nil {
		m.epochMaxW = make(map[model.TermID]float64, 256)
		m.epochSkip = make(map[model.TermID]bool, 256)
	}
	clear(m.epochMaxW)
	clear(m.epochSkip)
	for _, d := range arrived {
		for _, p := range d.Postings {
			if p.Weight > m.epochMaxW[p.Term] {
				m.epochMaxW[p.Term] = p.Weight
			}
		}
	}
	for t, w := range m.epochMaxW {
		tr := m.trees[t]
		skip := tr == nil || tr.Len() == 0
		if !skip {
			if min, ok := tr.MinTheta(); !ok || min > w {
				skip = true
			}
		}
		m.epochSkip[t] = skip
	}
	m.epochSkipOn = true
}

// shrinkScratch bounds the retained capacity of the epoch and touched
// scratch buffers. One unusually large epoch (a burst, a catch-up
// replay) would otherwise pin its high-water capacity — including every
// inner adds/dels backing array — for the maintainer's lifetime. After
// shrinkAfter consecutive epochs that used less than a quarter of the
// retained capacity, the buffers are reallocated to the recent working
// size.
func (m *Maintainer) shrinkScratch(used int) {
	const (
		minCap      = 256
		shrinkAfter = 16
	)
	if cap(m.epochQueue) <= minCap || used*4 > cap(m.epochQueue) {
		m.epochLow = 0
		return
	}
	m.epochLow++
	if m.epochLow < shrinkAfter {
		return
	}
	m.epochLow = 0
	newCap := used * 2
	if newCap < minCap {
		newCap = minCap
	}
	m.epochQueue = make([]epochWork, 0, newCap)
	if cap(m.touched) > newCap {
		m.touched = make([]*queryState, 0, newCap)
	}
}

// epochFor returns the epoch work entry for qs, creating it on first
// touch. Entries live in a reusable queue so steady-state epochs do not
// allocate; membership is the emark stamp in the dense slot.
func (m *Maintainer) epochFor(qs *queryState) *epochWork {
	if qs.emark == m.estamp {
		return &m.epochQueue[qs.eslot]
	}
	qs.emark = m.estamp
	i := len(m.epochQueue)
	qs.eslot = int32(i)
	if i < cap(m.epochQueue) {
		m.epochQueue = m.epochQueue[:i+1]
		w := &m.epochQueue[i]
		w.qs, w.adds, w.addScores, w.dels = qs, w.adds[:0], w.addScores[:0], w.dels[:0]
	} else {
		m.epochQueue = append(m.epochQueue, epochWork{qs: qs})
	}
	return &m.epochQueue[i]
}

// markDirty records that a query's result may have changed since the
// last Publish. Over-marking (an affected query whose result ends up
// untouched) is deliberate and cheap: Freeze on an unmutated result set
// is a cached pointer, so publishing it is a no-op store. Before the
// first Publish the tracking is disarmed entirely.
func (m *Maintainer) markDirty(qs *queryState) {
	if !m.publishOn || qs.pubDirty {
		return
	}
	qs.pubDirty = true
	m.pubDirty = append(m.pubDirty, qs)
}

// WarmViews precomputes the frozen snapshot of every dirty query so a
// later Publish finds them cached. It exists so the sharded engine's
// workers can do the copy-on-publish work in parallel during the
// fan-out, leaving the coordinator's Publish with pure pointer swaps.
// Warming mid-operation (between an arrival and its derived expirations)
// is safe: nothing is published until Publish, and a re-mutated query
// simply refreezes.
func (m *Maintainer) WarmViews() {
	for _, qs := range m.pubDirty {
		if qs.live && qs.pubDirty {
			qs.r.Freeze(qs.q.K)
		}
	}
}

// Publish swaps every dirty query's publication slot to its current
// frozen snapshot and resets the dirty list. Must be called by the
// maintainer's single writer at a publication boundary; readers observe
// each swap atomically. The first call arms dirty tracking and
// publishes every owned query, so enabling the read path late still
// starts from a complete boundary. Slots whose query was unregistered
// (or unregistered and re-registered) since marking are skipped or
// republished through the same ownership-stamped snapshot, so a reused
// dense id can never leak a dead query's view.
func (m *Maintainer) Publish() {
	if !m.publishOn {
		m.publishOn = true
		m.eachLive(func(qs *queryState) { m.markDirty(qs) })
	}
	for i, qs := range m.pubDirty {
		if qs.live && qs.pubDirty {
			m.views.publish(qs.id, qs.r.Freeze(qs.q.K))
		}
		qs.pubDirty = false
		m.pubDirty[i] = nil // drop the reference: don't pin dead queries
	}
	m.pubDirty = m.pubDirty[:0]
}

// Views returns the maintainer's published read handle.
func (m *Maintainer) Views() *Views { return &m.views }

// maintainEpoch is the net-effect maintenance of one query for one
// epoch: all expirations are removed from R and all floor-reaching
// arrivals added (scores were computed at probe time), then at most one
// rebuild (only when the removals actually left the top-k deficient —
// additions may have already repaired it) or one floor raise runs,
// instead of one of each per event.
func (m *Maintainer) maintainEpoch(qs *queryState, adds []*model.Document, addScores []float64, dels []*model.Document) {
	m.markDirty(qs)
	k := qs.q.K
	for _, d := range dels {
		qs.r.Remove(d.ID)
	}
	for i, d := range adds {
		if s := addScores[i]; s >= qs.f {
			qs.r.Add(d.ID, s)
			m.recordAdmit(d.ID, qs.id)
		}
	}
	switch {
	case qs.r.Len() < k && qs.f > 0:
		m.stats.Refills++
		m.rebuild(qs)
	case m.rollupEnabled && qs.r.Len() > k+m.tgtMargin+m.raiseMargin:
		m.raiseFloor(qs)
	}
}

// MemoryUsage reports the maintainer's estimated per-component heap
// footprint: probe trees, dense query state (arena slabs, term vectors,
// result sets) and the published view slots. The inverted index is
// owned by the coordinator and accounted there.
func (m *Maintainer) MemoryUsage() Memory {
	var mem Memory
	for _, tr := range m.trees {
		mem.TreeBytes += tr.MemoryBytes()
	}
	// The trees map itself.
	mem.TreeBytes += uint64(len(m.trees)) * 48
	mem.QueryStateBytes += uint64(len(m.slabs)) * uint64(unsafe.Sizeof(stateSlab{}))
	m.eachLive(func(qs *queryState) {
		mem.QueryStateBytes += uint64(cap(qs.terms)) * uint64(unsafe.Sizeof(termState{}))
		mem.QueryStateBytes += qs.r.MemoryBytes()
	})
	// Admit lists: one map entry plus a ref slice per held document.
	for _, refs := range m.holders {
		mem.QueryStateBytes += 48 + uint64(cap(refs))*4
	}
	mem.ViewBytes = m.views.memoryBytes()
	return mem
}
