package core

import (
	"fmt"
	"unsafe"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/threshtree"
	"ita/internal/topk"
)

// Maintainer owns the per-query maintenance state of ITA for a set of
// queries: their threshold trees, result sets R and local thresholds.
// It is the unit of parallelism of the sharded engine — every piece of
// state it touches during event handling is strictly per-query (trees,
// query states, stats, scratch buffers), while the inverted index it
// reads is owned by its coordinator and guaranteed quiescent for the
// duration of HandleArrival/HandleExpire.
//
// Query state lives in dense slab arenas, not a map of heap-allocated
// structs: every registered query gets a dense internal id (a uint32
// index into stable-addressed slabs), recycled through a free list on
// Unregister. External QueryIDs appear exactly twice — in the
// ext→dense lookup shared with the published Views, and inside the
// *model.Query itself — so the per-event hot paths (threshold-tree
// probes, affected-query dedup, epoch work queues) run entirely on
// dense ids with array indexing instead of map lookups. The threshold
// trees store dense ids too, which is what lets a probe hit resolve to
// its query state without touching any map.
//
// A Maintainer is not safe for concurrent use with itself; the sharded
// engine runs many maintainers concurrently, each on its own goroutine,
// which is safe exactly because they share nothing but the read-only
// index.
type Maintainer struct {
	index *invindex.Index
	stats *Stats
	trees map[model.TermID]*threshtree.Tree
	seed  uint64

	// Dense query-state arena: stable-addressed slabs indexed by dense
	// id, a free list for Unregister churn, and the live count. The
	// ext→dense lookup lives in views (it is the same mapping the
	// wait-free read path resolves through).
	slabs []*stateSlab
	free  []uint32
	next  uint32 // high-water dense id
	n     int    // live queries

	// Ablation switches (DESIGN.md A1, A2). Both default to the paper's
	// configuration: greedy probing and roll-up enabled.
	rollupEnabled bool
	greedyProbe   bool
	pureTrees     bool // skiplist-only threshold trees (equivalence reference)

	// Scratch reused across events to keep steady-state processing
	// allocation-free. Affected-query dedup and the epoch work queue
	// are epoch-stamped dense marks inside the query states themselves
	// (queryState.mark/emark against stamp/estamp), so there is no map
	// to clear between events.
	stamp   uint64
	estamp  uint64
	touched []*queryState
	iterBuf []invindex.Iterator

	// Epoch scratch: per-query net work lists reused across HandleEpoch
	// calls (the inner adds/dels slices keep their capacity).
	epochQueue []epochWork
	// epochHigh tracks consecutive HandleEpoch calls that used only a
	// small fraction of the retained scratch capacity; past a threshold
	// the scratch shrinks back (see shrinkScratch).
	epochLow int

	// Published read path: one publication slot per dense id (views)
	// and the queries whose results changed since the last Publish. See
	// view.go for the consistency model. Dirty tracking is armed by the
	// first Publish call: the facade arms it at construction (serving
	// reads is its job), while core-level users that never publish —
	// the figure benchmarks and throughput harnesses driving ITA and
	// shard.Engine directly — pay nothing for the publication machinery.
	views     Views
	pubDirty  []*queryState
	publishOn bool
}

// Dense-state slabs: stable addresses (grow-by-slab, never realloc), so
// scratch lists may hold *queryState across events and the epoch queue
// across one epoch.
const (
	slabBits = 9
	slabSize = 1 << slabBits
	slabMask = slabSize - 1
)

type stateSlab [slabSize]queryState

// epochWork is the net effect of one epoch on one query: the arrived
// documents that probe ahead of a local threshold and the expired ones.
type epochWork struct {
	qs   *queryState
	adds []*model.Document
	dels []*model.Document
}

// MaintainerConfig carries the tuning knobs shared by the single-threaded
// and sharded engines.
type MaintainerConfig struct {
	Seed            uint64
	DisableRollup   bool // ablation A2
	RoundRobinProbe bool // ablation A1
	// SkiplistOnlyTrees pins every threshold tree to the skip-list tier
	// (the pre-tiering representation). Test/equivalence use only.
	SkiplistOnlyTrees bool
}

// NewMaintainer returns an empty maintainer reading from index and
// accumulating its operation counters into stats. The caller owns both:
// the sharded engine hands every shard the same index but a private
// stats block, merged on read.
func NewMaintainer(index *invindex.Index, stats *Stats, cfg MaintainerConfig) *Maintainer {
	return &Maintainer{
		index:         index,
		stats:         stats,
		trees:         make(map[model.TermID]*threshtree.Tree),
		seed:          cfg.Seed,
		rollupEnabled: !cfg.DisableRollup,
		greedyProbe:   !cfg.RoundRobinProbe,
		pureTrees:     cfg.SkiplistOnlyTrees,
	}
}

// termState tracks one query term: its weight and its local threshold,
// the position of the first unconsumed entry of the term's inverted
// list (Bottom once the list is exhausted).
type termState struct {
	term  model.TermID
	qw    float64
	theta invindex.EntryKey
}

// queryState is one dense arena slot. The zero value is a free slot;
// Unregister resets a slot to (almost) zero, keeping only the terms
// slice capacity and the stamp fields (stamps grow monotonically, so a
// recycled slot can never falsely match a current stamp).
type queryState struct {
	q     *model.Query
	terms []termState
	r     *topk.ResultSet
	id    uint32 // own dense id (slab index)
	live  bool

	// Publication state: whether r changed since the last Publish. The
	// publication slot itself is views entry id.
	pubDirty bool

	// Epoch-stamped scratch marks, replacing the former touchedMark and
	// epochIdx maps: a slot is "marked" exactly when its stamp equals
	// the maintainer's current one.
	mark  uint64 // collectAffected dedup stamp
	emark uint64 // HandleEpoch work-queue stamp
	eslot int32  // index into epochQueue, valid while emark is current
}

// state returns the arena slot of dense id i.
func (m *Maintainer) state(i uint32) *queryState {
	return &m.slabs[i>>slabBits][i&slabMask]
}

// alloc reserves a dense id, reusing a freed slot when one exists.
func (m *Maintainer) alloc() uint32 {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id
	}
	id := m.next
	m.next++
	if int(id>>slabBits) == len(m.slabs) {
		m.slabs = append(m.slabs, new(stateSlab))
	}
	return id
}

// lookup resolves an external query id to its dense state, nil when
// unknown. Single-writer side of the same sync.Map the wait-free read
// path resolves through.
func (m *Maintainer) lookup(id model.QueryID) *queryState {
	v, ok := m.views.lookup.Load(id)
	if !ok {
		return nil
	}
	return m.state(v.(uint32))
}

// tau returns the influence threshold τ = Σ w_{Q,t}·θ_{Q,t}.W, the least
// upper bound on the score of any valid document outside R (invariant
// I2).
func (qs *queryState) tau() float64 {
	var t float64
	for i := range qs.terms {
		t += qs.terms[i].qw * qs.terms[i].theta.W
	}
	return t
}

// Len returns the number of queries this maintainer owns.
func (m *Maintainer) Len() int { return m.n }

// Has reports whether the maintainer owns query id.
func (m *Maintainer) Has(id model.QueryID) bool {
	return m.lookup(id) != nil
}

// EachQuery calls fn for every owned query in unspecified order.
func (m *Maintainer) EachQuery(fn func(q *model.Query)) {
	m.eachLive(func(qs *queryState) { fn(qs.q) })
}

// eachLive calls fn for every live arena slot in dense-id order.
func (m *Maintainer) eachLive(fn func(qs *queryState)) {
	for i := uint32(0); i < m.next; i++ {
		if qs := m.state(i); qs.live {
			fn(qs)
		}
	}
}

// tree returns the threshold tree for term t, creating it on first use.
// Trees exist independently of inverted lists: a query term that matches
// no valid document still needs its threshold registered so future
// arrivals can probe it.
func (m *Maintainer) tree(t model.TermID) *threshtree.Tree {
	tr := m.trees[t]
	if tr == nil {
		seed := m.seed ^ (uint64(t)*0x9e3779b97f4a7c15 + 1)
		if m.pureTrees {
			tr = threshtree.NewSkiplistOnly(seed)
		} else {
			tr = threshtree.New(seed)
		}
		m.trees[t] = tr
	}
	return tr
}

// install claims a dense slot for query q and wires it into the arena
// and lookup. Shared by Register and RestoreQuery; r is the query's
// result set (nil builds a fresh empty one — RestoreQuery passes the
// prevalidated set it already built).
func (m *Maintainer) install(q *model.Query, r *topk.ResultSet) *queryState {
	id := m.alloc()
	qs := m.state(id)
	qs.q = q
	qs.id = id
	qs.live = true
	qs.pubDirty = false
	qs.terms = qs.terms[:0]
	for _, t := range q.Terms {
		qs.terms = append(qs.terms, termState{term: t.Term, qw: t.Weight, theta: invindex.Top()})
	}
	if r == nil {
		r = topk.NewResultSet(m.seed^uint64(q.ID), q.ID)
	}
	qs.r = r
	m.n++
	m.views.ensure(id)
	m.views.lookup.Store(q.ID, id)
	return qs
}

// Register runs the initial top-k search of §III-A for q and installs
// the resulting local thresholds. It fails on a duplicate query id.
func (m *Maintainer) Register(q *model.Query) error {
	if m.Has(q.ID) {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	qs := m.install(q, nil)
	m.runSearch(qs)
	m.markDirty(qs)
	return nil
}

// Unregister removes a query, reporting whether it existed. The dense
// slot is reset and recycled through the free list; readers resolving
// the external id stop seeing the query the moment it leaves the
// lookup, and a reader racing a slot reuse is protected by the
// ownership check on the published snapshot (view.go).
func (m *Maintainer) Unregister(id model.QueryID) bool {
	qs := m.lookup(id)
	if qs == nil {
		return false
	}
	for i := range qs.terms {
		ts := &qs.terms[i]
		if tr := m.trees[ts.term]; tr != nil {
			tr.Remove(qs.id, ts.theta)
			m.stats.TreeUpdates++
			if tr.Len() == 0 {
				delete(m.trees, ts.term)
			}
		}
	}
	m.views.lookup.Delete(id)
	m.views.clear(qs.id)
	qs.q = nil
	qs.r = nil
	qs.live = false
	qs.pubDirty = false
	qs.terms = qs.terms[:0] // keep capacity for the next occupant
	m.free = append(m.free, qs.id)
	m.n--
	return true
}

// Result returns the current top-k of a query in descending score order.
func (m *Maintainer) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	qs := m.lookup(id)
	if qs == nil {
		return nil, false
	}
	return qs.r.Top(qs.q.K), true
}

// collectAffected probes the threshold tree of every term of d and
// gathers, without duplicates, the queries whose consumed region
// contains the corresponding impact entry. The paper's note that "d is
// processed only once for each Qi even if d ranks higher than several of
// Q's local thresholds" is the deduplication here — an epoch-stamped
// mark in each dense slot, no map and no clearing pass.
//
// The result is a maintainer-owned scratch slice, valid until the next
// call.
func (m *Maintainer) collectAffected(d *model.Document) []*queryState {
	m.touched = m.touched[:0]
	m.stamp++
	stamp := m.stamp
	for _, p := range d.Postings {
		tr := m.trees[p.Term]
		if tr == nil || tr.Len() == 0 {
			continue
		}
		entry := invindex.EntryKey{W: p.Weight, Doc: d.ID}
		tr.Probe(entry, func(ref threshtree.Ref) {
			m.stats.ProbeHits++
			qs := m.state(ref)
			if qs.mark == stamp {
				return
			}
			qs.mark = stamp
			m.touched = append(m.touched, qs)
		})
	}
	return m.touched
}

// HandleArrival implements the arrival procedure of §III-B for the
// owned queries. The document must already be present in the index, and
// the index must stay unmodified for the duration of the call.
func (m *Maintainer) HandleArrival(d *model.Document) {
	for _, qs := range m.collectAffected(d) {
		m.markDirty(qs)
		m.stats.ScoreComputations++
		score := model.Score(qs.q, d)
		skBefore := qs.r.Kth(qs.q.K)
		qs.r.Add(d.ID, score)
		if score > skBefore && m.rollupEnabled {
			// The arrival entered the top-k, raising Sk: shrink the
			// monitored region.
			m.rollUp(qs)
		}
	}
}

// HandleExpire implements the expiration procedure of §III-B for the
// owned queries. The document must already be removed from the index,
// and the index must stay unmodified for the duration of the call.
func (m *Maintainer) HandleExpire(d *model.Document) {
	for _, qs := range m.collectAffected(d) {
		m.markDirty(qs)
		rank, inR := qs.r.Rank(d.ID)
		if !inR {
			// Possible only for boundary positions the roll-up already
			// evicted; nothing to do.
			continue
		}
		qs.r.Remove(d.ID)
		if rank < qs.q.K {
			// The expired document was in the top-k: refill by resuming
			// the threshold search from the local thresholds downwards.
			m.stats.Refills++
			m.runSearch(qs)
		}
	}
}

// HandleEpoch applies the net effect of one epoch — a batch of arrivals
// and expirations — to the owned queries. The index must already
// reflect the epoch-end state (arrived inserted, expired removed, both
// lists excluding documents that arrived and expired within the epoch)
// and stay unmodified for the duration of the call.
//
// Every epoch document is probed against the threshold trees first,
// with the epoch-start thresholds, deduplicating affected queries
// across the whole batch; each affected query then gets one net
// maintenance pass (maintainEpoch). Probing before any maintenance is
// sound in both directions: an expired document still in some R is
// necessarily covered by an epoch-start threshold (the R-coverage
// invariant), so its queries are always collected; and an arrival
// consumed here that per-event processing would have skipped (because
// an intra-epoch roll-up lifted the threshold first) is merely extra
// coverage that the epoch-end roll-up re-evicts.
//
// At the epoch boundary the maintained state satisfies the same
// invariants I1–I3 as event-serial processing, so the reported top-k is
// identical; internal state (threshold positions, R membership beyond
// the top-k) and operation counters legitimately differ, which is
// exactly where the amortization comes from.
func (m *Maintainer) HandleEpoch(arrived, expired []*model.Document) {
	if m.n == 0 {
		return
	}
	// Single-event epochs take the per-event procedures unchanged.
	if len(expired) == 0 && len(arrived) == 1 {
		m.HandleArrival(arrived[0])
		return
	}
	if len(arrived) == 0 && len(expired) == 1 {
		m.HandleExpire(expired[0])
		return
	}
	m.estamp++
	for _, d := range expired {
		for _, qs := range m.collectAffected(d) {
			w := m.epochFor(qs)
			w.dels = append(w.dels, d)
		}
	}
	for _, d := range arrived {
		for _, qs := range m.collectAffected(d) {
			w := m.epochFor(qs)
			w.adds = append(w.adds, d)
		}
	}
	for i := range m.epochQueue {
		w := &m.epochQueue[i]
		m.maintainEpoch(w.qs, w.adds, w.dels)
		// Drop the document references (keeping capacity): otherwise the
		// scratch pins one burst's worth of expired documents until a
		// future epoch happens to reuse every slot to the same depth.
		w.qs = nil
		clear(w.adds)
		clear(w.dels)
		w.adds, w.dels = w.adds[:0], w.dels[:0]
	}
	used := len(m.epochQueue)
	m.epochQueue = m.epochQueue[:0]
	m.shrinkScratch(used)
}

// shrinkScratch bounds the retained capacity of the epoch and touched
// scratch buffers. One unusually large epoch (a burst, a catch-up
// replay) would otherwise pin its high-water capacity — including every
// inner adds/dels backing array — for the maintainer's lifetime. After
// shrinkAfter consecutive epochs that used less than a quarter of the
// retained capacity, the buffers are reallocated to the recent working
// size.
func (m *Maintainer) shrinkScratch(used int) {
	const (
		minCap      = 256
		shrinkAfter = 16
	)
	if cap(m.epochQueue) <= minCap || used*4 > cap(m.epochQueue) {
		m.epochLow = 0
		return
	}
	m.epochLow++
	if m.epochLow < shrinkAfter {
		return
	}
	m.epochLow = 0
	newCap := used * 2
	if newCap < minCap {
		newCap = minCap
	}
	m.epochQueue = make([]epochWork, 0, newCap)
	if cap(m.touched) > newCap {
		m.touched = make([]*queryState, 0, newCap)
	}
}

// epochFor returns the epoch work entry for qs, creating it on first
// touch. Entries live in a reusable queue so steady-state epochs do not
// allocate; membership is the emark stamp in the dense slot.
func (m *Maintainer) epochFor(qs *queryState) *epochWork {
	if qs.emark == m.estamp {
		return &m.epochQueue[qs.eslot]
	}
	qs.emark = m.estamp
	i := len(m.epochQueue)
	qs.eslot = int32(i)
	if i < cap(m.epochQueue) {
		m.epochQueue = m.epochQueue[:i+1]
		w := &m.epochQueue[i]
		w.qs, w.adds, w.dels = qs, w.adds[:0], w.dels[:0]
	} else {
		m.epochQueue = append(m.epochQueue, epochWork{qs: qs})
	}
	return &m.epochQueue[i]
}

// markDirty records that a query's result may have changed since the
// last Publish. Over-marking (an affected query whose result ends up
// untouched) is deliberate and cheap: Freeze on an unmutated result set
// is a cached pointer, so publishing it is a no-op store. Before the
// first Publish the tracking is disarmed entirely.
func (m *Maintainer) markDirty(qs *queryState) {
	if !m.publishOn || qs.pubDirty {
		return
	}
	qs.pubDirty = true
	m.pubDirty = append(m.pubDirty, qs)
}

// WarmViews precomputes the frozen snapshot of every dirty query so a
// later Publish finds them cached. It exists so the sharded engine's
// workers can do the copy-on-publish work in parallel during the
// fan-out, leaving the coordinator's Publish with pure pointer swaps.
// Warming mid-operation (between an arrival and its derived expirations)
// is safe: nothing is published until Publish, and a re-mutated query
// simply refreezes.
func (m *Maintainer) WarmViews() {
	for _, qs := range m.pubDirty {
		if qs.live && qs.pubDirty {
			qs.r.Freeze(qs.q.K)
		}
	}
}

// Publish swaps every dirty query's publication slot to its current
// frozen snapshot and resets the dirty list. Must be called by the
// maintainer's single writer at a publication boundary; readers observe
// each swap atomically. The first call arms dirty tracking and
// publishes every owned query, so enabling the read path late still
// starts from a complete boundary. Slots whose query was unregistered
// (or unregistered and re-registered) since marking are skipped or
// republished through the same ownership-stamped snapshot, so a reused
// dense id can never leak a dead query's view.
func (m *Maintainer) Publish() {
	if !m.publishOn {
		m.publishOn = true
		m.eachLive(func(qs *queryState) { m.markDirty(qs) })
	}
	for i, qs := range m.pubDirty {
		if qs.live && qs.pubDirty {
			m.views.publish(qs.id, qs.r.Freeze(qs.q.K))
		}
		qs.pubDirty = false
		m.pubDirty[i] = nil // drop the reference: don't pin dead queries
	}
	m.pubDirty = m.pubDirty[:0]
}

// Views returns the maintainer's published read handle.
func (m *Maintainer) Views() *Views { return &m.views }

// maintainEpoch is the net-effect maintenance of one query for one
// epoch: all expirations are removed from R and all consumed arrivals
// scored and added, then at most one refill search (only when the
// removals actually left the top-k deficient — additions may have
// already repaired it) and at most one roll-up (only when some arrival
// raised Sk) run, instead of one of each per event.
func (m *Maintainer) maintainEpoch(qs *queryState, adds, dels []*model.Document) {
	m.markDirty(qs)
	k := qs.q.K
	lostTopK := false
	for _, d := range dels {
		rank, inR := qs.r.Rank(d.ID)
		if !inR {
			continue // evicted earlier by a roll-up
		}
		qs.r.Remove(d.ID)
		if rank < k {
			lostTopK = true
		}
	}
	skBefore := qs.r.Kth(k)
	raised := false
	for _, d := range adds {
		m.stats.ScoreComputations++
		score := model.Score(qs.q, d)
		qs.r.Add(d.ID, score)
		if score > skBefore {
			raised = true
		}
	}
	// I3 can only have broken if a top-k member left: τ is untouched and
	// additions only raise Sk. Refill exactly when it is still broken
	// after the additions.
	if lostTopK && (qs.r.Len() < k || qs.tau() > qs.r.Kth(k)) {
		m.stats.Refills++
		m.runSearch(qs)
	}
	if raised && m.rollupEnabled {
		m.rollUp(qs)
	}
}

// MemoryUsage reports the maintainer's estimated per-component heap
// footprint: threshold trees, dense query state (arena slabs, term
// vectors, result sets) and the published view slots. The inverted
// index is owned by the coordinator and accounted there.
func (m *Maintainer) MemoryUsage() Memory {
	var mem Memory
	for _, tr := range m.trees {
		mem.TreeBytes += tr.MemoryBytes()
	}
	// The trees map itself.
	mem.TreeBytes += uint64(len(m.trees)) * 48
	mem.QueryStateBytes += uint64(len(m.slabs)) * uint64(unsafe.Sizeof(stateSlab{}))
	m.eachLive(func(qs *queryState) {
		mem.QueryStateBytes += uint64(cap(qs.terms)) * uint64(unsafe.Sizeof(termState{}))
		mem.QueryStateBytes += qs.r.MemoryBytes()
	})
	mem.ViewBytes = m.views.memoryBytes()
	return mem
}
