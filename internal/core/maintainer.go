package core

import (
	"fmt"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/threshtree"
	"ita/internal/topk"
)

// Maintainer owns the per-query maintenance state of ITA for a set of
// queries: their threshold trees, result sets R and local thresholds.
// It is the unit of parallelism of the sharded engine — every piece of
// state it touches during event handling is strictly per-query (trees,
// queryStates, stats, scratch buffers), while the inverted index it
// reads is owned by its coordinator and guaranteed quiescent for the
// duration of HandleArrival/HandleExpire.
//
// A Maintainer is not safe for concurrent use with itself; the sharded
// engine runs many maintainers concurrently, each on its own goroutine,
// which is safe exactly because they share nothing but the read-only
// index.
type Maintainer struct {
	index   *invindex.Index
	stats   *Stats
	trees   map[model.TermID]*threshtree.Tree
	queries map[model.QueryID]*queryState
	seed    uint64

	// Ablation switches (DESIGN.md A1, A2). Both default to the paper's
	// configuration: greedy probing and roll-up enabled.
	rollupEnabled bool
	greedyProbe   bool

	// Scratch buffers reused across events to keep steady-state
	// processing allocation-free.
	touched     []*queryState
	touchedMark map[model.QueryID]struct{}

	// Epoch scratch: per-query net work lists reused across HandleEpoch
	// calls (the inner adds/dels slices keep their capacity).
	epochQueue []epochWork
	epochIdx   map[model.QueryID]int

	// Published read path: one publication slot per query (views) and
	// the queries whose results changed since the last Publish. See
	// view.go for the consistency model. Dirty tracking is armed by the
	// first Publish call: the facade arms it at construction (serving
	// reads is its job), while core-level users that never publish —
	// the figure benchmarks and throughput harnesses driving ITA and
	// shard.Engine directly — pay nothing for the publication machinery.
	views     Views
	pubDirty  []*queryState
	publishOn bool
}

// epochWork is the net effect of one epoch on one query: the arrived
// documents that probe ahead of a local threshold and the expired ones.
type epochWork struct {
	qs   *queryState
	adds []*model.Document
	dels []*model.Document
}

// MaintainerConfig carries the tuning knobs shared by the single-threaded
// and sharded engines.
type MaintainerConfig struct {
	Seed            uint64
	DisableRollup   bool // ablation A2
	RoundRobinProbe bool // ablation A1
}

// NewMaintainer returns an empty maintainer reading from index and
// accumulating its operation counters into stats. The caller owns both:
// the sharded engine hands every shard the same index but a private
// stats block, merged on read.
func NewMaintainer(index *invindex.Index, stats *Stats, cfg MaintainerConfig) *Maintainer {
	return &Maintainer{
		index:         index,
		stats:         stats,
		trees:         make(map[model.TermID]*threshtree.Tree),
		queries:       make(map[model.QueryID]*queryState),
		seed:          cfg.Seed,
		rollupEnabled: !cfg.DisableRollup,
		greedyProbe:   !cfg.RoundRobinProbe,
		touchedMark:   make(map[model.QueryID]struct{}),
		epochIdx:      make(map[model.QueryID]int),
	}
}

// termState tracks one query term: its weight and its local threshold,
// the position of the first unconsumed entry of the term's inverted
// list (Bottom once the list is exhausted).
type termState struct {
	term  model.TermID
	qw    float64
	theta invindex.EntryKey
}

type queryState struct {
	q     *model.Query
	terms []termState
	r     *topk.ResultSet

	// Publication state: the query's slot in the maintainer's Views and
	// whether r changed since the last Publish.
	slot     *viewSlot
	pubDirty bool
}

// tau returns the influence threshold τ = Σ w_{Q,t}·θ_{Q,t}.W, the least
// upper bound on the score of any valid document outside R (invariant
// I2).
func (qs *queryState) tau() float64 {
	var t float64
	for i := range qs.terms {
		t += qs.terms[i].qw * qs.terms[i].theta.W
	}
	return t
}

// Len returns the number of queries this maintainer owns.
func (m *Maintainer) Len() int { return len(m.queries) }

// Has reports whether the maintainer owns query id.
func (m *Maintainer) Has(id model.QueryID) bool {
	_, ok := m.queries[id]
	return ok
}

// EachQuery calls fn for every owned query in unspecified order.
func (m *Maintainer) EachQuery(fn func(q *model.Query)) {
	for _, qs := range m.queries {
		fn(qs.q)
	}
}

// tree returns the threshold tree for term t, creating it on first use.
// Trees exist independently of inverted lists: a query term that matches
// no valid document still needs its threshold registered so future
// arrivals can probe it.
func (m *Maintainer) tree(t model.TermID) *threshtree.Tree {
	tr := m.trees[t]
	if tr == nil {
		tr = threshtree.New(m.seed ^ (uint64(t)*0x9e3779b97f4a7c15 + 1))
		m.trees[t] = tr
	}
	return tr
}

// Register runs the initial top-k search of §III-A for q and installs
// the resulting local thresholds. It fails on a duplicate query id.
func (m *Maintainer) Register(q *model.Query) error {
	if _, dup := m.queries[q.ID]; dup {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	qs := &queryState{
		q:     q,
		terms: make([]termState, len(q.Terms)),
		r:     topk.NewResultSet(m.seed ^ uint64(q.ID)),
		slot:  &viewSlot{},
	}
	for i, t := range q.Terms {
		qs.terms[i] = termState{term: t.Term, qw: t.Weight, theta: invindex.Top()}
	}
	m.queries[q.ID] = qs
	m.views.slots.Store(q.ID, qs.slot)
	m.runSearch(qs)
	m.markDirty(qs)
	return nil
}

// Unregister removes a query, reporting whether it existed.
func (m *Maintainer) Unregister(id model.QueryID) bool {
	qs, ok := m.queries[id]
	if !ok {
		return false
	}
	for i := range qs.terms {
		ts := &qs.terms[i]
		if tr := m.trees[ts.term]; tr != nil {
			tr.Remove(id, ts.theta)
			m.stats.TreeUpdates++
			if tr.Len() == 0 {
				delete(m.trees, ts.term)
			}
		}
	}
	delete(m.queries, id)
	// Readers holding the engine's ViewReader stop seeing the query the
	// moment the slot leaves the map; the slot itself may still sit in
	// pubDirty, where publishing into it is harmless (unreachable).
	m.views.slots.Delete(id)
	return true
}

// Result returns the current top-k of a query in descending score order.
func (m *Maintainer) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	qs, ok := m.queries[id]
	if !ok {
		return nil, false
	}
	return qs.r.Top(qs.q.K), true
}

// collectAffected probes the threshold tree of every term of d and
// gathers, without duplicates, the queries whose consumed region
// contains the corresponding impact entry. The paper's note that "d is
// processed only once for each Qi even if d ranks higher than several of
// Q's local thresholds" is the deduplication here.
//
// The result is a maintainer-owned scratch slice, valid until the next
// call.
func (m *Maintainer) collectAffected(d *model.Document) []*queryState {
	m.touched = m.touched[:0]
	for _, p := range d.Postings {
		tr := m.trees[p.Term]
		if tr == nil || tr.Len() == 0 {
			continue
		}
		entry := invindex.EntryKey{W: p.Weight, Doc: d.ID}
		tr.Probe(entry, func(qid model.QueryID) {
			m.stats.ProbeHits++
			if _, dup := m.touchedMark[qid]; dup {
				return
			}
			m.touchedMark[qid] = struct{}{}
			m.touched = append(m.touched, m.queries[qid])
		})
	}
	for _, qs := range m.touched {
		delete(m.touchedMark, qs.q.ID)
	}
	return m.touched
}

// HandleArrival implements the arrival procedure of §III-B for the
// owned queries. The document must already be present in the index, and
// the index must stay unmodified for the duration of the call.
func (m *Maintainer) HandleArrival(d *model.Document) {
	for _, qs := range m.collectAffected(d) {
		m.markDirty(qs)
		m.stats.ScoreComputations++
		score := model.Score(qs.q, d)
		skBefore := qs.r.Kth(qs.q.K)
		qs.r.Add(d.ID, score)
		if score > skBefore && m.rollupEnabled {
			// The arrival entered the top-k, raising Sk: shrink the
			// monitored region.
			m.rollUp(qs)
		}
	}
}

// HandleExpire implements the expiration procedure of §III-B for the
// owned queries. The document must already be removed from the index,
// and the index must stay unmodified for the duration of the call.
func (m *Maintainer) HandleExpire(d *model.Document) {
	for _, qs := range m.collectAffected(d) {
		m.markDirty(qs)
		rank, inR := qs.r.Rank(d.ID)
		if !inR {
			// Possible only for boundary positions the roll-up already
			// evicted; nothing to do.
			continue
		}
		qs.r.Remove(d.ID)
		if rank < qs.q.K {
			// The expired document was in the top-k: refill by resuming
			// the threshold search from the local thresholds downwards.
			m.stats.Refills++
			m.runSearch(qs)
		}
	}
}

// HandleEpoch applies the net effect of one epoch — a batch of arrivals
// and expirations — to the owned queries. The index must already
// reflect the epoch-end state (arrived inserted, expired removed, both
// lists excluding documents that arrived and expired within the epoch)
// and stay unmodified for the duration of the call.
//
// Every epoch document is probed against the threshold trees first,
// with the epoch-start thresholds, deduplicating affected queries
// across the whole batch; each affected query then gets one net
// maintenance pass (maintainEpoch). Probing before any maintenance is
// sound in both directions: an expired document still in some R is
// necessarily covered by an epoch-start threshold (the R-coverage
// invariant), so its queries are always collected; and an arrival
// consumed here that per-event processing would have skipped (because
// an intra-epoch roll-up lifted the threshold first) is merely extra
// coverage that the epoch-end roll-up re-evicts.
//
// At the epoch boundary the maintained state satisfies the same
// invariants I1–I3 as event-serial processing, so the reported top-k is
// identical; internal state (threshold positions, R membership beyond
// the top-k) and operation counters legitimately differ, which is
// exactly where the amortization comes from.
func (m *Maintainer) HandleEpoch(arrived, expired []*model.Document) {
	if len(m.queries) == 0 {
		return
	}
	// Single-event epochs take the per-event procedures unchanged.
	if len(expired) == 0 && len(arrived) == 1 {
		m.HandleArrival(arrived[0])
		return
	}
	if len(arrived) == 0 && len(expired) == 1 {
		m.HandleExpire(expired[0])
		return
	}
	for _, d := range expired {
		for _, qs := range m.collectAffected(d) {
			w := m.epochFor(qs)
			w.dels = append(w.dels, d)
		}
	}
	for _, d := range arrived {
		for _, qs := range m.collectAffected(d) {
			w := m.epochFor(qs)
			w.adds = append(w.adds, d)
		}
	}
	for i := range m.epochQueue {
		w := &m.epochQueue[i]
		m.maintainEpoch(w.qs, w.adds, w.dels)
		delete(m.epochIdx, w.qs.q.ID)
		// Drop the document references (keeping capacity): otherwise the
		// scratch pins one burst's worth of expired documents until a
		// future epoch happens to reuse every slot to the same depth.
		w.qs = nil
		clear(w.adds)
		clear(w.dels)
		w.adds, w.dels = w.adds[:0], w.dels[:0]
	}
	m.epochQueue = m.epochQueue[:0]
}

// epochFor returns the epoch work entry for qs, creating it on first
// touch. Entries live in a reusable queue so steady-state epochs do not
// allocate.
func (m *Maintainer) epochFor(qs *queryState) *epochWork {
	if i, ok := m.epochIdx[qs.q.ID]; ok {
		return &m.epochQueue[i]
	}
	i := len(m.epochQueue)
	if i < cap(m.epochQueue) {
		m.epochQueue = m.epochQueue[:i+1]
		w := &m.epochQueue[i]
		w.qs, w.adds, w.dels = qs, w.adds[:0], w.dels[:0]
	} else {
		m.epochQueue = append(m.epochQueue, epochWork{qs: qs})
	}
	m.epochIdx[qs.q.ID] = i
	return &m.epochQueue[i]
}

// markDirty records that a query's result may have changed since the
// last Publish. Over-marking (an affected query whose result ends up
// untouched) is deliberate and cheap: Freeze on an unmutated result set
// is a cached pointer, so publishing it is a no-op store. Before the
// first Publish the tracking is disarmed entirely.
func (m *Maintainer) markDirty(qs *queryState) {
	if !m.publishOn || qs.pubDirty {
		return
	}
	qs.pubDirty = true
	m.pubDirty = append(m.pubDirty, qs)
}

// WarmViews precomputes the frozen snapshot of every dirty query so a
// later Publish finds them cached. It exists so the sharded engine's
// workers can do the copy-on-publish work in parallel during the
// fan-out, leaving the coordinator's Publish with pure pointer swaps.
// Warming mid-operation (between an arrival and its derived expirations)
// is safe: nothing is published until Publish, and a re-mutated query
// simply refreezes.
func (m *Maintainer) WarmViews() {
	for _, qs := range m.pubDirty {
		qs.r.Freeze(qs.q.K)
	}
}

// Publish swaps every dirty query's publication slot to its current
// frozen snapshot and resets the dirty list. Must be called by the
// maintainer's single writer at a publication boundary; readers observe
// each swap atomically. The first call arms dirty tracking and
// publishes every owned query, so enabling the read path late still
// starts from a complete boundary.
func (m *Maintainer) Publish() {
	if !m.publishOn {
		m.publishOn = true
		for _, qs := range m.queries {
			m.markDirty(qs)
		}
	}
	for i, qs := range m.pubDirty {
		qs.slot.top.Store(qs.r.Freeze(qs.q.K))
		qs.pubDirty = false
		m.pubDirty[i] = nil // drop the reference: don't pin dead queries
	}
	m.pubDirty = m.pubDirty[:0]
}

// Views returns the maintainer's published read handle.
func (m *Maintainer) Views() *Views { return &m.views }

// maintainEpoch is the net-effect maintenance of one query for one
// epoch: all expirations are removed from R and all consumed arrivals
// scored and added, then at most one refill search (only when the
// removals actually left the top-k deficient — additions may have
// already repaired it) and at most one roll-up (only when some arrival
// raised Sk) run, instead of one of each per event.
func (m *Maintainer) maintainEpoch(qs *queryState, adds, dels []*model.Document) {
	m.markDirty(qs)
	k := qs.q.K
	lostTopK := false
	for _, d := range dels {
		rank, inR := qs.r.Rank(d.ID)
		if !inR {
			continue // evicted earlier by a roll-up
		}
		qs.r.Remove(d.ID)
		if rank < k {
			lostTopK = true
		}
	}
	skBefore := qs.r.Kth(k)
	raised := false
	for _, d := range adds {
		m.stats.ScoreComputations++
		score := model.Score(qs.q, d)
		qs.r.Add(d.ID, score)
		if score > skBefore {
			raised = true
		}
	}
	// I3 can only have broken if a top-k member left: τ is untouched and
	// additions only raise Sk. Refill exactly when it is still broken
	// after the additions.
	if lostTopK && (qs.r.Len() < k || qs.tau() > qs.r.Kth(k)) {
		m.stats.Refills++
		m.runSearch(qs)
	}
	if raised && m.rollupEnabled {
		m.rollUp(qs)
	}
}
