package core

import (
	"fmt"
	"math"

	"ita/internal/invindex"
	"ita/internal/model"
)

// CheckInvariants verifies the maintenance invariants I1–I3 of every
// registered query, plus structural consistency between the threshold
// trees and the per-query threshold state. It costs a full index scan
// per query and exists for tests and debugging, not production paths.
func (e *ITA) CheckInvariants() error { return e.m.CheckInvariants() }

// CheckInvariants verifies I1–I3 for every owned query plus the
// tree/threshold structural consistency of this maintainer.
func (m *Maintainer) CheckInvariants() error {
	// Structural: every (term, theta) pair must be present in its tree,
	// and tree sizes must add up to the total number of query terms.
	// The dense arena must agree with the ext→dense lookup in both
	// directions.
	total := 0
	live := 0
	var structErr error
	m.eachLive(func(qs *queryState) {
		live++
		total += len(qs.terms)
		for i := range qs.terms {
			ts := &qs.terms[i]
			if ts.theta == invindex.Top() && structErr == nil {
				structErr = fmt.Errorf("query %d term %d: threshold still at Top after registration", qs.q.ID, ts.term)
			}
			if (math.IsInf(ts.theta.W, 0) || math.IsNaN(ts.theta.W)) && structErr == nil {
				structErr = fmt.Errorf("query %d term %d: non-finite threshold %v", qs.q.ID, ts.term, ts.theta)
			}
		}
		if v, ok := m.views.lookup.Load(qs.q.ID); !ok || v.(uint32) != qs.id {
			if structErr == nil {
				structErr = fmt.Errorf("query %d: dense slot %d not resolvable through the lookup", qs.q.ID, qs.id)
			}
		}
	})
	if structErr != nil {
		return structErr
	}
	if live != m.n {
		return fmt.Errorf("arena holds %d live slots, maintainer counts %d", live, m.n)
	}
	lookupN := 0
	m.views.lookup.Range(func(any, any) bool { lookupN++; return true })
	if lookupN != m.n {
		return fmt.Errorf("lookup holds %d entries, maintainer owns %d queries", lookupN, m.n)
	}
	if int(m.next) != m.n+len(m.free) {
		return fmt.Errorf("arena high-water %d != %d live + %d free", m.next, m.n, len(m.free))
	}
	trees := 0
	for _, tr := range m.trees {
		trees += tr.Len()
	}
	if trees != total {
		return fmt.Errorf("threshold trees hold %d entries, queries own %d terms", trees, total)
	}

	var err error
	m.eachLive(func(qs *queryState) {
		if err == nil {
			err = m.checkQuery(qs)
		}
	})
	return err
}

func (m *Maintainer) checkQuery(qs *queryState) error {
	qid := qs.q.ID
	tau := qs.tau()

	// I1 (coverage) — every document with an entry strictly ahead of a
	// local threshold is in R; while scanning, collect the set of
	// covered documents to validate R's converse direction.
	covered := make(map[model.DocID]bool)
	for i := range qs.terms {
		ts := &qs.terms[i]
		l := m.index.List(ts.term)
		if l == nil {
			continue
		}
		for it := l.First(); it.Valid(); it.Next() {
			key := it.Key()
			if !invindex.Before(key, ts.theta) {
				break // reached the unconsumed region
			}
			covered[key.Doc] = true
			if !qs.r.Contains(key.Doc) {
				return fmt.Errorf("I1: query %d term %d: doc %d (w=%g) ahead of θ=%v but not in R",
					qid, ts.term, key.Doc, key.W, ts.theta)
			}
		}
	}

	// R soundness: every member is valid, has its exact score, and is
	// covered by at least one threshold (otherwise expirations could
	// never evict it).
	var rErr error
	qs.r.Each(func(doc model.DocID, score float64) {
		if rErr != nil {
			return
		}
		d, ok := m.index.Get(doc)
		if !ok {
			rErr = fmt.Errorf("R: query %d holds expired doc %d", qid, doc)
			return
		}
		if want := model.Score(qs.q, d); score != want {
			rErr = fmt.Errorf("R: query %d doc %d stored score %g, true score %g", qid, doc, score, want)
			return
		}
		if !covered[doc] {
			rErr = fmt.Errorf("R: query %d doc %d is in R but behind every local threshold", qid, doc)
		}
	})
	if rErr != nil {
		return rErr
	}

	// I2 (safety) — every valid document outside R scores at most τ.
	var i2Err error
	m.index.Docs(func(d *model.Document) {
		if i2Err != nil || qs.r.Contains(d.ID) {
			return
		}
		if s := model.Score(qs.q, d); s > tau+1e-12 {
			i2Err = fmt.Errorf("I2: query %d doc %d outside R scores %g > τ=%g", qid, d.ID, s, tau)
		}
	})
	if i2Err != nil {
		return i2Err
	}

	// I3 (verification) — τ ≤ Sk whenever R holds k documents.
	if qs.r.Len() >= qs.q.K {
		if sk := qs.r.Kth(qs.q.K); tau > sk+1e-12 {
			return fmt.Errorf("I3: query %d τ=%g > Sk=%g with |R|=%d", qid, tau, sk, qs.r.Len())
		}
	}
	return nil
}
