package core

import (
	"fmt"
	"math"

	"ita/internal/model"
)

// CheckInvariants verifies the floor invariants (see floor.go) of every
// registered query, plus structural consistency between the probe trees
// and the per-query floor state. It costs a full index scan per query
// and exists for tests and debugging, not production paths.
func (e *ITA) CheckInvariants() error { return e.m.CheckInvariants() }

// CheckInvariants verifies the floor invariants for every owned query
// plus the tree/bound structural consistency of this maintainer.
func (m *Maintainer) CheckInvariants() error {
	// Structural: every term's registered bound must be finite,
	// non-negative, and exactly the floor-derived value F·fac, and tree
	// sizes must add up to the total number of query terms. The dense
	// arena must agree with the ext→dense lookup in both directions.
	total := 0
	live := 0
	var structErr error
	m.eachLive(func(qs *queryState) {
		live++
		total += len(qs.terms)
		if structErr == nil && (qs.f < 0 || math.IsNaN(qs.f) || math.IsInf(qs.f, 0)) {
			structErr = fmt.Errorf("query %d: invalid floor %g", qs.q.ID, qs.f)
		}
		for i := range qs.terms {
			ts := &qs.terms[i]
			if structErr != nil {
				return
			}
			if math.IsInf(ts.b, 0) || math.IsNaN(ts.b) || ts.b < 0 {
				structErr = fmt.Errorf("query %d term %d: invalid bound %g", qs.q.ID, ts.term, ts.b)
				return
			}
			if want := boundFor(qs.f, ts.fac); ts.b != want {
				structErr = fmt.Errorf("query %d term %d: bound %g, want %g for floor %g", qs.q.ID, ts.term, ts.b, want, qs.f)
				return
			}
		}
		if v, ok := m.views.lookup.Load(qs.q.ID); !ok || v.(uint32) != qs.id {
			if structErr == nil {
				structErr = fmt.Errorf("query %d: dense slot %d not resolvable through the lookup", qs.q.ID, qs.id)
			}
		}
	})
	if structErr != nil {
		return structErr
	}
	if live != m.n {
		return fmt.Errorf("arena holds %d live slots, maintainer counts %d", live, m.n)
	}
	lookupN := 0
	m.views.lookup.Range(func(any, any) bool { lookupN++; return true })
	if lookupN != m.n {
		return fmt.Errorf("lookup holds %d entries, maintainer owns %d queries", lookupN, m.n)
	}
	if int(m.next) != m.n+len(m.free) {
		return fmt.Errorf("arena high-water %d != %d live + %d free", m.next, m.n, len(m.free))
	}
	trees := 0
	for _, tr := range m.trees {
		trees += tr.Len()
	}
	if trees != total {
		return fmt.Errorf("probe trees hold %d entries, queries own %d terms", trees, total)
	}

	var err error
	m.eachLive(func(qs *queryState) {
		if err == nil {
			err = m.checkQuery(qs)
		}
	})
	return err
}

func (m *Maintainer) checkQuery(qs *queryState) error {
	qid := qs.q.ID
	k := qs.q.K

	// R soundness: every member is valid, carries its exact score, sits
	// at or above the floor, and beats at least one probe bound
	// (otherwise its expiration could never evict it).
	var rErr error
	qs.r.Each(func(doc model.DocID, score float64) {
		if rErr != nil {
			return
		}
		d, ok := m.index.Get(doc)
		if !ok {
			rErr = fmt.Errorf("R: query %d holds expired doc %d", qid, doc)
			return
		}
		if want := model.Score(qs.q, d); score != want {
			rErr = fmt.Errorf("R: query %d doc %d stored score %g, true score %g", qid, doc, score, want)
			return
		}
		if score < qs.f {
			rErr = fmt.Errorf("R: query %d doc %d scores %g below floor %g", qid, doc, score, qs.f)
			return
		}
		reachable := false
		for i := range qs.terms {
			if w, has := d.Weight(qs.terms[i].term); has && w >= qs.terms[i].b {
				reachable = true
				break
			}
		}
		if !reachable {
			rErr = fmt.Errorf("R: query %d doc %d beats no probe bound (floor %g)", qid, doc, qs.f)
		}
	})
	if rErr != nil {
		return rErr
	}

	// Completeness — every valid document outside R scores at most F.
	// The comparison is exact: scores and the floor are both produced by
	// the same deterministic float pipeline, and admission uses ≥ F, so
	// an outside document above F is a real maintenance bug, not
	// rounding.
	var cErr error
	m.index.Docs(func(d *model.Document) {
		if cErr != nil || qs.r.Contains(d.ID) {
			return
		}
		if s := model.Score(qs.q, d); s > qs.f {
			cErr = fmt.Errorf("completeness: query %d doc %d outside R scores %g > floor %g", qid, d.ID, s, qs.f)
		}
	})
	if cErr != nil {
		return cErr
	}

	// Verification — F ≤ Sk whenever R holds k documents, so the
	// reported top-k is a true top-k of the window.
	if qs.r.Len() >= k {
		if sk := qs.r.Kth(k); qs.f > sk {
			return fmt.Errorf("query %d floor %g > Sk=%g with |R|=%d", qid, qs.f, sk, qs.r.Len())
		}
	}
	return nil
}
