package core

import (
	"ita/internal/invindex"
	"ita/internal/model"
)

// rebuild recomputes R and the score floor from the inverted lists with
// a threshold-algorithm scan, used both for the initial top-k
// computation at Register and for refills after an expiration leaves R
// with fewer than k members. It consumes inverted-list entries from the
// heads downwards — greedily from the list with the highest w_{Q,t}·c_t,
// where c_t is the impact of the next unread entry — scoring each newly
// encountered document into R (documents already in R are skipped: their
// stored scores are exact, so the surviving high region of R is never
// re-scored), until either
//
//   - R holds at least k+tgtMargin documents and τ = Σ w_{Q,t}·c_t has
//     dropped to at most the (k+tgtMargin)-th score (every unseen
//     document provably scores below it), or
//   - every list is exhausted (each matching document has been seen).
//
// On return the floor is the (k+tgtMargin)-th best score when R is that
// large — unseen documents score at most τ ≤ that value, so
// completeness holds — and zero otherwise (the window holds fewer
// matches than the target, and R holds all of them). Members below the
// new floor are purged; the per-term probe bounds follow the floor.
func (m *Maintainer) rebuild(qs *queryState) {
	target := qs.q.K + m.tgtMargin
	n := len(qs.terms)
	// Reuse the maintainer's iterator scratch: rebuilds run at most once
	// per affected query per epoch, and rebuild is never reentered.
	if cap(m.iterBuf) < n {
		m.iterBuf = make([]invindex.Iterator, n)
	}
	iters := m.iterBuf[:n]
	for i := range qs.terms {
		if l := m.index.List(qs.terms[i].term); l != nil {
			iters[i] = l.First()
		} else {
			iters[i] = invindex.Iterator{}
		}
	}
	rr := 0 // round-robin cursor for the ablation probe order
	for {
		// τ over the current cursor positions; exhausted lists
		// contribute 0.
		var tau float64
		live := false
		for i := range iters {
			if iters[i].Valid() {
				tau += qs.terms[i].qw * iters[i].Key().W
				live = true
			}
		}
		if !live {
			break
		}
		if qs.r.Len() >= target && tau <= qs.r.Kth(target) {
			break
		}
		best := -1
		if m.greedyProbe {
			bestVal := 0.0
			for i := range iters {
				if !iters[i].Valid() {
					continue
				}
				if v := qs.terms[i].qw * iters[i].Key().W; best < 0 || v > bestVal {
					best, bestVal = i, v
				}
			}
		} else {
			for j := 0; j < n; j++ {
				i := (rr + j) % n
				if iters[i].Valid() {
					best = i
					rr = i + 1
					break
				}
			}
		}
		key := iters[best].Key()
		iters[best].Next()
		m.stats.SearchReads++
		if !qs.r.Contains(key.Doc) {
			if d, ok := m.index.Get(key.Doc); ok {
				m.stats.ScoreComputations++
				qs.r.Add(key.Doc, model.Score(qs.q, d))
				m.recordAdmit(key.Doc, qs.id)
			}
		}
	}
	newF := 0.0
	if qs.r.Len() >= target {
		newF = qs.r.Kth(target)
	}
	m.setFloor(qs, newF)
	m.purgeBelow(qs)
}
