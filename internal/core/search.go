package core

import (
	"ita/internal/invindex"
	"ita/internal/model"
)

// runSearch is the threshold-algorithm search of §III-A, used both for
// the initial top-k computation (thresholds at Top) and for incremental
// refills after an expiration (thresholds wherever maintenance left
// them). It consumes inverted-list entries — greedily from the list with
// the highest w_{Q,t}·c_t, where c_t is the impact of the next unread
// entry — scoring each newly encountered document into R, until either
//
//   - R holds at least k documents and τ = Σ w_{Q,t}·c_t has dropped to
//     at most Sk (k documents are verified), or
//   - every list is exhausted (the window holds fewer than k matches).
//
// On return the local thresholds are set to the final cursor positions
// (the latest c_t values, Bottom for exhausted lists) and the threshold
// trees are updated accordingly.
func (m *Maintainer) runSearch(qs *queryState) {
	k := qs.q.K
	n := len(qs.terms)
	// Reuse the maintainer's iterator scratch: refills run once per
	// affected query per epoch, and runSearch is never reentered.
	if cap(m.iterBuf) < n {
		m.iterBuf = make([]invindex.Iterator, n)
	}
	iters := m.iterBuf[:n]
	for i := range qs.terms {
		if l := m.index.List(qs.terms[i].term); l != nil {
			iters[i] = l.SeekGE(qs.terms[i].theta)
		} else {
			iters[i] = invindex.Iterator{}
		}
	}
	rr := 0 // round-robin cursor for the ablation probe order
	for {
		// τ over the current cursor positions; exhausted lists
		// contribute 0.
		var tau float64
		live := false
		for i := range iters {
			if iters[i].Valid() {
				tau += qs.terms[i].qw * iters[i].Key().W
				live = true
			}
		}
		if !live {
			break
		}
		if qs.r.Len() >= k && tau <= qs.r.Kth(k) {
			break
		}
		best := -1
		if m.greedyProbe {
			bestVal := 0.0
			for i := range iters {
				if !iters[i].Valid() {
					continue
				}
				if v := qs.terms[i].qw * iters[i].Key().W; best < 0 || v > bestVal {
					best, bestVal = i, v
				}
			}
		} else {
			for j := 0; j < n; j++ {
				i := (rr + j) % n
				if iters[i].Valid() {
					best = i
					rr = i + 1
					break
				}
			}
		}
		key := iters[best].Key()
		iters[best].Next()
		m.stats.SearchReads++
		if !qs.r.Contains(key.Doc) {
			if d, ok := m.index.Get(key.Doc); ok {
				m.stats.ScoreComputations++
				qs.r.Add(key.Doc, model.Score(qs.q, d))
			}
		}
	}
	// Record the final cursor positions as the local thresholds and
	// reflect them in the threshold trees. A threshold still at Top
	// (fresh registration) has no tree entry to remove.
	for i := range qs.terms {
		ts := &qs.terms[i]
		newTheta := invindex.Bottom()
		if iters[i].Valid() {
			newTheta = iters[i].Key()
		}
		if newTheta == ts.theta {
			continue
		}
		tr := m.tree(ts.term)
		if ts.theta != invindex.Top() {
			tr.Remove(qs.id, ts.theta)
			m.stats.TreeUpdates++
		}
		tr.Set(qs.id, newTheta)
		m.stats.TreeUpdates++
		ts.theta = newTheta
	}
}
