// Package core implements the continuous text search engines: the
// paper's Incremental Threshold Algorithm (ITA), the Naïve baseline of
// §II enhanced with the top-kmax materialized-view technique of Yi et
// al. (the §IV competitor), and a brute-force Oracle used to validate
// both.
//
// All engines process the same event stream — document arrivals that may
// force expirations under a sliding-window policy — and must expose
// identical results at every instant.
package core

import (
	"errors"
	"time"

	"ita/internal/model"
)

// Lifecycle errors shared between the engine facade and the layers
// built on top of it (replication followers, the cluster router). They
// are defined here — below the facade — so that infrastructure packages
// can match them with errors.Is without importing the facade; the ita
// package re-exports them under the same names.
var (
	// ErrReadOnly is returned by mutating operations on a follower;
	// Promote makes it writable.
	ErrReadOnly = errors.New("ita: engine is a read-only replication follower (call Promote to make it writable)")
	// ErrClosed is returned by operations on a closed engine.
	ErrClosed = errors.New("ita: engine is closed")
)

// Engine is the contract every continuous top-k engine satisfies.
// Engines are single-threaded by design (the paper's server is a
// CPU-bound main-memory system); the public facade adds locking.
type Engine interface {
	// Name identifies the algorithm in reports ("ita", "naive", ...).
	Name() string
	// Register installs a continuous query and computes its initial
	// result. It fails on a duplicate query id.
	Register(q *model.Query) error
	// Unregister removes a query, reporting whether it existed.
	Unregister(id model.QueryID) bool
	// Process handles one document arrival, including any expirations
	// the sliding-window policy derives from it. It fails on a
	// duplicate document id; the engine state is unchanged in that
	// case.
	Process(d *model.Document) error
	// ExpireUntil advances the stream clock without an arrival,
	// expiring documents as the window policy dictates. Only time-based
	// windows expire documents this way.
	ExpireUntil(now time.Time)
	// Result returns the current top-k of a query in descending score
	// order (fewer than k documents when the window holds fewer
	// matches). The second result is false for an unknown query.
	Result(id model.QueryID) ([]model.ScoredDoc, bool)
	// Queries returns the number of registered queries.
	Queries() int
	// EachQuery calls fn for every registered query in unspecified
	// order. Used for snapshots and diagnostics; fn must not modify the
	// engine.
	EachQuery(fn func(q *model.Query))
	// WindowLen returns the number of currently valid documents.
	WindowLen() int
	// EachDoc calls fn for every valid document in arrival (FIFO)
	// order. fn must not modify the engine.
	EachDoc(fn func(d *model.Document))
	// Stats returns the engine's cumulative operation counters.
	Stats() *Stats
}

// EpochProcessor is implemented by engines (ITA and the sharded ITA)
// that can process a batch of arrivals — plus every expiration the
// window policy derives from it — as a single epoch: index mutations
// are staged in one pass, and per-query maintenance runs once per
// affected query with the batch's net effect. Per-query results at the
// epoch boundary are identical to a Process loop over the same
// documents; intermediate per-event states are never materialized, and
// operation counters reflect the amortized work actually performed.
type EpochProcessor interface {
	ProcessEpoch(docs []*model.Document) error
}

// Stats counts the primitive operations that dominate each algorithm's
// cost. The experiment harness reports them alongside wall-clock
// timings to explain *why* the curves look the way they do.
type Stats struct {
	Arrivals    uint64 // documents inserted
	Expirations uint64 // documents expired
	Epochs      uint64 // multi-document epochs processed (ProcessEpoch)
	// ITA counters.
	ProbeHits    uint64 // threshold-tree probe results (query, event) pairs
	SearchReads  uint64 // inverted-list entries consumed by search/refill
	RollupSteps  uint64 // threshold lift operations
	RollupDrops  uint64 // documents dropped from R by roll-up
	Refills      uint64 // incremental refills triggered by expirations
	TreeUpdates  uint64 // threshold tree insert/delete operations
	IndexInserts uint64 // impact entries inserted
	IndexDeletes uint64 // impact entries deleted
	// Shared counters.
	ScoreComputations uint64 // full S(d|Q) evaluations
	// Naïve counters.
	Rescans uint64 // full window rescans (view refills)
}

// Memory is a per-component estimate of an engine's heap footprint,
// produced on demand by walking structure sizes (counts × measured unit
// costs), not by heap profiling. Unlike Stats it is a gauge, not a
// counter: it is deliberately kept out of snapshots and the WAL, since
// capacities legitimately differ between an engine and its recovered
// twin.
type Memory struct {
	IndexBytes      uint64 `json:"index_bytes"`       // inverted lists + FIFO store
	TreeBytes       uint64 `json:"tree_bytes"`        // threshold trees (both tiers)
	QueryStateBytes uint64 `json:"query_state_bytes"` // dense arenas, term vectors, result sets
	ViewBytes       uint64 `json:"view_bytes"`        // published slots + ext→dense lookup
	// PostingBytes is the inverted-list share of IndexBytes (already
	// counted there, so Total does not add it), and Postings the entry
	// count behind it — together the bytes-per-posting gauge of the
	// window-sweep benchmark.
	PostingBytes uint64 `json:"posting_bytes"`
	Postings     uint64 `json:"postings"`
}

// Total sums the components.
func (m Memory) Total() uint64 {
	return m.IndexBytes + m.TreeBytes + m.QueryStateBytes + m.ViewBytes
}

// Merge accumulates o into m component-wise (per-shard footprints are
// additive).
func (m *Memory) Merge(o Memory) {
	m.IndexBytes += o.IndexBytes
	m.TreeBytes += o.TreeBytes
	m.QueryStateBytes += o.QueryStateBytes
	m.ViewBytes += o.ViewBytes
	m.PostingBytes += o.PostingBytes
	m.Postings += o.Postings
}

// MemoryReporter is implemented by engines that can account their heap
// footprint per component (ITA and the sharded ITA).
type MemoryReporter interface {
	MemoryUsage() Memory
}

// Add accumulates o into s field-wise. The sharded engine keeps one
// Stats block per shard (so counting stays contention-free during the
// parallel fan-out) and merges them on read.
func (s *Stats) Add(o *Stats) {
	s.Arrivals += o.Arrivals
	s.Expirations += o.Expirations
	s.Epochs += o.Epochs
	s.ProbeHits += o.ProbeHits
	s.SearchReads += o.SearchReads
	s.RollupSteps += o.RollupSteps
	s.RollupDrops += o.RollupDrops
	s.Refills += o.Refills
	s.TreeUpdates += o.TreeUpdates
	s.IndexInserts += o.IndexInserts
	s.IndexDeletes += o.IndexDeletes
	s.ScoreComputations += o.ScoreComputations
	s.Rescans += o.Rescans
}
