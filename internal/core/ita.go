package core

import (
	"time"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/window"
)

// ITA is the paper's Incremental Threshold Algorithm. It maintains, per
// query, the result list R of all consumed documents with their exact
// scores, plus one local threshold θ_{Q,t} per query term marking the
// first unconsumed position of t's inverted list. The invariants are:
//
//	I1 (coverage): every valid document with an impact entry strictly
//	    ahead of θ_{Q,t} in some list of Q is in R with its exact score.
//	I2 (safety): every valid document not in R therefore scores at most
//	    τ = Σ_t w_{Q,t}·θ_{Q,t}.W.
//	I3 (verification): τ ≤ Sk whenever |R| ≥ k, so R's best k documents
//	    are a true top-k of the window.
//
// Arrivals that land ahead of a threshold are scored and added to R
// (rolling thresholds up when they improve the top-k); expirations of
// documents ahead of a threshold are removed from R (resuming the
// threshold-algorithm search downwards when they leave the top-k).
//
// Structurally ITA is a coordinator (window policy + inverted index)
// over a single Maintainer holding every query; the sharded engine in
// internal/shard reuses the same Maintainer across many parallel
// shards.
type ITA struct {
	policy window.Policy
	index  *invindex.Index
	m      *Maintainer
	stats  Stats

	cfg MaintainerConfig
}

// ITAOption configures an ITA engine.
type ITAOption func(*ITA)

// WithoutRollup disables the threshold roll-up of §III-B (ablation A2):
// thresholds then only ever move down, so the monitored region grows
// monotonically between expirations.
func WithoutRollup() ITAOption { return func(e *ITA) { e.cfg.DisableRollup = true } }

// WithRoundRobinProbe replaces the paper's greedy w_{Q,t}·c_t probe
// order with the original threshold algorithm's round-robin order
// (ablation A1).
func WithRoundRobinProbe() ITAOption { return func(e *ITA) { e.cfg.RoundRobinProbe = true } }

// WithITASeed fixes the skip-list randomness seed.
func WithITASeed(seed uint64) ITAOption { return func(e *ITA) { e.cfg.Seed = seed } }

// WithSkiplistOnlyTrees pins every threshold tree to the skip-list tier
// (the pre-tiering representation). It exists so equivalence suites can
// prove the tiered trees behavior-identical; it is not a production
// configuration.
func WithSkiplistOnlyTrees() ITAOption { return func(e *ITA) { e.cfg.SkiplistOnlyTrees = true } }

// NewITA returns an empty ITA engine over the given window policy.
func NewITA(policy window.Policy, opts ...ITAOption) *ITA {
	e := &ITA{
		policy: policy,
		cfg:    MaintainerConfig{Seed: 1},
	}
	for _, o := range opts {
		o(e)
	}
	e.index = invindex.NewIndex(e.cfg.Seed)
	e.m = NewMaintainer(e.index, &e.stats, e.cfg)
	return e
}

// Name implements Engine.
func (e *ITA) Name() string { return "ita" }

// Queries implements Engine.
func (e *ITA) Queries() int { return e.m.Len() }

// EachQuery implements Engine.
func (e *ITA) EachQuery(fn func(q *model.Query)) { e.m.EachQuery(fn) }

// WindowLen implements Engine.
func (e *ITA) WindowLen() int { return e.index.Len() }

// EachDoc implements Engine.
func (e *ITA) EachDoc(fn func(d *model.Document)) { e.index.Docs(fn) }

// Stats implements Engine.
func (e *ITA) Stats() *Stats { return &e.stats }

// MemoryUsage implements MemoryReporter: the coordinator-owned index
// plus the maintainer's per-query structures.
func (e *ITA) MemoryUsage() Memory {
	mem := e.m.MemoryUsage()
	mem.IndexBytes = e.index.MemoryBytes()
	return mem
}

// Register implements Engine: it runs the initial top-k search of
// §III-A and installs the resulting local thresholds.
func (e *ITA) Register(q *model.Query) error { return e.m.Register(q) }

// Unregister implements Engine.
func (e *ITA) Unregister(id model.QueryID) bool { return e.m.Unregister(id) }

// Result implements Engine.
func (e *ITA) Result(id model.QueryID) ([]model.ScoredDoc, bool) { return e.m.Result(id) }

// PublishViews implements ViewPublisher: every query whose result
// changed since the previous call gets its frozen epoch-boundary
// snapshot swapped into the published slot. Like all of Engine, it must
// be called from the single writer — and only at a boundary, never
// between an arrival and the expirations it derives.
func (e *ITA) PublishViews() ViewReader {
	e.m.Publish()
	return e.m.Views()
}

// Process implements Engine: the arrival is indexed and handled, then
// the window policy expires documents from the FIFO head.
func (e *ITA) Process(d *model.Document) error {
	if err := e.index.Insert(d); err != nil {
		return err
	}
	e.stats.Arrivals++
	e.stats.IndexInserts += uint64(len(d.Postings))
	e.m.HandleArrival(d)
	e.expireWhile(d.Arrival)
	return nil
}

// ProcessEpoch implements EpochProcessor: the whole batch of arrivals,
// and every expiration the window policy derives from it, is applied as
// one epoch. The index absorbs the net mutations in a single ApplyBatch
// pass, then the maintainer runs one net-effect pass over the affected
// queries (HandleEpoch). Per-query results at the epoch boundary are
// identical to a Process loop over the same documents; intermediate
// states are simply never materialized. Arrival times must be
// non-decreasing within the batch.
func (e *ITA) ProcessEpoch(docs []*model.Document) error {
	if len(docs) == 0 {
		return nil
	}
	if len(docs) == 1 {
		return e.Process(docs[0])
	}
	now := docs[len(docs)-1].Arrival
	res, err := e.index.ApplyBatch(docs, func(oldest *model.Document, count int) bool {
		return e.policy.Expired(oldest.Arrival, now, count)
	})
	if err != nil {
		return err
	}
	e.stats.Epochs++
	e.stats.Arrivals += uint64(len(docs))
	e.stats.Expirations += uint64(len(res.Expired) + res.Dropped)
	e.stats.IndexInserts += uint64(res.Inserts)
	e.stats.IndexDeletes += uint64(res.Deletes)
	e.m.HandleEpoch(docs[res.Dropped:], res.Expired)
	return nil
}

// ExpireUntil implements Engine.
func (e *ITA) ExpireUntil(now time.Time) { e.expireWhile(now) }

func (e *ITA) expireWhile(now time.Time) {
	for {
		oldest := e.index.Oldest()
		if oldest == nil || !e.policy.Expired(oldest.Arrival, now, e.index.Len()) {
			return
		}
		d := e.index.RemoveOldest()
		e.stats.Expirations++
		e.stats.IndexDeletes += uint64(len(d.Postings))
		e.m.HandleExpire(d)
	}
}
