package core

import (
	"fmt"
	"time"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/threshtree"
	"ita/internal/topk"
	"ita/internal/window"
)

// ITA is the paper's Incremental Threshold Algorithm. It maintains, per
// query, the result list R of all consumed documents with their exact
// scores, plus one local threshold θ_{Q,t} per query term marking the
// first unconsumed position of t's inverted list. The invariants are:
//
//	I1 (coverage): every valid document with an impact entry strictly
//	    ahead of θ_{Q,t} in some list of Q is in R with its exact score.
//	I2 (safety): every valid document not in R therefore scores at most
//	    τ = Σ_t w_{Q,t}·θ_{Q,t}.W.
//	I3 (verification): τ ≤ Sk whenever |R| ≥ k, so R's best k documents
//	    are a true top-k of the window.
//
// Arrivals that land ahead of a threshold are scored and added to R
// (rolling thresholds up when they improve the top-k); expirations of
// documents ahead of a threshold are removed from R (resuming the
// threshold-algorithm search downwards when they leave the top-k).
type ITA struct {
	policy  window.Policy
	index   *invindex.Index
	trees   map[model.TermID]*threshtree.Tree
	queries map[model.QueryID]*queryState
	stats   Stats
	seed    uint64

	// Ablation switches (DESIGN.md A1, A2). Both default to the paper's
	// configuration: greedy probing and roll-up enabled.
	rollupEnabled bool
	greedyProbe   bool

	// Scratch buffers reused across events to keep steady-state
	// processing allocation-free.
	touched     []*queryState
	touchedMark map[model.QueryID]struct{}
}

// ITAOption configures an ITA engine.
type ITAOption func(*ITA)

// WithoutRollup disables the threshold roll-up of §III-B (ablation A2):
// thresholds then only ever move down, so the monitored region grows
// monotonically between expirations.
func WithoutRollup() ITAOption { return func(e *ITA) { e.rollupEnabled = false } }

// WithRoundRobinProbe replaces the paper's greedy w_{Q,t}·c_t probe
// order with the original threshold algorithm's round-robin order
// (ablation A1).
func WithRoundRobinProbe() ITAOption { return func(e *ITA) { e.greedyProbe = false } }

// WithITASeed fixes the skip-list randomness seed.
func WithITASeed(seed uint64) ITAOption { return func(e *ITA) { e.seed = seed } }

// NewITA returns an empty ITA engine over the given window policy.
func NewITA(policy window.Policy, opts ...ITAOption) *ITA {
	e := &ITA{
		policy:        policy,
		trees:         make(map[model.TermID]*threshtree.Tree),
		queries:       make(map[model.QueryID]*queryState),
		seed:          1,
		rollupEnabled: true,
		greedyProbe:   true,
		touchedMark:   make(map[model.QueryID]struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	e.index = invindex.NewIndex(e.seed)
	return e
}

// termState tracks one query term: its weight and its local threshold,
// the position of the first unconsumed entry of the term's inverted
// list (Bottom once the list is exhausted).
type termState struct {
	term  model.TermID
	qw    float64
	theta invindex.EntryKey
}

type queryState struct {
	q     *model.Query
	terms []termState
	r     *topk.ResultSet
}

// tau returns the influence threshold τ = Σ w_{Q,t}·θ_{Q,t}.W, the least
// upper bound on the score of any valid document outside R (invariant
// I2).
func (qs *queryState) tau() float64 {
	var t float64
	for i := range qs.terms {
		t += qs.terms[i].qw * qs.terms[i].theta.W
	}
	return t
}

// Name implements Engine.
func (e *ITA) Name() string { return "ita" }

// Queries implements Engine.
func (e *ITA) Queries() int { return len(e.queries) }

// EachQuery implements Engine.
func (e *ITA) EachQuery(fn func(q *model.Query)) {
	for _, qs := range e.queries {
		fn(qs.q)
	}
}

// WindowLen implements Engine.
func (e *ITA) WindowLen() int { return e.index.Len() }

// EachDoc implements Engine.
func (e *ITA) EachDoc(fn func(d *model.Document)) { e.index.Docs(fn) }

// Stats implements Engine.
func (e *ITA) Stats() *Stats { return &e.stats }

// tree returns the threshold tree for term t, creating it on first use.
// Trees exist independently of inverted lists: a query term that matches
// no valid document still needs its threshold registered so future
// arrivals can probe it.
func (e *ITA) tree(t model.TermID) *threshtree.Tree {
	tr := e.trees[t]
	if tr == nil {
		tr = threshtree.New(e.seed ^ (uint64(t)*0x9e3779b97f4a7c15 + 1))
		e.trees[t] = tr
	}
	return tr
}

// Register implements Engine: it runs the initial top-k search of
// §III-A and installs the resulting local thresholds.
func (e *ITA) Register(q *model.Query) error {
	if _, dup := e.queries[q.ID]; dup {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	qs := &queryState{
		q:     q,
		terms: make([]termState, len(q.Terms)),
		r:     topk.NewResultSet(e.seed ^ uint64(q.ID)),
	}
	for i, t := range q.Terms {
		qs.terms[i] = termState{term: t.Term, qw: t.Weight, theta: invindex.Top()}
	}
	e.queries[q.ID] = qs
	e.runSearch(qs)
	return nil
}

// Unregister implements Engine.
func (e *ITA) Unregister(id model.QueryID) bool {
	qs, ok := e.queries[id]
	if !ok {
		return false
	}
	for i := range qs.terms {
		ts := &qs.terms[i]
		if tr := e.trees[ts.term]; tr != nil {
			tr.Remove(id, ts.theta)
			e.stats.TreeUpdates++
			if tr.Len() == 0 {
				delete(e.trees, ts.term)
			}
		}
	}
	delete(e.queries, id)
	return true
}

// Result implements Engine.
func (e *ITA) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	qs, ok := e.queries[id]
	if !ok {
		return nil, false
	}
	return qs.r.Top(qs.q.K), true
}

// Process implements Engine: the arrival is indexed and handled, then
// the window policy expires documents from the FIFO head.
func (e *ITA) Process(d *model.Document) error {
	if err := e.index.Insert(d); err != nil {
		return err
	}
	e.stats.Arrivals++
	e.stats.IndexInserts += uint64(len(d.Postings))
	e.handleArrival(d)
	e.expireWhile(d.Arrival)
	return nil
}

// ExpireUntil implements Engine.
func (e *ITA) ExpireUntil(now time.Time) { e.expireWhile(now) }

func (e *ITA) expireWhile(now time.Time) {
	for {
		oldest := e.index.Oldest()
		if oldest == nil || !e.policy.Expired(oldest.Arrival, now, e.index.Len()) {
			return
		}
		e.expireOldest()
	}
}

// collectAffected probes the threshold tree of every term of d and
// gathers, without duplicates, the queries whose consumed region
// contains the corresponding impact entry. The paper's note that "d is
// processed only once for each Qi even if d ranks higher than several of
// Q's local thresholds" is the deduplication here.
//
// The result is an engine-owned scratch slice, valid until the next
// call.
func (e *ITA) collectAffected(d *model.Document) []*queryState {
	e.touched = e.touched[:0]
	for _, p := range d.Postings {
		tr := e.trees[p.Term]
		if tr == nil || tr.Len() == 0 {
			continue
		}
		entry := invindex.EntryKey{W: p.Weight, Doc: d.ID}
		tr.Probe(entry, func(qid model.QueryID) {
			e.stats.ProbeHits++
			if _, dup := e.touchedMark[qid]; dup {
				return
			}
			e.touchedMark[qid] = struct{}{}
			e.touched = append(e.touched, e.queries[qid])
		})
	}
	for _, qs := range e.touched {
		delete(e.touchedMark, qs.q.ID)
	}
	return e.touched
}

// handleArrival implements the arrival procedure of §III-B.
func (e *ITA) handleArrival(d *model.Document) {
	for _, qs := range e.collectAffected(d) {
		e.stats.ScoreComputations++
		score := model.Score(qs.q, d)
		skBefore := qs.r.Kth(qs.q.K)
		qs.r.Add(d.ID, score)
		if score > skBefore && e.rollupEnabled {
			// The arrival entered the top-k, raising Sk: shrink the
			// monitored region.
			e.rollUp(qs)
		}
	}
}

// expireOldest implements the expiration procedure of §III-B.
func (e *ITA) expireOldest() {
	d := e.index.RemoveOldest()
	if d == nil {
		return
	}
	e.stats.Expirations++
	e.stats.IndexDeletes += uint64(len(d.Postings))
	for _, qs := range e.collectAffected(d) {
		rank, inR := qs.r.Rank(d.ID)
		if !inR {
			// Possible only for boundary positions the roll-up already
			// evicted; nothing to do.
			continue
		}
		qs.r.Remove(d.ID)
		if rank < qs.q.K {
			// The expired document was in the top-k: refill by resuming
			// the threshold search from the local thresholds downwards.
			e.stats.Refills++
			e.runSearch(qs)
		}
	}
}
