package core

import (
	"time"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/window"
)

// ITA is the paper's Incremental Threshold Algorithm, maintained
// through a score floor. Per query it keeps the result list R of every
// valid document scoring at least the floor F, with exact scores, plus
// one floor-derived probe bound per query term registered in the
// θ-ordered per-term probe trees (see floor.go for the invariants and
// the soundness argument). R's best k entries are a true top-k of the
// window whenever |R| ≥ k, because any document outside R scores at
// most F ≤ Sk.
//
// Arrivals whose term contribution beats a probe bound are scored and
// added to R when they reach the floor (raising the floor — the roll-up
// analog of §III-B — once R outgrows its margins); expirations of R
// members are removed (rebuilding R with a threshold-algorithm scan,
// §III-A, when they leave fewer than k members).
//
// Structurally ITA is a coordinator (window policy + inverted index)
// over a single Maintainer holding every query; the sharded engine in
// internal/shard reuses the same Maintainer across many parallel
// shards.
type ITA struct {
	policy window.Policy
	index  *invindex.Index
	m      *Maintainer
	stats  Stats

	cfg MaintainerConfig
}

// ITAOption configures an ITA engine.
type ITAOption func(*ITA)

// WithoutRollup disables arrival-driven floor raises (ablation A2, the
// roll-up analog): the floor then moves only at rebuilds, so the
// monitored region grows monotonically between expirations.
func WithoutRollup() ITAOption { return func(e *ITA) { e.cfg.DisableRollup = true } }

// WithRoundRobinProbe replaces the paper's greedy w_{Q,t}·c_t probe
// order with the original threshold algorithm's round-robin order
// (ablation A1).
func WithRoundRobinProbe() ITAOption { return func(e *ITA) { e.cfg.RoundRobinProbe = true } }

// WithITASeed fixes the skip-list randomness seed.
func WithITASeed(seed uint64) ITAOption { return func(e *ITA) { e.cfg.Seed = seed } }

// WithScanAllTrees pins every probe tree to the entry-ordered scan-all
// representation, where a probe tests every registered query instead of
// walking the θ-ordered beatable prefix. It exists so equivalence
// suites can prove the θ-ordered probe visits exactly the same queries;
// it is not a production configuration.
func WithScanAllTrees() ITAOption { return func(e *ITA) { e.cfg.ScanAllTrees = true } }

// WithFloorMargins overrides the floor maintenance margins (see
// floor.go). Tests use small margins to exercise floor raises and
// rebuilds densely inside small windows; zero keeps a default.
func WithFloorMargins(target, raise int) ITAOption {
	return func(e *ITA) {
		e.cfg.FloorTargetMargin = target
		e.cfg.FloorRaiseMargin = raise
	}
}

// WithPostingLayout selects the inverted-index posting layout; the
// default is the block-compressed layout. The slice layout is the
// differential-twin reference of the equivalence suites.
func WithPostingLayout(l invindex.Layout) ITAOption {
	return func(e *ITA) { e.cfg.PostingLayout = l }
}

// NewITA returns an empty ITA engine over the given window policy.
func NewITA(policy window.Policy, opts ...ITAOption) *ITA {
	e := &ITA{
		policy: policy,
		cfg:    MaintainerConfig{Seed: 1},
	}
	for _, o := range opts {
		o(e)
	}
	e.index = invindex.NewIndexLayout(e.cfg.Seed, e.cfg.PostingLayout)
	e.m = NewMaintainer(e.index, &e.stats, e.cfg)
	return e
}

// Name implements Engine.
func (e *ITA) Name() string { return "ita" }

// Queries implements Engine.
func (e *ITA) Queries() int { return e.m.Len() }

// EachQuery implements Engine.
func (e *ITA) EachQuery(fn func(q *model.Query)) { e.m.EachQuery(fn) }

// WindowLen implements Engine.
func (e *ITA) WindowLen() int { return e.index.Len() }

// EachDoc implements Engine.
func (e *ITA) EachDoc(fn func(d *model.Document)) { e.index.Docs(fn) }

// Stats implements Engine.
func (e *ITA) Stats() *Stats { return &e.stats }

// MemoryUsage implements MemoryReporter: the coordinator-owned index
// plus the maintainer's per-query structures.
func (e *ITA) MemoryUsage() Memory {
	mem := e.m.MemoryUsage()
	mem.IndexBytes = e.index.MemoryBytes()
	mem.PostingBytes = e.index.PostingBytes()
	mem.Postings = uint64(e.index.PostingCount())
	return mem
}

// Register implements Engine: it runs the initial top-k search of
// §III-A and installs the resulting local thresholds.
func (e *ITA) Register(q *model.Query) error { return e.m.Register(q) }

// Unregister implements Engine.
func (e *ITA) Unregister(id model.QueryID) bool { return e.m.Unregister(id) }

// Result implements Engine.
func (e *ITA) Result(id model.QueryID) ([]model.ScoredDoc, bool) { return e.m.Result(id) }

// PublishViews implements ViewPublisher: every query whose result
// changed since the previous call gets its frozen epoch-boundary
// snapshot swapped into the published slot. Like all of Engine, it must
// be called from the single writer — and only at a boundary, never
// between an arrival and the expirations it derives.
func (e *ITA) PublishViews() ViewReader {
	e.m.Publish()
	return e.m.Views()
}

// Process implements Engine: the arrival is indexed and handled, then
// the window policy expires documents from the FIFO head.
func (e *ITA) Process(d *model.Document) error {
	if err := e.index.Insert(d); err != nil {
		return err
	}
	e.stats.Arrivals++
	e.stats.IndexInserts += uint64(len(d.Postings))
	e.m.HandleArrival(d)
	e.expireWhile(d.Arrival)
	return nil
}

// ProcessEpoch implements EpochProcessor: the whole batch of arrivals,
// and every expiration the window policy derives from it, is applied as
// one epoch. The index absorbs the net mutations in a single ApplyBatch
// pass, then the maintainer runs one net-effect pass over the affected
// queries (HandleEpoch). Per-query results at the epoch boundary are
// identical to a Process loop over the same documents; intermediate
// states are simply never materialized. Arrival times must be
// non-decreasing within the batch.
func (e *ITA) ProcessEpoch(docs []*model.Document) error {
	if len(docs) == 0 {
		return nil
	}
	if len(docs) == 1 {
		return e.Process(docs[0])
	}
	now := docs[len(docs)-1].Arrival
	res, err := e.index.ApplyBatch(docs, func(oldest *model.Document, count int) bool {
		return e.policy.Expired(oldest.Arrival, now, count)
	})
	if err != nil {
		return err
	}
	e.stats.Epochs++
	e.stats.Arrivals += uint64(len(docs))
	e.stats.Expirations += uint64(len(res.Expired) + res.Dropped)
	e.stats.IndexInserts += uint64(res.Inserts)
	e.stats.IndexDeletes += uint64(res.Deletes)
	e.m.HandleEpoch(docs[res.Dropped:], res.Expired)
	return nil
}

// ExpireUntil implements Engine.
func (e *ITA) ExpireUntil(now time.Time) { e.expireWhile(now) }

func (e *ITA) expireWhile(now time.Time) {
	for {
		oldest := e.index.Oldest()
		if oldest == nil || !e.policy.Expired(oldest.Arrival, now, e.index.Len()) {
			return
		}
		d := e.index.RemoveOldest()
		e.stats.Expirations++
		e.stats.IndexDeletes += uint64(len(d.Postings))
		e.m.HandleExpire(d)
	}
}
