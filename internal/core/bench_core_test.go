package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/window"
)

// Micro-benchmarks of the individual maintenance paths, complementing
// the figure-level benchmarks in the repository root. Each isolates one
// event type at a controlled hit rate.

func benchDocs(n, vocab, termsPerDoc int, seed int64) []*model.Document {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]*model.Document, n)
	for i := range docs {
		freqs := map[model.TermID]bool{}
		var ps []model.Posting
		for len(ps) < termsPerDoc {
			t := model.TermID(rng.Intn(vocab))
			if freqs[t] {
				continue
			}
			freqs[t] = true
			ps = append(ps, model.Posting{Term: t, Weight: float64(rng.Intn(1000)+1) / 1000})
		}
		d, err := model.NewDocument(model.DocID(i+1), time.Unix(0, int64(i)*int64(5*time.Millisecond)), ps)
		if err != nil {
			panic(err)
		}
		docs[i] = d
	}
	return docs
}

// BenchmarkITAIndexOnly measures pure index maintenance: arrivals and
// expirations with zero registered queries.
func BenchmarkITAIndexOnly(b *testing.B) {
	for _, terms := range []int{20, 175} {
		b.Run(fmt.Sprintf("terms=%d", terms), func(b *testing.B) {
			e := NewITA(window.Count{N: 1000})
			docs := benchDocs(4096, 50000, terms, 1)
			for i := 0; i < 1000; i++ {
				if err := e.Process(docs[i]); err != nil {
					b.Fatal(err)
				}
			}
			next := model.DocID(100000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := docs[i%len(docs)]
				d := &model.Document{ID: next, Arrival: base.Arrival, Postings: base.Postings}
				next++
				if err := e.Process(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkITAProbeHit measures the arrival path when every arrival
// affects a query (worst case: the query monitors the whole space).
func BenchmarkITAProbeHit(b *testing.B) {
	e := NewITA(window.Count{N: 1000})
	q, err := model.NewQuery(1, 10, []model.QueryTerm{{Term: 1, Weight: 1}})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Register(q); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	next := model.DocID(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := model.NewDocument(next, time.Unix(0, int64(i)*int64(time.Millisecond)),
			[]model.Posting{{Term: 1, Weight: float64(rng.Intn(1000)+1) / 1000}})
		if err != nil {
			b.Fatal(err)
		}
		next++
		if err := e.Process(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkITARegister measures the initial top-k search over a warm
// window.
func BenchmarkITARegister(b *testing.B) {
	e := NewITA(window.Count{N: 1000})
	docs := benchDocs(1000, 2000, 50, 3)
	for _, d := range docs {
		if err := e.Process(d); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		terms := make([]model.QueryTerm, 0, 10)
		seen := map[model.TermID]bool{}
		for len(terms) < 10 {
			t := model.TermID(rng.Intn(2000))
			if seen[t] {
				continue
			}
			seen[t] = true
			terms = append(terms, model.QueryTerm{Term: t, Weight: 0.316})
		}
		q, err := model.NewQuery(model.QueryID(i+1), 10, terms)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Register(q); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Unregister(q.ID)
		b.StartTimer()
	}
}

// BenchmarkNaiveRescan measures one full-window recomputation.
func BenchmarkNaiveRescan(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			e := NewNaive(window.Count{N: n})
			docs := benchDocs(n, 2000, 50, 5)
			for _, d := range docs {
				if err := e.Process(d); err != nil {
					b.Fatal(err)
				}
			}
			q, err := model.NewQuery(1, 10, []model.QueryTerm{
				{Term: 3, Weight: 0.5}, {Term: 7, Weight: 0.5}, {Term: 11, Weight: 0.5},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Register(q); err != nil {
				b.Fatal(err)
			}
			st := e.queries[1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.rescan(st)
			}
		})
	}
}
