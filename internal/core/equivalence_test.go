package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/window"
)

// streamGen builds small random documents over a narrow vocabulary with
// quantized weights, deliberately provoking score ties, shared terms and
// frequent top-k churn.
type streamGen struct {
	r      *rand.Rand
	nextID model.DocID
	seq    int
	vocab  int
}

func newStreamGen(seed int64, vocab int) *streamGen {
	return &streamGen{r: rand.New(rand.NewSource(seed)), nextID: 1, vocab: vocab}
}

func (g *streamGen) doc(t *testing.T) *model.Document {
	t.Helper()
	nTerms := 1 + g.r.Intn(5)
	used := map[model.TermID]bool{}
	var ps []model.Posting
	for len(ps) < nTerms {
		term := model.TermID(g.r.Intn(g.vocab))
		if used[term] {
			continue
		}
		used[term] = true
		// Quantized weights force ties across documents.
		w := float64(1+g.r.Intn(8)) / 16
		ps = append(ps, model.Posting{Term: term, Weight: w})
	}
	d, err := model.NewDocument(g.nextID, time.Unix(0, 0).Add(time.Duration(g.seq)*5*time.Millisecond), ps)
	if err != nil {
		t.Fatal(err)
	}
	g.nextID++
	g.seq++
	return d
}

func (g *streamGen) query(t *testing.T, id model.QueryID) *model.Query {
	t.Helper()
	n := 1 + g.r.Intn(4)
	used := map[model.TermID]bool{}
	var ts []model.QueryTerm
	for len(ts) < n {
		term := model.TermID(g.r.Intn(g.vocab))
		if used[term] {
			continue
		}
		used[term] = true
		ts = append(ts, model.QueryTerm{Term: term, Weight: float64(1+g.r.Intn(4)) / 4})
	}
	q, err := model.NewQuery(id, 1+g.r.Intn(5), ts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// checkAgainstOracle verifies an engine result against the oracle's:
// identical lengths, identical score sequences, and every reported
// (doc, score) pair must be exact under the true scores. Documents may
// legitimately differ from the oracle's inside equal-score groups.
func checkAgainstOracle(tag string, got, want []model.ScoredDoc, truth map[model.DocID]float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d results, oracle has %d (got=%v want=%v)", tag, len(got), len(want), got, want)
	}
	seen := map[model.DocID]bool{}
	for i := range got {
		if got[i].Score != want[i].Score {
			return fmt.Errorf("%s: position %d score %g, oracle %g (got=%v want=%v)", tag, i, got[i].Score, want[i].Score, got, want)
		}
		ts, ok := truth[got[i].Doc]
		if !ok {
			return fmt.Errorf("%s: doc %d not in window", tag, got[i].Doc)
		}
		if ts != got[i].Score {
			return fmt.Errorf("%s: doc %d reported score %g, true score %g", tag, got[i].Doc, got[i].Score, ts)
		}
		if seen[got[i].Doc] {
			return fmt.Errorf("%s: doc %d repeated", tag, got[i].Doc)
		}
		seen[got[i].Doc] = true
	}
	return nil
}

type mirror struct {
	win []*model.Document
	n   int
}

func (m *mirror) add(d *model.Document) {
	m.win = append(m.win, d)
	if len(m.win) > m.n {
		m.win = m.win[1:]
	}
}

func (m *mirror) truth(q *model.Query) map[model.DocID]float64 {
	out := make(map[model.DocID]float64, len(m.win))
	for _, d := range m.win {
		out[d.ID] = model.Score(q, d)
	}
	return out
}

// TestEnginesAgreeOnRandomStreams is the central correctness test: ITA
// (both probe orders, with and without roll-up), plain Naïve (kmax = k)
// and Naïve+kmax are driven through identical random streams and must
// match the brute-force oracle after every event. ITA's structural
// invariants are checked at every step.
func TestEnginesAgreeOnRandomStreams(t *testing.T) {
	configs := []struct {
		seed  int64
		vocab int
		win   int
		docs  int
	}{
		{seed: 1, vocab: 10, win: 8, docs: 150},   // tiny vocab: heavy overlap, many ties
		{seed: 2, vocab: 25, win: 15, docs: 200},  // moderate
		{seed: 3, vocab: 100, win: 30, docs: 250}, // sparse matches
		{seed: 4, vocab: 6, win: 5, docs: 150},    // extreme churn
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d_v%d_w%d", cfg.seed, cfg.vocab, cfg.win), func(t *testing.T) {
			g := newStreamGen(cfg.seed, cfg.vocab)
			pol := window.Count{N: cfg.win}

			oracle := NewOracle(pol)
			engines := []Engine{
				NewITA(pol),
				NewITA(pol, WithRoundRobinProbe()),
				NewITA(pol, WithoutRollup()),
				NewNaive(pol, WithKmax(func(k int) int { return k })),
				NewNaive(pol),
			}
			tags := []string{"ita", "ita-rr", "ita-norollup", "naive-plain", "naive-2k"}

			var queries []*model.Query
			for i := 0; i < 6; i++ {
				q := g.query(t, model.QueryID(i+1))
				queries = append(queries, q)
			}
			m := &mirror{n: cfg.win}

			// Register half the queries up front, half mid-stream.
			register := func(q *model.Query) {
				if err := oracle.Register(q); err != nil {
					t.Fatal(err)
				}
				for _, e := range engines {
					if err := e.Register(q); err != nil {
						t.Fatalf("%s: %v", e.Name(), err)
					}
				}
			}
			for _, q := range queries[:3] {
				register(q)
			}

			for step := 0; step < cfg.docs; step++ {
				if step == cfg.docs/2 {
					for _, q := range queries[3:] {
						register(q)
					}
				}
				if step == 3*cfg.docs/4 {
					// Drop a query mid-stream on every engine.
					oracle.Unregister(queries[0].ID)
					for _, e := range engines {
						e.Unregister(queries[0].ID)
					}
				}
				d := g.doc(t)
				m.add(d)
				if err := oracle.Process(d); err != nil {
					t.Fatal(err)
				}
				for _, e := range engines {
					if err := e.Process(d); err != nil {
						t.Fatalf("%s: %v", e.Name(), err)
					}
				}
				for ei, e := range engines {
					if ita, ok := e.(*ITA); ok {
						if err := ita.CheckInvariants(); err != nil {
							t.Fatalf("step %d %s: %v", step, tags[ei], err)
						}
					}
				}
				for _, q := range queries {
					want, ok := oracle.Result(q.ID)
					truth := m.truth(q)
					for ei, e := range engines {
						got, ok2 := e.Result(q.ID)
						if ok != ok2 {
							t.Fatalf("step %d %s query %d: known=%v, oracle known=%v", step, tags[ei], q.ID, ok2, ok)
						}
						if !ok {
							continue
						}
						if err := checkAgainstOracle(tags[ei], got, want, truth); err != nil {
							t.Fatalf("step %d query %d: %v", step, q.ID, err)
						}
					}
				}
			}
		})
	}
}

// TestEnginesAgreeTimeWindow repeats the agreement check with a
// time-based window and bursty arrival times, exercising multi-document
// expirations per event.
func TestEnginesAgreeTimeWindow(t *testing.T) {
	g := newStreamGen(99, 15)
	span := 40 * time.Millisecond
	pol := window.Span{D: span}

	oracle := NewOracle(pol)
	engines := []Engine{NewITA(pol), NewNaive(pol)}
	tags := []string{"ita", "naive"}

	var queries []*model.Query
	for i := 0; i < 4; i++ {
		q := g.query(t, model.QueryID(i+1))
		queries = append(queries, q)
		if err := oracle.Register(q); err != nil {
			t.Fatal(err)
		}
		for _, e := range engines {
			if err := e.Register(q); err != nil {
				t.Fatal(err)
			}
		}
	}

	r := rand.New(rand.NewSource(7))
	now := time.Unix(0, 0)
	var win []*model.Document
	for step := 0; step < 200; step++ {
		// Bursty clock: mostly small gaps with occasional long silences
		// that expire many documents at once.
		gap := time.Duration(r.Intn(10)) * time.Millisecond
		if r.Intn(10) == 0 {
			gap = span + 10*time.Millisecond
		}
		now = now.Add(gap)
		base := g.doc(t)
		d, err := model.NewDocument(base.ID, now, base.Postings)
		if err != nil {
			t.Fatal(err)
		}

		win = append(win, d)
		cut := 0
		for cut < len(win) && now.Sub(win[cut].Arrival) >= span {
			cut++
		}
		win = win[cut:]

		if err := oracle.Process(d); err != nil {
			t.Fatal(err)
		}
		for _, e := range engines {
			if err := e.Process(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := engines[0].(*ITA).CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		truthFor := func(q *model.Query) map[model.DocID]float64 {
			out := make(map[model.DocID]float64)
			for _, wd := range win {
				out[wd.ID] = model.Score(q, wd)
			}
			return out
		}
		for _, q := range queries {
			want, _ := oracle.Result(q.ID)
			for ei, e := range engines {
				got, _ := e.Result(q.ID)
				if err := checkAgainstOracle(tags[ei], got, want, truthFor(q)); err != nil {
					t.Fatalf("step %d query %d: %v", step, q.ID, err)
				}
			}
		}
	}
}
