package core

import (
	"math"

	"ita/internal/invindex"
	"ita/internal/model"
)

// rollUp implements the threshold roll-up of §III-B. After an arrival
// raises Sk, the monitored region of the term-frequency space can
// shrink: repeatedly lift the local threshold of the list with the
// smallest w_{Q,t}·c_t — c_t being the impact of the entry immediately
// preceding the threshold — as long as the resulting influence threshold
// τ stays at most Sk. Each lift un-consumes exactly one entry; its
// document is dropped from R when no other list of Q still covers it,
// reversing the steps of the initial search.
//
// Correctness requires the comparison against the Sk that would hold
// *after* the drop: when the passed-over document currently occupies a
// top-k slot (a score tie at Sk), dropping it lowers Sk to the (k+1)-th
// score, and the lift is admissible only against that value. Without
// this guard a tie at the k-th score could shrink the monitored region
// below what the reported top-k needs (violating invariant I3).
func (m *Maintainer) rollUp(qs *queryState) {
	k := qs.q.K
	for qs.r.Len() >= k {
		sk := qs.r.Kth(k)
		tau := qs.tau()
		// Candidate: the list whose preceding entry has the smallest
		// weighted impact, so the lift costs τ the least.
		best := -1
		var bestKey invindex.EntryKey
		bestVal := math.Inf(1)
		for i := range qs.terms {
			ts := &qs.terms[i]
			l := m.index.List(ts.term)
			if l == nil {
				continue
			}
			pred, ok := l.PredBefore(ts.theta)
			if !ok {
				continue // threshold already at the head of this list
			}
			if v := ts.qw * pred.W; v < bestVal {
				best, bestKey, bestVal = i, pred, v
			}
		}
		if best < 0 {
			return
		}
		ts := &qs.terms[best]
		newTau := tau - ts.qw*ts.theta.W + ts.qw*bestKey.W

		// Would the passed-over document leave R? It stays when any
		// other list of Q still covers one of its entries.
		dropDoc := bestKey.Doc
		stillConsumed := false
		doc, ok := m.index.Get(dropDoc)
		if !ok {
			// The entry exists in the list, so the document must exist.
			panic("core: inverted list entry for unknown document")
		}
		for j := range qs.terms {
			if j == best {
				continue
			}
			w, has := doc.Weight(qs.terms[j].term)
			if !has {
				continue
			}
			if invindex.Before(invindex.EntryKey{W: w, Doc: dropDoc}, qs.terms[j].theta) {
				stillConsumed = true
				break
			}
		}
		skAfter := sk
		if !stillConsumed {
			if rank, inR := qs.r.Rank(dropDoc); inR && rank < k {
				skAfter = qs.r.Kth(k + 1)
			}
		}
		if newTau > skAfter {
			// Dropping the passed-over document is inadmissible (it
			// holds up Sk), but τ depends only on θ.W: lifting to the
			// position immediately after its entry shrinks the
			// monitored region just as much while keeping the document
			// consumed. This refinement is available because our
			// thresholds are exact list positions; the paper's
			// weight-valued thresholds cannot express "just below the
			// k-th document's entry".
			if newTau <= sk && bestKey.Doc != ^model.DocID(0) {
				phantom := invindex.EntryKey{W: bestKey.W, Doc: bestKey.Doc + 1}
				if invindex.Before(phantom, ts.theta) {
					tr := m.tree(ts.term)
					tr.Remove(qs.id, ts.theta)
					tr.Set(qs.id, phantom)
					m.stats.TreeUpdates += 2
					ts.theta = phantom
					m.stats.RollupSteps++
					continue
				}
			}
			return
		}

		// Commit the lift.
		tr := m.tree(ts.term)
		tr.Remove(qs.id, ts.theta)
		tr.Set(qs.id, bestKey)
		m.stats.TreeUpdates += 2
		ts.theta = bestKey
		m.stats.RollupSteps++
		if !stillConsumed {
			if qs.r.Remove(dropDoc) {
				m.stats.RollupDrops++
			}
		}
	}
}
