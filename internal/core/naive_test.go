package core

import (
	"testing"

	"ita/internal/model"
	"ita/internal/window"
)

func TestNaivePlainRescansOnEveryTopKDeletion(t *testing.T) {
	// With kmax = k, any expiry of a top-k document must trigger a full
	// rescan — the behaviour of the paper's unenhanced baseline.
	e := NewNaive(window.Count{N: 3}, WithKmax(func(k int) int { return k }))
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	rescansAfterRegister := e.Stats().Rescans
	if rescansAfterRegister != 1 {
		t.Fatalf("registration rescans = %d, want 1", rescansAfterRegister)
	}
	// Fill the window with matching docs: every expiry is a view hit.
	for i := 1; i <= 10; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: float64(i%5+1) / 10})); err != nil {
			t.Fatal(err)
		}
	}
	// Docs 1..7 expired; each expiry hit the 2-doc view with some
	// regularity. At minimum several rescans must have happened.
	if rescans := e.Stats().Rescans - rescansAfterRegister; rescans == 0 {
		t.Fatal("plain naive never rescanned despite top-k expirations")
	}
}

func TestNaiveKmaxToleratesDeletions(t *testing.T) {
	// With kmax = 2k, the view absorbs kmax−k deletions of its members
	// before the first rescan; the next one triggers it.
	e := NewNaive(window.Count{N: 4})
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1}) // kmax = 4
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	// Fill the window with 4 matching docs (all enter the view).
	for i := 1; i <= 4; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: float64(5-i) / 10})); err != nil {
			t.Fatal(err)
		}
	}
	baseline := e.Stats().Rescans
	// Two non-matching arrivals expire docs 1 and 2 — both view
	// members. View shrinks 4 → 3 → 2 = k: no rescan yet.
	for i := 5; i <= 6; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termC, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Rescans - baseline; got != 0 {
		t.Fatalf("kmax view rescanned %d times, want 0 (view 4→2 = k)", got)
	}
	// One more view expiry drops it below k: now a rescan must happen.
	if err := e.Process(doc(t, 7, 7, model.Posting{Term: termC, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Rescans - baseline; got != 1 {
		t.Fatalf("rescans = %d, want exactly 1 after view underflow", got)
	}
}

func TestNaiveFenceSkipsWeakArrivals(t *testing.T) {
	// Once the view is full at kmax, arrivals scoring at or below the
	// fence must not be admitted.
	e := NewNaive(window.Count{N: 100})
	q := query(t, 1, 1, model.QueryTerm{Term: termA, Weight: 1}) // kmax = 2
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	weights := []float64{0.5, 0.4, 0.3, 0.2}
	for i, w := range weights {
		if err := e.Process(doc(t, model.DocID(i+1), i+1, model.Posting{Term: termA, Weight: w})); err != nil {
			t.Fatal(err)
		}
	}
	st := e.queries[1]
	if st.view.Len() != 2 {
		t.Fatalf("view len = %d, want kmax=2", st.view.Len())
	}
	// The third arrival (0.3) was admitted then evicted, setting the
	// fence; the fourth (0.2 ≤ fence) was skipped outright.
	if st.fence != 0.3 {
		t.Fatalf("fence = %g, want 0.3 (the last evicted score)", st.fence)
	}
	if !st.view.Contains(1) || !st.view.Contains(2) {
		t.Fatalf("view should hold the two strongest docs")
	}
	// Result is the top-1.
	res, _ := e.Result(1)
	if len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("result = %v", res)
	}
}

func TestNaiveZeroScoreDocsStayOut(t *testing.T) {
	e := NewNaive(window.Count{N: 10})
	q := query(t, 1, 3, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termB, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := e.Result(1)
	if len(res) != 0 {
		t.Fatalf("zero-score docs in result: %v", res)
	}
	if e.queries[1].view.Len() != 0 {
		t.Fatal("zero-score docs entered the view")
	}
}

func TestNaiveUnregisterStopsWork(t *testing.T) {
	e := NewNaive(window.Count{N: 5})
	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	if !e.Unregister(1) {
		t.Fatal("unregister failed")
	}
	before := e.Stats().ScoreComputations
	if err := e.Process(doc(t, 1, 1, model.Posting{Term: termA, Weight: 0.5})); err != nil {
		t.Fatal(err)
	}
	if e.Stats().ScoreComputations != before {
		t.Fatal("unregistered query still scored")
	}
}

func TestOracleResultOrder(t *testing.T) {
	e := NewOracle(window.Count{N: 10})
	q := query(t, 1, 3, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	// Include a score tie: docs 2 and 3 both at 0.4.
	for i, w := range []float64{0.9, 0.4, 0.4, 0.1} {
		if err := e.Process(doc(t, model.DocID(i+1), i+1, model.Posting{Term: termA, Weight: w})); err != nil {
			t.Fatal(err)
		}
	}
	res, ok := e.Result(1)
	if !ok || len(res) != 3 {
		t.Fatalf("result = %v, %v", res, ok)
	}
	want := []model.ScoredDoc{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.4}, {Doc: 3, Score: 0.4}}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("result[%d] = %v, want %v", i, res[i], want[i])
		}
	}
}
