package core

import (
	"reflect"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/topk"
	"ita/internal/window"
)

// viewDoc builds a single-term document for the view tests.
func viewDoc(id model.DocID, term model.TermID, w float64, ms int) *model.Document {
	d, err := model.NewDocument(id, time.Unix(0, int64(ms)*1e6), []model.Posting{{Term: term, Weight: w}})
	if err != nil {
		panic(err)
	}
	return d
}

// TestPublishedViewsTrackBoundaries drives an ITA engine and checks the
// published read path: unpublished maintenance is invisible, PublishViews
// exposes exactly the boundary state byte-identical to Result, and
// unregistration removes the slot.
func TestPublishedViewsTrackBoundaries(t *testing.T) {
	e := NewITA(window.Count{N: 10})
	q, err := model.NewQuery(7, 2, []model.QueryTerm{{Term: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}

	// Before any publication the query is registered but invisible to
	// readers.
	if _, ok := e.m.Views().Result(7); ok {
		t.Fatal("unpublished query visible through Views")
	}
	reader := e.PublishViews()
	f, ok := reader.Result(7)
	if !ok || len(f.Docs) != 0 {
		t.Fatalf("published empty result = %v, %v", f, ok)
	}

	if err := e.Process(viewDoc(1, 1, 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	// The arrival is applied but not yet published: readers still see
	// the previous boundary.
	if f, _ := reader.Result(7); len(f.Docs) != 0 {
		t.Fatalf("in-flight state leaked to readers: %v", f.Docs)
	}
	e.PublishViews()
	f, _ = reader.Result(7)
	locked, _ := e.Result(7)
	if !reflect.DeepEqual(f.Docs, locked) {
		t.Fatalf("published %v, locked path %v", f.Docs, locked)
	}
	if len(f.Docs) != 1 || f.Docs[0].Doc != 1 {
		t.Fatalf("published boundary = %v", f.Docs)
	}

	// Publishing with no changes keeps the same snapshot pointer.
	before, _ := reader.Result(7)
	e.PublishViews()
	after, _ := reader.Result(7)
	if before != after {
		t.Fatal("no-op publish replaced the snapshot")
	}

	// Each enumerates the published query.
	seen := map[model.QueryID]int{}
	reader.Each(func(id model.QueryID, top *topk.Frozen) { seen[id] = len(top.Docs) })
	if len(seen) != 1 || seen[7] != 1 {
		t.Fatalf("Each saw %v", seen)
	}

	if !e.Unregister(7) {
		t.Fatal("Unregister failed")
	}
	if _, ok := reader.Result(7); ok {
		t.Fatal("unregistered query still visible")
	}
}

// TestPublishedViewsEpochPath checks that the epoch pipeline marks every
// touched query dirty: after ProcessEpoch + PublishViews the reader
// matches the locked result for all affected queries.
func TestPublishedViewsEpochPath(t *testing.T) {
	e := NewITA(window.Count{N: 4})
	for _, q := range []struct {
		id   model.QueryID
		term model.TermID
	}{{1, 1}, {2, 2}} {
		mq, err := model.NewQuery(q.id, 2, []model.QueryTerm{{Term: q.term, Weight: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register(mq); err != nil {
			t.Fatal(err)
		}
	}
	reader := e.PublishViews()

	docs := []*model.Document{
		viewDoc(1, 1, 0.9, 0),
		viewDoc(2, 2, 0.8, 10),
		viewDoc(3, 1, 0.7, 20),
		viewDoc(4, 2, 0.6, 30),
		viewDoc(5, 1, 0.5, 40), // expires doc 1 from the 4-window
	}
	if err := e.ProcessEpoch(docs); err != nil {
		t.Fatal(err)
	}
	e.PublishViews()
	for _, id := range []model.QueryID{1, 2} {
		f, ok := reader.Result(id)
		if !ok {
			t.Fatalf("query %d unpublished after epoch", id)
		}
		locked, _ := e.Result(id)
		if !reflect.DeepEqual(f.Docs, locked) {
			t.Fatalf("query %d: published %v, locked %v", id, f.Docs, locked)
		}
	}
}
