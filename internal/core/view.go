package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"ita/internal/model"
	"ita/internal/topk"
)

// This file implements the RCU-style published read path. A Maintainer
// owns one publication slot per dense query id; at every publication
// boundary (an epoch boundary, a Register/Unregister, an explicit
// expiry) the slot's pointer is swapped to a freshly frozen immutable
// top-k snapshot. Readers load three atomics — the ext→dense lookup,
// the slab directory and the slot's snapshot pointer — and never block
// on, or even observe, the engine's write path: result reads are
// wait-free for every settled query.
//
// Publication slots are dense slices (slabs indexed by dense id), not a
// per-query heap object: at a million registered queries the whole
// publication surface is a few thousand contiguous slabs. Dense ids are
// recycled on Unregister, so a reader racing a slot reuse could load a
// snapshot that now belongs to a different query; every published
// snapshot therefore carries the external id of its owner
// (topk.Frozen.Query), and readers discard a snapshot whose owner is
// not the query they asked for. The slab directory is grow-only and
// published atomically, and a lookup entry is stored only after its
// slab exists, so a reader that resolves a dense id always finds its
// slab.
//
// Consistency model: each published snapshot is exactly the query's
// top-k at some publication boundary; states internal to an epoch are
// never published. A reader therefore always observes, per query, a
// result the locked read path would have returned at that boundary —
// byte-identical, because the snapshot is frozen from the same
// ResultSet the locked path reads. Different queries observed by one
// reader may come from adjacent boundaries (publication swaps slots
// one at a time), but every individual query's view is a real boundary
// state at least as fresh as the last boundary completed before the
// read began.

// viewSlab is one slab of publication slots, parallel to the
// maintainer's state slabs.
type viewSlab [slabSize]viewEntry

type viewEntry struct {
	top atomic.Pointer[topk.Frozen]
}

// Views is the published, read-only side of a Maintainer: the external
// id → dense id lookup (a read-optimized concurrent map — wait-free
// for settled queries) and the dense publication slots. Slot contents
// change at every publication boundary via a single atomic store.
type Views struct {
	slabs  atomic.Pointer[[]*viewSlab]
	lookup sync.Map // model.QueryID → uint32 dense id
}

// ensure grows the slab directory to cover dense id i. Writer-side
// only; must complete before the lookup entry for i is stored.
func (v *Views) ensure(i uint32) {
	cur := v.slabs.Load()
	need := int(i>>slabBits) + 1
	if cur != nil && len(*cur) >= need {
		return
	}
	var next []*viewSlab
	if cur != nil {
		next = append(next, *cur...)
	}
	for len(next) < need {
		next = append(next, new(viewSlab))
	}
	v.slabs.Store(&next)
}

// entry returns slot i; the slab must exist (writer side).
func (v *Views) entry(i uint32) *viewEntry {
	return &(*v.slabs.Load())[i>>slabBits][i&slabMask]
}

// publish swaps slot i to snapshot f.
func (v *Views) publish(i uint32, f *topk.Frozen) { v.entry(i).top.Store(f) }

// clear empties slot i (Unregister).
func (v *Views) clear(i uint32) { v.entry(i).top.Store(nil) }

// load resolves a published snapshot by dense id with slab-bounds
// protection for readers holding an older slab directory.
func (v *Views) load(i uint32) *topk.Frozen {
	slabs := v.slabs.Load()
	if slabs == nil || int(i>>slabBits) >= len(*slabs) {
		return nil
	}
	return (*slabs)[i>>slabBits][i&slabMask].top.Load()
}

// Result returns the query's last published top-k snapshot. The second
// result is false for a query that is unknown, never published, or
// whose dense slot has been recycled to another query since the lookup
// (the ownership check). Safe for concurrent use from any goroutine.
func (v *Views) Result(id model.QueryID) (*topk.Frozen, bool) {
	d, ok := v.lookup.Load(id)
	if !ok {
		return nil, false
	}
	f := v.load(d.(uint32))
	if f == nil || f.Query != id {
		return nil, false
	}
	return f, true
}

// Each calls fn for every published query in unspecified order. The
// enumeration is weakly consistent: each query's snapshot is a real
// publication-boundary state, but queries registered or unregistered
// concurrently with the iteration may or may not be included.
func (v *Views) Each(fn func(id model.QueryID, top *topk.Frozen)) {
	v.lookup.Range(func(k, d any) bool {
		id := k.(model.QueryID)
		if f := v.load(d.(uint32)); f != nil && f.Query == id {
			fn(id, f)
		}
		return true
	})
}

// memoryBytes estimates the publication surface: the slab directory,
// the slabs, and the lookup entries (estimated at sync.Map's measured
// per-entry cost).
func (v *Views) memoryBytes() uint64 {
	const lookupEntry = 96
	var b uint64
	if slabs := v.slabs.Load(); slabs != nil {
		b += uint64(len(*slabs)) * (8 + uint64(unsafe.Sizeof(viewSlab{})))
	}
	v.lookup.Range(func(any, any) bool { b += lookupEntry; return true })
	return b
}

// ViewReader is the wait-free read handle an engine hands to its
// serving layer. The handle is stable for the engine's lifetime: it
// always reflects the latest published boundary.
type ViewReader interface {
	// Result returns the last published top-k of a query; false for a
	// query that is unknown at the last published boundary.
	Result(id model.QueryID) (*topk.Frozen, bool)
	// Each enumerates every published query (weakly consistent).
	Each(fn func(id model.QueryID, top *topk.Frozen))
}

// ViewPublisher is implemented by engines (ITA and the sharded ITA)
// whose per-query results can be read wait-free through published
// views. PublishViews makes every result change since the previous
// call visible to readers and returns the engine's read handle; it
// must be called from the engine's single writer, at a boundary (never
// mid-epoch). Engines without it (the Naïve baselines) are read
// through the locked path.
type ViewPublisher interface {
	PublishViews() ViewReader
}
