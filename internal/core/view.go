package core

import (
	"sync"
	"sync/atomic"

	"ita/internal/model"
	"ita/internal/topk"
)

// This file implements the RCU-style published read path. A Maintainer
// owns one publication slot per query; at every publication boundary
// (an epoch boundary, a Register/Unregister, an explicit expiry) the
// slot's pointer is swapped to a freshly frozen immutable top-k
// snapshot. Readers load two atomics — the slot lookup and the slot's
// snapshot pointer — and never block on, or even observe, the engine's
// write path: result reads are wait-free for every settled query.
//
// Consistency model: each published snapshot is exactly the query's
// top-k at some publication boundary; states internal to an epoch are
// never published. A reader therefore always observes, per query, a
// result the locked read path would have returned at that boundary —
// byte-identical, because the snapshot is frozen from the same
// ResultSet the locked path reads. Different queries observed by one
// reader may come from adjacent boundaries (publication swaps slots
// one at a time), but every individual query's view is a real boundary
// state at least as fresh as the last boundary completed before the
// read began.

// viewSlot is one query's publication slot. The slot itself is created
// at registration and its identity never changes; only the snapshot
// pointer inside it is swapped.
type viewSlot struct {
	top atomic.Pointer[topk.Frozen]
}

// Views is the published, read-only side of a Maintainer: the mapping
// from query id to publication slot. Slot membership changes only on
// Register/Unregister (via a read-optimized concurrent map — wait-free
// for settled queries, lock-free amortized for recently registered
// ones); slot contents change at every publication boundary via a
// single atomic store.
type Views struct {
	slots sync.Map // model.QueryID → *viewSlot
}

// Result returns the query's last published top-k snapshot. The second
// result is false for a query that is unknown or has never been
// published. Safe for concurrent use from any goroutine.
func (v *Views) Result(id model.QueryID) (*topk.Frozen, bool) {
	s, ok := v.slots.Load(id)
	if !ok {
		return nil, false
	}
	f := s.(*viewSlot).top.Load()
	if f == nil {
		return nil, false
	}
	return f, true
}

// Each calls fn for every published query in unspecified order. The
// enumeration is weakly consistent: each query's snapshot is a real
// publication-boundary state, but queries registered or unregistered
// concurrently with the iteration may or may not be included.
func (v *Views) Each(fn func(id model.QueryID, top *topk.Frozen)) {
	v.slots.Range(func(k, s any) bool {
		if f := s.(*viewSlot).top.Load(); f != nil {
			fn(k.(model.QueryID), f)
		}
		return true
	})
}

// ViewReader is the wait-free read handle an engine hands to its
// serving layer. The handle is stable for the engine's lifetime: it
// always reflects the latest published boundary.
type ViewReader interface {
	// Result returns the last published top-k of a query; false for a
	// query that is unknown at the last published boundary.
	Result(id model.QueryID) (*topk.Frozen, bool)
	// Each enumerates every published query (weakly consistent).
	Each(fn func(id model.QueryID, top *topk.Frozen))
}

// ViewPublisher is implemented by engines (ITA and the sharded ITA)
// whose per-query results can be read wait-free through published
// views. PublishViews makes every result change since the previous
// call visible to readers and returns the engine's read handle; it
// must be called from the engine's single writer, at a boundary (never
// mid-epoch). Engines without it (the Naïve baselines) are read
// through the locked path.
type ViewPublisher interface {
	PublishViews() ViewReader
}
