package core

import (
	"testing"

	"ita/internal/model"
	"ita/internal/window"
)

// TestRollupTieAtKthGuard drives the floor across score ties: runs of
// equal scores straddle the (k+tgtMargin)-th slot, so raises must stop
// at the tie (raiseFloor's newF <= f guard) and purges must keep
// members at exactly F. Small margins make every arrival a potential
// raise; the oracle cross-check pins the results at every step.
func TestRollupTieAtKthGuard(t *testing.T) {
	pol := window.Count{N: 10}
	e := NewITA(pol, WithFloorMargins(1, 1))
	o := NewOracle(pol)

	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	for _, eng := range []Engine{e, o} {
		if err := eng.Register(q); err != nil {
			t.Fatal(err)
		}
	}

	// Three docs: 0.5, 0.3, 0.3 (tie at the 2nd slot), then an arrival
	// at 0.3 creating a three-way tie, then arrivals that raise Sk and
	// trigger roll-ups across the tie boundary.
	seq := []float64{0.5, 0.3, 0.3, 0.3, 0.4, 0.4, 0.3, 0.5, 0.3, 0.3, 0.4, 0.5, 0.5}
	for i, w := range seq {
		d := doc(t, model.DocID(i+1), i, model.Posting{Term: termA, Weight: w})
		if err := e.Process(d); err != nil {
			t.Fatal(err)
		}
		if err := o.Process(doc(t, model.DocID(i+1), i, model.Posting{Term: termA, Weight: w})); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, _ := e.Result(1)
		want, _ := o.Result(1)
		if len(got) != len(want) {
			t.Fatalf("step %d: %v vs oracle %v", i, got, want)
		}
		for j := range want {
			if got[j].Score != want[j].Score {
				t.Fatalf("step %d pos %d: score %g vs oracle %g", i, j, got[j].Score, want[j].Score)
			}
		}
	}
}

// TestRollupShrinksMonitoredRegion verifies the floor raise's purpose:
// once strong arrivals lift the floor, weaker future arrivals fall
// below the probe bound and no longer cause probe hits — the θ-ordered
// index skips the query entirely.
func TestRollupShrinksMonitoredRegion(t *testing.T) {
	// Margins (1,1) with k=1: a raise fires when |R| > 3 and sets the
	// floor to the 2nd-best score.
	stream := func(e *ITA) {
		// Strong docs grow R to 4 members; the raise lifts F to 0.8 and
		// purges the 0.7 and 0.6 tail.
		for i, w := range []float64{0.9, 0.8, 0.7, 0.6} {
			if err := e.Process(doc(t, model.DocID(i+1), i+1, model.Posting{Term: termA, Weight: w})); err != nil {
				t.Fatal(err)
			}
		}
	}
	e := NewITA(window.Count{N: 100}, WithFloorMargins(1, 1))
	q := query(t, 1, 1, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	stream(e)
	if e.Stats().RollupSteps == 0 {
		t.Fatal("the strong arrivals should have raised the floor")
	}
	hitsAfterRaise := e.Stats().ProbeHits
	// Mid-weight arrivals contribute 0.5 < b = F·fac ≈ 0.8: with the
	// floor raised they must be filtered without probe hits.
	for i := 5; i <= 14; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().ProbeHits; got != hitsAfterRaise {
		t.Fatalf("probe hits grew %d → %d; the raised floor failed to shrink the monitored region",
			hitsAfterRaise, got)
	}
	// Sanity: the same stream with raises disabled does hit the query —
	// the floor stays at the Register-time 0, whose bound any
	// contribution beats.
	e2 := NewITA(window.Count{N: 100}, WithFloorMargins(1, 1), WithoutRollup())
	if err := e2.Register(q); err != nil {
		t.Fatal(err)
	}
	stream(e2)
	base := e2.Stats().ProbeHits
	for i := 5; i <= 14; i++ {
		if err := e2.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if got := e2.Stats().ProbeHits; got == base {
		t.Fatal("without raises the mid-weight arrivals should probe the query")
	}
}
