package core

import (
	"testing"

	"ita/internal/model"
	"ita/internal/window"
)

// TestRollupTieAtKthGuard pins the correctness guard discussed in
// rollUp's comment: when the entry passed over by a lift belongs to a
// document tied at the k-th score, the admissibility comparison must use
// the Sk that would hold after the drop (the (k+1)-th score), not the
// current one. The engine under test is driven into exactly that
// configuration and cross-checked against the oracle.
func TestRollupTieAtKthGuard(t *testing.T) {
	pol := window.Count{N: 10}
	e := NewITA(pol)
	o := NewOracle(pol)

	q := query(t, 1, 2, model.QueryTerm{Term: termA, Weight: 1})
	for _, eng := range []Engine{e, o} {
		if err := eng.Register(q); err != nil {
			t.Fatal(err)
		}
	}

	// Three docs: 0.5, 0.3, 0.3 (tie at the 2nd slot), then an arrival
	// at 0.3 creating a three-way tie, then arrivals that raise Sk and
	// trigger roll-ups across the tie boundary.
	seq := []float64{0.5, 0.3, 0.3, 0.3, 0.4, 0.4, 0.3, 0.5, 0.3, 0.3, 0.4, 0.5, 0.5}
	for i, w := range seq {
		d := doc(t, model.DocID(i+1), i, model.Posting{Term: termA, Weight: w})
		if err := e.Process(d); err != nil {
			t.Fatal(err)
		}
		if err := o.Process(doc(t, model.DocID(i+1), i, model.Posting{Term: termA, Weight: w})); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, _ := e.Result(1)
		want, _ := o.Result(1)
		if len(got) != len(want) {
			t.Fatalf("step %d: %v vs oracle %v", i, got, want)
		}
		for j := range want {
			if got[j].Score != want[j].Score {
				t.Fatalf("step %d pos %d: score %g vs oracle %g", i, j, got[j].Score, want[j].Score)
			}
		}
	}
}

// TestRollupShrinksMonitoredRegion verifies the roll-up's purpose: after
// a strong arrival raises Sk, weaker future arrivals that previously
// fell inside the monitored region no longer cause probe hits.
func TestRollupShrinksMonitoredRegion(t *testing.T) {
	e := NewITA(window.Count{N: 100})
	q := query(t, 1, 1, model.QueryTerm{Term: termA, Weight: 1})
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	// Weak doc establishes a low threshold.
	if err := e.Process(doc(t, 1, 1, model.Posting{Term: termA, Weight: 0.1})); err != nil {
		t.Fatal(err)
	}
	// Strong doc takes over the top-1 and rolls the threshold up.
	if err := e.Process(doc(t, 2, 2, model.Posting{Term: termA, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
	hitsAfterRollup := e.Stats().ProbeHits
	// Mid-weight arrivals score 0.5 < Sk = 0.9: with the threshold
	// rolled up they must be filtered without probe hits.
	for i := 3; i <= 12; i++ {
		if err := e.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().ProbeHits; got != hitsAfterRollup {
		t.Fatalf("probe hits grew %d → %d; roll-up failed to shrink the monitored region",
			hitsAfterRollup, got)
	}
	// Sanity: the same stream without roll-up does hit the query.
	e2 := NewITA(window.Count{N: 100}, WithoutRollup())
	if err := e2.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := e2.Process(doc(t, 1, 1, model.Posting{Term: termA, Weight: 0.1})); err != nil {
		t.Fatal(err)
	}
	if err := e2.Process(doc(t, 2, 2, model.Posting{Term: termA, Weight: 0.9})); err != nil {
		t.Fatal(err)
	}
	base := e2.Stats().ProbeHits
	for i := 3; i <= 12; i++ {
		if err := e2.Process(doc(t, model.DocID(i), i, model.Posting{Term: termA, Weight: 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if got := e2.Stats().ProbeHits; got == base {
		t.Fatal("without roll-up the mid-weight arrivals should probe the query")
	}
}
