package core

import (
	"fmt"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/window"
)

// mkDoc builds a valid document for arena tests.
func mkDoc(t testing.TB, id model.DocID, at int, postings ...model.Posting) *model.Document {
	t.Helper()
	d, err := model.NewDocument(id, time.Unix(int64(at), 0), postings)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mkQuery(t testing.TB, id model.QueryID, k int, terms ...model.QueryTerm) *model.Query {
	t.Helper()
	q, err := model.NewQuery(id, k, terms)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestDenseIDReuse churns Register/Unregister so dense slots recycle
// through the free list, re-registering the SAME external ids (which
// the facade never does, but the core API permits), and asserts reused
// slots never leak the previous occupant's results, published views or
// invariants.
func TestDenseIDReuse(t *testing.T) {
	e := NewITA(window.Count{N: 64})
	for i := 0; i < 8; i++ {
		if err := e.Process(mkDoc(t, model.DocID(i+1), i+1,
			model.Posting{Term: model.TermID(i % 3), Weight: 0.1 * float64(i+1)})); err != nil {
			t.Fatal(err)
		}
	}
	reader := e.PublishViews() // arm publication

	for round := 0; round < 10; round++ {
		// Register a cohort; every round reuses freed dense slots.
		for id := model.QueryID(1); id <= 20; id++ {
			term := model.TermID(int(id) % 3)
			if err := e.Register(mkQuery(t, id, 2, model.QueryTerm{Term: term, Weight: 1})); err != nil {
				t.Fatalf("round %d: register %d: %v", round, id, err)
			}
		}
		e.PublishViews()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := make(map[model.QueryID][]model.ScoredDoc)
		for id := model.QueryID(1); id <= 20; id++ {
			r, ok := e.Result(id)
			if !ok {
				t.Fatalf("round %d: query %d missing", round, id)
			}
			want[id] = r
			f, ok := reader.Result(id)
			if !ok {
				t.Fatalf("round %d: query %d not published", round, id)
			}
			if fmt.Sprint(f.Docs) != fmt.Sprint(r) {
				t.Fatalf("round %d: query %d: published %v, locked %v", round, id, f.Docs, r)
			}
			if f.Query != id {
				t.Fatalf("round %d: query %d: published snapshot owned by %d", round, id, f.Query)
			}
		}
		// Unregister the odd half; their ids must go fully dark even
		// though their dense slots are immediately recycled below.
		for id := model.QueryID(1); id <= 20; id += 2 {
			if !e.Unregister(id) {
				t.Fatalf("round %d: unregister %d", round, id)
			}
			if _, ok := e.Result(id); ok {
				t.Fatalf("round %d: dead query %d still has a result", round, id)
			}
			if _, ok := reader.Result(id); ok {
				t.Fatalf("round %d: dead query %d still published", round, id)
			}
		}
		// Recycle the freed slots under fresh external ids; survivors'
		// results must be untouched.
		for i := 0; i < 10; i++ {
			id := model.QueryID(1000*(round+1) + i)
			if err := e.Register(mkQuery(t, id, 2, model.QueryTerm{Term: 1, Weight: 0.5})); err != nil {
				t.Fatalf("round %d: recycle register %d: %v", round, id, err)
			}
		}
		e.PublishViews()
		for id := model.QueryID(2); id <= 20; id += 2 {
			r, _ := e.Result(id)
			if fmt.Sprint(r) != fmt.Sprint(want[id]) {
				t.Fatalf("round %d: survivor %d result changed: %v vs %v", round, id, r, want[id])
			}
			if f, ok := reader.Result(id); !ok || f.Query != id {
				t.Fatalf("round %d: survivor %d published view corrupted", round, id)
			}
		}
		// Dead ids from this round AND every earlier round stay dead.
		for id := model.QueryID(1); id <= 20; id += 2 {
			if _, ok := reader.Result(id); ok {
				t.Fatalf("round %d: dead id %d resurrected by slot reuse", round, id)
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("round %d post-churn: %v", round, err)
		}
		// Clear the board for the next round (even ids + recycled ones).
		for id := model.QueryID(2); id <= 20; id += 2 {
			e.Unregister(id)
		}
		for i := 0; i < 10; i++ {
			e.Unregister(model.QueryID(1000*(round+1) + i))
		}
	}
	if e.m.n != 0 || len(e.m.free) != int(e.m.next) {
		t.Fatalf("arena not fully recycled: n=%d free=%d high-water=%d", e.m.n, len(e.m.free), e.m.next)
	}
}

// TestScratchShrinksAfterBurst pins the scratch high-water policy: one
// huge epoch grows the epoch queue, and a run of small epochs afterwards
// must shrink the retained capacity back instead of pinning the burst's
// high-water mark forever.
func TestScratchShrinksAfterBurst(t *testing.T) {
	e := NewITA(window.Count{N: 100000})
	// Many queries on one shared term so a single epoch touches them all.
	for id := model.QueryID(1); id <= 2000; id++ {
		if err := e.Register(mkQuery(t, id, 1, model.QueryTerm{Term: 7, Weight: 1})); err != nil {
			t.Fatal(err)
		}
	}
	// One burst epoch: every document carries term 7, so every query is
	// affected and the epoch queue grows to ~2000 entries.
	burst := make([]*model.Document, 64)
	for i := range burst {
		burst[i] = mkDoc(t, model.DocID(i+1), 1, model.Posting{Term: 7, Weight: 0.5 + float64(i)/1000})
	}
	if err := e.ProcessEpoch(burst); err != nil {
		t.Fatal(err)
	}
	high := cap(e.m.epochQueue)
	if high < 2000 {
		t.Fatalf("burst epoch queue capacity %d, want >= 2000", high)
	}
	// Steady state: small epochs touching a single disjoint term, far
	// below a quarter of the retained capacity.
	next := model.DocID(1000)
	if err := e.Register(mkQuery(t, 90001, 1, model.QueryTerm{Term: 9, Weight: 1})); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		docs := make([]*model.Document, 2)
		for i := range docs {
			next++
			docs[i] = mkDoc(t, next, 2, model.Posting{Term: 9, Weight: 0.1})
		}
		if err := e.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
	}
	if got := cap(e.m.epochQueue); got >= high {
		t.Fatalf("epoch queue capacity %d did not shrink from burst high-water %d", got, high)
	}
	if got := cap(e.m.epochQueue); got > 512 {
		t.Fatalf("epoch queue capacity %d, want shrunk to the working-set scale", got)
	}
	// The engine still works after the shrink.
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
