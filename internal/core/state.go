package core

import (
	"fmt"
	"math"

	"ita/internal/model"
	"ita/internal/topk"
)

// QueryState is the exact serializable incremental state of one query:
// the score floor F and the full result list R with exact scores.
// Together with the window contents it reconstructs a maintainer
// byte-for-byte in every observable respect — results, floor, probe
// bounds (pure functions of F and the query's term weights), and
// therefore every future maintenance decision and operation counter.
// (Skip-list level draws are re-randomized on restore; they affect
// neither results nor counters.)
type QueryState struct {
	F float64
	R []model.ScoredDoc
}

// StateSnapshotter is implemented by engines whose complete incremental
// state can be exported and restored exactly — ITA and the sharded ITA.
// The restore contract is: build an empty engine with the identical
// configuration, call RestoreWindow once with the valid documents in
// arrival order, RestoreQueryState for every query, then SetStats with
// the counters captured at export. The engine must be quiescent
// throughout. Engines without it (the Naïve baselines) are restored by
// replaying the window, which reproduces results but not floors or
// counters.
type StateSnapshotter interface {
	ExportQueryState(id model.QueryID) (QueryState, bool)
	RestoreWindow(docs []*model.Document) error
	RestoreQueryState(q *model.Query, st QueryState) error
	SetStats(s Stats)
}

// ExportState returns the exact incremental state of query id.
func (m *Maintainer) ExportState(id model.QueryID) (QueryState, bool) {
	qs := m.lookup(id)
	if qs == nil {
		return QueryState{}, false
	}
	st := QueryState{
		F: qs.f,
		R: make([]model.ScoredDoc, 0, qs.r.Len()),
	}
	qs.r.Each(func(doc model.DocID, score float64) {
		st.R = append(st.R, model.ScoredDoc{Doc: doc, Score: score})
	})
	return st, true
}

// RestoreQuery installs a query with previously exported state instead
// of running the initial top-k search: R is rebuilt from its exact
// entries and the floor re-derives every probe bound bit-identically
// (bounds are pure functions of F). Validation is defensive — a
// corrupted checkpoint must surface as an error, never a panic or a
// silently broken invariant.
func (m *Maintainer) RestoreQuery(q *model.Query, st QueryState) error {
	if m.Has(q.ID) {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	if st.F < 0 || math.IsNaN(st.F) || math.IsInf(st.F, 0) {
		return fmt.Errorf("core: restore query %d: invalid floor %g", q.ID, st.F)
	}
	// All-or-nothing: validate into locals first, claim an arena slot
	// and mutate shared structures only afterwards, so a rejected state
	// leaves the maintainer untouched.
	r := topk.NewResultSet(m.seed^uint64(q.ID), q.ID)
	for _, sd := range st.R {
		if sd.Score < st.F {
			return fmt.Errorf("core: restore query %d: result doc %d scores %g below floor %g", q.ID, sd.Doc, sd.Score, st.F)
		}
		if r.Contains(sd.Doc) {
			return fmt.Errorf("core: restore query %d: duplicate result document %d", q.ID, sd.Doc)
		}
		r.Add(sd.Doc, sd.Score)
	}
	qs := m.install(q, r)
	// Rebuild the admit lists the live run would have accumulated: the
	// restored query holds exactly st.R, so each member's expiry must
	// find it. List order differs from the live chronology, which is
	// immaterial — expiry maintenance is independent per query.
	for _, sd := range st.R {
		m.recordAdmit(sd.Doc, qs.id)
	}
	m.setFloor(qs, st.F)
	m.markDirty(qs)
	return nil
}

// ExportQueryState implements StateSnapshotter.
func (e *ITA) ExportQueryState(id model.QueryID) (QueryState, bool) {
	return e.m.ExportState(id)
}

// RestoreWindow implements StateSnapshotter: the documents enter the
// inverted index and FIFO store with no per-query maintenance and no
// counter movement — the restored counters arrive via SetStats.
func (e *ITA) RestoreWindow(docs []*model.Document) error {
	for _, d := range docs {
		if err := e.index.Insert(d); err != nil {
			return err
		}
	}
	return nil
}

// RestoreQueryState implements StateSnapshotter.
func (e *ITA) RestoreQueryState(q *model.Query, st QueryState) error {
	return e.m.RestoreQuery(q, st)
}

// SetStats implements StateSnapshotter. Counter noise from the restore
// calls themselves is overwritten wholesale, which is why restore runs
// it last.
func (e *ITA) SetStats(s Stats) { e.stats = s }
