package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/window"
)

// contGen builds documents with continuous random weights: exact score
// ties are measure-zero, so byte-identical result comparisons between
// maintenance schedules are well-defined.
type contGen struct {
	r      *rand.Rand
	nextID model.DocID
	seq    int
	vocab  int
}

func newContGen(seed int64, vocab int) *contGen {
	return &contGen{r: rand.New(rand.NewSource(seed)), nextID: 1, vocab: vocab}
}

func (g *contGen) doc(t *testing.T) *model.Document {
	t.Helper()
	nTerms := 1 + g.r.Intn(5)
	used := map[model.TermID]bool{}
	var ps []model.Posting
	for len(ps) < nTerms {
		term := model.TermID(g.r.Intn(g.vocab))
		if used[term] {
			continue
		}
		used[term] = true
		ps = append(ps, model.Posting{Term: term, Weight: 0.05 + 0.95*g.r.Float64()})
	}
	d, err := model.NewDocument(g.nextID, time.Unix(0, 0).Add(time.Duration(g.seq)*5*time.Millisecond), ps)
	if err != nil {
		t.Fatal(err)
	}
	g.nextID++
	g.seq++
	return d
}

func (g *contGen) query(t *testing.T, id model.QueryID) *model.Query {
	t.Helper()
	n := 1 + g.r.Intn(4)
	used := map[model.TermID]bool{}
	var ts []model.QueryTerm
	for len(ts) < n {
		term := model.TermID(g.r.Intn(g.vocab))
		if used[term] {
			continue
		}
		used[term] = true
		ts = append(ts, model.QueryTerm{Term: term, Weight: 0.1 + 0.9*g.r.Float64()})
	}
	q, err := model.NewQuery(id, 1+g.r.Intn(5), ts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// sameResults requires byte-identical result lists.
func sameResults(got, want []model.ScoredDoc) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d (got=%v want=%v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("position %d: %+v, want %+v (got=%v want=%v)", i, got[i], want[i], got, want)
		}
	}
	return nil
}

// TestEpochMatchesSerialByteIdentical drives the epoch engine at several
// batch sizes against the event-serial ITA on tie-free streams and
// requires byte-identical per-query results at every epoch boundary,
// including batches larger than the window (documents arriving and
// expiring within one epoch) and invariant checks after every epoch.
func TestEpochMatchesSerialByteIdentical(t *testing.T) {
	for _, cfg := range []struct {
		seed       int64
		vocab, win int
		batch      int
		docs       int
	}{
		{seed: 1, vocab: 12, win: 10, batch: 4, docs: 200},
		{seed: 2, vocab: 30, win: 20, batch: 64, docs: 320},
		{seed: 3, vocab: 8, win: 6, batch: 16, docs: 200},  // batch > window: transients
		{seed: 4, vocab: 50, win: 40, batch: 1, docs: 120}, // degenerate epochs
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d_w%d_b%d", cfg.seed, cfg.win, cfg.batch), func(t *testing.T) {
			g := newContGen(cfg.seed, cfg.vocab)
			pol := window.Count{N: cfg.win}
			serial := NewITA(pol)
			epoch := NewITA(pol)

			var queries []*model.Query
			for i := 0; i < 6; i++ {
				q := g.query(t, model.QueryID(i+1))
				queries = append(queries, q)
				if err := serial.Register(q); err != nil {
					t.Fatal(err)
				}
				if err := epoch.Register(q); err != nil {
					t.Fatal(err)
				}
			}

			for done := 0; done < cfg.docs; {
				n := cfg.batch
				if rem := cfg.docs - done; n > rem {
					n = rem
				}
				docs := make([]*model.Document, n)
				for i := range docs {
					docs[i] = g.doc(t)
				}
				for _, d := range docs {
					if err := serial.Process(d); err != nil {
						t.Fatal(err)
					}
				}
				if err := epoch.ProcessEpoch(docs); err != nil {
					t.Fatal(err)
				}
				done += n
				if err := epoch.CheckInvariants(); err != nil {
					t.Fatalf("after %d docs: %v", done, err)
				}
				if got, want := epoch.WindowLen(), serial.WindowLen(); got != want {
					t.Fatalf("after %d docs: window %d, serial %d", done, got, want)
				}
				for _, q := range queries {
					got, ok := epoch.Result(q.ID)
					want, ok2 := serial.Result(q.ID)
					if ok != ok2 {
						t.Fatalf("query %d known=%v, serial %v", q.ID, ok, ok2)
					}
					if err := sameResults(got, want); err != nil {
						t.Fatalf("after %d docs, query %d: %v", done, q.ID, err)
					}
				}
			}
			// The batched engine must also account for every document.
			es, ss := epoch.Stats(), serial.Stats()
			if es.Arrivals != ss.Arrivals || es.Expirations != ss.Expirations {
				t.Fatalf("event counts diverge: epoch %d/%d, serial %d/%d",
					es.Arrivals, es.Expirations, ss.Arrivals, ss.Expirations)
			}
		})
	}
}

// TestEpochAgreesOnTieHeavyStreams repeats the agreement check on the
// deliberately tie-provoking quantized stream generator. With exact
// score ties, event-serial and epoch-batched maintenance may
// legitimately retain different documents of an equal-score group (both
// are correct top-k answers), so this test uses the same tolerance as
// the oracle suite: identical score sequences, exact true scores, no
// duplicates — plus full invariant checks and oracle agreement.
func TestEpochAgreesOnTieHeavyStreams(t *testing.T) {
	for _, batch := range []int{4, 64} {
		batch := batch
		t.Run(fmt.Sprintf("b%d", batch), func(t *testing.T) {
			g := newStreamGen(11, 10)
			pol := window.Count{N: 8}
			oracle := NewOracle(pol)
			epoch := NewITA(pol)
			m := &mirror{n: 8}

			var queries []*model.Query
			for i := 0; i < 5; i++ {
				q := g.query(t, model.QueryID(i+1))
				queries = append(queries, q)
				if err := oracle.Register(q); err != nil {
					t.Fatal(err)
				}
				if err := epoch.Register(q); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; step < 40; step++ {
				docs := make([]*model.Document, batch)
				for i := range docs {
					d := g.doc(t)
					docs[i] = d
					m.add(d)
					if err := oracle.Process(d); err != nil {
						t.Fatal(err)
					}
				}
				if err := epoch.ProcessEpoch(docs); err != nil {
					t.Fatal(err)
				}
				if err := epoch.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				for _, q := range queries {
					want, _ := oracle.Result(q.ID)
					got, _ := epoch.Result(q.ID)
					if err := checkAgainstOracle("epoch", got, want, m.truth(q)); err != nil {
						t.Fatalf("step %d query %d: %v", step, q.ID, err)
					}
				}
			}
		})
	}
}

// TestEpochTimeWindow checks epochs that mix arrivals with bursty
// time-based expirations, including whole-window turnovers.
func TestEpochTimeWindow(t *testing.T) {
	span := 40 * time.Millisecond
	pol := window.Span{D: span}
	g := newContGen(21, 15)
	serial := NewITA(pol)
	epoch := NewITA(pol)

	var queries []*model.Query
	for i := 0; i < 4; i++ {
		q := g.query(t, model.QueryID(i+1))
		queries = append(queries, q)
		if err := serial.Register(q); err != nil {
			t.Fatal(err)
		}
		if err := epoch.Register(q); err != nil {
			t.Fatal(err)
		}
	}

	r := rand.New(rand.NewSource(5))
	now := time.Unix(0, 0)
	for step := 0; step < 60; step++ {
		n := 1 + r.Intn(8)
		docs := make([]*model.Document, n)
		for i := range docs {
			gap := time.Duration(r.Intn(10)) * time.Millisecond
			if r.Intn(12) == 0 {
				gap = span + 5*time.Millisecond // silence: expires everything
			}
			now = now.Add(gap)
			base := g.doc(t)
			d, err := model.NewDocument(base.ID, now, base.Postings)
			if err != nil {
				t.Fatal(err)
			}
			docs[i] = d
		}
		for _, d := range docs {
			if err := serial.Process(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := epoch.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
		if err := epoch.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got, want := epoch.WindowLen(), serial.WindowLen(); got != want {
			t.Fatalf("step %d: window %d, serial %d", step, got, want)
		}
		for _, q := range queries {
			got, _ := epoch.Result(q.ID)
			want, _ := serial.Result(q.ID)
			if err := sameResults(got, want); err != nil {
				t.Fatalf("step %d query %d: %v", step, q.ID, err)
			}
		}
	}
}

// TestEpochAmortizesWork verifies the point of the epoch pipeline: on a
// churny workload, batched maintenance performs measurably fewer refill
// searches and index operations than event-serial processing of the
// same stream.
func TestEpochAmortizesWork(t *testing.T) {
	build := func() (*ITA, []*model.Query, *contGen) {
		g := newContGen(77, 10)
		// Tiny floor margins so the 8-document window actually produces
		// refills to amortize; the defaults would hold every match in R.
		e := NewITA(window.Count{N: 8}, WithFloorMargins(1, 1))
		var qs []*model.Query
		for i := 0; i < 8; i++ {
			q := g.query(t, model.QueryID(i+1))
			qs = append(qs, q)
			if err := e.Register(q); err != nil {
				t.Fatal(err)
			}
		}
		return e, qs, g
	}
	serial, _, gs := build()
	epoch, _, ge := build()
	const total, batch = 512, 64
	for done := 0; done < total; done += batch {
		docs := make([]*model.Document, batch)
		for i := range docs {
			docs[i] = ge.doc(t)
		}
		if err := epoch.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
		for range docs {
			if err := serial.Process(gs.doc(t)); err != nil {
				t.Fatal(err)
			}
		}
	}
	es, ss := epoch.Stats(), serial.Stats()
	if es.Refills >= ss.Refills {
		t.Errorf("epoch refills %d, serial %d — batching amortized nothing", es.Refills, ss.Refills)
	}
	// With batch ≫ window, most documents are transients and never touch
	// the inverted lists at all.
	if es.IndexInserts >= ss.IndexInserts {
		t.Errorf("epoch index inserts %d, serial %d", es.IndexInserts, ss.IndexInserts)
	}
	if es.Epochs != total/batch {
		t.Errorf("Epochs = %d, want %d", es.Epochs, total/batch)
	}
}
