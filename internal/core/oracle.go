package core

import (
	"fmt"
	"time"

	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/window"
)

// Oracle is a deliberately simple reference engine: it stores the window
// and recomputes every result from scratch on demand by scanning all
// valid documents. It exists to validate ITA and Naive in tests and
// calibration runs; it is hopeless for throughput and keeps no
// incremental state at all.
type Oracle struct {
	policy  window.Policy
	store   *invindex.Store
	queries map[model.QueryID]*model.Query
	stats   Stats
}

// NewOracle returns an empty Oracle over the given window policy.
func NewOracle(policy window.Policy) *Oracle {
	return &Oracle{
		policy:  policy,
		store:   invindex.NewStore(),
		queries: make(map[model.QueryID]*model.Query),
	}
}

// Name implements Engine.
func (e *Oracle) Name() string { return "oracle" }

// Queries implements Engine.
func (e *Oracle) Queries() int { return len(e.queries) }

// EachQuery implements Engine.
func (e *Oracle) EachQuery(fn func(q *model.Query)) {
	for _, q := range e.queries {
		fn(q)
	}
}

// WindowLen implements Engine.
func (e *Oracle) WindowLen() int { return e.store.Len() }

// EachDoc implements Engine.
func (e *Oracle) EachDoc(fn func(d *model.Document)) { e.store.Docs(fn) }

// Stats implements Engine.
func (e *Oracle) Stats() *Stats { return &e.stats }

// Register implements Engine.
func (e *Oracle) Register(q *model.Query) error {
	if _, dup := e.queries[q.ID]; dup {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	e.queries[q.ID] = q
	return nil
}

// Unregister implements Engine.
func (e *Oracle) Unregister(id model.QueryID) bool {
	if _, ok := e.queries[id]; !ok {
		return false
	}
	delete(e.queries, id)
	return true
}

// Process implements Engine.
func (e *Oracle) Process(d *model.Document) error {
	if err := e.store.Insert(d); err != nil {
		return err
	}
	e.stats.Arrivals++
	e.ExpireUntil(d.Arrival)
	return nil
}

// ExpireUntil implements Engine.
func (e *Oracle) ExpireUntil(now time.Time) {
	for {
		oldest := e.store.Oldest()
		if oldest == nil || !e.policy.Expired(oldest.Arrival, now, e.store.Len()) {
			return
		}
		e.store.RemoveOldest()
		e.stats.Expirations++
	}
}

// Result implements Engine: a full scan keeping the k best
// positive-scoring documents under the canonical order (score
// descending, doc id ascending).
func (e *Oracle) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	q, ok := e.queries[id]
	if !ok {
		return nil, false
	}
	var all []model.ScoredDoc
	e.store.Docs(func(d *model.Document) {
		e.stats.ScoreComputations++
		if s := model.Score(q, d); s > 0 {
			all = append(all, model.ScoredDoc{Doc: d.ID, Score: s})
		}
	})
	model.SortScored(all)
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all, true
}
