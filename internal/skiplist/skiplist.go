// Package skiplist provides a deterministic, generic, order-statistic
// skip list: an ordered map with O(log n) insert, delete, exact and
// range lookup, plus O(log n) access by rank.
//
// It is an ordered-collection substrate of the engine: per-query result
// sets (ordered by score) and the upper tier of the threshold trees
// (ordered by local threshold) are built on it. Determinism matters for
// reproducible benchmarks, so tower heights come from a private
// xorshift generator seeded at construction rather than from the global
// math/rand state.
//
// The layout is tuned for engines that hold one list per query at
// million-query scale: each node's forward pointers and spans live in a
// single links array (one allocation per node, not two), and the head
// tower grows lazily with the list's actual height, so an empty or
// small list costs tens of bytes rather than the worst-case 24-level
// tower.
package skiplist

import "unsafe"

const (
	maxHeight = 24 // supports ~4^24 elements at promotion probability 1/4
	branch    = 4  // promotion probability is 1/branch
	seedMix   = 0x9e3779b97f4a7c15
)

// link is one level of a node's tower: the successor at that level and
// the distance to it in level-0 steps (1 means immediate successor).
type link[K any, V any] struct {
	to   *node[K, V]
	span int
}

type node[K any, V any] struct {
	key   K
	value V
	links []link[K, V]
}

// List is an ordered map from K to V. The zero value is not usable; call
// New. A List is not safe for concurrent use.
type List[K any, V any] struct {
	less   func(a, b K) bool
	head   *node[K, V]
	length int
	height int
	rng    uint64
	towers int // cumulative tower height across all element nodes
}

// New returns an empty list ordered by less. The seed fixes the tower
// height sequence; two lists built with the same seed and the same
// operation sequence are structurally identical.
func New[K any, V any](less func(a, b K) bool, seed uint64) *List[K, V] {
	return &List[K, V]{
		less:   less,
		head:   &node[K, V]{links: make([]link[K, V], 1, 4)},
		height: 1,
		rng:    seed*seedMix + seedMix,
	}
}

// Len returns the number of elements.
func (l *List[K, V]) Len() int { return l.length }

func (l *List[K, V]) randHeight() int {
	h := 1
	for h < maxHeight {
		l.rng ^= l.rng << 13
		l.rng ^= l.rng >> 7
		l.rng ^= l.rng << 17
		if l.rng%branch != 0 {
			break
		}
		h++
	}
	return h
}

// findPath fills prev with the rightmost node whose key is strictly less
// than key at each level, and pos with that node's position (head is
// position 0, elements are 1-based). It returns the level-0 candidate:
// the first node with key ≥ key, possibly nil.
func (l *List[K, V]) findPath(key K, prev *[maxHeight]*node[K, V], pos *[maxHeight]int) *node[K, V] {
	x := l.head
	p := 0
	for i := l.height - 1; i >= 0; i-- {
		for x.links[i].to != nil && l.less(x.links[i].to.key, key) {
			p += x.links[i].span
			x = x.links[i].to
		}
		prev[i] = x
		pos[i] = p
	}
	return x.links[0].to
}

// Insert adds key→value. If an equal key is already present, its value
// is replaced and Insert reports false; otherwise true.
func (l *List[K, V]) Insert(key K, value V) bool {
	var prev [maxHeight]*node[K, V]
	var pos [maxHeight]int
	cand := l.findPath(key, &prev, &pos)
	if cand != nil && !l.less(key, cand.key) {
		cand.value = value
		return false
	}
	h := l.randHeight()
	if h > l.height {
		// Grow the head tower to the new height before linking.
		for len(l.head.links) < h {
			l.head.links = append(l.head.links, link[K, V]{})
		}
		for i := l.height; i < h; i++ {
			prev[i] = l.head
			pos[i] = 0
		}
		l.height = h
	}
	n := &node[K, V]{key: key, value: value, links: make([]link[K, V], h)}
	np := pos[0] + 1 // position of the new node
	for i := 0; i < h; i++ {
		n.links[i].to = prev[i].links[i].to
		if n.links[i].to != nil {
			// prev[i]'s old successor sat at pos[i]+span; after the
			// insert every position right of np shifts by one.
			n.links[i].span = pos[i] + prev[i].links[i].span + 1 - np
		}
		prev[i].links[i].to = n
		prev[i].links[i].span = np - pos[i]
	}
	for i := h; i < l.height; i++ {
		if prev[i].links[i].to != nil {
			prev[i].links[i].span++
		}
	}
	l.length++
	l.towers += h
	return true
}

// Delete removes key and reports whether it was present.
func (l *List[K, V]) Delete(key K) bool {
	var prev [maxHeight]*node[K, V]
	var pos [maxHeight]int
	cand := l.findPath(key, &prev, &pos)
	if cand == nil || l.less(key, cand.key) {
		return false
	}
	for i := 0; i < l.height; i++ {
		if prev[i].links[i].to == cand {
			prev[i].links[i].to = cand.links[i].to
			if i < len(cand.links) && cand.links[i].to != nil {
				prev[i].links[i].span += cand.links[i].span - 1
			} else {
				prev[i].links[i].span = 0
			}
		} else if prev[i].links[i].to != nil {
			prev[i].links[i].span--
		}
	}
	for l.height > 1 && l.head.links[l.height-1].to == nil {
		l.height--
	}
	l.length--
	l.towers -= len(cand.links)
	return true
}

// Get returns the value stored under key.
func (l *List[K, V]) Get(key K) (V, bool) {
	var prev [maxHeight]*node[K, V]
	var pos [maxHeight]int
	cand := l.findPath(key, &prev, &pos)
	if cand != nil && !l.less(key, cand.key) {
		return cand.value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (l *List[K, V]) Contains(key K) bool {
	_, ok := l.Get(key)
	return ok
}

// Iterator walks the list in ascending key order. It remains valid only
// as long as the list is not modified.
type Iterator[K any, V any] struct {
	n *node[K, V]
}

// Valid reports whether the iterator points at an element.
func (it *Iterator[K, V]) Valid() bool { return it.n != nil }

// Next advances to the successor.
func (it *Iterator[K, V]) Next() { it.n = it.n.links[0].to }

// Key returns the current key; the iterator must be valid.
func (it *Iterator[K, V]) Key() K { return it.n.key }

// Value returns the current value; the iterator must be valid.
func (it *Iterator[K, V]) Value() V { return it.n.value }

// First returns an iterator at the smallest key.
func (l *List[K, V]) First() Iterator[K, V] {
	return Iterator[K, V]{n: l.head.links[0].to}
}

// SeekGE returns an iterator at the first element with key ≥ target
// (invalid if none).
func (l *List[K, V]) SeekGE(target K) Iterator[K, V] {
	var prev [maxHeight]*node[K, V]
	var pos [maxHeight]int
	return Iterator[K, V]{n: l.findPath(target, &prev, &pos)}
}

// SeekGT returns an iterator at the first element with key > target.
func (l *List[K, V]) SeekGT(target K) Iterator[K, V] {
	it := l.SeekGE(target)
	if it.Valid() && !l.less(target, it.n.key) {
		it.Next()
	}
	return it
}

// PredLT returns the largest key strictly less than target.
func (l *List[K, V]) PredLT(target K) (K, V, bool) {
	var prev [maxHeight]*node[K, V]
	var pos [maxHeight]int
	l.findPath(target, &prev, &pos)
	if prev[0] == l.head {
		var zk K
		var zv V
		return zk, zv, false
	}
	return prev[0].key, prev[0].value, true
}

// Min returns the smallest key.
func (l *List[K, V]) Min() (K, V, bool) {
	n := l.head.links[0].to
	if n == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.key, n.value, true
}

// At returns the element with 0-based rank i in ascending key order.
// It panics if i is out of range, mirroring slice indexing.
func (l *List[K, V]) At(i int) (K, V) {
	if i < 0 || i >= l.length {
		panic("skiplist: rank out of range")
	}
	target := i + 1 // 1-based position
	x := l.head
	p := 0
	for lvl := l.height - 1; lvl >= 0; lvl-- {
		for x.links[lvl].to != nil && p+x.links[lvl].span <= target {
			p += x.links[lvl].span
			x = x.links[lvl].to
		}
		if p == target {
			return x.key, x.value
		}
	}
	// Unreachable when spans are consistent; the tests assert that.
	panic("skiplist: corrupt spans")
}

// Rank returns the number of elements with keys strictly less than key,
// i.e. the 0-based rank key occupies or would occupy.
func (l *List[K, V]) Rank(key K) int {
	var prev [maxHeight]*node[K, V]
	var pos [maxHeight]int
	l.findPath(key, &prev, &pos)
	return pos[0]
}

// MemoryBytes estimates the list's heap footprint from its node count
// and cumulative tower height. It is exact up to allocator size-class
// rounding.
func (l *List[K, V]) MemoryBytes() uint64 {
	nodeSize := uint64(unsafe.Sizeof(node[K, V]{}))
	linkSize := uint64(unsafe.Sizeof(link[K, V]{}))
	headLinks := uint64(cap(l.head.links))
	return uint64(unsafe.Sizeof(*l)) +
		uint64(l.length+1)*nodeSize +
		(uint64(l.towers)+headLinks)*linkSize
}
