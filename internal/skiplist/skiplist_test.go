package skiplist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func newInt(seed uint64) *List[int, string] { return New[int, string](intLess, seed) }

func TestEmptyList(t *testing.T) {
	l := newInt(1)
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if _, ok := l.Get(5); ok {
		t.Fatal("Get on empty list succeeded")
	}
	if l.Delete(5) {
		t.Fatal("Delete on empty list succeeded")
	}
	if it := l.First(); it.Valid() {
		t.Fatal("First on empty list is valid")
	}
	if _, _, ok := l.Min(); ok {
		t.Fatal("Min on empty list succeeded")
	}
	if _, _, ok := l.PredLT(10); ok {
		t.Fatal("PredLT on empty list succeeded")
	}
	if got := l.Rank(10); got != 0 {
		t.Fatalf("Rank = %d, want 0", got)
	}
}

func TestInsertGetDelete(t *testing.T) {
	l := newInt(2)
	for _, k := range []int{5, 1, 9, 3, 7} {
		if !l.Insert(k, "v") {
			t.Fatalf("Insert(%d) reported replacement", k)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	if v, ok := l.Get(3); !ok || v != "v" {
		t.Fatalf("Get(3) = (%q,%v)", v, ok)
	}
	if l.Insert(3, "w") {
		t.Fatal("Insert(3) again should replace, not insert")
	}
	if v, _ := l.Get(3); v != "w" {
		t.Fatalf("Get(3) after replace = %q", v)
	}
	if l.Len() != 5 {
		t.Fatalf("Len after replace = %d, want 5", l.Len())
	}
	if !l.Delete(3) {
		t.Fatal("Delete(3) failed")
	}
	if l.Contains(3) {
		t.Fatal("Contains(3) after delete")
	}
	if l.Len() != 4 {
		t.Fatalf("Len after delete = %d, want 4", l.Len())
	}
}

func TestAscendingIteration(t *testing.T) {
	l := newInt(3)
	keys := []int{42, 7, 19, 3, 99, 58, 1}
	for _, k := range keys {
		l.Insert(k, "")
	}
	sort.Ints(keys)
	i := 0
	for it := l.First(); it.Valid(); it.Next() {
		if it.Key() != keys[i] {
			t.Fatalf("iteration[%d] = %d, want %d", i, it.Key(), keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterated %d elements, want %d", i, len(keys))
	}
}

func TestSeeks(t *testing.T) {
	l := newInt(4)
	for _, k := range []int{10, 20, 30, 40} {
		l.Insert(k, "")
	}
	cases := []struct {
		target  int
		wantGE  int
		validGE bool
		wantGT  int
		validGT bool
	}{
		{5, 10, true, 10, true},
		{10, 10, true, 20, true},
		{15, 20, true, 20, true},
		{40, 40, true, 0, false},
		{45, 0, false, 0, false},
	}
	for _, c := range cases {
		ge := l.SeekGE(c.target)
		if ge.Valid() != c.validGE || (ge.Valid() && ge.Key() != c.wantGE) {
			t.Errorf("SeekGE(%d): valid=%v key=%v", c.target, ge.Valid(), c.wantGE)
		}
		gt := l.SeekGT(c.target)
		if gt.Valid() != c.validGT || (gt.Valid() && gt.Key() != c.wantGT) {
			t.Errorf("SeekGT(%d): valid=%v", c.target, gt.Valid())
		}
	}
}

func TestPredLT(t *testing.T) {
	l := newInt(5)
	for _, k := range []int{10, 20, 30} {
		l.Insert(k, "")
	}
	if _, _, ok := l.PredLT(10); ok {
		t.Error("PredLT(10) should be absent")
	}
	if k, _, ok := l.PredLT(11); !ok || k != 10 {
		t.Errorf("PredLT(11) = (%d,%v)", k, ok)
	}
	if k, _, ok := l.PredLT(30); !ok || k != 20 {
		t.Errorf("PredLT(30) = (%d,%v)", k, ok)
	}
	if k, _, ok := l.PredLT(1000); !ok || k != 30 {
		t.Errorf("PredLT(1000) = (%d,%v)", k, ok)
	}
}

func TestRankAndAt(t *testing.T) {
	l := newInt(6)
	for i := 0; i < 100; i++ {
		l.Insert(i*2, "") // 0,2,...,198
	}
	for i := 0; i < 100; i++ {
		if k, _ := l.At(i); k != i*2 {
			t.Fatalf("At(%d) = %d, want %d", i, k, i*2)
		}
		if r := l.Rank(i * 2); r != i {
			t.Fatalf("Rank(%d) = %d, want %d", i*2, r, i)
		}
		if r := l.Rank(i*2 + 1); r != i+1 {
			t.Fatalf("Rank(%d) = %d, want %d", i*2+1, r, i+1)
		}
	}
}

func TestRankAfterDeletions(t *testing.T) {
	l := newInt(7)
	for i := 0; i < 50; i++ {
		l.Insert(i, "")
	}
	// Remove the even keys; ranks of odd keys must compact.
	for i := 0; i < 50; i += 2 {
		if !l.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := 0; i < 25; i++ {
		want := 2*i + 1
		if k, _ := l.At(i); k != want {
			t.Fatalf("At(%d) = %d, want %d", i, k, want)
		}
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	build := func(seed uint64) []int {
		l := newInt(seed)
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			l.Insert(r.Intn(1000), "")
		}
		var out []int
		for it := l.First(); it.Valid(); it.Next() {
			out = append(out, it.Key())
		}
		return out
	}
	a, b := build(1), build(1)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different contents at %d", i)
		}
	}
}

// TestAgainstReferenceModel drives a random mixed workload applied both
// to the skip list and to a reference map + sorted slice. Each pair of
// bytes encodes one operation (kind, key).
func TestAgainstReferenceModel(t *testing.T) {
	f := func(raw []uint16) bool {
		l := New[int, int](intLess, 42)
		ref := map[int]int{}
		for i, w := range raw {
			k := int(w & 0x1ff)
			switch (w >> 9) % 3 {
			case 0:
				l.Insert(k, i)
				ref[k] = i
			case 1:
				okL := l.Delete(k)
				_, okR := ref[k]
				if okL != okR {
					return false
				}
				delete(ref, k)
			case 2:
				v, okL := l.Get(k)
				rv, okR := ref[k]
				if okL != okR || (okL && v != rv) {
					return false
				}
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		keys := make([]int, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		i := 0
		for it := l.First(); it.Valid(); it.Next() {
			if i >= len(keys) || it.Key() != keys[i] || it.Value() != ref[keys[i]] {
				return false
			}
			// Order statistics must agree with the sorted reference.
			if ak, _ := l.At(i); ak != keys[i] {
				return false
			}
			if l.Rank(keys[i]) != i {
				return false
			}
			i++
		}
		return i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomWorkloadSpans(t *testing.T) {
	l := New[int, int](intLess, 11)
	ref := map[int]int{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := r.Intn(4000)
		if r.Intn(3) == 0 {
			delete(ref, k)
			l.Delete(k)
		} else {
			ref[k] = i
			l.Insert(k, i)
		}
	}
	if l.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(ref))
	}
	keys := make([]int, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for i, k := range keys {
		if gk, gv := l.At(i); gk != k || gv != ref[k] {
			t.Fatalf("At(%d) = (%d,%d), want (%d,%d)", i, gk, gv, k, ref[k])
		}
	}
}

func TestReverseAndRandomInsertionOrdersAgree(t *testing.T) {
	asc := newInt(1)
	desc := newInt(2)
	for i := 0; i < 1000; i++ {
		asc.Insert(i, "")
		desc.Insert(999-i, "")
	}
	ia, id := asc.First(), desc.First()
	for ia.Valid() && id.Valid() {
		if ia.Key() != id.Key() {
			t.Fatalf("mismatch %d vs %d", ia.Key(), id.Key())
		}
		ia.Next()
		id.Next()
	}
	if ia.Valid() != id.Valid() {
		t.Fatal("different lengths")
	}
}

func BenchmarkInsert(b *testing.B) {
	l := New[int, int](intLess, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Insert(i*2654435761%1000003, i)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New[int, int](intLess, 1)
	for i := 0; i < 100000; i++ {
		l.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(i % 100000)
	}
}
