package shard_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/shard"
	"ita/internal/window"
)

// gen builds small random documents and queries over a narrow vocabulary
// with quantized weights, provoking score ties, shared terms and top-k
// churn — the same adversarial shape as core's equivalence suite.
type gen struct {
	r      *rand.Rand
	nextID model.DocID
	seq    int
	vocab  int
}

func newGen(seed int64, vocab int) *gen {
	return &gen{r: rand.New(rand.NewSource(seed)), nextID: 1, vocab: vocab}
}

func (g *gen) doc(t *testing.T) *model.Document {
	t.Helper()
	nTerms := 1 + g.r.Intn(5)
	used := map[model.TermID]bool{}
	var ps []model.Posting
	for len(ps) < nTerms {
		term := model.TermID(g.r.Intn(g.vocab))
		if used[term] {
			continue
		}
		used[term] = true
		w := float64(1+g.r.Intn(8)) / 16
		ps = append(ps, model.Posting{Term: term, Weight: w})
	}
	d, err := model.NewDocument(g.nextID, time.Unix(0, 0).Add(time.Duration(g.seq)*5*time.Millisecond), ps)
	if err != nil {
		t.Fatal(err)
	}
	g.nextID++
	g.seq++
	return d
}

func (g *gen) query(t *testing.T, id model.QueryID) *model.Query {
	t.Helper()
	n := 1 + g.r.Intn(4)
	used := map[model.TermID]bool{}
	var ts []model.QueryTerm
	for len(ts) < n {
		term := model.TermID(g.r.Intn(g.vocab))
		if used[term] {
			continue
		}
		used[term] = true
		ts = append(ts, model.QueryTerm{Term: term, Weight: float64(1+g.r.Intn(4)) / 4})
	}
	q, err := model.NewQuery(id, 1+g.r.Intn(5), ts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

var shardCounts = []int{1, 2, 8}

// TestShardedMatchesITAAndOracle drives the sharded engine (S ∈ {1, 2, 8})
// through randomized arrival/expiration/register/unregister streams in
// lock-step with the single-threaded ITA and the brute-force oracle.
// The sharded results must be *identical* to single-threaded ITA's (same
// documents, same scores, same order — the equivalence claim of the
// two-phase design), must agree with the oracle, and the merged shard
// stats must equal the single-threaded counters. Run under -race this is
// also the concurrency-safety test for the fan-out.
func TestShardedMatchesITAAndOracle(t *testing.T) {
	configs := []struct {
		seed  int64
		vocab int
		win   int
		docs  int
	}{
		{seed: 11, vocab: 10, win: 8, docs: 150}, // tiny vocab: heavy overlap, ties
		{seed: 12, vocab: 25, win: 15, docs: 200},
		{seed: 13, vocab: 100, win: 30, docs: 250}, // sparse matches
		{seed: 14, vocab: 6, win: 5, docs: 150},    // extreme churn
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d_v%d_w%d", cfg.seed, cfg.vocab, cfg.win), func(t *testing.T) {
			g := newGen(cfg.seed, cfg.vocab)
			pol := window.Count{N: cfg.win}

			oracle := core.NewOracle(pol)
			single := core.NewITA(pol)
			var sharded []*shard.Engine
			for _, s := range shardCounts {
				eng := shard.New(pol, s)
				defer eng.Close()
				sharded = append(sharded, eng)
			}

			var queries []*model.Query
			for i := 0; i < 8; i++ {
				queries = append(queries, g.query(t, model.QueryID(i+1)))
			}
			register := func(q *model.Query) {
				if err := oracle.Register(q); err != nil {
					t.Fatal(err)
				}
				if err := single.Register(q); err != nil {
					t.Fatal(err)
				}
				for _, eng := range sharded {
					if err := eng.Register(q); err != nil {
						t.Fatalf("S=%d: %v", eng.Shards(), err)
					}
				}
			}
			for _, q := range queries[:4] {
				register(q)
			}

			for step := 0; step < cfg.docs; step++ {
				if step == cfg.docs/2 {
					for _, q := range queries[4:] {
						register(q)
					}
				}
				if step == 3*cfg.docs/4 {
					oracle.Unregister(queries[1].ID)
					single.Unregister(queries[1].ID)
					for _, eng := range sharded {
						if !eng.Unregister(queries[1].ID) {
							t.Fatalf("S=%d: Unregister(%d) = false", eng.Shards(), queries[1].ID)
						}
					}
				}
				d := g.doc(t)
				if err := oracle.Process(d); err != nil {
					t.Fatal(err)
				}
				if err := single.Process(d); err != nil {
					t.Fatal(err)
				}
				for _, eng := range sharded {
					if err := eng.Process(d); err != nil {
						t.Fatalf("S=%d: %v", eng.Shards(), err)
					}
					if err := eng.CheckInvariants(); err != nil {
						t.Fatalf("step %d S=%d: %v", step, eng.Shards(), err)
					}
				}
				for _, q := range queries {
					oracleRes, known := oracle.Result(q.ID)
					singleRes, sKnown := single.Result(q.ID)
					if known != sKnown {
						t.Fatalf("step %d query %d: ita known=%v oracle known=%v", step, q.ID, sKnown, known)
					}
					for _, eng := range sharded {
						got, gKnown := eng.Result(q.ID)
						if gKnown != known {
							t.Fatalf("step %d S=%d query %d: known=%v, want %v", step, eng.Shards(), q.ID, gKnown, known)
						}
						if !known {
							continue
						}
						// Identical to the single-threaded ITA, score-equal
						// to the oracle.
						if !reflect.DeepEqual(got, singleRes) {
							t.Fatalf("step %d S=%d query %d:\nsharded %v\nita     %v", step, eng.Shards(), q.ID, got, singleRes)
						}
						if len(got) != len(oracleRes) {
							t.Fatalf("step %d S=%d query %d: %d results, oracle %d", step, eng.Shards(), q.ID, len(got), len(oracleRes))
						}
						for i := range got {
							if got[i].Score != oracleRes[i].Score {
								t.Fatalf("step %d S=%d query %d pos %d: score %g, oracle %g", step, eng.Shards(), q.ID, i, got[i].Score, oracleRes[i].Score)
							}
						}
					}
				}
			}

			want := *single.Stats()
			for _, eng := range sharded {
				if got := *eng.Stats(); got != want {
					t.Fatalf("S=%d merged stats diverge:\nsharded %+v\nita     %+v", eng.Shards(), got, want)
				}
			}
		})
	}
}

// TestShardedTimeWindow repeats the agreement check with a time-based
// window and bursty arrival times, exercising multi-document expirations
// per event and explicit ExpireUntil advances with no arrival.
func TestShardedTimeWindow(t *testing.T) {
	g := newGen(77, 15)
	span := 40 * time.Millisecond
	pol := window.Span{D: span}

	single := core.NewITA(pol)
	var sharded []*shard.Engine
	for _, s := range shardCounts {
		eng := shard.New(pol, s)
		defer eng.Close()
		sharded = append(sharded, eng)
	}

	var queries []*model.Query
	for i := 0; i < 5; i++ {
		q := g.query(t, model.QueryID(i+1))
		queries = append(queries, q)
		if err := single.Register(q); err != nil {
			t.Fatal(err)
		}
		for _, eng := range sharded {
			if err := eng.Register(q); err != nil {
				t.Fatal(err)
			}
		}
	}

	r := rand.New(rand.NewSource(7))
	now := time.Unix(0, 0)
	for step := 0; step < 200; step++ {
		gap := time.Duration(r.Intn(10)) * time.Millisecond
		if r.Intn(10) == 0 {
			gap = span + 10*time.Millisecond
		}
		now = now.Add(gap)
		if r.Intn(8) == 0 {
			// Clock advance with no arrival.
			single.ExpireUntil(now)
			for _, eng := range sharded {
				eng.ExpireUntil(now)
			}
		} else {
			base := g.doc(t)
			d, err := model.NewDocument(base.ID, now, base.Postings)
			if err != nil {
				t.Fatal(err)
			}
			if err := single.Process(d); err != nil {
				t.Fatal(err)
			}
			for _, eng := range sharded {
				if err := eng.Process(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, eng := range sharded {
			if err := eng.CheckInvariants(); err != nil {
				t.Fatalf("step %d S=%d: %v", step, eng.Shards(), err)
			}
			for _, q := range queries {
				want, _ := single.Result(q.ID)
				got, _ := eng.Result(q.ID)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d S=%d query %d:\nsharded %v\nita     %v", step, eng.Shards(), q.ID, got, want)
				}
			}
		}
	}
}

// TestShardedBatch checks ProcessBatch against per-document Process.
func TestShardedBatch(t *testing.T) {
	pol := window.Count{N: 20}
	a := shard.New(pol, 4)
	defer a.Close()
	b := shard.New(pol, 4)
	defer b.Close()

	ga, gb := newGen(5, 12), newGen(5, 12)
	for i := 0; i < 5; i++ {
		qa, qb := ga.query(t, model.QueryID(i+1)), gb.query(t, model.QueryID(i+1))
		if err := a.Register(qa); err != nil {
			t.Fatal(err)
		}
		if err := b.Register(qb); err != nil {
			t.Fatal(err)
		}
	}
	var batch []*model.Document
	for i := 0; i < 60; i++ {
		da, db := ga.doc(t), gb.doc(t)
		if err := a.Process(da); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, db)
	}
	if err := b.ProcessBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		ra, _ := a.Result(model.QueryID(i))
		rb, _ := b.Result(model.QueryID(i))
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("query %d: batch %v, loop %v", i, rb, ra)
		}
	}
	if *a.Stats() != *b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", *a.Stats(), *b.Stats())
	}
}

// TestShardedErrors covers duplicate registration, duplicate documents
// and unknown-query lookups.
func TestShardedErrors(t *testing.T) {
	eng := shard.New(window.Count{N: 4}, 2)
	defer eng.Close()

	q, err := model.NewQuery(1, 2, []model.QueryTerm{{Term: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(q); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if _, ok := eng.Result(99); ok {
		t.Fatal("Result(99) reported known")
	}
	if eng.Unregister(99) {
		t.Fatal("Unregister(99) returned true")
	}
	d, err := model.NewDocument(1, time.Unix(0, 0), []model.Posting{{Term: 1, Weight: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Process(d); err != nil {
		t.Fatal(err)
	}
	if err := eng.Process(d); err == nil {
		t.Fatal("duplicate Process succeeded")
	}
	if res, ok := eng.Result(1); !ok || len(res) != 1 {
		t.Fatalf("Result(1) = %v, %v", res, ok)
	}
	if eng.Queries() != 1 || eng.WindowLen() != 1 {
		t.Fatalf("Queries=%d WindowLen=%d", eng.Queries(), eng.WindowLen())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
