package shard

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/topk"
	"ita/internal/window"
)

func viewDoc(id model.DocID, postings []model.Posting, ms int) *model.Document {
	d, err := model.NewDocument(id, time.Unix(0, int64(ms)*1e6), postings)
	if err != nil {
		panic(err)
	}
	return d
}

// TestMergedViewsMatchLockedPath drives the sharded engine through
// per-event and epoch processing and checks, at every boundary, that the
// lazily merged per-shard views serve byte-identical results to the
// coordinator's locked Result path for every query.
func TestMergedViewsMatchLockedPath(t *testing.T) {
	e := New(window.Count{N: 6}, 4)
	defer e.Close()
	const nq = 12
	for i := 1; i <= nq; i++ {
		q, err := model.NewQuery(model.QueryID(i), 2, []model.QueryTerm{
			{Term: model.TermID(i % 3), Weight: 1},
			{Term: model.TermID(3 + i%2), Weight: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	reader := e.PublishViews()

	check := func(step int) {
		t.Helper()
		for qi := 1; qi <= nq; qi++ {
			id := model.QueryID(qi)
			f, ok := reader.Result(id)
			if !ok {
				t.Fatalf("step %d: query %d missing from merged views", step, id)
			}
			locked, _ := e.Result(id)
			if !reflect.DeepEqual(f.Docs, locked) {
				t.Fatalf("step %d: query %d: views %v, locked %v", step, id, f.Docs, locked)
			}
		}
	}

	next := model.DocID(1)
	mkDoc := func(ms int) *model.Document {
		d := viewDoc(next, []model.Posting{
			{Term: model.TermID(int(next) % 3), Weight: 0.3 + float64(int(next)%5)/10},
			{Term: model.TermID(3 + int(next)%2), Weight: 0.2 + float64(int(next)%7)/20},
		}, ms)
		next++
		return d
	}

	// Per-event path.
	for i := 0; i < 10; i++ {
		if err := e.Process(mkDoc(i * 10)); err != nil {
			t.Fatal(err)
		}
		e.PublishViews()
		check(i)
	}
	// Epoch path.
	for i := 0; i < 5; i++ {
		docs := make([]*model.Document, 7)
		for j := range docs {
			docs[j] = mkDoc(100 + i*100 + j*10)
		}
		if err := e.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
		e.PublishViews()
		check(100 + i)
	}
	// Unregistration drops queries from the merged enumeration.
	if !e.Unregister(3) {
		t.Fatal("Unregister failed")
	}
	e.PublishViews()
	count := 0
	reader.Each(func(id model.QueryID, _ *topk.Frozen) { count++ })
	if count != nq-1 {
		t.Fatalf("Each enumerated %d queries, want %d", count, nq-1)
	}
}

// TestConcurrentViewReadersUnderEpochs hammers the merged views from
// reader goroutines while the coordinator drives epochs, under the race
// detector in CI. Every observed snapshot must be internally consistent
// (descending scores); full epoch-boundary correspondence is asserted at
// the facade level, where boundaries are defined.
func TestConcurrentViewReadersUnderEpochs(t *testing.T) {
	e := New(window.Count{N: 8}, 3)
	defer e.Close()
	for i := 1; i <= 9; i++ {
		q, err := model.NewQuery(model.QueryID(i), 3, []model.QueryTerm{
			{Term: model.TermID(i % 4), Weight: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	reader := e.PublishViews()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := model.QueryID(1 + (i+r)%9)
				f, ok := reader.Result(id)
				if !ok {
					t.Errorf("query %d vanished", id)
					return
				}
				for j := 1; j < len(f.Docs); j++ {
					if f.Docs[j].Score > f.Docs[j-1].Score {
						t.Errorf("snapshot of query %d not sorted: %v", id, f.Docs)
						return
					}
				}
			}
		}(r)
	}

	next := model.DocID(1)
	for i := 0; i < 60; i++ {
		docs := make([]*model.Document, 5)
		for j := range docs {
			docs[j] = viewDoc(next, []model.Posting{
				{Term: model.TermID(int(next) % 4), Weight: 0.2 + float64(int(next)%9)/10},
			}, i*50+j*10)
			next++
		}
		if err := e.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
		e.PublishViews()
	}
	stop.Store(true)
	wg.Wait()
}
