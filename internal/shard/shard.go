// Package shard implements the sharded parallel ITA engine: registered
// queries are partitioned across S shards, each owning the threshold
// trees, result sets and local thresholds (a core.Maintainer) for its
// queries, while the inverted index and FIFO document store remain a
// single-writer structure owned by the coordinator.
//
// Event processing is a two-phase pipeline per arrival or expiration:
//
//  1. The coordinator mutates the index (insert the arriving document,
//     or pop the expired one), on the caller's goroutine.
//  2. All shards concurrently run their per-query maintenance —
//     probe → score → add/roll-up for arrivals, probe → remove → refill
//     for expirations — against the now-quiescent index.
//
// ProcessEpoch lifts the same two phases from per-event to per-epoch:
// the coordinator stages a whole batch's net index mutations in one
// pass, then all shards fan out exactly once, each applying the epoch's
// net effect to its queries. One barrier per epoch instead of one per
// event is what lets the sharded engine scale past the per-event
// synchronization floor.
//
// The fan-out is exact, not approximate: ITA's maintenance state is
// strictly per-query (the paper's threshold trees and result lists R
// never couple two queries), and within one event every shard only
// *reads* the shared index. The sharded engine therefore returns
// results identical to the single-threaded ITA for every query at every
// instant; internal/shard's equivalence tests drive both against the
// brute-force oracle to enforce exactly that.
//
// Like every core.Engine, the sharded engine's public methods must be
// called from one goroutine at a time (the ita facade adds locking);
// parallelism lives entirely inside Process/ProcessBatch.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ita/internal/core"
	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/topk"
	"ita/internal/window"
)

// Engine is the sharded parallel ITA. It implements core.Engine plus
// ProcessBatch and Close.
type Engine struct {
	policy window.Policy
	index  *invindex.Index
	shards []*shardState
	total  int // registered queries across all shards

	// coord holds the coordinator's counters (arrivals, expirations,
	// index mutations); merged is the scratch block Stats() merges the
	// per-shard counters into.
	coord  core.Stats
	merged core.Stats

	// views is the engine's stable wait-free read handle (per-shard
	// published views, merged lazily at read time).
	views *mergedViews

	pending  sync.WaitGroup // per-event completion barrier
	workers  sync.WaitGroup // worker lifetime
	stopOnce sync.Once
}

// shardState is one shard: a maintainer plus its private stats block
// and the channel its worker goroutine receives events on. Keeping the
// stats per shard makes counting contention-free during the fan-out.
type shardState struct {
	m     *core.Maintainer
	stats core.Stats
	ch    chan event // nil when the engine runs inline (S == 1)
}

// event is one unit of fan-out work: either a single arrival or
// expiration (doc != nil), or a whole epoch's net arrivals and
// expirations (doc == nil).
type event struct {
	arrival bool
	doc     *model.Document
	arrived []*model.Document
	expired []*model.Document
}

// handle dispatches one event on this shard's maintainer.
func (s *shardState) handle(ev event) {
	switch {
	case ev.doc == nil:
		s.m.HandleEpoch(ev.arrived, ev.expired)
	case ev.arrival:
		s.m.HandleArrival(ev.doc)
	default:
		s.m.HandleExpire(ev.doc)
	}
}

// Option configures New.
type Option func(*core.MaintainerConfig)

// WithSeed fixes the skip-list randomness seed, matching
// core.WithITASeed so sharded and single-threaded runs are structurally
// comparable.
func WithSeed(seed uint64) Option {
	return func(c *core.MaintainerConfig) { c.Seed = seed }
}

// WithoutRollup disables the threshold roll-up (ablation A2), matching
// core.WithoutRollup.
func WithoutRollup() Option {
	return func(c *core.MaintainerConfig) { c.DisableRollup = true }
}

// WithRoundRobinProbe selects the round-robin probe order (ablation A1),
// matching core.WithRoundRobinProbe.
func WithRoundRobinProbe() Option {
	return func(c *core.MaintainerConfig) { c.RoundRobinProbe = true }
}

// WithScanAllTrees pins probe trees to the entry-ordered scan-all
// representation, matching core.WithScanAllTrees (equivalence testing
// only).
func WithScanAllTrees() Option {
	return func(c *core.MaintainerConfig) { c.ScanAllTrees = true }
}

// WithFloorMargins overrides the floor maintenance margins, matching
// core.WithFloorMargins (zero keeps a default).
func WithFloorMargins(target, raise int) Option {
	return func(c *core.MaintainerConfig) {
		c.FloorTargetMargin = target
		c.FloorRaiseMargin = raise
	}
}

// WithPostingLayout selects the inverted-index posting layout, matching
// core.WithPostingLayout (the default is the block-compressed layout).
func WithPostingLayout(l invindex.Layout) Option {
	return func(c *core.MaintainerConfig) { c.PostingLayout = l }
}

// New returns an empty sharded engine with the given shard count;
// shards <= 0 selects runtime.GOMAXPROCS(0). With one shard the engine
// runs maintenance inline on the caller's goroutine (no workers, no
// synchronization); with more it starts one worker goroutine per shard,
// released per event and joined on a barrier before Process returns.
// Call Close when done to stop the workers.
func New(policy window.Policy, shards int, opts ...Option) *Engine {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg := core.MaintainerConfig{Seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		policy: policy,
		index:  invindex.NewIndexLayout(cfg.Seed, cfg.PostingLayout),
		shards: make([]*shardState, shards),
	}
	for i := range e.shards {
		s := &shardState{}
		s.m = core.NewMaintainer(e.index, &s.stats, cfg)
		e.shards[i] = s
	}
	e.views = &mergedViews{shards: e.shards}
	if shards > 1 {
		for _, s := range e.shards {
			s.ch = make(chan event, 1)
			e.workers.Add(1)
			go e.worker(s)
		}
	}
	return e
}

func (e *Engine) worker(s *shardState) {
	defer e.workers.Done()
	for ev := range s.ch {
		s.handle(ev)
		// After an epoch event, freeze this shard's changed results while
		// still on the worker: the copy-on-publish work parallelizes with
		// the other shards, and the coordinator's later PublishViews
		// degenerates to pure pointer swaps. Nothing becomes visible to
		// readers yet. Per-event fan-outs skip the warm — several events
		// (an arrival plus its expirations) may share one publication
		// boundary, and only the last freeze would survive; the
		// coordinator freezes each dirty query exactly once instead.
		if ev.doc == nil {
			s.m.WarmViews()
		}
		e.pending.Done()
	}
}

// Close stops the worker goroutines. The engine must be quiescent (no
// Process in flight); further Process calls panic. Close is idempotent.
func (e *Engine) Close() error {
	e.stopOnce.Do(func() {
		for _, s := range e.shards {
			if s.ch != nil {
				close(s.ch)
			}
		}
		e.workers.Wait()
	})
	return nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Name implements core.Engine.
func (e *Engine) Name() string { return "ita-sharded" }

// Queries implements core.Engine.
func (e *Engine) Queries() int { return e.total }

// EachQuery implements core.Engine.
func (e *Engine) EachQuery(fn func(q *model.Query)) {
	for _, s := range e.shards {
		s.m.EachQuery(fn)
	}
}

// WindowLen implements core.Engine.
func (e *Engine) WindowLen() int { return e.index.Len() }

// EachDoc implements core.Engine.
func (e *Engine) EachDoc(fn func(d *model.Document)) { e.index.Docs(fn) }

// MemoryUsage implements core.MemoryReporter: the shared index plus
// every shard's per-query structures.
func (e *Engine) MemoryUsage() core.Memory {
	var mem core.Memory
	mem.IndexBytes = e.index.MemoryBytes()
	mem.PostingBytes = e.index.PostingBytes()
	mem.Postings = uint64(e.index.PostingCount())
	for _, s := range e.shards {
		mem.Merge(s.m.MemoryUsage())
	}
	return mem
}

// Stats implements core.Engine: the coordinator's counters plus every
// shard's, merged. The merged totals equal the single-threaded ITA's
// counters on the same stream, since each query's maintenance performs
// identical operations regardless of which shard runs it.
func (e *Engine) Stats() *core.Stats {
	e.merged = e.coord
	for _, s := range e.shards {
		e.merged.Add(&s.stats)
	}
	return &e.merged
}

// shardIndex spreads query ids across n shards with a multiplicative
// hash, so clustered id patterns (all-even ids, striding registrants)
// still balance. It is a pure function of (id, n): the merged view
// reader resolves a query to its owning shard with it, without touching
// the coordinator's assignment map.
func shardIndex(id model.QueryID, n int) int {
	return Placement(id, n)
}

// Placement is the cluster-wide query placement function: it maps a
// query id to one of n partitions with the same multiplicative hash the
// sharded engine uses internally, so a multi-node deployment and the
// in-process sharded engine agree on ownership by construction. It is a
// pure function of (id, n).
func Placement(id model.QueryID, n int) int {
	return int((uint64(id) * 0x9e3779b97f4a7c15 >> 32) % uint64(n))
}

func (e *Engine) shardFor(id model.QueryID) int { return shardIndex(id, len(e.shards)) }

// mergedViews is the sharded engine's wait-free read handle: the
// per-shard view sets, merged lazily at read time. No cross-shard
// barrier or copy happens at publication — each shard publishes its own
// queries, and a read resolves the owning shard by hash and loads that
// shard's slot.
type mergedViews struct {
	shards []*shardState
}

// Result implements core.ViewReader.
func (v *mergedViews) Result(id model.QueryID) (*topk.Frozen, bool) {
	return v.shards[shardIndex(id, len(v.shards))].m.Views().Result(id)
}

// Each implements core.ViewReader.
func (v *mergedViews) Each(fn func(id model.QueryID, top *topk.Frozen)) {
	for _, s := range v.shards {
		s.m.Views().Each(fn)
	}
}

// PublishViews implements core.ViewPublisher. The workers already froze
// their shards' changed results during the last fan-out (WarmViews), so
// this is S short pointer-swap passes on the coordinator. Must be
// called while the engine is quiescent (no fan-out in flight).
func (e *Engine) PublishViews() core.ViewReader {
	for _, s := range e.shards {
		s.m.Publish()
	}
	return e.views
}

// Register implements core.Engine: the query is routed to its shard by
// the assignment hash — a pure function of the id, so there is no
// coordinator-side assignment map to grow with the query population —
// and its initial top-k search runs there (inline — registration is
// not a stream event and needs no fan-out).
func (e *Engine) Register(q *model.Query) error {
	if err := e.shards[e.shardFor(q.ID)].m.Register(q); err != nil {
		return err
	}
	e.total++
	return nil
}

// Unregister implements core.Engine.
func (e *Engine) Unregister(id model.QueryID) bool {
	if !e.shards[e.shardFor(id)].m.Unregister(id) {
		return false
	}
	e.total--
	return true
}

// Result implements core.Engine.
func (e *Engine) Result(id model.QueryID) ([]model.ScoredDoc, bool) {
	return e.shards[e.shardFor(id)].m.Result(id)
}

// Process implements core.Engine: phase 1 mutates the index on the
// caller's goroutine, phase 2 fans the per-query maintenance out across
// the shards, then the window policy expires documents the same way.
func (e *Engine) Process(d *model.Document) error {
	if err := e.index.Insert(d); err != nil {
		return err
	}
	e.coord.Arrivals++
	e.coord.IndexInserts += uint64(len(d.Postings))
	e.fanOut(event{arrival: true, doc: d})
	e.expireWhile(d.Arrival)
	return nil
}

// ProcessBatch processes a batch of arrivals in order, with their
// interleaved expirations, exactly as a loop over Process would — one
// fan-out barrier per event, each event's maintenance seeing the exact
// per-event index state of the single-threaded algorithm. It is the
// strict event-serial batch entry; ProcessEpoch is the amortized one.
// On error, documents before the failing one remain processed.
func (e *Engine) ProcessBatch(docs []*model.Document) error {
	for _, d := range docs {
		if err := e.Process(d); err != nil {
			return err
		}
	}
	return nil
}

// ProcessEpoch implements core.EpochProcessor: the whole batch is one
// epoch, processed with a single two-phase barrier instead of one per
// event. Phase 1 stages every index mutation on the caller's goroutine
// (one ApplyBatch pass: insert the surviving arrivals, pop everything
// the window policy expires, net per-term list edits); phase 2 fans the
// epoch out once, each shard running its net per-query maintenance
// (core.Maintainer.HandleEpoch) against the quiescent epoch-end index.
// Results at the epoch boundary are identical to ProcessBatch; the
// per-event synchronization cost — the dominant scaling limit of the
// per-event pipeline — is paid once per epoch. Arrival times must be
// non-decreasing within the batch.
func (e *Engine) ProcessEpoch(docs []*model.Document) error {
	if len(docs) == 0 {
		return nil
	}
	if len(docs) == 1 {
		return e.Process(docs[0])
	}
	now := docs[len(docs)-1].Arrival
	res, err := e.index.ApplyBatch(docs, func(oldest *model.Document, count int) bool {
		return e.policy.Expired(oldest.Arrival, now, count)
	})
	if err != nil {
		return err
	}
	e.coord.Epochs++
	e.coord.Arrivals += uint64(len(docs))
	e.coord.Expirations += uint64(len(res.Expired) + res.Dropped)
	e.coord.IndexInserts += uint64(res.Inserts)
	e.coord.IndexDeletes += uint64(res.Deletes)
	if arrived := docs[res.Dropped:]; len(arrived) > 0 || len(res.Expired) > 0 {
		e.fanOut(event{arrived: arrived, expired: res.Expired})
	}
	return nil
}

// ExpireUntil implements core.Engine.
func (e *Engine) ExpireUntil(now time.Time) { e.expireWhile(now) }

func (e *Engine) expireWhile(now time.Time) {
	for {
		oldest := e.index.Oldest()
		if oldest == nil || !e.policy.Expired(oldest.Arrival, now, e.index.Len()) {
			return
		}
		d := e.index.RemoveOldest()
		e.coord.Expirations++
		e.coord.IndexDeletes += uint64(len(d.Postings))
		e.fanOut(event{arrival: false, doc: d})
	}
}

// fanOut runs one event's per-query maintenance on every shard that
// owns at least one query and waits for all of them. The index is
// quiescent for the duration: the coordinator blocks here and only it
// may mutate the index.
func (e *Engine) fanOut(ev event) {
	if e.total == 0 {
		return
	}
	if len(e.shards) == 1 {
		e.shards[0].handle(ev)
		return
	}
	active := 0
	for _, s := range e.shards {
		if s.m.Len() > 0 {
			active++
		}
	}
	e.pending.Add(active)
	for _, s := range e.shards {
		if s.m.Len() > 0 {
			s.ch <- ev
		}
	}
	e.pending.Wait()
}

// ExportQueryState implements core.StateSnapshotter.
func (e *Engine) ExportQueryState(id model.QueryID) (core.QueryState, bool) {
	return e.shards[e.shardFor(id)].m.ExportState(id)
}

// RestoreWindow implements core.StateSnapshotter: documents enter the
// shared index with no fan-out and no counter movement.
func (e *Engine) RestoreWindow(docs []*model.Document) error {
	for _, d := range docs {
		if err := e.index.Insert(d); err != nil {
			return err
		}
	}
	return nil
}

// RestoreQueryState implements core.StateSnapshotter: the query lands
// on the shard the assignment hash dictates (so a restored engine
// shards identically to one that registered the query live) with its
// exported thresholds and result list installed verbatim.
func (e *Engine) RestoreQueryState(q *model.Query, st core.QueryState) error {
	if err := e.shards[e.shardFor(q.ID)].m.RestoreQuery(q, st); err != nil {
		return err
	}
	e.total++
	return nil
}

// SetStats implements core.StateSnapshotter. The sharded engine only
// ever exposes the merged block, so the restored total lands on the
// coordinator and the per-shard blocks restart from zero; later
// maintenance increments distribute across shards exactly as they would
// have on an engine that never restarted, keeping the merged view
// byte-identical.
func (e *Engine) SetStats(s core.Stats) {
	e.coord = s
	for _, sh := range e.shards {
		sh.stats = core.Stats{}
	}
}

// CheckInvariants verifies every shard's maintenance invariants plus the
// coordinator's live-query count and the hash placement of every owned
// query. Test/debug only.
func (e *Engine) CheckInvariants() error {
	owned := 0
	for si, s := range e.shards {
		owned += s.m.Len()
		if err := s.m.CheckInvariants(); err != nil {
			return err
		}
		var placeErr error
		s.m.EachQuery(func(q *model.Query) {
			if want := e.shardFor(q.ID); want != si && placeErr == nil {
				placeErr = fmt.Errorf("shard: query %d owned by shard %d, hash places it on %d", q.ID, si, want)
			}
		})
		if placeErr != nil {
			return placeErr
		}
	}
	if owned != e.total {
		return fmt.Errorf("shard: shards own %d queries, coordinator counts %d", owned, e.total)
	}
	return nil
}
