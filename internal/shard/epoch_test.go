package shard

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/window"
)

// contDoc builds a document with continuous random weights so exact
// score ties — the only source of legitimate result divergence between
// maintenance schedules — cannot occur, making byte-identical
// comparison well-defined.
func contDoc(t *testing.T, rng *rand.Rand, id model.DocID, seq, vocab int) *model.Document {
	t.Helper()
	n := 1 + rng.Intn(5)
	used := map[model.TermID]bool{}
	var ps []model.Posting
	for len(ps) < n {
		term := model.TermID(rng.Intn(vocab))
		if used[term] {
			continue
		}
		used[term] = true
		ps = append(ps, model.Posting{Term: term, Weight: 0.05 + 0.95*rng.Float64()})
	}
	d, err := model.NewDocument(id, time.Unix(0, 0).Add(time.Duration(seq)*5*time.Millisecond), ps)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func contQuery(t *testing.T, rng *rand.Rand, id model.QueryID, vocab int) *model.Query {
	t.Helper()
	n := 1 + rng.Intn(4)
	used := map[model.TermID]bool{}
	var ts []model.QueryTerm
	for len(ts) < n {
		term := model.TermID(rng.Intn(vocab))
		if used[term] {
			continue
		}
		used[term] = true
		ts = append(ts, model.QueryTerm{Term: term, Weight: 0.1 + 0.9*rng.Float64()})
	}
	q, err := model.NewQuery(id, 1+rng.Intn(5), ts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestEpochGridMatchesSerialITA is the epoch pipeline's equivalence
// suite: every combination of epoch size B and shard count S is driven
// through an identical tie-free stream — epochs mixing arrivals and
// expirations, plus epochs larger than the window so documents arrive
// and expire within one batch — and must return byte-identical
// per-query results to the event-serial single-threaded ITA at every
// epoch boundary. Run under -race (CI does), this also exercises the
// epoch fan-out's synchronization.
func TestEpochGridMatchesSerialITA(t *testing.T) {
	const (
		vocab   = 20
		queries = 24
		total   = 384
	)
	for _, win := range []int{12, 48} {
		for _, batch := range []int{1, 4, 64} {
			for _, shards := range []int{1, 2, 8} {
				win, batch, shards := win, batch, shards
				t.Run(fmt.Sprintf("w%d_b%d_s%d", win, batch, shards), func(t *testing.T) {
					pol := window.Count{N: win}
					serial := core.NewITA(pol)
					epoch := New(pol, shards)
					defer epoch.Close()

					rng := rand.New(rand.NewSource(int64(win*1000 + batch*10 + shards)))
					var qids []model.QueryID
					for i := 0; i < queries; i++ {
						id := model.QueryID(i + 1)
						q := contQuery(t, rng, id, vocab)
						if err := serial.Register(q); err != nil {
							t.Fatal(err)
						}
						if err := epoch.Register(q); err != nil {
							t.Fatal(err)
						}
						qids = append(qids, id)
					}

					nextID, seq := model.DocID(1), 0
					for done := 0; done < total; {
						n := batch
						if rem := total - done; n > rem {
							n = rem
						}
						docs := make([]*model.Document, n)
						for i := range docs {
							docs[i] = contDoc(t, rng, nextID, seq, vocab)
							nextID++
							seq++
						}
						for _, d := range docs {
							if err := serial.Process(d); err != nil {
								t.Fatal(err)
							}
						}
						if err := epoch.ProcessEpoch(docs); err != nil {
							t.Fatal(err)
						}
						done += n

						if err := epoch.CheckInvariants(); err != nil {
							t.Fatalf("after %d docs: %v", done, err)
						}
						if got, want := epoch.WindowLen(), serial.WindowLen(); got != want {
							t.Fatalf("after %d docs: window %d, serial %d", done, got, want)
						}
						for _, id := range qids {
							got, ok := epoch.Result(id)
							want, ok2 := serial.Result(id)
							if ok != ok2 {
								t.Fatalf("query %d: known=%v, serial %v", id, ok, ok2)
							}
							if len(got) != len(want) {
								t.Fatalf("after %d docs query %d: %d results, serial %d\n got %v\nwant %v",
									done, id, len(got), len(want), got, want)
							}
							for i := range got {
								if got[i] != want[i] {
									t.Fatalf("after %d docs query %d position %d: %+v, serial %+v\n got %v\nwant %v",
										done, id, i, got[i], want[i], got, want)
								}
							}
						}
					}
					// Sanity: multi-document epochs actually took the
					// batched path.
					if batch > 1 && epoch.Stats().Epochs == 0 {
						t.Fatal("no epochs recorded despite batch > 1")
					}
				})
			}
		}
	}
}

// TestEpochUnregisterBetweenEpochs checks query churn interleaved with
// epoch processing: registration and removal are epoch-boundary
// operations and must keep the shard assignment consistent.
func TestEpochUnregisterBetweenEpochs(t *testing.T) {
	pol := window.Count{N: 16}
	e := New(pol, 4)
	defer e.Close()
	serial := core.NewITA(pol)

	rng := rand.New(rand.NewSource(99))
	nextQ := model.QueryID(1)
	register := func() model.QueryID {
		id := nextQ
		nextQ++
		q := contQuery(t, rng, id, 15)
		if err := e.Register(q); err != nil {
			t.Fatal(err)
		}
		q2 := *q
		if err := serial.Register(&q2); err != nil {
			t.Fatal(err)
		}
		return id
	}
	live := []model.QueryID{register(), register(), register()}

	nextID, seq := model.DocID(1), 0
	for round := 0; round < 20; round++ {
		docs := make([]*model.Document, 8)
		for i := range docs {
			docs[i] = contDoc(t, rng, nextID, seq, 15)
			nextID++
			seq++
		}
		for _, d := range docs {
			if err := serial.Process(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
		switch round % 3 {
		case 0:
			live = append(live, register())
		case 1:
			victim := live[rng.Intn(len(live))]
			if e.Unregister(victim) != serial.Unregister(victim) {
				t.Fatalf("unregister(%d) diverged", victim)
			}
			for i, id := range live {
				if id == victim {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, id := range live {
			got, _ := e.Result(id)
			want, _ := serial.Result(id)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("round %d query %d:\n got %v\nwant %v", round, id, got, want)
			}
		}
	}
}
