package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleRecords covers every kind with non-trivial field values.
func sampleRecords() []Record {
	return []Record{
		{Kind: KindRegister, Query: 1, K: 3, Text: "crude oil market"},
		{Kind: KindDoc, Doc: 1, At: 1000, Text: "oil tanker leaves port"},
		{Kind: KindEpoch, Seq: 1},
		{Kind: KindBatch, Doc: 2, Items: []DocEntry{
			{At: 2000, Text: "solar grid storage"},
			{At: 3000, Text: ""},
			{At: -5, Text: "pre-epoch arrival"},
		}},
		{Kind: KindEpoch, Seq: 2},
		{Kind: KindFlush},
		{Kind: KindAdvance, At: 9_000_000},
		{Kind: KindEpoch, Seq: 3},
		{Kind: KindUnregister, Query: 1},
		{Kind: KindEpoch, Seq: 4},
	}
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for i := range recs {
		buf = appendFrame(buf, &recs[i])
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(recs)
	res := Scan(data)
	if res.Torn {
		t.Fatalf("clean stream reported torn")
	}
	if res.Clean != int64(len(data)) {
		t.Fatalf("clean offset %d, want %d", res.Clean, len(data))
	}
	if !reflect.DeepEqual(res.Records, recs) {
		t.Fatalf("decoded records differ:\n got %+v\nwant %+v", res.Records, recs)
	}
	for i, end := range res.Ends {
		if i > 0 && end <= res.Ends[i-1] {
			t.Fatalf("record ends not increasing: %v", res.Ends)
		}
	}
}

// TestScanTornTail truncates the encoded stream at every byte offset
// and asserts the scan always returns the longest complete record
// prefix — the crash model's prefix-consistency guarantee at the codec
// level.
func TestScanTornTail(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(recs)
	full := Scan(data)
	for n := 0; n <= len(data); n++ {
		res := Scan(data[:n])
		want := 0
		for want < len(full.Ends) && full.Ends[want] <= int64(n) {
			want++
		}
		if len(res.Records) != want {
			t.Fatalf("prefix %d: decoded %d records, want %d", n, len(res.Records), want)
		}
		if want > 0 && res.Clean != full.Ends[want-1] {
			t.Fatalf("prefix %d: clean %d, want %d", n, res.Clean, full.Ends[want-1])
		}
		if res.Torn != (int(res.Clean) != n) {
			t.Fatalf("prefix %d: torn=%v clean=%d", n, res.Torn, res.Clean)
		}
	}
}

// TestScanCorruption flips each byte of the stream in turn; the scan
// must stop at or before the corrupted record, never panic, and the
// surviving records must be an exact prefix of the originals.
func TestScanCorruption(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(recs)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		res := Scan(mut)
		for j, rec := range res.Records {
			// A flipped byte can only ever truncate the stream: any
			// surviving decoded record must equal the original at its
			// position (CRC-32C catches all single-byte corruption).
			if !reflect.DeepEqual(rec, recs[j]) {
				t.Fatalf("corrupt byte %d: record %d mutated to %+v", i, j, rec)
			}
		}
	}
}

func TestScanGarbageLength(t *testing.T) {
	var data []byte
	data = append(data, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0) // absurd length
	res := Scan(data)
	if len(res.Records) != 0 || res.Clean != 0 || !res.Torn {
		t.Fatalf("garbage length accepted: %+v", res)
	}
}

func TestLogAppendOffsetsMatchScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(f, 0, DurabilityAlways)
	recs := sampleRecords()
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.Clean != l.Offset() {
		t.Fatalf("scan clean=%d torn=%v, log offset %d", res.Clean, res.Torn, l.Offset())
	}
	if !reflect.DeepEqual(res.Records, recs) {
		t.Fatalf("file round trip differs")
	}
}

// failAfterFile errors (optionally after a short write) once n bytes
// have been written. It is the package-level cousin of the engine
// crash-point tests' failingFile.
type failAfterFile struct {
	buf      bytes.Buffer
	n        int
	truncErr error
}

func (f *failAfterFile) Write(p []byte) (int, error) {
	room := f.n - f.buf.Len()
	if room <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) <= room {
		return f.buf.Write(p)
	}
	f.buf.Write(p[:room])
	return room, errors.New("disk full")
}
func (f *failAfterFile) Close() error { return nil }
func (f *failAfterFile) Sync() error  { return nil }
func (f *failAfterFile) Truncate(size int64) error {
	if f.truncErr != nil {
		return f.truncErr
	}
	f.buf.Truncate(int(size))
	return nil
}

// TestAppendFailureKeepsCleanBoundary sweeps the write-failure point
// across a record stream: after any failed append, the bytes on "disk"
// must scan to exactly the records appended before the failure.
func TestAppendFailureKeepsCleanBoundary(t *testing.T) {
	recs := sampleRecords()
	total := len(encodeAll(recs))
	for n := 0; n < total; n++ {
		f := &failAfterFile{n: n}
		l := NewLog(f, 0, DurabilityOff)
		appended := 0
		for i := range recs {
			if err := l.Append(&recs[i]); err != nil {
				break
			}
			appended++
		}
		if appended == len(recs) {
			t.Fatalf("fail point %d: no append failed", n)
		}
		res := Scan(f.buf.Bytes())
		if res.Torn || len(res.Records) != appended {
			t.Fatalf("fail point %d: %d records on disk (torn=%v), %d acked",
				n, len(res.Records), res.Torn, appended)
		}
		if res.Clean != l.Offset() {
			t.Fatalf("fail point %d: clean %d, log offset %d", n, res.Clean, l.Offset())
		}
	}
}

// TestAppendFailurePoisonsOnTruncateError: when the truncate-back also
// fails the log must refuse every further operation rather than build
// on a torn tail.
func TestAppendFailurePoisonsOnTruncateError(t *testing.T) {
	f := &failAfterFile{n: 5, truncErr: errors.New("io error")}
	l := NewLog(f, 0, DurabilityOff)
	rec := Record{Kind: KindDoc, Doc: 1, Text: "a document long enough to split"}
	if err := l.Append(&rec); err == nil {
		t.Fatal("append succeeded past the fail point")
	}
	if err := l.Append(&Record{Kind: KindFlush}); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("poisoned log accepted a sync")
	}
}

func TestDirScanAndGC(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"checkpoint-0.ckpt", "checkpoint-12.ckpt", "checkpoint-12.tmp",
		"wal-0.log", "wal-12.log", "garbage.txt", "checkpoint-x.ckpt",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Checkpoints, []uint64{0, 12}) {
		t.Fatalf("checkpoints %v", st.Checkpoints)
	}
	if !reflect.DeepEqual(st.Segments, []uint64{0, 12}) {
		t.Fatalf("segments %v", st.Segments)
	}
	if len(st.Tmp) != 1 || filepath.Base(st.Tmp[0]) != "checkpoint-12.tmp" {
		t.Fatalf("tmp %v", st.Tmp)
	}
	if len(st.Foreign) != 2 {
		t.Fatalf("foreign %v", st.Foreign)
	}
	latest, ok := st.Latest()
	if !ok || latest != 12 {
		t.Fatalf("latest = %d, %v", latest, ok)
	}
	GC(dir, st, 12)
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range left {
		names = append(names, e.Name())
	}
	// The engine's own stale files are gone; foreign files survive — a
	// user pointing -wal at a shared directory must never lose data.
	want := []string{"checkpoint-12.ckpt", "checkpoint-x.ckpt", "garbage.txt", "wal-12.log"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after GC: %v, want %v", names, want)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	f := &failAfterFile{n: 1 << 30}
	l := NewLog(f, 0, DurabilityOff)
	huge := Record{Kind: KindDoc, Doc: 1, Text: string(make([]byte, maxPayload+1))}
	if err := l.Append(&huge); err == nil {
		t.Fatal("oversized record accepted")
	}
	if f.buf.Len() != 0 {
		t.Fatalf("oversized record leaked %d bytes to the file", f.buf.Len())
	}
	if err := l.Append(&Record{Kind: KindFlush}); err != nil {
		t.Fatalf("log unusable after rejecting oversized record: %v", err)
	}
}

func TestPoison(t *testing.T) {
	f := &failAfterFile{n: 1 << 20}
	l := NewLog(f, 0, DurabilityOff)
	if err := l.Append(&Record{Kind: KindFlush}); err != nil {
		t.Fatal(err)
	}
	poison := errors.New("rotation failed")
	l.Poison(poison)
	if err := l.Append(&Record{Kind: KindFlush}); !errors.Is(err, poison) {
		t.Fatalf("append after poison: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, poison) {
		t.Fatalf("sync after poison: %v", err)
	}
}
