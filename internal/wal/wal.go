// Package wal implements the engine's write-ahead log: an append-only
// sequence of length-prefixed, CRC-framed records describing every
// mutating facade operation, plus epoch-boundary markers that double as
// the durability acknowledgment points.
//
// # Frame format
//
// Every record is one frame:
//
//	[4 bytes little-endian payload length]
//	[4 bytes little-endian CRC-32C of the payload]
//	[payload]
//
// The payload encodes the record fields with varints (see record.go).
// A frame is valid only when it is complete and its CRC matches; the
// decoder treats the first invalid frame as the end of the log (the
// torn tail a crash can leave behind) and reports the clean byte
// offset, so recovery can truncate and resume appending there. Under
// the crash fault model — writes stop at an arbitrary byte — this
// yields prefix consistency: the recovered log is always an exact
// prefix of the written record sequence.
//
// # Durability
//
// The Log itself never buffers (every Append is one write syscall), so
// the only volatile state is the OS page cache. The Durability policy
// says when that is flushed: Always fsyncs inside every Append,
// EpochSync leaves syncing to the caller (the engine syncs at epoch
// markers), Off never syncs and rides on the OS writeback.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Durability selects the fsync policy of a Log.
type Durability int

const (
	// DurabilityOff never fsyncs: a process crash loses nothing (the
	// page cache survives), an OS crash can lose the unflushed tail.
	DurabilityOff Durability = iota
	// DurabilityEpochSync fsyncs at every epoch boundary marker: an
	// acknowledged epoch survives any crash, documents of a partial
	// epoch may be replayed from an earlier prefix.
	DurabilityEpochSync
	// DurabilityAlways fsyncs after every record: every acknowledged
	// operation survives any crash, at one fsync per operation.
	DurabilityAlways
)

// String implements fmt.Stringer.
func (d Durability) String() string {
	switch d {
	case DurabilityOff:
		return "off"
	case DurabilityEpochSync:
		return "epoch"
	case DurabilityAlways:
		return "always"
	default:
		return fmt.Sprintf("durability(%d)", int(d))
	}
}

// File is the subset of *os.File the log needs. Tests substitute
// failure-injecting implementations to exercise every crash point.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8 // length + CRC
	// maxPayload bounds a single record so a corrupt length prefix
	// cannot force a giant allocation. A batch of documents is the
	// largest record; 64 MiB is far beyond any real epoch.
	maxPayload = 64 << 20
)

// Log is an append-only record writer over one segment file. It is not
// safe for concurrent use; the engine serializes appends under its
// mutex.
type Log struct {
	f       File
	off     int64 // bytes successfully written
	mode    Durability
	scratch []byte
	broken  error // sticky: set when the file can no longer be trusted
}

// NewLog returns a log appending to f, which must be positioned at
// offset off (the clean end of the existing records).
func NewLog(f File, off int64, mode Durability) *Log {
	return &Log{f: f, off: off, mode: mode}
}

// Offset returns the byte offset of the clean end of the log: every
// record appended so far ends exactly there.
func (l *Log) Offset() int64 { return l.off }

// Mode returns the log's durability policy.
func (l *Log) Mode() Durability { return l.mode }

// Append frames and writes one record, fsyncing when the policy is
// DurabilityAlways. On a write error it attempts to truncate the file
// back to the last clean record boundary; if even that fails the log is
// poisoned and every later call returns the original error — the engine
// must not keep mutating state it can no longer make durable.
func (l *Log) Append(rec *Record) error {
	if l.broken != nil {
		return l.broken
	}
	if l.f == nil {
		return fmt.Errorf("wal: append to closed log")
	}
	l.scratch = appendFrame(l.scratch[:0], rec)
	if payload := len(l.scratch) - frameHeader; payload > maxPayload {
		// Scan refuses frames past maxPayload, so writing one would be
		// acknowledged as durable yet unrecoverable. Reject it before a
		// byte reaches the file.
		return fmt.Errorf("wal: record payload %d bytes exceeds the %d byte limit", payload, maxPayload)
	}
	n, err := l.f.Write(l.scratch)
	if err != nil {
		if n > 0 {
			// A partial frame reached the file; cut it back so the
			// on-disk tail stays a clean record boundary.
			if terr := l.f.Truncate(l.off); terr != nil {
				l.broken = fmt.Errorf("wal: append failed (%v) and truncate failed (%v): log unusable", err, terr)
				return l.broken
			}
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(n)
	if l.mode == DurabilityAlways {
		return l.Sync()
	}
	return nil
}

// AppendRaw appends pre-framed bytes: whole frames exactly as another
// log encoded them. The replication follower uses it to byte-mirror
// the primary's segment — the shipped bytes land verbatim, so the
// follower's segment file is bit-identical to the primary's prefix and
// the CRC framing keeps guarding the copy. The caller must pass only
// complete frames (Scan(frames).Clean == len(frames)); partial-write
// rollback matches Append.
func (l *Log) AppendRaw(frames []byte) error {
	if l.broken != nil {
		return l.broken
	}
	if l.f == nil {
		return fmt.Errorf("wal: append to closed log")
	}
	n, err := l.f.Write(frames)
	if err != nil {
		if n > 0 {
			if terr := l.f.Truncate(l.off); terr != nil {
				l.broken = fmt.Errorf("wal: raw append failed (%v) and truncate failed (%v): log unusable", err, terr)
				return l.broken
			}
		}
		return fmt.Errorf("wal: raw append: %w", err)
	}
	l.off += int64(n)
	if l.mode == DurabilityAlways {
		return l.Sync()
	}
	return nil
}

// Poison permanently disables the log: every later Append and Sync
// returns err. The engine uses it when the file layout can no longer
// honor durability (a failed segment rotation would otherwise leave
// appends landing in a segment recovery ignores).
func (l *Log) Poison(err error) {
	if l.broken == nil {
		l.broken = err
	}
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	if l.broken != nil {
		return l.broken
	}
	if l.f == nil {
		return nil // closed: nothing volatile remains
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close closes the underlying file without syncing (the engine syncs
// first when the policy requires it).
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// appendFrame appends the framed encoding of rec to dst.
func appendFrame(dst []byte, rec *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = appendPayload(dst, rec)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// ScanResult is the outcome of decoding a segment: the records of the
// longest valid prefix and the byte offset where that prefix ends.
type ScanResult struct {
	// Records is every fully decoded record, in append order.
	Records []Record
	// Ends[i] is the byte offset one past the frame of Records[i]; the
	// crash-point tests use it to map byte prefixes to record prefixes.
	Ends []int64
	// Clean is the offset of the first byte past the last valid frame.
	// Anything after it is a torn or corrupt tail that recovery
	// truncates.
	Clean int64
	// Torn reports whether trailing bytes after Clean were discarded.
	Torn bool
}

// Scan decodes data as a record stream. It never fails: an invalid
// frame (short header, oversized or truncated length, CRC mismatch,
// undecodable payload) ends the scan at the last clean boundary, which
// is exactly the recovery semantics for a crash-torn tail.
func Scan(data []byte) ScanResult {
	var res ScanResult
	off := int64(0)
	for int(off)+frameHeader <= len(data) {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxPayload || int(off)+frameHeader+int(n) > len(data) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+int64(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		rec, ok := decodePayload(payload)
		if !ok {
			break
		}
		off += frameHeader + int64(n)
		res.Records = append(res.Records, rec)
		res.Ends = append(res.Ends, off)
	}
	res.Clean = off
	res.Torn = int(off) != len(data)
	return res
}

// ScanFile reads and scans a whole segment file.
func ScanFile(path string) (ScanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScanResult{}, err
	}
	return Scan(data), nil
}
