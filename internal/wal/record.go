package wal

import "encoding/binary"

// Kind enumerates the logged operation types. Values are part of the
// on-disk format; never renumber.
type Kind uint8

const (
	// KindRegister is a query registration: Query (the id the facade
	// will assign), K and Text.
	KindRegister Kind = 1
	// KindUnregister removes query Query.
	KindUnregister Kind = 2
	// KindDoc is one IngestText call: Doc (the assigned id), At and
	// Text.
	KindDoc Kind = 3
	// KindBatch is one IngestBatch call: Doc (the first assigned id)
	// and Items.
	KindBatch Kind = 4
	// KindAdvance moves the stream clock to At without an arrival.
	KindAdvance Kind = 5
	// KindFlush is an explicit epoch flush of the buffered documents —
	// the one boundary that is not derivable from the other records.
	KindFlush Kind = 6
	// KindEpoch marks a completed publication boundary carrying the
	// engine's epoch sequence number. It bears no state: replay derives
	// every boundary from the operation records and uses markers as
	// integrity checks and (under DurabilityEpochSync) fsync points.
	KindEpoch Kind = 7
	// KindAlign is a cluster node's non-owning side of a registration:
	// Query (the id consumed, owned by another node) and Text (analyzed
	// for dictionary alignment, but not registered).
	KindAlign Kind = 8
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindUnregister:
		return "unregister"
	case KindDoc:
		return "doc"
	case KindBatch:
		return "batch"
	case KindAdvance:
		return "advance"
	case KindFlush:
		return "flush"
	case KindEpoch:
		return "epoch"
	case KindAlign:
		return "align"
	default:
		return "invalid"
	}
}

// StateBearing reports whether replaying the record mutates engine
// state. Epoch markers are pure bookkeeping; everything else is an
// operation.
func (k Kind) StateBearing() bool { return k != KindEpoch }

// DocEntry is one document of a KindBatch record.
type DocEntry struct {
	At   int64 // arrival, Unix nanoseconds
	Text string
}

// Record is one logged operation. Field use by kind is documented on
// the Kind constants; unused fields are zero.
type Record struct {
	Kind  Kind
	Query uint64     // KindRegister, KindUnregister, KindAlign
	K     int        // KindRegister
	Doc   uint64     // KindDoc, KindBatch (first id of the batch)
	At    int64      // KindDoc, KindAdvance: Unix nanoseconds
	Seq   uint64     // KindEpoch
	Text  string     // KindRegister, KindDoc, KindAlign
	Items []DocEntry // KindBatch
}

// appendPayload appends the varint encoding of rec to dst. The layout
// per kind mirrors the Record field documentation; strings are
// length-prefixed.
func appendPayload(dst []byte, rec *Record) []byte {
	dst = append(dst, byte(rec.Kind))
	switch rec.Kind {
	case KindRegister:
		dst = binary.AppendUvarint(dst, rec.Query)
		dst = binary.AppendUvarint(dst, uint64(rec.K))
		dst = appendString(dst, rec.Text)
	case KindUnregister:
		dst = binary.AppendUvarint(dst, rec.Query)
	case KindDoc:
		dst = binary.AppendUvarint(dst, rec.Doc)
		dst = binary.AppendVarint(dst, rec.At)
		dst = appendString(dst, rec.Text)
	case KindBatch:
		dst = binary.AppendUvarint(dst, rec.Doc)
		dst = binary.AppendUvarint(dst, uint64(len(rec.Items)))
		for _, it := range rec.Items {
			dst = binary.AppendVarint(dst, it.At)
			dst = appendString(dst, it.Text)
		}
	case KindAdvance:
		dst = binary.AppendVarint(dst, rec.At)
	case KindFlush:
	case KindEpoch:
		dst = binary.AppendUvarint(dst, rec.Seq)
	case KindAlign:
		dst = binary.AppendUvarint(dst, rec.Query)
		dst = appendString(dst, rec.Text)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodePayload decodes one record payload. It is total: any input
// either decodes fully (ok=true, every byte consumed) or is rejected,
// never panics — the fuzz target FuzzWALDecode holds it to that.
func decodePayload(p []byte) (Record, bool) {
	var rec Record
	if len(p) == 0 {
		return rec, false
	}
	rec.Kind = Kind(p[0])
	d := decoder{p: p[1:]}
	switch rec.Kind {
	case KindRegister:
		rec.Query = d.uvarint()
		rec.K = int(d.uvarint())
		rec.Text = d.str()
	case KindUnregister:
		rec.Query = d.uvarint()
	case KindDoc:
		rec.Doc = d.uvarint()
		rec.At = d.varint()
		rec.Text = d.str()
	case KindBatch:
		rec.Doc = d.uvarint()
		n := d.uvarint()
		if d.bad || n > uint64(len(d.p)) {
			return rec, false
		}
		rec.Items = make([]DocEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			at := d.varint()
			text := d.str()
			rec.Items = append(rec.Items, DocEntry{At: at, Text: text})
		}
	case KindAdvance:
		rec.At = d.varint()
	case KindFlush:
	case KindEpoch:
		rec.Seq = d.uvarint()
	case KindAlign:
		rec.Query = d.uvarint()
		rec.Text = d.str()
	default:
		return rec, false
	}
	if d.bad || len(d.p) != 0 {
		return rec, false
	}
	return rec, true
}

// decoder is a cursor over a payload with sticky failure.
type decoder struct {
	p   []byte
	bad bool
}

func (d *decoder) uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.bad {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.bad || n > uint64(len(d.p)) {
		d.bad = true
		return ""
	}
	s := string(d.p[:n])
	d.p = d.p[n:]
	return s
}
