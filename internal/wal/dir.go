package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File layout of a durable engine directory. Every checkpoint and
// segment is named by the epoch sequence number it starts from:
//
//	checkpoint-<seq>.ckpt   engine snapshot at epoch boundary <seq>
//	checkpoint-<seq>.tmp    checkpoint being written (ignored, GC'd)
//	wal-<seq>.log           records after boundary <seq>
//
// Steady state is one checkpoint plus one segment. A crash between
// checkpoint phases can leave a superset (older checkpoint, older
// segment, a tmp file); recovery always loads the highest-numbered
// complete checkpoint, replays the segment with the same number, and
// garbage-collects everything else.

// CheckpointPath returns the checkpoint filename for boundary seq.
func CheckpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%d.ckpt", seq))
}

// CheckpointTmpPath returns the in-progress checkpoint filename.
func CheckpointTmpPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%d.tmp", seq))
}

// SegmentPath returns the segment filename for records after boundary
// seq.
func SegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", seq))
}

// DirState is what a scan of a durable engine directory found.
type DirState struct {
	// Checkpoints holds the boundary numbers of complete checkpoint
	// files, ascending.
	Checkpoints []uint64
	// Segments holds the boundary numbers of segment files, ascending.
	Segments []uint64
	// Tmp holds paths of interrupted checkpoint temporaries
	// (checkpoint-*.tmp); GC deletes them.
	Tmp []string
	// Foreign holds paths this package does not recognize at all. They
	// are never touched: a user pointing the engine at a non-dedicated
	// directory must not have unrelated files deleted.
	Foreign []string
}

// Latest returns the highest complete checkpoint boundary, or false
// when the directory has none (a fresh or foreign directory).
func (s DirState) Latest() (uint64, bool) {
	if len(s.Checkpoints) == 0 {
		return 0, false
	}
	return s.Checkpoints[len(s.Checkpoints)-1], true
}

// ScanDir inventories a durable engine directory. Unrecognized entries
// are reported as stray rather than errors, so a crash's leftovers (and
// nothing else) can be cleaned up.
func ScanDir(dir string) (DirState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return DirState{}, err
	}
	var st DirState
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			if seq, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok {
				st.Checkpoints = append(st.Checkpoints, seq)
				continue
			}
			st.Foreign = append(st.Foreign, filepath.Join(dir, name))
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".tmp"):
			if _, ok := parseSeq(name, "checkpoint-", ".tmp"); ok {
				st.Tmp = append(st.Tmp, filepath.Join(dir, name))
				continue
			}
			st.Foreign = append(st.Foreign, filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				st.Segments = append(st.Segments, seq)
				continue
			}
			st.Foreign = append(st.Foreign, filepath.Join(dir, name))
		default:
			st.Foreign = append(st.Foreign, filepath.Join(dir, name))
		}
	}
	sort.Slice(st.Checkpoints, func(i, j int) bool { return st.Checkpoints[i] < st.Checkpoints[j] })
	sort.Slice(st.Segments, func(i, j int) bool { return st.Segments[i] < st.Segments[j] })
	return st, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	return n, err == nil
}

// GC removes what a recovery at boundary keep no longer needs: older
// checkpoints, older segments and interrupted checkpoint temporaries.
// Foreign files are left strictly alone. Removal errors are ignored — a
// leftover file is re-collected on the next open, and recovery
// correctness never depends on deletion.
func GC(dir string, st DirState, keep uint64) {
	Retain(dir, st, keep, nil)
}

// Retain is GC generalized for replication: checkpoints other than
// keepCkpt and temporaries are collected exactly as GC does, but an
// older segment survives when keepSeg reports a registered follower
// still needs its records. A nil keepSeg retains nothing extra.
func Retain(dir string, st DirState, keepCkpt uint64, keepSeg func(seq uint64) bool) {
	for _, seq := range st.Checkpoints {
		if seq != keepCkpt {
			os.Remove(CheckpointPath(dir, seq))
		}
	}
	for _, seq := range st.Segments {
		if seq == keepCkpt || (keepSeg != nil && keepSeg(seq)) {
			continue
		}
		os.Remove(SegmentPath(dir, seq))
	}
	for _, p := range st.Tmp {
		os.Remove(p)
	}
}

// SyncDir fsyncs the directory so renames and creations inside it
// survive a crash. Filesystems that reject directory fsync (some
// network mounts) degrade gracefully: the error is ignored, matching
// the usual portability trade-off.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
