package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the frame and payload
// decoders. Invariants, regardless of input:
//
//   - Scan never panics and always terminates;
//   - the clean offset never exceeds the input length and every record
//     lies inside the clean prefix;
//   - re-encoding the decoded records reproduces the clean prefix
//     byte-for-byte (decode is the exact inverse of encode on valid
//     frames), so a second scan decodes the identical records.
//
// CI runs a 30s coverage-guided smoke (`-fuzz FuzzWALDecode`),
// mirroring the facade's FuzzOpSequence job; crashers land in
// testdata/fuzz as regression inputs.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(encodeAll(sampleRecords()))
	data := encodeAll(sampleRecords())
	f.Add(data[:len(data)-3])
	data = append([]byte(nil), data...)
	data[9] ^= 0xff
	f.Add(data)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		res := Scan(data)
		if res.Clean < 0 || res.Clean > int64(len(data)) {
			t.Fatalf("clean offset %d out of range [0, %d]", res.Clean, len(data))
		}
		if len(res.Records) != len(res.Ends) {
			t.Fatalf("%d records but %d ends", len(res.Records), len(res.Ends))
		}
		if n := len(res.Ends); n > 0 && res.Ends[n-1] != res.Clean {
			t.Fatalf("last record ends at %d, clean is %d", res.Ends[n-1], res.Clean)
		}
		var reenc []byte
		for i := range res.Records {
			reenc = appendFrame(reenc, &res.Records[i])
		}
		if !bytes.Equal(reenc, data[:res.Clean]) {
			t.Fatalf("re-encoding the clean prefix diverged (%d vs %d bytes)", len(reenc), res.Clean)
		}
	})
}
