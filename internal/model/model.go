// Package model defines the identifiers and value types shared by every
// layer of the continuous text search engine: documents, postings,
// queries and scored results.
//
// All types are plain values with no behaviour beyond validation and
// lookup helpers, so that the index, engine and harness layers can
// exchange them without depending on one another.
package model

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// DocID uniquely identifies a document for the lifetime of the stream.
// The stream driver assigns ids in arrival order, but the engine only
// requires uniqueness, not monotonicity.
type DocID uint64

// TermID identifies a dictionary term. Term ids are assigned by the
// textproc dictionary; the engine treats them as opaque.
type TermID uint32

// QueryID identifies a registered continuous query.
type QueryID uint64

// Posting is one entry of a document's composition list: the impact
// weight w_{d,t} of term t in document d.
type Posting struct {
	Term   TermID
	Weight float64
}

// Document is one element of the input stream. Postings holds the
// composition list sorted by ascending TermID with strictly positive
// weights and no duplicate terms; NewDocument enforces these invariants.
type Document struct {
	ID       DocID
	Arrival  time.Time
	Postings []Posting
}

// Validation errors returned by NewDocument and NewQuery.
var (
	ErrUnsortedPostings  = errors.New("model: postings not sorted by term id")
	ErrDuplicateTerm     = errors.New("model: duplicate term")
	ErrNonPositiveWeight = errors.New("model: non-positive weight")
	ErrNoTerms           = errors.New("model: no terms")
	ErrBadK              = errors.New("model: k must be positive")
)

// NewDocument validates and builds a Document. The postings slice is
// sorted in place by term id. A posting with zero or negative weight is
// rejected rather than silently dropped, because upstream weighting is
// expected to have removed non-occurring terms already.
func NewDocument(id DocID, arrival time.Time, postings []Posting) (*Document, error) {
	sort.Slice(postings, func(i, j int) bool { return postings[i].Term < postings[j].Term })
	for i, p := range postings {
		if p.Weight <= 0 {
			return nil, fmt.Errorf("%w: term %d weight %g in doc %d", ErrNonPositiveWeight, p.Term, p.Weight, id)
		}
		if i > 0 && postings[i-1].Term == p.Term {
			return nil, fmt.Errorf("%w: term %d in doc %d", ErrDuplicateTerm, p.Term, id)
		}
	}
	return &Document{ID: id, Arrival: arrival, Postings: postings}, nil
}

// Weight returns the impact weight of term t in the document, or
// (0, false) when the document does not contain t. It binary-searches
// the composition list, so it costs O(log len(Postings)).
func (d *Document) Weight(t TermID) (float64, bool) {
	i := sort.Search(len(d.Postings), func(i int) bool { return d.Postings[i].Term >= t })
	if i < len(d.Postings) && d.Postings[i].Term == t {
		return d.Postings[i].Weight, true
	}
	return 0, false
}

// Terms returns the number of distinct terms in the document.
func (d *Document) Terms() int { return len(d.Postings) }

// QueryTerm is one search term of a continuous query with its query-side
// weight w_{Q,t}.
type QueryTerm struct {
	Term   TermID
	Weight float64
}

// Query is a registered continuous text search query: a set of weighted
// terms and the requested result size K. Terms are sorted by ascending
// TermID with strictly positive weights and no duplicates; NewQuery
// enforces these invariants.
type Query struct {
	ID    QueryID
	K     int
	Terms []QueryTerm
}

// NewQuery validates and builds a Query. The terms slice is sorted in
// place by term id.
func NewQuery(id QueryID, k int, terms []QueryTerm) (*Query, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, k)
	}
	if len(terms) == 0 {
		return nil, ErrNoTerms
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	for i, t := range terms {
		if t.Weight <= 0 {
			return nil, fmt.Errorf("%w: term %d weight %g in query %d", ErrNonPositiveWeight, t.Term, t.Weight, id)
		}
		if i > 0 && terms[i-1].Term == t.Term {
			return nil, fmt.Errorf("%w: term %d in query %d", ErrDuplicateTerm, t.Term, id)
		}
	}
	return &Query{ID: id, K: k, Terms: terms}, nil
}

// Weight returns the query-side weight of term t, or (0, false) when the
// query does not contain t.
func (q *Query) Weight(t TermID) (float64, bool) {
	i := sort.Search(len(q.Terms), func(i int) bool { return q.Terms[i].Term >= t })
	if i < len(q.Terms) && q.Terms[i].Term == t {
		return q.Terms[i].Weight, true
	}
	return 0, false
}

// Score computes S(d|Q) = Σ_{t∈Q} w_{Q,t}·w_{d,t} by merge-joining the
// two term-sorted lists. It is the single definition of similarity used
// by every engine, the oracle and the tests.
func Score(q *Query, d *Document) float64 {
	var s float64
	i, j := 0, 0
	for i < len(q.Terms) && j < len(d.Postings) {
		qt, dp := q.Terms[i], d.Postings[j]
		switch {
		case qt.Term == dp.Term:
			s += qt.Weight * dp.Weight
			i++
			j++
		case qt.Term < dp.Term:
			i++
		default:
			j++
		}
	}
	return s
}

// Match is one result entry of a continuous query as served by the
// engine facade: the document, its score, and (when the engine retains
// texts) the original text.
type Match struct {
	Doc   DocID
	Score float64
	// Text is the document's original text when the engine was built
	// with text retention, empty otherwise.
	Text string
}

// QueryResult pairs a query with its current top-k.
type QueryResult struct {
	Query   QueryID
	Matches []Match
}

// TimedText is one element of a batched ingest call: a raw document
// text with its arrival time.
type TimedText struct {
	Text string
	At   time.Time
}

// ScoredDoc pairs a document id with its similarity score for one query.
type ScoredDoc struct {
	Doc   DocID
	Score float64
}

// SortScored orders scored documents by descending score, breaking ties
// by ascending document id. This is the canonical result order used by
// all engines so results can be compared byte-for-byte in tests.
func SortScored(s []ScoredDoc) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Doc < s[j].Doc
	})
}
