package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustDoc(t *testing.T, id DocID, ps []Posting) *Document {
	t.Helper()
	d, err := NewDocument(id, time.Time{}, ps)
	if err != nil {
		t.Fatalf("NewDocument: %v", err)
	}
	return d
}

func mustQuery(t *testing.T, id QueryID, k int, ts []QueryTerm) *Query {
	t.Helper()
	q, err := NewQuery(id, k, ts)
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	return q
}

func TestNewDocumentSortsPostings(t *testing.T) {
	d := mustDoc(t, 1, []Posting{{Term: 9, Weight: 0.1}, {Term: 3, Weight: 0.2}, {Term: 7, Weight: 0.3}})
	for i := 1; i < len(d.Postings); i++ {
		if d.Postings[i-1].Term >= d.Postings[i].Term {
			t.Fatalf("postings not sorted: %v", d.Postings)
		}
	}
}

func TestNewDocumentRejectsDuplicates(t *testing.T) {
	_, err := NewDocument(1, time.Time{}, []Posting{{Term: 3, Weight: 0.1}, {Term: 3, Weight: 0.2}})
	if !errors.Is(err, ErrDuplicateTerm) {
		t.Fatalf("want ErrDuplicateTerm, got %v", err)
	}
}

func TestNewDocumentRejectsNonPositiveWeights(t *testing.T) {
	for _, w := range []float64{0, -0.5} {
		_, err := NewDocument(1, time.Time{}, []Posting{{Term: 3, Weight: w}})
		if !errors.Is(err, ErrNonPositiveWeight) {
			t.Fatalf("weight %g: want ErrNonPositiveWeight, got %v", w, err)
		}
	}
}

func TestNewDocumentAllowsEmptyComposition(t *testing.T) {
	// A document that is all stopwords has an empty composition list; it
	// is valid and simply never matches anything.
	d := mustDoc(t, 1, nil)
	if d.Terms() != 0 {
		t.Fatalf("Terms() = %d, want 0", d.Terms())
	}
}

func TestDocumentWeightLookup(t *testing.T) {
	d := mustDoc(t, 1, []Posting{{Term: 2, Weight: 0.5}, {Term: 5, Weight: 0.25}, {Term: 8, Weight: 0.125}})
	for _, tc := range []struct {
		term TermID
		want float64
		ok   bool
	}{
		{2, 0.5, true}, {5, 0.25, true}, {8, 0.125, true},
		{0, 0, false}, {3, 0, false}, {9, 0, false},
	} {
		got, ok := d.Weight(tc.term)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Weight(%d) = (%g,%v), want (%g,%v)", tc.term, got, ok, tc.want, tc.ok)
		}
	}
}

func TestNewQueryValidation(t *testing.T) {
	if _, err := NewQuery(1, 0, []QueryTerm{{Term: 1, Weight: 1}}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: want ErrBadK, got %v", err)
	}
	if _, err := NewQuery(1, -2, []QueryTerm{{Term: 1, Weight: 1}}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=-2: want ErrBadK, got %v", err)
	}
	if _, err := NewQuery(1, 3, nil); !errors.Is(err, ErrNoTerms) {
		t.Errorf("no terms: want ErrNoTerms, got %v", err)
	}
	if _, err := NewQuery(1, 3, []QueryTerm{{Term: 1, Weight: 1}, {Term: 1, Weight: 2}}); !errors.Is(err, ErrDuplicateTerm) {
		t.Errorf("dup: want ErrDuplicateTerm, got %v", err)
	}
	if _, err := NewQuery(1, 3, []QueryTerm{{Term: 1, Weight: -1}}); !errors.Is(err, ErrNonPositiveWeight) {
		t.Errorf("neg: want ErrNonPositiveWeight, got %v", err)
	}
}

func TestQueryWeightLookup(t *testing.T) {
	q := mustQuery(t, 1, 5, []QueryTerm{{Term: 10, Weight: 0.6}, {Term: 20, Weight: 0.8}})
	if w, ok := q.Weight(10); !ok || w != 0.6 {
		t.Errorf("Weight(10) = (%g,%v)", w, ok)
	}
	if _, ok := q.Weight(15); ok {
		t.Errorf("Weight(15) should be absent")
	}
}

func TestScoreMatchesPaperExample(t *testing.T) {
	// Query {white white tower}: f(white)=2, f(tower)=1, so the
	// normalized query weights are 2/sqrt(5) and 1/sqrt(5).
	const (
		tower TermID = 11
		white TermID = 20
	)
	wQtower := 1 / math.Sqrt(5)
	wQwhite := 2 / math.Sqrt(5)
	q := mustQuery(t, 1, 2, []QueryTerm{{Term: tower, Weight: wQtower}, {Term: white, Weight: wQwhite}})

	d := mustDoc(t, 9, []Posting{{Term: tower, Weight: 0.16}, {Term: white, Weight: 0.05}})
	got := Score(q, d)
	want := wQtower*0.16 + wQwhite*0.05
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %g, want %g", got, want)
	}
}

func TestScoreDisjointTermsIsZero(t *testing.T) {
	q := mustQuery(t, 1, 1, []QueryTerm{{Term: 1, Weight: 1}, {Term: 3, Weight: 1}})
	d := mustDoc(t, 1, []Posting{{Term: 2, Weight: 1}, {Term: 4, Weight: 1}})
	if s := Score(q, d); s != 0 {
		t.Fatalf("Score = %g, want 0", s)
	}
}

// TestScoreAgainstBruteForce cross-checks the merge-join Score against a
// quadratic reference on randomized term sets.
func TestScoreAgainstBruteForce(t *testing.T) {
	f := func(qterms, dterms []uint8) bool {
		qm := map[TermID]float64{}
		for _, x := range qterms {
			qm[TermID(x%32)] += 0.5
		}
		dm := map[TermID]float64{}
		for _, x := range dterms {
			dm[TermID(x%32)] += 0.25
		}
		var qts []QueryTerm
		for term, w := range qm {
			qts = append(qts, QueryTerm{Term: term, Weight: w})
		}
		var dps []Posting
		for term, w := range dm {
			dps = append(dps, Posting{Term: term, Weight: w})
		}
		if len(qts) == 0 {
			return true
		}
		q, err := NewQuery(1, 1, qts)
		if err != nil {
			return false
		}
		d, err := NewDocument(1, time.Time{}, dps)
		if err != nil {
			return false
		}
		var want float64
		for term, qw := range qm {
			want += qw * dm[term]
		}
		return math.Abs(Score(q, d)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortScoredOrdering(t *testing.T) {
	s := []ScoredDoc{{Doc: 3, Score: 0.5}, {Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}, {Doc: 4, Score: 0.7}}
	SortScored(s)
	want := []ScoredDoc{{Doc: 1, Score: 0.9}, {Doc: 4, Score: 0.7}, {Doc: 2, Score: 0.5}, {Doc: 3, Score: 0.5}}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("SortScored[%d] = %+v, want %+v", i, s[i], want[i])
		}
	}
}
