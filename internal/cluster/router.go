package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ita/internal/core"
	"ita/internal/model"
	"ita/internal/shard"
)

// Router fronts a fixed set of cluster nodes with the single-engine
// API. Writes fan out in parallel — every node sees every document, so
// the replicated stream state (window, index, dictionary) stays
// identical everywhere, and since the nodes are independent processes
// behind independent connections, a cluster write costs the slowest
// node's round-trip rather than their sum — while each query's
// registration and result serving go to the one node the placement
// hash assigns it. Reads merge: the union of per-node results equals a
// single-process engine over the same inputs, byte for byte.
//
// The Router serializes mutations internally; it is safe for
// concurrent use. It does not own node lifecycle beyond Close, and a
// failed node can be replaced in place with SwapNode after its standby
// is promoted — the placement hash depends only on the slot index, so
// the swap is invisible to query routing.
type Router struct {
	mu    sync.Mutex
	nodes []Node
	next  model.QueryID
}

// NewRouter builds a router over nodes, adopting the query-id cursor
// from their status. The nodes must agree on NextQuery — they always
// do when every registration has gone through a router, since both the
// owning and the aligning side consume the id.
func NewRouter(nodes []Node) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one node")
	}
	st0, err := nodes[0].Status()
	if err != nil {
		return nil, fmt.Errorf("cluster: status of node 0: %w", err)
	}
	for i, n := range nodes[1:] {
		st, err := n.Status()
		if err != nil {
			return nil, fmt.Errorf("cluster: status of node %d: %w", i+1, err)
		}
		if st.NextQuery != st0.NextQuery {
			return nil, fmt.Errorf("cluster: node %d next-query cursor %d != node 0's %d (unaligned registration history)",
				i+1, st.NextQuery, st0.NextQuery)
		}
	}
	return &Router{nodes: nodes, next: st0.NextQuery}, nil
}

// Size returns the number of node slots.
func (r *Router) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// Node returns the node in slot i (for per-owner access such as watch
// routing).
func (r *Router) Node(i int) Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[i]
}

// SwapNode replaces slot i — the failover path: kill the node, promote
// its warm standby, swap the handle in. Placement depends only on the
// slot index, so routing is unchanged.
func (r *Router) SwapNode(i int, n Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[i] = n
}

// Owner returns the slot owning query id.
func (r *Router) Owner(id model.QueryID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return shard.Placement(id, len(r.nodes))
}

// fanOut applies fn to every node except skip (-1 to include all)
// concurrently and waits for all of them; the caller must hold r.mu.
// Every node sees the call even when a peer fails — the replicated
// stream must advance on the healthy nodes either way, or the survivors
// would diverge from each other on top of the failed node — and the
// returned error is the lowest-indexed node's, exactly what the
// sequential loop this replaces reported. Nodes are network handles
// (or local engines with their own locks), so the per-node work is
// independent; fanning out in parallel turns a cluster write from a
// sum of node round-trips into the slowest one.
func (r *Router) fanOut(skip int, fn func(i int, n Node) error) error {
	if len(r.nodes) == 1 {
		if skip == 0 {
			return nil
		}
		return fn(0, r.nodes[0])
	}
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		if i == skip {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(i, n)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Register assigns the next query id, registers on the owning node and
// aligns the dictionary everywhere else. An owner failure leaves the
// id unconsumed and the cluster untouched. An alignment failure rolls
// the registration back on the owner and surfaces the node's error
// (unwrapped for errors.Is); the id stays consumed — nodes that
// already aligned cannot un-intern — and the failed node must resync
// from a healthy peer before its dictionary can be trusted again,
// which is the same repair a crashed node needs anyway.
func (r *Router) Register(text string, k int) (model.QueryID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.next
	owner := shard.Placement(id, len(r.nodes))
	if err := r.nodes[owner].RegisterWithID(id, text, k); err != nil {
		return 0, fmt.Errorf("cluster: register on owner node %d: %w", owner, err)
	}
	r.next = id + 1
	err := r.fanOut(owner, func(i int, n Node) error {
		if err := n.AlignRegister(id, text); err != nil {
			return fmt.Errorf("cluster: align on node %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		if _, uerr := r.nodes[owner].Unregister(id); uerr != nil {
			return 0, fmt.Errorf("%w (and rollback on owner %d failed too: %v)", err, owner, uerr)
		}
		return 0, err
	}
	return id, nil
}

// Unregister removes the query from its owner. The other nodes get a
// Flush so every node reaches the same epoch boundary the owner's
// unregister forced — exactly what a single-process engine does for an
// id it does not know.
func (r *Router) Unregister(id model.QueryID) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner := shard.Placement(id, len(r.nodes))
	ok, err := r.nodes[owner].Unregister(id)
	if err != nil {
		return false, fmt.Errorf("cluster: unregister on owner node %d: %w", owner, err)
	}
	err = r.fanOut(owner, func(i int, n Node) error {
		if err := n.Flush(); err != nil {
			return fmt.Errorf("cluster: flush on node %d: %w", i, err)
		}
		return nil
	})
	return ok, err
}

// IngestText fans the document to every node with one shared arrival
// time and checks the assigned ids agree — a mismatch means a node
// missed an earlier document and the cluster has diverged.
func (r *Router) IngestText(text string, at time.Time) (model.DocID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]model.DocID, len(r.nodes))
	err := r.fanOut(-1, func(i int, n Node) error {
		id, err := n.IngestText(text, at)
		if err != nil {
			return fmt.Errorf("cluster: ingest on node %d: %w", i, err)
		}
		ids[i] = id
		return nil
	})
	if err != nil {
		return 0, err
	}
	for i, id := range ids[1:] {
		if id != ids[0] {
			return 0, fmt.Errorf("cluster: node %d assigned doc id %d, node 0 assigned %d (diverged streams)", i+1, id, ids[0])
		}
	}
	return ids[0], nil
}

// IngestBatch fans one epoch's batch to every node.
func (r *Router) IngestBatch(items []model.TimedText) ([]model.DocID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	got := make([][]model.DocID, len(r.nodes))
	err := r.fanOut(-1, func(i int, n Node) error {
		ids, err := n.IngestBatch(items)
		if err != nil {
			return fmt.Errorf("cluster: ingest batch on node %d: %w", i, err)
		}
		got[i] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	ids := got[0]
	for i, g := range got[1:] {
		if len(g) != len(ids) || (len(g) > 0 && g[0] != ids[0]) {
			return nil, fmt.Errorf("cluster: node %d assigned batch ids %v, node 0 assigned %v (diverged streams)", i+1, g, ids)
		}
	}
	return ids, nil
}

// Advance moves every node's stream clock.
func (r *Router) Advance(now time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fanOut(-1, func(i int, n Node) error {
		if err := n.Advance(now); err != nil {
			return fmt.Errorf("cluster: advance on node %d: %w", i, err)
		}
		return nil
	})
}

// Flush forces every node's partial epoch out.
func (r *Router) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fanOut(-1, func(i int, n Node) error {
		if err := n.Flush(); err != nil {
			return fmt.Errorf("cluster: flush on node %d: %w", i, err)
		}
		return nil
	})
}

// Results serves a query's top-k from its owning node.
func (r *Router) Results(id model.QueryID) ([]model.Match, string, bool, error) {
	r.mu.Lock()
	owner := r.nodes[shard.Placement(id, len(r.nodes))]
	r.mu.Unlock()
	return owner.Results(id)
}

// ResultsAll merges every node's owned queries into one ascending-id
// listing — the same order a single-process ResultsAll returns.
func (r *Router) ResultsAll() ([]QueryTopK, error) {
	r.mu.Lock()
	nodes := append([]Node(nil), r.nodes...)
	r.mu.Unlock()
	var all []QueryTopK
	for i, n := range nodes {
		part, err := n.ResultsAll()
		if err != nil {
			return nil, fmt.Errorf("cluster: results from node %d: %w", i, err)
		}
		all = append(all, part...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Query < all[j].Query })
	return all, nil
}

// Stats merges per-node counters (see MergeStats).
func (r *Router) Stats() (core.Stats, error) {
	r.mu.Lock()
	nodes := append([]Node(nil), r.nodes...)
	r.mu.Unlock()
	parts := make([]core.Stats, 0, len(nodes))
	for i, n := range nodes {
		s, err := n.Stats()
		if err != nil {
			return core.Stats{}, fmt.Errorf("cluster: stats from node %d: %w", i, err)
		}
		parts = append(parts, s)
	}
	return MergeStats(parts)
}

// Status merges node statuses: queries sum across the partition, the
// stream-derived gauges must agree.
func (r *Router) Status() (Status, error) {
	r.mu.Lock()
	nodes := append([]Node(nil), r.nodes...)
	r.mu.Unlock()
	var merged Status
	for i, n := range nodes {
		st, err := n.Status()
		if err != nil {
			return Status{}, fmt.Errorf("cluster: status from node %d: %w", i, err)
		}
		if i == 0 {
			merged = st
			continue
		}
		if st.NextQuery != merged.NextQuery || st.Window != merged.Window || st.Dict != merged.Dict {
			return Status{}, fmt.Errorf("cluster: node %d status %+v disagrees with node 0 on stream state %+v", i, st, merged)
		}
		merged.Queries += st.Queries
	}
	return merged, nil
}

// Close closes every node handle, reporting the first failure.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, n := range r.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
