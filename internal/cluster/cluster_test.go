package cluster_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ita"
	"ita/internal/cluster"
	"ita/internal/core"
	"ita/internal/model"
)

var (
	_ cluster.Node = (*cluster.HTTPNode)(nil)
	// *ita.Engine satisfies the structural LocalEngine contract; this
	// breaks loudly if a facade signature drifts.
	_ cluster.LocalEngine = (*ita.Engine)(nil)
)

func at(ms int) time.Time {
	return time.Unix(0, int64(ms)*int64(time.Millisecond))
}

func newLocalCluster(t *testing.T, k int, opts ...ita.Option) (*cluster.Router, []*ita.Engine) {
	t.Helper()
	engines := make([]*ita.Engine, k)
	nodes := make([]cluster.Node, k)
	for i := range engines {
		e, err := ita.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		engines[i] = e
		nodes[i] = cluster.Local(e)
	}
	r, err := cluster.NewRouter(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r, engines
}

// TestRouterMergesEqualSingleProcess drives the same workload through
// a 3-node local cluster and one engine: merged stats must be equal
// field for field, merged results identical, and the status totals
// must match — the unit-scale version of the metamorphic oracle.
func TestRouterMergesEqualSingleProcess(t *testing.T) {
	router, _ := newLocalCluster(t, 3, ita.WithCountWindow(16))
	ref, err := ita.New(ita.WithCountWindow(16))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for i, text := range []string{"crude oil production", "solar turbine output", "tanker export pipeline", "grid storage demand"} {
		id, err := router.Register(text, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Register(text, 2+i%2)
		if err != nil || id != want {
			t.Fatalf("register %q: cluster id %d, reference id %d (%v)", text, id, want, err)
		}
	}
	for i := 0; i < 40; i++ {
		text := fmt.Sprintf("oil solar tanker grid report %d demand %d", i%5, i%3)
		id, err := router.IngestText(text, at(i*10))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.IngestText(text, at(i*10))
		if err != nil || id != want {
			t.Fatalf("ingest %d: cluster doc %d, reference doc %d (%v)", i, id, want, err)
		}
	}

	got, err := router.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Stats(); got != want {
		t.Fatalf("merged stats diverge:\n got: %+v\nwant: %+v", got, want)
	}

	merged, err := router.ResultsAll()
	if err != nil {
		t.Fatal(err)
	}
	single := ref.ResultsAll()
	if len(merged) != len(single) {
		t.Fatalf("merged %d queries, reference %d", len(merged), len(single))
	}
	for i, q := range merged {
		if q.Query != single[i].Query {
			t.Fatalf("merged order: entry %d is query %d, want %d", i, q.Query, single[i].Query)
		}
		if len(q.Matches) != len(single[i].Matches) {
			t.Fatalf("query %d: %d matches vs %d", q.Query, len(q.Matches), len(single[i].Matches))
		}
		for j, m := range q.Matches {
			if m != single[i].Matches[j] {
				t.Fatalf("query %d match %d: %+v vs %+v", q.Query, j, m, single[i].Matches[j])
			}
		}
		text, ok := ref.QueryText(q.Query)
		if !ok || q.Text != text {
			t.Fatalf("query %d text %q, want %q", q.Query, q.Text, text)
		}
	}

	st, err := router.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != ref.Queries() || st.Window != ref.WindowLen() || st.Dict != ref.DictionarySize() {
		t.Fatalf("status %+v, want queries=%d window=%d dict=%d", st, ref.Queries(), ref.WindowLen(), ref.DictionarySize())
	}

	// Per-id reads route to the owner and agree too.
	for _, q := range single {
		matches, _, ok, err := router.Results(q.Query)
		if err != nil || !ok {
			t.Fatalf("cluster results %d: ok=%v err=%v", q.Query, ok, err)
		}
		want := ref.Results(q.Query)
		if len(matches) != len(want) {
			t.Fatalf("query %d: cluster %d matches, reference %d", q.Query, len(matches), len(want))
		}
		for j := range matches {
			if matches[j] != want[j] {
				t.Fatalf("query %d match %d: %+v vs %+v", q.Query, j, matches[j], want[j])
			}
		}
	}
}

// alignRefuser wraps a node and fails AlignRegister on demand — the
// deterministic stand-in for a node that is down or read-only during
// the registration fan-out.
type alignRefuser struct {
	cluster.Node
	refuse bool
	err    error
}

func (n *alignRefuser) AlignRegister(id model.QueryID, text string) error {
	if n.refuse {
		return n.err
	}
	return n.Node.AlignRegister(id, text)
}

// TestRouterRegisterRollbackOnAlignFailure: a partial fan-out failure
// must roll the registration back on the owner — the query cannot be
// half-registered — surface the failing node's error unwrapped, and
// leave the cluster able to register again (with a fresh id: the
// failed one is consumed).
func TestRouterRegisterRollbackOnAlignFailure(t *testing.T) {
	engines := make([]*ita.Engine, 2)
	nodes := make([]cluster.Node, 2)
	for i := range engines {
		e, err := ita.New(ita.WithCountWindow(8))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		engines[i] = e
		nodes[i] = cluster.Local(e)
	}
	// Query id 1 is owned by slot 1, so slot 0 is the aligning side.
	refuser := &alignRefuser{Node: nodes[0], refuse: true, err: errors.New("node down")}
	nodes[0] = refuser
	router, err := cluster.NewRouter(nodes)
	if err != nil {
		t.Fatal(err)
	}

	_, err = router.Register("crude oil production", 3)
	if err == nil {
		t.Fatal("register with refusing aligner succeeded")
	}
	if !errors.Is(err, refuser.err) {
		t.Fatalf("align error not preserved: %v", err)
	}
	for i, e := range engines {
		if n := e.Queries(); n != 0 {
			t.Fatalf("node %d serves %d queries after rollback, want 0", i, n)
		}
	}
	if res := engines[1].Results(1); res != nil {
		t.Fatalf("owner still serves rolled-back query: %+v", res)
	}

	// The cluster keeps working once the node recovers; the burned id is
	// skipped, not reused.
	refuser.refuse = false
	id, err := router.Register("solar turbine output", 2)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("post-rollback register got id %d, want 2 (id 1 consumed by the failed attempt)", id)
	}
	matches, text, ok, err := router.Results(id)
	if err != nil || !ok || text != "solar turbine output" {
		t.Fatalf("post-rollback results: ok=%v text=%q err=%v", ok, text, err)
	}
	_ = matches
}

// TestRouterFollowerNodeReadOnly: a read-only replication follower
// accidentally placed behind the router refuses the write fan-out, and
// the engine's refusal keeps its identity — errors.Is(err,
// core.ErrReadOnly) — through the router's wrapping. The attempted
// registration rolls back on the healthy owner.
func TestRouterFollowerNodeReadOnly(t *testing.T) {
	p, err := ita.Open(t.TempDir(), ita.WithCountWindow(8), ita.WithDurability(ita.DurabilityOff))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addr, err := p.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := ita.OpenFollower(t.TempDir(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Slot 0: the follower (aligning side for id 1). Slot 1: its own
	// primary (owner of id 1).
	router, err := cluster.NewRouter([]cluster.Node{cluster.Local(f), cluster.Local(p)})
	if err != nil {
		t.Fatal(err)
	}

	_, err = router.Register("crude oil production", 3)
	if err == nil {
		t.Fatal("register through a follower node succeeded")
	}
	if !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("follower refusal lost its identity: %v", err)
	}
	if !errors.Is(err, ita.ErrReadOnly) {
		t.Fatalf("facade alias no longer matches the core refusal: %v", err)
	}
	if n := p.Queries(); n != 0 {
		t.Fatalf("owner serves %d queries after follower-refused fan-out, want 0 (rollback)", n)
	}

	if _, err := router.IngestText("crude oil production rose", at(0)); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("ingest through follower node: %v, want ErrReadOnly", err)
	}
}

// TestMergeStatsDivergence: stream counters are identical across nodes
// by construction, so a mismatch is corruption and must error, not
// average out.
func TestMergeStatsDivergence(t *testing.T) {
	a := core.Stats{Arrivals: 10, Epochs: 2, ProbeHits: 5}
	b := core.Stats{Arrivals: 10, Epochs: 2, ProbeHits: 7}
	m, err := cluster.MergeStats([]core.Stats{a, b})
	if err != nil {
		t.Fatalf("merge of consistent stats failed: %v", err)
	}
	if m.Arrivals != 10 || m.ProbeHits != 12 {
		t.Fatalf("merged = %+v, want arrivals kept at 10, probe hits summed to 12", m)
	}
	b.Arrivals = 11
	if _, err := cluster.MergeStats([]core.Stats{a, b}); err == nil {
		t.Fatal("diverged arrival counters merged without error")
	}
	if _, err := cluster.MergeStats(nil); err == nil {
		t.Fatal("empty merge succeeded")
	}
}
