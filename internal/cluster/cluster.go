// Package cluster turns N independent engine processes into one
// logical continuous-search service. Every node ingests the full
// document stream; each standing query lives on exactly one node,
// chosen by the same multiplicative placement hash the in-process
// sharded engine uses (shard.Placement). Because ITA maintenance is
// strictly per-query — the paper's threshold algorithm never couples
// two queries' states — partitioning the query set across processes is
// exact: every node computes byte-identical results for the queries it
// owns, and the Router's merged view equals a single-process engine
// over the same inputs.
//
// The one cross-query coupling is the term dictionary: scores sum a
// query's term contributions in ascending term-id order, and float
// addition is not associative, so every node must intern every query's
// terms in the same order to keep the ids — and therefore the
// summation order, and therefore the result bytes — aligned. The
// Router enforces this by sending each registration to the owning node
// (RegisterWithID) and a dictionary-only alignment record to every
// other node (AlignRegister); both are WAL-logged, so alignment
// survives crash recovery and flows to each node's warm standbys.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"ita/internal/core"
	"ita/internal/model"
)

// Node is one cluster member as the Router sees it. Every method can
// fail: a member may be remote (HTTPNode) or a read-only follower
// (core.ErrReadOnly). Implementations must preserve engine error
// identities — errors.Is(err, core.ErrReadOnly) has to hold across the
// transport.
type Node interface {
	// RegisterWithID registers a query under an explicit id on the
	// owning node.
	RegisterWithID(id model.QueryID, text string, k int) error
	// AlignRegister consumes id and interns the query's terms without
	// registering it — the non-owning side of a registration.
	AlignRegister(id model.QueryID, text string) error
	// Unregister removes an owned query, reporting whether it existed.
	Unregister(id model.QueryID) (bool, error)
	// IngestText appends one document to the node's stream.
	IngestText(text string, at time.Time) (model.DocID, error)
	// IngestBatch appends a batch in one epoch.
	IngestBatch(items []model.TimedText) ([]model.DocID, error)
	// Advance moves the stream clock without an arrival.
	Advance(now time.Time) error
	// Flush forces a partial epoch out of the batch buffer.
	Flush() error
	// Results returns an owned query's top-k and its text; nil matches
	// with ok=false means the node does not serve the query.
	Results(id model.QueryID) (matches []model.Match, text string, ok bool, err error)
	// ResultsAll returns every owned query's top-k.
	ResultsAll() ([]QueryTopK, error)
	// Stats returns the node's engine counters.
	Stats() (core.Stats, error)
	// Status returns the node's cluster-relevant gauges.
	Status() (Status, error)
	// Close releases the node handle. For local nodes it closes the
	// engine; for remote nodes it only drops the client.
	Close() error
}

// Status is a node's cluster-relevant state summary. NextQuery drives
// the Router's id assignment; the remaining gauges feed merged reads
// and the invariant checks (Window and Dict must agree across nodes,
// Queries sum to the cluster total).
type Status struct {
	NextQuery model.QueryID `json:"next_query"`
	Queries   int           `json:"queries"`
	Window    int           `json:"window"`
	Dict      int           `json:"dict"`
}

// QueryTopK is one query's merged-read entry: its id, registered text
// and current top-k.
type QueryTopK struct {
	Query   model.QueryID
	Text    string
	Matches []model.Match
}

// LocalEngine is the facade-method subset cluster membership needs,
// declared structurally so *ita.Engine satisfies it without the
// internal package importing the root (which would cycle).
type LocalEngine interface {
	RegisterWithID(id model.QueryID, queryText string, k int) error
	AlignRegister(id model.QueryID, queryText string) error
	Unregister(id model.QueryID) bool
	IngestText(text string, at time.Time) (model.DocID, error)
	IngestBatch(items []model.TimedText) ([]model.DocID, error)
	Advance(now time.Time) error
	Flush() error
	Results(id model.QueryID) []model.Match
	ResultsAll() []model.QueryResult
	QueryText(id model.QueryID) (string, bool)
	Stats() core.Stats
	NextQueryID() model.QueryID
	Queries() int
	WindowLen() int
	DictionarySize() int
	Close() error
}

// Local wraps an in-process engine as a cluster Node.
func Local(e LocalEngine) Node { return localNode{e} }

type localNode struct{ e LocalEngine }

func (n localNode) RegisterWithID(id model.QueryID, text string, k int) error {
	return n.e.RegisterWithID(id, text, k)
}

func (n localNode) AlignRegister(id model.QueryID, text string) error {
	return n.e.AlignRegister(id, text)
}

func (n localNode) Unregister(id model.QueryID) (bool, error) {
	return n.e.Unregister(id), nil
}

func (n localNode) IngestText(text string, at time.Time) (model.DocID, error) {
	return n.e.IngestText(text, at)
}

func (n localNode) IngestBatch(items []model.TimedText) ([]model.DocID, error) {
	return n.e.IngestBatch(items)
}

func (n localNode) Advance(now time.Time) error { return n.e.Advance(now) }
func (n localNode) Flush() error                { return n.e.Flush() }

func (n localNode) Results(id model.QueryID) ([]model.Match, string, bool, error) {
	matches := n.e.Results(id)
	if matches == nil {
		return nil, "", false, nil
	}
	text, _ := n.e.QueryText(id)
	return matches, text, true, nil
}

func (n localNode) ResultsAll() ([]QueryTopK, error) {
	all := n.e.ResultsAll()
	out := make([]QueryTopK, 0, len(all))
	for _, qr := range all {
		text, _ := n.e.QueryText(qr.Query)
		out = append(out, QueryTopK{Query: qr.Query, Text: text, Matches: qr.Matches})
	}
	return out, nil
}

func (n localNode) Stats() (core.Stats, error) { return n.e.Stats(), nil }

func (n localNode) Status() (Status, error) {
	return Status{
		NextQuery: n.e.NextQueryID(),
		Queries:   n.e.Queries(),
		Window:    n.e.WindowLen(),
		Dict:      n.e.DictionarySize(),
	}, nil
}

func (n localNode) Close() error { return n.e.Close() }

// MergeStats folds per-node counters into the cluster view. Counters
// driven purely by the document stream must be identical on every node
// (each ingests the full stream); a mismatch means the cluster has
// diverged and is reported as an error rather than papered over.
// Counters driven by per-query maintenance are disjoint across the
// partition and sum to exactly the single-process values.
func MergeStats(parts []core.Stats) (core.Stats, error) {
	if len(parts) == 0 {
		return core.Stats{}, errors.New("cluster: no stats to merge")
	}
	m := parts[0]
	for i, s := range parts[1:] {
		if s.Arrivals != m.Arrivals || s.Expirations != m.Expirations ||
			s.Epochs != m.Epochs || s.IndexInserts != m.IndexInserts ||
			s.IndexDeletes != m.IndexDeletes {
			return core.Stats{}, fmt.Errorf(
				"cluster: node %d stream counters diverged from node 0: %+v vs %+v",
				i+1, s, m)
		}
		m.ProbeHits += s.ProbeHits
		m.SearchReads += s.SearchReads
		m.RollupSteps += s.RollupSteps
		m.RollupDrops += s.RollupDrops
		m.Refills += s.Refills
		m.TreeUpdates += s.TreeUpdates
		m.ScoreComputations += s.ScoreComputations
		m.Rescans += s.Rescans
	}
	return m, nil
}
