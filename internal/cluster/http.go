package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/model"
)

// HTTPNode drives a remote itaserver node over its HTTP API. Write
// paths use the /cluster endpoints (explicit ids, alignment, shared
// arrival timestamps); reads use the public endpoints. A 503 from a
// read-only follower is surfaced as core.ErrReadOnly so callers can
// errors.Is it exactly like a local engine's refusal.
type HTTPNode struct {
	base   string
	client *http.Client
}

// NewHTTPNode wraps the node at base (e.g. "http://127.0.0.1:8095").
// client nil uses a default with a 10s timeout.
func NewHTTPNode(base string, client *http.Client) *HTTPNode {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPNode{base: strings.TrimRight(base, "/"), client: client}
}

type httpStatusError struct {
	code int
	body string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.code, strings.TrimSpace(e.body))
}

// do issues one request and decodes a JSON response into out (when
// non-nil). Engine refusals keep their identity: a 503 from a
// follower unwraps to core.ErrReadOnly.
func (n *HTTPNode) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, n.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(msg), "read-only") {
			return fmt.Errorf("%s %s: %s: %w", method, path, strings.TrimSpace(string(msg)), core.ErrReadOnly)
		}
		return &httpStatusError{code: resp.StatusCode, body: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RegisterWithID implements Node.
func (n *HTTPNode) RegisterWithID(id model.QueryID, text string, k int) error {
	req := struct {
		ID   uint64 `json:"id"`
		Text string `json:"text"`
		K    int    `json:"k"`
	}{uint64(id), text, k}
	return n.do(http.MethodPost, "/cluster/register", req, nil)
}

// AlignRegister implements Node.
func (n *HTTPNode) AlignRegister(id model.QueryID, text string) error {
	req := struct {
		ID   uint64 `json:"id"`
		Text string `json:"text"`
	}{uint64(id), text}
	return n.do(http.MethodPost, "/cluster/align", req, nil)
}

// Unregister implements Node. A 404 is "not found", not an error, to
// match the local engine's boolean.
func (n *HTTPNode) Unregister(id model.QueryID) (bool, error) {
	err := n.do(http.MethodDelete, fmt.Sprintf("/queries/%d", id), nil, nil)
	if err != nil {
		var se *httpStatusError
		if ok := asStatusError(err, &se); ok && se.code == http.StatusNotFound {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

func asStatusError(err error, out **httpStatusError) bool {
	se, ok := err.(*httpStatusError)
	if ok {
		*out = se
	}
	return ok
}

// IngestText implements Node, pinning the router's shared arrival time
// so every node applies the identical timestamp.
func (n *HTTPNode) IngestText(text string, at time.Time) (model.DocID, error) {
	req := struct {
		Text string `json:"text"`
		At   int64  `json:"at"`
	}{text, at.UnixNano()}
	var resp struct {
		Doc uint64 `json:"doc"`
	}
	if err := n.do(http.MethodPost, "/documents", req, &resp); err != nil {
		return 0, err
	}
	return model.DocID(resp.Doc), nil
}

// IngestBatch implements Node.
func (n *HTTPNode) IngestBatch(items []model.TimedText) ([]model.DocID, error) {
	type entry struct {
		Text string `json:"text"`
		At   int64  `json:"at"`
	}
	req := struct {
		Items []entry `json:"items"`
	}{Items: make([]entry, 0, len(items))}
	for _, it := range items {
		req.Items = append(req.Items, entry{Text: it.Text, At: it.At.UnixNano()})
	}
	var resp struct {
		Docs []uint64 `json:"docs"`
	}
	if err := n.do(http.MethodPost, "/cluster/ingest", req, &resp); err != nil {
		return nil, err
	}
	ids := make([]model.DocID, len(resp.Docs))
	for i, d := range resp.Docs {
		ids[i] = model.DocID(d)
	}
	return ids, nil
}

// Advance implements Node.
func (n *HTTPNode) Advance(now time.Time) error {
	req := struct {
		At int64 `json:"at"`
	}{now.UnixNano()}
	return n.do(http.MethodPost, "/cluster/advance", req, nil)
}

// Flush implements Node.
func (n *HTTPNode) Flush() error {
	return n.do(http.MethodPost, "/cluster/flush", nil, nil)
}

// Results implements Node.
func (n *HTTPNode) Results(id model.QueryID) ([]model.Match, string, bool, error) {
	var resp struct {
		Query   string `json:"query"`
		Matches []struct {
			Doc   uint64  `json:"doc"`
			Score float64 `json:"score"`
			Text  string  `json:"text"`
		} `json:"matches"`
	}
	if err := n.do(http.MethodGet, fmt.Sprintf("/queries/%d", id), nil, &resp); err != nil {
		var se *httpStatusError
		if ok := asStatusError(err, &se); ok && se.code == http.StatusNotFound {
			return nil, "", false, nil
		}
		return nil, "", false, err
	}
	matches := make([]model.Match, 0, len(resp.Matches))
	for _, m := range resp.Matches {
		matches = append(matches, model.Match{Doc: model.DocID(m.Doc), Score: m.Score, Text: m.Text})
	}
	return matches, resp.Query, true, nil
}

// ResultsAll implements Node.
func (n *HTTPNode) ResultsAll() ([]QueryTopK, error) {
	var resp []struct {
		Query   uint64 `json:"query"`
		Text    string `json:"text"`
		Matches []struct {
			Doc   uint64  `json:"doc"`
			Score float64 `json:"score"`
			Text  string  `json:"text"`
		} `json:"matches"`
	}
	if err := n.do(http.MethodGet, "/queries", nil, &resp); err != nil {
		return nil, err
	}
	out := make([]QueryTopK, 0, len(resp))
	for _, q := range resp {
		matches := make([]model.Match, 0, len(q.Matches))
		for _, m := range q.Matches {
			matches = append(matches, model.Match{Doc: model.DocID(m.Doc), Score: m.Score, Text: m.Text})
		}
		out = append(out, QueryTopK{Query: model.QueryID(q.Query), Text: q.Text, Matches: matches})
	}
	return out, nil
}

// Stats implements Node. core.Stats marshals by Go field name on both
// ends, so the round trip is lossless.
func (n *HTTPNode) Stats() (core.Stats, error) {
	var resp struct {
		Counters core.Stats `json:"counters"`
	}
	if err := n.do(http.MethodGet, "/stats", nil, &resp); err != nil {
		return core.Stats{}, err
	}
	return resp.Counters, nil
}

// Status implements Node.
func (n *HTTPNode) Status() (Status, error) {
	var st Status
	if err := n.do(http.MethodGet, "/cluster/status", nil, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Close implements Node. The remote process is not ours to stop; only
// the client handle is dropped.
func (n *HTTPNode) Close() error {
	n.client.CloseIdleConnections()
	return nil
}
