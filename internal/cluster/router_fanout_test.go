package cluster_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ita"
	"ita/internal/cluster"
	"ita/internal/model"
)

// gauge tracks how many fan-out calls are in flight at once; max is the
// proof of overlap.
type gauge struct{ cur, max atomic.Int32 }

func (g *gauge) enter() {
	c := g.cur.Add(1)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			return
		}
	}
}

func (g *gauge) exit() { g.cur.Add(-1) }

// fanProbe wraps a node with an in-flight gauge, a per-call delay wide
// enough that concurrent calls must overlap, per-method error
// injection, and call counting — everything the fan-out contract tests
// need.
type fanProbe struct {
	cluster.Node
	g        *gauge
	delay    time.Duration
	flushErr error
	flushes  atomic.Int32
}

func (n *fanProbe) observe() func() {
	n.g.enter()
	time.Sleep(n.delay)
	return n.g.exit
}

func (n *fanProbe) IngestText(text string, at time.Time) (model.DocID, error) {
	defer n.observe()()
	return n.Node.IngestText(text, at)
}

func (n *fanProbe) IngestBatch(items []model.TimedText) ([]model.DocID, error) {
	defer n.observe()()
	return n.Node.IngestBatch(items)
}

func (n *fanProbe) Advance(now time.Time) error {
	defer n.observe()()
	return n.Node.Advance(now)
}

func (n *fanProbe) Flush() error {
	defer n.observe()()
	n.flushes.Add(1)
	if n.flushErr != nil {
		return n.flushErr
	}
	return n.Node.Flush()
}

func (n *fanProbe) AlignRegister(id model.QueryID, text string) error {
	defer n.observe()()
	return n.Node.AlignRegister(id, text)
}

func newProbedCluster(t *testing.T, k int, delay time.Duration) (*cluster.Router, []*fanProbe, *gauge) {
	t.Helper()
	g := &gauge{}
	probes := make([]*fanProbe, k)
	nodes := make([]cluster.Node, k)
	for i := range nodes {
		e, err := ita.New(ita.WithCountWindow(16))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		probes[i] = &fanProbe{Node: cluster.Local(e), g: g, delay: delay}
		nodes[i] = probes[i]
	}
	r, err := cluster.NewRouter(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r, probes, g
}

// TestRouterFanOutParallel proves the write fan-out actually overlaps:
// with every node sleeping tens of milliseconds per call, the in-flight
// gauge must see several nodes busy at once on each write path. (The
// sequential loop this replaced would never push the gauge past 1.)
func TestRouterFanOutParallel(t *testing.T) {
	const k = 4
	router, _, g := newProbedCluster(t, k, 30*time.Millisecond)

	check := func(op string, fn func() error) {
		t.Helper()
		g.max.Store(0)
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if m := g.max.Load(); m < 2 {
			t.Fatalf("%s: max in-flight %d, want ≥2 (fan-out ran sequentially)", op, m)
		}
	}
	check("ingest", func() error {
		_, err := router.IngestText("crude oil production", at(10))
		return err
	})
	check("ingest batch", func() error {
		_, err := router.IngestBatch([]model.TimedText{
			{Text: "solar turbine output", At: at(20)},
			{Text: "tanker export pipeline", At: at(21)},
		})
		return err
	})
	check("advance", func() error { return router.Advance(at(30)) })
	check("flush", func() error { return router.Flush() })
	// Register's alignment fan-out (the owner itself is sequential, and
	// with 4 nodes there are 3 aligners to overlap).
	check("register align", func() error {
		_, err := router.Register("grid storage demand", 2)
		return err
	})
}

// TestRouterFanOutFirstError: when several nodes fail the same fan-out,
// the router must report the lowest-indexed node's error — the same
// deterministic choice the old sequential loop made — while still
// delivering the call to every node (the healthy ones must not be
// skipped, or the survivors would diverge from each other).
func TestRouterFanOutFirstError(t *testing.T) {
	router, probes, _ := newProbedCluster(t, 4, time.Millisecond)
	errLow, errHigh := errors.New("node 1 down"), errors.New("node 3 down")
	probes[1].flushErr = errLow
	probes[3].flushErr = errHigh

	err := router.Flush()
	if !errors.Is(err, errLow) {
		t.Fatalf("Flush error = %v, want node 1's (lowest failing index)", err)
	}
	if errors.Is(err, errHigh) {
		t.Fatalf("Flush error %v carries the higher-indexed node's failure", err)
	}
	for i, p := range probes {
		if n := p.flushes.Load(); n != 1 {
			t.Fatalf("node %d saw %d flushes, want 1 (fan-out must reach every node)", i, n)
		}
	}
}
