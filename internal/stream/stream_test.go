package stream

import (
	"math"
	"testing"
	"time"

	"ita/internal/model"
)

func fakeSource(t *testing.T) Source {
	t.Helper()
	return func(id model.DocID, arrival time.Time) *model.Document {
		d, err := model.NewDocument(id, arrival, []model.Posting{{Term: 1, Weight: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
}

func TestStreamIDsMonotone(t *testing.T) {
	s := New(fakeSource(t), 200, 1, time.Unix(0, 0))
	prev := model.DocID(0)
	for i := 0; i < 100; i++ {
		d := s.Next()
		if d.ID != prev+1 {
			t.Fatalf("id %d after %d", d.ID, prev)
		}
		prev = d.ID
	}
	if s.Produced() != 100 {
		t.Fatalf("Produced = %d", s.Produced())
	}
}

func TestStreamClockAdvances(t *testing.T) {
	s := New(fakeSource(t), 200, 1, time.Unix(0, 0))
	prev := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		d := s.Next()
		if !d.Arrival.After(prev) {
			t.Fatalf("arrival %v not after %v", d.Arrival, prev)
		}
		prev = d.Arrival
	}
	if !s.Now().Equal(prev) {
		t.Fatalf("Now = %v, last arrival %v", s.Now(), prev)
	}
}

func TestStreamMeanRate(t *testing.T) {
	s := New(fakeSource(t), 200, 2, time.Unix(0, 0))
	const n = 20000
	for i := 0; i < n; i++ {
		s.Next()
	}
	elapsed := s.Now().Sub(time.Unix(0, 0)).Seconds()
	rate := n / elapsed
	if math.Abs(rate-200)/200 > 0.05 {
		t.Fatalf("observed rate %f docs/s, want ≈200", rate)
	}
}

func TestStreamDeterminism(t *testing.T) {
	run := func() time.Time {
		s := New(fakeSource(t), 200, 42, time.Unix(0, 0))
		for i := 0; i < 500; i++ {
			s.Next()
		}
		return s.Now()
	}
	if a, b := run(), run(); !a.Equal(b) {
		t.Fatalf("same seed, different clocks: %v vs %v", a, b)
	}
}
