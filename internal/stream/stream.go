// Package stream turns a document source into the paper's input: a
// Poisson arrival process (mean 200 docs/second in the evaluation) with
// monotonically increasing ids and arrival timestamps.
package stream

import (
	"time"

	"ita/internal/model"
	"ita/internal/stats"
)

// Source produces the next document given its assigned id and arrival
// time. corpus.Synth.Document satisfies this signature directly.
type Source func(id model.DocID, arrival time.Time) *model.Document

// Stream draws documents with exponential inter-arrival gaps.
type Stream struct {
	src     Source
	poisson *stats.Poisson
	now     time.Time
	nextID  model.DocID
}

// New returns a stream over src with the given mean arrival rate in
// documents per second, starting its clock at start.
func New(src Source, rate float64, seed int64, start time.Time) *Stream {
	return &Stream{
		src:     src,
		poisson: stats.NewPoisson(stats.NewRand(seed), rate),
		now:     start,
		nextID:  1,
	}
}

// Next draws the next arrival.
func (s *Stream) Next() *model.Document {
	s.now = s.now.Add(s.poisson.NextGap())
	d := s.src(s.nextID, s.now)
	s.nextID++
	return d
}

// Now returns the stream clock (the arrival time of the last document).
func (s *Stream) Now() time.Time { return s.now }

// Produced returns how many documents have been drawn.
func (s *Stream) Produced() int { return int(s.nextID - 1) }
