package vsm

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ita/internal/model"
)

func TestCosineDocWeightsNormalized(t *testing.T) {
	w := Cosine{}
	ps := w.DocPostings(map[model.TermID]int{1: 2, 2: 1, 3: 2})
	if len(ps) != 3 {
		t.Fatalf("got %d postings", len(ps))
	}
	var norm float64
	for _, p := range ps {
		norm += p.Weight * p.Weight
	}
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("L2 norm² = %g, want 1", norm)
	}
	// f=2 terms weigh twice the f=1 term: 2/3, 1/3, 2/3.
	for _, p := range ps {
		want := 1.0 / 3
		if p.Term != 2 {
			want = 2.0 / 3
		}
		if math.Abs(p.Weight-want) > 1e-12 {
			t.Fatalf("term %d weight %g, want %g", p.Term, p.Weight, want)
		}
	}
}

func TestCosineQueryWeightsPaperExample(t *testing.T) {
	// Query {white white tower}: weights 2/sqrt(5) and 1/sqrt(5)
	// (Formula 1 of the paper).
	w := Cosine{}
	ts := w.QueryTerms(map[model.TermID]int{20: 2, 11: 1})
	if len(ts) != 2 {
		t.Fatalf("got %d terms", len(ts))
	}
	byTerm := map[model.TermID]float64{}
	for _, q := range ts {
		byTerm[q.Term] = q.Weight
	}
	if math.Abs(byTerm[20]-2/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("w(white) = %g", byTerm[20])
	}
	if math.Abs(byTerm[11]-1/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("w(tower) = %g", byTerm[11])
	}
}

func TestCosineSelfSimilarityIsOne(t *testing.T) {
	// S(d|Q) = 1 when the query and document have identical frequency
	// vectors — the defining property of cosine similarity.
	w := Cosine{}
	freqs := map[model.TermID]int{1: 3, 5: 1, 9: 2}
	d, err := model.NewDocument(1, time.Time{}, w.DocPostings(freqs))
	if err != nil {
		t.Fatal(err)
	}
	q, err := model.NewQuery(1, 1, w.QueryTerms(freqs))
	if err != nil {
		t.Fatal(err)
	}
	if s := model.Score(q, d); math.Abs(s-1) > 1e-12 {
		t.Fatalf("self similarity = %g, want 1", s)
	}
}

func TestCosineEmptyAndZeroFreqs(t *testing.T) {
	w := Cosine{}
	if got := w.DocPostings(nil); got != nil {
		t.Fatalf("DocPostings(nil) = %v", got)
	}
	if got := w.QueryTerms(map[model.TermID]int{}); got != nil {
		t.Fatalf("QueryTerms(empty) = %v", got)
	}
	// Zero frequencies are skipped, not divided by.
	ps := w.DocPostings(map[model.TermID]int{1: 0, 2: 3})
	if len(ps) != 1 || ps[0].Term != 2 {
		t.Fatalf("DocPostings with zero freq = %v", ps)
	}
}

func TestCosinePostingsSortedProperty(t *testing.T) {
	w := Cosine{}
	f := func(raw []uint8) bool {
		freqs := map[model.TermID]int{}
		for i, b := range raw {
			freqs[model.TermID(b)] = i%5 + 1
		}
		ps := w.DocPostings(freqs)
		for i := 1; i < len(ps); i++ {
			if ps[i-1].Term >= ps[i].Term {
				return false
			}
		}
		for _, p := range ps {
			if p.Weight <= 0 || p.Weight > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOkapiSaturation(t *testing.T) {
	o := NewOkapi(100)
	// At fixed document length, weight grows with f but saturates below
	// k1+1.
	mk := func(f int) float64 {
		ps := o.DocPostings(map[model.TermID]int{1: f, 2: 100 - f})
		for _, p := range ps {
			if p.Term == 1 {
				return p.Weight
			}
		}
		return -1
	}
	w1, w5, w50 := mk(1), mk(5), mk(50)
	if !(w1 < w5 && w5 < w50) {
		t.Fatalf("weights not increasing: %g %g %g", w1, w5, w50)
	}
	if w50 >= o.K1+1 {
		t.Fatalf("weight %g exceeds saturation bound %g", w50, o.K1+1)
	}
}

func TestOkapiLengthNormalization(t *testing.T) {
	o := NewOkapi(100)
	// The same term frequency in a longer document weighs less.
	short := o.DocPostings(map[model.TermID]int{1: 5, 2: 45}) // length 50
	long := o.DocPostings(map[model.TermID]int{1: 5, 2: 195}) // length 200
	var ws, wl float64
	for _, p := range short {
		if p.Term == 1 {
			ws = p.Weight
		}
	}
	for _, p := range long {
		if p.Term == 1 {
			wl = p.Weight
		}
	}
	if !(wl < ws) {
		t.Fatalf("long-doc weight %g not below short-doc weight %g", wl, ws)
	}
}

func TestOkapiQuerySaturation(t *testing.T) {
	o := NewOkapi(100)
	ts := o.QueryTerms(map[model.TermID]int{1: 1, 2: 10})
	byTerm := map[model.TermID]float64{}
	for _, q := range ts {
		byTerm[q.Term] = q.Weight
	}
	if !(byTerm[1] < byTerm[2]) {
		t.Fatal("query weight not increasing in frequency")
	}
	if byTerm[2] >= o.K3+1 {
		t.Fatalf("query weight %g exceeds bound", byTerm[2])
	}
}

func TestOkapiZeroAvgDocLenFallsBack(t *testing.T) {
	o := Okapi{K1: 1.2, B: 0.75, K3: 8, AvgDocLen: 0}
	ps := o.DocPostings(map[model.TermID]int{1: 3})
	if len(ps) != 1 || ps[0].Weight <= 0 {
		t.Fatalf("postings = %v", ps)
	}
}

func TestWeighterNames(t *testing.T) {
	if (Cosine{}).Name() != "cosine" {
		t.Fatal("cosine name")
	}
	if NewOkapi(1).Name() != "okapi" {
		t.Fatal("okapi name")
	}
}
