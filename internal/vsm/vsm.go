// Package vsm implements the vector-space weighting schemes that turn
// raw term frequencies into the impact weights consumed by the engines:
// the paper's cosine formulation (Formula 1) and, as the extension the
// paper mentions, an Okapi BM25 formulation with static document-side
// impacts.
package vsm

import (
	"math"
	"sort"

	"ita/internal/model"
)

// Weighter converts term frequencies into document-side impact weights
// w_{d,t} and query-side weights w_{Q,t}. Document weights must be fixed
// at arrival time (they are embedded into inverted-list entries), so a
// Weighter may not depend on mutable collection statistics.
type Weighter interface {
	// DocPostings converts a document's term frequencies into a
	// composition list, sorted by term id.
	DocPostings(freqs map[model.TermID]int) []model.Posting
	// QueryTerms converts a query's term frequencies into weighted
	// query terms, sorted by term id.
	QueryTerms(freqs map[model.TermID]int) []model.QueryTerm
	// Name identifies the scheme in reports.
	Name() string
}

// Cosine is the paper's similarity: w_{x,t} = f_{x,t} / sqrt(Σ f²).
// Document and query vectors are L2-normalized over their own terms
// (terms with f = 0 contribute nothing to the norm), so S(d|Q) is the
// cosine of the angle between the two frequency vectors.
type Cosine struct{}

// Name implements Weighter.
func (Cosine) Name() string { return "cosine" }

// DocPostings implements Weighter.
func (Cosine) DocPostings(freqs map[model.TermID]int) []model.Posting {
	if len(freqs) == 0 {
		return nil
	}
	var norm float64
	for _, f := range freqs {
		norm += float64(f) * float64(f)
	}
	norm = math.Sqrt(norm)
	out := make([]model.Posting, 0, len(freqs))
	for t, f := range freqs {
		if f <= 0 {
			continue
		}
		out = append(out, model.Posting{Term: t, Weight: float64(f) / norm})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}

// QueryTerms implements Weighter.
func (Cosine) QueryTerms(freqs map[model.TermID]int) []model.QueryTerm {
	if len(freqs) == 0 {
		return nil
	}
	var norm float64
	for _, f := range freqs {
		norm += float64(f) * float64(f)
	}
	norm = math.Sqrt(norm)
	out := make([]model.QueryTerm, 0, len(freqs))
	for t, f := range freqs {
		if f <= 0 {
			continue
		}
		out = append(out, model.QueryTerm{Term: t, Weight: float64(f) / norm})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}

// Okapi is a BM25-style weighting with static document impacts:
//
//	w_{d,t} = ((k1+1)·f) / (k1·((1-b) + b·len/avdl) + f)
//	w_{Q,t} = ((k3+1)·f) / (k3 + f)
//
// The document length len is the total token count Σf. AvgDocLen is a
// fixed calibration constant rather than a live collection statistic, so
// that document impacts never change after arrival — the property the
// inverted-list entries and thresholds rely on. Collection-dependent idf
// can be folded into the query weights by the caller at registration
// time if desired.
type Okapi struct {
	K1        float64 // term-frequency saturation, typically 1.2
	B         float64 // length normalization, typically 0.75
	K3        float64 // query-side saturation, typically 8
	AvgDocLen float64 // calibration constant, e.g. the corpus mean length
}

// NewOkapi returns an Okapi weighter with the standard parameterization
// around the given average document length.
func NewOkapi(avgDocLen float64) Okapi {
	return Okapi{K1: 1.2, B: 0.75, K3: 8, AvgDocLen: avgDocLen}
}

// Name implements Weighter.
func (o Okapi) Name() string { return "okapi" }

// DocPostings implements Weighter.
func (o Okapi) DocPostings(freqs map[model.TermID]int) []model.Posting {
	if len(freqs) == 0 {
		return nil
	}
	var dl float64
	for _, f := range freqs {
		dl += float64(f)
	}
	avdl := o.AvgDocLen
	if avdl <= 0 {
		avdl = dl
	}
	out := make([]model.Posting, 0, len(freqs))
	for t, f := range freqs {
		if f <= 0 {
			continue
		}
		tf := float64(f)
		w := ((o.K1 + 1) * tf) / (o.K1*((1-o.B)+o.B*dl/avdl) + tf)
		out = append(out, model.Posting{Term: t, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}

// QueryTerms implements Weighter.
func (o Okapi) QueryTerms(freqs map[model.TermID]int) []model.QueryTerm {
	if len(freqs) == 0 {
		return nil
	}
	out := make([]model.QueryTerm, 0, len(freqs))
	for t, f := range freqs {
		if f <= 0 {
			continue
		}
		tf := float64(f)
		w := ((o.K3 + 1) * tf) / (o.K3 + tf)
		out = append(out, model.QueryTerm{Term: t, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}
