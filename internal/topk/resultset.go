// Package topk implements the per-query result list R of the paper: all
// encountered documents (verified or not) with their exact scores,
// ordered by descending score, with order-statistic access to the k-th
// score Sk.
package topk

import (
	"ita/internal/model"
	"ita/internal/skiplist"
)

type entry struct {
	score float64
	doc   model.DocID
}

// Higher scores first; ties broken by ascending doc id. This matches
// model.SortScored so engine outputs are directly comparable.
func entryLess(a, b entry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.doc < b.doc
}

// ResultSet is R for a single query. The zero value is not usable; call
// NewResultSet.
type ResultSet struct {
	order *skiplist.List[entry, struct{}]
	byDoc map[model.DocID]float64

	// Copy-on-publish cache: the last frozen top-k, invalidated by any
	// mutation. Freezing an unchanged result set returns the same
	// pointer, which is what makes per-epoch publication cost
	// proportional to the queries an epoch actually touched.
	frozen  *Frozen
	frozenK int
}

// Frozen is an immutable snapshot of a result set's top-k, taken at a
// publication boundary. Holders may read Docs from any goroutine without
// synchronization; nobody may mutate it.
type Frozen struct {
	// Docs is the top-k in descending score order (ties by ascending
	// document id), never nil.
	Docs []model.ScoredDoc
}

// NewResultSet returns an empty result set.
func NewResultSet(seed uint64) *ResultSet {
	return &ResultSet{
		order: skiplist.New[entry, struct{}](entryLess, seed),
		byDoc: make(map[model.DocID]float64),
	}
}

// Freeze returns an immutable snapshot of the current top-k. The
// snapshot is cached: freezing again without an intervening Add or
// Remove returns the identical *Frozen, so publishing an untouched
// query is a pointer comparison away from free.
func (r *ResultSet) Freeze(k int) *Frozen {
	if r.frozen != nil && r.frozenK == k {
		return r.frozen
	}
	r.frozen = &Frozen{Docs: r.Top(k)}
	r.frozenK = k
	return r.frozen
}

// Len returns the number of documents in R.
func (r *ResultSet) Len() int { return r.order.Len() }

// Add inserts document doc with the given score. Adding a document that
// is already present panics: scores are immutable while a document is in
// the window, so a re-add indicates an engine bug.
func (r *ResultSet) Add(doc model.DocID, score float64) {
	if _, dup := r.byDoc[doc]; dup {
		panic("topk: document added twice")
	}
	r.frozen = nil
	r.byDoc[doc] = score
	r.order.Insert(entry{score: score, doc: doc}, struct{}{})
}

// Remove deletes doc from R, reporting whether it was present.
func (r *ResultSet) Remove(doc model.DocID) bool {
	score, ok := r.byDoc[doc]
	if !ok {
		return false
	}
	r.frozen = nil
	delete(r.byDoc, doc)
	r.order.Delete(entry{score: score, doc: doc})
	return true
}

// Score returns doc's stored score.
func (r *ResultSet) Score(doc model.DocID) (float64, bool) {
	s, ok := r.byDoc[doc]
	return s, ok
}

// Contains reports whether doc is in R.
func (r *ResultSet) Contains(doc model.DocID) bool {
	_, ok := r.byDoc[doc]
	return ok
}

// Kth returns the k-th best score Sk (1-based), or 0 when R holds fewer
// than k documents — the identity under which any positive-scoring
// document beats an unfilled result slot.
func (r *ResultSet) Kth(k int) float64 {
	if k <= 0 || r.order.Len() < k {
		return 0
	}
	e, _ := r.order.At(k - 1)
	return e.score
}

// Rank returns the 0-based rank doc currently occupies (0 = best). The
// second result is false when doc is not in R.
func (r *ResultSet) Rank(doc model.DocID) (int, bool) {
	score, ok := r.byDoc[doc]
	if !ok {
		return 0, false
	}
	return r.order.Rank(entry{score: score, doc: doc}), true
}

// Top returns the best min(k, Len) documents in result order.
func (r *ResultSet) Top(k int) []model.ScoredDoc {
	n := r.order.Len()
	if k < n {
		n = k
	}
	out := make([]model.ScoredDoc, 0, n)
	it := r.order.First()
	for i := 0; i < n; i++ {
		e := it.Key()
		out = append(out, model.ScoredDoc{Doc: e.doc, Score: e.score})
		it.Next()
	}
	return out
}

// Worst returns the lowest-ranked document in R. It is used by the
// bounded view of the Naïve+kmax baseline to evict beyond kmax.
func (r *ResultSet) Worst() (model.ScoredDoc, bool) {
	if r.order.Len() == 0 {
		return model.ScoredDoc{}, false
	}
	e, _ := r.order.At(r.order.Len() - 1)
	return model.ScoredDoc{Doc: e.doc, Score: e.score}, true
}

// Each calls fn for every document in R in result order.
func (r *ResultSet) Each(fn func(doc model.DocID, score float64)) {
	for it := r.order.First(); it.Valid(); it.Next() {
		e := it.Key()
		fn(e.doc, e.score)
	}
}
