// Package topk implements the per-query result list R of the paper: all
// encountered documents (verified or not) with their exact scores,
// ordered by descending score, with order-statistic access to the k-th
// score Sk.
//
// Like the threshold trees, R is tiered: at engine scale the typical
// query's R holds tens of documents (k plus the unverified fringe the
// threshold search consumed), and a pointer-based ordered map costs
// ~130 bytes per document across two allocations. The small tier stores
// R as two parallel sorted slices — (score desc, doc asc) result order
// and doc order — at 32 bytes per document with zero per-entry
// allocation; a set crossing promoteAt documents promotes to a skip
// list plus hash map and demotes back on shrink with hysteresis. Every
// operation is answer-identical in both tiers: the total order is the
// same, only the representation changes.
package topk

import (
	"sort"

	"ita/internal/model"
	"ita/internal/skiplist"
)

type entry struct {
	score float64
	doc   model.DocID
}

// Higher scores first; ties broken by ascending doc id. This matches
// model.SortScored so engine outputs are directly comparable.
func entryLess(a, b entry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.doc < b.doc
}

// docScore is one small-tier entry of the doc-ordered index.
type docScore struct {
	doc   model.DocID
	score float64
}

// Tier crossover for R. The small tier's 16-byte-entry memmoves stay
// cheaper than a skip-list insert (one allocation plus a pointer walk)
// into the hundreds, and the typical R never leaves the small tier;
// the thresholds only exist for the Zipf-head queries whose consumed
// region genuinely holds thousands of documents.
const (
	promoteAt = 256
	demoteAt  = 64
)

// ResultSet is R for a single query. The zero value is not usable; call
// NewResultSet.
type ResultSet struct {
	owner model.QueryID
	seed  uint64

	// Small tier: parallel sorted slices. order is result order
	// (score desc, doc asc); docs is ascending doc order.
	order []entry
	docs  []docScore

	// Large tier, nil while small: score order + doc→score map.
	sl    *skiplist.List[entry, struct{}]
	byDoc map[model.DocID]float64

	// Copy-on-publish cache: the last frozen top-k, invalidated by any
	// mutation. Freezing an unchanged result set returns the same
	// pointer, which is what makes per-epoch publication cost
	// proportional to the queries an epoch actually touched.
	frozen  *Frozen
	frozenK int
}

// Frozen is an immutable snapshot of a result set's top-k, taken at a
// publication boundary. Holders may read it from any goroutine without
// synchronization; nobody may mutate it.
type Frozen struct {
	// Query is the external id of the query the snapshot belongs to.
	// Readers resolving a query through a reused dense publication slot
	// validate ownership against it (see internal/core/view.go).
	Query model.QueryID
	// Docs is the top-k in descending score order (ties by ascending
	// document id), never nil.
	Docs []model.ScoredDoc
}

// NewResultSet returns an empty result set owned by query owner.
func NewResultSet(seed uint64, owner model.QueryID) *ResultSet {
	return &ResultSet{seed: seed, owner: owner}
}

// Freeze returns an immutable snapshot of the current top-k. The
// snapshot is cached: freezing again without an intervening Add or
// Remove returns the identical *Frozen, so publishing an untouched
// query is a pointer comparison away from free.
func (r *ResultSet) Freeze(k int) *Frozen {
	if r.frozen != nil && r.frozenK == k {
		return r.frozen
	}
	r.frozen = &Frozen{Query: r.owner, Docs: r.Top(k)}
	r.frozenK = k
	return r.frozen
}

// Len returns the number of documents in R.
func (r *ResultSet) Len() int {
	if r.sl != nil {
		return r.sl.Len()
	}
	return len(r.order)
}

// docIdx returns the small-tier doc-index position of doc and whether
// it is present. Hand-rolled binary search: this sits on the per-event
// hot path (every R add/remove/membership test at engine scale), where
// sort.Search's closure call per halving step is measurable.
func (r *ResultSet) docIdx(doc model.DocID) (int, bool) {
	// Endpoint fast paths. Sliding-window streams with monotonically
	// assigned document ids hit these almost always: an expiring
	// document is the window's oldest (at or below position 0) and an
	// arriving one its newest (past the end), so both membership tests
	// touch one cache line instead of a log-width pointer chase through
	// a cold slice. Non-monotonic id assignment just falls through.
	if n := len(r.docs); n == 0 || doc <= r.docs[0].doc {
		return 0, n > 0 && r.docs[0].doc == doc
	} else if doc > r.docs[n-1].doc {
		return n, false
	}
	lo, hi := 1, len(r.docs)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.docs[mid].doc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(r.docs) && r.docs[lo].doc == doc
}

// orderIdx returns the small-tier result-order position of e: the first
// index whose entry does not sort before e (same contract as
// sort.Search over !entryLess, without the closure calls).
func (r *ResultSet) orderIdx(e entry) int {
	lo, hi := 0, len(r.order)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(r.order[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// promote rebuilds the small tier into the skip list + map.
func (r *ResultSet) promote() {
	r.sl = skiplist.New[entry, struct{}](entryLess, r.seed)
	r.byDoc = make(map[model.DocID]float64, len(r.order))
	for _, e := range r.order {
		r.sl.Insert(e, struct{}{})
		r.byDoc[e.doc] = e.score
	}
	r.order, r.docs = nil, nil
}

// demote rebuilds the skip list back into the small tier.
func (r *ResultSet) demote() {
	n := r.sl.Len()
	r.order = make([]entry, 0, n)
	r.docs = make([]docScore, 0, n)
	for it := r.sl.First(); it.Valid(); it.Next() {
		r.order = append(r.order, it.Key())
	}
	for _, e := range r.order {
		r.docs = append(r.docs, docScore{doc: e.doc, score: e.score})
	}
	sort.Slice(r.docs, func(i, j int) bool { return r.docs[i].doc < r.docs[j].doc })
	r.sl, r.byDoc = nil, nil
}

// Add inserts document doc with the given score. Adding a document that
// is already present panics: scores are immutable while a document is in
// the window, so a re-add indicates an engine bug.
func (r *ResultSet) Add(doc model.DocID, score float64) {
	r.frozen = nil
	if r.sl != nil {
		if _, dup := r.byDoc[doc]; dup {
			panic("topk: document added twice")
		}
		r.byDoc[doc] = score
		r.sl.Insert(entry{score: score, doc: doc}, struct{}{})
		return
	}
	di, present := r.docIdx(doc)
	if present {
		panic("topk: document added twice")
	}
	e := entry{score: score, doc: doc}
	oi := r.orderIdx(e)
	r.order = append(r.order, entry{})
	copy(r.order[oi+1:], r.order[oi:])
	r.order[oi] = e
	r.docs = append(r.docs, docScore{})
	copy(r.docs[di+1:], r.docs[di:])
	r.docs[di] = docScore{doc: doc, score: score}
	if len(r.order) > promoteAt {
		r.promote()
	}
}

// Remove deletes doc from R, reporting whether it was present.
func (r *ResultSet) Remove(doc model.DocID) bool {
	if r.sl != nil {
		score, ok := r.byDoc[doc]
		if !ok {
			return false
		}
		r.frozen = nil
		delete(r.byDoc, doc)
		r.sl.Delete(entry{score: score, doc: doc})
		if r.sl.Len() < demoteAt {
			r.demote()
		}
		return true
	}
	di, present := r.docIdx(doc)
	if !present {
		return false
	}
	r.frozen = nil
	score := r.docs[di].score
	if di == 0 {
		// FIFO fast path: under monotonic doc ids the expiring window
		// document is the oldest, which sorts first. Slicing the front
		// off instead of shifting every entry leaves the vacated slot
		// pinned until a later append outgrows the backing array, a
		// bounded overhead traded for O(1) expiry.
		r.docs = r.docs[1:]
	} else {
		copy(r.docs[di:], r.docs[di+1:])
		r.docs = r.docs[:len(r.docs)-1]
	}
	e := entry{score: score, doc: doc}
	oi := r.orderIdx(e)
	copy(r.order[oi:], r.order[oi+1:])
	r.order = r.order[:len(r.order)-1]
	return true
}

// Score returns doc's stored score.
func (r *ResultSet) Score(doc model.DocID) (float64, bool) {
	if r.sl != nil {
		s, ok := r.byDoc[doc]
		return s, ok
	}
	if i, ok := r.docIdx(doc); ok {
		return r.docs[i].score, true
	}
	return 0, false
}

// Contains reports whether doc is in R.
func (r *ResultSet) Contains(doc model.DocID) bool {
	_, ok := r.Score(doc)
	return ok
}

// Kth returns the k-th best score Sk (1-based), or 0 when R holds fewer
// than k documents — the identity under which any positive-scoring
// document beats an unfilled result slot.
func (r *ResultSet) Kth(k int) float64 {
	if k <= 0 || r.Len() < k {
		return 0
	}
	if r.sl != nil {
		e, _ := r.sl.At(k - 1)
		return e.score
	}
	return r.order[k-1].score
}

// Rank returns the 0-based rank doc currently occupies (0 = best). The
// second result is false when doc is not in R.
func (r *ResultSet) Rank(doc model.DocID) (int, bool) {
	score, ok := r.Score(doc)
	if !ok {
		return 0, false
	}
	e := entry{score: score, doc: doc}
	if r.sl != nil {
		return r.sl.Rank(e), true
	}
	return r.orderIdx(e), true
}

// Top returns the best min(k, Len) documents in result order.
func (r *ResultSet) Top(k int) []model.ScoredDoc {
	n := r.Len()
	if k < n {
		n = k
	}
	out := make([]model.ScoredDoc, 0, n)
	if r.sl != nil {
		it := r.sl.First()
		for i := 0; i < n; i++ {
			e := it.Key()
			out = append(out, model.ScoredDoc{Doc: e.doc, Score: e.score})
			it.Next()
		}
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, model.ScoredDoc{Doc: r.order[i].doc, Score: r.order[i].score})
	}
	return out
}

// Worst returns the lowest-ranked document in R. It is used by the
// bounded view of the Naïve+kmax baseline to evict beyond kmax.
func (r *ResultSet) Worst() (model.ScoredDoc, bool) {
	n := r.Len()
	if n == 0 {
		return model.ScoredDoc{}, false
	}
	if r.sl != nil {
		e, _ := r.sl.At(n - 1)
		return model.ScoredDoc{Doc: e.doc, Score: e.score}, true
	}
	e := r.order[n-1]
	return model.ScoredDoc{Doc: e.doc, Score: e.score}, true
}

// Each calls fn for every document in R in result order.
func (r *ResultSet) Each(fn func(doc model.DocID, score float64)) {
	if r.sl != nil {
		for it := r.sl.First(); it.Valid(); it.Next() {
			e := it.Key()
			fn(e.doc, e.score)
		}
		return
	}
	for _, e := range r.order {
		fn(e.doc, e.score)
	}
}

// MemoryBytes estimates the result set's heap footprint per tier.
func (r *ResultSet) MemoryBytes() uint64 {
	const fixed = 120
	if r.sl != nil {
		const mapEntry = 48
		return fixed + r.sl.MemoryBytes() + uint64(len(r.byDoc))*mapEntry
	}
	return fixed + uint64(cap(r.order))*16 + uint64(cap(r.docs))*16
}
