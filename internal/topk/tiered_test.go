package topk

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ita/internal/model"
)

// refSet is a deliberately naive reference implementation: a plain map
// re-sorted on every read.
type refSet struct {
	m map[model.DocID]float64
}

func (r *refSet) sorted() []model.ScoredDoc {
	out := make([]model.ScoredDoc, 0, len(r.m))
	for d, s := range r.m {
		out = append(out, model.ScoredDoc{Doc: d, Score: s})
	}
	model.SortScored(out)
	return out
}

// TestTieredResultSetMatchesReference churns a ResultSet through the
// promote and demote thresholds with random adds/removes and checks
// every accessor against the reference model after each operation
// batch.
func TestTieredResultSetMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rs := NewResultSet(uint64(seed), 42)
			ref := &refSet{m: make(map[model.DocID]float64)}
			next := model.DocID(1)

			check := func(op int) {
				t.Helper()
				want := ref.sorted()
				if rs.Len() != len(want) {
					t.Fatalf("op %d: Len %d, want %d", op, rs.Len(), len(want))
				}
				// Full order via Each.
				var got []model.ScoredDoc
				rs.Each(func(d model.DocID, s float64) {
					got = append(got, model.ScoredDoc{Doc: d, Score: s})
				})
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("op %d: Each[%d] = %v, want %v", op, i, got[i], want[i])
					}
				}
				for _, k := range []int{1, 3, 10, len(want)} {
					wantK := 0.0
					if k >= 1 && k <= len(want) {
						wantK = want[k-1].Score
					}
					if gk := rs.Kth(k); gk != wantK {
						t.Fatalf("op %d: Kth(%d) = %g, want %g", op, k, gk, wantK)
					}
					top := rs.Top(k)
					n := k
					if n > len(want) {
						n = len(want)
					}
					for i := 0; i < n; i++ {
						if top[i] != want[i] {
							t.Fatalf("op %d: Top(%d)[%d] = %v, want %v", op, k, i, top[i], want[i])
						}
					}
				}
				if len(want) > 0 {
					if w, ok := rs.Worst(); !ok || w != want[len(want)-1] {
						t.Fatalf("op %d: Worst = %v, want %v", op, w, want[len(want)-1])
					}
					// Spot-check rank/score/contains on a few members.
					for i := 0; i < 3; i++ {
						e := want[rng.Intn(len(want))]
						if rank, ok := rs.Rank(e.Doc); !ok || want[rank] != e {
							t.Fatalf("op %d: Rank(%d) = %v", op, e.Doc, rank)
						}
						if s, ok := rs.Score(e.Doc); !ok || s != e.Score {
							t.Fatalf("op %d: Score(%d) = %g, want %g", op, e.Doc, s, e.Score)
						}
					}
				}
				if rs.Contains(model.DocID(1 << 40)) {
					t.Fatalf("op %d: Contains on absent doc", op)
				}
			}

			for op := 0; op < 3000; op++ {
				grow := 4
				if op > 2000 {
					grow = 1 // shrink phase: drain through demoteAt
				}
				if rng.Intn(6) < grow || len(ref.m) == 0 {
					// Scores from a small set force ties.
					score := float64(rng.Intn(16)) / 16
					rs.Add(next, score)
					ref.m[next] = score
					next++
				} else {
					keys := make([]model.DocID, 0, len(ref.m))
					for d := range ref.m {
						keys = append(keys, d)
					}
					sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
					d := keys[rng.Intn(len(keys))]
					if !rs.Remove(d) {
						t.Fatalf("op %d: Remove(%d) = false", op, d)
					}
					delete(ref.m, d)
					if rs.Remove(d) {
						t.Fatalf("op %d: double Remove(%d) = true", op, d)
					}
				}
				if op%37 == 0 {
					check(op)
				}
			}
			check(3000)
			// Frozen cache across tiers: mutate, freeze, freeze again.
			f1 := rs.Freeze(5)
			if f2 := rs.Freeze(5); f1 != f2 {
				t.Fatal("Freeze not cached while unmutated")
			}
			if f1.Query != 42 {
				t.Fatalf("Frozen.Query = %d, want 42", f1.Query)
			}
			rs.Add(next, 0.5)
			if f3 := rs.Freeze(5); f3 == f1 {
				t.Fatal("Freeze cache not invalidated by Add")
			}
		})
	}
}

// TestResultSetTierTransitions pins the promote/demote boundaries.
func TestResultSetTierTransitions(t *testing.T) {
	rs := NewResultSet(3, 1)
	for i := 0; i < promoteAt; i++ {
		rs.Add(model.DocID(i+1), float64(i%13))
	}
	if rs.sl != nil {
		t.Fatalf("promoted at %d entries, promoteAt is %d", rs.Len(), promoteAt)
	}
	rs.Add(model.DocID(promoteAt+1), 0.5)
	if rs.sl == nil {
		t.Fatal("not promoted past promoteAt")
	}
	for rs.Len() >= demoteAt {
		w, _ := rs.Worst()
		rs.Remove(w.Doc)
	}
	if rs.sl != nil {
		t.Fatalf("not demoted below demoteAt (%d entries)", rs.Len())
	}
	if rs.Len() != demoteAt-1 {
		t.Fatalf("Len = %d after drain, want %d", rs.Len(), demoteAt-1)
	}
}
