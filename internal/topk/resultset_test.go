package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ita/internal/model"
)

func TestAddRemoveScoreRank(t *testing.T) {
	r := NewResultSet(1, 1)
	r.Add(10, 0.5)
	r.Add(20, 0.9)
	r.Add(30, 0.7)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if s, ok := r.Score(30); !ok || s != 0.7 {
		t.Fatalf("Score(30) = %g,%v", s, ok)
	}
	if rank, ok := r.Rank(20); !ok || rank != 0 {
		t.Fatalf("Rank(20) = %d,%v", rank, ok)
	}
	if rank, ok := r.Rank(10); !ok || rank != 2 {
		t.Fatalf("Rank(10) = %d,%v", rank, ok)
	}
	if !r.Remove(30) {
		t.Fatal("Remove failed")
	}
	if r.Remove(30) {
		t.Fatal("second Remove succeeded")
	}
	if r.Contains(30) {
		t.Fatal("Contains after Remove")
	}
	if rank, _ := r.Rank(10); rank != 1 {
		t.Fatalf("Rank(10) after removal = %d", rank)
	}
}

func TestKth(t *testing.T) {
	r := NewResultSet(1, 1)
	if r.Kth(1) != 0 {
		t.Fatal("Kth on empty should be 0")
	}
	r.Add(1, 0.9)
	r.Add(2, 0.7)
	r.Add(3, 0.5)
	if got := r.Kth(1); got != 0.9 {
		t.Fatalf("Kth(1) = %g", got)
	}
	if got := r.Kth(3); got != 0.5 {
		t.Fatalf("Kth(3) = %g", got)
	}
	if got := r.Kth(4); got != 0 {
		t.Fatalf("Kth(4) = %g, want 0 (fewer than k docs)", got)
	}
	if got := r.Kth(0); got != 0 {
		t.Fatalf("Kth(0) = %g", got)
	}
}

func TestTopOrderAndTieBreak(t *testing.T) {
	r := NewResultSet(1, 1)
	r.Add(5, 0.5)
	r.Add(3, 0.5) // tie: lower doc id ranks first
	r.Add(9, 0.9)
	r.Add(1, 0.1)
	got := r.Top(3)
	want := []model.ScoredDoc{{Doc: 9, Score: 0.9}, {Doc: 3, Score: 0.5}, {Doc: 5, Score: 0.5}}
	if len(got) != 3 {
		t.Fatalf("Top(3) len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Asking beyond Len truncates.
	if got := r.Top(99); len(got) != 4 {
		t.Fatalf("Top(99) len = %d", len(got))
	}
}

func TestWorst(t *testing.T) {
	r := NewResultSet(1, 1)
	if _, ok := r.Worst(); ok {
		t.Fatal("Worst on empty succeeded")
	}
	r.Add(1, 0.9)
	r.Add(2, 0.1)
	r.Add(3, 0.5)
	w, ok := r.Worst()
	if !ok || w.Doc != 2 || w.Score != 0.1 {
		t.Fatalf("Worst = %v,%v", w, ok)
	}
}

func TestDoubleAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	r := NewResultSet(1, 1)
	r.Add(1, 0.5)
	r.Add(1, 0.6)
}

func TestEachVisitsInOrder(t *testing.T) {
	r := NewResultSet(1, 1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		r.Add(model.DocID(i), rng.Float64())
	}
	prev := 2.0
	var prevDoc model.DocID
	n := 0
	r.Each(func(doc model.DocID, score float64) {
		if score > prev || (score == prev && doc < prevDoc) {
			t.Fatalf("Each out of order at %d", n)
		}
		prev, prevDoc = score, doc
		n++
	})
	if n != 200 {
		t.Fatalf("Each visited %d", n)
	}
}

// Property: ResultSet order statistics agree with a sorted slice model
// under random add/remove workloads with tied scores.
func TestAgainstSliceModel(t *testing.T) {
	f := func(ops []uint16) bool {
		r := NewResultSet(7, 1)
		ref := map[model.DocID]float64{}
		for _, op := range ops {
			doc := model.DocID(op & 0x3f)
			score := float64((op>>6)&0x7) / 8 // quantized: ties likely
			if op>>15 == 0 {
				if _, ok := ref[doc]; !ok {
					ref[doc] = score
					r.Add(doc, score)
				}
			} else {
				_, ok := ref[doc]
				if r.Remove(doc) != ok {
					return false
				}
				delete(ref, doc)
			}
		}
		if r.Len() != len(ref) {
			return false
		}
		var docs []model.ScoredDoc
		for d, s := range ref {
			docs = append(docs, model.ScoredDoc{Doc: d, Score: s})
		}
		model.SortScored(docs)
		got := r.Top(len(docs))
		for i := range docs {
			if got[i] != docs[i] {
				return false
			}
			if k := r.Kth(i + 1); k != docs[i].Score {
				return false
			}
			rank, ok := r.Rank(docs[i].Doc)
			if !ok || rank != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Guard against float subtleties: scores of 0 are legal in the set even
// though engines never store them; ordering must remain total.
func TestZeroScores(t *testing.T) {
	r := NewResultSet(1, 1)
	r.Add(1, 0)
	r.Add(2, 0)
	r.Add(3, 0.5)
	got := r.Top(3)
	want := []model.ScoredDoc{{Doc: 3, Score: 0.5}, {Doc: 1, Score: 0}, {Doc: 2, Score: 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFreezeCaching checks the copy-on-publish contract: freezing an
// unmutated set returns the identical snapshot pointer (publication of
// an untouched query is free), any mutation invalidates the cache, and
// a frozen snapshot is immune to later mutations.
func TestFreezeCaching(t *testing.T) {
	r := NewResultSet(1, 1)
	r.Add(10, 0.5)
	r.Add(20, 0.9)
	f1 := r.Freeze(2)
	if len(f1.Docs) != 2 || f1.Docs[0].Doc != 20 || f1.Docs[1].Doc != 10 {
		t.Fatalf("Freeze = %v", f1.Docs)
	}
	if f2 := r.Freeze(2); f2 != f1 {
		t.Fatal("Freeze of an unmutated set returned a new snapshot")
	}
	// A different k must not serve the cached snapshot.
	if f2 := r.Freeze(1); f2 == f1 || len(f2.Docs) != 1 {
		t.Fatalf("Freeze(1) = %v", f2.Docs)
	}
	r.Add(30, 0.7)
	f3 := r.Freeze(2)
	if f3 == f1 {
		t.Fatal("Add did not invalidate the frozen snapshot")
	}
	if len(f3.Docs) != 2 || f3.Docs[1].Doc != 30 {
		t.Fatalf("Freeze after Add = %v", f3.Docs)
	}
	// The old snapshot is immutable: it still shows its boundary.
	if len(f1.Docs) != 2 || f1.Docs[1].Doc != 10 {
		t.Fatalf("old snapshot mutated: %v", f1.Docs)
	}
	r.Remove(20)
	if f4 := r.Freeze(2); f4 == f3 || f4.Docs[0].Doc != 30 {
		t.Fatalf("Freeze after Remove = %v", f4.Docs)
	}
	// Freezing deeper than Len returns what exists, non-nil.
	empty := NewResultSet(2, 1)
	if f := empty.Freeze(3); f == nil || f.Docs == nil || len(f.Docs) != 0 {
		t.Fatalf("empty Freeze = %#v", f)
	}
}
