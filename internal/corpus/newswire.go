package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"ita/internal/stats"
)

// Newswire generates small English-like news articles for the runnable
// examples: plausible sentences over topic lexicons, so that analyzer →
// engine pipelines can be demonstrated end to end on readable text.
// It is a demonstration aid, not the benchmark corpus.
type Newswire struct {
	rng *rand.Rand
	seq int
}

// NewNewswire returns a deterministic article generator.
func NewNewswire(seed int64) *Newswire {
	return &Newswire{rng: stats.NewRand(seed)}
}

// Topics returns the topic names Article accepts.
func Topics() []string {
	out := make([]string, 0, len(topicLex))
	for _, t := range topicOrder {
		out = append(out, t)
	}
	return out
}

var topicOrder = []string{"markets", "energy", "technology", "security", "health", "politics"}

var topicLex = map[string]struct {
	actors  []string
	actions []string
	objects []string
	context []string
}{
	"markets": {
		actors:  []string{"the central bank", "Galaxy Holdings", "Meridian Capital", "the exchange", "bond traders", "Harbor Funds"},
		actions: []string{"raised", "cut", "reported", "forecast", "downgraded", "upgraded"},
		objects: []string{"interest rates", "quarterly earnings", "its growth outlook", "dividend guidance", "share buybacks", "credit ratings"},
		context: []string{"amid volatile trading", "after strong inflation data", "despite weak consumer demand", "as markets rallied", "while futures slipped"},
	},
	"energy": {
		actors:  []string{"Northfield Petroleum", "the pipeline operator", "Atlas Refining", "the oil cartel", "Ridgeline Solar"},
		actions: []string{"expanded", "halted", "announced", "acquired", "commissioned"},
		objects: []string{"crude production", "a refinery upgrade", "an offshore platform", "wind turbine capacity", "natural gas exports"},
		context: []string{"as crude prices surged", "after a supply disruption", "under new emissions rules", "amid grid failures", "during the maintenance season"},
	},
	"technology": {
		actors:  []string{"Helix Semiconductors", "the software maker", "Quantum Dynamics", "the chip foundry", "Nimbus Cloud"},
		actions: []string{"unveiled", "patched", "shipped", "recalled", "open-sourced"},
		objects: []string{"a faster processor", "its database engine", "a security vulnerability", "the new handset", "a machine learning platform"},
		context: []string{"ahead of the developer conference", "after benchmark results leaked", "following a data breach", "as rivals slashed prices", "despite component shortages"},
	},
	"security": {
		actors:  []string{"investigators", "the security agency", "border officials", "analysts", "the task force"},
		actions: []string{"intercepted", "tracked", "seized", "disrupted", "identified"},
		objects: []string{"a smuggling network", "explosives material", "a weapons shipment", "a money laundering ring", "forged documents"},
		context: []string{"near the eastern border", "after a months-long operation", "with international cooperation", "following an anonymous tip", "during routine screening"},
	},
	"health": {
		actors:  []string{"the health ministry", "Crestview Labs", "hospital networks", "the vaccine consortium", "regulators"},
		actions: []string{"approved", "trialed", "recalled", "distributed", "licensed"},
		objects: []string{"a new antibiotic", "the influenza vaccine", "a diagnostic kit", "gene therapy treatment", "a surgical device"},
		context: []string{"after promising trial results", "amid a seasonal outbreak", "under accelerated review", "despite supply constraints", "in rural clinics"},
	},
	"politics": {
		actors:  []string{"the senate committee", "the trade delegation", "city councillors", "the opposition party", "the finance minister"},
		actions: []string{"debated", "ratified", "vetoed", "proposed", "postponed"},
		objects: []string{"the infrastructure bill", "a tariff agreement", "electoral reforms", "the annual budget", "a housing initiative"},
		context: []string{"after weeks of negotiation", "before the summer recess", "amid public protests", "with bipartisan support", "despite legal challenges"},
	},
}

var fillerSentences = []string{
	"Officials declined to comment on the timetable.",
	"Analysts said the move was widely expected.",
	"The announcement follows months of speculation.",
	"Further details are expected later this week.",
	"Observers called the development significant.",
	"Regional partners welcomed the decision.",
}

// Article generates one article for the topic; unknown topics fall back
// to a random one. Articles are 3–6 sentences.
func (n *Newswire) Article(topic string) string {
	lex, ok := topicLex[topic]
	if !ok {
		topic = topicOrder[n.rng.Intn(len(topicOrder))]
		lex = topicLex[topic]
	}
	n.seq++
	var b strings.Builder
	sentences := 3 + n.rng.Intn(4)
	for i := 0; i < sentences; i++ {
		if i > 0 && n.rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "%s ", fillerSentences[n.rng.Intn(len(fillerSentences))])
			continue
		}
		fmt.Fprintf(&b, "%s %s %s %s. ",
			title(lex.actors[n.rng.Intn(len(lex.actors))]),
			lex.actions[n.rng.Intn(len(lex.actions))],
			lex.objects[n.rng.Intn(len(lex.objects))],
			lex.context[n.rng.Intn(len(lex.context))])
	}
	return strings.TrimSpace(b.String())
}

// Mixed generates an article drawn from a random topic, returning the
// topic alongside the text.
func (n *Newswire) Mixed() (topic, text string) {
	topic = topicOrder[n.rng.Intn(len(topicOrder))]
	return topic, n.Article(topic)
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
