package corpus

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// RawDoc is one loaded document: an identifier (file name or DOCNO) and
// its text. Loaders produce raw text; analysis and weighting happen in
// the public pipeline.
type RawDoc struct {
	Name string
	Text string
}

// LoadDir reads every regular file with one of the given extensions
// (e.g. ".txt") under dir, one document per file, sorted by path for
// determinism. With no extensions, every regular file is loaded.
func LoadDir(dir string, exts ...string) ([]RawDoc, error) {
	var docs []RawDoc
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		if len(exts) > 0 {
			ok := false
			for _, e := range exts {
				if strings.EqualFold(filepath.Ext(path), e) {
					ok = true
					break
				}
			}
			if !ok {
				return nil
			}
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("corpus: read %s: %w", path, err)
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		docs = append(docs, RawDoc{Name: rel, Text: string(b)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	return docs, nil
}

// LoadTREC parses a TREC-style SGML file: documents wrapped in
// <DOC>...</DOC> with a <DOCNO>...</DOCNO> identifier, as used by the
// WSJ collection the paper streams. Text outside recognized tags within
// a document is treated as content.
func LoadTREC(path string) ([]RawDoc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	defer f.Close()

	var docs []RawDoc
	var cur strings.Builder
	var docno string
	inDoc := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "<DOC>":
			if inDoc {
				return nil, fmt.Errorf("corpus: %s:%d: nested <DOC>", path, lineNo)
			}
			inDoc = true
			docno = ""
			cur.Reset()
		case trimmed == "</DOC>":
			if !inDoc {
				return nil, fmt.Errorf("corpus: %s:%d: </DOC> without <DOC>", path, lineNo)
			}
			inDoc = false
			if docno == "" {
				docno = fmt.Sprintf("doc-%d", len(docs)+1)
			}
			docs = append(docs, RawDoc{Name: docno, Text: cur.String()})
		case strings.HasPrefix(trimmed, "<DOCNO>"):
			v := strings.TrimPrefix(trimmed, "<DOCNO>")
			v = strings.TrimSuffix(v, "</DOCNO>")
			docno = strings.TrimSpace(v)
		case inDoc:
			// Strip SGML tags; keep the text between and around them.
			stripped := stripTags(line)
			if strings.TrimSpace(stripped) == "" {
				continue
			}
			cur.WriteString(stripped)
			cur.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: scan %s: %w", path, err)
	}
	if inDoc {
		return nil, fmt.Errorf("corpus: %s: unterminated <DOC>", path)
	}
	return docs, nil
}

// stripTags removes <...> spans from a line, leaving surrounding text.
// Unterminated tags are kept verbatim rather than swallowing content.
func stripTags(line string) string {
	if !strings.Contains(line, "<") {
		return line
	}
	var b strings.Builder
	for {
		open := strings.IndexByte(line, '<')
		if open < 0 {
			b.WriteString(line)
			return b.String()
		}
		closeRel := strings.IndexByte(line[open:], '>')
		if closeRel < 0 {
			b.WriteString(line)
			return b.String()
		}
		b.WriteString(line[:open])
		line = line[open+closeRel+1:]
	}
}
