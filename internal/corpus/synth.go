// Package corpus supplies the document sources of the evaluation: a
// synthetic corpus calibrated to the statistics the paper reports for
// the WSJ collection (172,961 articles, 181,978 distinct terms after
// stopword removal), a small newswire text generator for the runnable
// examples, and a plain-text directory loader for users with a real
// corpus on disk.
//
// The WSJ collection itself is licensed TREC data and cannot ship with
// an open-source repository, so the benchmarks substitute the synthetic
// corpus; DESIGN.md §4 explains why the substitution preserves the
// cost behaviour of both algorithms.
package corpus

import (
	"fmt"
	"math/rand"
	"time"

	"ita/internal/model"
	"ita/internal/stats"
	"ita/internal/vsm"
)

// SynthConfig calibrates the synthetic corpus.
type SynthConfig struct {
	// DictSize is the dictionary size; the paper's WSJ dictionary has
	// 181,978 terms after stopword removal.
	DictSize int
	// ZipfS is the exponent of the term-popularity distribution.
	// Natural-language corpora follow Zipf's law with s ≈ 1 over the
	// head; the default of 1.2 also reproduces realistic Heaps-law
	// vocabulary growth (a large hapax tail), which governs how often a
	// uniformly drawn dictionary term matches any window document — the
	// quantity the Naïve baseline's rescan rate hinges on.
	ZipfS float64
	// LogMu and LogSigma parameterize the log-normal distribution of
	// distinct terms per document. The defaults give a median of ~148
	// and mean of ~177 distinct terms, in line with WSJ articles.
	LogMu, LogSigma float64
	// TFGeomP is the success probability of the geometric distribution
	// of within-document term frequencies (mean 1/p occurrences).
	TFGeomP float64
	// Seed makes the corpus reproducible.
	Seed int64
}

// WSJConfig returns the calibration used by all paper-reproduction
// experiments.
func WSJConfig() SynthConfig {
	return SynthConfig{
		DictSize: 181978,
		ZipfS:    1.2,
		LogMu:    5.0,
		LogSigma: 0.6,
		TFGeomP:  0.55,
		Seed:     20090329, // first day of ICDE 2009
	}
}

// Synth generates an endless stream of synthetic documents and random
// queries over a shared dictionary.
type Synth struct {
	cfg      SynthConfig
	rng      *rand.Rand
	zipf     *stats.Zipf
	weighter vsm.Weighter
	scratch  map[model.TermID]int
}

// NewSynth builds a generator; weighter converts raw frequencies into
// impact weights (vsm.Cosine{} for all paper experiments).
func NewSynth(cfg SynthConfig, weighter vsm.Weighter) (*Synth, error) {
	if cfg.DictSize <= 0 {
		return nil, fmt.Errorf("corpus: dictionary size %d", cfg.DictSize)
	}
	rng := stats.NewRand(cfg.Seed)
	z, err := stats.NewZipf(rng, cfg.ZipfS, cfg.DictSize)
	if err != nil {
		return nil, fmt.Errorf("corpus: zipf: %w", err)
	}
	return &Synth{
		cfg:      cfg,
		rng:      rng,
		zipf:     z,
		weighter: weighter,
		scratch:  make(map[model.TermID]int, 256),
	}, nil
}

// DictSize returns the dictionary size.
func (s *Synth) DictSize() int { return s.cfg.DictSize }

// nextLen draws a document's distinct-term count, clamped to [8, 2000]
// to keep pathological tails out of the cost measurements.
func (s *Synth) nextLen() int {
	n := int(stats.LogNormal(s.rng, s.cfg.LogMu, s.cfg.LogSigma))
	if n < 8 {
		n = 8
	}
	if n > 2000 {
		n = 2000
	}
	return n
}

// Freqs draws one document's raw term-frequency vector: nextLen distinct
// terms with Zipf-distributed identities and geometric frequencies.
func (s *Synth) Freqs() map[model.TermID]int {
	n := s.nextLen()
	freqs := make(map[model.TermID]int, n)
	for len(freqs) < n {
		t := model.TermID(s.zipf.Next())
		if _, dup := freqs[t]; dup {
			continue
		}
		freqs[t] = stats.Geometric(s.rng, s.cfg.TFGeomP)
	}
	return freqs
}

// Document draws one synthetic document with the given id and arrival
// time.
func (s *Synth) Document(id model.DocID, arrival time.Time) *model.Document {
	d, err := model.NewDocument(id, arrival, s.weighter.DocPostings(s.Freqs()))
	if err != nil {
		// The weighter produces sorted positive postings by
		// construction; a failure here is a programming error.
		panic(fmt.Sprintf("corpus: generated invalid document: %v", err))
	}
	return d
}

// Query draws a random continuous query of n distinct terms, each
// occurring once, as in the paper's workload ("terms selected randomly
// from the dictionary"). Uniform selection over the full dictionary
// makes most query terms rare — exactly the regime that separates ITA
// from Naïve.
func (s *Synth) Query(id model.QueryID, k, n int) *model.Query {
	freqs := make(map[model.TermID]int, n)
	for len(freqs) < n {
		freqs[model.TermID(s.rng.Intn(s.cfg.DictSize))] = 1
	}
	q, err := model.NewQuery(id, k, s.weighter.QueryTerms(freqs))
	if err != nil {
		panic(fmt.Sprintf("corpus: generated invalid query: %v", err))
	}
	return q
}

// PopularQuery draws a query whose terms follow the corpus Zipf
// distribution instead of the uniform one — a harder adversarial
// workload where query terms are common in documents (used by the
// ablation experiments).
func (s *Synth) PopularQuery(id model.QueryID, k, n int) *model.Query {
	if n > s.cfg.DictSize {
		n = s.cfg.DictSize
	}
	freqs := make(map[model.TermID]int, n)
	for len(freqs) < n {
		freqs[model.TermID(s.zipf.Next())] = 1
	}
	q, err := model.NewQuery(id, k, s.weighter.QueryTerms(freqs))
	if err != nil {
		panic(fmt.Sprintf("corpus: generated invalid query: %v", err))
	}
	return q
}
