package corpus

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ita/internal/model"
	"ita/internal/vsm"
)

func testConfig() SynthConfig {
	cfg := WSJConfig()
	cfg.DictSize = 5000 // keep alias-table construction cheap in tests
	return cfg
}

func TestSynthDocumentValidity(t *testing.T) {
	s, err := NewSynth(testConfig(), vsm.Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d := s.Document(model.DocID(i), time.Unix(int64(i), 0))
		if d.Terms() < 8 {
			t.Fatalf("doc %d has %d terms", i, d.Terms())
		}
		var norm float64
		for j, p := range d.Postings {
			if p.Weight <= 0 {
				t.Fatalf("non-positive weight in doc %d", i)
			}
			if j > 0 && d.Postings[j-1].Term >= p.Term {
				t.Fatalf("unsorted postings in doc %d", i)
			}
			norm += p.Weight * p.Weight
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("doc %d norm² = %g", i, norm)
		}
	}
}

func TestSynthDocLengthCalibration(t *testing.T) {
	cfg := WSJConfig()
	cfg.DictSize = 20000
	s, err := NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	const docs = 2000
	for i := 0; i < docs; i++ {
		total += len(s.Freqs())
	}
	mean := float64(total) / docs
	// Log-normal(5.0, 0.6) has mean ≈ exp(5.18) ≈ 177; the dedup loop
	// and clamping shift it slightly. Accept a broad band around the
	// WSJ-like target.
	if mean < 120 || mean > 240 {
		t.Fatalf("mean distinct terms per doc = %f, want ≈150-200", mean)
	}
}

func TestSynthZipfSkew(t *testing.T) {
	s, err := NewSynth(testConfig(), vsm.Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[model.TermID]int)
	for i := 0; i < 500; i++ {
		for tid := range s.Freqs() {
			counts[tid]++
		}
	}
	// Rank-0 term must appear in far more documents than a mid-rank
	// term.
	if counts[0] <= counts[2500] {
		t.Fatalf("no skew: df(term0)=%d df(term2500)=%d", counts[0], counts[2500])
	}
	if counts[0] < 100 {
		t.Fatalf("head term df=%d, expected near-ubiquity", counts[0])
	}
}

func TestSynthDeterminism(t *testing.T) {
	gen := func() *model.Document {
		s, err := NewSynth(testConfig(), vsm.Cosine{})
		if err != nil {
			t.Fatal(err)
		}
		return s.Document(1, time.Unix(0, 0))
	}
	a, b := gen(), gen()
	if len(a.Postings) != len(b.Postings) {
		t.Fatal("same seed, different doc length")
	}
	for i := range a.Postings {
		if a.Postings[i] != b.Postings[i] {
			t.Fatal("same seed, different postings")
		}
	}
}

func TestSynthQuery(t *testing.T) {
	s, err := NewSynth(testConfig(), vsm.Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	q := s.Query(1, 10, 4)
	if q.K != 10 || len(q.Terms) != 4 {
		t.Fatalf("query k=%d n=%d", q.K, len(q.Terms))
	}
	// Four distinct terms with f=1 each: cosine weights 1/2.
	for _, qt := range q.Terms {
		if math.Abs(qt.Weight-0.5) > 1e-12 {
			t.Fatalf("term weight %g, want 0.5", qt.Weight)
		}
	}
	p := s.PopularQuery(2, 5, 3)
	if p.K != 5 || len(p.Terms) != 3 {
		t.Fatalf("popular query k=%d n=%d", p.K, len(p.Terms))
	}
}

func TestSynthRejectsBadConfig(t *testing.T) {
	if _, err := NewSynth(SynthConfig{DictSize: 0, ZipfS: 1}, vsm.Cosine{}); err == nil {
		t.Fatal("DictSize 0 accepted")
	}
	if _, err := NewSynth(SynthConfig{DictSize: 10, ZipfS: -1}, vsm.Cosine{}); err == nil {
		t.Fatal("negative s accepted")
	}
}

func TestNewswireArticles(t *testing.T) {
	n := NewNewswire(1)
	for _, topic := range Topics() {
		text := n.Article(topic)
		if len(text) < 40 {
			t.Fatalf("topic %s: article too short: %q", topic, text)
		}
		if !strings.HasSuffix(text, ".") {
			t.Fatalf("topic %s: article not sentence-terminated: %q", topic, text)
		}
	}
	// Unknown topic falls back rather than failing.
	if text := n.Article("no-such-topic"); len(text) < 40 {
		t.Fatalf("fallback article too short: %q", text)
	}
	topic, text := n.Mixed()
	if topic == "" || text == "" {
		t.Fatal("Mixed returned empty")
	}
}

func TestNewswireSecurityLexicon(t *testing.T) {
	// The security topic must mention its lexicon so the email-threat
	// example has something to match.
	n := NewNewswire(7)
	joined := ""
	for i := 0; i < 20; i++ {
		joined += n.Article("security") + " "
	}
	for _, w := range []string{"explosives", "weapons"} {
		if !strings.Contains(joined, w) {
			t.Fatalf("20 security articles never mention %q", w)
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.txt", "second doc")
	write("a.txt", "first doc")
	write("skip.md", "not loaded")

	docs, err := LoadDir(dir, ".txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Name != "a.txt" || docs[1].Name != "b.txt" {
		t.Fatalf("docs = %+v", docs)
	}
	if docs[0].Text != "first doc" {
		t.Fatalf("text = %q", docs[0].Text)
	}

	all, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("unfiltered load found %d docs", len(all))
	}
}

func TestLoadTREC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wsj.sgml")
	content := `<DOC>
<DOCNO> WSJ870324-0001 </DOCNO>
<HL>
Some headline
</HL>
<TEXT>
Stock markets rallied on Tuesday.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ870324-0002 </DOCNO>
<TEXT>
Oil futures slipped.
</TEXT>
</DOC>
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := LoadTREC(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs", len(docs))
	}
	if docs[0].Name != "WSJ870324-0001" {
		t.Fatalf("docno = %q", docs[0].Name)
	}
	if !strings.Contains(docs[0].Text, "Stock markets rallied") {
		t.Fatalf("text = %q", docs[0].Text)
	}
	if strings.Contains(docs[0].Text, "<TEXT>") {
		t.Fatalf("markup leaked into text: %q", docs[0].Text)
	}
	// Headline text survives; its inline tags do not.
	if !strings.Contains(docs[0].Text, "Some headline") {
		t.Fatalf("headline content lost: %q", docs[0].Text)
	}
	if strings.Contains(docs[0].Text, "<HL>") {
		t.Fatalf("inline tag leaked: %q", docs[0].Text)
	}
}

func TestStripTags(t *testing.T) {
	cases := map[string]string{
		"plain text":             "plain text",
		"<HL> Headline </HL>":    " Headline ",
		"a <b>bold</b> word":     "a bold word",
		"unterminated < bracket": "unterminated < bracket",
		"<><><>":                 "",
		"tail <tag":              "tail <tag",
	}
	for in, want := range cases {
		if got := stripTags(in); got != want {
			t.Errorf("stripTags(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadTRECMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"nested.sgml":       "<DOC>\n<DOC>\n</DOC>\n</DOC>\n",
		"unterminated.sgml": "<DOC>\ntext\n",
		"stray.sgml":        "</DOC>\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTREC(path); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}
