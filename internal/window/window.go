// Package window defines the sliding-window validity policies of the
// paper: count-based windows of the N most recent documents and
// time-based windows covering a fixed span of arrival time.
package window

import (
	"fmt"
	"time"
)

// Policy decides when the oldest document of the FIFO store has fallen
// out of the sliding window. The engine consults it after every arrival
// (and on explicit clock advances for time-based windows) and expires
// documents from the front until Expired returns false.
type Policy interface {
	// Expired reports whether a document that arrived at `oldest` is no
	// longer valid given the current clock `now` and the number of
	// currently stored documents `count` (including the new arrival).
	Expired(oldest, now time.Time, count int) bool
	// String describes the policy for reports.
	String() string
}

// Count keeps the N most recent documents, the paper's primary window
// type ("the 500 most recent ones").
type Count struct{ N int }

// Expired implements Policy: the oldest document expires whenever more
// than N documents are stored.
func (c Count) Expired(oldest, now time.Time, count int) bool { return count > c.N }

// String implements Policy.
func (c Count) String() string { return fmt.Sprintf("count(%d)", c.N) }

// Span keeps documents received in the last D of stream time ("received
// in the last 15 minutes").
type Span struct{ D time.Duration }

// Expired implements Policy: the oldest document expires once its age
// reaches the span.
func (s Span) Expired(oldest, now time.Time, count int) bool {
	return now.Sub(oldest) >= s.D
}

// String implements Policy.
func (s Span) String() string { return fmt.Sprintf("span(%s)", s.D) }
