package window

import (
	"testing"
	"time"
)

func TestCountPolicy(t *testing.T) {
	p := Count{N: 3}
	now := time.Unix(100, 0)
	old := time.Unix(0, 0)
	if p.Expired(old, now, 3) {
		t.Fatal("count 3 of 3 should be valid")
	}
	if !p.Expired(old, now, 4) {
		t.Fatal("count 4 of 3 should expire")
	}
	if p.String() != "count(3)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestSpanPolicy(t *testing.T) {
	p := Span{D: time.Minute}
	base := time.Unix(0, 0)
	if p.Expired(base, base.Add(59*time.Second), 1000) {
		t.Fatal("59s old should be valid in a 1m window")
	}
	if !p.Expired(base, base.Add(time.Minute), 1) {
		t.Fatal("exactly 1m old should expire")
	}
	if !p.Expired(base, base.Add(time.Hour), 1) {
		t.Fatal("1h old should expire")
	}
	if p.String() != "span(1m0s)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestSpanIgnoresCount(t *testing.T) {
	p := Span{D: time.Minute}
	base := time.Unix(0, 0)
	if p.Expired(base, base.Add(time.Second), 1_000_000) {
		t.Fatal("span policy must not expire on count")
	}
}

func TestCountIgnoresTime(t *testing.T) {
	p := Count{N: 10}
	base := time.Unix(0, 0)
	if p.Expired(base, base.Add(1000*time.Hour), 5) {
		t.Fatal("count policy must not expire on age")
	}
}
