// Package stats supplies the probabilistic substrate for workload
// generation and measurement: deterministic random sources, an
// alias-method sampler, bounded Zipf distributions with arbitrary
// exponent (math/rand's Zipf requires s > 1; the corpus calibration
// needs s ≈ 1), geometric term-frequency draws, Poisson arrival
// processes, and summary statistics for the experiment harness.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"time"
)

// NewRand returns a deterministic random source. Every generator in the
// repository derives from an explicit seed so that corpora, query sets
// and streams are reproducible run to run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ErrBadWeights is returned by NewAlias for empty or non-positive-sum
// weight vectors.
var ErrBadWeights = errors.New("stats: weights must be non-empty with positive finite sum")

// Alias samples from a fixed discrete distribution in O(1) per draw
// using Walker's alias method.
type Alias struct {
	prob  []float64
	alias []int32
	r     *rand.Rand
}

// NewAlias builds an alias table over the given unnormalized weights.
// Negative weights are rejected; zero weights are allowed and simply
// never drawn.
func NewAlias(r *rand.Rand, weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrBadWeights
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, ErrBadWeights
		}
		sum += w
	}
	if sum <= 0 {
		return nil, ErrBadWeights
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n), r: r}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = g
		scaled[g] -= 1 - scaled[s]
		if scaled[g] < 1 {
			large = large[:len(large)-1]
			small = append(small, g)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a, nil
}

// Next draws one index distributed according to the table's weights.
func (a *Alias) Next() int {
	i := a.r.Intn(len(a.prob))
	if a.r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the support size.
func (a *Alias) Len() int { return len(a.prob) }

// Zipf samples ranks from a bounded Zipf distribution: P(rank k) ∝
// 1/(k+1)^s over k ∈ {0..n-1}. Any s ≥ 0 is supported (s = 0 is
// uniform), unlike math/rand.Zipf which requires s > 1.
type Zipf struct {
	a *Alias
	s float64
	n int
}

// NewZipf builds a bounded Zipf sampler. It precomputes the weight
// vector once, so construction is O(n) and sampling O(1).
func NewZipf(r *rand.Rand, s float64, n int) (*Zipf, error) {
	if n <= 0 || s < 0 {
		return nil, ErrBadWeights
	}
	w := make([]float64, n)
	for k := 0; k < n; k++ {
		w[k] = math.Pow(float64(k+1), -s)
	}
	a, err := NewAlias(r, w)
	if err != nil {
		return nil, err
	}
	return &Zipf{a: a, s: s, n: n}, nil
}

// Next draws one rank in [0, n).
func (z *Zipf) Next() int { return z.a.Next() }

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// Geometric draws from a geometric distribution on {1, 2, ...} with
// success probability p: P(X = k) = (1-p)^(k-1) p. Used for
// within-document term frequencies.
func Geometric(r *rand.Rand, p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u)/math.Log(1-p))) + 1
}

// LogNormal draws from a log-normal distribution with the given
// parameters of the underlying normal. Used for document lengths.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson models a Poisson arrival process with the given mean rate in
// events per second, as used by the paper's stream (200 docs/second).
type Poisson struct {
	rate float64
	r    *rand.Rand
}

// NewPoisson returns a process with the given positive rate.
func NewPoisson(r *rand.Rand, rate float64) *Poisson {
	if rate <= 0 {
		panic("stats: poisson rate must be positive")
	}
	return &Poisson{rate: rate, r: r}
}

// NextGap draws one exponential inter-arrival gap.
func (p *Poisson) NextGap() time.Duration {
	u := p.r.Float64()
	for u == 0 {
		u = p.r.Float64()
	}
	gap := -math.Log(u) / p.rate
	return time.Duration(gap * float64(time.Second))
}

// Summary accumulates observations and reports order statistics. It is
// the measurement container used by the experiment harness.
type Summary struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Std returns the sample standard deviation, or 0 with fewer than two
// observations.
func (s *Summary) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	var t float64
	for _, x := range s.xs {
		d := x - m
		t += d * d
	}
	return math.Sqrt(t / float64(len(s.xs)-1))
}

func (s *Summary) sortIfNeeded() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank interpolation, or 0 for an empty summary.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortIfNeeded()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortIfNeeded()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortIfNeeded()
	return s.xs[len(s.xs)-1]
}
