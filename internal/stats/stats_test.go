package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewAliasRejectsBadWeights(t *testing.T) {
	r := NewRand(1)
	for name, ws := range map[string][]float64{
		"empty":    nil,
		"zero-sum": {0, 0, 0},
		"negative": {1, -1, 2},
		"nan":      {1, math.NaN()},
		"inf":      {math.Inf(1)},
	} {
		if _, err := NewAlias(r, ws); !errors.Is(err, ErrBadWeights) {
			t.Errorf("%s: want ErrBadWeights, got %v", name, err)
		}
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	r := NewRand(2)
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(r, weights)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Next()]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("index %d: got %f draws, want ≈%f", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	r := NewRand(3)
	a, err := NewAlias(r, []float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if k := a.Next(); k == 0 || k == 2 {
			t.Fatalf("drew zero-weight index %d", k)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher ranks must be drawn less often; rank 0 frequency should
	// approximate 1/H_n for s=1.
	r := NewRand(4)
	n := 1000
	z, err := NewZipf(r, 1.0, n)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 300000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	var h float64
	for k := 1; k <= n; k++ {
		h += 1 / float64(k)
	}
	want := draws / h
	if math.Abs(float64(counts[0])-want)/want > 0.05 {
		t.Errorf("rank 0 drawn %d times, want ≈%f", counts[0], want)
	}
	if !(counts[0] > counts[9] && counts[9] > counts[99]) {
		t.Errorf("zipf counts not decreasing: %d, %d, %d", counts[0], counts[9], counts[99])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRand(5)
	n := 50
	z, err := NewZipf(r, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("rank %d drawn %d times, want ≈%f", i, c, want)
		}
	}
}

func TestZipfBadArgs(t *testing.T) {
	r := NewRand(6)
	if _, err := NewZipf(r, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(r, -1, 10); err == nil {
		t.Error("s<0 accepted")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(7)
	p := 0.4
	const draws = 200000
	var sum int
	for i := 0; i < draws; i++ {
		g := Geometric(r, p)
		if g < 1 {
			t.Fatalf("geometric draw %d < 1", g)
		}
		sum += g
	}
	mean := float64(sum) / draws
	if math.Abs(mean-1/p)/(1/p) > 0.03 {
		t.Errorf("mean = %f, want ≈%f", mean, 1/p)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := NewRand(8)
	if g := Geometric(r, 1); g != 1 {
		t.Errorf("p=1: got %d", g)
	}
	if g := Geometric(r, 0); g != 1 {
		t.Errorf("p=0: got %d", g)
	}
}

func TestPoissonMeanGap(t *testing.T) {
	r := NewRand(9)
	p := NewPoisson(r, 200) // paper's arrival rate
	const draws = 100000
	var total time.Duration
	for i := 0; i < draws; i++ {
		g := p.NextGap()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	mean := total.Seconds() / draws
	if math.Abs(mean-0.005)/0.005 > 0.03 {
		t.Errorf("mean gap = %fs, want ≈0.005s", mean)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, x := range []float64{4, 1, 3, 2, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if m := s.Mean(); m != 3 {
		t.Fatalf("Mean = %f", m)
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("P50 = %f", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %f", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %f", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %f/%f", s.Min(), s.Max())
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(s.Std()-wantStd) > 1e-12 {
		t.Fatalf("Std = %f, want %f", s.Std(), wantStd)
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort lazily
	if got := s.Min(); got != 1 {
		t.Fatalf("Min after late Add = %f", got)
	}
}

// Property: alias sampling always returns a valid index with nonzero
// weight.
func TestAliasAlwaysValidIndex(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		var sum float64
		for i, b := range raw {
			ws[i] = float64(b)
			sum += ws[i]
		}
		r := NewRand(17)
		a, err := NewAlias(r, ws)
		if sum == 0 {
			return errors.Is(err, ErrBadWeights)
		}
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			k := a.Next()
			if k < 0 || k >= len(ws) || ws[k] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	seq := func() []int {
		r := NewRand(123)
		z, _ := NewZipf(r, 1.0, 100)
		out := make([]int, 50)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}
