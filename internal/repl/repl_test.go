package repl

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"ita/internal/wal"
)

// TestMessageRoundTrip: encode/decode is the identity on every field.
func TestMessageRoundTrip(t *testing.T) {
	msgs := []*message{
		{Type: msgHello, Seq: 12, Off: 3456, Epoch: 78, CRC: 0xDEADBEEF, CRCLen: 4096, HasState: true, ID: "follower-1"},
		{Type: msgSnapshot, Seq: 9, Data: bytes.Repeat([]byte{7}, 1000)},
		{Type: msgRecords, Seq: 1, Off: 0, Epoch: 2, Data: []byte("framebytes")},
		{Type: msgRotate, Seq: 99},
		{Type: msgHeartbeat, Seq: 5, Off: 100, Epoch: 42},
		{Type: msgAck},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if _, err := writeMessage(&buf, m, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := readMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Off != want.Off ||
			got.Epoch != want.Epoch || got.CRC != want.CRC || got.CRCLen != want.CRCLen ||
			got.HasState != want.HasState || got.ID != want.ID || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("round trip mangled %+v into %+v", want, got)
		}
	}
	// A flipped payload bit must fail the CRC.
	buf.Reset()
	writeMessage(&buf, msgs[0], nil)
	raw := buf.Bytes()
	raw[frameHeader+3] ^= 1
	if _, err := readMessage(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt message decoded cleanly")
	}
}

// TestTracker: Set wakes waiters exactly when the position changes.
func TestTracker(t *testing.T) {
	tr := NewTracker(Position{Seq: 1, Off: 10})
	pos, ch := tr.Get()
	if pos != (Position{Seq: 1, Off: 10}) {
		t.Fatalf("pos = %+v", pos)
	}
	tr.Set(pos) // no change: must not wake
	select {
	case <-ch:
		t.Fatal("woken without a position change")
	default:
	}
	tr.Set(Position{Seq: 1, Off: 20})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("not woken by a position change")
	}
	if got, _ := tr.Get(); got.Off != 20 {
		t.Fatalf("pos after set = %+v", got)
	}
}

// testPrimary drives a synthetic primary WAL directory: real segment
// files and checkpoints with the engine's layout and rotation
// invariant (a completed segment ends with the epoch marker naming its
// successor), without needing the engine itself.
type testPrimary struct {
	t     *testing.T
	dir   string
	tr    *Tracker
	log   *wal.Log
	seq   uint64
	epoch uint64
}

func newTestPrimary(t *testing.T) *testPrimary {
	dir := t.TempDir()
	if err := os.WriteFile(wal.CheckpointPath(dir, 0), []byte("SNAP0"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(wal.SegmentPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	return &testPrimary{t: t, dir: dir, tr: NewTracker(Position{}), log: wal.NewLog(f, 0, wal.DurabilityOff)}
}

func (p *testPrimary) append(rec *wal.Record) {
	if err := p.log.Append(rec); err != nil {
		p.t.Fatal(err)
	}
	p.tr.Set(Position{Seq: p.seq, Off: p.log.Offset(), Epoch: p.epoch})
}

func (p *testPrimary) ingest(text string) {
	p.append(&wal.Record{Kind: wal.KindDoc, Doc: p.epoch, At: int64(p.epoch) * 1e6, Text: text})
	p.epoch++
	p.append(&wal.Record{Kind: wal.KindEpoch, Seq: p.epoch})
}

// rotate checkpoints at the current boundary: the epoch marker just
// appended names the new segment.
func (p *testPrimary) rotate() {
	seq := p.epoch
	if err := os.WriteFile(wal.CheckpointPath(p.dir, seq), []byte(fmt.Sprintf("SNAP%d", seq)), 0o644); err != nil {
		p.t.Fatal(err)
	}
	p.log.Close()
	f, err := os.Create(wal.SegmentPath(p.dir, seq))
	if err != nil {
		p.t.Fatal(err)
	}
	p.log = wal.NewLog(f, 0, wal.DurabilityOff)
	p.seq = seq
	p.tr.Set(Position{Seq: seq, Off: 0, Epoch: p.epoch})
}

// mirror is a test Applier that byte-mirrors the stream into its own
// directory, the same contract the engine's follower mode honors.
type mirror struct {
	mu      sync.Mutex
	dir     string
	seq     uint64
	off     int64
	epoch   uint64
	has     bool
	head    Position
	resyncs int
}

func (m *mirror) Position() (Position, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Position{Seq: m.seq, Off: m.off, Epoch: m.epoch}, m.has
}

func (m *mirror) TailCRC(max int64) (uint32, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, err := os.ReadFile(wal.SegmentPath(m.dir, m.seq))
	if err != nil || int64(len(data)) < m.off {
		return 0, 0
	}
	n := max
	if n > m.off {
		n = m.off
	}
	return crc32.Checksum(data[m.off-n:m.off], crcTable), n
}

func (m *mirror) ApplySnapshot(seq uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := os.WriteFile(wal.CheckpointPath(m.dir, seq), data, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(wal.SegmentPath(m.dir, seq), nil, 0o644); err != nil {
		return err
	}
	m.seq, m.off, m.has = seq, 0, true
	m.resyncs++
	return nil
}

func (m *mirror) ApplyChunk(seq uint64, off int64, head uint64, data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq != m.seq || off != m.off {
		return 0, ErrNeedSnapshot
	}
	res := wal.Scan(data)
	if res.Torn {
		return 0, fmt.Errorf("chunk not frame-aligned")
	}
	f, err := os.OpenFile(wal.SegmentPath(m.dir, seq), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return 0, err
	}
	f.Close()
	for _, rec := range res.Records {
		if rec.Kind == wal.KindEpoch {
			m.epoch = rec.Seq
		}
	}
	m.off += int64(len(data))
	return len(res.Records), nil
}

func (m *mirror) Rotate(seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := os.WriteFile(wal.CheckpointPath(m.dir, seq), []byte(fmt.Sprintf("SNAP%d", seq)), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(wal.SegmentPath(m.dir, seq), nil, 0o644); err != nil {
		return err
	}
	m.seq, m.off = seq, 0
	return nil
}

func (m *mirror) ObserveHead(p Position) {
	m.mu.Lock()
	if m.head.Less(p) {
		m.head = p
	}
	m.mu.Unlock()
}

func waitMirror(t *testing.T, tr *Tracker, m *mirror) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		want, _ := tr.Get()
		got, _ := m.Position()
		if got.Seq == want.Seq && got.Off == want.Off {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	want, _ := tr.Get()
	got, _ := m.Position()
	t.Fatalf("mirror stuck at %+v, primary at %+v", got, want)
}

func requireSameSegment(t *testing.T, pdir, fdir string, seq uint64) {
	t.Helper()
	a, err := os.ReadFile(wal.SegmentPath(pdir, seq))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(wal.SegmentPath(fdir, seq))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("segment %d differs: primary %d bytes, follower %d bytes", seq, len(a), len(b))
	}
}

// TestStreamMirrorsSegments: a fresh follower bootstraps via snapshot,
// then mirrors live appends and rotations byte-identically, resumes
// across a reconnect without a resync, and the server tracks its acks.
func TestStreamMirrorsSegments(t *testing.T) {
	p := newTestPrimary(t)
	for i := 0; i < 5; i++ {
		p.ingest(fmt.Sprintf("crude oil shipment %d", i))
	}

	srv := NewServer(ServerConfig{Dir: p.dir, Tracker: p.tr, Heartbeat: 20 * time.Millisecond})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	m := &mirror{dir: t.TempDir()}
	cli := NewClient(ClientConfig{
		Addr: l.Addr().String(), ID: "f1",
		ReadTimeout: 200 * time.Millisecond,
		MinBackoff:  5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}, m)
	cli.Start()
	defer cli.Stop()

	waitMirror(t, p.tr, m)
	if m.resyncs != 1 {
		t.Fatalf("fresh follower resyncs = %d, want 1", m.resyncs)
	}
	requireSameSegment(t, p.dir, m.dir, 0)

	// Live appends and a rotation mirror through.
	for i := 5; i < 9; i++ {
		p.ingest(fmt.Sprintf("tanker manifest %d", i))
	}
	p.rotate()
	for i := 9; i < 12; i++ {
		p.ingest(fmt.Sprintf("pipeline notice %d", i))
	}
	waitMirror(t, p.tr, m)
	requireSameSegment(t, p.dir, m.dir, 0)
	requireSameSegment(t, p.dir, m.dir, p.seq)

	// The server saw acks at the follower's position.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := srv.Followers()
		if len(fs) == 1 && fs[0].AckSeq == p.seq && fs[0].AckOff == p.log.Offset() {
			if pin, ok := srv.MinPinnedSeq(); !ok || pin != p.seq {
				t.Fatalf("MinPinnedSeq = %d,%v", pin, ok)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acks never caught up: %+v", fs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Reconnect resumes from the mirrored position without a snapshot.
	cli.Stop()
	for i := 12; i < 15; i++ {
		p.ingest(fmt.Sprintf("refinery update %d", i))
	}
	cli2 := NewClient(ClientConfig{
		Addr: l.Addr().String(), ID: "f1",
		ReadTimeout: 200 * time.Millisecond,
		MinBackoff:  5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}, m)
	cli2.Start()
	defer cli2.Stop()
	waitMirror(t, p.tr, m)
	if m.resyncs != 1 {
		t.Fatalf("resume after reconnect resynced (resyncs = %d)", m.resyncs)
	}
	requireSameSegment(t, p.dir, m.dir, p.seq)
	st := cli2.Stats()
	if st.AppliedRecords == 0 || st.LastAck.Off != p.log.Offset() {
		t.Fatalf("client stats %+v", st)
	}
}

// TestDivergedFollowerResyncs: a follower whose tail bytes differ from
// the primary's (a diverged ex-primary) fails the hello CRC check and
// is resynced by snapshot instead of resumed into corruption.
func TestDivergedFollowerResyncs(t *testing.T) {
	p := newTestPrimary(t)
	for i := 0; i < 6; i++ {
		p.ingest(fmt.Sprintf("benchmark grade %d", i))
	}

	srv := NewServer(ServerConfig{Dir: p.dir, Tracker: p.tr, Heartbeat: 20 * time.Millisecond})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	// A "follower" claiming state at segment 0 with a divergent tail:
	// same offset as a prefix of the primary, different bytes.
	m := &mirror{dir: t.TempDir(), has: true}
	df, err := os.Create(wal.SegmentPath(m.dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	dl := wal.NewLog(df, 0, wal.DurabilityOff)
	dl.Append(&wal.Record{Kind: wal.KindDoc, Doc: 999, At: 1, Text: "a different history"})
	dl.Close()
	fi, _ := os.Stat(wal.SegmentPath(m.dir, 0))
	m.off = fi.Size()

	cli := NewClient(ClientConfig{
		Addr: l.Addr().String(), ID: "diverged",
		ReadTimeout: 200 * time.Millisecond,
		MinBackoff:  5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}, m)
	cli.Start()
	defer cli.Stop()

	waitMirror(t, p.tr, m)
	if m.resyncs != 1 {
		t.Fatalf("diverged follower resyncs = %d, want 1", m.resyncs)
	}
	requireSameSegment(t, p.dir, m.dir, 0)
}

// TestFollowerPastRetention: when the segment a follower needs is gone
// the stream falls back to a snapshot on reconnect rather than failing
// forever.
func TestFollowerPastRetention(t *testing.T) {
	p := newTestPrimary(t)
	for i := 0; i < 4; i++ {
		p.ingest(fmt.Sprintf("spot price %d", i))
	}
	p.rotate()
	firstSeq := p.seq
	for i := 4; i < 8; i++ {
		p.ingest(fmt.Sprintf("futures curve %d", i))
	}
	p.rotate()
	// Simulate retention: segment 0 and the middle segment are gone.
	os.Remove(wal.SegmentPath(p.dir, 0))
	os.Remove(wal.SegmentPath(p.dir, firstSeq))
	for i := 8; i < 10; i++ {
		p.ingest(fmt.Sprintf("contango note %d", i))
	}

	srv := NewServer(ServerConfig{Dir: p.dir, Tracker: p.tr, Heartbeat: 20 * time.Millisecond})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	// Follower thinks it is at segment 0 (now unavailable).
	m := &mirror{dir: t.TempDir(), has: true}
	os.WriteFile(wal.SegmentPath(m.dir, 0), nil, 0o644)
	cli := NewClient(ClientConfig{
		Addr: l.Addr().String(), ID: "lagger",
		ReadTimeout: 200 * time.Millisecond,
		MinBackoff:  5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}, m)
	cli.Start()
	defer cli.Stop()

	waitMirror(t, p.tr, m)
	if m.resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", m.resyncs)
	}
	requireSameSegment(t, p.dir, m.dir, p.seq)
}

// TestClientStopDuringBackoff pins prompt shutdown: a client parked in
// a long reconnect backoff (dial keeps failing, MinBackoff measured in
// minutes) must return from Stop immediately rather than waiting the
// sleep out. This also covers the reusable backoff timer: the sleep is
// a stoppable timer now, where time.After left one allocated timer
// pending per retry until its full duration elapsed.
func TestClientStopDuringBackoff(t *testing.T) {
	dials := make(chan struct{}, 16)
	c := NewClient(ClientConfig{
		Addr: "127.0.0.1:0",
		ID:   "backoff-test",
		Dial: func(string, time.Duration) (net.Conn, error) {
			select {
			case dials <- struct{}{}:
			default:
			}
			return nil, errors.New("dial refused")
		},
		MinBackoff: 5 * time.Minute,
		MaxBackoff: 10 * time.Minute,
		Seed:       1,
	}, nil)
	c.Start()
	select {
	case <-dials:
	case <-time.After(5 * time.Second):
		t.Fatal("client never attempted a dial")
	}
	// The loop is now inside (or entering) the multi-minute backoff.
	start := time.Now()
	c.Stop()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Stop took %v during backoff, want immediate return", d)
	}
	if got := c.Stats(); got.Dials == 0 {
		t.Fatalf("stats = %+v, want at least one dial recorded", got)
	}
}

// TestDefaultBackoffSeedsDistinct pins the reconnect-storm fix: two
// followers with empty (or identical) ClientConfig.IDs must not derive
// the same jitter seed, or a primary restart makes every retry wave
// arrive as one synchronized herd. An explicit Seed stays untouched for
// deterministic tests.
func TestDefaultBackoffSeedsDistinct(t *testing.T) {
	var a, b ClientConfig
	a.defaults()
	b.defaults()
	if a.Seed == b.Seed {
		t.Fatalf("two default configs derived the same backoff seed %d", a.Seed)
	}
	c := ClientConfig{ID: "wal-dir"}
	d := ClientConfig{ID: "wal-dir"}
	c.defaults()
	d.defaults()
	if c.Seed == d.Seed {
		t.Fatalf("identical IDs derived the same backoff seed %d", c.Seed)
	}
	pinned := ClientConfig{Seed: 7}
	pinned.defaults()
	if pinned.Seed != 7 {
		t.Fatalf("explicit seed rewritten to %d", pinned.Seed)
	}
	// Distinct seeds must actually yield distinct schedules: the first
	// jitter draws differ somewhere in a short prefix.
	ra := rand.New(rand.NewSource(a.Seed))
	rb := rand.New(rand.NewSource(b.Seed))
	same := true
	for i := 0; i < 8 && same; i++ {
		same = ra.Int63n(1<<20) == rb.Int63n(1<<20)
	}
	if same {
		t.Fatal("distinct seeds produced identical jitter prefixes")
	}
}
