// Package repl implements warm-standby replication by WAL shipping: a
// primary-side server that streams write-ahead-log segment bytes to
// followers from a requested position, and a follower-side client that
// mirrors them locally and feeds the decoded records to an applier.
//
// # Protocol
//
// All messages ride the WAL's own frame discipline — a length prefix,
// a CRC-32C of the payload, then the payload — over one TCP connection
// per follower:
//
//	[4 bytes little-endian payload length]
//	[4 bytes little-endian CRC-32C of the payload]
//	[payload: 1 type byte, varint fields, raw data]
//
// The follower opens with hello (its durable position: checkpoint
// sequence, byte offset into that segment, and a CRC over its local
// segment tail so a diverged log is detected, not replayed into). The
// primary answers with either resume (the position is a live prefix of
// its own log: streaming continues from exactly there) or snapshot
// (the full current checkpoint; the follower rebuilds from it and
// streaming continues from the fresh segment). From then on the
// primary pushes records messages carrying raw segment bytes — whole
// frames only, so the follower's segment stays bit-identical to the
// primary's prefix — interleaved with rotate (the primary checkpointed;
// the follower writes its own equivalent checkpoint and starts the
// same fresh segment) and heartbeat (liveness plus the primary's head
// position, the follower's lag gauge). The follower answers every
// message with ack (its applied durable position), which drives the
// primary's segment retention and replication stats.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Message types.
const (
	msgHello byte = iota + 1
	msgResume
	msgSnapshot
	msgRecords
	msgRotate
	msgHeartbeat
	msgAck
)

const (
	frameHeader = 8
	// maxMessage bounds one message so a corrupt length cannot force a
	// giant allocation. Snapshot messages carry a whole checkpoint, so
	// the bound is generous; records chunks stay far below it.
	maxMessage = 1 << 30
)

// crcTable is the Castagnoli polynomial, matching internal/wal.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// message is one protocol frame. Fields are a union over the types;
// unused fields encode as zero varints (one byte each).
type message struct {
	Type byte
	// Seq/Off/Epoch: the position a message speaks about — the
	// follower's durable position (hello, ack), the chunk's start
	// position plus the primary's head epoch (records), the primary's
	// head (heartbeat), the checkpoint boundary (snapshot, rotate).
	Seq   uint64
	Off   int64
	Epoch uint64
	// CRC/CRCLen: hello's tail check — CRC-32C over the CRCLen bytes
	// ending at Off in the follower's local copy of segment Seq.
	CRC    uint32
	CRCLen int64
	// HasState: hello — false forces a snapshot (fresh or diverged
	// follower).
	HasState bool
	// ID: hello — the follower's stable identity for pinning and stats.
	ID string
	// Data: snapshot bytes or raw segment frames.
	Data []byte
}

// appendMessage appends the framed encoding of m to dst.
func appendMessage(dst []byte, m *message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, m.Type)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	put(m.Seq)
	put(uint64(m.Off))
	put(m.Epoch)
	put(uint64(m.CRC))
	put(uint64(m.CRCLen))
	hs := uint64(0)
	if m.HasState {
		hs = 1
	}
	put(hs)
	put(uint64(len(m.ID)))
	dst = append(dst, m.ID...)
	dst = append(dst, m.Data...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// writeMessage frames and writes m, reusing scratch.
func writeMessage(w io.Writer, m *message, scratch []byte) ([]byte, error) {
	scratch = appendMessage(scratch[:0], m)
	_, err := w.Write(scratch)
	return scratch, err
}

// readMessage reads and decodes one frame. Any framing violation —
// short read, oversized length, CRC mismatch, truncated fields — is an
// error; the connection cannot be trusted past it and must be dropped
// (the follower then reconnects and re-handshakes from its durable
// position, so a torn frame costs a round trip, never consistency).
func readMessage(r io.Reader) (*message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxMessage {
		return nil, fmt.Errorf("repl: message length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("repl: message CRC mismatch")
	}
	return decodeMessage(payload)
}

func decodeMessage(payload []byte) (*message, error) {
	m := &message{Type: payload[0]}
	rest := payload[1:]
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	seq, ok1 := get()
	off, ok2 := get()
	epoch, ok3 := get()
	crc, ok4 := get()
	crcLen, ok5 := get()
	hasState, ok6 := get()
	idLen, ok7 := get()
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) || idLen > uint64(len(rest)) {
		return nil, fmt.Errorf("repl: truncated message fields")
	}
	m.Seq, m.Off, m.Epoch = seq, int64(off), epoch
	m.CRC, m.CRCLen = uint32(crc), int64(crcLen)
	m.HasState = hasState != 0
	m.ID = string(rest[:idLen])
	m.Data = rest[idLen:]
	return m, nil
}
