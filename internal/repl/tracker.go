package repl

import "sync"

// Position is a durable point in a WAL directory: byte offset Off into
// segment Seq, at epoch boundary count Epoch. Positions are totally
// ordered by (Seq, Off); Epoch is a human-scale gauge of the same point
// (lag in epochs rather than bytes).
type Position struct {
	Seq   uint64
	Off   int64
	Epoch uint64
}

// Less reports whether p is strictly before q.
func (p Position) Less(q Position) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

// Tracker publishes the primary's clean log position to streaming
// goroutines. The engine calls Set under its own mutex after every
// successful append; each follower connection waits on the returned
// channel for "more bytes exist" without holding any engine lock.
type Tracker struct {
	mu  sync.Mutex
	pos Position
	ch  chan struct{}
}

// NewTracker returns a tracker at the given starting position.
func NewTracker(pos Position) *Tracker {
	return &Tracker{pos: pos, ch: make(chan struct{})}
}

// Set advances the published position and wakes every waiter.
func (t *Tracker) Set(pos Position) {
	t.mu.Lock()
	if pos != t.pos {
		t.pos = pos
		close(t.ch)
		t.ch = make(chan struct{})
	}
	t.mu.Unlock()
}

// Get returns the current position and a channel closed at the next
// change.
func (t *Tracker) Get() (Position, <-chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pos, t.ch
}
