package repl

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"ita/internal/wal"
)

// ServerConfig parameterizes a replication server. Dir and Tracker are
// required; zero durations take the defaults noted on each field.
type ServerConfig struct {
	// Dir is the primary's WAL directory; segments are streamed straight
	// from its files.
	Dir string
	// Tracker publishes the primary's clean log position.
	Tracker *Tracker
	// Heartbeat is the idle-connection heartbeat interval (default
	// 500ms). Follower read timeouts must exceed it.
	Heartbeat time.Duration
	// AckTimeout bounds how long a connection may go without an ack
	// before it is presumed dead (default 30s).
	AckTimeout time.Duration
	// WriteTimeout bounds each message write (default 30s).
	WriteTimeout time.Duration
	// ChunkSize is the target records-message size (default 256 KiB).
	// Chunks are trimmed to whole frames, so a single frame larger than
	// this still ships alone.
	ChunkSize int
}

// FollowerStats is one follower's view from the primary side. A
// follower is identified by the ID it sends in hello; it stays in the
// stats (and keeps pinning segments) across reconnects until the
// server is closed.
type FollowerStats struct {
	ID         string
	Addr       string
	Connected  bool
	AckSeq     uint64
	AckOff     int64
	AckEpoch   uint64
	LastAck    time.Time
	Reconnects uint64
}

type followerInfo struct {
	stats         FollowerStats
	forceSnapshot bool // set when streaming lost the follower's position
	acked         bool // at least one ack received (pin is meaningful)
}

// Server streams WAL bytes to followers. One Server serves any number
// of concurrent follower connections over listeners passed to Serve.
type Server struct {
	cfg ServerConfig

	mu        sync.Mutex
	followers map[string]*followerInfo
	conns     map[net.Conn]struct{}
	listeners []net.Listener
	chain     map[uint64]uint64 // completed segment seq -> successor seq
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewServer builds a server over cfg, applying defaults.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 256 << 10
	}
	return &Server{
		cfg:       cfg,
		followers: make(map[string]*followerInfo),
		conns:     make(map[net.Conn]struct{}),
		chain:     make(map[uint64]uint64),
		done:      make(chan struct{}),
	}
}

// Serve accepts follower connections on l until l or the server is
// closed. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("repl: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, drops every follower connection and waits for
// the per-connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	ls := s.listeners
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// MinPinnedSeq returns the lowest segment any follower that has ever
// acked still needs, and whether such a follower exists. The engine's
// GC keeps segments at or above this (bounded by its retention cap).
func (s *Server) MinPinnedSeq() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min uint64
	found := false
	for _, f := range s.followers {
		if !f.acked {
			continue
		}
		if !found || f.stats.AckSeq < min {
			min = f.stats.AckSeq
			found = true
		}
	}
	return min, found
}

// Followers returns a snapshot of per-follower stats.
func (s *Server) Followers() []FollowerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FollowerStats, 0, len(s.followers))
	for _, f := range s.followers {
		out = append(out, f.stats)
	}
	return out
}

// handle runs one follower connection: handshake, then stream until
// the connection dies or the server closes.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(s.cfg.AckTimeout))
	hello, err := readMessage(conn)
	if err != nil || hello.Type != msgHello || hello.ID == "" {
		return
	}
	info := s.register(hello.ID, conn.RemoteAddr().String())
	defer s.disconnect(info)

	start, err := s.negotiate(conn, hello, info)
	if err != nil {
		return
	}

	// Acks arrive asynchronously while the stream loop writes; a reader
	// goroutine folds them into the follower's pin. Its exit (read error
	// or ack timeout) closes the connection, which unblocks the stream
	// loop's writes.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			conn.SetReadDeadline(time.Now().Add(s.cfg.AckTimeout))
			m, err := readMessage(conn)
			if err != nil {
				conn.Close()
				return
			}
			if m.Type == msgAck {
				s.recordAck(info, m)
			}
		}
	}()

	s.stream(conn, info, start)
	conn.Close()
	<-ackDone
}

func (s *Server) register(id, addr string) *followerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.followers[id]
	if !ok {
		f = &followerInfo{stats: FollowerStats{ID: id}}
		s.followers[id] = f
	} else {
		f.stats.Reconnects++
	}
	f.stats.Addr = addr
	f.stats.Connected = true
	return f
}

func (s *Server) disconnect(f *followerInfo) {
	s.mu.Lock()
	f.stats.Connected = false
	s.mu.Unlock()
}

func (s *Server) recordAck(f *followerInfo, m *message) {
	s.mu.Lock()
	f.stats.AckSeq = m.Seq
	f.stats.AckOff = m.Off
	f.stats.AckEpoch = m.Epoch
	f.stats.LastAck = time.Now()
	f.acked = true
	s.mu.Unlock()
}

// negotiate answers hello with resume or snapshot and returns the
// position streaming starts from.
func (s *Server) negotiate(conn net.Conn, hello *message, info *followerInfo) (Position, error) {
	s.mu.Lock()
	force := info.forceSnapshot
	s.mu.Unlock()
	pos, _ := s.cfg.Tracker.Get()
	if hello.HasState && !force && s.canResume(hello, pos) {
		m := &message{Type: msgResume, Seq: hello.Seq, Off: hello.Off, Epoch: pos.Epoch}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := writeMessage(conn, m, nil); err != nil {
			return Position{}, err
		}
		return Position{Seq: hello.Seq, Off: hello.Off}, nil
	}
	// Snapshot. The checkpoint for the tracked position can be rotated
	// away between reading the tracker and the file, so retry with a
	// fresh position.
	var data []byte
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		pos, _ = s.cfg.Tracker.Get()
		data, err = os.ReadFile(wal.CheckpointPath(s.cfg.Dir, pos.Seq))
		if err == nil {
			break
		}
	}
	if err != nil {
		return Position{}, fmt.Errorf("repl: read checkpoint %d: %w", pos.Seq, err)
	}
	m := &message{Type: msgSnapshot, Seq: pos.Seq, Epoch: pos.Epoch, Data: data}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if _, err := writeMessage(conn, m, nil); err != nil {
		return Position{}, err
	}
	s.mu.Lock()
	info.forceSnapshot = false
	s.mu.Unlock()
	return Position{Seq: pos.Seq}, nil
}

// canResume decides whether the follower's claimed position is a live
// prefix of this primary's log: the segment must still exist, the
// follower's tail bytes must match ours (CRC), and the segment chain
// from there must reach the current head. Any doubt means no — the
// fallback is a snapshot, which is always correct.
func (s *Server) canResume(hello *message, pos Position) bool {
	if hello.Seq > pos.Seq || (hello.Seq == pos.Seq && hello.Off > pos.Off) {
		return false // ahead of us: diverged (e.g. a promoted ex-follower)
	}
	segPath := wal.SegmentPath(s.cfg.Dir, hello.Seq)
	fi, err := os.Stat(segPath)
	if err != nil {
		return false // rotated away: follower is past retention
	}
	limit := pos.Off
	if hello.Seq < pos.Seq {
		limit = fi.Size()
	}
	if hello.Off > limit {
		return false
	}
	if hello.Off > 0 {
		n := hello.CRCLen
		if n <= 0 || n > hello.Off {
			return false
		}
		f, err := os.Open(segPath)
		if err != nil {
			return false
		}
		buf := make([]byte, n)
		_, rerr := f.ReadAt(buf, hello.Off-n)
		f.Close()
		if rerr != nil || crc32.Checksum(buf, crcTable) != hello.CRC {
			return false
		}
	}
	// Walk the rotation chain hello.Seq -> pos.Seq.
	seq := hello.Seq
	for i := 0; seq != pos.Seq; i++ {
		if i > 1<<20 {
			return false
		}
		next, ok := s.nextSegment(seq)
		if !ok || next <= seq {
			return false
		}
		seq = next
	}
	return true
}

// nextSegment returns the successor of completed segment seq. The
// engine rotates immediately after appending the epoch marker that
// names the new segment, so a completed segment's last record is
// always that marker; its Seq field is the successor.
func (s *Server) nextSegment(seq uint64) (uint64, bool) {
	s.mu.Lock()
	next, ok := s.chain[seq]
	s.mu.Unlock()
	if ok {
		return next, true
	}
	res, err := wal.ScanFile(wal.SegmentPath(s.cfg.Dir, seq))
	if err != nil || len(res.Records) == 0 {
		return 0, false
	}
	last := res.Records[len(res.Records)-1]
	if last.Kind != wal.KindEpoch {
		return 0, false
	}
	s.mu.Lock()
	s.chain[seq] = last.Seq
	s.mu.Unlock()
	return last.Seq, true
}

// stream pushes segment bytes from start until the connection dies.
func (s *Server) stream(conn net.Conn, info *followerInfo, start Position) {
	seq, off := start.Seq, start.Off
	var scratch []byte
	hb := time.NewTimer(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		pos, ch := s.cfg.Tracker.Get()
		var limit int64
		final := false
		switch {
		case seq == pos.Seq:
			limit = pos.Off
		case seq < pos.Seq:
			fi, err := os.Stat(wal.SegmentPath(s.cfg.Dir, seq))
			if err != nil {
				s.loseFollower(info) // segment GC'd underneath us
				return
			}
			limit = fi.Size()
			final = true
		default:
			return // tracker moved backwards: impossible, bail out
		}
		switch {
		case off < limit:
			data, err := s.readFrames(seq, off, limit)
			if err != nil {
				s.loseFollower(info)
				return
			}
			m := &message{Type: msgRecords, Seq: seq, Off: off, Epoch: pos.Epoch, Data: data}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if scratch, err = writeMessage(conn, m, scratch); err != nil {
				return
			}
			off += int64(len(data))
		case final:
			next, ok := s.nextSegment(seq)
			if !ok {
				s.loseFollower(info)
				return
			}
			m := &message{Type: msgRotate, Seq: next, Epoch: pos.Epoch}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			var err error
			if scratch, err = writeMessage(conn, m, scratch); err != nil {
				return
			}
			seq, off = next, 0
		default:
			// Caught up: wait for more bytes or send a heartbeat.
			if !hb.Stop() {
				select {
				case <-hb.C:
				default:
				}
			}
			hb.Reset(s.cfg.Heartbeat)
			select {
			case <-ch:
			case <-hb.C:
				m := &message{Type: msgHeartbeat, Seq: pos.Seq, Off: pos.Off, Epoch: pos.Epoch}
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				var err error
				if scratch, err = writeMessage(conn, m, scratch); err != nil {
					return
				}
			case <-s.done:
				return
			}
		}
	}
}

// loseFollower marks that streaming can no longer continue from the
// follower's position (a needed segment vanished); the next handshake
// falls back to a snapshot.
func (s *Server) loseFollower(info *followerInfo) {
	s.mu.Lock()
	info.forceSnapshot = true
	s.mu.Unlock()
}

// readFrames reads a frame-aligned chunk of segment seq starting at
// off, never crossing limit (the clean boundary published by the
// tracker). The read is grown until at least one whole frame fits.
func (s *Server) readFrames(seq uint64, off, limit int64) ([]byte, error) {
	f, err := os.Open(wal.SegmentPath(s.cfg.Dir, seq))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	want := int64(s.cfg.ChunkSize)
	for {
		if want > limit-off {
			want = limit - off
		}
		buf := make([]byte, want)
		if _, err := io.ReadFull(io.NewSectionReader(f, off, want), buf); err != nil {
			return nil, err
		}
		res := wal.Scan(buf)
		if res.Clean > 0 {
			return buf[:res.Clean], nil
		}
		if want == limit-off {
			return nil, fmt.Errorf("repl: segment %d has no clean frame in [%d,%d)", seq, off, limit)
		}
		want *= 2
	}
}
