package repl

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNeedSnapshot is returned by an Applier when its local state cannot
// absorb the incoming bytes (diverged tail, missed rotation). The
// client drops the connection and re-handshakes with HasState=false,
// forcing a full snapshot resync.
var ErrNeedSnapshot = errors.New("repl: follower state diverged; snapshot resync required")

// Applier is the follower side's hook into the engine: the client
// drives it with whatever the primary sends. Calls arrive from a
// single goroutine.
type Applier interface {
	// Position returns the follower's durable position and whether it
	// has any state at all (false on a fresh directory).
	Position() (Position, bool)
	// TailCRC returns the CRC-32C over at most maxBytes bytes ending at
	// the current position's offset in the current segment, and how many
	// bytes it covered. Zero coverage is fine at offset zero.
	TailCRC(maxBytes int64) (crc uint32, n int64)
	// ApplySnapshot replaces all local state with the checkpoint bytes
	// for boundary seq and starts a fresh segment seq.
	ApplySnapshot(seq uint64, data []byte) error
	// ApplyChunk appends raw frames starting at (seq, off) and applies
	// the records. It returns how many records it applied. head is the
	// primary's epoch at send time, for lag accounting.
	ApplyChunk(seq uint64, off int64, head uint64, data []byte) (int, error)
	// Rotate mirrors the primary's checkpoint at boundary seq: write a
	// local checkpoint and start fresh segment seq.
	Rotate(seq uint64) error
	// ObserveHead records the primary's head position (from heartbeats
	// and records messages), for lag reporting.
	ObserveHead(p Position)
}

// ClientConfig parameterizes a follower client. Addr and ID are
// required; zero values elsewhere take the defaults noted per field.
type ClientConfig struct {
	// Addr is the primary's replication listener address.
	Addr string
	// ID is this follower's stable identity, sent in every hello.
	ID string
	// Dial overrides the dial function (fault injection hooks in here).
	// Default is net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds each read; it must exceed the server's
	// heartbeat interval (default 10s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each ack write (default 10s).
	WriteTimeout time.Duration
	// MinBackoff/MaxBackoff bound the exponential reconnect backoff
	// (defaults 50ms and 5s). Jitter of up to half the step is added.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the ID.
	Seed int64
}

func (c *ClientConfig) defaults() {
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Seed == 0 {
		// Mix per-process entropy and a per-derivation counter into the
		// ID hash. Deriving from the ID alone gives followers with empty
		// or identical IDs identical jitter streams, so a primary
		// restart makes them reconnect in lockstep — every retry storm
		// arrives as one synchronized thundering herd.
		c.Seed = seedEntropy + seedCounter.Add(1)
		for _, b := range []byte(c.ID) {
			c.Seed = c.Seed*131 + int64(b)
		}
		if c.Seed == 0 {
			c.Seed = 1
		}
	}
}

// seedEntropy distinguishes processes whose followers carry identical
// ClientConfig.IDs; seedCounter distinguishes such followers within one
// process. Explicit ClientConfig.Seed bypasses both (deterministic
// tests).
var (
	seedEntropy = func() int64 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			return time.Now().UnixNano()
		}
		return int64(binary.LittleEndian.Uint64(b[:]))
	}()
	seedCounter atomic.Int64
)

// ClientStats is the follower side's replication gauge.
type ClientStats struct {
	Connected      bool
	Dials          uint64
	Reconnects     uint64 // sessions after the first that reached handshake
	Resyncs        uint64 // snapshot applications
	AppliedRecords uint64
	LastAck        Position
	Head           Position
	LastError      string
}

// Client maintains a follower's connection to the primary: dial,
// handshake from the applier's durable position, apply the stream, ack,
// and on any failure back off exponentially (with jitter) and retry,
// resuming from whatever position the applier then reports.
type Client struct {
	cfg ClientConfig
	app Applier

	mu            sync.Mutex
	stats         ClientStats
	conn          net.Conn
	forceSnapshot bool
	started       bool
	stopped       bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewClient builds a client; Start begins replication.
func NewClient(cfg ClientConfig, app Applier) *Client {
	cfg.defaults()
	return &Client{cfg: cfg, app: app, done: make(chan struct{})}
}

// Start launches the replication loop. It is idempotent.
func (c *Client) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started || c.stopped {
		return
	}
	c.started = true
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.run()
	}()
}

// Stop terminates the loop and waits for it. It is idempotent.
func (c *Client) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.stopped = true
	close(c.done)
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
}

// Stats returns a snapshot of the client's replication gauges.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Client) run() {
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	backoff := c.cfg.MinBackoff
	// One reusable timer for the backoff sleeps. time.After leaks its
	// timer until expiry when the select exits via c.done, which on a
	// shutdown during a long backoff (or a tight reconnect churn) piles
	// up allocated timers the runtime must keep until they fire.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		c.mu.Lock()
		c.stats.Dials++
		c.mu.Unlock()
		conn, err := c.cfg.Dial(c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			c.setError(err)
		} else {
			c.mu.Lock()
			if c.stopped {
				c.mu.Unlock()
				conn.Close()
				return
			}
			c.conn = conn
			c.mu.Unlock()
			applied, serr := c.session(conn)
			conn.Close()
			c.mu.Lock()
			c.conn = nil
			c.stats.Connected = false
			c.mu.Unlock()
			if serr != nil {
				c.setError(serr)
				if errors.Is(serr, ErrNeedSnapshot) {
					c.mu.Lock()
					c.forceSnapshot = true
					c.mu.Unlock()
				}
			}
			if applied > 0 {
				backoff = c.cfg.MinBackoff // productive session: reset
			}
		}
		// Exponential backoff with jitter before the next attempt.
		d := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		backoff *= 2
		if backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
		timer.Reset(d)
		select {
		case <-c.done:
			// Drain so the next Reset starts from a clean timer: the
			// return makes this the last use, but a racing fire between
			// Stop and the read would leave a stale value in the channel
			// if this loop ever grows another exit path.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			return
		case <-timer.C:
		}
	}
}

func (c *Client) setError(err error) {
	c.mu.Lock()
	c.stats.LastError = err.Error()
	c.mu.Unlock()
}

// session runs one connection: hello, then apply messages until the
// connection fails. It returns how many messages made progress.
func (c *Client) session(conn net.Conn) (applied int, err error) {
	c.mu.Lock()
	force := c.forceSnapshot
	first := c.stats.Reconnects == 0 && !c.stats.Connected
	c.mu.Unlock()

	pos, hasState := c.app.Position()
	hello := &message{Type: msgHello, ID: c.cfg.ID, Seq: pos.Seq, Off: pos.Off, Epoch: pos.Epoch}
	hello.HasState = hasState && !force
	if hello.HasState && pos.Off > 0 {
		crc, n := c.app.TailCRC(64 << 10)
		hello.CRC, hello.CRCLen = crc, n
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	scratch, err := writeMessage(conn, hello, nil)
	if err != nil {
		return 0, err
	}
	if !first {
		c.mu.Lock()
		c.stats.Reconnects++
		c.mu.Unlock()
	}

	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		m, rerr := readMessage(conn)
		if rerr != nil {
			return applied, rerr
		}
		c.mu.Lock()
		c.stats.Connected = true
		c.mu.Unlock()
		switch m.Type {
		case msgResume:
			// The server continues from exactly our position; nothing to
			// apply, but note the head for lag.
			c.observeHead(Position{Seq: m.Seq, Off: m.Off, Epoch: m.Epoch})
		case msgSnapshot:
			if err := c.app.ApplySnapshot(m.Seq, m.Data); err != nil {
				return applied, err
			}
			c.mu.Lock()
			c.forceSnapshot = false
			c.stats.Resyncs++
			c.mu.Unlock()
			applied++
		case msgRecords:
			n, err := c.app.ApplyChunk(m.Seq, m.Off, m.Epoch, m.Data)
			c.mu.Lock()
			c.stats.AppliedRecords += uint64(n)
			c.mu.Unlock()
			if err != nil {
				return applied, err
			}
			c.observeHead(Position{Seq: m.Seq, Off: m.Off + int64(len(m.Data)), Epoch: m.Epoch})
			applied++
		case msgRotate:
			if err := c.app.Rotate(m.Seq); err != nil {
				return applied, err
			}
			applied++
		case msgHeartbeat:
			c.observeHead(Position{Seq: m.Seq, Off: m.Off, Epoch: m.Epoch})
		default:
			return applied, fmt.Errorf("repl: unexpected message type %d", m.Type)
		}
		if scratch, err = c.ack(conn, scratch); err != nil {
			return applied, err
		}
	}
}

func (c *Client) observeHead(p Position) {
	c.app.ObserveHead(p)
	c.mu.Lock()
	if c.stats.Head.Less(p) {
		c.stats.Head = p
	}
	c.mu.Unlock()
}

func (c *Client) ack(conn net.Conn, scratch []byte) ([]byte, error) {
	pos, _ := c.app.Position()
	m := &message{Type: msgAck, Seq: pos.Seq, Off: pos.Off, Epoch: pos.Epoch}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	scratch, err := writeMessage(conn, m, scratch)
	if err != nil {
		return scratch, err
	}
	c.mu.Lock()
	c.stats.LastAck = pos
	c.mu.Unlock()
	return scratch, nil
}

// FetchSnapshot dials the primary once and retrieves its current
// checkpoint, for bootstrapping a fresh follower directory before the
// engine can even open it.
func FetchSnapshot(cfg ClientConfig) (seq uint64, data []byte, err error) {
	cfg.defaults()
	conn, err := cfg.Dial(cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	hello := &message{Type: msgHello, ID: cfg.ID}
	conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
	if _, err := writeMessage(conn, hello, nil); err != nil {
		return 0, nil, err
	}
	conn.SetReadDeadline(time.Now().Add(cfg.ReadTimeout))
	m, err := readMessage(conn)
	if err != nil {
		return 0, nil, err
	}
	if m.Type != msgSnapshot {
		return 0, nil, fmt.Errorf("repl: expected snapshot, got message type %d", m.Type)
	}
	return m.Seq, m.Data, nil
}
