package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestScheduleDeterminism: the same seed and event sequence must yield
// the same decision stream — the replayability contract.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{DropRate: 0.2, TruncateRate: 0.2, DelayRate: 0.3, MaxDelay: time.Millisecond, PartitionRate: 0.05, PartitionFor: time.Millisecond, DiskFailRate: 0.1}
	ops := []Op{OpRead, OpWrite, OpAccept, OpDisk, OpWrite, OpRead, OpDisk, OpWrite}
	run := func() []decision {
		s := NewSchedule(42, cfg)
		var out []decision
		for i := 0; i < 400; i++ {
			out = append(out, s.decide(ops[i%len(ops)]))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must (overwhelmingly) differ somewhere.
	s2 := NewSchedule(43, cfg)
	diff := false
	for i := 0; i < 400; i++ {
		if s2.decide(ops[i%len(ops)]) != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical 400-event schedules")
	}
}

// TestFileLimit reproduces the failingFile contract: writes past the
// byte limit fail after the fitting prefix lands.
func TestFileLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	raw, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{F: raw, Limit: 10}
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("write under limit: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !IsInjected(err) {
		t.Fatalf("write past limit: n=%d err=%v", n, err)
	}
	if f.Written() != 10 {
		t.Fatalf("written=%d, want 10", f.Written())
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "12345678ab" {
		t.Fatalf("file holds %q", data)
	}
}

// TestConnTruncateMidFrame: a truncating write delivers a strict
// prefix to the peer and then the connection dies — the peer can read
// the prefix and then sees EOF/reset, never the full frame.
func TestConnTruncateMidFrame(t *testing.T) {
	sched := NewSchedule(7, Config{TruncateRate: 1})
	n := NewNetwork(sched)
	srv, cli := net.Pipe()
	defer srv.Close()
	wc := &Conn{Conn: cli, net: n}
	n.track(wc)

	frame := bytes.Repeat([]byte{0xAB}, 128)
	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(srv)
		got <- buf
	}()
	wn, err := wc.Write(frame)
	if !IsInjected(err) {
		t.Fatalf("truncating write returned %v", err)
	}
	if wn >= len(frame) {
		t.Fatalf("truncation wrote all %d bytes", wn)
	}
	select {
	case buf := <-got:
		if len(buf) != wn {
			t.Fatalf("peer read %d bytes, writer reported %d", len(buf), wn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer read did not complete")
	}
}

// TestPartitionAndHeal: a manual partition kills live connections and
// refuses new traffic until healed.
func TestPartitionAndHeal(t *testing.T) {
	sched := NewSchedule(1, Config{})
	nw := NewNetwork(sched)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := nw.Listener(l)
	defer wl.Close()
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := wl.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	c1, err := nw.Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sc := <-accepted
	defer sc.Close()
	if _, err := c1.Write([]byte("x")); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}

	nw.Partition()
	if _, err := c1.Write([]byte("y")); err == nil {
		t.Fatal("write succeeded during partition")
	}
	if _, err := nw.Dial(l.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded during partition")
	}

	nw.Heal()
	c2, err := nw.Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("z")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

// TestInjectedErrors distinguishes injected from real failures.
func TestInjectedErrors(t *testing.T) {
	if !IsInjected(injectedErr{"x"}) {
		t.Fatal("IsInjected(injectedErr) = false")
	}
	if IsInjected(errors.New("real")) {
		t.Fatal("IsInjected(real error) = true")
	}
}
