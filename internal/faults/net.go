package faults

import (
	"net"
	"sync"
	"time"
)

// Network groups the wrapped connections of one fault domain and
// carries its partition state. Connections created through the same
// Network partition and heal together, which is what a replication
// test needs to cut the primary off from its standby as one event.
type Network struct {
	sched *Schedule

	mu          sync.Mutex
	partitioned bool      // manual partition, until Heal
	partUntil   time.Time // schedule-driven partition deadline
	conns       map[*Conn]struct{}
}

// NewNetwork builds a fault domain drawing decisions from sched.
func NewNetwork(sched *Schedule) *Network {
	return &Network{sched: sched, conns: make(map[*Conn]struct{})}
}

// Partition cuts the network by hand: every live connection is closed
// and every read, write and accept fails until Heal. Unlike
// schedule-driven partitions it does not expire on its own.
func (n *Network) Partition() {
	n.mu.Lock()
	n.partitioned = true
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Conn.Close()
	}
}

// Heal ends a manual partition.
func (n *Network) Heal() {
	n.mu.Lock()
	n.partitioned = false
	n.partUntil = time.Time{}
	n.mu.Unlock()
}

// Partitioned reports whether the network is currently cut (manually
// or by an unexpired schedule-driven partition).
func (n *Network) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned || time.Now().Before(n.partUntil)
}

// openPartition starts a schedule-driven partition: live connections
// die now, and the cut heals itself once the configured duration
// elapses.
func (n *Network) openPartition() {
	n.mu.Lock()
	n.partUntil = time.Now().Add(n.sched.cfg.PartitionFor)
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Conn.Close()
	}
}

func (n *Network) track(c *Conn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Network) untrack(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Listener wraps l: accepted connections join the fault domain, and
// accepts during a partition are refused (the connection is closed
// immediately, as a dropped SYN would leave the dialer).
func (n *Network) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, net: n}
}

// Dial wraps a dialed connection into the fault domain. The dial
// itself fails during a partition.
func (n *Network) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if n.Partitioned() {
		return nil, injectedErr{"dial during partition"}
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	wc := &Conn{Conn: c, net: n}
	n.track(wc)
	return wc, nil
}

type listener struct {
	net.Listener
	net *Network
}

// Accept wraps accepted connections, dropping them while partitioned.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.net.Partitioned() {
			c.Close()
			continue
		}
		if d := l.net.sched.decide(OpAccept); d.act == ActDrop || d.partition {
			if d.partition {
				l.net.openPartition()
			}
			c.Close()
			continue
		}
		wc := &Conn{Conn: c, net: l.net}
		l.net.track(wc)
		return wc, nil
	}
}

// Conn is a connection inside a fault domain. Reads and writes
// consult the schedule; a drop or truncate closes the underlying
// connection so the peer observes the failure too.
type Conn struct {
	net.Conn
	net *Network
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.net.Partitioned() {
		c.Conn.Close()
		return 0, injectedErr{"read during partition"}
	}
	d := c.net.sched.decide(OpRead)
	if d.partition {
		c.net.openPartition()
		return 0, injectedErr{"partition"}
	}
	switch d.act {
	case ActDrop:
		c.Conn.Close()
		return 0, injectedErr{"read drop"}
	case ActDelay:
		time.Sleep(d.delay)
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn. ActTruncate sends a strict prefix and
// kills the connection — with length-prefixed frames written in one
// call, that is exactly a truncate-mid-frame fault at the receiver.
func (c *Conn) Write(p []byte) (int, error) {
	if c.net.Partitioned() {
		c.Conn.Close()
		return 0, injectedErr{"write during partition"}
	}
	d := c.net.sched.decide(OpWrite)
	if d.partition {
		c.net.openPartition()
		return 0, injectedErr{"partition"}
	}
	switch d.act {
	case ActDrop:
		c.Conn.Close()
		return 0, injectedErr{"write drop"}
	case ActTruncate:
		cut := int(d.frac * float64(len(p)))
		n, _ := c.Conn.Write(p[:cut])
		c.Conn.Close()
		return n, injectedErr{"write truncated"}
	case ActDelay:
		time.Sleep(d.delay)
	}
	return c.Conn.Write(p)
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.net.untrack(c)
	return c.Conn.Close()
}
