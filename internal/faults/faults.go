// Package faults is the reusable fault-injection layer of the test
// suite: scriptable network faults (drop, delay, partition,
// truncate-mid-frame) over wrapped net.Conn/net.Listener pairs, and
// disk write faults generalizing the failingFile of the crash-point
// sweeps.
//
// All decisions come from a Schedule: a seeded deterministic generator
// that maps the n-th I/O event to an action. Two runs that present the
// same event sequence to a schedule built from the same seed inject
// exactly the same faults, which is what makes a failing fuzz or
// metamorphic run replayable — re-run with the logged seed and the
// fault pattern reproduces.
package faults

import (
	"io"
	"math/rand"
	"sync"
	"time"
)

// Op classifies the I/O event a Schedule is deciding on.
type Op int

const (
	// OpRead is a connection read.
	OpRead Op = iota
	// OpWrite is a connection write.
	OpWrite
	// OpAccept is a listener accept.
	OpAccept
	// OpDisk is a disk file write.
	OpDisk
)

// Action is a schedule's decision for one event.
type Action int

const (
	// ActNone lets the event proceed untouched.
	ActNone Action = iota
	// ActDelay stalls the event, then lets it proceed.
	ActDelay
	// ActDrop kills the connection (or fails the disk write) before
	// any byte of the event transfers.
	ActDrop
	// ActTruncate transfers a strict prefix of the event's bytes and
	// then kills the connection — the torn-frame model: the peer
	// receives part of a length-prefixed frame and must treat the
	// stream as ended at the previous clean boundary.
	ActTruncate
)

// Config sets the per-event fault probabilities of a Schedule. All
// rates are in [0, 1] and independent; a zero Config injects nothing.
type Config struct {
	// DropRate is the probability a read or write kills the
	// connection outright.
	DropRate float64
	// TruncateRate is the probability a write transfers only a prefix
	// before the connection dies (reads cannot truncate; the bytes
	// were either sent or not).
	TruncateRate float64
	// DelayRate is the probability an event stalls for a uniform
	// duration up to MaxDelay before proceeding.
	DelayRate float64
	// MaxDelay bounds an injected delay; zero disables delays even
	// when DelayRate is set.
	MaxDelay time.Duration
	// PartitionRate is the probability an event opens a network
	// partition: the triggering connection dies, and every connection
	// and accept through the same Network fails until PartitionFor
	// has elapsed.
	PartitionRate float64
	// PartitionFor is how long a schedule-driven partition lasts.
	PartitionFor time.Duration
	// DiskFailRate is the probability a disk write fails, possibly
	// leaving a short (torn) write behind.
	DiskFailRate float64
}

// decision is one resolved event: the action plus its parameters.
type decision struct {
	act   Action
	delay time.Duration
	// frac in [0,1) picks the truncation point within the buffer.
	frac float64
	// partition reports that this event also opens a partition.
	partition bool
}

// Schedule turns a seed into a deterministic fault script. It is safe
// for concurrent use; concurrent callers serialize on an internal
// mutex, so the event numbering (and therefore the fault pattern) is
// determined by the order events reach the schedule.
type Schedule struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    Config
	events uint64
}

// NewSchedule builds a deterministic schedule from a seed.
func NewSchedule(seed int64, cfg Config) *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Events returns how many events the schedule has decided so far — a
// progress gauge for logs, not part of the deterministic contract.
func (s *Schedule) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

func (s *Schedule) decide(op Op) decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events++
	var d decision
	// Draw every rate in a fixed order so one event consumes a fixed
	// number of rng values regardless of outcome — the stream of
	// decisions depends only on (seed, event index).
	pDrop := s.rng.Float64()
	pTrunc := s.rng.Float64()
	pDelay := s.rng.Float64()
	fDelay := s.rng.Float64()
	fCut := s.rng.Float64()
	pPart := s.rng.Float64()
	pDisk := s.rng.Float64()

	if op == OpDisk {
		if pDisk < s.cfg.DiskFailRate {
			d.act = ActTruncate // short write; frac 0 degenerates to a clean failure
			d.frac = fCut
		}
		return d
	}
	if s.cfg.PartitionRate > 0 && pPart < s.cfg.PartitionRate {
		d.partition = true
		d.act = ActDrop
		return d
	}
	switch {
	case pDrop < s.cfg.DropRate:
		d.act = ActDrop
	case op == OpWrite && pTrunc < s.cfg.TruncateRate:
		d.act = ActTruncate
		d.frac = fCut
	case pDelay < s.cfg.DelayRate && s.cfg.MaxDelay > 0:
		d.act = ActDelay
		d.delay = time.Duration(fDelay * float64(s.cfg.MaxDelay))
	}
	return d
}

// writeFile is the file surface the disk-fault wrapper needs — the
// same method set as wal.File, declared structurally so the package
// has no dependency direction with internal/wal.
type writeFile interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// File wraps a log file and injects write failures: a hard byte limit
// (the disk-full model of the original failingFile) and, when a
// Schedule with DiskFailRate is attached, probabilistic failures that
// may leave a short torn write behind. The zero Limit means no limit;
// a negative Limit models a disk that is already full (every write
// fails without landing a byte).
type File struct {
	F writeFile
	// Limit, when non-zero, fails any write that would push the total
	// past Limit bytes, first writing the prefix that still fits —
	// the disk-full / yanked-power model.
	Limit int
	// Sched, when non-nil, draws OpDisk decisions for every write.
	Sched *Schedule

	written int
	err     error
}

// Written returns the bytes successfully written through the wrapper.
func (f *File) Written() int { return f.written }

// Write implements io.Writer with the configured fault model.
func (f *File) Write(p []byte) (int, error) {
	if f.Limit != 0 {
		room := f.Limit - f.written
		if room < len(p) {
			if room < 0 {
				room = 0
			}
			n, _ := f.F.Write(p[:room])
			f.written += n
			return n, injectedErr{"disk write past limit"}
		}
	}
	if f.Sched != nil {
		if d := f.Sched.decide(OpDisk); d.act == ActTruncate {
			cut := int(d.frac * float64(len(p)))
			n, _ := f.F.Write(p[:cut])
			f.written += n
			return n, injectedErr{"disk write fault"}
		}
	}
	n, err := f.F.Write(p)
	f.written += n
	return n, err
}

// Close implements io.Closer.
func (f *File) Close() error { return f.F.Close() }

// Sync passes through; fsync faults are modelled as write faults (the
// engine treats a failed sync as terminal, which the crash sweeps
// already cover).
func (f *File) Sync() error { return f.F.Sync() }

// Truncate passes through so the log's partial-write rollback works.
func (f *File) Truncate(size int64) error { return f.F.Truncate(size) }

// injectedErr marks an error as fault-injected, so tests can tell
// injected failures from real ones.
type injectedErr struct{ what string }

func (e injectedErr) Error() string { return "faults: injected " + e.what }

// IsInjected reports whether err came from this package's injection.
func IsInjected(err error) bool {
	_, ok := err.(injectedErr)
	return ok
}
