package threshtree

import (
	"sort"
	"testing"
)

func probeAll(t *Tree, c float64) []Ref {
	var out []Ref
	t.ProbeBeatable(c, func(q Ref) { out = append(out, q) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProbeBeatableReturnsPrefix(t *testing.T) {
	tr := New(1)
	// Query 1 needs at least 0.5 from this term to matter; query 2 needs
	// 0.2; query 3 matches on any contribution (bound 0).
	tr.Set(1, 0.5)
	tr.Set(2, 0.2)
	tr.Set(3, 0)

	// A contribution of 0.9 beats every bound.
	if got := probeAll(tr, 0.9); !eq(got, []Ref{1, 2, 3}) {
		t.Fatalf("probe(0.9) = %v", got)
	}
	// 0.3 beats queries 2 and 3 only.
	if got := probeAll(tr, 0.3); !eq(got, []Ref{2, 3}) {
		t.Fatalf("probe(0.3) = %v", got)
	}
	// 0.1 only beats the zero bound.
	if got := probeAll(tr, 0.1); !eq(got, []Ref{3}) {
		t.Fatalf("probe(0.1) = %v", got)
	}
}

func TestProbeBeatableIncludesExactBound(t *testing.T) {
	// A contribution exactly equal to a bound can still meet it, so the
	// probe must be inclusive: θ ≤ c matches, only θ > c is skipped.
	tr := New(1)
	tr.Set(1, 0.5)
	if got := probeAll(tr, 0.5); !eq(got, []Ref{1}) {
		t.Fatalf("probe at exact bound = %v, want [1]", got)
	}
	if got := probeAll(tr, 0.49999); len(got) != 0 {
		t.Fatalf("probe below bound = %v, want empty", got)
	}
}

func TestRemoveAndLen(t *testing.T) {
	tr := New(1)
	tr.Set(1, 0.5)
	tr.Set(2, 0.4)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Remove(1, 0.5) {
		t.Fatal("Remove existing failed")
	}
	if tr.Remove(1, 0.5) {
		t.Fatal("Remove twice succeeded")
	}
	if tr.Remove(2, 0.5) {
		t.Fatal("Remove with wrong bound succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := probeAll(tr, 0.9); !eq(got, []Ref{2}) {
		t.Fatalf("probe after removal = %v", got)
	}
}

func TestManyQueriesSameTerm(t *testing.T) {
	tr := New(1)
	for q := Ref(1); q <= 100; q++ {
		tr.Set(q, float64(q)/100)
	}
	// A contribution of 0.505 beats bounds 0.01 .. 0.50 → queries 1..50.
	got := probeAll(tr, 0.505)
	if len(got) != 50 || got[0] != 1 || got[49] != 50 {
		t.Fatalf("probe returned %d queries, first %v last %v", len(got), got[0], got[len(got)-1])
	}
}

func TestMinTheta(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func() *Tree
	}{
		{"tiered", func() *Tree { return New(1) }},
		{"scan-all", func() *Tree { return NewScanAll(1) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			tr := mk.new()
			if _, ok := tr.MinTheta(); ok {
				t.Fatal("MinTheta on empty tree reported a value")
			}
			tr.Set(1, 0.5)
			tr.Set(2, 0.2)
			tr.Set(3, 0.8)
			if min, ok := tr.MinTheta(); !ok || min != 0.2 {
				t.Fatalf("MinTheta = %v,%v, want 0.2,true", min, ok)
			}
			tr.Remove(2, 0.2)
			if min, ok := tr.MinTheta(); !ok || min != 0.5 {
				t.Fatalf("MinTheta after remove = %v,%v, want 0.5,true", min, ok)
			}
		})
	}
}

func TestZeroBoundAlwaysProbed(t *testing.T) {
	tr := New(1)
	tr.Set(1, 0)
	got := probeAll(tr, 1e-12)
	if !eq(got, []Ref{1}) {
		t.Fatalf("probe = %v: zero bounds must match every positive contribution", got)
	}
}

func TestProbeOrderIsThetaThenRef(t *testing.T) {
	tr := New(7)
	tr.Set(5, 0.3)
	tr.Set(2, 0.1)
	tr.Set(9, 0.3)
	tr.Set(1, 0.2)
	var got []Ref
	tr.ProbeBeatable(1, func(q Ref) { got = append(got, q) })
	want := []Ref{2, 1, 5, 9}
	if !eq(got, want) {
		t.Fatalf("probe order = %v, want %v", got, want)
	}
}
