package threshtree

import (
	"sort"
	"testing"

	"ita/internal/invindex"
	"ita/internal/model"
)

func probeAll(t *Tree, e invindex.EntryKey) []Ref {
	var out []Ref
	t.Probe(e, func(q Ref) { out = append(out, q) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProbeReturnsSuffixBelowEntry(t *testing.T) {
	tr := New(1)
	// Query 1 has consumed down to weight 0.5; query 2 down to 0.2;
	// query 3 has consumed the whole list.
	tr.Set(1, invindex.EntryKey{W: 0.5, Doc: 10})
	tr.Set(2, invindex.EntryKey{W: 0.2, Doc: 20})
	tr.Set(3, invindex.Bottom())

	// An arrival with weight 0.9 lands ahead of every threshold.
	if got := probeAll(tr, invindex.EntryKey{W: 0.9, Doc: 99}); !eq(got, []Ref{1, 2, 3}) {
		t.Fatalf("probe(0.9) = %v", got)
	}
	// Weight 0.3 lands ahead of queries 2 and 3 only.
	if got := probeAll(tr, invindex.EntryKey{W: 0.3, Doc: 99}); !eq(got, []Ref{2, 3}) {
		t.Fatalf("probe(0.3) = %v", got)
	}
	// Weight 0.1 only beats the fully-consumed query 3.
	if got := probeAll(tr, invindex.EntryKey{W: 0.1, Doc: 99}); !eq(got, []Ref{3}) {
		t.Fatalf("probe(0.1) = %v", got)
	}
}

func TestProbeExcludesThresholdPositionItself(t *testing.T) {
	tr := New(1)
	// Query 1's threshold sits exactly at entry (0.5, doc 10): that
	// entry is the first *unconsumed* one, so probing with it must not
	// return the query.
	tr.Set(1, invindex.EntryKey{W: 0.5, Doc: 10})
	if got := probeAll(tr, invindex.EntryKey{W: 0.5, Doc: 10}); len(got) != 0 {
		t.Fatalf("probe at threshold position = %v, want empty", got)
	}
	// A different document with the same weight and a smaller id sits
	// ahead of the threshold in list order, so it does match.
	if got := probeAll(tr, invindex.EntryKey{W: 0.5, Doc: 9}); !eq(got, []Ref{1}) {
		t.Fatalf("probe at earlier tie = %v", got)
	}
	// A larger id at the same weight is behind the threshold: no match.
	if got := probeAll(tr, invindex.EntryKey{W: 0.5, Doc: 11}); len(got) != 0 {
		t.Fatalf("probe at later tie = %v, want empty", got)
	}
}

func TestRemoveAndLen(t *testing.T) {
	tr := New(1)
	pos1 := invindex.EntryKey{W: 0.5, Doc: 1}
	pos2 := invindex.EntryKey{W: 0.4, Doc: 2}
	tr.Set(1, pos1)
	tr.Set(2, pos2)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Remove(1, pos1) {
		t.Fatal("Remove existing failed")
	}
	if tr.Remove(1, pos1) {
		t.Fatal("Remove twice succeeded")
	}
	if tr.Remove(2, pos1) {
		t.Fatal("Remove with wrong position succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := probeAll(tr, invindex.EntryKey{W: 0.9, Doc: 9}); !eq(got, []Ref{2}) {
		t.Fatalf("probe after removal = %v", got)
	}
}

func TestManyQueriesSameTerm(t *testing.T) {
	tr := New(1)
	for q := Ref(1); q <= 100; q++ {
		tr.Set(q, invindex.EntryKey{W: float64(q) / 100, Doc: model.DocID(q)})
	}
	// Weight 0.505 beats thresholds 0.01 .. 0.50 → queries 1..50.
	got := probeAll(tr, invindex.EntryKey{W: 0.505, Doc: 1000})
	if len(got) != 50 || got[0] != 1 || got[49] != 50 {
		t.Fatalf("probe returned %d queries, first %v last %v", len(got), got[0], got[len(got)-1])
	}
}

func TestBottomThresholdAlwaysProbed(t *testing.T) {
	tr := New(1)
	tr.Set(1, invindex.Bottom())
	got := probeAll(tr, invindex.EntryKey{W: 1e-9, Doc: ^model.DocID(0) - 1})
	if !eq(got, []Ref{1}) {
		t.Fatalf("probe = %v: Bottom thresholds must match every positive-weight entry", got)
	}
}
