// Package threshtree implements the per-term probe indexes of the
// engine: one structure per inverted list holding an entry ⟨b_{Q,t}, Q⟩
// for every query Q that includes term t, where b_{Q,t} is the smallest
// impact weight of term t that could contribute to pushing a document's
// score up to Q's current score floor. Entries are ordered by ascending
// bound, so "all queries a given term contribution can matter to" is a
// prefix scan with an early exit — ProbeBeatable — instead of a walk
// over every query registered on the term.
//
// The tree also maintains the term's minimum bound (MinTheta) in O(1),
// which gives the engine a whole-term skip: when an arrival's (or an
// epoch's maximum) contribution for a term is below the term's min-θ, no
// query on that term can be affected and the tree is not probed at all.
// In the skip-list tier the θ-ordering doubles as a per-block summary:
// every tower link spans a block of entries whose smallest θ is the θ at
// the link's origin, so a probe descends only into blocks that still
// contain beatable bounds and stops at the first entry past the
// contribution.
//
// The tree is tiered and frequency-adaptive. Query populations per term
// are Zipfian: at realistic dictionary sizes the vast majority of terms
// carry a handful of registered queries, while a small Zipf head carries
// thousands. A tree therefore starts as a compact sorted slice — 16
// bytes per entry, zero per-entry allocation, binary-search updates and
// a contiguous prefix probe — and promotes itself to a skip list once it
// crosses promoteAt entries. Shrinking below demoteAt (hysteresis, so a
// term oscillating around the crossover does not thrash) demotes it
// back. Both tiers maintain the identical total order, so every
// operation is answer-identical regardless of tier.
//
// NewScanAll builds the entry-ordered reference twin: entries are keyed
// by query ref alone and ProbeBeatable scans all of them, testing each
// bound individually with no ordering and no early exit. It visits
// exactly the same set of queries (in ref order rather than θ order), so
// equivalence suites can prove the θ-ordered prefix scan loses no query;
// it is not a production configuration.
package threshtree

import (
	"sort"

	"ita/internal/skiplist"
)

// Ref identifies a query registered in a tree. The engine passes dense
// internal query ids (see internal/core), never external QueryIDs: the
// tree is an interior structure below the API boundary.
type Ref = uint32

type key struct {
	theta float64
	ref   Ref
}

func keyLess(a, b key) bool {
	if a.theta != b.theta {
		return a.theta < b.theta
	}
	return a.ref < b.ref
}

func refLess(a, b Ref) bool { return a < b }

// Tier crossover. The slice tier's probe is a contiguous prefix walk
// over 16-byte entries and its update a binary search plus one memmove;
// the skip-list tier trades that for O(log n) pointer chasing. The
// crossover measured by BenchmarkTierCrossover sits in the low hundreds
// of entries; promoteAt stays at the PR 5 setting, where the slice tier
// still stores an entry in 16 bytes with zero per-entry allocations
// versus the skip list's ~90 bytes across one node allocation — so the
// Zipfian long tail of terms stays compact, and only genuinely hot
// terms pay for pointer structure. demoteAt at ~promoteAt/3 gives
// enough hysteresis that Unregister/re-Register churn around the
// boundary cannot thrash promote/demote rebuilds.
const (
	promoteAt = 128
	demoteAt  = 40
)

// Tree is the probe index of one inverted list. The zero value is not
// usable; call New or NewScanAll.
type Tree struct {
	seed    uint64
	entries []key // slice tier, sorted by keyLess; unused once sl != nil
	sl      *skiplist.List[key, struct{}]
	scan    *skiplist.List[Ref, float64] // entry-ordered reference mode
}

// New returns an empty tiered θ-ordered tree.
func New(seed uint64) *Tree {
	return &Tree{seed: seed}
}

// NewScanAll returns an empty tree in entry-ordered reference mode:
// entries are keyed by ref, probes scan every entry, and MinTheta is a
// full scan. It exists so equivalence suites can prove the θ-ordered
// prefix probe visits exactly the same queries; it is not a production
// configuration.
func NewScanAll(seed uint64) *Tree {
	t := &Tree{seed: seed}
	t.scan = skiplist.New[Ref, float64](refLess, seed)
	return t
}

// Len returns the number of registered bounds.
func (t *Tree) Len() int {
	switch {
	case t.scan != nil:
		return t.scan.Len()
	case t.sl != nil:
		return t.sl.Len()
	}
	return len(t.entries)
}

// Set registers (or re-registers) query q's bound for this term. A
// previous bound for q must be removed with Remove first; Set with two
// different bounds for the same query stores both, which corrupts
// probing.
func (t *Tree) Set(q Ref, theta float64) {
	if t.scan != nil {
		t.scan.Insert(q, theta)
		return
	}
	k := key{theta: theta, ref: q}
	if t.sl != nil {
		t.sl.Insert(k, struct{}{})
		return
	}
	i := sort.Search(len(t.entries), func(i int) bool { return !keyLess(t.entries[i], k) })
	t.entries = append(t.entries, key{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = k
	if len(t.entries) > promoteAt {
		t.promote()
	}
}

// Remove deletes query q's bound theta, reporting whether exactly that
// (q, theta) pair was present.
func (t *Tree) Remove(q Ref, theta float64) bool {
	if t.scan != nil {
		if got, ok := t.scan.Get(q); !ok || got != theta {
			return false
		}
		return t.scan.Delete(q)
	}
	k := key{theta: theta, ref: q}
	if t.sl != nil {
		ok := t.sl.Delete(k)
		if ok && t.sl.Len() < demoteAt {
			t.demote()
		}
		return ok
	}
	i := sort.Search(len(t.entries), func(i int) bool { return !keyLess(t.entries[i], k) })
	if i >= len(t.entries) || t.entries[i] != k {
		return false
	}
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
	return true
}

// MinTheta returns the smallest bound registered in the tree, or
// (0, false) when the tree is empty. In both production tiers this is
// O(1) — the head of the θ-ordering — which is what makes the engine's
// whole-term skip free. In scan-all reference mode it is an O(n) scan.
func (t *Tree) MinTheta() (float64, bool) {
	switch {
	case t.scan != nil:
		it := t.scan.First()
		if !it.Valid() {
			return 0, false
		}
		min := it.Value()
		for it.Next(); it.Valid(); it.Next() {
			if v := it.Value(); v < min {
				min = v
			}
		}
		return min, true
	case t.sl != nil:
		k, _, ok := t.sl.Min()
		return k.theta, ok
	case len(t.entries) > 0:
		return t.entries[0].theta, true
	}
	return 0, false
}

// ProbeBeatable calls fn for every query whose bound is beatable by the
// given term contribution c — every entry with θ ≤ c. In the θ-ordered
// tiers this is a prefix walk that exits at the first entry past c, so
// its cost is proportional to the number of queries visited, not the
// number registered on the term; iteration is in ascending (θ, ref)
// order. In scan-all reference mode every entry is tested in ref order.
// fn must not modify the tree.
func (t *Tree) ProbeBeatable(c float64, fn func(q Ref)) {
	switch {
	case t.scan != nil:
		for it := t.scan.First(); it.Valid(); it.Next() {
			if it.Value() <= c {
				fn(it.Key())
			}
		}
	case t.sl != nil:
		for it := t.sl.First(); it.Valid(); it.Next() {
			k := it.Key()
			if k.theta > c {
				return
			}
			fn(k.ref)
		}
	default:
		for i := range t.entries {
			if t.entries[i].theta > c {
				return
			}
			fn(t.entries[i].ref)
		}
	}
}

// promote rebuilds the slice tier into a skip list. Tower heights come
// from the tree's own seed, so two trees with the same seed and history
// stay structurally comparable whichever path built them.
func (t *Tree) promote() {
	sl := skiplist.New[key, struct{}](keyLess, t.seed)
	for _, k := range t.entries {
		sl.Insert(k, struct{}{})
	}
	t.entries = nil
	t.sl = sl
}

// demote rebuilds the skip list into the slice tier.
func (t *Tree) demote() {
	entries := make([]key, 0, t.sl.Len())
	for it := t.sl.First(); it.Valid(); it.Next() {
		entries = append(entries, it.Key())
	}
	t.entries = entries
	t.sl = nil
}

// MemoryBytes estimates the tree's heap footprint: entry storage plus
// per-tier overhead (skip-list nodes and towers in the upper tiers).
func (t *Tree) MemoryBytes() uint64 {
	const treeFixed = 64
	switch {
	case t.scan != nil:
		return treeFixed + t.scan.MemoryBytes()
	case t.sl != nil:
		return treeFixed + t.sl.MemoryBytes()
	}
	return treeFixed + uint64(cap(t.entries))*16
}
