// Package threshtree implements the paper's threshold trees: one
// book-keeping structure per inverted list holding an entry ⟨θ_{Q,t}, Q⟩
// for every query Q that includes term t, ordered so that "all queries
// whose local threshold lies below a given impact entry" is a suffix
// scan.
//
// Local thresholds are full list positions (invindex.EntryKey), not bare
// weights, which makes the consumed-region test exact even under weight
// ties: an entry e is ahead of a threshold θ iff e strictly precedes θ
// in list order.
//
// The tree is tiered and frequency-adaptive. Query populations per term
// are Zipfian: at realistic dictionary sizes the vast majority of terms
// carry a handful of registered queries, while a small Zipf head carries
// thousands. A tree therefore starts as a compact sorted slice — 24
// bytes per entry, zero per-entry allocation, binary-search probes and
// memmove updates — and promotes itself to a skip list once it crosses
// promoteAt entries, where O(n) memmoves would start to lose to O(log n)
// pointer chasing. Shrinking below demoteAt (hysteresis, so a term
// oscillating around the crossover does not thrash) demotes it back.
// Both tiers maintain the identical total order, so every operation is
// answer-identical regardless of tier; NewSkiplistOnly pins a tree to
// the skip-list tier so equivalence tests can prove exactly that.
package threshtree

import (
	"sort"

	"ita/internal/invindex"
	"ita/internal/skiplist"
)

// Ref identifies a query registered in a tree. The engine passes dense
// internal query ids (see internal/core), never external QueryIDs: the
// tree is an interior structure below the API boundary.
type Ref = uint32

type key struct {
	pos invindex.EntryKey
	ref Ref
}

func keyLess(a, b key) bool {
	if a.pos != b.pos {
		return invindex.Before(a.pos, b.pos)
	}
	return a.ref < b.ref
}

// Tier crossover. The slice tier's probe is a binary search plus a
// linear suffix walk over contiguous 24-byte entries; its update is a
// binary search plus one memmove. BenchmarkTierCrossover (this
// package) measures mixed Set/Probe/Remove churn on the build host
// (GOMAXPROCS=1, Xeon 2.7 GHz): the slice tier wins 9.5x at 16 entries
// (87ns vs 827ns per op triple) and 5x at 64 (200ns vs 1030ns); the
// tiers cross between 64 and 128, where the skip list pulls ~1.2x
// ahead (1474ns vs 1195ns). promoteAt sits at that crossing: CPU is
// already a wash there while the slice tier still stores an entry in
// 24 bytes with zero per-entry allocations versus the skip list's
// ~90 bytes across one node allocation — so the Zipfian long tail of
// terms (the overwhelming majority, holding a handful of queries each)
// stays compact, and only genuinely hot terms pay for pointer
// structure. demoteAt at ~promoteAt/3 gives enough hysteresis that
// Unregister/re-Register churn around the boundary cannot thrash
// promote/demote rebuilds.
const (
	promoteAt = 128
	demoteAt  = 40
)

// Tree is the threshold tree of one inverted list. The zero value is
// not usable; call New or NewSkiplistOnly.
type Tree struct {
	seed    uint64
	entries []key // slice tier, sorted by keyLess; unused once sl != nil
	sl      *skiplist.List[key, struct{}]
	pinned  bool // never demote (skiplist-only reference mode)
}

// New returns an empty tiered tree.
func New(seed uint64) *Tree {
	return &Tree{seed: seed}
}

// NewSkiplistOnly returns an empty tree pinned to the skip-list tier.
// It exists so equivalence suites can run the engine grid against the
// pre-tiering representation and prove the tiers answer-identical; it
// is not a production configuration.
func NewSkiplistOnly(seed uint64) *Tree {
	t := &Tree{seed: seed, pinned: true}
	t.sl = skiplist.New[key, struct{}](keyLess, seed)
	return t
}

// Len returns the number of registered thresholds.
func (t *Tree) Len() int {
	if t.sl != nil {
		return t.sl.Len()
	}
	return len(t.entries)
}

// Set registers (or re-registers) query q's local threshold at pos.
// A previous threshold for q must be removed with Remove first; Set
// with two different positions for the same query stores both, which
// corrupts probing.
func (t *Tree) Set(q Ref, pos invindex.EntryKey) {
	k := key{pos: pos, ref: q}
	if t.sl != nil {
		t.sl.Insert(k, struct{}{})
		return
	}
	i := sort.Search(len(t.entries), func(i int) bool { return !keyLess(t.entries[i], k) })
	t.entries = append(t.entries, key{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = k
	if len(t.entries) > promoteAt {
		t.promote()
	}
}

// Remove deletes query q's threshold at pos, reporting whether it was
// present.
func (t *Tree) Remove(q Ref, pos invindex.EntryKey) bool {
	k := key{pos: pos, ref: q}
	if t.sl != nil {
		ok := t.sl.Delete(k)
		if ok && !t.pinned && t.sl.Len() < demoteAt {
			t.demote()
		}
		return ok
	}
	i := sort.Search(len(t.entries), func(i int) bool { return !keyLess(t.entries[i], k) })
	if i >= len(t.entries) || t.entries[i] != k {
		return false
	}
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
	return true
}

// promote rebuilds the slice tier into a skip list. Tower heights come
// from the tree's own seed, so two trees with the same seed and history
// stay structurally comparable whichever path built them.
func (t *Tree) promote() {
	sl := skiplist.New[key, struct{}](keyLess, t.seed)
	for _, k := range t.entries {
		sl.Insert(k, struct{}{})
	}
	t.entries = nil
	t.sl = sl
}

// demote rebuilds the skip list into the slice tier.
func (t *Tree) demote() {
	entries := make([]key, 0, t.sl.Len())
	for it := t.sl.First(); it.Valid(); it.Next() {
		entries = append(entries, it.Key())
	}
	t.entries = entries
	t.sl = nil
}

// Probe calls fn for every query whose local threshold lies strictly
// after entry e in list order — exactly the queries for which e falls
// inside the consumed region and may therefore affect the result. The
// iteration is in ascending (position, ref) order in both tiers. fn
// must not modify the tree.
func (t *Tree) Probe(e invindex.EntryKey, fn func(q Ref)) {
	// Thresholds equal to e (same position) mean e itself is the first
	// unconsumed entry, so they must not match: start strictly after
	// every (e, *) key.
	after := key{pos: e, ref: ^Ref(0)}
	if t.sl != nil {
		it := t.sl.SeekGT(after)
		for ; it.Valid(); it.Next() {
			fn(it.Key().ref)
		}
		return
	}
	i := sort.Search(len(t.entries), func(i int) bool { return keyLess(after, t.entries[i]) })
	for ; i < len(t.entries); i++ {
		fn(t.entries[i].ref)
	}
}

// MemoryBytes estimates the tree's heap footprint: entry storage plus
// per-tier overhead (skip-list nodes and towers in the upper tier).
func (t *Tree) MemoryBytes() uint64 {
	const treeFixed = 64
	if t.sl != nil {
		return treeFixed + t.sl.MemoryBytes()
	}
	return treeFixed + uint64(cap(t.entries))*24
}
