// Package threshtree implements the paper's threshold trees: one
// book-keeping structure per inverted list holding an entry ⟨θ_{Q,t}, Q⟩
// for every query Q that includes term t, ordered so that "all queries
// whose local threshold lies below a given impact entry" is a suffix
// scan.
//
// Local thresholds are full list positions (invindex.EntryKey), not bare
// weights, which makes the consumed-region test exact even under weight
// ties: an entry e is ahead of a threshold θ iff e strictly precedes θ
// in list order.
package threshtree

import (
	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/skiplist"
)

type key struct {
	pos   invindex.EntryKey
	query model.QueryID
}

func keyLess(a, b key) bool {
	if a.pos != b.pos {
		return invindex.Before(a.pos, b.pos)
	}
	return a.query < b.query
}

// Tree is the threshold tree of one inverted list. The zero value is not
// usable; call New.
type Tree struct {
	sl *skiplist.List[key, struct{}]
}

// New returns an empty tree.
func New(seed uint64) *Tree {
	return &Tree{sl: skiplist.New[key, struct{}](keyLess, seed)}
}

// Len returns the number of registered thresholds.
func (t *Tree) Len() int { return t.sl.Len() }

// Set registers (or re-registers) query q's local threshold at pos.
// A previous threshold for q must be removed with Remove first; Set
// with two different positions for the same query stores both, which
// corrupts probing.
func (t *Tree) Set(q model.QueryID, pos invindex.EntryKey) {
	t.sl.Insert(key{pos: pos, query: q}, struct{}{})
}

// Remove deletes query q's threshold at pos, reporting whether it was
// present.
func (t *Tree) Remove(q model.QueryID, pos invindex.EntryKey) bool {
	return t.sl.Delete(key{pos: pos, query: q})
}

// Probe calls fn for every query whose local threshold lies strictly
// after entry e in list order — exactly the queries for which e falls
// inside the consumed region and may therefore affect the result. The
// iteration order is unspecified. fn must not modify the tree.
func (t *Tree) Probe(e invindex.EntryKey, fn func(q model.QueryID)) {
	// Thresholds equal to e (same position) mean e itself is the first
	// unconsumed entry, so they must not match: start strictly after
	// every (e, *) key.
	it := t.sl.SeekGT(key{pos: e, query: ^model.QueryID(0)})
	for ; it.Valid(); it.Next() {
		fn(it.Key().query)
	}
}
