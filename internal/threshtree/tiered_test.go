package threshtree

import (
	"fmt"
	"math/rand"
	"testing"

	"ita/internal/invindex"
	"ita/internal/model"
)

// TestTieredMatchesSkiplist drives a tiered tree and a skiplist-pinned
// tree through the same randomized Set/Remove/Probe churn, sized to
// cross the promote and demote thresholds repeatedly, and asserts every
// observable — Len, Remove results, and full Probe enumerations
// including order — is identical.
func TestTieredMatchesSkiplist(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tiered := New(uint64(seed))
			pure := NewSkiplistOnly(uint64(seed))

			type reg struct {
				ref Ref
				pos invindex.EntryKey
			}
			var live []reg
			next := Ref(1)
			randPos := func() invindex.EntryKey {
				return invindex.EntryKey{
					W:   float64(rng.Intn(64)) / 64,
					Doc: model.DocID(rng.Intn(128)),
				}
			}
			probeBoth := func() {
				e := randPos()
				var a, b []Ref
				tiered.Probe(e, func(q Ref) { a = append(a, q) })
				pure.Probe(e, func(q Ref) { b = append(b, q) })
				if len(a) != len(b) {
					t.Fatalf("probe(%v): tiered %d refs, skiplist %d", e, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("probe(%v): position %d: tiered %d, skiplist %d", e, i, a[i], b[i])
					}
				}
			}

			for op := 0; op < 6000; op++ {
				// Bias toward growth early, shrink late, so the run sweeps
				// up through promoteAt and back down through demoteAt.
				growBias := 3
				if op > 4000 {
					growBias = 1
				}
				switch r := rng.Intn(6 + growBias); {
				case r < 2+growBias: // Set
					e := reg{ref: next, pos: randPos()}
					next++
					tiered.Set(e.ref, e.pos)
					pure.Set(e.ref, e.pos)
					live = append(live, e)
				case r < 4+growBias && len(live) > 0: // Remove existing
					i := rng.Intn(len(live))
					e := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					ok1 := tiered.Remove(e.ref, e.pos)
					ok2 := pure.Remove(e.ref, e.pos)
					if !ok1 || !ok2 {
						t.Fatalf("remove(%d,%v): tiered %v, skiplist %v", e.ref, e.pos, ok1, ok2)
					}
				case r < 5+growBias: // Remove missing
					e := reg{ref: next + 1000000, pos: randPos()}
					if ok1, ok2 := tiered.Remove(e.ref, e.pos), pure.Remove(e.ref, e.pos); ok1 || ok2 {
						t.Fatalf("remove missing: tiered %v, skiplist %v", ok1, ok2)
					}
				default:
					probeBoth()
				}
				if tiered.Len() != pure.Len() {
					t.Fatalf("op %d: Len: tiered %d, skiplist %d", op, tiered.Len(), pure.Len())
				}
			}
			for i := 0; i < 64; i++ {
				probeBoth()
			}
			// Drain fully: exercises demote down to empty.
			for _, e := range live {
				if !tiered.Remove(e.ref, e.pos) || !pure.Remove(e.ref, e.pos) {
					t.Fatalf("drain remove(%d,%v) failed", e.ref, e.pos)
				}
			}
			if tiered.Len() != 0 || pure.Len() != 0 {
				t.Fatalf("drained: tiered %d, skiplist %d", tiered.Len(), pure.Len())
			}
		})
	}
}

// TestPromoteDemoteHysteresis pins the tier transitions: a tree crossing
// promoteAt moves to the skip-list tier, stays there until it shrinks
// below demoteAt, and answers identically throughout.
func TestPromoteDemoteHysteresis(t *testing.T) {
	tr := New(9)
	pos := func(i int) invindex.EntryKey {
		return invindex.EntryKey{W: float64(i%97) / 97, Doc: model.DocID(i)}
	}
	for i := 0; i < promoteAt; i++ {
		tr.Set(Ref(i), pos(i))
	}
	if tr.sl != nil {
		t.Fatalf("tree promoted at %d entries, promoteAt is %d", tr.Len(), promoteAt)
	}
	tr.Set(Ref(promoteAt), pos(promoteAt))
	if tr.sl == nil {
		t.Fatalf("tree not promoted past promoteAt (%d entries)", tr.Len())
	}
	// Shrink to demoteAt: still promoted (hysteresis).
	for i := tr.Len(); i > demoteAt; i-- {
		if !tr.Remove(Ref(i-1), pos(i-1)) {
			t.Fatalf("remove %d failed", i-1)
		}
	}
	if tr.sl == nil {
		t.Fatalf("tree demoted at %d entries, demoteAt is %d", tr.Len(), demoteAt)
	}
	// One below: demoted.
	if !tr.Remove(Ref(demoteAt-1), pos(demoteAt-1)) {
		t.Fatal("remove at demote boundary failed")
	}
	if tr.sl != nil {
		t.Fatalf("tree still promoted at %d entries (demoteAt %d)", tr.Len(), demoteAt)
	}
	// Contents survived the round trip.
	seen := 0
	tr.Probe(invindex.EntryKey{W: 2, Doc: 0}, func(Ref) { seen++ })
	if seen != tr.Len() {
		t.Fatalf("probe from Top saw %d of %d entries after demote", seen, tr.Len())
	}
}

// BenchmarkTierCrossover measures mixed churn (Set/Remove/Probe) at
// sizes bracketing the promote threshold, once per tier. This is the
// measurement behind the promoteAt/demoteAt constants: the slice tier
// wins below ~100 entries on every operation mix, remains competitive
// through the low hundreds, and loses past ~500 as memmoves outgrow the
// skip list's pointer walk.
func BenchmarkTierCrossover(b *testing.B) {
	for _, size := range []int{16, 64, 128, 256, 512, 1024} {
		for _, mode := range []string{"slice", "skiplist"} {
			if mode == "slice" && size > promoteAt {
				continue // the slice tier never holds this many live entries
			}
			b.Run(fmt.Sprintf("%s/n=%d", mode, size), func(b *testing.B) {
				mk := func() *Tree {
					if mode == "skiplist" {
						return NewSkiplistOnly(1)
					}
					return New(1)
				}
				tr := mk()
				pos := func(i int) invindex.EntryKey {
					return invindex.EntryKey{W: float64(i%509) / 509, Doc: model.DocID(i)}
				}
				for i := 0; i < size; i++ {
					tr.Set(Ref(i), pos(i))
				}
				probeAt := invindex.EntryKey{W: 0.5, Doc: 0}
				sink := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v := size + i
					tr.Set(Ref(v), pos(v))
					tr.Probe(probeAt, func(Ref) { sink++ })
					tr.Remove(Ref(v), pos(v))
				}
			})
		}
	}
}
