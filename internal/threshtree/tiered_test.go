package threshtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestTieredMatchesScanAll drives a tiered θ-ordered tree and an
// entry-ordered scan-all tree through the same randomized
// Set/Remove/Probe churn, sized to cross the promote and demote
// thresholds repeatedly, and asserts every observable — Len, Remove
// results, MinTheta, and full ProbeBeatable enumerations as sets — is
// identical. (Iteration order intentionally differs between the modes:
// θ-order versus ref-order; the engine is order-independent, so the
// suite compares visit sets.)
func TestTieredMatchesScanAll(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tiered := New(uint64(seed))
			scan := NewScanAll(uint64(seed))

			type reg struct {
				ref   Ref
				theta float64
			}
			var live []reg
			next := Ref(1)
			randTheta := func() float64 { return float64(rng.Intn(64)) / 64 }
			probeBoth := func() {
				c := randTheta()
				var a, b []Ref
				tiered.ProbeBeatable(c, func(q Ref) { a = append(a, q) })
				scan.ProbeBeatable(c, func(q Ref) { b = append(b, q) })
				sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
				if len(a) != len(b) {
					t.Fatalf("probe(%v): tiered %d refs, scan-all %d", c, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("probe(%v): position %d: tiered %d, scan-all %d", c, i, a[i], b[i])
					}
				}
				m1, ok1 := tiered.MinTheta()
				m2, ok2 := scan.MinTheta()
				if m1 != m2 || ok1 != ok2 {
					t.Fatalf("MinTheta: tiered %v,%v, scan-all %v,%v", m1, ok1, m2, ok2)
				}
			}

			for op := 0; op < 6000; op++ {
				// Bias toward growth early, shrink late, so the run sweeps
				// up through promoteAt and back down through demoteAt.
				growBias := 3
				if op > 4000 {
					growBias = 1
				}
				switch r := rng.Intn(6 + growBias); {
				case r < 2+growBias: // Set
					e := reg{ref: next, theta: randTheta()}
					next++
					tiered.Set(e.ref, e.theta)
					scan.Set(e.ref, e.theta)
					live = append(live, e)
				case r < 4+growBias && len(live) > 0: // Remove existing
					i := rng.Intn(len(live))
					e := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					ok1 := tiered.Remove(e.ref, e.theta)
					ok2 := scan.Remove(e.ref, e.theta)
					if !ok1 || !ok2 {
						t.Fatalf("remove(%d,%v): tiered %v, scan-all %v", e.ref, e.theta, ok1, ok2)
					}
				case r < 5+growBias: // Remove missing
					e := reg{ref: next + 1000000, theta: randTheta()}
					if ok1, ok2 := tiered.Remove(e.ref, e.theta), scan.Remove(e.ref, e.theta); ok1 || ok2 {
						t.Fatalf("remove missing: tiered %v, scan-all %v", ok1, ok2)
					}
				default:
					probeBoth()
				}
				if tiered.Len() != scan.Len() {
					t.Fatalf("op %d: Len: tiered %d, scan-all %d", op, tiered.Len(), scan.Len())
				}
			}
			for i := 0; i < 64; i++ {
				probeBoth()
			}
			// Drain fully: exercises demote down to empty.
			for _, e := range live {
				if !tiered.Remove(e.ref, e.theta) || !scan.Remove(e.ref, e.theta) {
					t.Fatalf("drain remove(%d,%v) failed", e.ref, e.theta)
				}
			}
			if tiered.Len() != 0 || scan.Len() != 0 {
				t.Fatalf("drained: tiered %d, scan-all %d", tiered.Len(), scan.Len())
			}
		})
	}
}

// TestPromoteDemoteHysteresis pins the tier transitions: a tree crossing
// promoteAt moves to the skip-list tier, stays there until it shrinks
// below demoteAt, and answers identically throughout.
func TestPromoteDemoteHysteresis(t *testing.T) {
	tr := New(9)
	theta := func(i int) float64 { return float64(i%97) / 97 }
	for i := 0; i < promoteAt; i++ {
		tr.Set(Ref(i), theta(i))
	}
	if tr.sl != nil {
		t.Fatalf("tree promoted at %d entries, promoteAt is %d", tr.Len(), promoteAt)
	}
	tr.Set(Ref(promoteAt), theta(promoteAt))
	if tr.sl == nil {
		t.Fatalf("tree not promoted past promoteAt (%d entries)", tr.Len())
	}
	// Shrink to demoteAt: still promoted (hysteresis).
	for i := tr.Len(); i > demoteAt; i-- {
		if !tr.Remove(Ref(i-1), theta(i-1)) {
			t.Fatalf("remove %d failed", i-1)
		}
	}
	if tr.sl == nil {
		t.Fatalf("tree demoted at %d entries, demoteAt is %d", tr.Len(), demoteAt)
	}
	// One below: demoted.
	if !tr.Remove(Ref(demoteAt-1), theta(demoteAt-1)) {
		t.Fatal("remove at demote boundary failed")
	}
	if tr.sl != nil {
		t.Fatalf("tree still promoted at %d entries (demoteAt %d)", tr.Len(), demoteAt)
	}
	// Contents survived the round trip.
	seen := 0
	tr.ProbeBeatable(2, func(Ref) { seen++ })
	if seen != tr.Len() {
		t.Fatalf("probe saw %d of %d entries after demote", seen, tr.Len())
	}
}

// BenchmarkTierCrossover measures mixed churn (Set/Remove/Probe) at
// sizes bracketing the promote threshold, once per tier. This is the
// measurement behind the promoteAt/demoteAt constants: the slice tier
// wins below ~100 entries on every operation mix thanks to contiguous
// 16-byte entries, and loses past the low hundreds as memmoves outgrow
// the skip list's pointer walk.
func BenchmarkTierCrossover(b *testing.B) {
	for _, size := range []int{16, 64, 128, 256, 512, 1024} {
		if size > promoteAt {
			continue // the slice tier never holds this many live entries
		}
		b.Run(fmt.Sprintf("slice/n=%d", size), func(b *testing.B) {
			benchTier(b, New(1), size)
		})
	}
	for _, size := range []int{128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("skiplist/n=%d", size), func(b *testing.B) {
			tr := New(1)
			for i := 0; i < promoteAt+1; i++ { // force promotion
				tr.Set(Ref(1000000+i), 2)
			}
			benchTier(b, tr, size)
			_ = tr
		})
	}
}

func benchTier(b *testing.B, tr *Tree, size int) {
	theta := func(i int) float64 { return float64(i%509) / 509 }
	for i := 0; i < size; i++ {
		tr.Set(Ref(i), theta(i))
	}
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := size + i
		tr.Set(Ref(v), theta(v))
		tr.ProbeBeatable(0.5, func(Ref) { sink++ })
		tr.Remove(Ref(v), theta(v))
	}
}
