package textproc

import (
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzStem asserts structural safety of the stemmer on arbitrary input:
// no panics, output never empty for non-empty lowercase alphabetic
// input, output never longer than the input.
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "caresses", "generalizations",
		"sssss", "yyyyy", "eeeee", "bly", "ies", "ational",
		"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxation",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		got := Stem(word)
		if len(got) > len(word) {
			t.Fatalf("Stem(%q) = %q grew the word", word, got)
		}
		isLowerAlpha := len(word) > 0
		for i := 0; i < len(word); i++ {
			if word[i] < 'a' || word[i] > 'z' {
				isLowerAlpha = false
				break
			}
		}
		if isLowerAlpha && len(got) == 0 {
			t.Fatalf("Stem(%q) produced empty stem", word)
		}
		if !isLowerAlpha && got != word {
			t.Fatalf("Stem(%q) = %q; non-alphabetic input must pass through", word, got)
		}
	})
}

// FuzzTokenize asserts the tokenizer's contract on arbitrary (including
// invalid UTF-8) input: tokens are lowercase, at least two characters,
// contain a letter, and appear in the input order.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "a b c", "x2 2x 42", "naïve café",
		"\xff\xfe broken utf8", "tabs\tand\nnewlines",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		Tokenize(text, func(tok string) {
			if utf8.RuneCountInString(tok) < 2 {
				t.Fatalf("token %q shorter than 2 runes", tok)
			}
			hasLetter := false
			for _, r := range tok {
				// Some letters (e.g. U+03D2 ϒ) are uppercase with no
				// lowercase mapping; "lowercased" means fixed under
				// ToLower, not absence of the Lu category.
				if r != unicode.ToLower(r) {
					t.Fatalf("token %q not lowercased", tok)
				}
				if unicode.IsLetter(r) {
					hasLetter = true
				}
			}
			if !hasLetter {
				t.Fatalf("token %q has no letter", tok)
			}
		})
	})
}
