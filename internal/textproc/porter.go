// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980), ported from the author's public
// domain ANSI C reference implementation, including its two published
// departures from the original paper (bli→ble in step 2 rather than
// abli→able, and the added logi→log rule).
//
// Only lowercase ASCII letters are stemmed; Stem lowercases its input
// and returns tokens containing other bytes unchanged.

package textproc

type stemmer struct {
	b []byte // working buffer
	k int    // index of last letter of the current word
	j int    // general offset maintained by ends()
}

// isCons reports whether b[i] is a consonant. 'y' is a consonant at the
// start of the word or after a vowel, i.e. when the previous letter is
// not a consonant.
func (z *stemmer) isCons(i int) bool {
	switch z.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !z.isCons(i - 1)
	default:
		return true
	}
}

// measure counts the consonant-vowel sequences (the "m" of the paper)
// in b[0..j].
func (z *stemmer) measure() int {
	n, i := 0, 0
	for {
		if i > z.j {
			return n
		}
		if !z.isCons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > z.j {
				return n
			}
			if z.isCons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > z.j {
				return n
			}
			if !z.isCons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (z *stemmer) vowelInStem() bool {
	for i := 0; i <= z.j; i++ {
		if !z.isCons(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1..i] is a double consonant.
func (z *stemmer) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	if z.b[i] != z.b[i-1] {
		return false
	}
	return z.isCons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant with the
// final consonant not w, x or y; used to restore a trailing e as in
// cav(e), lov(e), hop(e).
func (z *stemmer) cvc(i int) bool {
	if i < 2 || !z.isCons(i) || z.isCons(i-1) || !z.isCons(i-2) {
		return false
	}
	switch z.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether b[0..k] ends with s, setting j to the offset just
// before the suffix when it does.
func (z *stemmer) ends(s string) bool {
	l := len(s)
	if l > z.k+1 {
		return false
	}
	if string(z.b[z.k+1-l:z.k+1]) != s {
		return false
	}
	z.j = z.k - l
	return true
}

// setTo replaces the suffix after j with s and adjusts k.
func (z *stemmer) setTo(s string) {
	z.b = append(z.b[:z.j+1], s...)
	z.k = z.j + len(s)
}

// r replaces the suffix with s when the stem before it has m > 0.
func (z *stemmer) r(s string) {
	if z.measure() > 0 {
		z.setTo(s)
	}
}

// step1ab removes plurals and -ed / -ing.
func (z *stemmer) step1ab() {
	if z.b[z.k] == 's' {
		switch {
		case z.ends("sses"):
			z.k -= 2
		case z.ends("ies"):
			z.setTo("i")
		case z.b[z.k-1] != 's':
			z.k--
		}
	}
	if z.ends("eed") {
		if z.measure() > 0 {
			z.k--
		}
	} else if (z.ends("ed") || z.ends("ing")) && z.vowelInStem() {
		z.k = z.j
		switch {
		case z.ends("at"):
			z.setTo("ate")
		case z.ends("bl"):
			z.setTo("ble")
		case z.ends("iz"):
			z.setTo("ize")
		case z.doubleC(z.k):
			z.k--
			switch z.b[z.k] {
			case 'l', 's', 'z':
				z.k++
			}
		default:
			if z.measure() == 1 && z.cvc(z.k) {
				z.setTo("e")
			}
		}
	}
}

// step1c turns terminal y into i when there is another vowel in the stem.
func (z *stemmer) step1c() {
	if z.ends("y") && z.vowelInStem() {
		z.b[z.k] = 'i'
	}
}

// step2 maps double suffixes to single ones for stems with m > 0.
func (z *stemmer) step2() {
	if z.k < 1 {
		return
	}
	switch z.b[z.k-1] {
	case 'a':
		if z.ends("ational") {
			z.r("ate")
		} else if z.ends("tional") {
			z.r("tion")
		}
	case 'c':
		if z.ends("enci") {
			z.r("ence")
		} else if z.ends("anci") {
			z.r("ance")
		}
	case 'e':
		if z.ends("izer") {
			z.r("ize")
		}
	case 'l':
		if z.ends("bli") {
			z.r("ble")
		} else if z.ends("alli") {
			z.r("al")
		} else if z.ends("entli") {
			z.r("ent")
		} else if z.ends("eli") {
			z.r("e")
		} else if z.ends("ousli") {
			z.r("ous")
		}
	case 'o':
		if z.ends("ization") {
			z.r("ize")
		} else if z.ends("ation") {
			z.r("ate")
		} else if z.ends("ator") {
			z.r("ate")
		}
	case 's':
		if z.ends("alism") {
			z.r("al")
		} else if z.ends("iveness") {
			z.r("ive")
		} else if z.ends("fulness") {
			z.r("ful")
		} else if z.ends("ousness") {
			z.r("ous")
		}
	case 't':
		if z.ends("aliti") {
			z.r("al")
		} else if z.ends("iviti") {
			z.r("ive")
		} else if z.ends("biliti") {
			z.r("ble")
		}
	case 'g':
		if z.ends("logi") {
			z.r("log")
		}
	}
}

// step3 handles -ic-, -full, -ness and similar.
func (z *stemmer) step3() {
	switch z.b[z.k] {
	case 'e':
		if z.ends("icate") {
			z.r("ic")
		} else if z.ends("ative") {
			z.r("")
		} else if z.ends("alize") {
			z.r("al")
		}
	case 'i':
		if z.ends("iciti") {
			z.r("ic")
		}
	case 'l':
		if z.ends("ical") {
			z.r("ic")
		} else if z.ends("ful") {
			z.r("")
		}
	case 's':
		if z.ends("ness") {
			z.r("")
		}
	}
}

// step4 removes -ant, -ence and similar from stems with m > 1.
func (z *stemmer) step4() {
	if z.k < 1 {
		return
	}
	switch z.b[z.k-1] {
	case 'a':
		if !z.ends("al") {
			return
		}
	case 'c':
		if !z.ends("ance") && !z.ends("ence") {
			return
		}
	case 'e':
		if !z.ends("er") {
			return
		}
	case 'i':
		if !z.ends("ic") {
			return
		}
	case 'l':
		if !z.ends("able") && !z.ends("ible") {
			return
		}
	case 'n':
		if !z.ends("ant") && !z.ends("ement") && !z.ends("ment") && !z.ends("ent") {
			return
		}
	case 'o':
		if z.ends("ion") && z.j >= 0 && (z.b[z.j] == 's' || z.b[z.j] == 't') {
			// allowed
		} else if !z.ends("ou") {
			return
		}
	case 's':
		if !z.ends("ism") {
			return
		}
	case 't':
		if !z.ends("ate") && !z.ends("iti") {
			return
		}
	case 'u':
		if !z.ends("ous") {
			return
		}
	case 'v':
		if !z.ends("ive") {
			return
		}
	case 'z':
		if !z.ends("ize") {
			return
		}
	default:
		return
	}
	if z.measure() > 1 {
		z.k = z.j
	}
}

// step5 removes a final -e and reduces -ll for stems with m > 1.
func (z *stemmer) step5() {
	z.j = z.k
	if z.b[z.k] == 'e' {
		a := z.measure()
		if a > 1 || (a == 1 && !z.cvc(z.k-1)) {
			z.k--
		}
	}
	if z.b[z.k] == 'l' && z.doubleC(z.k) && z.measure() > 1 {
		z.k--
	}
}

// Stem returns the Porter stem of word. The input must already be
// lowercase; words shorter than three letters or containing bytes
// outside 'a'..'z' are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	z := stemmer{b: []byte(word), k: len(word) - 1}
	z.step1ab()
	z.step1c()
	z.step2()
	z.step3()
	z.step4()
	z.step5()
	return string(z.b[:z.k+1])
}
