package textproc

import (
	"fmt"

	"ita/internal/model"
)

// Dictionary interns term strings to dense TermIDs. IDs are assigned in
// first-seen order starting at 0, so a dictionary built from the same
// corpus in the same order is identical across runs.
//
// A Dictionary is not safe for concurrent use; the public facade
// serializes access.
type Dictionary struct {
	ids   map[string]model.TermID
	terms []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]model.TermID)}
}

// Intern returns the id of term, assigning a fresh one on first sight.
func (d *Dictionary) Intern(term string) model.TermID {
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := model.TermID(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the id of term without interning it.
func (d *Dictionary) Lookup(term string) (model.TermID, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the string for id. It panics on an unknown id, which
// indicates a cross-dictionary mixup upstream.
func (d *Dictionary) Term(id model.TermID) string {
	if int(id) >= len(d.terms) {
		panic(fmt.Sprintf("textproc: unknown term id %d (dictionary has %d terms)", id, len(d.terms)))
	}
	return d.terms[id]
}

// Size returns the number of distinct interned terms.
func (d *Dictionary) Size() int { return len(d.terms) }
