package textproc

// stopwordList is a standard English stopword inventory in the spirit of
// the list in Baeza-Yates & Ribeiro-Neto, "Modern Information Retrieval"
// (the paper's reference [7] for stopword removal): closed-class words
// plus the highest-frequency function words of English.
var stopwordList = []string{
	"a", "about", "above", "across", "after", "afterwards", "again",
	"against", "all", "almost", "alone", "along", "already", "also",
	"although", "always", "am", "among", "amongst", "an", "and",
	"another", "any", "anyhow", "anyone", "anything", "anyway",
	"anywhere", "are", "around", "as", "at", "be", "became", "because",
	"become", "becomes", "becoming", "been", "before", "beforehand",
	"behind", "being", "below", "beside", "besides", "between", "beyond",
	"both", "but", "by", "can", "cannot", "could", "did", "do", "does",
	"doing", "done", "down", "during", "each", "either", "else",
	"elsewhere", "enough", "etc", "even", "ever", "every", "everyone",
	"everything", "everywhere", "except", "few", "for", "former",
	"formerly", "from", "further", "had", "has", "have", "having", "he",
	"hence", "her", "here", "hereafter", "hereby", "herein", "hereupon",
	"hers", "herself", "him", "himself", "his", "how", "however", "i",
	"ie", "if", "in", "indeed", "into", "is", "it", "its", "itself",
	"just", "last", "latter", "latterly", "least", "less", "like", "ltd",
	"made", "many", "may", "me", "meanwhile", "might", "more", "moreover",
	"most", "mostly", "much", "must", "my", "myself", "namely", "neither",
	"never", "nevertheless", "next", "no", "nobody", "none", "nonetheless",
	"noone", "nor", "not", "nothing", "now", "nowhere", "of", "off",
	"often", "on", "once", "one", "only", "onto", "or", "other", "others",
	"otherwise", "our", "ours", "ourselves", "out", "over", "own", "per",
	"perhaps", "rather", "re", "same", "seem", "seemed", "seeming",
	"seems", "several", "she", "should", "since", "so", "some", "somehow",
	"someone", "something", "sometime", "sometimes", "somewhere", "still",
	"such", "than", "that", "the", "their", "theirs", "them", "themselves",
	"then", "thence", "there", "thereafter", "thereby", "therefore",
	"therein", "thereupon", "these", "they", "this", "those", "though",
	"through", "throughout", "thru", "thus", "to", "together", "too",
	"toward", "towards", "under", "until", "up", "upon", "us", "very",
	"via", "was", "we", "well", "were", "what", "whatever", "when",
	"whence", "whenever", "where", "whereafter", "whereas", "whereby",
	"wherein", "whereupon", "wherever", "whether", "which", "while",
	"whither", "who", "whoever", "whole", "whom", "whose", "why", "will",
	"with", "within", "without", "would", "yet", "you", "your", "yours",
	"yourself", "yourselves",
}

var stopwords = func() map[string]struct{} {
	m := make(map[string]struct{}, len(stopwordList))
	for _, w := range stopwordList {
		m[w] = struct{}{}
	}
	return m
}()

// IsStopword reports whether the lowercase token is on the stopword
// list.
func IsStopword(token string) bool {
	_, ok := stopwords[token]
	return ok
}
