package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens and calls fn for each
// one. A token is a maximal run of letters and digits; it is kept only
// if it contains at least one letter and at least two characters, which
// discards punctuation noise and bare numbers the same way the standard
// indexing pipeline of [Baeza-Yates & Ribeiro-Neto 1999] does.
//
// Tokenize never allocates per token for pure-ASCII input beyond the
// lowercased string handed to fn.
func Tokenize(text string, fn func(token string)) {
	start := -1
	runes := 0
	hasLetter := false
	flush := func(end int) {
		if start >= 0 && hasLetter && runes >= 2 {
			fn(strings.ToLower(text[start:end]))
		}
		start = -1
		runes = 0
		hasLetter = false
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			runes++
			if unicode.IsLetter(r) {
				hasLetter = true
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
}

// Tokens returns all tokens of text as a slice; a convenience wrapper
// around Tokenize for tests and small inputs.
func Tokens(text string) []string {
	var out []string
	Tokenize(text, func(tok string) { out = append(out, tok) })
	return out
}
