package textproc

import "ita/internal/model"

// Pipeline is the document/query analysis chain of the system:
// tokenize → stopword-filter → (optionally) stem → intern. It produces
// the raw term frequencies f_{d,t} (or f_{Q,t}) that the vector-space
// weighting layer turns into impact weights.
type Pipeline struct {
	dict *Dictionary
	stem bool
	stop bool
}

// NewPipeline builds a pipeline over dict. When stem is true tokens are
// Porter-stemmed; when stop is true stopwords are removed first (the
// paper applies "standard stopword removal" before building its
// 181,978-term dictionary).
func NewPipeline(dict *Dictionary, stem, stop bool) *Pipeline {
	return &Pipeline{dict: dict, stem: stem, stop: stop}
}

// Dictionary returns the underlying dictionary.
func (p *Pipeline) Dictionary() *Dictionary { return p.dict }

// TermFreqs analyzes text and returns the frequency of each surviving
// term. Terms are interned into the pipeline's dictionary.
func (p *Pipeline) TermFreqs(text string) map[model.TermID]int {
	freqs := make(map[model.TermID]int)
	Tokenize(text, func(tok string) {
		if p.stop && IsStopword(tok) {
			return
		}
		if p.stem {
			tok = Stem(tok)
		}
		freqs[p.dict.Intern(tok)]++
	})
	return freqs
}

// LookupFreqs analyzes text like TermFreqs but never extends the
// dictionary: tokens that were not interned before are dropped. Queries
// over a frozen corpus dictionary use this to avoid polluting term ids.
func (p *Pipeline) LookupFreqs(text string) map[model.TermID]int {
	freqs := make(map[model.TermID]int)
	Tokenize(text, func(tok string) {
		if p.stop && IsStopword(tok) {
			return
		}
		if p.stem {
			tok = Stem(tok)
		}
		if id, ok := p.dict.Lookup(tok); ok {
			freqs[id]++
		}
	})
	return freqs
}
