package textproc

import (
	"reflect"
	"testing"

	"ita/internal/model"
)

func TestTokenizeBasics(t *testing.T) {
	got := Tokens("The quick, brown fox -- jumped! Over 12 lazy dogs.")
	want := []string{"the", "quick", "brown", "fox", "jumped", "over", "lazy", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizeDropsBareNumbersAndSingles(t *testing.T) {
	got := Tokens("7 500 a I x2 2x q10")
	// "7", "500" have no letter; "a", "I" are length 1; the rest stay.
	want := []string{"x2", "2x", "q10"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	if got := Tokens(""); got != nil {
		t.Fatalf("Tokens(\"\") = %v", got)
	}
	if got := Tokens("!!! ... ---"); got != nil {
		t.Fatalf("Tokens(punct) = %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokens("Müller résumé 東京")
	want := []string{"müller", "résumé", "東京"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "with"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"weapons", "market", "tower", "white"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func TestDictionaryInternStableIDs(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if got := d.Intern("alpha"); got != a {
		t.Fatalf("re-intern changed id: %d vs %d", got, a)
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.Term(a) != "alpha" || d.Term(b) != "beta" {
		t.Fatal("Term round-trip failed")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup of unknown term succeeded")
	}
}

func TestDictionaryTermPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Term on unknown id did not panic")
		}
	}()
	NewDictionary().Term(99)
}

func TestPipelineTermFreqs(t *testing.T) {
	d := NewDictionary()
	p := NewPipeline(d, true, true)
	freqs := p.TermFreqs("The white tower; the white, WHITE walls!")
	// stopwords: the, the → removed. Stems: white→white, tower→tower,
	// walls→wall.
	if len(freqs) != 3 {
		t.Fatalf("got %d distinct terms, want 3: %v", len(freqs), freqs)
	}
	white, _ := d.Lookup("white")
	tower, _ := d.Lookup("tower")
	wall, _ := d.Lookup("wall")
	if freqs[white] != 3 {
		t.Errorf("f(white) = %d, want 3", freqs[white])
	}
	if freqs[tower] != 1 {
		t.Errorf("f(tower) = %d, want 1", freqs[tower])
	}
	if freqs[wall] != 1 {
		t.Errorf("f(wall) = %d, want 1", freqs[wall])
	}
}

func TestPipelineNoStemNoStop(t *testing.T) {
	d := NewDictionary()
	p := NewPipeline(d, false, false)
	freqs := p.TermFreqs("the walls the")
	theID, _ := d.Lookup("the")
	wallsID, _ := d.Lookup("walls")
	if freqs[theID] != 2 || freqs[wallsID] != 1 {
		t.Fatalf("freqs = %v", freqs)
	}
}

func TestPipelineLookupFreqsDoesNotIntern(t *testing.T) {
	d := NewDictionary()
	p := NewPipeline(d, false, true)
	p.TermFreqs("known terms here")
	before := d.Size()
	freqs := p.LookupFreqs("known unknown")
	if d.Size() != before {
		t.Fatalf("LookupFreqs grew dictionary from %d to %d", before, d.Size())
	}
	known, _ := d.Lookup("known")
	if freqs[known] != 1 || len(freqs) != 1 {
		t.Fatalf("freqs = %v", freqs)
	}
}

func TestPipelineQueryDocAgreement(t *testing.T) {
	// A query and a document mentioning the same inflected words must
	// land on the same term ids — the property continuous matching
	// depends on.
	d := NewDictionary()
	p := NewPipeline(d, true, true)
	doc := p.TermFreqs("Weapons of mass destruction were found.")
	query := p.TermFreqs("weapon mass destructions")
	matches := 0
	for id := range query {
		if _, ok := doc[id]; ok {
			matches++
		}
	}
	if matches != 3 {
		t.Fatalf("query/doc shared terms = %d, want 3 (doc=%v query=%v)", matches, dump(d, doc), dump(d, query))
	}
}

func dump(d *Dictionary, freqs map[model.TermID]int) map[string]int {
	out := make(map[string]int, len(freqs))
	for id, f := range freqs {
		out[d.Term(id)] = f
	}
	return out
}
