package textproc

import "testing"

// Vectors taken from Porter's paper and the sample vocabulary shipped
// with the reference implementation.
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// multi-step classics
		"generalizations": "gener",
		"oscillators":     "oscil",
		"monitoring":      "monitor",
		"explosives":      "explos",
		"weapons":         "weapon",
		"continuous":      "continu",
		"queries":         "queri",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by", "as"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlphaUnchanged(t *testing.T) {
	for _, w := range []string{"covid19", "naïve", "a-b", "Upper"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming is not idempotent for every English word, but for these
	// corpus-typical words the stem must be a fixed point; this guards
	// against buffer-reuse bugs.
	for _, w := range []string{"market", "stock", "report", "trade", "bank"} {
		s := Stem(w)
		if ss := Stem(s); ss != s {
			t.Errorf("Stem(Stem(%q)) = %q, want %q", w, ss, s)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"generalizations", "monitoring", "weapons", "continuous", "effective", "hopefulness"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
