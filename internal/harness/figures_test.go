package harness

import (
	"strings"
	"testing"
)

func TestFormatInfeasiblePoint(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "T", XName: "n",
		Engines: []string{"A", "B"},
		Points: []Point{{
			X: 1, XLabel: "1",
			M: []Measurement{{Infeasible: true}, {MeanMs: 0.5, Events: 10}},
		}},
	}
	out := fig.Format()
	if !strings.Contains(out, "— (setup)") {
		t.Fatalf("infeasible marker missing:\n%s", out)
	}
	if !strings.Contains(out, "—") {
		t.Fatalf("speedup placeholder missing:\n%s", out)
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	// The infeasible engine contributes empty cells, not zeros.
	if !strings.Contains(lines[1], ",,") {
		t.Fatalf("csv missing empty cells: %s", lines[1])
	}
}

func TestFormatRealTimeMarker(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "T", XName: "n",
		Engines: []string{"A"},
		Points: []Point{{
			X: 1, XLabel: "1",
			M: []Measurement{{MeanMs: 9.9, RealTime: 1.98, Events: 10}},
		}},
	}
	if out := fig.Format(); !strings.Contains(out, "9.9000*") {
		t.Fatalf("over-budget marker missing:\n%s", out)
	}
}

func TestFormatErrorPropagates(t *testing.T) {
	fig := Figure{Title: "T", Err: errTest}
	if out := fig.Format(); !strings.Contains(out, "ERROR") {
		t.Fatalf("error not rendered: %s", out)
	}
}

var errTest = timeoutErr{}

type timeoutErr struct{}

func (timeoutErr) Error() string { return "deadline" }

func TestSimulateQueueBacklog(t *testing.T) {
	// Arrivals every 5ms, service 10ms: latency grows linearly — the
	// divergence signature of an over-budget engine.
	var arrivals, services []float64
	for i := 0; i < 100; i++ {
		arrivals = append(arrivals, float64(i)*5)
		services = append(services, 10)
	}
	mean, p95, max := simulateQueue(arrivals, services)
	if !(mean > 100 && p95 > mean && max >= p95) {
		t.Fatalf("diverging queue not detected: mean=%f p95=%f max=%f", mean, p95, max)
	}
	// The last event waited behind ~99 backlogged services.
	if max < 400 {
		t.Fatalf("max latency %f, want ≥400ms", max)
	}
}

func TestSimulateQueueIdleServer(t *testing.T) {
	// Service far below the gap: latency equals service time.
	arrivals := []float64{0, 100, 200}
	services := []float64{1, 2, 3}
	mean, _, max := simulateQueue(arrivals, services)
	if mean != 2 || max != 3 {
		t.Fatalf("idle server latencies wrong: mean=%f max=%f", mean, max)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{PaperProfile(), QuickProfile()} {
		if p.Queries <= 0 || p.K <= 0 || p.MeasureDocs <= 0 || p.Rate <= 0 || p.DictSize <= 0 {
			t.Fatalf("profile %q has zero fields: %+v", p.Label, p)
		}
		if p.MaxMeasure <= 0 || p.MaxSetup <= 0 {
			t.Fatalf("profile %q missing budgets", p.Label)
		}
	}
	if PaperProfile().Queries != 1000 || PaperProfile().DictSize != 181978 {
		t.Fatal("paper profile drifted from the published configuration")
	}
}
