package harness

import (
	"fmt"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/stats"
	"ita/internal/vsm"
	"ita/internal/window"
)

// AblationProbeOrder (A1) compares the paper's greedy w_{Q,t}·c_t probe
// order against the original threshold algorithm's round-robin order.
// Both are correct; the greedy order should read fewer entries per
// search, visible in the SearchReads counter and the refill latency.
func AblationProbeOrder(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	greedy := EngineBuilder{Name: "ITA-greedy", Build: func(pol window.Policy) core.Engine { return core.NewITA(pol) }}
	rr := EngineBuilder{Name: "ITA-roundrobin", Build: func(pol window.Policy) core.Engine {
		return core.NewITA(pol, core.WithRoundRobinProbe())
	}}
	return sweep("ablation-probe",
		fmt.Sprintf("A1 — greedy vs round-robin list probing (N=%d, %s profile)", warm, p.Label),
		"n", []EngineBuilder{rr, greedy},
		[]float64{4, 10, 20, 40},
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec { return p.spec(window.Count{N: warm}, int(x), warm) },
		progress)
}

// AblationRollup (A2) disables the roll-up of §III-B. Without it the
// monitored region only grows between refills, so more arrivals hit the
// threshold trees and more documents linger in R.
func AblationRollup(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	with := EngineBuilder{Name: "ITA", Build: func(pol window.Policy) core.Engine { return core.NewITA(pol) }}
	without := EngineBuilder{Name: "ITA-norollup", Build: func(pol window.Policy) core.Engine {
		return core.NewITA(pol, core.WithoutRollup())
	}}
	return sweep("ablation-rollup",
		fmt.Sprintf("A2 — roll-up enabled vs disabled (N=%d, %s profile)", warm, p.Label),
		"n", []EngineBuilder{without, with},
		[]float64{4, 10, 20, 40},
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec { return p.spec(window.Count{N: warm}, int(x), warm) },
		progress)
}

// AblationKmax (A3) varies the Naïve competitor's view size: plain
// (kmax = k), the default doubling, and a quadrupling. Larger views
// rescan less often but pay more per arrival.
func AblationKmax(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	mk := func(name string, f func(k int) int) EngineBuilder {
		return EngineBuilder{Name: name, Build: func(pol window.Policy) core.Engine {
			return core.NewNaive(pol, core.WithKmax(f))
		}}
	}
	return sweep("ablation-kmax",
		fmt.Sprintf("A3 — Naïve view size kmax (N=%d, n=10, %s profile)", warm, p.Label),
		"kmax", []EngineBuilder{
			mk("Naive-k", func(k int) int { return k }),
			mk("Naive-2k", func(k int) int { return 2 * k }),
			mk("Naive-4k", func(k int) int { return 4 * k }),
		},
		[]float64{float64(p.K)},
		func(x float64) string { return fmt.Sprintf("k=%.0f", x) },
		func(x float64) Spec { return p.spec(window.Count{N: warm}, 10, warm) },
		progress)
}

// AblationPopularTerms (A4) swaps the paper's uniform query terms for
// Zipf-popular ones: queries then share terms with most documents, the
// hardest regime for threshold filtering.
func AblationPopularTerms(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	fig := sweep("ablation-popular",
		fmt.Sprintf("A4 — Zipf-popular query terms (N=%d, %s profile)", warm, p.Label),
		"n", []EngineBuilder{NaiveBuilder(), ITABuilder()},
		[]float64{4, 10, 20},
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec {
			s := p.spec(window.Count{N: warm}, int(x), warm)
			s.PopularQ = true
			return s
		},
		progress)
	return fig
}

// SetupReport is experiment E0: it regenerates the corpus statistics the
// paper's §IV setup paragraph reports for WSJ and prints them beside the
// calibration targets.
type SetupReport struct {
	SampleDocs    int
	DictSize      int
	MeanTerms     float64
	MedianTerms   float64
	MeanTokens    float64
	DistinctSeen  int
	HeadTermShare float64 // fraction of postings owned by the 100 most popular terms
}

// Setup samples documents from the calibrated corpus and summarizes
// them.
func Setup(p Profile, sample int) (SetupReport, error) {
	cfg := p.corpusCfg()
	synth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		return SetupReport{}, err
	}
	var terms stats.Summary
	var tokens stats.Summary
	seen := make(map[int]int)
	total := 0
	for i := 0; i < sample; i++ {
		freqs := synth.Freqs()
		terms.Add(float64(len(freqs)))
		tok := 0
		for id, f := range freqs {
			tok += f
			seen[int(id)]++
			total++
		}
		tokens.Add(float64(tok))
	}
	head := 0
	for id, c := range seen {
		if id < 100 {
			head += c
		}
	}
	return SetupReport{
		SampleDocs:    sample,
		DictSize:      cfg.DictSize,
		MeanTerms:     terms.Mean(),
		MedianTerms:   terms.Percentile(50),
		MeanTokens:    tokens.Mean(),
		DistinctSeen:  len(seen),
		HeadTermShare: float64(head) / float64(total),
	}, nil
}

// Format renders the setup report.
func (r SetupReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E0 — corpus calibration (paper: WSJ, 172,961 articles, 181,978-term dictionary)\n")
	fmt.Fprintf(&b, "  dictionary size                 %d\n", r.DictSize)
	fmt.Fprintf(&b, "  sampled documents               %d\n", r.SampleDocs)
	fmt.Fprintf(&b, "  mean distinct terms per doc     %.1f\n", r.MeanTerms)
	fmt.Fprintf(&b, "  median distinct terms per doc   %.1f\n", r.MedianTerms)
	fmt.Fprintf(&b, "  mean tokens per doc             %.1f\n", r.MeanTokens)
	fmt.Fprintf(&b, "  distinct terms observed         %d\n", r.DistinctSeen)
	fmt.Fprintf(&b, "  share of postings in top-100    %.1f%%\n", r.HeadTermShare*100)
	return b.String()
}

// AllFigures runs every experiment of DESIGN.md §5 in order.
func AllFigures(p Profile, progress func(string)) []Figure {
	return []Figure{
		Fig3a(p, progress),
		Fig3b(p, progress),
		Fig3aTime(p, progress),
		Headline(p, progress),
	}
}

// AllAblations runs every ablation of DESIGN.md §5.
func AllAblations(p Profile, progress func(string)) []Figure {
	return []Figure{
		AblationProbeOrder(p, progress),
		AblationRollup(p, progress),
		AblationKmax(p, progress),
		AblationPopularTerms(p, progress),
	}
}

// Elapsed is a small helper used by the CLI to label progress lines.
func Elapsed(start time.Time) string {
	return time.Since(start).Round(time.Second).String()
}
