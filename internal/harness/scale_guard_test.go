package harness

import (
	"testing"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// TestScaleIngestCliffGuard is the CI ingest-cliff guard: steady-state
// ingest throughput at 100k standing queries may not fall below 0.35×
// the 10k-query rate (typical measured ratio 0.6–0.8; the slack
// absorbs GC noise on the fast 10k side). Before the θ-ordered probe
// index, a 10× query-count step cost ~17× in ingest throughput
// (BENCH_SCALE.json's embedded baselines: 76 → 4.4 events/s) because
// every probe visited every query registered on a term; with
// θ-ordering plus admit-list expiry the per-event cost tracks the
// queries a document can actually affect, and the curve must stay near
// flat. Configuration mirrors itabench -exp scale (uniform-dictionary
// queries, the paper's continuous-query workload). It runs in short
// mode by design, like TestScaleSmoke100k; the recorded sweep with the
// 1M point lives in itabench -exp scale.
func TestScaleIngestCliffGuard(t *testing.T) {
	if !testing.Short() {
		t.Skip("ingest-cliff guard runs in short mode only (go test -short -run TestScaleIngestCliffGuard)")
	}
	const (
		win      = 32768
		queryLen = 4
		k        = 10
		events   = 2000
	)
	cfg := QuickProfile().corpusCfg()
	rate := func(nq int) float64 {
		qSynth, err := corpus.NewSynth(withSeed(cfg, 7777), vsm.Cosine{})
		if err != nil {
			t.Fatal(err)
		}
		dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
		if err != nil {
			t.Fatal(err)
		}
		str := stream.New(dSynth.Document, 200, cfg.Seed+1, time.Unix(0, 0))
		eng := core.NewITA(window.Count{N: win})
		for i := 0; i < win; i++ {
			if err := eng.Process(str.Next()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nq; i++ {
			if err := eng.Register(qSynth.Query(model.QueryID(i+1), k, queryLen)); err != nil {
				t.Fatalf("register %d: %v", i+1, err)
			}
		}
		// Pre-generate the measured documents so the guard times engine
		// work under a stopwatch that both query counts share equally.
		docs := make([]*model.Document, events)
		for i := range docs {
			docs[i] = str.Next()
		}
		start := time.Now()
		for _, d := range docs {
			if err := eng.Process(d); err != nil {
				t.Fatal(err)
			}
		}
		return float64(events) / time.Since(start).Seconds()
	}

	small := rate(10_000)
	large := rate(100_000)
	t.Logf("ingest events/s: %.1f at 10k queries, %.1f at 100k (ratio %.2f)", small, large, large/small)
	if large < 0.35*small {
		t.Fatalf("ingest cliff: %.1f events/s at 100k queries vs %.1f at 10k (ratio %.2f, want >= 0.35)",
			large, small, large/small)
	}
}
