package harness

import (
	"fmt"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/window"
)

// Profile scales an experiment: the paper profile reproduces the
// published configuration, the quick profile shrinks every axis so the
// whole suite runs in seconds for CI and `go test -bench`.
type Profile struct {
	Label       string
	Queries     int           // paper: 1000
	K           int           // paper: 10
	MeasureDocs int           // events per point
	MaxMeasure  time.Duration // per-point measurement budget
	MaxSetup    time.Duration // per-point setup budget (0 = unlimited)
	MaxWindow   int           // largest window size attempted
	Rate        float64       // paper: 200 docs/s
	DictSize    int           // paper: 181,978
}

// PaperProfile mirrors §IV of the paper.
func PaperProfile() Profile {
	return Profile{
		Label:       "paper",
		Queries:     1000,
		K:           10,
		MeasureDocs: 2000,
		MaxMeasure:  90 * time.Second,
		MaxSetup:    10 * time.Minute,
		MaxWindow:   100000,
		Rate:        200,
		DictSize:    181978,
	}
}

// QuickProfile is a scaled-down configuration whose curves keep the
// paper's shape while finishing in about a minute. The query load and
// dictionary — the quantities the ITA/Naïve gap hinges on — stay at the
// paper's values; only the event counts and the largest window shrink.
func QuickProfile() Profile {
	return Profile{
		Label:       "quick",
		Queries:     1000,
		K:           10,
		MeasureDocs: 300,
		MaxMeasure:  15 * time.Second,
		MaxSetup:    60 * time.Second,
		MaxWindow:   10000,
		Rate:        200,
		DictSize:    181978,
	}
}

func (p Profile) corpusCfg() corpus.SynthConfig {
	cfg := corpus.WSJConfig()
	cfg.DictSize = p.DictSize
	return cfg
}

func (p Profile) spec(pol window.Policy, queryLen, warm int) Spec {
	return Spec{
		Policy:      pol,
		NumQueries:  p.Queries,
		QueryLen:    queryLen,
		K:           p.K,
		WarmDocs:    warm,
		MeasureDocs: p.MeasureDocs,
		MaxMeasure:  p.MaxMeasure,
		MaxSetup:    p.MaxSetup,
		Rate:        p.Rate,
		Corpus:      p.corpusCfg(),
		QuerySeed:   7777,
	}
}

// Point is one x-position of a figure with one measurement per engine.
type Point struct {
	X      float64
	XLabel string
	M      []Measurement // parallel to Figure.Engines
}

// Figure is a reproduced table/figure: a labelled series per engine
// over a swept parameter.
type Figure struct {
	ID      string
	Title   string
	XName   string
	Engines []string
	Points  []Point
	Err     error
}

// sweep measures every builder at every x-value.
func sweep(id, title, xname string, builders []EngineBuilder, xs []float64, xlabel func(float64) string, mk func(x float64) Spec, progress func(string)) Figure {
	fig := Figure{ID: id, Title: title, XName: xname}
	for _, b := range builders {
		fig.Engines = append(fig.Engines, b.Name)
	}
	for _, x := range xs {
		pt := Point{X: x, XLabel: xlabel(x)}
		for _, b := range builders {
			if progress != nil {
				progress(fmt.Sprintf("%s: %s=%s engine=%s", id, xname, pt.XLabel, b.Name))
			}
			m, err := Run(b, mk(x))
			if err != nil {
				fig.Err = err
				return fig
			}
			pt.M = append(pt.M, m)
		}
		fig.Points = append(fig.Points, pt)
	}
	return fig
}

// Fig3a reproduces Figure 3(a): processing time versus query length n ∈
// {4, 10, 20, 30, 40} with a 1,000-document count window.
func Fig3a(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	return sweep("fig3a",
		fmt.Sprintf("Fig 3(a) — processing time vs query length (N=%d, %d queries, k=%d, %s profile)", warm, p.Queries, p.K, p.Label),
		"n", []EngineBuilder{NaiveBuilder(), ITABuilder()},
		[]float64{4, 10, 20, 30, 40},
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec { return p.spec(window.Count{N: warm}, int(x), warm) },
		progress)
}

// Fig3b reproduces Figure 3(b): processing time versus window size N ∈
// {10, 100, 1000, 10000, 100000} with 10-term queries.
func Fig3b(p Profile, progress func(string)) Figure {
	var xs []float64
	for _, n := range []int{10, 100, 1000, 10000, 100000} {
		if n <= p.MaxWindow {
			xs = append(xs, float64(n))
		}
	}
	return sweep("fig3b",
		fmt.Sprintf("Fig 3(b) — processing time vs window size (n=10, %d queries, k=%d, %s profile)", p.Queries, p.K, p.Label),
		"N", []EngineBuilder{NaiveBuilder(), ITABuilder()},
		xs,
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec { return p.spec(window.Count{N: int(x)}, 10, int(x)) },
		progress)
}

// Fig3aTime is experiment E3: the paper states "the results for a
// time-based [window] are similar"; this sweep repeats Fig 3(a) with a
// time window spanning the same expected document count (N/rate
// seconds).
func Fig3aTime(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	span := time.Duration(float64(warm) / p.Rate * float64(time.Second))
	return sweep("fig3a-time",
		fmt.Sprintf("E3 — Fig 3(a) with a time-based window (span=%s ≈ %d docs, %s profile)", span, warm, p.Label),
		"n", []EngineBuilder{NaiveBuilder(), ITABuilder()},
		[]float64{4, 10, 20, 30, 40},
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec { return p.spec(window.Span{D: span}, int(x), warm) },
		progress)
}

// Headline is experiment E4: the abstract's claim that ITA is "at least
// an order of magnitude faster" at the default configuration (n=10,
// N=1000), including the plain (kmax = k) Naïve for reference.
func Headline(p Profile, progress func(string)) Figure {
	const n = 1000
	warm := min(n, p.MaxWindow)
	plain := EngineBuilder{Name: "Naive-plain", Build: func(pol window.Policy) core.Engine {
		return core.NewNaive(pol, core.WithKmax(func(k int) int { return k }))
	}}
	return sweep("headline",
		fmt.Sprintf("E4 — headline configuration (n=10, N=%d, %d queries, k=%d, %s profile)", warm, p.Queries, p.K, p.Label),
		"n", []EngineBuilder{plain, NaiveBuilder(), ITABuilder()},
		[]float64{10},
		func(x float64) string { return fmt.Sprintf("%.0f", x) },
		func(x float64) Spec { return p.spec(window.Count{N: warm}, 10, warm) },
		progress)
}

// Format renders the figure as an aligned text table with per-point
// speedups relative to the first engine (the baseline).
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if f.Err != nil {
		fmt.Fprintf(&b, "  ERROR: %v\n", f.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", f.XName)
	for _, e := range f.Engines {
		fmt.Fprintf(&b, "%14s", e+" ms")
	}
	if len(f.Engines) > 1 {
		fmt.Fprintf(&b, "%12s", "speedup")
	}
	fmt.Fprintf(&b, "%10s\n", "events")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%-8s", pt.XLabel)
		for _, m := range pt.M {
			fmt.Fprintf(&b, "%14s", formatMs(m))
		}
		if len(pt.M) > 1 {
			base, last := pt.M[0], pt.M[len(pt.M)-1]
			if base.Infeasible || last.Infeasible || last.MeanMs == 0 {
				fmt.Fprintf(&b, "%12s", "—")
			} else {
				fmt.Fprintf(&b, "%11.1fx", base.MeanMs/last.MeanMs)
			}
		}
		ev := 0
		for _, m := range pt.M {
			if m.Events > ev {
				ev = m.Events
			}
		}
		fmt.Fprintf(&b, "%10d\n", ev)
	}
	return b.String()
}

func formatMs(m Measurement) string {
	if m.Infeasible {
		return "— (setup)"
	}
	s := fmt.Sprintf("%.4f", m.MeanMs)
	if m.RealTime > 1 {
		s += "*" // cannot sustain the arrival rate (paper's instability)
	}
	return s
}

// CSV renders the figure as comma-separated values with one row per
// point.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	for _, e := range f.Engines {
		fmt.Fprintf(&b, ",%s_mean_ms,%s_p95_ms,%s_queue_mean_ms,%s_queue_p95_ms,%s_events,%s_realtime", e, e, e, e, e, e)
		fmt.Fprintf(&b, ",%s_probehits_ev,%s_scores_ev,%s_rescans_ev,%s_refills_ev", e, e, e, e)
	}
	b.WriteByte('\n')
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%s", pt.XLabel)
		for _, m := range pt.M {
			if m.Infeasible {
				fmt.Fprintf(&b, ",,,,,,,,,,")
				continue
			}
			ev := float64(m.Events)
			if ev == 0 {
				ev = 1
			}
			fmt.Fprintf(&b, ",%.6f,%.6f,%.6f,%.6f,%d,%.3f",
				m.MeanMs, m.P95Ms, m.QueueMeanMs, m.QueueP95Ms, m.Events, m.RealTime)
			fmt.Fprintf(&b, ",%.3f,%.3f,%.4f,%.4f",
				float64(m.Stats.ProbeHits)/ev, float64(m.Stats.ScoreComputations)/ev,
				float64(m.Stats.Rescans)/ev, float64(m.Stats.Refills)/ev)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
