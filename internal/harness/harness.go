// Package harness runs the paper's experiments: it builds calibrated
// corpora, query workloads and Poisson streams, drives each engine
// through warm-up and a measured steady state, and renders the
// figure/table data the paper reports (DESIGN.md §5: E0–E4 plus
// ablations A1–A4).
package harness

import (
	"fmt"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/stats"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// Spec describes one measured point: an engine configuration driven by
// a fully specified workload.
type Spec struct {
	Policy      window.Policy
	NumQueries  int
	QueryLen    int
	K           int
	WarmDocs    int           // documents fed before registration/measurement
	MeasureDocs int           // events measured after warm-up
	MaxMeasure  time.Duration // wall-clock cap on the measurement loop
	MaxSetup    time.Duration // wall-clock cap on warm-up + registration; 0 = no cap
	Rate        float64       // Poisson arrival rate, docs/second
	Corpus      corpus.SynthConfig
	QuerySeed   int64
	PopularQ    bool // draw query terms from the corpus Zipf instead of uniformly
}

// Measurement is the outcome of one Spec run.
type Measurement struct {
	Events     int
	MeanMs     float64
	P50Ms      float64
	P95Ms      float64
	P99Ms      float64
	MaxMs      float64
	Wall       time.Duration
	Stats      core.Stats
	Truncated  bool // measurement loop hit MaxMeasure early
	Infeasible bool // setup exceeded MaxSetup; no measurement taken
	// RealTime is mean event cost divided by the mean inter-arrival gap:
	// above 1.0 the engine cannot keep up with the stream, the paper's
	// criterion for Naïve's missing point at N = 100,000.
	RealTime float64
	// QueueMeanMs / QueueP95Ms / QueueMaxMs come from a deterministic
	// single-server queue simulation replaying the measured service
	// times against the stream's actual Poisson arrival schedule. This
	// is the paper's metric — "the elapsed time between the arrival of
	// a new document and the point where all the query results are
	// updated" — which includes waiting behind earlier documents.
	// When RealTime exceeds 1 the queue diverges over the run, which is
	// how the paper's Naïve "becomes unstable" at N = 100,000.
	QueueMeanMs float64
	QueueP95Ms  float64
	QueueMaxMs  float64
}

// EngineBuilder constructs a fresh engine for a Spec's window policy.
type EngineBuilder struct {
	Name  string
	Build func(pol window.Policy) core.Engine
}

// ITABuilder is the paper's algorithm with default options.
func ITABuilder() EngineBuilder {
	return EngineBuilder{Name: "ITA", Build: func(pol window.Policy) core.Engine { return core.NewITA(pol) }}
}

// NaiveBuilder is the paper's competitor: Naïve enhanced with
// top-kmax views (kmax = 2k).
func NaiveBuilder() EngineBuilder {
	return EngineBuilder{Name: "Naive", Build: func(pol window.Policy) core.Engine { return core.NewNaive(pol) }}
}

// Run executes one point: generate workload, warm the window, register
// the queries, then measure per-event processing time over the
// steady-state stream.
func Run(b EngineBuilder, spec Spec) (Measurement, error) {
	qSynth, err := corpus.NewSynth(withSeed(spec.Corpus, spec.QuerySeed), vsm.Cosine{})
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: query synth: %w", err)
	}
	queries := make([]*model.Query, spec.NumQueries)
	for i := range queries {
		if spec.PopularQ {
			queries[i] = qSynth.PopularQuery(model.QueryID(i+1), spec.K, spec.QueryLen)
		} else {
			queries[i] = qSynth.Query(model.QueryID(i+1), spec.K, spec.QueryLen)
		}
	}

	dSynth, err := corpus.NewSynth(spec.Corpus, vsm.Cosine{})
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: doc synth: %w", err)
	}
	str := stream.New(dSynth.Document, spec.Rate, spec.Corpus.Seed+1, time.Unix(0, 0))

	eng := b.Build(spec.Policy)

	setupStart := time.Now()
	overBudget := func() bool {
		return spec.MaxSetup > 0 && time.Since(setupStart) > spec.MaxSetup
	}
	for i := 0; i < spec.WarmDocs; i++ {
		if err := eng.Process(str.Next()); err != nil {
			return Measurement{}, fmt.Errorf("harness: warm: %w", err)
		}
		if i%1024 == 0 && overBudget() {
			return Measurement{Infeasible: true}, nil
		}
	}
	for _, q := range queries {
		if err := eng.Register(q); err != nil {
			return Measurement{}, fmt.Errorf("harness: register: %w", err)
		}
		if overBudget() {
			return Measurement{Infeasible: true}, nil
		}
	}

	var sum stats.Summary
	var services []float64   // per-event service time, ms
	var arrivalsMs []float64 // stream arrival offsets, ms
	streamStart := str.Now()
	statsBefore := *eng.Stats()
	measureStart := time.Now()
	truncated := false
	for i := 0; i < spec.MeasureDocs; i++ {
		d := str.Next()
		arrivalsMs = append(arrivalsMs, float64(d.Arrival.Sub(streamStart).Nanoseconds())/1e6)
		t0 := time.Now()
		err := eng.Process(d)
		dt := time.Since(t0)
		if err != nil {
			return Measurement{}, fmt.Errorf("harness: measure: %w", err)
		}
		ms := float64(dt.Nanoseconds()) / 1e6
		sum.Add(ms)
		services = append(services, ms)
		if spec.MaxMeasure > 0 && time.Since(measureStart) > spec.MaxMeasure {
			truncated = i+1 < spec.MeasureDocs
			break
		}
	}
	gapMs := 1000.0 / spec.Rate
	m := Measurement{
		Events:    sum.N(),
		MeanMs:    sum.Mean(),
		P50Ms:     sum.Percentile(50),
		P95Ms:     sum.Percentile(95),
		P99Ms:     sum.Percentile(99),
		MaxMs:     sum.Max(),
		Wall:      time.Since(measureStart),
		Stats:     statsDelta(statsBefore, *eng.Stats()),
		Truncated: truncated,
		RealTime:  sum.Mean() / gapMs,
	}
	m.QueueMeanMs, m.QueueP95Ms, m.QueueMaxMs = simulateQueue(arrivalsMs, services)
	return m, nil
}

// statsDelta subtracts the pre-measurement counters so Measurement.Stats
// describes only the measured steady-state events, not warm-up or
// registration.
func statsDelta(before, after core.Stats) core.Stats {
	return core.Stats{
		Arrivals:          after.Arrivals - before.Arrivals,
		Expirations:       after.Expirations - before.Expirations,
		ProbeHits:         after.ProbeHits - before.ProbeHits,
		SearchReads:       after.SearchReads - before.SearchReads,
		RollupSteps:       after.RollupSteps - before.RollupSteps,
		RollupDrops:       after.RollupDrops - before.RollupDrops,
		Refills:           after.Refills - before.Refills,
		TreeUpdates:       after.TreeUpdates - before.TreeUpdates,
		IndexInserts:      after.IndexInserts - before.IndexInserts,
		IndexDeletes:      after.IndexDeletes - before.IndexDeletes,
		ScoreComputations: after.ScoreComputations - before.ScoreComputations,
		Rescans:           after.Rescans - before.Rescans,
	}
}

// simulateQueue replays measured service times through a single-server
// FIFO queue with the stream's real arrival schedule and returns
// summary latencies (arrival → results updated), the paper's metric.
func simulateQueue(arrivalsMs, servicesMs []float64) (mean, p95, max float64) {
	var lat stats.Summary
	clock := 0.0
	for i := range servicesMs {
		at := arrivalsMs[i]
		if clock < at {
			clock = at
		}
		clock += servicesMs[i]
		lat.Add(clock - at)
	}
	return lat.Mean(), lat.Percentile(95), lat.Max()
}

func withSeed(cfg corpus.SynthConfig, seed int64) corpus.SynthConfig {
	cfg.Seed = seed
	return cfg
}
