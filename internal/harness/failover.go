package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ita"
)

// FailoverPoint is one cell of the warm-standby experiment. Three
// phases are measured:
//
//   - "steady": the primary streams the workload while a live standby
//     applies it; replication lag is sampled from the primary's ack
//     ledger after every batch, and the drain time from the last write
//     to a fully caught-up standby is timed.
//   - "catchup": the standby is stopped, the primary runs ahead by the
//     cell's epoch gap, and the rejoin is timed from OpenFollower to
//     lag zero — through the resume negotiation or, past the retention
//     window, the checkpoint-resync fallback (Resynced records which).
//   - "promote": the primary is shut down and the standby promoted;
//     the cell times Promote itself and the first read served by the
//     new primary, and verifies that read against the old primary's
//     final published results.
type FailoverPoint struct {
	Phase string `json:"phase"`
	// Steady-state cells.
	IngestPerSec float64 `json:"ingest_docs_per_sec,omitempty"`
	LagSamples   int     `json:"lag_samples,omitempty"`
	LagEpochsAvg float64 `json:"lag_epochs_avg"`
	LagEpochsMax uint64  `json:"lag_epochs_max"`
	DrainMs      float64 `json:"drain_ms,omitempty"`
	// Catch-up cells.
	BehindEpochs int     `json:"behind_epochs,omitempty"`
	CatchupMs    float64 `json:"catchup_ms,omitempty"`
	Resynced     bool    `json:"resynced,omitempty"`
	// Promote cell.
	PromoteMs   float64 `json:"promote_ms,omitempty"`
	FirstReadMs float64 `json:"first_read_ms,omitempty"`
	PromotedOK  bool    `json:"promoted_ok,omitempty"`
}

// FailoverReport is the outcome of the warm-standby experiment, with
// the same hardware context as the other BENCH reports.
type FailoverReport struct {
	Queries    int             `json:"queries"`
	QueryLen   int             `json:"query_len"`
	K          int             `json:"k"`
	Window     int             `json:"window"`
	BatchSize  int             `json:"batch_size"`
	Events     int             `json:"events"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Points     []FailoverPoint `json:"points"`
}

// Failover measures the warm-standby replication path end to end:
// steady-state lag while the standby shadows a full ingest run,
// catch-up time after falling each gap in behind (measured in epoch
// boundaries), and the promote-to-first-served-read latency of a
// failover. One primary/standby pair lives through the whole
// experiment, so the catch-up cells exercise rejoin against a primary
// with real history, not a fresh directory.
func Failover(p Profile, queries, queryLen, win, batch int, behind []int, events int, progress func(string)) (FailoverReport, error) {
	const dict = 2000
	rep := FailoverReport{
		Queries:    queries,
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		BatchSize:  batch,
		Events:     events,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	tmp, err := os.MkdirTemp("", "ita-failover-*")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(tmp)
	pDir := filepath.Join(tmp, "primary")
	fDir := filepath.Join(tmp, "standby")

	prim, err := ita.Open(pDir, ita.WithCountWindow(win), ita.WithBatchSize(batch),
		ita.WithDurability(ita.DurabilityOff), ita.WithCheckpointEvery(64))
	if err != nil {
		return rep, err
	}
	defer prim.Close()
	addr, err := prim.StartReplication("127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	stand, err := ita.OpenFollower(fDir, addr.String(), ita.WithDurability(ita.DurabilityOff))
	if err != nil {
		return rep, err
	}
	defer func() { stand.Close() }()

	// waitCaughtUp polls the primary's ack ledger until the standby has
	// acknowledged the primary's current head epoch, returning the wait.
	waitCaughtUp := func(ctx string) (time.Duration, error) {
		t0 := time.Now()
		deadline := t0.Add(2 * time.Minute)
		for {
			fs := prim.ReplicationStats().Followers
			if len(fs) > 0 && fs[len(fs)-1].Connected && fs[len(fs)-1].LagEpochs == 0 {
				return time.Since(t0), nil
			}
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("failover: %s: standby never caught up: %+v", ctx, fs)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	qrnd := rand.New(rand.NewSource(7777))
	for i := 0; i < queries; i++ {
		if _, err := prim.Register(readsText(qrnd, dict, queryLen), p.K); err != nil {
			return rep, err
		}
	}

	// stream ingests n events in epoch-sized batches and returns the
	// ingest rate; sample, when non-nil, runs after every batch.
	rnd := rand.New(rand.NewSource(42))
	clock := time.Unix(0, 0)
	stream := func(n int, sample func()) (float64, error) {
		items := make([]ita.TimedText, batch)
		start := time.Now()
		sent := 0
		for sent < n {
			for i := range items {
				clock = clock.Add(time.Millisecond)
				items[i] = ita.TimedText{Text: readsText(rnd, dict, 12), At: clock}
			}
			if _, err := prim.IngestBatch(items); err != nil {
				return 0, err
			}
			sent += batch
			if sample != nil {
				sample()
			}
		}
		return float64(sent) / time.Since(start).Seconds(), nil
	}

	// Phase 1 — steady-state shadowing.
	if progress != nil {
		progress(fmt.Sprintf("failover: steady state (%d queries, %d events)", queries, events))
	}
	pt := FailoverPoint{Phase: "steady"}
	var lagSum uint64
	rate, err := stream(events, func() {
		fs := prim.ReplicationStats().Followers
		if len(fs) == 0 {
			return
		}
		lag := fs[len(fs)-1].LagEpochs
		lagSum += lag
		if lag > pt.LagEpochsMax {
			pt.LagEpochsMax = lag
		}
		pt.LagSamples++
	})
	if err != nil {
		return rep, err
	}
	pt.IngestPerSec = rate
	if pt.LagSamples > 0 {
		pt.LagEpochsAvg = float64(lagSum) / float64(pt.LagSamples)
	}
	if err := prim.Flush(); err != nil {
		return rep, err
	}
	drain, err := waitCaughtUp("steady drain")
	if err != nil {
		return rep, err
	}
	pt.DrainMs = float64(drain.Nanoseconds()) / 1e6
	rep.Points = append(rep.Points, pt)

	// Phase 2 — catch-up from N epochs behind. The standby closes, the
	// primary keeps going, and the rejoin is timed end to end.
	for _, n := range behind {
		if progress != nil {
			progress(fmt.Sprintf("failover: catch-up from %d epochs behind", n))
		}
		if err := stand.Close(); err != nil {
			return rep, err
		}
		for i := 0; i < n; i++ {
			if _, err := stream(batch, nil); err != nil {
				return rep, err
			}
			if err := prim.Flush(); err != nil {
				return rep, err
			}
		}
		t0 := time.Now()
		stand, err = ita.OpenFollower(fDir, addr.String(), ita.WithDurability(ita.DurabilityOff))
		if err != nil {
			return rep, err
		}
		if _, err := waitCaughtUp(fmt.Sprintf("catch-up n=%d", n)); err != nil {
			return rep, err
		}
		// The resync counter is per engine instance, so any non-zero
		// value here belongs to this rejoin.
		rep.Points = append(rep.Points, FailoverPoint{
			Phase:        "catchup",
			BehindEpochs: n,
			CatchupMs:    float64(time.Since(t0).Nanoseconds()) / 1e6,
			Resynced:     stand.ReplicationStats().Resyncs > 0,
		})
	}

	// Phase 3 — failover. The primary stops serving; the standby must
	// come up writable and serve its first read from the promoted state.
	if progress != nil {
		progress("failover: promote standby")
	}
	if err := prim.Flush(); err != nil {
		return rep, err
	}
	if _, err := waitCaughtUp("pre-promote"); err != nil {
		return rep, err
	}
	want := prim.ResultsAll()
	if err := prim.Close(); err != nil {
		return rep, err
	}
	t0 := time.Now()
	if err := stand.Promote(); err != nil {
		return rep, fmt.Errorf("failover: promote: %w", err)
	}
	promoted := time.Now()
	got := stand.ResultsAll()
	read := time.Now()

	ppt := FailoverPoint{
		Phase:       "promote",
		PromoteMs:   float64(promoted.Sub(t0).Nanoseconds()) / 1e6,
		FirstReadMs: float64(read.Sub(promoted).Nanoseconds()) / 1e6,
		PromotedOK:  len(got) == len(want),
	}
	for i := range got {
		if !ppt.PromotedOK {
			break
		}
		if got[i].Query != want[i].Query || len(got[i].Matches) != len(want[i].Matches) {
			ppt.PromotedOK = false
		}
		for j := range got[i].Matches {
			if got[i].Matches[j] != want[i].Matches[j] {
				ppt.PromotedOK = false
				break
			}
		}
	}
	// The promoted engine must also accept writes.
	if ppt.PromotedOK {
		clock = clock.Add(time.Millisecond)
		if _, err := stand.IngestText(readsText(rnd, dict, 12), clock); err != nil {
			ppt.PromotedOK = false
		}
	}
	rep.Points = append(rep.Points, ppt)
	if !ppt.PromotedOK {
		return rep, fmt.Errorf("failover: promoted standby diverged from the primary's final results")
	}
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r FailoverReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failover — %d queries (n=%d, k=%d), window N=%d, B=%d, %d events, GOMAXPROCS=%d\n",
		r.Queries, r.QueryLen, r.K, r.Window, r.BatchSize, r.Events, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-10s%-10s%12s%12s%12s%12s%12s%12s\n",
		"phase", "behind", "lag avg", "lag max", "drain ms", "catchup ms", "promote ms", "read ms")
	for _, pt := range r.Points {
		behind, lavg, lmax, drain, catch, prom, read := "-", "-", "-", "-", "-", "-", "-"
		switch pt.Phase {
		case "steady":
			lavg = fmt.Sprintf("%.2f", pt.LagEpochsAvg)
			lmax = fmt.Sprintf("%d", pt.LagEpochsMax)
			drain = fmt.Sprintf("%.2f", pt.DrainMs)
		case "catchup":
			behind = fmt.Sprintf("%d", pt.BehindEpochs)
			if pt.Resynced {
				behind += "*"
			}
			catch = fmt.Sprintf("%.2f", pt.CatchupMs)
		case "promote":
			prom = fmt.Sprintf("%.3f", pt.PromoteMs)
			read = fmt.Sprintf("%.3f", pt.FirstReadMs)
		}
		fmt.Fprintf(&b, "%-10s%-10s%12s%12s%12s%12s%12s%12s\n",
			pt.Phase, behind, lavg, lmax, drain, catch, prom, read)
	}
	b.WriteString("note: lag is sampled from the primary's ack ledger after every ingest batch (epochs the standby has yet to acknowledge); behind* means the rejoin fell past the WAL retention window and resynced from a shipped checkpoint; promote ms covers stopping the replication client and flipping the engine writable, read ms the first ResultsAll served afterwards.\n")
	return b.String()
}

// JSON renders the report for BENCH_*.json files.
func (r FailoverReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
