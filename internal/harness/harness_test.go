package harness

import (
	"strings"
	"testing"
	"time"

	"ita/internal/corpus"
	"ita/internal/window"
)

// tinyProfile keeps harness tests fast: small dictionary (alias-table
// construction dominates otherwise), few queries, short measurement.
func tinyProfile() Profile {
	return Profile{
		Label:       "test",
		Queries:     20,
		K:           5,
		MeasureDocs: 60,
		MaxMeasure:  5 * time.Second,
		MaxSetup:    10 * time.Second,
		MaxWindow:   200,
		Rate:        200,
		DictSize:    2000,
	}
}

func tinySpec(p Profile) Spec {
	s := p.spec(window.Count{N: 100}, 4, 100)
	return s
}

func TestRunProducesMeasurement(t *testing.T) {
	p := tinyProfile()
	m, err := Run(ITABuilder(), tinySpec(p))
	if err != nil {
		t.Fatal(err)
	}
	if m.Infeasible {
		t.Fatal("tiny spec infeasible")
	}
	if m.Events != p.MeasureDocs {
		t.Fatalf("events = %d, want %d", m.Events, p.MeasureDocs)
	}
	if m.MeanMs < 0 || m.P95Ms < m.P50Ms || m.MaxMs < m.P95Ms {
		t.Fatalf("inconsistent percentiles: %+v", m)
	}
	// Queue latency includes service time, so it can never undercut it.
	if m.QueueMeanMs < m.MeanMs-1e-9 || m.QueueMaxMs < m.QueueP95Ms-1e-9 {
		t.Fatalf("inconsistent queue latencies: %+v", m)
	}
	// Stats cover only the measured window, not warm-up.
	if m.Stats.Arrivals != uint64(p.MeasureDocs) {
		t.Fatalf("arrivals = %d, want %d", m.Stats.Arrivals, p.MeasureDocs)
	}
}

func TestRunNaive(t *testing.T) {
	p := tinyProfile()
	m, err := Run(NaiveBuilder(), tinySpec(p))
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.ScoreComputations == 0 {
		t.Fatal("naive should score every arrival")
	}
}

func TestRunRespectsSetupBudget(t *testing.T) {
	p := tinyProfile()
	s := tinySpec(p)
	s.WarmDocs = 1 << 30 // absurd warm-up
	s.MaxSetup = 50 * time.Millisecond
	m, err := Run(ITABuilder(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Infeasible {
		t.Fatal("expected infeasible measurement")
	}
}

func TestFigureSweepAndFormat(t *testing.T) {
	p := tinyProfile()
	p.MeasureDocs = 30
	fig := sweep("t", "Test figure", "n",
		[]EngineBuilder{NaiveBuilder(), ITABuilder()},
		[]float64{2, 4},
		func(x float64) string { return "n" + string(rune('0'+int(x))) },
		func(x float64) Spec { return p.spec(window.Count{N: 50}, int(x), 50) },
		nil)
	if fig.Err != nil {
		t.Fatal(fig.Err)
	}
	if len(fig.Points) != 2 || len(fig.Points[0].M) != 2 {
		t.Fatalf("sweep shape wrong: %+v", fig)
	}
	out := fig.Format()
	for _, want := range []string{"Test figure", "Naive ms", "ITA ms", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "Naive_mean_ms") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
}

func TestITABeatsNaiveOnPaperShapedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	// A scaled-down Fig 3(a) point: ITA's mean event cost must be lower
	// than Naïve's. This is the paper's core claim; the margin is
	// asserted loosely (>1.5×) to stay robust on slow CI machines.
	p := Profile{
		Label:       "shape",
		Queries:     200,
		K:           10,
		MeasureDocs: 400,
		MaxMeasure:  30 * time.Second,
		MaxSetup:    60 * time.Second,
		MaxWindow:   1000,
		Rate:        200,
		DictSize:    50000,
	}
	spec := p.spec(window.Count{N: 1000}, 10, 1000)
	naive, err := Run(NaiveBuilder(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ita, err := Run(ITABuilder(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ita.MeanMs*1.5 > naive.MeanMs {
		t.Fatalf("ITA %.4fms vs Naive %.4fms: expected ≥1.5x speedup", ita.MeanMs, naive.MeanMs)
	}
	t.Logf("ITA %.4f ms, Naive %.4f ms, speedup %.1fx", ita.MeanMs, naive.MeanMs, naive.MeanMs/ita.MeanMs)
}

func TestSetupReport(t *testing.T) {
	p := tinyProfile()
	r, err := Setup(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.SampleDocs != 200 || r.DictSize != p.DictSize {
		t.Fatalf("report = %+v", r)
	}
	if r.MeanTerms <= 0 || r.MeanTokens < r.MeanTerms {
		t.Fatalf("implausible term stats: %+v", r)
	}
	if r.HeadTermShare <= 0 || r.HeadTermShare >= 1 {
		t.Fatalf("head share = %f", r.HeadTermShare)
	}
	out := r.Format()
	if !strings.Contains(out, "dictionary size") {
		t.Fatalf("Format output: %s", out)
	}
}

func TestSetupCorpusCalibration(t *testing.T) {
	// E0 at full scale: the real dictionary size and the WSJ-like
	// document length band. Uses a moderate sample to bound runtime.
	if testing.Short() {
		t.Skip("full-dictionary calibration skipped in -short mode")
	}
	cfg := corpus.WSJConfig()
	if cfg.DictSize != 181978 {
		t.Fatalf("dictionary size %d, want the paper's 181,978", cfg.DictSize)
	}
	p := PaperProfile()
	r, err := Setup(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanTerms < 120 || r.MeanTerms > 240 {
		t.Fatalf("mean distinct terms %f outside WSJ-like band", r.MeanTerms)
	}
}

func TestQuickProfileFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test skipped in -short mode")
	}
	p := tinyProfile()
	p.MeasureDocs = 20
	fig := Headline(p, nil)
	if fig.Err != nil {
		t.Fatal(fig.Err)
	}
	if len(fig.Points) != 1 || len(fig.Points[0].M) != 3 {
		t.Fatalf("headline shape: %+v", fig.Points)
	}
}

// TestReadWriteSmoke runs a tiny mixed read/write cell pair and sanity
// checks the report shape: both modes measured, reads recorded, and the
// latency distribution populated.
func TestReadWriteSmoke(t *testing.T) {
	rep, err := ReadWrite(QuickProfile(), 50, 4, 100, 16, []int{2}, 60*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want locked+published", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Reads <= 0 || pt.ReadsPerSec <= 0 {
			t.Fatalf("%s: no reads measured: %+v", pt.Mode, pt)
		}
		if pt.WriteEvents <= 0 {
			t.Fatalf("%s: no writes measured: %+v", pt.Mode, pt)
		}
		if pt.MaxReadUs < pt.P50ReadUs {
			t.Fatalf("%s: latency distribution inverted: %+v", pt.Mode, pt)
		}
	}
	if rep.Points[0].Mode != "locked" || rep.Points[1].Mode != "published" {
		t.Fatalf("mode order: %s, %s", rep.Points[0].Mode, rep.Points[1].Mode)
	}
	if rep.Points[1].SpeedupVsLocked <= 0 {
		t.Fatalf("speedup not computed: %+v", rep.Points[1])
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	if rep.Format() == "" {
		t.Fatal("empty Format")
	}
}
