package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ita"
	"ita/internal/wal"
)

// RecoveryPoint is one cell of the durability experiment: either a WAL
// overhead measurement (Phase "overhead": ingest throughput under a
// given fsync policy, no checkpoints) or a recovery measurement (Phase
// "recovery": crash after a run with the given checkpoint interval and
// time the reopen).
type RecoveryPoint struct {
	Phase      string `json:"phase"`
	Durability string `json:"durability"` // memory = no WAL at all
	// CheckpointEvery is the boundary interval between automatic
	// checkpoints; 0 = never (recovery replays the whole log).
	CheckpointEvery int     `json:"checkpoint_every,omitempty"`
	IngestPerSec    float64 `json:"ingest_docs_per_sec"`
	// SlowdownVsMemory is the in-memory engine's ingest throughput over
	// this cell's (1.0 on the memory row).
	SlowdownVsMemory float64 `json:"slowdown_vs_memory"`
	// Recovery cells: what the crash left behind and what reopening cost.
	WALBytes        int64   `json:"wal_bytes,omitempty"`
	TailRecords     int     `json:"tail_records,omitempty"`
	CheckpointBytes int64   `json:"checkpoint_bytes,omitempty"`
	RecoverMs       float64 `json:"recover_ms,omitempty"`
	RecoveredOK     bool    `json:"recovered_ok,omitempty"`
}

// RecoveryReport is the outcome of the durability experiment: WAL write
// overhead by fsync policy, and recovery time as a function of the
// checkpoint interval. Hardware context is recorded as in the other
// BENCH reports.
type RecoveryReport struct {
	Queries    int             `json:"queries"`
	QueryLen   int             `json:"query_len"`
	K          int             `json:"k"`
	Window     int             `json:"window"`
	BatchSize  int             `json:"batch_size"`
	Events     int             `json:"events"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Points     []RecoveryPoint `json:"points"`
}

// Recovery measures (a) the ingest cost of write-ahead logging at every
// fsync policy against the in-memory engine, and (b) crash-recovery
// time as a function of the checkpoint interval: for each interval the
// same stream runs durably, the engine is dropped without warning, and
// Open is timed cold. Every recovered engine is sanity-checked against
// the crashed one's published results.
func Recovery(p Profile, queries, queryLen, win, batch int, intervals []int, events int, progress func(string)) (RecoveryReport, error) {
	const dict = 2000
	rep := RecoveryReport{
		Queries:    queries,
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		BatchSize:  batch,
		Events:     events,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// run drives the standard workload (register queries, stream epochs)
	// against a fresh engine and returns ingest throughput.
	run := func(eng *ita.Engine) (float64, error) {
		rnd := rand.New(rand.NewSource(42))
		clock := time.Unix(0, 0)
		qrnd := rand.New(rand.NewSource(7777))
		for i := 0; i < queries; i++ {
			if _, err := eng.Register(readsText(qrnd, dict, queryLen), p.K); err != nil {
				return 0, err
			}
		}
		items := make([]ita.TimedText, batch)
		start := time.Now()
		sent := 0
		for sent < events {
			for i := range items {
				clock = clock.Add(time.Millisecond)
				items[i] = ita.TimedText{Text: readsText(rnd, dict, 12), At: clock}
			}
			if _, err := eng.IngestBatch(items); err != nil {
				return 0, err
			}
			sent += batch
		}
		return float64(sent) / time.Since(start).Seconds(), nil
	}

	tmp, err := os.MkdirTemp("", "ita-recovery-*")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(tmp)

	// Phase 1 — logging overhead per fsync policy, checkpoints off so
	// the cost measured is purely the log writes and syncs.
	var memRate float64
	modes := []struct {
		name string
		d    ita.Durability
	}{{"memory", 0}, {"off", ita.DurabilityOff}, {"epoch", ita.DurabilityEpochSync}, {"always", ita.DurabilityAlways}}
	for i, m := range modes {
		if progress != nil {
			progress(fmt.Sprintf("recovery: overhead %s (%d queries, %d events)", m.name, queries, events))
		}
		var eng *ita.Engine
		if m.name == "memory" {
			eng, err = ita.New(ita.WithCountWindow(win), ita.WithBatchSize(batch))
		} else {
			eng, err = ita.Open(filepath.Join(tmp, "ovh-"+m.name),
				ita.WithCountWindow(win), ita.WithBatchSize(batch),
				ita.WithDurability(m.d), ita.WithCheckpointEvery(0))
		}
		if err != nil {
			return rep, err
		}
		rate, err := run(eng)
		if cerr := eng.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return rep, err
		}
		if i == 0 {
			memRate = rate
		}
		pt := RecoveryPoint{Phase: "overhead", Durability: m.name, IngestPerSec: rate, SlowdownVsMemory: 1}
		if rate > 0 {
			pt.SlowdownVsMemory = memRate / rate
		}
		rep.Points = append(rep.Points, pt)
	}

	// Phase 2 — recovery time vs checkpoint interval, at the default
	// EpochSync policy.
	for _, every := range intervals {
		if progress != nil {
			progress(fmt.Sprintf("recovery: crash/reopen, checkpoint every %d", every))
		}
		dir := filepath.Join(tmp, fmt.Sprintf("rec-%d", every))
		eng, err := ita.Open(dir, ita.WithCountWindow(win), ita.WithBatchSize(batch),
			ita.WithDurability(ita.DurabilityEpochSync), ita.WithCheckpointEvery(every))
		if err != nil {
			return rep, err
		}
		rate, err := run(eng)
		if err != nil {
			return rep, err
		}
		preQueries, preWindow := eng.Queries(), eng.WindowLen()
		preResults := eng.ResultsAll()
		// Crash: the engine is simply dropped (no Close, no final
		// checkpoint); the single-shard engine holds no goroutines.
		eng = nil

		pt := RecoveryPoint{Phase: "recovery", Durability: "epoch", CheckpointEvery: every,
			IngestPerSec: rate, SlowdownVsMemory: 1}
		if rate > 0 {
			pt.SlowdownVsMemory = memRate / rate
		}
		st, err := wal.ScanDir(dir)
		if err != nil {
			return rep, err
		}
		for _, seq := range st.Segments {
			if fi, err := os.Stat(wal.SegmentPath(dir, seq)); err == nil {
				pt.WALBytes += fi.Size()
			}
			if res, err := wal.ScanFile(wal.SegmentPath(dir, seq)); err == nil {
				pt.TailRecords += len(res.Records)
			}
		}
		if latest, ok := st.Latest(); ok {
			if fi, err := os.Stat(wal.CheckpointPath(dir, latest)); err == nil {
				pt.CheckpointBytes = fi.Size()
			}
		}

		t0 := time.Now()
		rec, err := ita.Open(dir)
		if err != nil {
			return rep, fmt.Errorf("recovery (every=%d): %w", every, err)
		}
		pt.RecoverMs = float64(time.Since(t0).Nanoseconds()) / 1e6
		recResults := rec.ResultsAll()
		pt.RecoveredOK = rec.Queries() == preQueries && rec.WindowLen() == preWindow &&
			len(recResults) == len(preResults)
		for i := range recResults {
			if !pt.RecoveredOK {
				break
			}
			if recResults[i].Query != preResults[i].Query ||
				len(recResults[i].Matches) != len(preResults[i].Matches) {
				pt.RecoveredOK = false
			}
			for j := range recResults[i].Matches {
				if recResults[i].Matches[j] != preResults[i].Matches[j] {
					pt.RecoveredOK = false
					break
				}
			}
		}
		if cerr := rec.Close(); cerr != nil {
			return rep, cerr
		}
		if !pt.RecoveredOK {
			return rep, fmt.Errorf("recovery (every=%d): recovered state diverged from crashed engine", every)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r RecoveryReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "durability — %d queries (n=%d, k=%d), window N=%d, B=%d, %d events, GOMAXPROCS=%d\n",
		r.Queries, r.QueryLen, r.K, r.Window, r.BatchSize, r.Events, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-10s%-10s%10s%14s%12s%12s%10s%12s%12s\n",
		"phase", "mode", "ckpt", "ingest/sec", "vs memory", "wal bytes", "records", "ckpt bytes", "recover ms")
	for _, pt := range r.Points {
		ck := "-"
		if pt.Phase == "recovery" {
			if pt.CheckpointEvery == 0 {
				ck = "never"
			} else {
				ck = fmt.Sprintf("%d", pt.CheckpointEvery)
			}
		}
		wb, recs, cb, rm := "-", "-", "-", "-"
		if pt.Phase == "recovery" {
			wb = fmt.Sprintf("%d", pt.WALBytes)
			recs = fmt.Sprintf("%d", pt.TailRecords)
			cb = fmt.Sprintf("%d", pt.CheckpointBytes)
			rm = fmt.Sprintf("%.1f", pt.RecoverMs)
		}
		fmt.Fprintf(&b, "%-10s%-10s%10s%14.0f%11.2fx%12s%10s%12s%12s\n",
			pt.Phase, pt.Durability, ck, pt.IngestPerSec, pt.SlowdownVsMemory, wb, recs, cb, rm)
	}
	b.WriteString("note: slowdown is the in-memory engine's ingest rate over the cell's; recovery rows crash without Close and time a cold Open (checkpoint restore + log tail replay), verifying the recovered results byte-for-byte.\n")
	return b.String()
}

// JSON renders the report for BENCH_*.json files.
func (r RecoveryReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
