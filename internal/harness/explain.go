package harness

import (
	"fmt"
	"strings"

	"ita/internal/window"
)

// Explain runs the headline configuration on both engines and breaks
// their per-event cost into operation counts, quantifying the paper's
// §III-B argument: most arrivals and expirations cannot affect any
// query, and the threshold trees prove it without scoring.
type ExplainReport struct {
	Spec    string
	Entries []ExplainEntry
}

// ExplainEntry is one engine's per-event operation profile.
type ExplainEntry struct {
	Engine   string
	MeanMs   float64
	PerEvent map[string]float64
	Order    []string
}

// Explain measures both engines at the Fig 3(a) midpoint and returns
// the operation breakdown.
func Explain(p Profile) (ExplainReport, error) {
	const n = 1000
	warm := min(n, p.MaxWindow)
	spec := p.spec(window.Count{N: warm}, 10, warm)
	rep := ExplainReport{
		Spec: fmt.Sprintf("n=10, N=%d, %d queries, k=%d (%s profile)", warm, p.Queries, p.K, p.Label),
	}
	for _, b := range []EngineBuilder{NaiveBuilder(), ITABuilder()} {
		m, err := Run(b, spec)
		if err != nil {
			return rep, err
		}
		ev := float64(m.Events)
		if ev == 0 {
			ev = 1
		}
		entry := ExplainEntry{Engine: b.Name, MeanMs: m.MeanMs, PerEvent: map[string]float64{}}
		add := func(name string, v uint64) {
			entry.PerEvent[name] = float64(v) / ev
			entry.Order = append(entry.Order, name)
		}
		s := m.Stats
		add("score computations", s.ScoreComputations)
		add("probe hits", s.ProbeHits)
		add("list entries read", s.SearchReads)
		add("rollup steps", s.RollupSteps)
		add("refills", s.Refills)
		add("rescans", s.Rescans)
		add("index inserts", s.IndexInserts)
		add("index deletes", s.IndexDeletes)
		add("tree updates", s.TreeUpdates)
		rep.Entries = append(rep.Entries, entry)
	}
	return rep, nil
}

// Format renders the report.
func (r ExplainReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "operation profile per stream event — %s\n", r.Spec)
	fmt.Fprintf(&b, "%-22s", "operation")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%16s", e.Engine)
	}
	b.WriteByte('\n')
	if len(r.Entries) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-22s", "mean event cost (ms)")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%16.4f", e.MeanMs)
	}
	b.WriteByte('\n')
	for _, name := range r.Entries[0].Order {
		fmt.Fprintf(&b, "%-22s", name)
		for _, e := range r.Entries {
			fmt.Fprintf(&b, "%16.3f", e.PerEvent[name])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nEvery event is one arrival plus one expiration. The Naïve engine\n")
	fmt.Fprintf(&b, "scores every arrival against every query; ITA's threshold trees\n")
	fmt.Fprintf(&b, "reject almost all of them with zero score computations, at the\n")
	fmt.Fprintf(&b, "price of maintaining the impact-ordered index (inserts/deletes).\n")
	return b.String()
}
