package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"ita"
	"ita/internal/cluster"
)

// ClusterPoint is one cell of the multi-node experiment. Each node
// count produces two phases:
//
//   - "ingest": the full document stream fanned out to every node
//     through the merge router, in epoch-sized batches. The single-node
//     cell is the baseline; larger cells pay the fan-out (every node
//     ingests every document) but each node maintains only its slice of
//     the queries.
//   - "read": merged reads through the router — ResultsAll concatenates
//     and re-sorts every node's slice; Results routes to the placement
//     owner. Latencies are averaged over ReadIters iterations.
type ClusterPoint struct {
	Phase string `json:"phase"`
	Nodes int    `json:"nodes"`
	// Ingest cells.
	IngestPerSec float64 `json:"ingest_docs_per_sec,omitempty"`
	RelBaseline  float64 `json:"rel_baseline,omitempty"`
	// Read cells.
	MergedReadUs float64 `json:"merged_read_us,omitempty"`
	OwnerReadUs  float64 `json:"owner_read_us,omitempty"`
	ReadIters    int     `json:"read_iters,omitempty"`
	// Every cell must serve results identical to the first cell's.
	EquivalentOK bool `json:"equivalent_ok"`
}

// ClusterReport is the outcome of the multi-node experiment, with the
// same hardware context as the other BENCH reports.
type ClusterReport struct {
	Queries    int            `json:"queries"`
	QueryLen   int            `json:"query_len"`
	K          int            `json:"k"`
	Window     int            `json:"window"`
	BatchSize  int            `json:"batch_size"`
	Events     int            `json:"events"`
	NodeCounts []int          `json:"node_counts"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Points     []ClusterPoint `json:"points"`
}

// Cluster measures hash-partitioned query serving behind the merge
// router at each node count: ingest throughput through the full
// fan-out, merged and owner-routed read latency, and byte-identity of
// the served results across cells. Every cell replays the identical
// workload (same seeds, same pinned timestamps), so the first cell —
// conventionally a single node — is both the performance baseline and
// the correctness reference for every larger cluster.
func Cluster(p Profile, queries, queryLen, win, batch int, nodeCounts []int, events int, progress func(string)) (ClusterReport, error) {
	const dict = 2000
	const readIters = 200
	rep := ClusterReport{
		Queries:    queries,
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		BatchSize:  batch,
		Events:     events,
		NodeCounts: nodeCounts,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	var reference []cluster.QueryTopK
	var baseRate float64
	for _, n := range nodeCounts {
		if n < 1 {
			return rep, fmt.Errorf("cluster: node count %d < 1", n)
		}
		if progress != nil {
			progress(fmt.Sprintf("cluster: %d node(s), %d queries, %d events", n, queries, events))
		}

		engines := make([]*ita.Engine, n)
		nodes := make([]cluster.Node, n)
		for i := range engines {
			eng, err := ita.New(ita.WithCountWindow(win), ita.WithBatchSize(batch))
			if err != nil {
				return rep, err
			}
			defer eng.Close()
			engines[i] = eng
			nodes[i] = cluster.Local(eng)
		}
		router, err := cluster.NewRouter(nodes)
		if err != nil {
			return rep, err
		}

		qrnd := rand.New(rand.NewSource(7777))
		for i := 0; i < queries; i++ {
			if _, err := router.Register(readsText(qrnd, dict, queryLen), p.K); err != nil {
				return rep, err
			}
		}

		// Ingest phase: the identical stream every cell sees, timed
		// through the router's fan-out.
		rnd := rand.New(rand.NewSource(42))
		clock := time.Unix(0, 0)
		items := make([]ita.TimedText, batch)
		start := time.Now()
		sent := 0
		for sent < events {
			for i := range items {
				clock = clock.Add(time.Millisecond)
				items[i] = ita.TimedText{Text: readsText(rnd, dict, 12), At: clock}
			}
			if _, err := router.IngestBatch(items); err != nil {
				return rep, err
			}
			sent += batch
		}
		if err := router.Flush(); err != nil {
			return rep, err
		}
		rate := float64(sent) / time.Since(start).Seconds()
		ipt := ClusterPoint{Phase: "ingest", Nodes: n, IngestPerSec: rate}
		if baseRate == 0 {
			baseRate = rate
		}
		ipt.RelBaseline = rate / baseRate

		// Correctness gate before the read timings: every cell serves
		// the same merged answer as the first cell, match for match.
		all, err := router.ResultsAll()
		if err != nil {
			return rep, err
		}
		if reference == nil {
			reference = all
			ipt.EquivalentOK = true
		} else {
			ipt.EquivalentOK = sameTopK(all, reference)
		}
		rep.Points = append(rep.Points, ipt)
		if !ipt.EquivalentOK {
			return rep, fmt.Errorf("cluster: %d-node merged results diverge from the baseline cell", n)
		}

		// Read phase: merged scans and owner-routed point reads.
		rpt := ClusterPoint{Phase: "read", Nodes: n, ReadIters: readIters, EquivalentOK: true}
		t0 := time.Now()
		for i := 0; i < readIters; i++ {
			if _, err := router.ResultsAll(); err != nil {
				return rep, err
			}
		}
		rpt.MergedReadUs = float64(time.Since(t0).Nanoseconds()) / 1e3 / readIters
		t0 = time.Now()
		for i := 0; i < readIters; i++ {
			id := reference[i%len(reference)].Query
			if _, _, ok, err := router.Results(id); err != nil || !ok {
				return rep, fmt.Errorf("cluster: owner read %d: ok=%v err=%v", id, ok, err)
			}
		}
		rpt.OwnerReadUs = float64(time.Since(t0).Nanoseconds()) / 1e3 / readIters
		rep.Points = append(rep.Points, rpt)

		if err := router.Close(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// sameTopK reports whether two merged result sets are identical:
// same queries in the same order, same matches with the same scores.
func sameTopK(got, want []cluster.QueryTopK) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Query != want[i].Query || got[i].Text != want[i].Text ||
			len(got[i].Matches) != len(want[i].Matches) {
			return false
		}
		for j := range got[i].Matches {
			if got[i].Matches[j] != want[i].Matches[j] {
				return false
			}
		}
	}
	return true
}

// Format renders the report as an aligned text table.
func (r ClusterReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster — %d queries (n=%d, k=%d), window N=%d, B=%d, %d events, GOMAXPROCS=%d\n",
		r.Queries, r.QueryLen, r.K, r.Window, r.BatchSize, r.Events, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-8s%-8s%14s%10s%14s%14s%8s\n",
		"phase", "nodes", "docs/s", "rel", "merged us", "owner us", "equiv")
	for _, pt := range r.Points {
		rate, rel, merged, owner := "-", "-", "-", "-"
		switch pt.Phase {
		case "ingest":
			rate = fmt.Sprintf("%.0f", pt.IngestPerSec)
			rel = fmt.Sprintf("%.2f", pt.RelBaseline)
		case "read":
			merged = fmt.Sprintf("%.2f", pt.MergedReadUs)
			owner = fmt.Sprintf("%.2f", pt.OwnerReadUs)
		}
		fmt.Fprintf(&b, "%-8s%-8d%14s%10s%14s%14s%8v\n",
			pt.Phase, pt.Nodes, rate, rel, merged, owner, pt.EquivalentOK)
	}
	b.WriteString("note: every node ingests the full stream (rel is throughput against the first cell — the fan-out cost), while each maintains only its placement-hash slice of the queries; merged us is one router ResultsAll (concatenate + re-sort across nodes), owner us one placement-routed Results; equiv confirms the merged answers are identical to the first cell's, match for match.\n")
	return b.String()
}

// JSON renders the report for BENCH_*.json files.
func (r ClusterReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
